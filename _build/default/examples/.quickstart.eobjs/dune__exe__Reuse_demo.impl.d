examples/reuse_demo.ml: Concretize Format List Pkg Printf Specs String
