examples/virtual_providers.ml: Concretize List Option Pkg Printf Specs String
