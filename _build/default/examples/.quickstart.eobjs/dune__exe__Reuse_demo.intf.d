examples/reuse_demo.mli:
