examples/e4s_stack.mli:
