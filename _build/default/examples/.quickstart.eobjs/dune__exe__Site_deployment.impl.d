examples/site_deployment.ml: Concretize Format List Pkg Printf Specs
