examples/conditional_deps.mli:
