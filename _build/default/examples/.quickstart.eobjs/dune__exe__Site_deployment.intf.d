examples/site_deployment.mli:
