examples/quickstart.mli:
