examples/conditional_deps.ml: Concretize Format List Option Pkg Printf Specs
