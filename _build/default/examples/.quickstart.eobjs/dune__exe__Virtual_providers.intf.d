examples/virtual_providers.mli:
