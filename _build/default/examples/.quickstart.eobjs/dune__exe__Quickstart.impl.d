examples/quickstart.ml: Concretize Format List Pkg Printf Specs
