examples/e4s_stack.ml: Concretize List Pkg Printf Specs
