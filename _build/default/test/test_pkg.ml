(* Tests for the package layer: the DSL, repositories, possible-dependency
   closures, the installed database, and the generators. *)

open Pkg

let repo = Repo_core.repo

(* ------------------------------------------------------------------ *)
(* Package DSL                                                         *)
(* ------------------------------------------------------------------ *)

let test_example_recipe () =
  (* the paper's Fig. 2 package is modeled verbatim *)
  let p = Repo.find_exn repo "example" in
  Alcotest.(check int) "two versions" 2 (List.length p.Package.versions);
  Alcotest.(check int) "four dependencies" 4 (List.length p.Package.dependencies);
  Alcotest.(check int) "two conflicts" 2 (List.length p.Package.conflicts);
  let bzip = Option.get (Package.find_variant p "bzip") in
  Alcotest.(check string) "bzip default" "true" bzip.Package.var_default;
  Alcotest.(check string) "preferred version" "1.1.0"
    (Specs.Version.to_string (Package.preferred_version p))

let test_when_conditions () =
  let p = Repo.find_exn repo "example" in
  let dep_on name =
    List.find
      (fun (d : Package.dependency) ->
        String.equal d.Package.dep_spec.Specs.Spec.cname name)
      p.Package.dependencies
  in
  (match (dep_on "bzip2").Package.dep_when with
  | Some w ->
    Alcotest.(check (list (pair string string))) "when +bzip"
      [ ("bzip", "true") ]
      w.Specs.Spec.aroot.Specs.Spec.cvariants
  | None -> Alcotest.fail "bzip2 dep should be conditional");
  match
    List.filter
      (fun (d : Package.dependency) ->
        String.equal d.Package.dep_spec.Specs.Spec.cname "zlib")
      p.Package.dependencies
  with
  | [ unconditional; versioned ] ->
    Alcotest.(check bool) "plain zlib dep" true (unconditional.Package.dep_when = None);
    Alcotest.(check (option string)) "zlib version constraint" (Some "1.2.8:")
      (Option.map Specs.Vrange.to_string versioned.Package.dep_spec.Specs.Spec.cversion)
  | _ -> Alcotest.fail "expected two zlib dependencies"

let test_anonymous_constraints () =
  let c = Package.parse_constraint ~self:"foo" "%intel" in
  Alcotest.(check string) "conflict self" "foo" c.Specs.Spec.cname;
  Alcotest.(check (option string)) "compiler" (Some "intel") c.Specs.Spec.ccompiler;
  let t = Package.parse_constraint ~self:"foo" "target=aarch64:" in
  Alcotest.(check (option string)) "family target" (Some "aarch64:") t.Specs.Spec.ctarget;
  let w = Package.parse_when ~self:"foo" "+openmp ^openblas" in
  Alcotest.(check (list (pair string string))) "self variant"
    [ ("openmp", "true") ]
    w.Specs.Spec.aroot.Specs.Spec.cvariants;
  Alcotest.(check int) "one ^dep" 1 (List.length w.Specs.Spec.adeps)

(* ------------------------------------------------------------------ *)
(* Repository                                                          *)
(* ------------------------------------------------------------------ *)

let test_virtuals () =
  Alcotest.(check bool) "mpi is virtual" true (Repo.is_virtual repo "mpi");
  Alcotest.(check bool) "zlib is not" false (Repo.is_virtual repo "zlib");
  let mpis = Repo.providers repo "mpi" in
  Alcotest.(check bool) "mpich preferred" true (List.hd mpis = "mpich");
  Alcotest.(check bool) "openmpi second" true (List.nth mpis 1 = "openmpi");
  Alcotest.(check bool) "mpilander provides mpi" true (List.mem "mpilander" mpis);
  Alcotest.(check int) "mpich weight" 0 (Repo.provider_weight repo ~virtual_:"mpi" ~provider:"mpich");
  Alcotest.(check bool) "blas providers include openblas" true
    (List.mem "openblas" (Repo.providers repo "blas"))

let test_possible_dependencies () =
  let pd name = List.length (Repo.possible_dependencies repo name) in
  Alcotest.(check int) "zlib has none" 0 (pd "zlib");
  Alcotest.(check bool) "m4 small" true (pd "m4" <= 2);
  (* the paper's observation: anything that can reach MPI has a large
     possible-dependency count; the clusters are separated by a gap *)
  Alcotest.(check bool) "hdf5 large (reaches mpi)" true (pd "hdf5" > 35);
  Alcotest.(check bool) "valgrind large (reaches mpi)" true (pd "valgrind" > 35);
  Alcotest.(check bool) "readline small" true (pd "readline" < 15);
  (* mpilander -> cmake -> qt -> valgrind -> mpi: the potential cycle makes
     the closure of cmake large too *)
  Alcotest.(check bool) "cmake pulled into the big cluster" true (pd "cmake" > 35)

let test_repo_errors () =
  (match Repo.make [ Package.make "dup" [ Package.version "1" ]; Package.make "dup" [] ] with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "duplicate names accepted");
  Alcotest.(check (option string)) "unknown lookup" None
    (Option.map (fun (p : Package.t) -> p.Package.name) (Repo.find repo "no-such-pkg"))

(* ------------------------------------------------------------------ *)
(* Database                                                            *)
(* ------------------------------------------------------------------ *)

let mk_concrete root_deps =
  let node name version depends =
    {
      Specs.Spec.name;
      version = Specs.Version.of_string version;
      variants = [];
      compiler = Specs.Compiler.make "gcc" "11.2.0";
      flags = [];
      os = "rhel8";
      target = "skylake";
      depends;
    }
  in
  Specs.Spec.make_concrete ~root:"a"
    (node "a" "1.0" root_deps :: List.map (fun d -> node d "2.0" []) root_deps)

let test_database_roundtrip () =
  let db = Database.create () in
  let c = mk_concrete [ "b"; "c" ] in
  Database.add_concrete db c;
  Alcotest.(check int) "three records" 3 (Database.size db);
  let h = Specs.Spec.node_hash c "a" in
  (match Database.find db h with
  | Some r ->
    Alcotest.(check string) "record name" "a" r.Database.name;
    Alcotest.(check int) "two deps" 2 (List.length r.Database.deps);
    Alcotest.(check bool) "dag complete" true (Database.mem_dag db h)
  | None -> Alcotest.fail "root record missing");
  (* adding again is idempotent *)
  Database.add_concrete db c;
  Alcotest.(check int) "still three" 3 (Database.size db)

let test_database_filter () =
  let db = Database.create () in
  Database.add_concrete db (mk_concrete [ "b" ]);
  (* filter that drops the dependency must drop the dependent too *)
  let filtered = Database.filter db ~f:(fun r -> r.Database.name <> "b") in
  Alcotest.(check int) "closure-consistent filter" 0 (Database.size filtered);
  let keep_all = Database.filter db ~f:(fun _ -> true) in
  Alcotest.(check int) "identity filter" 2 (Database.size keep_all)

(* ------------------------------------------------------------------ *)
(* Generators                                                          *)
(* ------------------------------------------------------------------ *)

let test_synth_repo () =
  let p = Pkg.Repo_synth.scaled 200 in
  let r = Pkg.Repo_synth.repo p in
  Alcotest.(check bool) "roughly 200 packages" true
    (abs (Repo.size r - 200) < 60);
  Alcotest.(check bool) "smpi virtual exists" true (Repo.is_virtual r "smpi");
  Alcotest.(check int) "provider count" p.Pkg.Repo_synth.n_mpi_providers
    (List.length (Repo.providers r "smpi"));
  (* deterministic in the seed *)
  let r2 = Pkg.Repo_synth.repo p in
  Alcotest.(check (list string)) "deterministic" (Repo.package_names r)
    (Repo.package_names r2);
  (* the bimodal closure structure must exist: some packages reach the hub
     closure, some don't *)
  let counts =
    List.map (fun n -> List.length (Repo.possible_dependencies r n)) (Repo.package_names r)
  in
  let big = List.filter (fun c -> c > 20) counts and small = List.filter (fun c -> c <= 20) counts in
  Alcotest.(check bool) "two clusters" true (List.length big > 10 && List.length small > 10)

let test_buildcache_gen () =
  let db = Database.create () in
  Buildcache_gen.populate ~repo ~combos:Buildcache_gen.default_combos
    ~roots:[ "zlib"; "hdf5" ] db;
  Alcotest.(check bool) "cache populated" true (Database.size db > 50);
  (* every record's dep closure is present *)
  List.iter
    (fun (r : Database.record) ->
      Alcotest.(check bool) ("complete " ^ r.Database.name) true
        (Database.mem_dag db r.Database.hash))
    (Database.records db);
  (* arch slice behaves like the paper's ppc64le group: strictly smaller *)
  let ppc =
    Database.filter db ~f:(fun r ->
        match Specs.Target.find r.Database.target with
        | Some t -> String.equal t.Specs.Target.family "ppc64le"
        | None -> false)
  in
  Alcotest.(check bool) "ppc slice nonempty" true (Database.size ppc > 0);
  Alcotest.(check bool) "ppc slice smaller" true (Database.size ppc < Database.size db)

let () =
  Alcotest.run "pkg"
    [
      ( "dsl",
        [
          Alcotest.test_case "fig2 example recipe" `Quick test_example_recipe;
          Alcotest.test_case "when conditions" `Quick test_when_conditions;
          Alcotest.test_case "anonymous constraints" `Quick test_anonymous_constraints;
        ] );
      ( "repo",
        [
          Alcotest.test_case "virtuals" `Quick test_virtuals;
          Alcotest.test_case "possible dependencies" `Quick test_possible_dependencies;
          Alcotest.test_case "errors" `Quick test_repo_errors;
        ] );
      ( "database",
        [
          Alcotest.test_case "roundtrip" `Quick test_database_roundtrip;
          Alcotest.test_case "filter" `Quick test_database_filter;
        ] );
      ( "generators",
        [
          Alcotest.test_case "synthetic repo" `Quick test_synth_repo;
          Alcotest.test_case "buildcache" `Quick test_buildcache_gen;
        ] );
    ]
