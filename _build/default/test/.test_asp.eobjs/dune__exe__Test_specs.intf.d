test/test_specs.mli:
