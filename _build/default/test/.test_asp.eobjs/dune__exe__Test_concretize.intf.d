test/test_concretize.mli:
