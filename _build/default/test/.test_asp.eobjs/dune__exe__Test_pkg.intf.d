test/test_pkg.mli:
