test/test_pkg.ml: Alcotest Buildcache_gen Database List Option Package Pkg Repo Repo_core Specs String
