test/test_asp.mli:
