test/test_concretize.ml: Alcotest Asp Concretize Concretizer Facts Format Greedy List Logic_program Multishot Pkg Preferences Printf QCheck QCheck_alcotest Specs String Validate
