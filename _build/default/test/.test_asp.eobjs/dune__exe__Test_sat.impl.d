test/test_sat.ml: Alcotest Array Asp Gen List Printf QCheck QCheck_alcotest String Test
