test/test_asp.ml: Alcotest Asp Format Gen List Option QCheck QCheck_alcotest
