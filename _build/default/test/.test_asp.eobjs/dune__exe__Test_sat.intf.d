test/test_sat.mli:
