test/test_specs.ml: Alcotest Compiler Fun Gen List Option Printf QCheck QCheck_alcotest Spec Spec_parser Specs String Target Version Vrange
