exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let is_version_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | ',' -> true
  | _ -> false

let is_value_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | ',' -> true
  | _ -> false

let flag_keys = [ "cflags"; "cxxflags"; "fflags"; "ldflags"; "cppflags" ]

(* Parse one node's text (without '^').  [s] may contain spaces between
   sigil groups: "hdf5@1.10 +mpi target=skylake". *)
let parse_node_text text =
  let n = String.length text in
  let i = ref 0 in
  let peek () = if !i < n then Some text.[!i] else None in
  let take pred =
    let start = !i in
    while !i < n && pred text.[!i] do
      incr i
    done;
    String.sub text start (!i - start)
  in
  let skip_spaces () =
    while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do
      incr i
    done
  in
  skip_spaces ();
  let name = take is_name_char in
  if name = "" then err "expected a package name in %S" text;
  let node = ref (Spec.empty_node name) in
  let set_variant k v =
    node :=
      { !node with Spec.cvariants = (k, v) :: List.remove_assoc k !node.Spec.cvariants }
  in
  let rec loop () =
    skip_spaces ();
    match peek () with
    | None -> ()
    | Some '@' ->
      incr i;
      let v = take is_version_char in
      if v = "" then err "empty version constraint in %S" text;
      node := { !node with Spec.cversion = Some (Vrange.of_string v) };
      loop ()
    | Some '%' ->
      incr i;
      let c = take is_name_char in
      if c = "" then err "empty compiler name in %S" text;
      node := { !node with Spec.ccompiler = Some c };
      (match peek () with
      | Some '@' ->
        incr i;
        let v = take is_version_char in
        if v = "" then err "empty compiler version in %S" text;
        node := { !node with Spec.ccompiler_version = Some (Vrange.of_string v) }
      | _ -> ());
      loop ()
    | Some '+' ->
      incr i;
      let v = take is_name_char in
      if v = "" then err "empty variant name in %S" text;
      set_variant v "true";
      loop ()
    | Some '~' ->
      incr i;
      let v = take is_name_char in
      if v = "" then err "empty variant name in %S" text;
      set_variant v "false";
      loop ()
    | Some c when is_name_char c ->
      (* key=value *)
      let key = take is_name_char in
      (match peek () with
      | Some '=' ->
        incr i;
        (* values may be quoted (required for flags with spaces/dashes) *)
        let value =
          if peek () = Some '"' then begin
            incr i;
            let start = !i in
            while !i < n && text.[!i] <> '"' do
              incr i
            done;
            if !i >= n then err "unterminated quoted value in %S" text;
            let v = String.sub text start (!i - start) in
            incr i;
            v
          end
          else take is_value_char
        in
        if value = "" then err "empty value for %s in %S" key text;
        (match key with
        | k when List.mem k flag_keys ->
          node :=
            {
              !node with
              Spec.cflags = (k, value) :: List.remove_assoc k !node.Spec.cflags;
            }
        | "os" -> node := { !node with Spec.cos = Some value }
        | "target" -> node := { !node with Spec.ctarget = Some value }
        | "arch" -> (
          (* platform-os-target *)
          match String.split_on_char '-' value with
          | [ _platform; os; target ] ->
            node := { !node with Spec.cos = Some os; ctarget = Some target }
          | _ -> err "arch= expects platform-os-target, got %S" value)
        | _ -> set_variant key value)
      | _ -> err "dangling token %S in %S" key text);
      loop ()
    | Some c -> err "unexpected character %C in %S" c text
  in
  loop ();
  {
    !node with
    Spec.cvariants = List.sort compare !node.Spec.cvariants;
    cflags = List.sort compare !node.Spec.cflags;
  }

let parse_node text =
  if String.contains text '^' then err "unexpected '^' in node %S" text;
  parse_node_text text

let parse text =
  let text = String.trim text in
  if text = "" then err "empty spec";
  match String.split_on_char '^' text with
  | [] -> err "empty spec"
  | root :: deps ->
    if String.trim root = "" then err "spec must start with a root package";
    {
      Spec.aroot = parse_node_text root;
      adeps = List.map parse_node_text (List.filter (fun s -> String.trim s <> "") deps);
    }
