(** Microarchitecture targets (an archspec-style lattice).

    Targets form per-family chains ordered by {e generation}: a newer
    generation implies all instruction sets of its ancestors.  HPC users
    prefer the newest target their compiler can emit code for (the paper's
    example: gcc@4.8.3 cannot generate optimized instructions for skylake). *)

type t = {
  name : string;
  parent : string option;
  family : string;  (** x86_64, aarch64 or ppc64le *)
  generation : int;  (** 0 = the generic family target *)
}

val all : t list
val find : string -> t option
val find_exn : string -> t

val ancestors : t -> string list
(** Chain up to and including the generic family target, nearest first. *)

val is_descendant_of : t -> string -> bool
(** [is_descendant_of t a] — [t] equals or descends from target [a]; this is
    what the spec constraint [target=aarch64:] matches. *)

val weight : t -> int
(** Preference weight within the family: 0 for the newest generation (best),
    increasing toward the generic target. *)

val family_members : string -> t list
(** All targets of a family, generic first. *)

val families : string list
val pp : Format.formatter -> t -> unit
