(** Package versions: dotted tuples like [1.10.2] or [2021.06.0-rc1].

    Ordering follows Spack's rules closely enough for the encoding: versions
    are split on dots and dashes; numeric components compare numerically,
    alphanumeric ones lexicographically, and numeric components sort after
    alphabetic ones at the same position (so [1.0 > 1.0-rc1] does not hold —
    Spack's full pre-release logic is out of scope — but [1.10 > 1.9] and
    [1.2.1 > 1.2] do). *)

type t

val of_string : string -> t
val to_string : t -> string
val compare : t -> t -> int
val equal : t -> t -> bool

val satisfies_prefix : prefix:t -> t -> bool
(** [satisfies_prefix ~prefix v] is true when [v]'s components start with
    [prefix]'s components: Spack's [@1.10] matches [1.10.2]. *)

val pp : Format.formatter -> t -> unit
