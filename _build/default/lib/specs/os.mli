(** Operating systems (distribution + release), with deployment preferences. *)

type t = string

val known : t list
(** All OSes modeled in examples/benchmarks, most preferred first. *)

val weight : t -> int
(** Preference weight: 0 = most preferred.  Unknown OSes sort last. *)

val default : t
