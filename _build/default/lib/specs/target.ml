type t = { name : string; parent : string option; family : string; generation : int }

(* Per-family chains (a subset of archspec's database, linearized). *)
let chains =
  [
    ( "x86_64",
      [
        "x86_64";
        "nehalem";
        "westmere";
        "sandybridge";
        "ivybridge";
        "haswell";
        "broadwell";
        "skylake";
        "cascadelake";
        "icelake";
      ] );
    ("aarch64", [ "aarch64"; "armv8_1a"; "thunderx2"; "neoverse_n1"; "neoverse_v1" ]);
    ("ppc64le", [ "ppc64le"; "power8le"; "power9le"; "power10le" ]);
  ]

let all =
  List.concat_map
    (fun (family, names) ->
      List.mapi
        (fun i name ->
          {
            name;
            parent = (if i = 0 then None else Some (List.nth names (i - 1)));
            family;
            generation = i;
          })
        names)
    chains

let by_name = Hashtbl.create 32
let () = List.iter (fun t -> Hashtbl.replace by_name t.name t) all
let find name = Hashtbl.find_opt by_name name

let find_exn name =
  match find name with
  | Some t -> t
  | None -> invalid_arg (Printf.sprintf "unknown target %s" name)

let rec ancestors t =
  match t.parent with
  | None -> [ t.name ]
  | Some p -> t.name :: ancestors (find_exn p)

let is_descendant_of t a = List.mem a (ancestors t)

let family_members family =
  List.filter (fun t -> String.equal t.family family) all
  |> List.sort (fun a b -> Int.compare a.generation b.generation)

let weight t =
  let members = family_members t.family in
  let max_gen = List.fold_left (fun m x -> max m x.generation) 0 members in
  max_gen - t.generation

let families = List.map fst chains
let pp ppf t = Format.pp_print_string ppf t.name
