type t = { name : string; version : Version.t }

let make name version = { name; version = Version.of_string version }
let to_string c = Printf.sprintf "%s@%s" c.name (Version.to_string c.version)

let compare a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else Version.compare a.version b.version

let equal a b = compare a b = 0

(* (compiler, family, minimum version, supported generation): the newest
   entry whose minimum version is satisfied wins.  Mirrors archspec's
   compiler support tables. *)
let support_table =
  [
    ("gcc", "x86_64", "4.0", 3);  (* up to sandybridge *)
    ("gcc", "x86_64", "4.9", 5);  (* haswell/broadwell *)
    ("gcc", "x86_64", "6.0", 7);  (* skylake *)
    ("gcc", "x86_64", "9.0", 8);  (* cascadelake *)
    ("gcc", "x86_64", "10.0", 9);  (* icelake *)
    ("gcc", "aarch64", "4.8", 1);
    ("gcc", "aarch64", "8.0", 3);
    ("gcc", "aarch64", "10.0", 4);
    ("gcc", "ppc64le", "4.8", 1);
    ("gcc", "ppc64le", "6.0", 2);
    ("gcc", "ppc64le", "11.0", 3);
    ("clang", "x86_64", "3.9", 5);
    ("clang", "x86_64", "6.0", 7);
    ("clang", "x86_64", "8.0", 8);
    ("clang", "x86_64", "11.0", 9);
    ("clang", "aarch64", "3.9", 2);
    ("clang", "aarch64", "11.0", 4);
    ("clang", "ppc64le", "3.9", 2);
    ("clang", "ppc64le", "12.0", 3);
    ("intel", "x86_64", "16.0", 7);
    ("intel", "x86_64", "18.0", 8);
    ("intel", "x86_64", "19.0", 9);
    ("oneapi", "x86_64", "2021.1", 9);
    ("xl", "ppc64le", "13.1", 1);
    ("xl", "ppc64le", "16.1", 2);
    ("nvhpc", "x86_64", "20.9", 8);
    ("nvhpc", "ppc64le", "20.9", 2);
    ("fj", "aarch64", "4.0", 3);
  ]

let max_target_generation c ~family =
  List.fold_left
    (fun acc (name, fam, minv, gen) ->
      if
        String.equal name c.name && String.equal fam family
        && Version.compare c.version (Version.of_string minv) >= 0
      then max acc gen
      else acc)
    (-1) support_table

let supports_target c (t : Target.t) =
  t.Target.generation <= max_target_generation c ~family:t.Target.family

let default_roster =
  [
    make "gcc" "11.2.0";
    make "gcc" "8.5.0";
    make "gcc" "4.8.5";
    make "clang" "14.0.6";
    make "intel" "19.1.3";
    make "xl" "16.1.1";
  ]

let pp ppf c = Format.pp_print_string ppf (to_string c)
