lib/specs/compiler.ml: Format List Printf String Target Version
