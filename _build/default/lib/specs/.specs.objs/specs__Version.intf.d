lib/specs/version.mli: Format
