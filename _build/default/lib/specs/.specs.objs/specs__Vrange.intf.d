lib/specs/vrange.mli: Format Version
