lib/specs/vrange.ml: Format List String Version
