lib/specs/compiler.mli: Format Target Version
