lib/specs/spec.mli: Compiler Format Map Os Version Vrange
