lib/specs/target.mli: Format
