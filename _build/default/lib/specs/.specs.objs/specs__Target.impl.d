lib/specs/target.ml: Format Hashtbl Int List Printf String
