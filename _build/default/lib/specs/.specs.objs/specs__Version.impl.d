lib/specs/version.ml: Buffer Format Int List String
