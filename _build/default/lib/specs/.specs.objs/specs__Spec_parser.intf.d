lib/specs/spec_parser.mli: Spec
