lib/specs/spec_parser.ml: List Printf Spec String Vrange
