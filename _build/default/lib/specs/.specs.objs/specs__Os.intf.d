lib/specs/os.mli:
