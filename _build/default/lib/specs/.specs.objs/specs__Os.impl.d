lib/specs/os.ml: List String
