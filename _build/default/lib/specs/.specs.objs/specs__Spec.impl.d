lib/specs/spec.ml: Buffer Char Compiler Format Hashtbl Int64 List Map Os Printf String Target Version Vrange
