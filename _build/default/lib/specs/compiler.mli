(** Compilers: a name, a version, and the targets they can emit code for. *)

type t = { name : string; version : Version.t }

val make : string -> string -> t
val to_string : t -> string
val equal : t -> t -> bool
val compare : t -> t -> int

val max_target_generation : t -> family:string -> int
(** Newest target generation this compiler supports in [family]
    ([-1] = cannot target the family at all). *)

val supports_target : t -> Target.t -> bool

val default_roster : t list
(** The compilers assumed installed in examples and benchmarks. *)

val pp : Format.formatter -> t -> unit
