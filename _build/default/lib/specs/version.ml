type component = Num of int | Alpha of string

type t = { raw : string; components : component list }

let split_components s =
  (* split on '.' and '-', then split digit/alpha boundaries inside a chunk *)
  let chunks =
    String.split_on_char '.' s |> List.concat_map (String.split_on_char '-')
  in
  let classify chunk =
    if chunk = "" then []
    else begin
      let out = ref [] and buf = Buffer.create 8 in
      let mode = ref `None in
      let flush () =
        if Buffer.length buf > 0 then begin
          let str = Buffer.contents buf in
          out := (match !mode with `Digit -> Num (int_of_string str) | _ -> Alpha str) :: !out;
          Buffer.clear buf
        end
      in
      String.iter
        (fun c ->
          let m = match c with '0' .. '9' -> `Digit | _ -> `Alpha in
          if m <> !mode then begin
            flush ();
            mode := m
          end;
          Buffer.add_char buf c)
        chunk;
      flush ();
      List.rev !out
    end
  in
  List.concat_map classify chunks

let of_string raw = { raw; components = split_components raw }
let to_string v = v.raw

let compare_component a b =
  match (a, b) with
  | Num x, Num y -> Int.compare x y
  | Alpha x, Alpha y -> String.compare x y
  | Num _, Alpha _ -> 1 (* numeric sorts after alphabetic: 1.2 > 1.beta *)
  | Alpha _, Num _ -> -1

let rec compare_components a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1 (* shorter is older: 1.2 < 1.2.1 *)
  | _, [] -> 1
  | x :: xs, y :: ys ->
    let c = compare_component x y in
    if c <> 0 then c else compare_components xs ys

let compare a b = compare_components a.components b.components
let equal a b = compare a b = 0

let satisfies_prefix ~prefix v =
  let rec go p c =
    match (p, c) with
    | [], _ -> true
    | _, [] -> false
    | x :: xs, y :: ys -> compare_component x y = 0 && go xs ys
  in
  go prefix.components v.components

let pp ppf v = Format.pp_print_string ppf v.raw
