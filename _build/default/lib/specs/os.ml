type t = string

let known = [ "rhel8"; "rhel7"; "centos8"; "ubuntu22.04"; "ubuntu20.04"; "sles15" ]

let weight os =
  let rec idx i = function
    | [] -> List.length known
    | x :: rest -> if String.equal x os then i else idx (i + 1) rest
  in
  idx 0 known

let default = "rhel8"
