let names =
  [
    (1, "Deprecated versions used");
    (2, "Version oldness (roots)");
    (3, "Non-default variant values (roots)");
    (4, "Non-preferred providers (roots)");
    (5, "Unused default variant values (roots)");
    (6, "Non-default variant values (non-roots)");
    (7, "Non-preferred providers (non-roots)");
    (8, "Compiler mismatches");
    (9, "OS mismatches");
    (10, "Non-preferred OS's");
    (11, "Version oldness (non-roots)");
    (12, "Unused default variant values (non-roots)");
    (13, "Non-preferred compilers");
    (14, "Target mismatches");
    (15, "Non-preferred targets");
  ]

let name i = List.assoc i names

type bucket = Build | Reuse
type decoded = Number_of_builds | Criterion of int * bucket

(* Criterion i has base priority 16-i; the build bucket sits at +200 and the
   build count at 100 (Fig. 5). *)
let decode_priority p =
  if p = 100 then Some Number_of_builds
  else
    let base, bucket = if p > 100 then (p - 200, Build) else (p, Reuse) in
    if base >= 1 && base <= 15 then Some (Criterion (16 - base, bucket)) else None

let pp_cost ppf (p, v) =
  match decode_priority p with
  | Some Number_of_builds -> Format.fprintf ppf "@%-3d number of builds = %d" p v
  | Some (Criterion (i, bucket)) ->
    Format.fprintf ppf "@%-3d criterion %2d (%s)%s = %d" p i (name i)
      (match bucket with Build -> " [build]" | Reuse -> "")
      v
  | None -> Format.fprintf ppf "@%-3d = %d" p v

let pp_costs ppf costs =
  List.iter
    (fun (p, v) -> if v <> 0 then Format.fprintf ppf "%a@." pp_cost (p, v))
    costs
