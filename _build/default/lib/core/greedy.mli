(** The original (pre-ASP) concretizer: a greedy fixed-point algorithm.

    Reproduces the old algorithm's behaviour and, deliberately, its
    {e incompleteness} (§III-C):

    - decisions are local and never revisited (no backtracking);
    - variant values are fixed from defaults/user settings {e before}
      descending into dependencies, so conditional dependencies on
      non-default variants are never activated ([hpctoolkit ^mpich] fails,
      §V-B.1);
    - version choices take the first constraint seen; a later, conflicting
      constraint is a hard error even when a compatible choice existed;
    - conflicts are only {e validated} after the fact, with a hint to
      overconstrain the input (§V-B.2);
    - reuse is by exact hash match only (§VI, Fig. 4). *)

type error = {
  message : string;
  hint : string option;  (** the "please overconstrain" suggestion *)
}

type result = Ok of Specs.Spec.concrete | Error of error

val concretize :
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract ->
  result

val concretize_spec :
  ?env:Facts.env -> ?prefs:Preferences.t -> repo:Pkg.Repo.t -> string -> result
