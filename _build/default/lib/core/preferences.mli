(** User configuration preferences — the third input source to
    concretization (§III-C: command line, package DSL, and configuration
    files; Spack's [packages.yaml]).

    Preferences are {e soft}: they reshape the optimization weights
    (preferred versions sort first, preferred variant values become the
    defaults, preferred providers get weight 0) without constraining the
    solution space.  Hard requirements belong in the spec. *)

type package_prefs = {
  pref_version : Specs.Vrange.t option;
      (** versions matching this range are preferred over newer ones *)
  pref_variants : (string * string) list;  (** overrides variant defaults *)
}

type t = {
  packages : (string * package_prefs) list;
  providers : (string * string list) list;
      (** per-virtual provider order, overriding the repository's *)
  compilers : Specs.Compiler.t list option;  (** roster order override *)
}

val empty : t

val package : t -> string -> package_prefs
(** Preferences for one package ([empty] defaults). *)

val provider_order : t -> Pkg.Repo.t -> string -> string list
(** Effective provider order for a virtual: preferred ones first, then the
    repository's order. *)

val preferred_variant_default : t -> string -> Pkg.Package.variant_decl -> string
(** The effective default value of a variant under these preferences. *)

val version_pool :
  t ->
  string ->
  (Specs.Version.t * int * bool) list ->
  (Specs.Version.t * int * bool) list
(** Reweight a version pool [(version, weight, deprecated)]: versions
    matching the package's preferred range move to the front (weight 0
    upward), others follow, preserving relative order. *)
