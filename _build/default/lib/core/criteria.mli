(** Table II: the optimization criteria, as data.

    The authoritative encoding lives in {!Logic_program} ([#minimize]
    statements); this module is the single source of truth for the
    criteria's names and for decoding ground priority levels back into
    human-readable form (used by the CLI, benchmarks and tests). *)

val names : (int * string) list
(** [(criterion number 1..15, description)] in Table II's priority order. *)

val name : int -> string
(** @raise Not_found for numbers outside 1..15. *)

type bucket =
  | Build  (** contribution from a package that must be built (@201..215) *)
  | Reuse  (** contribution from an installed package (@1..15) *)

type decoded =
  | Number_of_builds  (** the @100 level between the buckets (Section VI) *)
  | Criterion of int * bucket

val decode_priority : int -> decoded option
(** Decode a ground [#minimize] priority level. *)

val pp_cost : Format.formatter -> int * int -> unit
(** Render one [(priority, value)] pair of an objective vector. *)

val pp_costs : Format.formatter -> (int * int) list -> unit
(** Render the nonzero entries of an objective vector, one per line. *)
