type package_prefs = {
  pref_version : Specs.Vrange.t option;
  pref_variants : (string * string) list;
}

type t = {
  packages : (string * package_prefs) list;
  providers : (string * string list) list;
  compilers : Specs.Compiler.t list option;
}

let empty = { packages = []; providers = []; compilers = None }
let empty_pkg = { pref_version = None; pref_variants = [] }

let package t name = Option.value ~default:empty_pkg (List.assoc_opt name t.packages)

let provider_order t repo virt =
  let preferred =
    Option.value ~default:[] (List.assoc_opt virt t.providers)
    |> List.filter (fun p -> List.mem p (Pkg.Repo.providers repo virt))
  in
  preferred
  @ List.filter (fun p -> not (List.mem p preferred)) (Pkg.Repo.providers repo virt)

let preferred_variant_default t pkg (v : Pkg.Package.variant_decl) =
  match List.assoc_opt v.Pkg.Package.var_name (package t pkg).pref_variants with
  | Some value when List.mem value v.Pkg.Package.var_values -> value
  | _ -> v.Pkg.Package.var_default

let version_pool t pkg pool =
  match (package t pkg).pref_version with
  | None -> pool
  | Some range ->
    let matching, rest =
      List.partition (fun (v, _, _) -> Specs.Vrange.satisfies range v) pool
    in
    List.mapi (fun i (v, _, d) -> (v, i, d)) (matching @ rest)
