(** The ASP-based concretizer: Spack's dependency solver, reimplemented.

    Pipeline (§VII): {e setup} generates facts for the problem instance,
    {e load} parses the logic program, {e ground} instantiates it, and
    {e solve} runs CDCL search with lexicographic optimization.  Each phase
    is timed separately, matching the paper's instrumentation. *)

type phases = {
  setup_time : float;
  load_time : float;
  ground_time : float;
  solve_time : float;
}

val total : phases -> float

type success = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;  (** (package, hash) reused from the DB *)
  built : string list;  (** packages built from source *)
  costs : (int * int) list;  (** optimization vector: (priority, value) *)
  phases : phases;
  n_facts : int;
  n_possible : int;  (** possible dependencies considered (Fig. 7's x-axis) *)
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
}

type result =
  | Concrete of success
  | Unsatisfiable of {
      phases : phases;
      n_facts : int;
      n_possible : int;
      reasons : string list;  (** best-effort explanations ({!Diagnose}) *)
    }

val solve :
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  result
(** Concretize one or more root specs together (unified DAG).
    @raise Facts.Unknown_package on unknown roots or [^deps]. *)

val solve_spec :
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  repo:Pkg.Repo.t ->
  string ->
  result
(** Parse a spec string, then {!solve}. *)
