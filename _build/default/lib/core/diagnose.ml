let explain ~env ~repo (roots : Specs.Spec.abstract list) =
  let reasons = ref [] in
  let say fmt = Format.kasprintf (fun s -> reasons := s :: !reasons) fmt in
  let check_node (cn : Specs.Spec.constraint_node) =
    let name = cn.Specs.Spec.cname in
    let pkg = Pkg.Repo.find repo name in
    (* version requirement vs declared versions *)
    (match (cn.Specs.Spec.cversion, pkg) with
    | Some r, Some p ->
      if Pkg.Package.versions_satisfying p r = [] then
        say "no declared version of %s satisfies @%s (declared: %s)" name
          (Specs.Vrange.to_string r)
          (String.concat ", "
             (List.map
                (fun (d : Pkg.Package.version_decl) ->
                  Specs.Version.to_string d.Pkg.Package.vversion)
                (Pkg.Package.declared_versions p)))
    | _ -> ());
    (* variants must exist and admit the requested value *)
    (match pkg with
    | Some p ->
      List.iter
        (fun (var, value) ->
          match Pkg.Package.find_variant p var with
          | None -> say "package %s has no variant %S" name var
          | Some v ->
            if not (List.mem value v.Pkg.Package.var_values) then
              say "variant %s of %s admits {%s}, not %S" var name
                (String.concat ", " v.Pkg.Package.var_values)
                value)
        cn.Specs.Spec.cvariants
    | None -> ());
    (* compiler must be in the roster, with a satisfying version *)
    (match cn.Specs.Spec.ccompiler with
    | Some c ->
      let candidates =
        List.filter
          (fun (k : Specs.Compiler.t) -> String.equal k.Specs.Compiler.name c)
          env.Facts.compilers
      in
      if candidates = [] then say "no compiler %s is available" c
      else (
        match cn.Specs.Spec.ccompiler_version with
        | Some r
          when not
                 (List.exists
                    (fun (k : Specs.Compiler.t) ->
                      Specs.Vrange.satisfies r k.Specs.Compiler.version)
                    candidates) ->
          say "no available %s satisfies %%%s@%s" c c (Specs.Vrange.to_string r)
        | _ -> ())
    | None -> ());
    (* target must exist and be reachable by some compiler *)
    (match cn.Specs.Spec.ctarget with
    | Some t when not (String.length t > 0 && t.[String.length t - 1] = ':') -> (
      match Specs.Target.find t with
      | None -> say "unknown target %s" t
      | Some tt ->
        if
          not
            (List.exists
               (fun c -> Specs.Compiler.supports_target c tt)
               env.Facts.compilers)
        then say "no available compiler can generate code for target %s" t)
    | _ -> ());
    (* conflicts declared by the package that plainly match the request *)
    match pkg with
    | Some p ->
      List.iter
        (fun (c : Pkg.Package.conflict_decl) ->
          let spec = c.Pkg.Package.conflict_spec in
          let compiler_matches =
            match (spec.Specs.Spec.ccompiler, cn.Specs.Spec.ccompiler) with
            | Some a, Some b -> String.equal a b
            | Some _, None | None, _ -> false
          in
          let target_matches =
            match (spec.Specs.Spec.ctarget, cn.Specs.Spec.ctarget) with
            | Some a, Some b ->
              String.equal a b
              || (String.length a > 0
                 && a.[String.length a - 1] = ':'
                 &&
                 match Specs.Target.find b with
                 | Some t ->
                   Specs.Target.is_descendant_of t (String.sub a 0 (String.length a - 1))
                 | None -> false)
            | _ -> false
          in
          if compiler_matches || target_matches then
            say "%s conflicts with %s%s" name
              (Specs.Spec.node_to_string spec)
              (if c.Pkg.Package.conflict_msg = "" then ""
               else ": " ^ c.Pkg.Package.conflict_msg))
        p.Pkg.Package.conflicts
    | None -> ()
  in
  List.iter
    (fun (a : Specs.Spec.abstract) ->
      check_node a.Specs.Spec.aroot;
      List.iter check_node a.Specs.Spec.adeps;
      (* virtuals named in the request must have providers *)
      List.iter
        (fun (d : Specs.Spec.constraint_node) ->
          let n = d.Specs.Spec.cname in
          if Pkg.Repo.is_virtual repo n && Pkg.Repo.providers repo n = [] then
            say "virtual package %s has no providers" n)
        (a.Specs.Spec.aroot :: a.Specs.Spec.adeps))
    roots;
  List.rev !reasons
