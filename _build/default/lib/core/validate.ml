type violation = { v_package : string; v_message : string }

let pp_violation ppf v = Format.fprintf ppf "%s: %s" v.v_package v.v_message

(* Does a when-condition hold against the fully concrete DAG? *)
let when_holds (c : Specs.Spec.concrete) (w : Specs.Spec.abstract) =
  let node_ok (cn : Specs.Spec.constraint_node) =
    match Specs.Spec.Node_map.find_opt cn.Specs.Spec.cname c.Specs.Spec.nodes with
    | Some n -> Specs.Spec.node_satisfies n cn
    | None -> false
  in
  node_ok w.Specs.Spec.aroot && List.for_all node_ok w.Specs.Spec.adeps

(* The node (if any) that resolves a dependency on [name] from [n]:
   direct match, or any dependency edge to a provider when [name] is
   virtual. *)
let resolver ~repo (c : Specs.Spec.concrete) (n : Specs.Spec.concrete_node) name =
  let find dep = Specs.Spec.Node_map.find_opt dep c.Specs.Spec.nodes in
  if Pkg.Repo.is_virtual repo name then
    List.find_map
      (fun dep -> if List.mem dep (Pkg.Repo.providers repo name) then find dep else None)
      n.Specs.Spec.depends
  else if List.mem name n.Specs.Spec.depends then find name
  else None

let provides_holds ~repo (c : Specs.Spec.concrete) (prov : Specs.Spec.concrete_node)
    virt =
  match Pkg.Repo.find repo prov.Specs.Spec.name with
  | None -> false
  | Some p ->
    List.exists
      (fun (pr : Pkg.Package.provide) ->
        String.equal pr.Pkg.Package.prov_virtual virt
        &&
        match pr.Pkg.Package.prov_when with
        | None -> true
        | Some w -> when_holds c w)
      p.Pkg.Package.provides

let check ~repo (c : Specs.Spec.concrete) =
  let violations = ref [] in
  let bad name fmt =
    Format.kasprintf
      (fun m -> violations := { v_package = name; v_message = m } :: !violations)
      fmt
  in
  Specs.Spec.Node_map.iter
    (fun name (n : Specs.Spec.concrete_node) ->
      match Pkg.Repo.find repo name with
      | None -> bad name "unknown package"
      | Some p ->
        (* version declared *)
        if
          not
            (List.exists
               (fun (d : Pkg.Package.version_decl) ->
                 Specs.Version.equal d.Pkg.Package.vversion n.Specs.Spec.version)
               p.Pkg.Package.versions)
        then bad name "version %s is not declared" (Specs.Version.to_string n.Specs.Spec.version);
        (* variants: exactly the declared ones, each with a legal value *)
        List.iter
          (fun (v : Pkg.Package.variant_decl) ->
            match List.assoc_opt v.Pkg.Package.var_name n.Specs.Spec.variants with
            | None -> bad name "variant %s has no value" v.Pkg.Package.var_name
            | Some value ->
              if not (List.mem value v.Pkg.Package.var_values) then
                bad name "variant %s=%s is not admissible" v.Pkg.Package.var_name value)
          p.Pkg.Package.variants;
        List.iter
          (fun (var, _) ->
            if Pkg.Package.find_variant p var = None then
              bad name "undeclared variant %s" var)
          n.Specs.Spec.variants;
        (* toolchain *)
        (match Specs.Target.find n.Specs.Spec.target with
        | None -> bad name "unknown target %s" n.Specs.Spec.target
        | Some t ->
          if not (Specs.Compiler.supports_target n.Specs.Spec.compiler t) then
            bad name "compiler %s cannot target %s"
              (Specs.Compiler.to_string n.Specs.Spec.compiler)
              n.Specs.Spec.target);
        (* active dependency directives are resolved and satisfied *)
        let explained = Hashtbl.create 8 in
        List.iter
          (fun (d : Pkg.Package.dependency) ->
            let active =
              match d.Pkg.Package.dep_when with
              | None -> true
              | Some w -> when_holds c w
            in
            if active then begin
              let spec = d.Pkg.Package.dep_spec in
              let dname = spec.Specs.Spec.cname in
              match resolver ~repo c n dname with
              | None -> bad name "active dependency on %s is unresolved" dname
              | Some dep_node ->
                Hashtbl.replace explained dep_node.Specs.Spec.name ();
                if
                  not
                    (Specs.Spec.node_satisfies dep_node
                       { spec with Specs.Spec.cname = dep_node.Specs.Spec.name })
                then
                  bad name "dependency %s does not satisfy %s" dep_node.Specs.Spec.name
                    (Specs.Spec.node_to_string spec);
                if
                  Pkg.Repo.is_virtual repo dname
                  && not (provides_holds ~repo c dep_node dname)
                then
                  bad name "%s does not provide %s here" dep_node.Specs.Spec.name dname
            end)
          p.Pkg.Package.dependencies;
        (* every edge must be explained by some active directive *)
        List.iter
          (fun dep ->
            if not (Hashtbl.mem explained dep) then
              bad name "edge to %s matches no active dependency directive" dep)
          n.Specs.Spec.depends;
        (* conflicts *)
        List.iter
          (fun (cf : Pkg.Package.conflict_decl) ->
            let when_ok =
              match cf.Pkg.Package.conflict_when with
              | None -> true
              | Some w -> when_holds c w
            in
            if when_ok && Specs.Spec.node_satisfies n cf.Pkg.Package.conflict_spec then
              bad name "violates conflict %s%s"
                (Specs.Spec.node_to_string cf.Pkg.Package.conflict_spec)
                (if cf.Pkg.Package.conflict_msg = "" then ""
                 else " (" ^ cf.Pkg.Package.conflict_msg ^ ")"))
          p.Pkg.Package.conflicts)
    c.Specs.Spec.nodes;
  List.rev !violations

let is_valid ~repo c = check ~repo c = []
