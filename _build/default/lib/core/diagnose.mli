(** Human-readable explanations for unsatisfiable concretizations.

    The ASP solver proves unsatisfiability but (like clasp) does not produce
    an explanation.  This module re-examines the request against the
    repository with cheap syntactic checks and reports the likely causes:
    unsatisfiable version requirements, unknown compilers/targets/OSes,
    matching [conflicts] declarations, variant misuse, and providerless
    virtuals. *)

val explain :
  env:Facts.env -> repo:Pkg.Repo.t -> Specs.Spec.abstract list -> string list
(** Best-effort list of reasons, most specific first; empty when nothing
    obvious is wrong (a genuinely combinatorial conflict). *)
