(** Reading an optimal stable model back into a concrete spec DAG. *)

exception Error of string

type info = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;  (** (package, installed hash) choices *)
  built : string list;  (** packages that must be built from source *)
}

val extract : Asp.Gatom.t list -> info
(** @raise Error when the answer set is not a well-formed concretization
    (missing attributes — indicates a logic-program bug). *)
