type error = { message : string; hint : string option }
type result = Ok of Specs.Spec.concrete | Error of error

exception Fail of error

let fail ?hint fmt =
  Format.kasprintf (fun message -> raise (Fail { message; hint })) fmt

(* Does a when-condition hold, judged only against decisions already made
   (the greedy algorithm cannot revisit them)? *)
let when_holds nodes (w : Specs.Spec.abstract) =
  let node_ok (cn : Specs.Spec.constraint_node) =
    match Hashtbl.find_opt nodes cn.Specs.Spec.cname with
    | None -> false
    | Some n -> Specs.Spec.node_satisfies n cn
  in
  node_ok w.Specs.Spec.aroot && List.for_all node_ok w.Specs.Spec.adeps

let concretize ?(env = Facts.default_env) ?(prefs = Preferences.empty) ~repo
    (a : Specs.Spec.abstract) =
  (* user constraints by package name (root + ^deps) *)
  let user : (string, Specs.Spec.constraint_node) Hashtbl.t = Hashtbl.create 8 in
  let add_user (cn : Specs.Spec.constraint_node) =
    let name = cn.Specs.Spec.cname in
    match Hashtbl.find_opt user name with
    | Some prev -> Hashtbl.replace user name (Specs.Spec.merge_nodes prev cn)
    | None -> Hashtbl.replace user name cn
  in
  add_user a.Specs.Spec.aroot;
  List.iter add_user a.Specs.Spec.adeps;
  let nodes : (string, Specs.Spec.concrete_node) Hashtbl.t = Hashtbl.create 16 in
  let default_compiler =
    match env.Facts.compilers with
    | c :: _ -> c
    | [] -> invalid_arg "greedy: empty compiler roster"
  in
  let choose_compiler (cn : Specs.Spec.constraint_node) =
    match cn.Specs.Spec.ccompiler with
    | None -> default_compiler
    | Some name -> (
      let candidates =
        List.filter (fun (c : Specs.Compiler.t) -> String.equal c.Specs.Compiler.name name)
          env.Facts.compilers
      in
      let candidates =
        match cn.Specs.Spec.ccompiler_version with
        | None -> candidates
        | Some r ->
          List.filter
            (fun (c : Specs.Compiler.t) -> Specs.Vrange.satisfies r c.Specs.Compiler.version)
            candidates
      in
      match candidates with
      | c :: _ -> c
      | [] -> fail "no installed compiler satisfies %%%s" name)
  in
  let choose_target compiler (cn : Specs.Spec.constraint_node) =
    match cn.Specs.Spec.ctarget with
    | Some t when not (String.length t > 0 && t.[String.length t - 1] = ':') -> t
    | _ -> (
      (* newest family target the compiler supports *)
      let members = Specs.Target.family_members env.Facts.target_family in
      let supported =
        List.filter (fun t -> Specs.Compiler.supports_target compiler t) members
      in
      match List.rev supported with
      | t :: _ -> t.Specs.Target.name
      | [] ->
        fail "compiler %s supports no %s targets" (Specs.Compiler.to_string compiler)
          env.Facts.target_family)
  in
  (* provider selection: user ^dep naming a provider wins, else preference *)
  let provider_for virt =
    let user_choice =
      Hashtbl.fold
        (fun name _ acc ->
          if List.mem name (Pkg.Repo.providers repo virt) then Some name else acc)
        user None
    in
    match user_choice with
    | Some p -> p
    | None -> (
      match Preferences.provider_order prefs repo virt with
      | p :: _ -> p
      | [] -> fail "no provider available for virtual %s" virt)
  in
  let rec visit name (incoming : Specs.Spec.constraint_node) =
    let name, incoming =
      if Pkg.Repo.is_virtual repo name then begin
        let p = provider_for name in
        (p, { incoming with Specs.Spec.cname = p })
      end
      else (name, incoming)
    in
    let constraints =
      match Hashtbl.find_opt user name with
      | Some u -> Specs.Spec.merge_nodes incoming u
      | None -> incoming
    in
    match Hashtbl.find_opt nodes name with
    | Some existing ->
      (* no backtracking: a previously made decision must already satisfy any
         later constraint (§III-C's bzip2 example) *)
      if not (Specs.Spec.node_satisfies existing constraints) then
        fail
          ~hint:
            (Printf.sprintf "try overconstraining, e.g. add ^%s to your spec"
               (Specs.Spec.node_to_string constraints))
          "cannot satisfy constraint %s: %s was already concretized as %s"
          (Specs.Spec.node_to_string constraints)
          name
          (Specs.Spec.concrete_node_to_string existing)
      else name
    | None ->
      let p =
        match Pkg.Repo.find repo name with
        | Some p -> p
        | None -> fail "unknown package %s" name
      in
      (* version: most-preferred satisfying the constraints seen *now* *)
      let version =
        let pool =
          List.sort
            (fun (a : Pkg.Package.version_decl) b ->
              Int.compare a.Pkg.Package.vweight b.Pkg.Package.vweight)
            (Pkg.Package.declared_versions p)
          |> List.map (fun (d : Pkg.Package.version_decl) ->
                 (d.Pkg.Package.vversion, d.Pkg.Package.vweight, d.Pkg.Package.vdeprecated))
          |> Preferences.version_pool prefs name
        in
        let ok (v, _, deprecated) =
          match constraints.Specs.Spec.cversion with
          | None -> not deprecated
          | Some r -> Specs.Vrange.satisfies r v
        in
        match List.find_opt ok pool with
        | Some (v, _, _) -> v
        | None ->
          fail "no version of %s satisfies %s" name
            (Specs.Spec.node_to_string constraints)
      in
      (* variants: user-set else defaults, decided before descending *)
      let variants =
        List.map
          (fun (v : Pkg.Package.variant_decl) ->
            let value =
              match List.assoc_opt v.Pkg.Package.var_name constraints.Specs.Spec.cvariants with
              | Some value ->
                if not (List.mem value v.Pkg.Package.var_values) then
                  fail "invalid value %s=%s for %s" v.Pkg.Package.var_name value name;
                value
              | None -> Preferences.preferred_variant_default prefs name v
            in
            (v.Pkg.Package.var_name, value))
          p.Pkg.Package.variants
      in
      List.iter
        (fun (k, _) ->
          if Pkg.Package.find_variant p k = None then
            fail "package %s has no variant %s" name k)
        constraints.Specs.Spec.cvariants;
      let compiler = choose_compiler constraints in
      let os =
        match constraints.Specs.Spec.cos with
        | Some o -> o
        | None -> (match env.Facts.oses with o :: _ -> o | [] -> Specs.Os.default)
      in
      let target = choose_target compiler constraints in
      let node =
        {
          Specs.Spec.name;
          version;
          variants = List.sort compare variants;
          compiler;
          flags = List.sort compare constraints.Specs.Spec.cflags;
          os;
          target;
          depends = [];
        }
      in
      Hashtbl.replace nodes name node;
      (* descend into dependencies whose condition holds for decisions made
         so far; conditions that would need different choices are missed *)
      let deps = ref [] in
      List.iter
        (fun (d : Pkg.Package.dependency) ->
          let active =
            match d.Pkg.Package.dep_when with
            | None -> true
            | Some w -> when_holds nodes w
          in
          if active then begin
            let spec = d.Pkg.Package.dep_spec in
            let dname = spec.Specs.Spec.cname in
            let inherited =
              (* propagate compiler/flags/os/target downward, greedily *)
              {
                spec with
                Specs.Spec.cflags =
                  (node.Specs.Spec.flags
                  |> List.fold_left
                       (fun acc (k, v) ->
                         if List.mem_assoc k acc then acc else (k, v) :: acc)
                       spec.Specs.Spec.cflags);
                ccompiler =
                  (match spec.Specs.Spec.ccompiler with
                  | Some c -> Some c
                  | None -> Some compiler.Specs.Compiler.name);
                ccompiler_version =
                  (match spec.Specs.Spec.ccompiler_version with
                  | Some v -> Some v
                  | None ->
                    Some (Specs.Vrange.exactly compiler.Specs.Compiler.version));
                cos = Some os;
                ctarget = Some target;
              }
            in
            let resolved = visit dname inherited in
            deps := resolved :: !deps
          end)
        p.Pkg.Package.dependencies;
      Hashtbl.replace nodes name
        { node with Specs.Spec.depends = List.sort_uniq compare !deps };
      name
  in
  try
    let root_name = a.Specs.Spec.aroot.Specs.Spec.cname in
    let root = visit root_name a.Specs.Spec.aroot in
    (* validate: every user ^dep must actually be in the DAG *)
    List.iter
      (fun (d : Specs.Spec.constraint_node) ->
        let dname = d.Specs.Spec.cname in
        let resolved =
          if Pkg.Repo.is_virtual repo dname then
            List.exists (fun p -> Hashtbl.mem nodes p) (Pkg.Repo.providers repo dname)
          else Hashtbl.mem nodes dname
        in
        if not resolved then
          fail
            ~hint:
              (Printf.sprintf
                 "a variant enabling the dependency may need to be set explicitly \
                  (e.g. %s+<variant> ^%s)"
                 root_name dname)
            "package %s is not a dependency of %s" dname root_name)
      a.Specs.Spec.adeps;
    (* validate conflicts a posteriori (§V-B.2) *)
    Hashtbl.iter
      (fun name (n : Specs.Spec.concrete_node) ->
        let p = Pkg.Repo.find_exn repo name in
        List.iter
          (fun (c : Pkg.Package.conflict_decl) ->
            let when_ok =
              match c.Pkg.Package.conflict_when with
              | None -> true
              | Some w -> when_holds nodes w
            in
            if when_ok && Specs.Spec.node_satisfies n c.Pkg.Package.conflict_spec then
              fail
                ~hint:"overconstrain the input spec to avoid the conflicting choice"
                "conflict in %s: %s%s" name
                (Specs.Spec.node_to_string c.Pkg.Package.conflict_spec)
                (if c.Pkg.Package.conflict_msg = "" then ""
                 else " (" ^ c.Pkg.Package.conflict_msg ^ ")"))
          p.Pkg.Package.conflicts)
      nodes;
    let all = Hashtbl.fold (fun _ n acc -> n :: acc) nodes [] in
    Ok (Specs.Spec.make_concrete ~root all)
  with
  | Fail e -> Error e
  | Invalid_argument m -> Error { message = m; hint = None }

let concretize_spec ?env ?prefs ~repo text =
  concretize ?env ?prefs ~repo (Specs.Spec_parser.parse text)
