lib/core/greedy.mli: Facts Pkg Preferences Specs
