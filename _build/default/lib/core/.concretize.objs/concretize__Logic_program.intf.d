lib/core/logic_program.mli: Asp
