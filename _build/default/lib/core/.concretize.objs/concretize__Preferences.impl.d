lib/core/preferences.ml: List Option Pkg Specs
