lib/core/extract.mli: Asp Specs
