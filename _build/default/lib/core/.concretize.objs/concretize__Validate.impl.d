lib/core/validate.ml: Format Hashtbl List Pkg Specs String
