lib/core/multishot.mli: Asp Concretizer Facts Pkg Preferences Specs
