lib/core/multishot.ml: Concretizer Hashtbl List Option Pkg Specs Unix
