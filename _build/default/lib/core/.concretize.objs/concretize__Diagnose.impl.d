lib/core/diagnose.ml: Facts Format List Pkg Specs String
