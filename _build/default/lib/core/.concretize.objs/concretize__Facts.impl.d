lib/core/facts.ml: Asp Hashtbl List Pkg Preferences Specs String
