lib/core/greedy.ml: Facts Format Hashtbl Int List Pkg Preferences Printf Specs String
