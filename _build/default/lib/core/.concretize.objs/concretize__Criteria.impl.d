lib/core/criteria.ml: Format List
