lib/core/concretizer.mli: Asp Facts Pkg Preferences Specs
