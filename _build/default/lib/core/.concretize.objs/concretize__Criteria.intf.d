lib/core/criteria.mli: Format
