lib/core/extract.ml: Asp Format Hashtbl List Option Specs
