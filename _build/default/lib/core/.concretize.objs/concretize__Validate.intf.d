lib/core/validate.mli: Format Pkg Specs
