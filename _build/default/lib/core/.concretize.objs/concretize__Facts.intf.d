lib/core/facts.mli: Asp Pkg Preferences Specs
