lib/core/diagnose.mli: Facts Pkg Specs
