lib/core/logic_program.ml: Asp List String
