lib/core/concretizer.ml: Asp Diagnose Extract Facts List Logic_program Preferences Specs Unix
