lib/core/preferences.mli: Pkg Specs
