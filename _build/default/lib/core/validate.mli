(** Independent validation of concrete specs against a repository — the
    checklist of §III-C.1 ("a solution is valid iff ..."), implemented
    directly on the DAG rather than through the solver.

    Used as an oracle in tests (every concretizer answer must validate) and
    as a standalone audit for externally-produced specs (e.g. installed
    databases). *)

type violation = {
  v_package : string;  (** node the problem is on *)
  v_message : string;
}

val pp_violation : Format.formatter -> violation -> unit

val check : repo:Pkg.Repo.t -> Specs.Spec.concrete -> violation list
(** All violations found (empty = valid):
    - every node's package exists, its version is declared, every declared
      variant has exactly one admissible value and no extra variants appear;
    - the chosen compiler supports the chosen target;
    - for every dependency directive whose [when]-condition holds on the
      DAG, an edge to a satisfying node exists (virtuals resolve through a
      provider whose [provides] condition holds);
    - no edge is unexplained (every edge corresponds to some dependency
      directive or provider resolution);
    - no conflict declaration matches;
    - the graph is acyclic with all edges internal (guaranteed by
      {!Specs.Spec.make_concrete}, re-checked here). *)

val is_valid : repo:Pkg.Repo.t -> Specs.Spec.concrete -> bool
