exception Error of string

type stats = { possible_atoms : int; ground_rules : int; fixpoint_rounds : int }

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

(* ------------------------------------------------------------------ *)
(* Substitution environments with trailing for cheap undo.             *)
(* ------------------------------------------------------------------ *)

module Env = struct
  type t = { tbl : (string, Term.t) Hashtbl.t; trail : string Vec.t }

  let create () = { tbl = Hashtbl.create 16; trail = Vec.create ~dummy:"" () }
  let mark env = Vec.length env.trail

  let undo env m =
    while Vec.length env.trail > m do
      Hashtbl.remove env.tbl (Vec.pop env.trail)
    done

  let bind env v t =
    match Hashtbl.find_opt env.tbl v with
    | Some t' -> Term.equal t t'
    | None ->
      Hashtbl.add env.tbl v t;
      Vec.push env.trail v;
      true

  let lookup env v = Hashtbl.find_opt env.tbl v
end

(* Evaluate a term under an environment; [None] if a variable is unbound. *)
let rec eval env (t : Ast.term) : Term.t option =
  match t with
  | Ast.Cst c -> Some c
  | Ast.Var v -> Env.lookup env v
  | Ast.Interval _ -> errf "intervals are only supported in fact arguments"
  | Ast.Fn (f, args) ->
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | t :: rest -> ( match eval env t with Some v -> all (v :: acc) rest | None -> None)
    in
    Option.map (fun vs -> Term.Fun (f, vs)) (all [] args)
  | Ast.Binop (op, a, b) -> (
    match (eval env a, eval env b) with
    | Some (Term.Int x), Some (Term.Int y) ->
      let r =
        match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Div ->
          if y = 0 then errf "division by zero in grounding" else x / y
        | Ast.Mod -> if y = 0 then errf "modulo by zero in grounding" else x mod y
      in
      Some (Term.Int r)
    | Some a', Some b' ->
      errf "arithmetic on non-integer terms %a, %a" Term.pp a' Term.pp b'
    | _ -> None)

let eval_exn env ctx t =
  match eval env t with
  | Some v -> v
  | None -> errf "unsafe rule: unbound variable in %s (%a)" ctx Ast.pp_term t

(* Match pattern term [p] against ground value [v], extending [env]. *)
let rec match_term env (p : Ast.term) (v : Term.t) =
  match (p, v) with
  | Ast.Cst c, v -> Term.equal c v
  | Ast.Var x, v -> Env.bind env x v
  | Ast.Fn (f, args), Term.Fun (g, vals) ->
    String.equal f g
    && List.length args = List.length vals
    && List.for_all2 (fun p v -> match_term env p v) args vals
  | Ast.Fn _, _ -> false
  | (Ast.Binop _ | Ast.Interval _), v -> (
    match eval env p with Some pv -> Term.equal pv v | None -> false)

let match_atom env (pat : Ast.atom) (ga : Gatom.t) =
  List.for_all2 (fun p v -> match_term env p v) pat.Ast.args ga.Gatom.args

let eval_cmp c (a : Term.t) (b : Term.t) =
  let k = Term.compare a b in
  match c with
  | Ast.Eq -> k = 0
  | Ast.Ne -> k <> 0
  | Ast.Lt -> k < 0
  | Ast.Le -> k <= 0
  | Ast.Gt -> k > 0
  | Ast.Ge -> k >= 0

(* ------------------------------------------------------------------ *)
(* Compiled rules: bodies split by literal kind.                       *)
(* ------------------------------------------------------------------ *)

type split_body = {
  b_pos : Ast.atom array;
  b_cmps : (Ast.cmp * Ast.term * Ast.term) array;
  b_foralls : (Ast.atom * Ast.atom list) array;
  b_negs : Ast.atom array;
}

let split_body (body : Ast.body_lit list) =
  let pos = ref [] and cmps = ref [] and foralls = ref [] and negs = ref [] in
  List.iter
    (function
      | Ast.Pos a -> pos := a :: !pos
      | Ast.Neg a -> negs := a :: !negs
      | Ast.Cmp (c, x, y) -> cmps := (c, x, y) :: !cmps
      | Ast.Forall (a, conds) -> foralls := (a, conds) :: !foralls)
    body;
  {
    b_pos = Array.of_list (List.rev !pos);
    b_cmps = Array.of_list (List.rev !cmps);
    b_foralls = Array.of_list (List.rev !foralls);
    b_negs = Array.of_list (List.rev !negs);
  }

type compiled = {
  c_head : Ast.head;
  c_body : split_body;
  c_text : string;  (** for error messages *)
}

(* ------------------------------------------------------------------ *)
(* The grounding state.                                                *)
(* ------------------------------------------------------------------ *)

type state = {
  store : Gatom.Store.t;
  env : Env.t;
  idb : (string * int, unit) Hashtbl.t;  (** predicates with rule-defined heads *)
}

let arity (a : Ast.atom) = List.length a.Ast.args

let is_edb st (a : Ast.atom) = not (Hashtbl.mem st.idb (a.Ast.pred, arity a))

(* Candidate atom ids for a positive atom pattern under the current env.
   Picks the most selective index among argument positions whose pattern is
   already ground. *)
let candidates st (pat : Ast.atom) : int Vec.t =
  let ar = arity pat in
  let best = ref None in
  List.iteri
    (fun pos p ->
      match eval st.env p with
      | Some v ->
        let c = Gatom.Store.by_pred_arg st.store pat.Ast.pred ar ~pos ~value:v in
        let n = Vec.length c in
        (match !best with
        | Some (m, _) when m <= n -> ()
        | _ -> best := Some (n, c))
      | None -> ())
    pat.Ast.args;
  match !best with
  | Some (_, c) -> c
  | None -> Gatom.Store.by_pred st.store pat.Ast.pred ar

(* Enumerate all substitutions satisfying the positive atoms and comparisons
   of [body] over the possible-atom store.  [delta] optionally restricts one
   positive literal (by index) to atoms with id >= the given bound, for
   semi-naive evaluation.  Calls [k] for each complete substitution with the
   matched positive atom ids (in literal order). *)
let enumerate st (body : split_body) ?delta (k : int array -> unit) =
  let npos = Array.length body.b_pos in
  let matched = Array.make npos (-1) in
  let done_pos = Array.make npos false in
  let cmps_left = ref (Array.to_list body.b_cmps) in
  (* Evaluate all comparisons that have become ground; false means prune. *)
  let rec check_cmps acc = function
    | [] ->
      cmps_left := List.rev acc;
      true
    | ((c, x, y) as cmp) :: rest -> (
      match (eval st.env x, eval st.env y) with
      | Some a, Some b ->
        if eval_cmp c a b then check_cmps acc rest else false
      | _ -> check_cmps (cmp :: acc) rest)
  in
  let rec go remaining =
    if remaining = 0 then begin
      (match !cmps_left with
      | [] -> ()
      | (_, x, y) :: _ ->
        ignore (eval_exn st.env "comparison" x);
        ignore (eval_exn st.env "comparison" y));
      k (Array.copy matched)
    end
    else begin
      (* choose the unprocessed literal with the fewest candidates *)
      let best = ref (-1) and best_c = ref None and best_n = ref max_int in
      for i = 0 to npos - 1 do
        if not done_pos.(i) then begin
          let c = candidates st body.b_pos.(i) in
          let n = Vec.length c in
          if n < !best_n then begin
            best := i;
            best_c := Some c;
            best_n := n
          end
        end
      done;
      let i = !best in
      let cands = Option.get !best_c in
      done_pos.(i) <- true;
      let lo = match delta with Some (j, lo) when j = i -> lo | _ -> 0 in
      Vec.iter
        (fun id ->
          if id >= lo then begin
            let m = Env.mark st.env in
            let saved_cmps = !cmps_left in
            if
              match_atom st.env body.b_pos.(i) (Gatom.Store.atom st.store id)
              && check_cmps [] !cmps_left
            then begin
              matched.(i) <- id;
              go (remaining - 1)
            end;
            cmps_left := saved_cmps;
            Env.undo st.env m
          end)
        cands;
      done_pos.(i) <- false
    end
  in
  let m = Env.mark st.env in
  let saved = !cmps_left in
  if check_cmps [] !cmps_left then go npos;
  cmps_left := saved;
  Env.undo st.env m

(* Enumerate EDB-guard matches: used for Forall conditions and choice-element
   guards.  The guard is a conjunction of atoms over EDB predicates; local
   variables are bound during enumeration.  Calls [k] once per match. *)
let enumerate_guard st (conds : Ast.atom list) rule_text (k : unit -> unit) =
  List.iter
    (fun c ->
      if not (is_edb st c) then
        errf "condition %a in %s must range over fact-only predicates" Ast.pp_atom c
          rule_text)
    conds;
  let rec go = function
    | [] -> k ()
    | c :: rest ->
      let cands = candidates st c in
      Vec.iter
        (fun id ->
          if Gatom.Store.is_fact st.store id then begin
            let m = Env.mark st.env in
            if match_atom st.env c (Gatom.Store.atom st.store id) then go rest;
            Env.undo st.env m
          end)
        cands
    in
  go conds

let ground_atom st ctx (a : Ast.atom) : Gatom.t =
  Gatom.make a.Ast.pred (List.map (fun t -> eval_exn st.env ctx t) a.Ast.args)

(* ------------------------------------------------------------------ *)
(* Phase 1: possible-atom closure.                                     *)
(* ------------------------------------------------------------------ *)

(* Derive all head atoms of [rule] for the current substitution into the
   store (optimistic w.r.t. negation and Forall targets). *)
let derive_heads st (rule : compiled) =
  match rule.c_head with
  | Ast.Head_none -> ()
  | Ast.Head_atom a ->
    ignore (Gatom.Store.intern st.store (ground_atom st rule.c_text a))
  | Ast.Head_choice { elems; _ } ->
    List.iter
      (fun { Ast.elem; guard } ->
        let conds =
          List.map
            (function
              | Ast.Pos a -> a
              | l ->
                errf "choice guard %a in %s must be a positive atom" Ast.pp_body_lit l
                  rule.c_text)
            guard
        in
        enumerate_guard st conds rule.c_text (fun () ->
            ignore (Gatom.Store.intern st.store (ground_atom st rule.c_text elem))))
      elems

let possible_closure st (rules : compiled list) =
  let nfacts = Gatom.Store.count st.store in
  (* round 0: full evaluation over the facts *)
  List.iter (fun r -> enumerate st r.c_body (fun _ -> derive_heads st r)) rules;
  let rounds = ref 1 in
  (* semi-naive rounds: some positive literal must match an atom added since
     the previous round *)
  let frontier = ref nfacts in
  while !frontier < Gatom.Store.count st.store do
    incr rounds;
    let lo = !frontier in
    frontier := Gatom.Store.count st.store;
    List.iter
      (fun r ->
        let npos = Array.length r.c_body.b_pos in
        for i = 0 to npos - 1 do
          enumerate st r.c_body ~delta:(i, lo) (fun _ -> derive_heads st r)
        done)
      rules
  done;
  !rounds

(* ------------------------------------------------------------------ *)
(* Phase 2: emitting simplified ground rules.                          *)
(* ------------------------------------------------------------------ *)

exception Drop_instance

(* Resolve the full body of a rule instance to (pos, neg) atom-id arrays.
   [matched] are the ids matched for positive literals.  Facts are removed;
   impossible positive atoms (from Forall expansion) or negated facts drop
   the whole instance. *)
let resolve_body st (body : split_body) (matched : int array) : Ground.body =
  let pos = ref [] and neg = ref [] in
  let add_pos id = if not (Gatom.Store.is_fact st.store id) then pos := id :: !pos in
  Array.iter add_pos matched;
  Array.iter
    (fun (target, conds) ->
      enumerate_guard st conds "conditional literal" (fun () ->
          let ga = ground_atom st "conditional literal" target in
          match Gatom.Store.find st.store ga with
          | Some id -> add_pos id
          | None -> raise Drop_instance))
    body.b_foralls;
  Array.iter
    (fun a ->
      let ga = ground_atom st "negative literal" a in
      match Gatom.Store.find st.store ga with
      | None -> () (* impossible atom: [not a] trivially true *)
      | Some id -> if Gatom.Store.is_fact st.store id then raise Drop_instance else neg := id :: !neg)
    body.b_negs;
  let dedup l = List.sort_uniq Int.compare l in
  { Ground.pos = Array.of_list (dedup !pos); neg = Array.of_list (dedup !neg) }

let bound_value st rule_text = function
  | None -> None
  | Some t -> (
    match eval_exn st.env ("cardinality bound of " ^ rule_text) t with
    | Term.Int n -> Some n
    | t -> errf "cardinality bound %a in %s is not an integer" Term.pp t rule_text)

let emit_rules st (out : Ground.t) (rules : compiled list) =
  List.iter
    (fun r ->
      enumerate st r.c_body (fun matched ->
          match resolve_body st r.c_body matched with
          | exception Drop_instance -> ()
          | body -> (
            match r.c_head with
            | Ast.Head_none ->
              if Ground.body_size body = 0 then out.Ground.inconsistent <- true
              else Vec.push out.Ground.rules (Ground.Rconstraint body)
            | Ast.Head_atom a -> (
              let ga = ground_atom st r.c_text a in
              let id = Gatom.Store.intern st.store ga in
              if not (Gatom.Store.is_fact st.store id) then
                if Ground.body_size body = 0 then Gatom.Store.mark_fact st.store id
                else Vec.push out.Ground.rules (Ground.Rnormal (id, body)))
            | Ast.Head_choice { lb; ub; elems } ->
              let lb = bound_value st r.c_text lb in
              let ub = bound_value st r.c_text ub in
              let heads = ref [] in
              List.iter
                (fun { Ast.elem; guard } ->
                  let conds =
                    List.filter_map
                      (function Ast.Pos a -> Some a | _ -> None)
                      guard
                  in
                  enumerate_guard st conds r.c_text (fun () ->
                      let ga = ground_atom st r.c_text elem in
                      match Gatom.Store.find st.store ga with
                      | Some id -> heads := id :: !heads
                      | None -> heads := Gatom.Store.intern st.store ga :: !heads))
                elems;
              let heads = Array.of_list (List.sort_uniq Int.compare !heads) in
              if Array.length heads = 0 then begin
                match lb with
                | Some n when n > 0 ->
                  if Ground.body_size body = 0 then out.Ground.inconsistent <- true
                  else Vec.push out.Ground.rules (Ground.Rconstraint body)
                | _ -> ()
              end
              else
                Vec.push out.Ground.rules
                  (Ground.Rchoice { lb; ub; heads; cbody = body }))))
    rules

let emit_minimize st (out : Ground.t) (elems : Ast.min_elem list list) =
  List.iter
    (fun group ->
      List.iter
        (fun { Ast.weight; priority; tuple; guard } ->
          let body = split_body guard in
          enumerate st body (fun matched ->
              match resolve_body st body matched with
              | exception Drop_instance -> ()
              | mbody ->
                let w =
                  match eval_exn st.env "minimize weight" weight with
                  | Term.Int n -> n
                  | t -> errf "minimize weight %a is not an integer" Term.pp t
                in
                let p =
                  match eval_exn st.env "minimize priority" priority with
                  | Term.Int n -> n
                  | t -> errf "minimize priority %a is not an integer" Term.pp t
                in
                let tup = List.map (fun t -> eval_exn st.env "minimize tuple" t) tuple in
                Vec.push out.Ground.minimize
                  { Ground.mweight = w; mpriority = p; mtuple = tup; mbody }))
        group)
    elems

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

let check_safety (r : compiled) =
  let bound =
    List.concat_map Ast.atom_vars (Array.to_list r.c_body.b_pos)
  in
  let bound = List.sort_uniq String.compare bound in
  let is_bound v = List.mem v bound in
  let check_vars ctx vars =
    List.iter
      (fun v ->
        if not (is_bound v) then
          errf "unsafe rule %s: variable %s in %s not bound by a positive body literal"
            r.c_text v ctx)
      vars
  in
  Array.iter (fun a -> check_vars "negative literal" (Ast.atom_vars a)) r.c_body.b_negs;
  (* head variables must be bound, except choice-element locals bound by guards *)
  match r.c_head with
  | Ast.Head_none -> ()
  | Ast.Head_atom a -> check_vars "rule head" (Ast.atom_vars a)
  | Ast.Head_choice { elems; _ } ->
    List.iter
      (fun { Ast.elem; guard } ->
        let guard_vars =
          List.concat_map
            (function Ast.Pos a -> Ast.atom_vars a | _ -> [])
            guard
        in
        List.iter
          (fun v ->
            if not (is_bound v || List.mem v guard_vars) then
              errf
                "unsafe rule %s: choice variable %s bound neither by the body nor by \
                 its guard"
                r.c_text v)
          (Ast.atom_vars elem))
      elems

let ground (prog : Ast.program) : Ground.t * stats =
  let store = Gatom.Store.create () in
  let st = { store; env = Env.create (); idb = Hashtbl.create 64 } in
  let rules = ref [] and minimizes = ref [] in
  (* Seed facts; collect rules and classify IDB predicates. *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Show _ -> ()
      | Ast.Minimize elems -> minimizes := elems :: !minimizes
      | Ast.Rule ({ head; body } as r) ->
        if Ast.statement_is_fact stmt then begin
          match head with
          | Ast.Head_atom a ->
            (* expand interval arguments into their cartesian product *)
            let rec arg_values = function
              | Ast.Cst c -> [ c ]
              | Ast.Interval (lo, hi) -> (
                let ev t =
                  match t with
                  | Ast.Cst (Term.Int i) -> i
                  | Ast.Cst c -> errf "interval bound %a is not an integer" Term.pp c
                  | t -> errf "interval bound %a is not ground" Ast.pp_term t
                in
                let lo = ev lo and hi = ev hi in
                if lo > hi then []
                else List.init (hi - lo + 1) (fun k -> Term.Int (lo + k)))
              | (Ast.Binop _ | Ast.Fn _) as t -> (
                match eval (Env.create ()) t with
                | Some c -> [ c ]
                | None -> errf "non-ground fact argument %a" Ast.pp_term t)
              | Ast.Var _ as t -> errf "non-ground fact argument %a" Ast.pp_term t
            and expand = function
              | [] -> [ [] ]
              | t :: rest ->
                let tails = expand rest in
                List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) (arg_values t)
            in
            List.iter
              (fun args ->
                let id = Gatom.Store.intern store (Gatom.make a.Ast.pred args) in
                Gatom.Store.mark_fact store id)
              (expand a.Ast.args)
          | _ -> assert false
        end
        else begin
          List.iter
            (fun a -> Hashtbl.replace st.idb (a.Ast.pred, arity a) ())
            (Ast.head_atoms head);
          let c =
            {
              c_head = head;
              c_body = split_body body;
              c_text = Format.asprintf "%a" Ast.pp_statement (Ast.Rule r);
            }
          in
          check_safety c;
          rules := c :: !rules
        end)
    prog;
  let rules = List.rev !rules in
  let rounds = possible_closure st rules in
  let out = Ground.create store in
  emit_rules st out rules;
  emit_minimize st out (List.rev !minimizes);
  ( out,
    {
      possible_atoms = Gatom.Store.count store;
      ground_rules = Ground.num_rules out;
      fixpoint_rounds = rounds;
    } )
