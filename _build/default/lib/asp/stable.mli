(** Stable-model enforcement: lazy unfounded-set detection.

    Clark completion is complete only for {e tight} programs.  For programs
    with positive recursion (e.g. the dependency-closure rules of the
    concretizer), a supported model can contain atoms that circularly justify
    each other.  Following the assat/clasp approach, whenever the CDCL search
    reaches a total assignment we compute the {e founded} subset of the true
    atoms; if some true atoms are unfounded we reject the candidate with loop
    formulas: each unfounded atom must be false unless one of its external
    supports (supporting rules whose positive body leaves the unfounded set)
    holds. *)

val check : Translate.t -> [ `Accept | `Refine of Sat.lit list list ]
(** Inspect the solver's current total assignment.  [`Refine clauses] returns
    loop formulas, each violated by the current assignment. *)

val hook : Translate.t -> Sat.t -> [ `Accept | `Refine of Sat.lit list list ]
(** Convenience wrapper matching the [on_model] signature of {!Sat.solve}
    (skips the check entirely for tight programs). *)
