(** Tokenizer for the ASP input language. *)

type token =
  | IDENT of string  (** lowercase identifier *)
  | VARIABLE of string  (** capitalized identifier, or [_] (anonymous) *)
  | STRING of string  (** quoted string, unescaped *)
  | INT of int
  | IF  (** [:-] *)
  | DOT
  | COMMA
  | SEMI
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | AT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BACKSLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | NOT
  | MINIMIZE
  | MAXIMIZE
  | SHOW
  | CONST
  | DOTDOT  (** [..] (intervals) *)
  | EOF

exception Error of string * int
(** [Error (message, line)] *)

val pp_token : Format.formatter -> token -> unit

val tokenize : string -> (token * int) list
(** [tokenize src] lexes a whole program, pairing each token with its
    1-based source line.  [%]-comments are skipped.
    @raise Error on invalid input. *)
