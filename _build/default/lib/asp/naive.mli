(** Brute-force reference semantics for small programs (testing only).

    Enumerates every subset of the non-fact ground atoms and keeps exactly
    the stable models (Gelfond–Lifschitz reduct check, with the usual
    extension for choice rules and cardinality bounds).  Exponential — use
    on programs with at most ~20 candidate atoms. *)

val stable_models : Ast.program -> Gatom.t list list
(** All stable models, each sorted, the list itself sorted (deterministic).
    @raise Invalid_argument when the program has more than 22 candidate
    atoms. *)

val optimal_models : Ast.program -> (Gatom.t list * (int * int) list) list
(** Stable models that are lexicographically optimal w.r.t. the program's
    [#minimize] statements, with their cost vectors (priority, value),
    priorities descending. *)
