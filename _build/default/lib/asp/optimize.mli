(** Lexicographic multi-objective optimization over [#minimize] statements.

    Ground minimize entries are grouped by (priority, weight, tuple) — a
    tuple contributes its weight when any of its condition bodies holds, as
    in the ASP-Core-2 semantics.  Levels are optimized from the highest
    priority down.  Each level runs a model-guided descent: after a model
    with objective value [v], a selector-guarded pseudo-Boolean bound
    [sum <= v-1] is assumed; when the bound becomes unsatisfiable the
    optimum [v] is fixed with a permanent constraint and the next level
    starts.  This mirrors clasp's branch-and-bound ([bb]) strategy; the
    [usc]-style strategy of the paper differs only in how bounds are probed,
    not in the optimum found. *)

type level = {
  priority : int;
  entries : (int * Sat.lit) list;  (** positive weights with indicator literals *)
  offset : int;  (** constant contribution (negative weights, constant-true bodies) *)
}

val levels : Translate.t -> level list
(** Build indicator literals for all minimize groups, highest priority
    first.  Adds variables/clauses to the underlying solver. *)

val eval_level : Sat.t -> level -> int
(** Objective value of [level] in the solver's last model (offset included). *)

type outcome = {
  costs : (int * int) list;  (** (priority, optimal value) per level *)
  models_enumerated : int;  (** SAT answers seen during descent *)
}

val run :
  ?strategy:[ `Bb | `Usc ] ->
  Translate.t ->
  on_model:(Sat.t -> [ `Accept | `Refine of Sat.lit list list ]) ->
  outcome option
(** Optimize all levels.  [None] if the program is unsatisfiable.  On
    success the solver's stored model is an optimal stable model. *)
