(** Ground terms of the ASP language.

    A ground term is either an integer or a symbolic constant.  Symbolic
    constants subsume both ASP identifiers ([foo]) and quoted strings
    (["foo"]); the two spellings denote the same constant if their characters
    coincide, which is the convention used throughout this code base (the
    concretizer only ever compares constants for equality). *)

type t =
  | Int of int  (** integer constant *)
  | Str of string  (** symbolic constant or quoted string *)
  | Fun of string * t list  (** compound term, e.g. [node(1, "hdf5")] *)

val compare : t -> t -> int
(** Total order: integers before strings, then natural order. *)

val equal : t -> t -> bool

val hash : t -> int

val int : int -> t

val str : string -> t

val to_int : t -> int option
(** [to_int t] is [Some i] when [t] is an integer constant. *)

val to_string : t -> string
(** Raw contents without quoting (used when reading solutions back);
    compound terms render in ASP syntax. *)

val fun_ : string -> t list -> t

val pp : Format.formatter -> t -> unit
(** Print in ASP input syntax: integers bare, strings quoted when they are not
    valid ASP identifiers. *)
