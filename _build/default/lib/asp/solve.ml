type outcome = {
  answer : Gatom.t list;
  costs : (int * int) list;
  ground_stats : Grounder.stats;
  sat_stats : Sat.stats;
  models_enumerated : int;
  ground_time : float;
  solve_time : float;
}

type result = Sat of outcome | Unsat of { ground_time : float; solve_time : float }

(* Apply #show statements: when any are present, only atoms whose
   (predicate, arity) is explicitly shown are reported. *)
let apply_show prog answer =
  let shows = List.filter_map (function Ast.Show s -> Some s | _ -> None) prog in
  if shows = [] then answer
  else
    let shown = List.filter_map Fun.id shows in
    List.filter
      (fun (a : Gatom.t) ->
        List.mem (a.Gatom.pred, List.length a.Gatom.args) shown)
      answer

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

let solve_program ?(config = Config.default) prog =
  let (g, gstats), ground_time = time (fun () -> Grounder.ground prog) in
  let params = Config.params config.Config.preset in
  let result, solve_time =
    time (fun () ->
        let t = Translate.translate ~params g in
        let on_model = Stable.hook t in
        let strategy =
          match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
        in
        match Optimize.run ~strategy t ~on_model with
        | None -> None
        | Some { Optimize.costs; models_enumerated } ->
          Some
            ( apply_show prog (Translate.answer t),
              costs,
              Sat.stats t.Translate.sat,
              models_enumerated ))
  in
  match result with
  | None -> Unsat { ground_time; solve_time }
  | Some (answer, costs, sat_stats, models_enumerated) ->
    Sat
      {
        answer;
        costs;
        ground_stats = gstats;
        sat_stats;
        models_enumerated;
        ground_time;
        solve_time;
      }

let solve_text ?config src = solve_program ?config (Parser.parse src)

let holds o p args =
  let target = Gatom.make p args in
  List.exists (fun a -> Gatom.equal a target) o.answer

let atoms_of o p =
  List.filter_map
    (fun (a : Gatom.t) -> if String.equal a.Gatom.pred p then Some a.Gatom.args else None)
    o.answer

let enumerate ?(config = Config.default) ?(limit = max_int) prog =
  let g, _ = Grounder.ground prog in
  let params = Config.params config.Config.preset in
  let t = Translate.translate ~params g in
  let on_model = Stable.hook t in
  let strategy =
    match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
  in
  match Optimize.run ~strategy t ~on_model with
  | None -> []
  | Some _ ->
    (* block each found model on its atom variables and continue *)
    let atom_vars =
      Array.to_list t.Translate.var_of_atom |> List.filter (fun v -> v >= 0)
    in
    let results = ref [] in
    let continue_ = ref true in
    while !continue_ && List.length !results < limit do
      results := apply_show prog (Translate.answer t) :: !results;
      let blocking =
        List.map
          (fun v ->
            let l = Sat.Lit.pos v in
            if Sat.value t.Translate.sat l then Sat.Lit.negate l else l)
          atom_vars
      in
      Sat.add_clause t.Translate.sat blocking;
      match Sat.solve ~on_model t.Translate.sat with
      | Sat.Sat -> ()
      | Sat.Unsat -> continue_ := false
    done;
    List.rev !results
