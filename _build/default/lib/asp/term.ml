type t = Int of int | Str of string | Fun of string * t list

let rec compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Str x, Str y -> String.compare x y
  | Str _, _ -> -1
  | _, Str _ -> 1
  | Fun (f, xs), Fun (g, ys) ->
    let c = String.compare f g in
    if c <> 0 then c else List.compare compare xs ys

let equal a b = compare a b = 0

let rec hash = function
  | Int i -> Hashtbl.hash (0, i)
  | Str s -> Hashtbl.hash (1, s)
  | Fun (f, args) -> List.fold_left (fun acc t -> (acc * 31) + hash t) (Hashtbl.hash (2, f)) args

let int i = Int i
let str s = Str s
let fun_ f args = Fun (f, args)
let to_int = function Int i -> Some i | _ -> None

let is_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let rec pp ppf = function
  | Int i -> Format.pp_print_int ppf i
  | Str s ->
    if is_ident s then Format.pp_print_string ppf s
    else Format.fprintf ppf "%S" s
  | Fun (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
      args

let to_string = function
  | Int i -> string_of_int i
  | Str s -> s
  | Fun _ as t -> Format.asprintf "%a" pp t
