(** Recursive-descent parser for the ASP input language subset of {!Ast}. *)

exception Error of string * int
(** [Error (message, line)] *)

val parse : string -> Ast.program
(** Parse a full program.  [#maximize] statements are normalized to
    [#minimize] with negated weights; [#show] statements are ignored.
    @raise Error on syntax errors. *)

val parse_term : string -> Term.t
(** Parse a single ground constant (integer, identifier or quoted string).
    Used when reading answer atoms back. *)
