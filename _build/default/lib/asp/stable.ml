(* Unfounded-set detection on total assignments (assat-style loop formulas). *)

type pending = {
  p_atom : int;  (** supported atom *)
  s : Translate.support;
  mutable missing : int;  (** positive body atoms not yet founded *)
}

let check (t : Translate.t) =
  let store = t.Translate.ground.Ground.store in
  let natoms = Gatom.Store.count store in
  let sat = t.Translate.sat in
  let truth id =
    Gatom.Store.is_fact store id
    ||
    let v = t.Translate.var_of_atom.(id) in
    v >= 0 && Sat.current_lit_value sat (Sat.Lit.pos v) = 1
  in
  let support_body_holds (s : Translate.support) =
    match s.Translate.s_lit with
    | None -> true
    | Some l -> Sat.current_lit_value sat l = 1
  in
  let founded = Array.make natoms false in
  let queue = Queue.create () in
  let found id =
    if not founded.(id) then begin
      founded.(id) <- true;
      Queue.push id queue
    end
  in
  (* counter instances for the supports of true atoms, indexed by the
     positive body atoms they wait for *)
  let waiters = Array.make natoms ([] : pending list) in
  for id = 0 to natoms - 1 do
    if Gatom.Store.is_fact store id then found id
    else if truth id then
      List.iter
        (fun (s : Translate.support) ->
          if support_body_holds s then begin
            let relevant =
              Array.to_list s.Translate.s_pos
              |> List.filter (fun p -> not (Gatom.Store.is_fact store p))
            in
            match relevant with
            | [] -> found id
            | _ ->
              let inst = { p_atom = id; s; missing = List.length relevant } in
              List.iter (fun p -> waiters.(p) <- inst :: waiters.(p)) relevant
          end)
        t.Translate.supports.(id)
  done;
  (* propagate foundedness *)
  while not (Queue.is_empty queue) do
    let p = Queue.pop queue in
    List.iter
      (fun inst ->
        inst.missing <- inst.missing - 1;
        if inst.missing = 0 then found inst.p_atom)
      waiters.(p);
    waiters.(p) <- []
  done;
  (* unfounded set = true atoms that are not founded *)
  let unfounded = ref [] in
  for id = 0 to natoms - 1 do
    if (not (Gatom.Store.is_fact store id)) && truth id && not founded.(id) then
      unfounded := id :: !unfounded
  done;
  match !unfounded with
  | [] -> `Accept
  | u ->
    let in_u = Array.make natoms false in
    List.iter (fun id -> in_u.(id) <- true) u;
    (* External supports of the *whole* unfounded set: bodies of rules whose
       head lies in U but whose positive body does not touch U.  In any
       stable model, a true atom of U is derived by a chain that must enter
       U from outside through one of these (the per-atom restriction would
       be unsound: the chain may enter via a different atom of U). *)
    let external_supports =
      List.concat_map
        (fun id ->
          List.filter_map
            (fun (s : Translate.support) ->
              if Array.exists (fun p -> in_u.(p)) s.Translate.s_pos then None
              else s.Translate.s_lit)
            t.Translate.supports.(id))
        u
      |> List.sort_uniq Int.compare
    in
    let clauses =
      List.map
        (fun id ->
          let head_lit = Sat.Lit.pos t.Translate.var_of_atom.(id) in
          Sat.Lit.negate head_lit :: external_supports)
        u
    in
    `Refine clauses

let hook (t : Translate.t) (_sat : Sat.t) =
  if t.Translate.tight then `Accept else check t
