lib/asp/vec.mli:
