lib/asp/stable.mli: Sat Translate
