lib/asp/grounder.mli: Ast Ground
