lib/asp/gatom.ml: Format Hashtbl List String Term Vec
