lib/asp/vec.ml: Array List
