lib/asp/term.ml: Format Hashtbl Int List String
