lib/asp/stable.ml: Array Gatom Ground Int List Queue Sat Translate
