lib/asp/lexer.ml: Buffer Format List Printf String
