lib/asp/naive.mli: Ast Gatom
