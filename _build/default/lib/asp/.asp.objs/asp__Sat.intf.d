lib/asp/sat.mli:
