lib/asp/optimize.ml: Fun Ground Hashtbl Int List Option Sat Term Translate Vec
