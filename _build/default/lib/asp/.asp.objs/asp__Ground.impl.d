lib/asp/ground.ml: Array Format Gatom Term Vec
