lib/asp/sat.ml: Array Float Hashtbl Int List Option Vec
