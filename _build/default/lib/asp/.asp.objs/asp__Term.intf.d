lib/asp/term.mli: Format
