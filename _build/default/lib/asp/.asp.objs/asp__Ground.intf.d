lib/asp/ground.mli: Format Gatom Term Vec
