lib/asp/solve.mli: Ast Config Gatom Grounder Sat Term
