lib/asp/config.ml: Sat
