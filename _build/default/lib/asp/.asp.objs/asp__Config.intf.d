lib/asp/config.mli: Sat
