lib/asp/translate.ml: Array Gatom Ground Hashtbl List Option Sat Vec
