lib/asp/optimize.mli: Sat Translate
