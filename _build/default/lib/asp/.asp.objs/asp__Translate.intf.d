lib/asp/translate.mli: Gatom Ground Hashtbl Sat
