lib/asp/ast.ml: Format List Term
