lib/asp/parser.mli: Ast Term
