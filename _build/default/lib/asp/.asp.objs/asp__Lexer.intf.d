lib/asp/lexer.mli: Format
