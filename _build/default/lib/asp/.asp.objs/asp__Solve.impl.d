lib/asp/solve.ml: Array Ast Config Fun Gatom Grounder List Optimize Parser Sat Stable String Translate Unix
