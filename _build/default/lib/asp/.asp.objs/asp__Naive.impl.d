lib/asp/naive.ml: Array Fun Gatom Ground Grounder Hashtbl Int List Option Vec
