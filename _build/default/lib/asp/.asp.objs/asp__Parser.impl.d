lib/asp/parser.ml: Array Ast Format Hashtbl Lexer List Printf Term
