lib/asp/gatom.mli: Format Term Vec
