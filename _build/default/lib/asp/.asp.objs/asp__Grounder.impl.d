lib/asp/grounder.ml: Array Ast Format Gatom Ground Hashtbl Int List Option String Term Vec
