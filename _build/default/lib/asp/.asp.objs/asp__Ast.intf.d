lib/asp/ast.mli: Format Term
