(** Ground atoms and the interning store used by the grounder.

    Atoms are interned to dense integer ids.  The store maintains, per
    predicate, the list of (possibly true) atoms and per-argument-position
    indices used for joins during grounding. *)

type t = { pred : string; args : Term.t list }

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val make : string -> Term.t list -> t

(** Interning store. *)
module Store : sig
  type atom = t
  type t

  val create : unit -> t
  val intern : t -> atom -> int
  (** Id of the atom, adding it if new. *)

  val find : t -> atom -> int option
  val atom : t -> int -> atom
  val count : t -> int

  val mark_fact : t -> int -> unit
  val is_fact : t -> int -> bool
  (** Atoms asserted by ground fact statements (unconditionally true). *)

  val by_pred : t -> string -> int -> int Vec.t
  (** [by_pred store p a] is the ids of all stored atoms with predicate [p]
      and arity [a] (shared vector: do not mutate). *)

  val by_pred_arg : t -> string -> int -> pos:int -> value:Term.t -> int Vec.t
  (** Atoms of [p/a] whose argument at [pos] equals [value]. *)

  val fold_pred_names : t -> (string * int -> 'a -> 'a) -> 'a -> 'a
end
