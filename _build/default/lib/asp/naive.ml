(* Reference implementation by exhaustive enumeration. *)

let ground_only prog =
  let g, _ = Grounder.ground prog in
  g

(* Truth of a body under a candidate set (bitmask over atom ids). *)
let body_holds is_true (b : Ground.body) =
  Array.for_all is_true b.pos && not (Array.exists is_true b.neg)

let count_true is_true heads =
  Array.fold_left (fun acc h -> if is_true h then acc + 1 else acc) 0 heads

(* Is [m] (a predicate on atom ids, facts included) a model of the rules? *)
let is_model (g : Ground.t) is_true =
  (not g.Ground.inconsistent)
  && Vec.fold
       (fun ok rule ->
         ok
         &&
         match rule with
         | Ground.Rnormal (h, b) -> (not (body_holds is_true b)) || is_true h
         | Ground.Rconstraint b -> not (body_holds is_true b)
         | Ground.Rchoice { lb; ub; heads; cbody } ->
           if not (body_holds is_true cbody) then true
           else begin
             let n = count_true is_true heads in
             (match lb with Some l -> n >= l | None -> true)
             && match ub with Some u -> n <= u | None -> true
           end)
       true g.Ground.rules

(* Least fixpoint of the reduct: an atom is founded when some rule with a
   satisfied body (w.r.t. the candidate model) derives it from founded
   positive atoms; choice rules found their heads only if the head is in the
   candidate model. *)
let founded_set (g : Ground.t) natoms is_true =
  let store = g.Ground.store in
  let founded = Array.make natoms false in
  for id = 0 to natoms - 1 do
    if Gatom.Store.is_fact store id then founded.(id) <- true
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    Vec.iter
      (fun rule ->
        let derive heads (b : Ground.body) =
          if
            (not (Array.exists is_true b.neg))
            && Array.for_all is_true b.pos
            && Array.for_all (fun p -> founded.(p)) b.pos
          then
            Array.iter
              (fun h ->
                if is_true h && not founded.(h) then begin
                  founded.(h) <- true;
                  changed := true
                end)
              heads
        in
        match rule with
        | Ground.Rnormal (h, b) -> derive [| h |] b
        | Ground.Rchoice { heads; cbody; _ } -> derive heads cbody
        | Ground.Rconstraint _ -> ())
      g.Ground.rules
  done;
  founded

let candidate_atoms (g : Ground.t) =
  let store = g.Ground.store in
  let natoms = Gatom.Store.count store in
  let mentioned = Array.make natoms false in
  let touch_body (b : Ground.body) =
    Array.iter (fun i -> mentioned.(i) <- true) b.pos;
    Array.iter (fun i -> mentioned.(i) <- true) b.neg
  in
  Vec.iter
    (function
      | Ground.Rnormal (h, b) ->
        mentioned.(h) <- true;
        touch_body b
      | Ground.Rchoice { heads; cbody; _ } ->
        Array.iter (fun h -> mentioned.(h) <- true) heads;
        touch_body cbody
      | Ground.Rconstraint b -> touch_body b)
    g.Ground.rules;
  Vec.iter (fun (m : Ground.min_entry) -> touch_body m.mbody) g.Ground.minimize;
  let cands = ref [] in
  for id = natoms - 1 downto 0 do
    if mentioned.(id) && not (Gatom.Store.is_fact store id) then cands := id :: !cands
  done;
  !cands

let stable_models_ground (g : Ground.t) =
  let store = g.Ground.store in
  let natoms = Gatom.Store.count store in
  let cands = Array.of_list (candidate_atoms g) in
  let k = Array.length cands in
  if k > 22 then invalid_arg "Naive.stable_models: too many candidate atoms";
  let models = ref [] in
  for mask = 0 to (1 lsl k) - 1 do
    let truth = Array.make natoms false in
    for id = 0 to natoms - 1 do
      if Gatom.Store.is_fact store id then truth.(id) <- true
    done;
    Array.iteri (fun i id -> truth.(id) <- mask land (1 lsl i) <> 0) cands;
    let is_true id = truth.(id) in
    if is_model g is_true then begin
      let founded = founded_set g natoms is_true in
      let stable =
        Array.for_all Fun.id (Array.mapi (fun id t -> (not t) || founded.(id)) truth)
      in
      if stable then models := truth :: !models
    end
  done;
  (cands, List.rev !models)

let atoms_of_truth (g : Ground.t) truth =
  let store = g.Ground.store in
  let acc = ref [] in
  for id = Gatom.Store.count store - 1 downto 0 do
    if truth.(id) then acc := Gatom.Store.atom store id :: !acc
  done;
  List.sort Gatom.compare !acc

let stable_models prog =
  let g = ground_only prog in
  let _, models = stable_models_ground g in
  List.map (atoms_of_truth g) models |> List.sort (List.compare Gatom.compare)

(* Cost vector of a model: levels sorted by priority descending; the weight
   of a (priority, weight, tuple) group counts once if any of its bodies
   holds. *)
let cost_vector (g : Ground.t) truth =
  let is_true id = truth.(id) in
  let seen = Hashtbl.create 16 in
  Vec.iter
    (fun (m : Ground.min_entry) ->
      if body_holds is_true m.mbody then
        Hashtbl.replace seen (m.mpriority, m.mweight, m.mtuple) ())
    g.Ground.minimize;
  let levels = Hashtbl.create 8 in
  (* every priority that appears anywhere gets a level, even if it sums to 0 *)
  Vec.iter
    (fun (m : Ground.min_entry) ->
      if not (Hashtbl.mem levels m.mpriority) then Hashtbl.add levels m.mpriority 0)
    g.Ground.minimize;
  Hashtbl.iter
    (fun (p, w, _) () -> Hashtbl.replace levels p (Hashtbl.find levels p + w))
    seen;
  Hashtbl.fold (fun p v acc -> (p, v) :: acc) levels []
  |> List.sort (fun (a, _) (b, _) -> Int.compare b a)

let optimal_models prog =
  let g = ground_only prog in
  let _, models = stable_models_ground g in
  match models with
  | [] -> []
  | _ ->
    let scored = List.map (fun t -> (t, cost_vector g t)) models in
    let vec_of = List.map snd in
    let best =
      List.fold_left
        (fun acc (_, c) ->
          match acc with
          | None -> Some c
          | Some b -> if compare (vec_of c) (vec_of b) < 0 then Some c else Some b)
        None scored
    in
    let best = Option.get best in
    List.filter_map
      (fun (t, c) ->
        if vec_of c = vec_of best then Some (atoms_of_truth g t, c) else None)
      scored
    |> List.sort compare
