(** Synthetic repository generator.

    Scales the package universe to thousands of packages while reproducing
    the structural properties that drive solver cost in the paper's Fig. 7:

    - a layered DAG (utility leaves, mid-level libraries, applications);
    - an MPI-like virtual with several providers, one of which drags in a
      large toolchain closure — packages that {e can} reach the virtual hub
      form one cluster of possible-dependency counts, packages that cannot
      form another, with a gap in between (§VII-B);
    - conditional dependencies behind variants, version fan-out, and
      occasional conflicts.

    Generation is deterministic in [seed]. *)

type params = {
  seed : int;
  n_utils : int;
  n_libs : int;
  n_apps : int;
  n_mpi_providers : int;
  versions_max : int;  (** versions per package, 1..versions_max *)
  variants_max : int;
  p_dep : float;  (** probability of a cross-layer dependency *)
  p_conditional : float;  (** probability a dependency sits behind a variant *)
  p_mpi : float;  (** probability a lib/app can depend on the virtual hub *)
  p_conflict : float;
}

val default : params
(** ~300 packages, paper-like shape. *)

val scaled : int -> params
(** [scaled n] targets roughly [n] packages, keeping proportions. *)

val generate : params -> Package.t list
val repo : params -> Repo.t
