type record = {
  hash : string;
  name : string;
  version : Specs.Version.t;
  variants : (string * string) list;
  compiler : Specs.Compiler.t;
  os : Specs.Os.t;
  target : string;
  deps : (string * string) list;
}

type t = {
  by_hash : (string, record) Hashtbl.t;
  mutable insertion : string list;  (** hashes, newest first *)
}

let create () = { by_hash = Hashtbl.create 256; insertion = [] }

let add_record t r =
  if not (Hashtbl.mem t.by_hash r.hash) then begin
    Hashtbl.add t.by_hash r.hash r;
    t.insertion <- r.hash :: t.insertion
  end

let add_concrete t (c : Specs.Spec.concrete) =
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      add_record t
        {
          hash = Specs.Spec.node_hash c n.Specs.Spec.name;
          name = n.Specs.Spec.name;
          version = n.Specs.Spec.version;
          variants = n.Specs.Spec.variants;
          compiler = n.Specs.Spec.compiler;
          os = n.Specs.Spec.os;
          target = n.Specs.Spec.target;
          deps =
            List.map (fun d -> (d, Specs.Spec.node_hash c d)) n.Specs.Spec.depends;
        })
    (Specs.Spec.concrete_nodes c)

let find t hash = Hashtbl.find_opt t.by_hash hash

let by_package t name =
  List.filter_map
    (fun h ->
      match Hashtbl.find_opt t.by_hash h with
      | Some r when String.equal r.name name -> Some r
      | _ -> None)
    t.insertion

let records t = List.filter_map (Hashtbl.find_opt t.by_hash) (List.rev t.insertion)
let size t = Hashtbl.length t.by_hash
let is_empty t = size t = 0

let rec dag_complete t hash =
  match Hashtbl.find_opt t.by_hash hash with
  | None -> false
  | Some r -> List.for_all (fun (_, dh) -> dag_complete t dh) r.deps

let mem_dag t hash = dag_complete t hash

let filter t ~f =
  let keep = Hashtbl.create 256 in
  List.iter
    (fun r -> if f r then Hashtbl.replace keep r.hash r)
    (records t);
  (* drop records whose dependency closure is not fully kept *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun h (r : record) ->
        if not (List.for_all (fun (_, dh) -> Hashtbl.mem keep dh) r.deps) then begin
          Hashtbl.remove keep h;
          changed := true
        end)
      (Hashtbl.copy keep)
  done;
  let out = create () in
  List.iter (fun r -> if Hashtbl.mem keep r.hash then add_record out r) (records t);
  out
