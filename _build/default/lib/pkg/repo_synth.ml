type params = {
  seed : int;
  n_utils : int;
  n_libs : int;
  n_apps : int;
  n_mpi_providers : int;
  versions_max : int;
  variants_max : int;
  p_dep : float;
  p_conditional : float;
  p_mpi : float;
  p_conflict : float;
}

let default =
  {
    seed = 42;
    n_utils = 120;
    n_libs = 130;
    n_apps = 40;
    n_mpi_providers = 3;
    versions_max = 5;
    variants_max = 4;
    p_dep = 0.06;
    p_conditional = 0.3;
    p_mpi = 0.45;
    p_conflict = 0.05;
  }

let scaled n =
  let n = max 20 n in
  {
    default with
    n_utils = n * 2 / 5;
    n_libs = (n * 2 / 5) + (n mod 5);
    n_apps = n / 7;
    n_mpi_providers = max 2 (n / 100);
  }

let generate p =
  let rng = Random.State.make [| p.seed |] in
  let flip prob = Random.State.float rng 1.0 < prob in
  let int_in lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let open Package in
  let versions_of n =
    List.init n (fun i -> version (Printf.sprintf "%d.%d.0" (1 + ((n - i) / 10)) ((n - i) mod 10)))
  in
  let variant_names k = List.init k (fun i -> Printf.sprintf "opt%d" i) in
  let util_name i = Printf.sprintf "util-%03d" i in
  let lib_name i = Printf.sprintf "lib-%03d" i in
  let app_name i = Printf.sprintf "app-%03d" i in
  let mpi_name i = Printf.sprintf "smpi-%d" i in
  (* ---- utility layer: sparse internal deps on earlier utils ---- *)
  let utils =
    List.init p.n_utils (fun i ->
        let nvers = int_in 1 p.versions_max in
        let nvars = int_in 0 (max 0 (p.variants_max - 2)) in
        let vars = variant_names nvars in
        let deps =
          List.filteri (fun j _ -> j < i && flip (p.p_dep /. 2.)) (List.init p.n_utils Fun.id)
          |> List.filteri (fun k _ -> k < 3)
          |> List.map (fun j ->
                 let d = util_name j in
                 if vars <> [] && flip p.p_conditional then
                   depends_on d ~when_:("+" ^ List.nth vars (int_in 0 (List.length vars - 1)))
                 else depends_on d)
        in
        make (util_name i)
          (versions_of nvers
          @ List.map (fun v -> variant ~default:(flip 0.7) v) vars
          @ deps))
  in
  (* ---- MPI-like virtual hub ---- *)
  (* provider 0 drags in a big toolchain slice: this is what creates the
     cluster gap in possible-dependency counts *)
  let mpi_providers =
    List.init p.n_mpi_providers (fun i ->
        let heavy = i = 0 in
        let util_deps =
          if heavy then
            List.init (min 12 p.n_utils) (fun k ->
                depends_on (util_name (k * max 1 (p.n_utils / 13))))
          else List.init 3 (fun k -> depends_on (util_name ((i * 7 + k * 11) mod p.n_utils)))
        in
        make (mpi_name i)
          (versions_of (int_in 2 p.versions_max)
          @ [ provides "smpi"; variant ~default:false "debug" ]
          @ util_deps))
  in
  (* ---- library layer ---- *)
  let libs =
    List.init p.n_libs (fun i ->
        let nvers = int_in 1 p.versions_max in
        let nvars = int_in 1 p.variants_max in
        let vars = variant_names nvars in
        let util_deps =
          List.init (int_in 1 4) (fun k ->
              util_name ((i * 13 + k * 29) mod p.n_utils))
          |> List.sort_uniq compare
          |> List.map (fun d ->
                 if flip p.p_conditional then
                   depends_on d ~when_:("+" ^ List.nth vars (int_in 0 (nvars - 1)))
                 else depends_on d)
        in
        let lib_deps =
          if i = 0 then []
          else
            List.init (int_in 0 2) (fun k -> lib_name ((i * 7 + k * 3) mod i))
            |> List.sort_uniq compare
            |> List.map (fun d -> depends_on d)
        in
        let mpi_dep =
          if flip p.p_mpi then
            if flip 0.5 then [ variant ~default:true "mpi"; depends_on "smpi" ~when_:"+mpi" ]
            else [ depends_on "smpi" ]
          else []
        in
        let conflict_decl =
          if flip p.p_conflict then [ conflicts "%intel" ~msg:"known miscompilation" ]
          else []
        in
        make (lib_name i)
          (versions_of nvers
          @ List.map (fun v -> variant ~default:(flip 0.8) v) vars
          @ util_deps @ lib_deps @ mpi_dep @ conflict_decl))
  in
  (* ---- application layer ---- *)
  let apps =
    List.init p.n_apps (fun i ->
        let lib_deps =
          List.init (int_in 2 5) (fun k -> lib_name ((i * 17 + k * 5) mod p.n_libs))
          |> List.sort_uniq compare
          |> List.map (fun d -> depends_on d)
        in
        let mpi_dep = if flip p.p_mpi then [ depends_on "smpi" ] else [] in
        make (app_name i)
          (versions_of (int_in 1 p.versions_max)
          @ [ variant ~default:true "shared" ]
          @ lib_deps @ mpi_dep))
  in
  utils @ mpi_providers @ libs @ apps

let repo p =
  Repo.make
    ~preferred_providers:(List.init p.n_mpi_providers (fun i -> ("smpi", Printf.sprintf "smpi-%d" i)))
    (generate p)
