open Package

(* ------------------------------------------------------------------ *)
(* Build tools                                                         *)
(* ------------------------------------------------------------------ *)

let m4 = make "m4" [ version "1.4.19"; version "1.4.18"; depends_on "libsigsegv" ]
let libsigsegv = make "libsigsegv" [ version "2.13"; version "2.12" ]

let autoconf =
  make "autoconf"
    [ version "2.71"; version "2.69"; depends_on "m4@1.4.8:"; depends_on "perl" ]

let automake =
  make "automake" [ version "1.16.5"; version "1.16.3"; depends_on "autoconf"; depends_on "perl" ]

let libtool = make "libtool" [ version "2.4.7"; version "2.4.6"; depends_on "m4@1.4.6:" ]
let pkgconf = make "pkgconf" [ version "1.8.0"; version "1.7.4" ]

let ninja = make "ninja" [ version "1.11.1"; version "1.10.2"; depends_on "python" ]

let cmake =
  make "cmake"
    [
      version "3.23.1";
      version "3.21.4";
      version "3.21.1";
      version "3.18.4";
      variant "ownlibs" ~default:true ~description:"use bundled curl and zlib";
      variant "ncurses" ~default:true ~description:"build the ccmake TUI";
      variant "qt" ~default:false ~description:"build the Qt GUI";
      depends_on "ncurses" ~when_:"+ncurses";
      depends_on "curl" ~when_:"~ownlibs";
      depends_on "zlib" ~when_:"~ownlibs";
      depends_on "openssl" ~when_:"~ownlibs";
      depends_on "qt@5.9:" ~when_:"+qt";
    ]

let gmake =
  make "gmake" [ version "4.3"; version "4.2.1"; variant "guile" ~default:false ]

let perl =
  make "perl"
    [
      version "5.34.1";
      version "5.34.0";
      version "5.30.3";
      variant "threads" ~default:true;
      depends_on "gdbm";
      depends_on "zlib";
      depends_on "bzip2";
    ]

let python =
  make "python"
    [
      version "3.10.4";
      version "3.9.12";
      version "3.8.13";
      version "2.7.18" ~deprecated:true;
      variant "ssl" ~default:true ~description:"openssl support";
      variant "tkinter" ~default:false;
      variant "optimizations" ~default:false;
      depends_on "openssl" ~when_:"+ssl";
      depends_on "zlib";
      depends_on "bzip2";
      depends_on "xz";
      depends_on "expat";
      depends_on "libffi";
      depends_on "readline";
      depends_on "sqlite";
      depends_on "gettext";
    ]

(* ------------------------------------------------------------------ *)
(* Core libraries                                                      *)
(* ------------------------------------------------------------------ *)

let zlib =
  make "zlib"
    [
      version "1.2.12";
      version "1.2.11";
      version "1.2.8";
      version "1.2.3" ~deprecated:true;
      variant "pic" ~default:true ~description:"position independent code";
      variant "shared" ~default:true;
    ]

let zstd =
  make "zstd" [ version "1.5.2"; version "1.4.9"; variant "programs" ~default:false ]

let bzip2 =
  make "bzip2"
    [ version "1.0.8"; version "1.0.7"; version "1.0.6"; variant "shared" ~default:true ]

let xz = make "xz" [ version "5.2.5"; version "5.2.4"; variant "pic" ~default:false ]
let libiconv = make "libiconv" [ version "1.16"; version "1.15" ]

let ncurses =
  make "ncurses"
    [
      version "6.2";
      version "6.1";
      variant "termlib" ~default:true;
      variant "symlinks" ~default:false;
      depends_on "pkgconf";
    ]

let readline = make "readline" [ version "8.1"; version "8.0"; depends_on "ncurses" ]

let openssl =
  make "openssl"
    [
      version "1.1.1q";
      version "1.1.1k";
      version "1.0.2u" ~deprecated:true;
      variant "certs" ~default:true;
      depends_on "zlib";
      depends_on "perl@5.14.0:";
    ]

let curl =
  make "curl"
    [
      version "7.83.0";
      version "7.78.0";
      variant "tls" ~default:true;
      variant "nghttp2" ~default:false;
      depends_on "openssl" ~when_:"+tls";
      depends_on "zlib";
    ]

let sqlite =
  make "sqlite"
    [ version "3.38.5"; version "3.36.0"; variant "fts" ~default:true; depends_on "readline"; depends_on "zlib" ]

let gettext =
  make "gettext"
    [
      version "0.21";
      version "0.20.2";
      variant "curses" ~default:true;
      depends_on "ncurses" ~when_:"+curses";
      depends_on "libiconv";
      depends_on "libxml2";
    ]

let libxml2 =
  make "libxml2"
    [
      version "2.9.13";
      version "2.9.12";
      variant "python" ~default:false;
      depends_on "zlib";
      depends_on "xz";
      depends_on "libiconv";
      depends_on "python" ~when_:"+python";
    ]

let expat = make "expat" [ version "2.4.8"; version "2.4.1"; depends_on "libbsd" ]
let libbsd = make "libbsd" [ version "0.11.5"; version "0.11.3"; depends_on "libmd" ]
let libmd = make "libmd" [ version "1.0.4"; version "1.0.3" ]
let gdbm = make "gdbm" [ version "1.23"; version "1.19"; depends_on "readline" ]
let libffi = make "libffi" [ version "3.4.2"; version "3.3" ]

let libpng =
  make "libpng" [ version "1.6.37"; version "1.6.0"; version "1.5.30"; depends_on "zlib@1.0.4:" ]

(* ------------------------------------------------------------------ *)
(* Low-level HPC plumbing                                              *)
(* ------------------------------------------------------------------ *)

let numactl =
  make "numactl" [ version "2.0.14"; version "2.0.12"; depends_on "autoconf"; depends_on "automake"; depends_on "libtool" ]

let hwloc =
  make "hwloc"
    [
      version "2.7.1";
      version "2.6.0";
      version "1.11.13";
      variant "libxml2" ~default:true;
      variant "cuda" ~default:false;
      variant "opencl" ~default:false;
      depends_on "libxml2" ~when_:"+libxml2";
      depends_on "ncurses";
      depends_on "numactl" ~when_:"target=x86_64:";
      depends_on "cuda" ~when_:"+cuda";
    ]

let libevent =
  make "libevent"
    [ version "2.1.12"; version "2.1.8"; variant "openssl" ~default:true; depends_on "openssl" ~when_:"+openssl" ]

let pmix =
  make "pmix"
    [
      version "4.1.2";
      version "3.2.3";
      depends_on "hwloc@2.0.0:" ~when_:"@3.0.0:";
      depends_on "libevent@2.0.20:";
    ]

let ucx =
  make "ucx"
    [
      version "1.12.1";
      version "1.11.2";
      variant "thread_multiple" ~default:false;
      variant "cuda" ~default:false;
      depends_on "numactl";
      depends_on "cuda" ~when_:"+cuda";
      conflicts "target=aarch64:" ~when_:"@:1.11" ~msg:"aarch64 support requires 1.12";
    ]

let libfabric =
  make "libfabric"
    [
      version "1.14.1";
      version "1.13.2";
      variant_values "fabrics" ~default:"sockets" ~values:[ "sockets"; "verbs"; "shm" ] ();
    ]

let cuda =
  make "cuda"
    [
      version "11.7.0";
      version "11.4.2";
      version "10.2.89";
      conflicts "%gcc@12:" ~msg:"unsupported host compiler";
      conflicts "target=ppc64le:" ~when_:"@11.5:" ~msg:"ppc64le dropped after 11.4";
    ]

(* ------------------------------------------------------------------ *)
(* MPI: virtual package with several providers                         *)
(* ------------------------------------------------------------------ *)

let mpich =
  make "mpich"
    [
      version "4.0.2";
      version "3.4.3";
      version "3.1";
      variant_values "pmi" ~default:"pmi" ~values:[ "pmi"; "pmi2"; "pmix" ] ();
      variant_values "device" ~default:"ch4" ~values:[ "ch3"; "ch4" ] ();
      variant "fortran" ~default:true;
      provides "mpi";
      depends_on "hwloc@2.0.0:" ~when_:"@3.3:";
      depends_on "pmix" ~when_:"pmi=pmix";
      depends_on "ucx" ~when_:"device=ch4";
      depends_on "libfabric" ~when_:"device=ch3";
      depends_on "libxml2";
    ]

let openmpi =
  make "openmpi"
    [
      version "4.1.4";
      version "4.1.1";
      version "3.1.6";
      variant "cuda" ~default:false;
      variant "pmix" ~default:true;
      variant "legacylaunchers" ~default:false;
      provides "mpi";
      depends_on "hwloc@2.0:" ~when_:"@4.0.0:";
      depends_on "hwloc@:1.999" ~when_:"@:3.999";
      depends_on "libevent@2.0:";
      depends_on "pmix@3.2:" ~when_:"+pmix @4.0:";
      depends_on "ucx" ~when_:"@4.0:";
      depends_on "zlib";
      depends_on "cuda" ~when_:"+cuda";
    ]

let mvapich2 =
  make "mvapich2"
    [
      version "2.3.7";
      version "2.3.6";
      variant_values "process_managers" ~default:"hydra" ~values:[ "hydra"; "slurm" ] ();
      provides "mpi";
      depends_on "libfabric";
      depends_on "zlib";
      conflicts "target=aarch64:" ~msg:"mvapich2 does not support ARM";
    ]

(* The paper's potential-cycle example: mpilander provides MPI and depends on
   cmake, whose optional GUI drags in qt -> valgrind -> mpi. *)
let mpilander =
  make "mpilander"
    [
      version "develop";
      provides "mpi";
      depends_on "cmake@3.9.3:";
      conflicts "target=ppc64le:" ~msg:"single-node MPI for laptops";
    ]

let valgrind =
  make "valgrind"
    [
      version "3.19.0";
      version "3.18.1";
      variant "mpi" ~default:true ~description:"MPI wrapper support";
      variant "boost" ~default:false;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "boost" ~when_:"+boost";
    ]

let qt =
  make "qt"
    [
      version "5.15.4";
      version "5.14.2";
      version "5.9.9";
      variant "gui" ~default:true;
      variant "webkit" ~default:false;
      variant "debug" ~default:false;
      depends_on "libpng";
      depends_on "zlib";
      depends_on "openssl";
      depends_on "sqlite";
      depends_on "valgrind" ~when_:"+webkit";
      depends_on "libxml2";
    ]

let boost =
  make "boost"
    [
      version "1.79.0";
      version "1.76.0";
      version "1.73.0";
      variant "mpi" ~default:false;
      variant "python" ~default:false;
      variant "shared" ~default:true;
      depends_on "bzip2";
      depends_on "zlib";
      depends_on "zstd";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "python" ~when_:"+python";
    ]

(* ------------------------------------------------------------------ *)
(* BLAS / LAPACK: virtuals with several providers                      *)
(* ------------------------------------------------------------------ *)

let openblas =
  make "openblas"
    [
      version "0.3.20";
      version "0.3.18";
      version "0.3.10";
      variant "openmp" ~default:false ~description:"threading via OpenMP";
      variant "pic" ~default:true;
      variant "shared" ~default:true;
      provides "blas";
      provides "lapack";
      depends_on "perl";
    ]

let netlib_lapack =
  make "netlib-lapack"
    [
      version "3.10.1";
      version "3.9.1";
      variant "external-blas" ~default:false;
      provides "lapack";
      provides "blas" ~when_:"~external-blas";
      depends_on "cmake";
      depends_on "blas" ~when_:"+external-blas";
    ]

let intel_mkl =
  make "intel-mkl"
    [
      version "2020.4.304";
      version "2020.3.279";
      variant "threads" ~default:false;
      provides "blas";
      provides "lapack";
      provides "fftw-api" ~when_:"@2020:";
      conflicts "target=aarch64:" ~msg:"MKL is x86 only";
      conflicts "target=ppc64le:" ~msg:"MKL is x86 only";
    ]

let amdblis =
  make "amdblis"
    [
      version "3.1";
      version "3.0";
      provides "blas";
      variant "threads" ~default:false;
      conflicts "target=ppc64le:";
      conflicts "target=aarch64:";
    ]

(* ------------------------------------------------------------------ *)
(* Math & I/O libraries                                                *)
(* ------------------------------------------------------------------ *)

let fftw =
  make "fftw"
    [
      version "3.3.10";
      version "3.3.9";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant_values "precision" ~default:"double" ~values:[ "float"; "double"; "long_double" ] ();
      provides "fftw-api";
      depends_on "mpi" ~when_:"+mpi";
    ]

let metis =
  make "metis"
    [
      version "5.1.0";
      version "4.0.3";
      variant "int64" ~default:false;
      variant "real64" ~default:false;
      depends_on "cmake@2.8:" ~when_:"@5:";
    ]

let parmetis =
  make "parmetis"
    [
      version "4.0.3";
      variant "int64" ~default:false;
      depends_on "cmake@2.8:";
      depends_on "metis@5:";
      depends_on "mpi";
    ]

let scotch =
  make "scotch"
    [
      version "7.0.1";
      version "6.1.1";
      variant "mpi" ~default:true;
      variant "compression" ~default:true;
      depends_on "zlib" ~when_:"+compression";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "cmake@3.10:" ~when_:"@7:";
    ]

let superlu_dist =
  make "superlu-dist"
    [
      version "7.2.0";
      version "7.1.1";
      variant "int64" ~default:false;
      variant "openmp" ~default:false;
      depends_on "mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "parmetis";
      depends_on "metis@5:";
      depends_on "cmake@3.18.1:";
    ]

let hypre =
  make "hypre"
    [
      version "2.24.0";
      version "2.23.0";
      version "2.20.0";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant "int64" ~default:false;
      variant "cuda" ~default:false;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "cuda" ~when_:"+cuda";
    ]

let petsc =
  make "petsc"
    [
      version "3.17.1";
      version "3.16.6";
      version "3.14.6";
      variant "mpi" ~default:true;
      variant "hypre" ~default:true;
      variant "metis" ~default:true;
      variant "hdf5" ~default:true;
      variant "complex" ~default:false;
      variant "cuda" ~default:false;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "hypre+mpi" ~when_:"+hypre+mpi";
      depends_on "metis@5:" ~when_:"+metis";
      depends_on "hdf5+mpi" ~when_:"+hdf5+mpi";
      depends_on "python";
      depends_on "cuda" ~when_:"+cuda";
      conflicts "+hypre" ~when_:"+complex" ~msg:"hypre does not support complex scalars";
    ]

let slepc =
  make "slepc"
    [
      version "3.17.1";
      version "3.16.3";
      variant "arpack" ~default:false;
      depends_on "petsc+mpi";
      depends_on "python";
    ]

let mfem =
  make "mfem"
    [
      version "4.4.0";
      version "4.3.0";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant "petsc" ~default:false;
      variant "sundials" ~default:false;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "hypre+mpi" ~when_:"+mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "metis" ~when_:"+mpi";
      depends_on "petsc+mpi" ~when_:"+petsc";
      depends_on "zlib";
    ]

let hdf5 =
  make "hdf5"
    [
      version "1.13.1";
      version "1.12.2";
      version "1.10.8";
      version "1.10.2";
      version "1.8.22";
      variant "mpi" ~default:true ~description:"parallel HDF5";
      variant "szip" ~default:false;
      variant "shared" ~default:true;
      variant "fortran" ~default:false;
      variant_values "api" ~default:"default" ~values:[ "default"; "v18"; "v110"; "v112" ] ();
      depends_on "zlib@1.1.2:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "szip" ~when_:"+szip";
      depends_on "cmake@3.12:" ~when_:"@1.13:";
      conflicts "api=v112" ~when_:"@:1.11" ~msg:"v112 API requires 1.12 or newer";
    ]

let szip = make "szip" [ version "2.1.1"; version "2.1" ]

let netcdf_c =
  make "netcdf-c"
    [
      version "4.8.1";
      version "4.7.4";
      variant "mpi" ~default:true;
      variant "parallel-netcdf" ~default:false;
      variant "zstd" ~default:false;
      depends_on "hdf5+mpi" ~when_:"+mpi";
      depends_on "hdf5~mpi" ~when_:"~mpi";
      depends_on "parallel-netcdf" ~when_:"+parallel-netcdf";
      depends_on "zlib";
      depends_on "zstd" ~when_:"+zstd";
      depends_on "m4";
    ]

let parallel_netcdf =
  make "parallel-netcdf"
    [
      version "1.12.2";
      version "1.11.2";
      variant "fortran" ~default:true;
      depends_on "mpi";
      depends_on "m4";
      depends_on "perl";
    ]

let adios2 =
  make "adios2"
    [
      version "2.8.0";
      version "2.7.1";
      variant "mpi" ~default:true;
      variant "hdf5" ~default:false;
      variant "zfp" ~default:true;
      variant "python" ~default:false;
      depends_on "cmake@3.12:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "hdf5" ~when_:"+hdf5";
      depends_on "zfp" ~when_:"+zfp";
      depends_on "python" ~when_:"+python";
      depends_on "bzip2";
    ]

let zfp =
  make "zfp" [ version "0.5.5"; version "0.5.4"; variant "shared" ~default:true; depends_on "cmake@3.4:" ]

(* ------------------------------------------------------------------ *)
(* Performance tools & frameworks                                      *)
(* ------------------------------------------------------------------ *)

let papi =
  make "papi"
    [
      version "6.0.0.1";
      version "5.7.0";
      variant "cuda" ~default:false;
      depends_on "cuda" ~when_:"+cuda";
    ]

let libunwind =
  make "libunwind" [ version "1.6.2"; version "1.5.0"; variant "xz" ~default:false; depends_on "xz" ~when_:"+xz" ]

let libmonitor = make "libmonitor" [ version "2021.11.08"; version "2020.10.15" ]

let intel_tbb = make "intel-tbb" [ version "2021.6.0"; version "2020.3"; depends_on "cmake@3.1:" ]

let libdwarf =
  make "libdwarf" [ version "20180129"; version "20160507"; depends_on "elfutils"; depends_on "zlib" ]

let elfutils =
  make "elfutils"
    [
      version "0.187";
      version "0.186";
      variant "bzip2" ~default:false;
      variant "nls" ~default:true;
      depends_on "bzip2" ~when_:"+bzip2";
      depends_on "xz";
      depends_on "zlib";
      depends_on "gettext" ~when_:"+nls";
      depends_on "m4";
    ]

(* The paper's §V-B.1 example: mpi dependency conditional on a
   non-default variant. *)
let hpctoolkit =
  make "hpctoolkit"
    [
      version "2022.04.15";
      version "2021.10.15";
      variant "mpi" ~default:false ~description:"build the MPI trace analyzer";
      variant "papi" ~default:true;
      variant "cuda" ~default:false;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "papi" ~when_:"+papi";
      depends_on "cuda" ~when_:"+cuda";
      depends_on "boost";
      depends_on "elfutils";
      depends_on "libdwarf";
      depends_on "libmonitor";
      depends_on "libunwind";
      depends_on "intel-tbb";
      depends_on "zlib";
      depends_on "xz";
    ]

let caliper =
  make "caliper"
    [
      version "2.7.0";
      version "2.6.0";
      variant "mpi" ~default:true;
      variant "papi" ~default:true;
      depends_on "cmake@3.12:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "papi" ~when_:"+papi";
      depends_on "adiak";
      depends_on "python";
    ]

let adiak =
  make "adiak"
    [ version "0.2.1"; version "0.1.1"; variant "mpi" ~default:true; depends_on "mpi" ~when_:"+mpi"; depends_on "cmake" ]

let tau =
  make "tau"
    [
      version "2.31.1";
      version "2.30.2";
      variant "mpi" ~default:true;
      variant "python" ~default:false;
      variant "papi" ~default:true;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "papi" ~when_:"+papi";
      depends_on "python" ~when_:"+python";
      depends_on "libunwind";
      depends_on "zlib";
    ]

let camp =
  make "camp" [ version "0.2.3"; version "0.2.2"; variant "cuda" ~default:false; depends_on "cmake@3.10:"; depends_on "cuda" ~when_:"+cuda" ]

let raja =
  make "raja"
    [
      version "2022.03.0";
      version "0.14.1";
      variant "openmp" ~default:true;
      variant "cuda" ~default:false;
      variant "shared" ~default:true;
      depends_on "cmake@3.14:";
      depends_on "camp";
      depends_on "cuda" ~when_:"+cuda";
    ]

let umpire =
  make "umpire"
    [
      version "2022.03.1";
      version "6.0.0";
      variant "cuda" ~default:false;
      variant "openmp" ~default:true;
      depends_on "cmake@3.14:";
      depends_on "camp";
      depends_on "cuda" ~when_:"+cuda";
    ]

let kokkos =
  make "kokkos"
    [
      version "3.6.00";
      version "3.5.00";
      variant "openmp" ~default:true;
      variant "cuda" ~default:false;
      variant "shared" ~default:true;
      depends_on "cmake@3.16:";
      depends_on "cuda@9.3:" ~when_:"+cuda";
      conflicts "%gcc@:5.2" ~msg:"kokkos needs C++14";
    ]

(* ------------------------------------------------------------------ *)
(* Applications & paper-specific packages                              *)
(* ------------------------------------------------------------------ *)

(* Fig. 2 of the paper, verbatim semantics. *)
let example =
  make "example"
    [
      version "1.1.0";
      version "1.0.0";
      variant "bzip" ~default:true ~description:"enable bzip";
      depends_on "bzip2@1.0.7:" ~when_:"+bzip";
      depends_on "zlib";
      depends_on "zlib@1.2.8:" ~when_:"@1.1.0:";
      depends_on "mpi";
      conflicts "%intel";
      conflicts "target=aarch64:";
    ]

(* §V-A's h5utils: conditional dependency through a variant. *)
let h5utils =
  make "h5utils"
    [
      version "1.13.1";
      version "1.12.1";
      variant "png" ~default:true;
      variant "octave" ~default:false;
      depends_on "libpng@1.6.0:" ~when_:"+png";
      depends_on "hdf5";
    ]

(* §V-B.3's berkeleygw: constraints on the chosen provider of a virtual. *)
let berkeleygw =
  make "berkeleygw"
    [
      version "3.0.1";
      version "2.1";
      variant "mpi" ~default:true;
      variant "openmp" ~default:true;
      depends_on "mpi" ~when_:"+mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "fftw-api";
      depends_on "hdf5+mpi" ~when_:"+mpi";
      depends_on "openblas+openmp" ~when_:"+openmp ^openblas";
      depends_on "fftw+openmp" ~when_:"+openmp ^fftw";
    ]

let lammps =
  make "lammps"
    [
      version "20220107";
      version "20210929";
      variant "mpi" ~default:true;
      variant "openmp" ~default:true;
      variant "fft" ~default:true;
      depends_on "cmake@3.16:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "fftw-api" ~when_:"+fft";
    ]

let gromacs =
  make "gromacs"
    [
      version "2022.1";
      version "2021.5";
      variant "mpi" ~default:true;
      variant "cuda" ~default:false;
      variant "double" ~default:false;
      depends_on "cmake@3.16:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "fftw-api";
      depends_on "cuda" ~when_:"+cuda";
    ]

let quantum_espresso =
  make "quantum-espresso"
    [
      version "7.0";
      version "6.8";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant "scalapack" ~default:true;
      depends_on "blas";
      depends_on "lapack";
      depends_on "fftw-api";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "scalapack" ~when_:"+scalapack";
      conflicts "~mpi" ~when_:"+scalapack" ~msg:"scalapack requires MPI";
    ]

let strumpack =
  make "strumpack"
    [
      version "6.3.1";
      version "6.1.0";
      variant "mpi" ~default:true;
      variant "openmp" ~default:true;
      depends_on "cmake@3.11:";
      depends_on "blas";
      depends_on "lapack";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "metis";
      depends_on "parmetis" ~when_:"+mpi";
      depends_on "zfp";
    ]

let sundials =
  make "sundials"
    [
      version "6.2.0";
      version "5.8.0";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant "hypre" ~default:false;
      depends_on "cmake@3.12:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "hypre+mpi" ~when_:"+hypre";
      depends_on "blas";
    ]

let trilinos =
  make "trilinos"
    [
      version "13.2.0";
      version "13.0.1";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant "kokkos" ~default:true;
      variant "fortran" ~default:false;
      depends_on "cmake@3.17:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "kokkos" ~when_:"+kokkos";
      depends_on "boost";
      depends_on "hdf5+mpi" ~when_:"+mpi";
      conflicts "%gcc@:4.9" ~msg:"trilinos needs C++14";
    ]

let bison = make "bison" [ version "3.8.2"; version "3.7.6"; depends_on "m4"; depends_on "perl" ]
let flex = make "flex" [ version "2.6.4"; version "2.6.3"; depends_on "bison"; depends_on "m4" ]

let swig =
  make "swig" [ version "4.0.2"; version "3.0.12"; depends_on "pcre" ]

let pcre = make "pcre" [ version "8.45"; version "8.44"; variant "jit" ~default:false ]
let lz4 = make "lz4" [ version "1.9.3"; version "1.9.2" ]
let snappy = make "snappy" [ version "1.1.9"; variant "shared" ~default:true; depends_on "cmake@3.1:" ]

let c_blosc =
  make "c-blosc"
    [
      version "1.21.1";
      version "1.21.0";
      variant "avx2" ~default:true;
      depends_on "cmake@2.8.10:";
      depends_on "lz4";
      depends_on "snappy";
      depends_on "zlib";
      depends_on "zstd";
    ]

let llvm =
  make "llvm"
    [
      version "14.0.3";
      version "13.0.1";
      version "12.0.1";
      variant "clang" ~default:true;
      variant "gold" ~default:true;
      variant "cuda" ~default:false;
      variant_values "build_type" ~default:"Release" ~values:[ "Release"; "Debug" ] ();
      depends_on "cmake@3.13.4:";
      depends_on "python";
      depends_on "perl";
      depends_on "zlib";
      depends_on "ncurses";
      depends_on "libxml2";
      depends_on "cuda" ~when_:"+cuda";
      conflicts "%gcc@:5.0" ~msg:"LLVM requires C++14";
    ]

let netlib_scalapack =
  make "netlib-scalapack"
    [
      version "2.2.0";
      version "2.1.0";
      variant "shared" ~default:true;
      provides "scalapack";
      depends_on "mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "cmake@3.9:";
    ]

let heffte =
  make "heffte"
    [
      version "2.2.0";
      version "2.1.0";
      variant "cuda" ~default:false;
      variant "fftw" ~default:true;
      depends_on "cmake@3.10:";
      depends_on "mpi";
      depends_on "fftw-api" ~when_:"+fftw";
      depends_on "cuda" ~when_:"+cuda";
    ]

let amrex =
  make "amrex"
    [
      version "22.05";
      version "22.02";
      variant "mpi" ~default:true;
      variant "openmp" ~default:false;
      variant "cuda" ~default:false;
      depends_on "cmake@3.14:";
      depends_on "mpi" ~when_:"+mpi";
      depends_on "cuda@9.0:" ~when_:"+cuda";
      conflicts "%gcc@:4.9" ~msg:"amrex needs C++14";
    ]

let magma =
  make "magma"
    [
      version "2.6.2";
      version "2.6.1";
      variant "fortran" ~default:true;
      depends_on "cmake@3.0:";
      depends_on "blas";
      depends_on "lapack";
      depends_on "cuda@8:";
      conflicts "target=aarch64:" ~msg:"no CUDA on our aarch64 machines";
    ]

let ginkgo =
  make "ginkgo"
    [
      version "1.4.0";
      version "1.3.0";
      variant "openmp" ~default:true;
      variant "cuda" ~default:false;
      depends_on "cmake@3.13:";
      depends_on "cuda@9.2:" ~when_:"+cuda";
    ]

let butterflypack =
  make "butterflypack"
    [
      version "2.1.1";
      version "2.0.0";
      variant "shared" ~default:true;
      depends_on "mpi";
      depends_on "blas";
      depends_on "lapack";
      depends_on "scalapack";
      depends_on "cmake@3.3:";
    ]

let slurm = make "slurm" [ version "21.08.8"; version "20.11.9"; depends_on "curl"; depends_on "openssl"; depends_on "readline" ]

let packages =
  [
    (* build tools *)
    m4; libsigsegv; autoconf; automake; libtool; pkgconf; ninja; cmake; gmake; perl; python;
    (* core libs *)
    zlib; zstd; bzip2; xz; libiconv; ncurses; readline; openssl; curl; sqlite; gettext;
    libxml2; expat; libbsd; libmd; gdbm; libffi; libpng; szip;
    (* plumbing *)
    numactl; hwloc; libevent; pmix; ucx; libfabric; cuda; slurm;
    (* MPI providers *)
    mpich; openmpi; mvapich2; mpilander;
    (* cycle pieces *)
    valgrind; qt; boost;
    (* BLAS/LAPACK providers *)
    openblas; netlib_lapack; intel_mkl; amdblis;
    (* math + io *)
    fftw; metis; parmetis; scotch; superlu_dist; hypre; petsc; slepc; mfem; hdf5;
    netcdf_c; parallel_netcdf; adios2; zfp;
    (* extra tools and libraries *)
    bison; flex; swig; pcre; lz4; snappy; c_blosc; llvm;
    (* extra math libraries *)
    netlib_scalapack; heffte; amrex; magma; ginkgo; butterflypack;
    (* perf tools + frameworks *)
    papi; libunwind; libmonitor; intel_tbb; libdwarf; elfutils; hpctoolkit; caliper;
    adiak; tau; camp; raja; umpire; kokkos;
    (* apps + paper packages *)
    example; h5utils; berkeleygw; lammps; gromacs; quantum_espresso; strumpack;
    sundials; trilinos;
  ]

let repo =
  Repo.make
    ~preferred_providers:
      [
        ("mpi", "mpich");
        ("mpi", "openmpi");
        ("mpi", "mvapich2");
        ("blas", "openblas");
        ("lapack", "openblas");
        ("fftw-api", "fftw");
        ("scalapack", "netlib-scalapack");
      ]
    packages

let e4s_roots =
  [
    "hdf5"; "petsc"; "hypre"; "mfem"; "trilinos"; "sundials"; "strumpack"; "superlu-dist";
    "adios2"; "netcdf-c"; "raja"; "umpire"; "kokkos"; "caliper"; "tau"; "hpctoolkit";
    "papi"; "lammps"; "gromacs"; "quantum-espresso"; "berkeleygw"; "slepc"; "fftw";
    "openblas"; "mpich"; "openmpi"; "heffte"; "amrex"; "magma"; "ginkgo";
    "netlib-scalapack"; "butterflypack";
  ]
