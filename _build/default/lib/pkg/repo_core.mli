(** The hand-modeled package repository.

    A curated, HPC-flavoured slice of Spack's mainline repository: build
    tools, core system libraries, the MPI/BLAS/LAPACK virtual ecosystems,
    math libraries, I/O libraries, performance tools and a few applications
    — plus the specific packages the paper discusses ([example] from Fig. 2,
    [hpctoolkit], [berkeleygw], [h5utils], and the [mpilander] →
    [cmake] → [qt] → [valgrind] → [mpi] potential cycle from §VII-B).

    Version numbers and constraints follow the real packages circa the
    paper's publication, simplified where the full metadata does not change
    solver behaviour. *)

val packages : Package.t list
val repo : Repo.t
(** [packages] assembled, with MPI/BLAS/LAPACK provider preferences
    (mpich, then openmpi; openblas first). *)

val e4s_roots : string list
(** Root packages standing in for E4S's ~100 core products (the subset
    modeled here). *)
