lib/pkg/repo_core.mli: Package Repo
