lib/pkg/buildcache_gen.mli: Database Repo Specs
