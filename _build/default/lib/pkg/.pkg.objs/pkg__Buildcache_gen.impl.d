lib/pkg/buildcache_gen.ml: Database Hashtbl Int List Package Random Repo Specs
