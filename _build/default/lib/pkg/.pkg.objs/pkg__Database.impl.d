lib/pkg/database.ml: Hashtbl List Specs String
