lib/pkg/repo_synth.mli: Package Repo
