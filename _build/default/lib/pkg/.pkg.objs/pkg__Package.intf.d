lib/pkg/package.mli: Specs
