lib/pkg/database.mli: Specs
