lib/pkg/package.ml: List Option Printf Specs String
