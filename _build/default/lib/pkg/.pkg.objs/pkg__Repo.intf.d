lib/pkg/repo.mli: Package
