lib/pkg/repo_synth.ml: Fun List Package Printf Random Repo
