lib/pkg/repo_core.ml: Package Repo
