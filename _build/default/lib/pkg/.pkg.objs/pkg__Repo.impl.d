lib/pkg/repo.ml: Hashtbl List Option Package Printf Specs String
