(** The installed-package database / binary buildcache.

    Stores per-node records of concrete specs keyed by DAG hash — the same
    information Spack encodes into reuse facts ([installed_hash/2] plus
    hash-keyed [imposed_constraint]s, Section VI). *)

type record = {
  hash : string;
  name : string;
  version : Specs.Version.t;
  variants : (string * string) list;
  compiler : Specs.Compiler.t;
  os : Specs.Os.t;
  target : string;
  deps : (string * string) list;  (** (dependency package, dependency hash) *)
}

type t

val create : unit -> t

val add_record : t -> record -> unit
(** Idempotent on hash. *)

val add_concrete : t -> Specs.Spec.concrete -> unit
(** Install every node of a concrete spec. *)

val find : t -> string -> record option
(** Lookup by hash. *)

val by_package : t -> string -> record list
val records : t -> record list
val size : t -> int
val is_empty : t -> bool

val filter : t -> f:(record -> bool) -> t
(** Restrict to records matching [f] whose dependency closure also matches
    (dangling sub-DAGs are dropped), e.g. per-architecture or per-OS
    buildcache slices (§VII-C). *)

val mem_dag : t -> string -> bool
(** Is the hash present with its full dependency closure? *)
