let () = Printf.printf "%d packages\n" (Pkg.Repo.size Pkg.Repo_core.repo)
