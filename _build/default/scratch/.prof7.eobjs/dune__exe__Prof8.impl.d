scratch/prof8.ml: Asp Concretize List Pkg Printf String Unix
