scratch/prof7.mli:
