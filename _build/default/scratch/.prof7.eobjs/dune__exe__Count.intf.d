scratch/count.mli:
