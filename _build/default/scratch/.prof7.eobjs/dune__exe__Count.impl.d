scratch/count.ml: Pkg Printf
