scratch/prof7.ml: Concretize Format List Pkg Printf String
