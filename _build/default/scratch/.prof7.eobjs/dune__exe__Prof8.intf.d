scratch/prof8.mli:
