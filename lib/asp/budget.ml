type phase = Ground | Search | Optimize | Verify

type reason =
  | Deadline
  | Conflict_limit
  | Instance_limit
  | Cancelled
  | Injected

type progress = { conflicts : int; instances : int; opt_steps : int }

type info = { phase : phase; reason : reason; progress : progress }

exception Exhausted of info

let phase_name = function
  | Ground -> "grounding"
  | Search -> "search"
  | Optimize -> "optimization"
  | Verify -> "verification"

let reason_name = function
  | Deadline -> "deadline"
  | Conflict_limit -> "conflict limit"
  | Instance_limit -> "instance limit"
  | Cancelled -> "cancelled"
  | Injected -> "injected fault"

let pp_info ppf i =
  Format.fprintf ppf
    "%s during %s (after %d conflicts, %d ground instances, %d optimization steps)"
    (reason_name i.reason) (phase_name i.phase) i.progress.conflicts
    i.progress.instances i.progress.opt_steps

type limits = {
  wall : float option;
  conflicts : int option;
  instances : int option;
}

let no_limits = { wall = None; conflicts = None; instances = None }

let double l =
  {
    wall = Option.map (fun w -> 2. *. w) l.wall;
    conflicts = Option.map (fun c -> 2 * c) l.conflicts;
    instances = Option.map (fun i -> 2 * i) l.instances;
  }

(* Tokens form a tree: cancelling a parent cancels every descendant, while a
   child can be cancelled on its own.  The flag is atomic because racers on
   other domains poll it; [cancel] stays async-signal-safe. *)
type cancel_token = { flag : bool Atomic.t; parent : cancel_token option }

let token () = { flag = Atomic.make false; parent = None }
let child_token parent = { flag = Atomic.make false; parent = Some parent }
let cancel t = Atomic.set t.flag true

let rec is_cancelled t =
  Atomic.get t.flag
  || (match t.parent with Some p -> is_cancelled p | None -> false)

type event = Conflict | Instance | Opt_step | Verify_step

type t = {
  deadline : float option;  (* absolute, seconds since the epoch *)
  max_conflicts : int;  (* max_int when unbounded *)
  max_instances : int;
  cancel : cancel_token option;
  mutable hook : (event -> bool) option;
  mutable phase : phase;
  mutable conflicts : int;
  mutable instances : int;
  mutable opt_steps : int;
  mutable ticks : int;  (* all events, for periodic deadline checks *)
  mutable tripped : info option;
}

let start ?cancel l =
  {
    deadline = Option.map (fun w -> Unix.gettimeofday () +. w) l.wall;
    max_conflicts = Option.value ~default:max_int l.conflicts;
    max_instances = Option.value ~default:max_int l.instances;
    cancel;
    hook = None;
    phase = Ground;
    conflicts = 0;
    instances = 0;
    opt_steps = 0;
    ticks = 0;
    tripped = None;
  }

let unlimited = start no_limits

let cancel_token_of b = b.cancel

(* A racer's budget: same absolute deadline and event limits as the parent,
   fresh counters (each domain ticks its own), optionally a different cancel
   token (typically a {!child_token} of the parent's so the race can be
   cancelled without touching the parent).  The fault hook is deliberately
   not copied: hooks count events of a single sequential solve. *)
let sibling ?cancel b =
  {
    deadline = b.deadline;
    max_conflicts = b.max_conflicts;
    max_instances = b.max_instances;
    cancel = (match cancel with Some _ as c -> c | None -> b.cancel);
    hook = None;
    phase = Ground;
    conflicts = 0;
    instances = 0;
    opt_steps = 0;
    ticks = 0;
    tripped = None;
  }

let enter b phase = b.phase <- phase

let progress b =
  { conflicts = b.conflicts; instances = b.instances; opt_steps = b.opt_steps }

let set_hook b h = b.hook <- Some h

let trip b reason =
  let i = { phase = b.phase; reason; progress = progress b } in
  b.tripped <- Some i;
  raise (Exhausted i)

(* Once exhausted, stay exhausted: a caller that catches {!Exhausted} to
   salvage a degraded result must not be able to keep searching. *)
let check_tripped b =
  match b.tripped with Some i -> raise (Exhausted i) | None -> ()

let check_cancel b =
  match b.cancel with Some c when is_cancelled c -> trip b Cancelled | _ -> ()

let check_deadline b =
  match b.deadline with
  | Some d when Unix.gettimeofday () > d -> trip b Deadline
  | _ -> ()

(* The deadline involves a syscall: only probe it every 32 events (grounding
   ticks once per instance on a hot path). *)
let maybe_deadline b =
  b.ticks <- b.ticks + 1;
  if b.ticks land 31 = 0 then check_deadline b

let fire_hook b ev =
  match b.hook with Some h when h ev -> trip b Injected | _ -> ()

let tick_conflict b =
  check_tripped b;
  b.conflicts <- b.conflicts + 1;
  fire_hook b Conflict;
  check_cancel b;
  if b.conflicts > b.max_conflicts then trip b Conflict_limit;
  maybe_deadline b

let tick_instance b =
  check_tripped b;
  b.instances <- b.instances + 1;
  fire_hook b Instance;
  check_cancel b;
  if b.instances > b.max_instances then trip b Instance_limit;
  maybe_deadline b

let tick_opt_step b =
  check_tripped b;
  b.opt_steps <- b.opt_steps + 1;
  fire_hook b Opt_step;
  check_cancel b;
  (* opt steps have no dedicated limit: each step's inner solve is bounded
     by the conflict budget; check the deadline eagerly instead, steps are
     coarse *)
  check_deadline b

let tick_verify_step b =
  check_tripped b;
  fire_hook b Verify_step;
  check_cancel b;
  (* verification is a single bounded pass over the ground program: no
     dedicated limit, and no progress counter of its own — the event exists
     so fault injection and cancellation reach the checker *)
  maybe_deadline b

let poll b =
  check_tripped b;
  check_cancel b;
  maybe_deadline b
