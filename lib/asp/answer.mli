(** Hashed index over an answer set (a list of ground atoms).

    [Solve.holds] / [Solve.atoms_of] used to scan the answer list with
    [Gatom.equal] per query — O(answer) per lookup, and the concretizer's
    extraction layer issues many.  The index is built once per answer and
    keyed through the interned term ids ({!Gatom.hash} is a fold over
    [Term.id]s, no structural recursion), so membership is O(arity) and
    per-predicate access is O(1). *)

type t

val of_list : Gatom.t list -> t
(** Build the index in one pass; the input order of atoms is preserved by
    {!find} / {!atoms_of}. *)

val mem : t -> Gatom.t -> bool

val holds : t -> string -> Term.t list -> bool
(** [holds idx p args] = [mem idx (Gatom.make p args)]. *)

val find : t -> string -> Gatom.t list
(** All atoms with predicate [p], in answer order ([] when none). *)

val atoms_of : t -> string -> Term.t list list
(** Argument vectors of all atoms with predicate [p], in answer order. *)

val size : t -> int
(** Number of indexed atoms. *)
