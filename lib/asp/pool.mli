(** A fixed-size pool of OCaml 5 domains with a shared work queue.

    Domains are expensive to spawn (fresh minor heap, registration with the
    runtime), so the pool spawns them once and reuses them across solves:
    the portfolio races ({!Portfolio}) and batch concretization
    ([Concretize.Concretizer.solve_many]) both draw on one pool for the
    lifetime of the process.

    Jobs are arbitrary thunks; {!submit} enqueues and returns a future,
    {!await} blocks until the job ran and re-raises (with its original
    backtrace) any exception the job died with.  The queue is FIFO, so
    submission order is start order — {e not} completion order.

    The pool is safe to use from several domains at once, but jobs must not
    {!await} futures of jobs that have not started yet on the same pool
    (classic nested-blocking deadlock); the solving layer never nests. *)

type t

val create : domains:int -> t
(** Spawn [domains] worker domains (at least 1).
    @raise Invalid_argument when [domains < 1]. *)

val size : t -> int
(** Number of worker domains. *)

val default_size : unit -> int
(** [Domain.recommended_domain_count () - 1], at least 1: leave one core to
    the submitting domain. *)

type 'a future

val submit : t -> (unit -> 'a) -> 'a future
(** Enqueue a job.
    @raise Invalid_argument if the pool was {!shutdown}. *)

val await : 'a future -> 'a
(** Block until the job completed; its result, or re-raise its exception. *)

val is_done : 'a future -> bool
(** Non-blocking: has the job completed (successfully or not)?  When [true],
    {!await} returns without blocking.  The request scheduler
    ([Server.Scheduler]) polls this from its event loop. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** Run [f] on every element across the pool; results in input order.  The
    first exceptional job (in input order) is re-raised, after every job
    finished. *)

val shutdown : t -> unit
(** Drain the queue, then join every worker.  Idempotent. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** [create], run, [shutdown] (also on exception). *)
