(** Ground terms of the ASP language, with hash-consing (maximal sharing).

    A ground term is either an integer, a symbolic constant, or a compound
    term.  Symbolic constants subsume both ASP identifiers ([foo]) and quoted
    strings (["foo"]); the two spellings denote the same constant if their
    characters coincide, which is the convention used throughout this code
    base (the concretizer only ever compares constants for equality).

    Every term is interned in a global hash-cons table: structurally equal
    terms are the {e same} OCaml value.  Consequently {!equal} is physical
    equality, {!hash} is an O(1) field read, and {!id} is a dense integer
    usable as a hash/index key.  Terms must only be built with the smart
    constructors {!int}, {!str} and {!fun_}; the record is exposed [private]
    so call sites can pattern-match on [t.node] but cannot forge un-interned
    values.

    The table is domain-safe (sharded, one lock per shard) and shared by
    every domain, so physical equality of equal terms holds across domains —
    a requirement of the parallel solving layer ({!Pool}, {!Portfolio}). *)

type t = private { node : node; id : int; hkey : int }

and node =
  | Int of int  (** integer constant *)
  | Str of string  (** symbolic constant or quoted string *)
  | Fun of string * t list  (** compound term, e.g. [node(1, "hdf5")] *)

val node : t -> node

val id : t -> int
(** Unique dense id of the interned term: [id a = id b] iff [a == b].  Ids
    are assigned in first-interning order and are stable for the lifetime of
    the process. *)

val compare : t -> t -> int
(** Total order: integers before strings before compound terms, then natural
    order.  This is the order exposed to ASP programs through comparison
    literals, so it must stay structural — it is {e not} the id order. *)

val equal : t -> t -> bool
(** Physical equality ([==]); sound because terms are hash-consed. *)

val hash : t -> int
(** Precomputed hash, O(1). *)

val int : int -> t

val str : string -> t

val fun_ : string -> t list -> t

val to_int : t -> int option
(** [to_int t] is [Some i] when [t] is an integer constant. *)

val to_string : t -> string
(** Raw contents without quoting (used when reading solutions back);
    compound terms render in ASP syntax. *)

val interned : unit -> int
(** Number of distinct terms interned so far (diagnostics). *)

val pp : Format.formatter -> t -> unit
(** Print in ASP input syntax: integers bare, strings quoted when they are not
    valid ASP identifiers. *)
