(** Parallel portfolio solving: race diverse solver configurations over one
    shared ground program.

    clasp's parallel mode wins wall-clock not by splitting the search space
    but by {e strategy diversity}: several configurations (heuristic decay,
    restart schedule, optimization strategy, seeds) attack the same instance
    and the first to prove optimality wins.  This module reproduces that on
    OCaml 5 domains.

    What is shared between racers is immutable during the race: the ground
    program ({!Ground.t} including its atom store) and the global interned
    term table.  Each racer builds its own {!Sat} state via
    {!Translate.translate}, so no solver state crosses domains.

    Cancellation protocol: every racer's budget shares one {e race token},
    a {!Budget.child_token} of the caller's token when there is one.  A
    racer that finishes with a {e proof} — optimality or unsatisfiability —
    cancels the race token on its own; the remaining racers trip
    [Cancelled] at their next budget tick and unwind.  A SIGINT on the
    caller's token reaches every racer through the parent link.

    Determinism: the winning {e cost vector} is deterministic — the
    lexicographic optimum is unique, and every racer that completes proves
    the same one — even though which racer wins (and hence which optimal
    {e model} is reported) may vary with scheduling.  On budget expiry the
    combined result is also deterministic given the per-racer outcomes: the
    lexicographically best incumbent wins, ties broken by tightest proved
    bounds, then racer order. *)

type racer = {
  rname : string;  (** e.g. ["usc/tweety"], for stats and tests *)
  rpreset : Config.preset;
  rstrategy : Config.strategy;
  rseed_offset : int;  (** added to the preset's EVSIDS seed *)
}

val racers : ?config:Config.t -> int -> racer list
(** [n] diverse racers: racer 0 is exactly [config]'s preset and strategy
    (a 1-racer portfolio degenerates to the sequential solver), then the
    strategy alternates and the preset cycles; once every
    strategy × preset pair is used, seeds are reshuffled. *)

(** One racer's result. *)
type attempt =
  | Model of {
      answer : Gatom.t list;
      costs : (int * int) list;
      quality : Optimize.quality;
      sat_stats : Sat.stats;
      models_enumerated : int;
      verified : bool;  (** passed {!Verify} (always true when verifying) *)
    }  (** found a stable model; optimal iff [quality = `Optimal] *)
  | Proved_unsat
  | Gave_up of Budget.info
      (** budget expired (or the race was cancelled) before any model *)
  | Quarantined of { violations : string list }
      (** the racer's model failed independent verification: it is excluded
          from the combination (and never cancels the race); selected only
          when no racer produced anything usable, signalling
          {!solve_program}'s sequential rescue *)

type outcome = {
  winner : string;  (** [rname] of the racer whose attempt was selected *)
  attempt : attempt;  (** the combined verdict (see module doc) *)
  attempts : (string * attempt) list;  (** every racer's result, racer order *)
  race_time : float;  (** wall-clock of the whole race, seconds *)
}

val race :
  pool:Pool.t ->
  ?hints:(Translate.t -> unit) ->
  ?verify:bool ->
  racers:racer list ->
  budget:Budget.t ->
  Ground.t ->
  outcome
(** Race the configurations over the pool.  [budget] is the caller's armed
    budget: each racer gets a {!Budget.sibling} (same deadline and limits,
    fresh counters) on the race token.  [hints] runs on each racer's fresh
    translation before search (the concretizer's phase seeding).
    With [verify] (default [true]) each winning model is independently
    re-checked {e before} the racer is allowed to cancel the others — the
    verify-then-cancel handshake; a failing model becomes {!Quarantined}
    and the race continues.
    Racer exceptions other than [Budget.Exhausted] are re-raised. *)

val solve_program :
  ?pool:Pool.t ->
  ?config:Config.t ->
  ?budget:Budget.t ->
  jobs:int ->
  Ast.program ->
  Solve.result
(** Drop-in parallel [Solve.solve_program]: ground once (budgeted, on the
    calling domain), then {!race} [jobs] racers.  Without [pool] an
    ephemeral pool of [min jobs (Pool.default_size ())] domains is created
    and shut down around the race. *)
