(** Lexicographic multi-objective optimization over [#minimize] statements.

    Ground minimize entries are grouped by (priority, weight, tuple) — a
    tuple contributes its weight when any of its condition bodies holds, as
    in the ASP-Core-2 semantics.  Levels are optimized from the highest
    priority down.  Each level runs a model-guided descent: after a model
    with objective value [v], a selector-guarded pseudo-Boolean bound
    [sum <= v-1] is assumed; when the bound becomes unsatisfiable the
    optimum [v] is fixed with a permanent constraint and the next level
    starts.  This mirrors clasp's branch-and-bound ([bb]) strategy; the
    [usc]-style strategy of the paper differs only in how bounds are probed,
    not in the optimum found. *)

type level = {
  priority : int;
  entries : (int * Sat.lit) list;  (** positive weights with indicator literals *)
  offset : int;  (** constant contribution (negative weights, constant-true bodies) *)
}

val levels : Translate.t -> level list
(** Build indicator literals for all minimize groups, highest priority
    first.  Adds variables/clauses to the underlying solver. *)

val eval_level : Sat.t -> level -> int
(** Objective value of [level] in the solver's last model (offset included). *)

type quality =
  [ `Optimal  (** every level solved to proven optimality *)
  | `Degraded of (int * int) list
    (** the budget expired mid-descent; the payload lists, for the
        interrupted level and every lower-priority level, the (priority,
        proved lower bound) at interruption.  Earlier levels are exact. *) ]

type outcome = {
  costs : (int * int) list;
  (** (priority, value) per level: the optimum for completed levels, the
      returned model's value for degraded ones *)
  models_enumerated : int;  (** SAT answers seen during descent *)
  quality : quality;
}

val run :
  ?strategy:[ `Bb | `Usc ] ->
  ?budget:Budget.t ->
  Translate.t ->
  on_model:(Sat.t -> [ `Accept | `Refine of Sat.lit list list ]) ->
  outcome option
(** Optimize all levels.  [None] if the program is unsatisfiable.  On
    success the solver's stored model is a stable model realizing [costs]:
    the optimum when [quality] is [`Optimal]; otherwise the best model
    found before the budget expired, whose cost vector is lexicographically
    >= the optimum and satisfies every completed level's fixed bound (the
    {e anytime} contract of clasp's [--time-limit]).
    @raise Budget.Exhausted only when the budget expires before any model
    is in hand (during the initial search); after that, expiry degrades the
    outcome instead of raising. *)
