type racer = {
  rname : string;
  rpreset : Config.preset;
  rstrategy : Config.strategy;
  rseed_offset : int;
}

let flip = function Config.Bb -> Config.Usc | Config.Usc -> Config.Bb

let racers ?(config = Config.default) n =
  let base = config.Config.preset in
  let presets =
    base :: List.filter (fun p -> p <> base) Config.all_presets
  in
  let np = List.length presets in
  List.init n (fun i ->
      let rpreset = List.nth presets (i / 2 mod np) in
      let rstrategy =
        if i mod 2 = 0 then config.Config.strategy else flip config.Config.strategy
      in
      let round = i / (2 * np) in
      let rseed_offset = round * 7919 in
      let rname =
        Printf.sprintf "%s/%s%s"
          (Config.strategy_name rstrategy)
          (Config.preset_name rpreset)
          (if round = 0 then "" else Printf.sprintf "+%d" round)
      in
      { rname; rpreset; rstrategy; rseed_offset })

type attempt =
  | Model of {
      answer : Gatom.t list;
      costs : (int * int) list;
      quality : Optimize.quality;
      sat_stats : Sat.stats;
      models_enumerated : int;
      verified : bool;
    }
  | Proved_unsat
  | Gave_up of Budget.info
  | Quarantined of { violations : string list }

type outcome = {
  winner : string;
  attempt : attempt;
  attempts : (string * attempt) list;
  race_time : float;
}

(* A racer that never started because the race was already over. *)
let cancelled_info =
  {
    Budget.phase = Budget.Search;
    reason = Budget.Cancelled;
    progress = { Budget.conflicts = 0; instances = 0; opt_steps = 0 };
  }

let run_racer ~hints ~verify ~race_token ~budget ground racer =
  (* a racer that starts after the race is decided must not pay for a
     translation: losing promptly is the point of the cancel protocol *)
  if Budget.is_cancelled race_token then Gave_up cancelled_info
  else
    let b = Budget.sibling ~cancel:race_token budget in
    match
      let params = Config.params racer.rpreset in
      let params = { params with Sat.seed = params.Sat.seed + racer.rseed_offset } in
      let t = Translate.translate ~params ground in
      (match hints with Some h -> h t | None -> ());
      let on_model = Stable.hook t in
      let strategy =
        match racer.rstrategy with Config.Bb -> `Bb | Config.Usc -> `Usc
      in
      Budget.enter b Budget.Search;
      match Optimize.run ~strategy ~budget:b t ~on_model with
      | None -> Proved_unsat
      | Some { Optimize.costs; models_enumerated; quality } -> (
        let model verified =
          Model
            {
              answer = Translate.answer t;
              costs;
              quality;
              sat_stats = Sat.stats t.Translate.sat;
              models_enumerated;
              verified;
            }
        in
        if not verify then model false
        else
          (* verify BEFORE the cancel below: a bogus model must never end
             the race.  Fresh unlimited budget — the racer's own may have
             expired producing a degraded (but checkable) model. *)
          match Verify.check_translation ~costs t with
          | Ok () -> model true
          | Error vs ->
            Quarantined { violations = Verify.describe_all ground vs })
    with
    | exception Budget.Exhausted info -> Gave_up info
    | attempt ->
      (* self-service cancellation: a (verified) proof ends the race for
         everyone; quarantined racers keep the race alive so the next-best
         candidate can win *)
      (match attempt with
      | Model { quality = `Optimal; _ } | Proved_unsat ->
        Budget.cancel race_token
      | Model _ | Gave_up _ | Quarantined _ -> ());
      attempt

(* first differing level decides; vectors over the same priorities *)
let rec lex_lt a b =
  match (a, b) with
  | (_, va) :: ta, (_, vb) :: tb ->
    va < vb || (va = vb && lex_lt ta tb)
  | _ -> false

let bounds_of = function
  | Model { quality = `Degraded bounds; _ } -> bounds
  | _ -> []

(* tighter = lexicographically greater proved lower bounds *)
let rec lex_gt a b =
  match (a, b) with
  | (_, va) :: ta, (_, vb) :: tb ->
    va > vb || (va = vb && lex_gt ta tb)
  | (_ :: _, []) -> true
  | _ -> false

let progress_total (i : Budget.info) =
  i.Budget.progress.Budget.conflicts + i.Budget.progress.Budget.instances
  + i.Budget.progress.Budget.opt_steps

(* Deterministic combination given the per-racer attempts (racer order):
   a proof wins outright; else the lexicographically best incumbent, ties
   broken by tightest proved bounds, then racer order; else the give-up
   that got furthest.  Quarantined attempts (failed verification) are never
   proofs or incumbents — one is returned only when no racer produced
   anything usable, signalling the caller to run the sequential rescue. *)
let combine attempts =
  let find_proof =
    List.find_opt
      (fun (_, a) ->
        match a with
        | Proved_unsat | Model { quality = `Optimal; _ } -> true
        | _ -> false)
      attempts
  in
  match find_proof with
  | Some (name, a) -> (name, a)
  | None -> (
    let incumbents =
      List.filter (fun (_, a) -> match a with Model _ -> true | _ -> false) attempts
    in
    match incumbents with
    | _ :: _ ->
      List.fold_left
        (fun (bn, ba) (n, a) ->
          let bc = match ba with Model m -> m.costs | _ -> [] in
          let c = match a with Model m -> m.costs | _ -> [] in
          if lex_lt c bc then (n, a)
          else if (not (lex_lt bc c)) && lex_gt (bounds_of a) (bounds_of ba) then
            (n, a)
          else (bn, ba))
        (List.hd incumbents) (List.tl incumbents)
    | [] -> (
      match
        List.find_opt
          (fun (_, a) -> match a with Quarantined _ -> true | _ -> false)
          attempts
      with
      | Some qa -> qa
      | None ->
        List.fold_left
          (fun (bn, ba) (n, a) ->
            match (ba, a) with
            | Gave_up bi, Gave_up i when progress_total i > progress_total bi ->
              (n, a)
            | _ -> (bn, ba))
          (List.hd attempts) (List.tl attempts)))

let race ~pool ?hints ?(verify = true) ~racers ~budget ground =
  if racers = [] then invalid_arg "Portfolio.race: no racers";
  let t0 = Unix.gettimeofday () in
  let race_token =
    match Budget.cancel_token_of budget with
    | Some parent -> Budget.child_token parent
    | None -> Budget.token ()
  in
  let results =
    Pool.map_list pool
      (fun racer ->
        (racer.rname, run_racer ~hints ~verify ~race_token ~budget ground racer))
      racers
  in
  let winner, attempt = combine results in
  {
    winner;
    attempt;
    attempts = results;
    race_time = Unix.gettimeofday () -. t0;
  }

let solve_program ?pool ?(config = Config.default) ?budget ~jobs prog =
  let budget =
    match budget with Some b -> b | None -> Budget.start config.Config.limits
  in
  let t0 = Unix.gettimeofday () in
  match Grounder.ground ~budget prog with
  | exception Budget.Exhausted info ->
    Solve.Interrupted
      { info; ground_time = Unix.gettimeofday () -. t0; solve_time = 0. }
  | ground, gstats ->
    let ground_time = Unix.gettimeofday () -. t0 in
    let rs = racers ~config jobs in
    let run pool =
      race ~pool ~verify:config.Config.verify ~racers:rs ~budget ground
    in
    let t1 = Unix.gettimeofday () in
    let outcome =
      match pool with
      | Some p -> run p
      | None -> Pool.with_pool ~domains:(min jobs (Pool.default_size ())) run
    in
    let sat_outcome answer costs quality sat_stats models_enumerated verified =
      let answer = Solve.apply_show prog answer in
      Solve.Sat
        {
          Solve.answer;
          index = lazy (Answer.of_list answer);
          costs;
          quality;
          ground_stats = gstats;
          sat_stats;
          models_enumerated;
          ground_time;
          solve_time = Unix.gettimeofday () -. t1;
          verified;
        }
    in
    (match outcome.attempt with
    | Proved_unsat ->
      Solve.Unsat { ground_time; solve_time = Unix.gettimeofday () -. t1 }
    | Gave_up info ->
      Solve.Interrupted
        { info; ground_time; solve_time = Unix.gettimeofday () -. t1 }
    | Model { answer; costs; quality; sat_stats; models_enumerated; verified } ->
      sat_outcome answer costs quality sat_stats models_enumerated verified
    | Quarantined _ -> (
      (* every racer's model failed verification: sequential reseeded
         re-solve of last resort (which itself retries once and raises the
         typed Verification_failed if that also fails) *)
      let params = Config.params config.Config.preset in
      let params = { params with Sat.seed = params.Sat.seed + 104729 } in
      let strategy =
        match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
      in
      match Solve.solve_ground_verified ~params ~strategy ~budget ground with
      | exception Budget.Exhausted info ->
        Solve.Interrupted
          { info; ground_time; solve_time = Unix.gettimeofday () -. t1 }
      | None ->
        Solve.Unsat { ground_time; solve_time = Unix.gettimeofday () -. t1 }
      | Some (t, costs, quality, models_enumerated, verified) ->
        sat_outcome (Translate.answer t) costs quality
          (Sat.stats t.Translate.sat)
          models_enumerated verified))
