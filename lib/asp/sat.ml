type lit = int

module Lit = struct
  let pos v = 2 * v
  let neg v = (2 * v) + 1
  let negate l = l lxor 1
  let var l = l lsr 1
  let sign l = l land 1 = 1
end

type params = {
  var_decay : float;
  clause_decay : float;
  restart_base : int;
  default_phase : bool;
  learnt_start : int;
  learnt_inc : float;
  seed : int;
}

let default_params =
  {
    var_decay = 0.95;
    clause_decay = 0.999;
    restart_base = 100;
    default_phase = false;
    learnt_start = 4000;
    learnt_inc = 1.3;
    seed = 91648253;
  }

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable pb_propagations : int;
}

type clause = {
  mutable lits : int array;
  mutable activity : float;
  learnt : bool;
  mutable deleted : bool;
}

type pb = {
  plits : int array;  (* sorted by weight, descending *)
  pws : int array;
  cap : int;
  mutable sumtrue : int;
}

type reason =
  | Decision
  | RClause of clause
  | RPb of pb * int
      (* lazy PB reason: constraint + propagated literal; the clause is
         reconstructed on demand in conflict analysis *)

let dummy_clause = { lits = [||]; activity = 0.; learnt = false; deleted = true }

type t = {
  params : params;
  mutable nvars : int;
  (* per-var state (length >= nvars) *)
  mutable values : int array;  (* -1 undef, 0 false, 1 true *)
  mutable levels : int array;
  mutable trail_pos : int array;  (* position on the trail when assigned *)
  mutable reasons : reason array;
  mutable activities : float array;
  mutable phases : bool array;
  mutable seen : bool array;
  mutable heap_pos : int array;  (* -1 when not in heap *)
  (* per-literal state (length >= 2*nvars) *)
  mutable watches : clause Vec.t array;
  mutable pb_occs : (pb * int) Vec.t array;
  (* search state *)
  trail : int Vec.t;
  trail_lim : int Vec.t;
  mutable qhead : int;
  heap : int Vec.t;  (* binary max-heap of vars by activity *)
  clauses : clause Vec.t;
  learnts : clause Vec.t;
  pbs : pb Vec.t;
  mutable var_inc : float;
  mutable cla_inc : float;
  mutable unsat : bool;
  mutable model : int array;  (* copy of values at last SAT *)
  mutable has_model : bool;  (* [model] holds a completed assignment *)
  stats : stats;
  to_clear : int Vec.t;
  mutable max_learnts : float;
  mutable core : int list;  (* assumption core of the last Unsat-under-assumptions *)
}

let create ?(params = default_params) () =
  {
    params;
    nvars = 0;
    values = Array.make 16 (-1);
    levels = Array.make 16 0;
    trail_pos = Array.make 16 0;
    reasons = Array.make 16 Decision;
    activities = Array.make 16 0.;
    phases = Array.make 16 params.default_phase;
    seen = Array.make 16 false;
    heap_pos = Array.make 16 (-1);
    watches = Array.init 32 (fun _ -> Vec.create ~dummy:dummy_clause ());
    pb_occs =
      Array.init 32 (fun _ ->
          Vec.create ~dummy:({ plits = [||]; pws = [||]; cap = 0; sumtrue = 0 }, 0) ());
    trail = Vec.create ~dummy:0 ();
    trail_lim = Vec.create ~dummy:0 ();
    qhead = 0;
    heap = Vec.create ~dummy:0 ();
    clauses = Vec.create ~dummy:dummy_clause ();
    learnts = Vec.create ~dummy:dummy_clause ();
    pbs = Vec.create ~dummy:{ plits = [||]; pws = [||]; cap = 0; sumtrue = 0 } ();
    var_inc = 1.0;
    cla_inc = 1.0;
    unsat = false;
    model = [||];
    has_model = false;
    stats =
      {
        conflicts = 0;
        decisions = 0;
        propagations = 0;
        restarts = 0;
        learnt_literals = 0;
        pb_propagations = 0;
      };
    to_clear = Vec.create ~dummy:0 ();
    max_learnts = float_of_int params.learnt_start;
    core = [];
  }

let num_vars s = s.nvars
let stats s = s.stats

(* ---------------- heap (max-heap on activity) ---------------- *)

let heap_lt s a b = s.activities.(a) > s.activities.(b)

let heap_swap s i j =
  let a = Vec.get s.heap i and b = Vec.get s.heap j in
  Vec.set s.heap i b;
  Vec.set s.heap j a;
  s.heap_pos.(a) <- j;
  s.heap_pos.(b) <- i

let rec heap_up s i =
  if i > 0 then begin
    let p = (i - 1) / 2 in
    if heap_lt s (Vec.get s.heap i) (Vec.get s.heap p) then begin
      heap_swap s i p;
      heap_up s p
    end
  end

let rec heap_down s i =
  let n = Vec.length s.heap in
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let best = ref i in
  if l < n && heap_lt s (Vec.get s.heap l) (Vec.get s.heap !best) then best := l;
  if r < n && heap_lt s (Vec.get s.heap r) (Vec.get s.heap !best) then best := r;
  if !best <> i then begin
    heap_swap s i !best;
    heap_down s !best
  end

let heap_insert s v =
  if s.heap_pos.(v) < 0 then begin
    Vec.push s.heap v;
    s.heap_pos.(v) <- Vec.length s.heap - 1;
    heap_up s (Vec.length s.heap - 1)
  end

let heap_pop s =
  let v = Vec.get s.heap 0 in
  let last = Vec.pop s.heap in
  s.heap_pos.(v) <- -1;
  if Vec.length s.heap > 0 then begin
    Vec.set s.heap 0 last;
    s.heap_pos.(last) <- 0;
    heap_down s 0
  end;
  v

let heap_update s v = if s.heap_pos.(v) >= 0 then heap_up s s.heap_pos.(v)

(* ---------------- variables ---------------- *)

let grow_arrays s =
  let n = Array.length s.values in
  if s.nvars >= n then begin
    let m = 2 * n in
    let copy a fill = Array.append a (Array.make (m - n) fill) in
    s.values <- copy s.values (-1);
    s.levels <- copy s.levels 0;
    s.trail_pos <- copy s.trail_pos 0;
    s.reasons <- copy s.reasons Decision;
    s.activities <- copy s.activities 0.;
    s.phases <- copy s.phases s.params.default_phase;
    s.seen <- copy s.seen false;
    s.heap_pos <- copy s.heap_pos (-1);
    s.watches <-
      Array.append s.watches
        (Array.init (2 * (m - n)) (fun _ -> Vec.create ~dummy:dummy_clause ()));
    s.pb_occs <-
      Array.append s.pb_occs
        (Array.init (2 * (m - n)) (fun _ ->
             Vec.create ~dummy:({ plits = [||]; pws = [||]; cap = 0; sumtrue = 0 }, 0) ()))
  end

let new_var s =
  let v = s.nvars in
  s.nvars <- v + 1;
  grow_arrays s;
  s.values.(v) <- -1;
  s.phases.(v) <- s.params.default_phase;
  (* deterministic per-seed jitter so presets differ in activity ties *)
  s.activities.(v) <- float_of_int ((s.params.seed * (v + 1)) land 0xffff) *. 1e-14;
  heap_insert s v;
  v

let lit_value s l =
  let v = s.values.(l lsr 1) in
  if v < 0 then -1 else v lxor (l land 1)

let decision_level s = Vec.length s.trail_lim

(* ---------------- activity ---------------- *)

let var_bump s v =
  s.activities.(v) <- s.activities.(v) +. s.var_inc;
  if s.activities.(v) > 1e100 then begin
    for i = 0 to s.nvars - 1 do
      s.activities.(i) <- s.activities.(i) *. 1e-100
    done;
    s.var_inc <- s.var_inc *. 1e-100
  end;
  heap_update s v

let var_decay s = s.var_inc <- s.var_inc /. s.params.var_decay

let cla_bump s c =
  c.activity <- c.activity +. s.cla_inc;
  if c.activity > 1e20 then begin
    Vec.iter (fun c -> c.activity <- c.activity *. 1e-20) s.learnts;
    s.cla_inc <- s.cla_inc *. 1e-20
  end

let cla_decay s = s.cla_inc <- s.cla_inc /. s.params.clause_decay

(* ---------------- assignment ---------------- *)

let unchecked_enqueue s l reason =
  let v = l lsr 1 in
  s.values.(v) <- 1 - (l land 1);
  s.levels.(v) <- decision_level s;
  s.reasons.(v) <- reason;
  s.trail_pos.(v) <- Vec.length s.trail;
  Vec.push s.trail l;
  (* keep PB counters in sync with the assignment (mirrored in cancel_until) *)
  Vec.iter (fun ((pb : pb), i) -> pb.sumtrue <- pb.sumtrue + pb.pws.(i)) s.pb_occs.(l)

let enqueue s l reason =
  match lit_value s l with
  | 1 -> true
  | 0 -> false
  | _ ->
    unchecked_enqueue s l reason;
    true

let cancel_until s level =
  if decision_level s > level then begin
    let bound = Vec.get s.trail_lim level in
    while Vec.length s.trail > bound do
      let l = Vec.pop s.trail in
      let v = l lsr 1 in
      (* l was true: retract PB sums *)
      Vec.iter (fun ((pb : pb), i) -> pb.sumtrue <- pb.sumtrue - pb.pws.(i)) s.pb_occs.(l);
      s.phases.(v) <- s.values.(v) = 1;
      s.values.(v) <- -1;
      s.reasons.(v) <- Decision;
      heap_insert s v
    done;
    s.qhead <- bound;
    Vec.shrink s.trail_lim level
  end

(* ---------------- clause management ---------------- *)

let attach_clause s c =
  Vec.push s.watches.(c.lits.(0)) c;
  Vec.push s.watches.(c.lits.(1)) c

let locked s c =
  let l0 = c.lits.(0) in
  lit_value s l0 = 1
  && match s.reasons.(l0 lsr 1) with RClause c' -> c' == c | _ -> false

(* Add a clause at decision level 0 (the current level must be 0). *)
let add_clause s lits =
  if not s.unsat then begin
    assert (decision_level s = 0);
    (* simplify: dedup, drop false lits, detect tautology/satisfied *)
    let lits = List.sort_uniq Int.compare lits in
    let tautology =
      let rec go = function
        | a :: (b :: _ as rest) -> (a lxor b) = 1 || go rest
        | _ -> false
      in
      go lits
    in
    let satisfied = List.exists (fun l -> lit_value s l = 1) lits in
    if not (tautology || satisfied) then begin
      let lits = List.filter (fun l -> lit_value s l <> 0) lits in
      match lits with
      | [] -> s.unsat <- true
      | [ l ] -> ignore (enqueue s l Decision)
      | _ ->
        let c =
          { lits = Array.of_list lits; activity = 0.; learnt = false; deleted = false }
        in
        Vec.push s.clauses c;
        attach_clause s c
    end
  end

let add_pb_le s wls cap =
  if not s.unsat then begin
    assert (decision_level s = 0);
    List.iter (fun (w, _) -> if w <= 0 then invalid_arg "add_pb_le: weights must be > 0") wls;
    (* merge duplicate literals; a pair (l, ¬l) contributes min weight always *)
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (w, l) ->
        Hashtbl.replace tbl l (w + Option.value ~default:0 (Hashtbl.find_opt tbl l)))
      wls;
    let base = ref 0 in
    let items = ref [] in
    Hashtbl.iter
      (fun l w ->
        if l land 1 = 0 && Hashtbl.mem tbl (l lxor 1) then begin
          (* handle the complementary pair once, from the positive side *)
          let w' = Hashtbl.find tbl (l lxor 1) in
          let m = min w w' in
          base := !base + m;
          if w > m then items := (w - m, l) :: !items
          else if w' > m then items := (w' - m, l lxor 1) :: !items
        end
        else if not (Hashtbl.mem tbl (l lxor 1)) then items := (w, l) :: !items)
      tbl;
    let cap = cap - !base in
    let items = List.filter (fun (_, l) -> lit_value s l <> 0) !items in
    let fixed_true =
      List.fold_left (fun acc (w, l) -> if lit_value s l = 1 then acc + w else acc) 0 items
    in
    if cap < fixed_true then s.unsat <- true
    else begin
      let arr = Array.of_list items in
      Array.sort (fun (w1, _) (w2, _) -> Int.compare w2 w1) arr;
      let plits = Array.map snd arr and pws = Array.map fst arr in
      (* initialize against the current (level-0) assignment; later updates
         happen in unchecked_enqueue/cancel_until *)
      let pb = { plits; pws; cap; sumtrue = fixed_true } in
      Vec.push s.pbs pb;
      Array.iteri (fun i l -> Vec.push s.pb_occs.(l) (pb, i)) plits;
      (* forced units at level 0 *)
      Array.iteri
        (fun i l ->
          if lit_value s l = -1 && pb.pws.(i) > pb.cap - pb.sumtrue then
            ignore (enqueue s (l lxor 1) Decision))
        plits
    end
  end

(* ---------------- propagation ---------------- *)

exception Conflict of int array

(* Conflict clause for a PB overflow: the negations of the constraint's true
   literals (the counter-propagation scheme of Sat4j). *)
let pb_conflict_clause s (pb : pb) =
  let acc = ref [] in
  Array.iter (fun l' -> if lit_value s l' = 1 then acc := (l' lxor 1) :: !acc) pb.plits;
  !acc

(* Reason clause for a literal propagated by a PB constraint, reconstructed
   lazily: exactly the literals that were true when the propagation fired,
   i.e. the constraint's true literals assigned earlier on the trail. *)
let pb_reason_clause s (pb : pb) plit =
  let pos = s.trail_pos.(plit lsr 1) in
  let acc = ref [ plit ] in
  Array.iter
    (fun l' ->
      if lit_value s l' = 1 && s.trail_pos.(l' lsr 1) < pos then
        acc := (l' lxor 1) :: !acc)
    pb.plits;
  Array.of_list (List.rev !acc)

(* Check/propagate PB constraints containing literal [l], which became true
   (the counter itself was already updated at enqueue time). *)
let propagate_pb s l =
  let occs = s.pb_occs.(l) in
  for oi = 0 to Vec.length occs - 1 do
    let pb, _ = Vec.get occs oi in
    if pb.sumtrue > pb.cap then
      (* conflict: the true literals overshoot the cap *)
      raise (Conflict (Array.of_list (pb_conflict_clause s pb)));
    (* propagate: any unassigned literal whose weight overflows must be false *)
    let slack = pb.cap - pb.sumtrue in
    let j = ref 0 in
    let n = Array.length pb.plits in
    while !j < n && pb.pws.(!j) > slack do
      let lj = pb.plits.(!j) in
      if lit_value s lj = -1 then begin
        s.stats.pb_propagations <- s.stats.pb_propagations + 1;
        unchecked_enqueue s (lj lxor 1) (RPb (pb, lj lxor 1))
      end;
      incr j
    done
  done

let propagate s =
  try
    while s.qhead < Vec.length s.trail do
      let l = Vec.get s.trail s.qhead in
      s.qhead <- s.qhead + 1;
      s.stats.propagations <- s.stats.propagations + 1;
      propagate_pb s l;
      let false_lit = l lxor 1 in
      let ws = s.watches.(false_lit) in
      let n = Vec.length ws in
      let keep = ref 0 in
      let i = ref 0 in
      (try
         while !i < n do
           let c = Vec.get ws !i in
           incr i;
           if c.deleted then () (* drop lazily *)
           else begin
             (* ensure the false literal is at position 1 *)
             if c.lits.(0) = false_lit then begin
               c.lits.(0) <- c.lits.(1);
               c.lits.(1) <- false_lit
             end;
             if lit_value s c.lits.(0) = 1 then begin
               Vec.set ws !keep c;
               incr keep
             end
             else begin
               (* look for a new watch *)
               let len = Array.length c.lits in
               let found = ref false in
               let k = ref 2 in
               while (not !found) && !k < len do
                 if lit_value s c.lits.(!k) <> 0 then begin
                   c.lits.(1) <- c.lits.(!k);
                   c.lits.(!k) <- false_lit;
                   Vec.push s.watches.(c.lits.(1)) c;
                   found := true
                 end;
                 incr k
               done;
               if not !found then begin
                 (* unit or conflict *)
                 Vec.set ws !keep c;
                 incr keep;
                 if lit_value s c.lits.(0) = 0 then begin
                   (* conflict: keep remaining watchers *)
                   while !i < n do
                     Vec.set ws !keep (Vec.get ws !i);
                     incr keep;
                     incr i
                   done;
                   Vec.shrink ws !keep;
                   raise (Conflict (Array.copy c.lits))
                 end
                 else unchecked_enqueue s c.lits.(0) (RClause c)
               end
             end
           end
         done;
         Vec.shrink ws !keep
       with Conflict _ as e -> raise e)
    done;
    None
  with Conflict lits -> Some lits

(* ---------------- conflict analysis (first UIP) ---------------- *)

let reason_lits s v =
  match s.reasons.(v) with
  | Decision -> [||]
  | RClause c ->
    cla_bump s c;
    c.lits
  | RPb (pb, plit) -> pb_reason_clause s pb plit

let analyze s confl =
  let learnt = Vec.create ~dummy:0 () in
  Vec.push learnt 0;
  (* placeholder for the asserting literal *)
  let counter = ref 0 in
  let p = ref (-1) in
  let trail_idx = ref (Vec.length s.trail - 1) in
  let cur_level = decision_level s in
  Vec.clear s.to_clear;
  let c = ref confl in
  let continue_ = ref true in
  while !continue_ do
    let lits = !c in
    let start = if !p = -1 then 0 else 1 in
    for k = start to Array.length lits - 1 do
      let q = lits.(k) in
      let v = q lsr 1 in
      if (not s.seen.(v)) && s.levels.(v) > 0 then begin
        s.seen.(v) <- true;
        Vec.push s.to_clear v;
        var_bump s v;
        if s.levels.(v) >= cur_level then incr counter
        else Vec.push learnt q
      end
    done;
    (* select next literal to look at *)
    while not s.seen.(Vec.get s.trail !trail_idx lsr 1) do
      decr trail_idx
    done;
    p := Vec.get s.trail !trail_idx;
    decr trail_idx;
    s.seen.(!p lsr 1) <- false;
    decr counter;
    if !counter = 0 then continue_ := false
    else c := reason_lits s (!p lsr 1)
  done;
  Vec.set learnt 0 (!p lxor 1);
  (* find backtrack level: max level among learnt[1..]; move it to index 1 *)
  let bt = ref 0 in
  if Vec.length learnt > 1 then begin
    let max_i = ref 1 in
    for k = 2 to Vec.length learnt - 1 do
      if s.levels.(Vec.get learnt k lsr 1) > s.levels.(Vec.get learnt !max_i lsr 1) then
        max_i := k
    done;
    let tmp = Vec.get learnt 1 in
    Vec.set learnt 1 (Vec.get learnt !max_i);
    Vec.set learnt !max_i tmp;
    bt := s.levels.(Vec.get learnt 1 lsr 1)
  end;
  Vec.iter (fun v -> s.seen.(v) <- false) s.to_clear;
  (Vec.to_array learnt, !bt)

let record_learnt s lits =
  s.stats.learnt_literals <- s.stats.learnt_literals + Array.length lits;
  if Array.length lits = 1 then ignore (enqueue s lits.(0) Decision)
  else begin
    let c = { lits; activity = 0.; learnt = true; deleted = false } in
    Vec.push s.learnts c;
    cla_bump s c;
    attach_clause s c;
    unchecked_enqueue s lits.(0) (RClause c)
  end

(* ---------------- learnt DB reduction ---------------- *)

let reduce_db s =
  let arr = Vec.to_array s.learnts in
  Array.sort (fun a b -> Float.compare a.activity b.activity) arr;
  let n = Array.length arr in
  let removed = ref 0 in
  Array.iteri
    (fun i c ->
      if
        (not c.deleted) && (not (locked s c)) && Array.length c.lits > 2
        && i < n / 2
      then begin
        c.deleted <- true;
        incr removed
      end)
    arr;
  if !removed > 0 then begin
    (* rebuild learnts vec and purge watches lazily *)
    let live = Array.of_list (List.filter (fun c -> not c.deleted) (Array.to_list arr)) in
    Vec.clear s.learnts;
    Array.iter (Vec.push s.learnts) live;
    Array.iter
      (fun ws ->
        let keep = ref 0 in
        for i = 0 to Vec.length ws - 1 do
          let c = Vec.get ws i in
          if not c.deleted then begin
            Vec.set ws !keep c;
            incr keep
          end
        done;
        Vec.shrink ws !keep)
      s.watches
  end

(* ---------------- Luby restarts ---------------- *)

(* Luby sequence 1,1,2,1,1,2,4,... ([i] is 0-based). *)
let rec luby_rec i =
  let k = ref 1 in
  while (1 lsl !k) - 1 < i do
    incr k
  done;
  if (1 lsl !k) - 1 = i then 1 lsl (!k - 1)
  else luby_rec (i - (1 lsl (!k - 1)) + 1)

let luby i = luby_rec (i + 1)

(* Which assumptions imply the current conflict?  Walk the implication graph
   backwards from the conflicting literals; decisions reached are assumptions
   (callers only invoke this when the conflict is at an assumption level). *)
let analyze_final s confl =
  Vec.clear s.to_clear;
  let mark q =
    let v = q lsr 1 in
    if s.levels.(v) > 0 && not s.seen.(v) then begin
      s.seen.(v) <- true;
      Vec.push s.to_clear v
    end
  in
  Array.iter mark confl;
  let core = ref [] in
  for i = Vec.length s.trail - 1 downto 0 do
    let l = Vec.get s.trail i in
    let v = l lsr 1 in
    if s.seen.(v) then begin
      (match s.reasons.(v) with
      | Decision -> core := l :: !core
      | RClause c -> Array.iteri (fun k q -> if k > 0 then mark q) c.lits
      | RPb (pb, plit) ->
        let arr = pb_reason_clause s pb plit in
        Array.iteri (fun k q -> if k > 0 then mark q) arr);
      s.seen.(v) <- false
    end
  done;
  Vec.iter (fun v -> s.seen.(v) <- false) s.to_clear;
  !core

(* ---------------- search ---------------- *)

type result = Sat | Unsat

let pick_branch_var s =
  let rec go () =
    if Vec.length s.heap = 0 then -1
    else
      let v = heap_pop s in
      if s.values.(v) = -1 then v else go ()
  in
  go ()

let solve ?(assumptions = []) ?(on_model = fun _ -> `Accept) ?(budget = Budget.unlimited)
    s =
  if s.unsat then Unsat
  else begin
    let assumptions = Array.of_list assumptions in
    let result = ref None in
    let conflicts_until_restart = ref (s.params.restart_base * luby s.stats.restarts) in
    (match propagate s with
    | Some _ -> begin
      s.unsat <- true;
      result := Some Unsat
    end
    | None -> ());
    try
    while !result = None do
      match propagate s with
      | Some confl ->
        s.stats.conflicts <- s.stats.conflicts + 1;
        decr conflicts_until_restart;
        if decision_level s = 0 then begin
          s.unsat <- true;
          s.core <- [];
          result := Some Unsat
        end
        else if decision_level s <= Array.length assumptions then begin
          (* conflict under assumptions: extract the core *)
          s.core <- analyze_final s confl;
          result := Some Unsat
        end
        else begin
          (* budget consultation: terminal conflicts above conclude instead
             of interrupting, so only the learning path ticks *)
          Budget.tick_conflict budget;
          let learnt, bt = analyze s confl in
          (* backtrack to the asserting level (assumptions below are simply
             re-decided); raising bt instead would plant unit learnts as
             pseudo-decisions and corrupt core extraction *)
          cancel_until s bt;
          record_learnt s learnt;
          var_decay s;
          cla_decay s;
          if float_of_int (Vec.length s.learnts) > s.max_learnts then begin
            reduce_db s;
            s.max_learnts <- s.max_learnts *. s.params.learnt_inc
          end
        end
      | None ->
        (* covers decisions and model-hook refinement rounds, so deadlines
           and cancellation fire even in conflict-free search *)
        Budget.poll budget;
        if !conflicts_until_restart <= 0 && decision_level s > Array.length assumptions
        then begin
          s.stats.restarts <- s.stats.restarts + 1;
          conflicts_until_restart := s.params.restart_base * luby s.stats.restarts;
          cancel_until s (Array.length assumptions)
        end
        else if decision_level s < Array.length assumptions then begin
          (* decide the next assumption *)
          let a = assumptions.(decision_level s) in
          match lit_value s a with
          | 1 -> Vec.push s.trail_lim (Vec.length s.trail)
          | 0 ->
            (* the assumption is already refuted by earlier ones *)
            s.core <- a :: analyze_final s [| a |];
            result := Some Unsat
          | _ ->
            Vec.push s.trail_lim (Vec.length s.trail);
            unchecked_enqueue s a Decision
        end
        else begin
          let v = pick_branch_var s in
          if v < 0 then begin
            (* total assignment: consult the model hook *)
            match on_model s with
            | `Accept ->
              s.model <- Array.sub s.values 0 s.nvars;
              s.has_model <- true;
              result := Some Sat
            | `Refine clauses ->
              cancel_until s 0;
              List.iter (add_clause s) clauses;
              if s.unsat then result := Some Unsat
          end
          else begin
            s.stats.decisions <- s.stats.decisions + 1;
            Vec.push s.trail_lim (Vec.length s.trail);
            let l = if s.phases.(v) then Lit.pos v else Lit.neg v in
            unchecked_enqueue s l Decision
          end
        end
    done;
    cancel_until s 0;
    Option.get !result
    with Budget.Exhausted _ as e ->
      (* leave the solver reusable: retract the partial assignment so the
         trail, PB counters and heap are back to their level-0 state *)
      cancel_until s 0;
      raise e
  end

let no_model () = raise (Solver_error.Error Solver_error.No_model)

let value s l =
  let v = l lsr 1 in
  if (not s.has_model) || v >= Array.length s.model then no_model ();
  s.model.(v) lxor (l land 1) = 1

let model_true_vars s =
  if not s.has_model then no_model ();
  let acc = ref [] in
  Array.iteri (fun v x -> if x = 1 then acc := v :: !acc) s.model;
  List.rev !acc

let current_lit_value s l = lit_value s l

let last_core s = s.core

let solve_with_assumptions ?on_model ?budget s assumptions =
  solve ~assumptions ?on_model ?budget s

(* Deletion-based core minimization: test the core with each literal removed
   in turn.  Unsat without [l] proves [l] redundant — and the refit core of
   that solve may drop further literals for free.  Sat without [l] proves [l]
   necessary, permanently: the candidate set only shrinks from here on, and a
   subset of a satisfiable assumption set stays satisfiable.  One pass
   therefore yields a minimal unsatisfiable subset. *)
let shrink_core ?on_model ?(budget = Budget.unlimited) s core =
  let necessary = ref [] in
  (* reverse order; proved needed *)
  let pending = ref core in
  let minimal = ref true in
  (try
     let rec go () =
       match !pending with
       | [] -> ()
       | l :: rest ->
         Budget.tick_opt_step budget;
         (match solve ?on_model ~budget s ~assumptions:(List.rev_append !necessary rest) with
         | Unsat ->
           let c = s.core in
           necessary := List.filter (fun x -> List.mem x c) !necessary;
           pending := List.filter (fun x -> List.mem x c) rest
         | Sat ->
           necessary := l :: !necessary;
           pending := rest);
         go ()
     in
     go ()
   with Budget.Exhausted _ -> minimal := false);
  (List.rev_append !necessary !pending, !minimal)

let suggest_phase s l = s.phases.(l lsr 1) <- l land 1 = 0
