module Atoms = Hashtbl.Make (struct
  type t = Gatom.t

  (* id-keyed through interned terms: O(arity), no structural recursion *)
  let equal = Gatom.equal
  let hash = Gatom.hash
end)

type t = {
  atoms : unit Atoms.t;
  by_pred : (string, Gatom.t list ref) Hashtbl.t;  (* reversed chains *)
  size : int;
}

let of_list answer =
  let atoms = Atoms.create 256 in
  let by_pred = Hashtbl.create 64 in
  let size = ref 0 in
  List.iter
    (fun (a : Gatom.t) ->
      if not (Atoms.mem atoms a) then begin
        Atoms.add atoms a ();
        incr size;
        match Hashtbl.find_opt by_pred a.Gatom.pred with
        | Some r -> r := a :: !r
        | None -> Hashtbl.add by_pred a.Gatom.pred (ref [ a ])
      end)
    answer;
  { atoms; by_pred; size = !size }

let mem idx a = Atoms.mem idx.atoms a
let holds idx p args = mem idx (Gatom.make p args)

let find idx p =
  match Hashtbl.find_opt idx.by_pred p with
  | Some r -> List.rev !r
  | None -> []

let atoms_of idx p = List.map (fun (a : Gatom.t) -> a.Gatom.args) (find idx p)
let size idx = idx.size
