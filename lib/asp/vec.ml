type 'a t = { mutable data : 'a array; mutable len : int; dummy : 'a }

let create ?(capacity = 16) ~dummy () =
  { data = Array.make (max capacity 1) dummy; len = 0; dummy }

let length v = v.len

let get v i =
  if i < 0 || i >= v.len then invalid_arg "Vec.get";
  Array.unsafe_get v.data i

let set v i x =
  if i < 0 || i >= v.len then invalid_arg "Vec.set";
  Array.unsafe_set v.data i x

let grow v =
  let n = Array.length v.data in
  let data = Array.make (2 * n) v.dummy in
  Array.blit v.data 0 data 0 v.len;
  v.data <- data

let push v x =
  if v.len = Array.length v.data then grow v;
  Array.unsafe_set v.data v.len x;
  v.len <- v.len + 1

let pop v =
  if v.len = 0 then invalid_arg "Vec.pop";
  v.len <- v.len - 1;
  let x = v.data.(v.len) in
  v.data.(v.len) <- v.dummy;
  x

let top v =
  if v.len = 0 then invalid_arg "Vec.top";
  v.data.(v.len - 1)

let clear v =
  Array.fill v.data 0 v.len v.dummy;
  v.len <- 0

let shrink v n =
  if n < 0 || n > v.len then invalid_arg "Vec.shrink";
  Array.fill v.data n (v.len - n) v.dummy;
  v.len <- n

let iter f v =
  for i = 0 to v.len - 1 do
    f (Array.unsafe_get v.data i)
  done

let iteri f v =
  for i = 0 to v.len - 1 do
    f i (Array.unsafe_get v.data i)
  done

let fold f acc v =
  let acc = ref acc in
  for i = 0 to v.len - 1 do
    acc := f !acc (Array.unsafe_get v.data i)
  done;
  !acc

let exists p v =
  let rec go i = i < v.len && (p v.data.(i) || go (i + 1)) in
  go 0

let to_array v = Array.sub v.data 0 v.len
let to_list v = Array.to_list (to_array v)

let of_list ~dummy l =
  let v = create ~capacity:(max 1 (List.length l)) ~dummy () in
  List.iter (push v) l;
  v

let copy v =
  { data = Array.copy v.data; len = v.len; dummy = v.dummy }

let sort cmp v =
  let a = to_array v in
  Array.sort cmp a;
  Array.blit a 0 v.data 0 v.len
