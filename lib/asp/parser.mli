(** Recursive-descent parser for the ASP input language subset of {!Ast}. *)

val parse : ?file:string -> string -> Ast.program
(** Parse a full program.  [#maximize] statements are normalized to
    [#minimize] with negated weights; [#show] statements are ignored.
    [file] labels error locations (default ["<program>"]).
    @raise Solver_error.Error ([Parse _] with line and column) on syntax
    errors. *)

val parse_term : ?file:string -> string -> Term.t
(** Parse a single ground constant (integer, identifier or quoted string).
    Used when reading answer atoms back.
    @raise Solver_error.Error ([Parse _]) on malformed input. *)
