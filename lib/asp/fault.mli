(** Deterministic fault injection (testing).

    {1 Budget-layer faults}

    [arm budget point n] installs a countdown hook on [budget] that forces
    cancellation (reason {!Budget.Injected}) at exactly the [n]-th event of
    the given kind.  Because the solver itself is deterministic, sweeping
    [n] over a solve visits every interruption point exactly once, which is
    how the anytime-optimality contract is tested: each run must either
    complete identically to the unbudgeted solve or return a well-formed
    degraded outcome (valid stable model, cost vector >= the optimum). *)

type point = Conflicts | Instances | Opt_steps | Verify_steps

val arm : Budget.t -> point -> int -> unit
(** Overwrites any previously armed hook on [budget].  [n <= 0] trips at
    the first event of the kind. *)

(** {1 Service-layer faults}

    The concretization service ([lib/server]) is exercised the same way:
    a global countdown per injection point, decremented at the matching
    operation, firing exactly once at the [n]-th occurrence.  Unlike
    budget hooks these are process-global atomics — the daemon's workers
    run in their own domains and the test harness arms faults from
    outside.

    - [Journal_tear]: the next matching install-journal append writes only
      a prefix of its entry and skips the fsync (a torn write at the
      moment of a crash).
    - [Drop_socket]: the worker abruptly closes the client connection
      instead of writing the queued reply.
    - [Truncate_response]: the worker writes only half of the queued reply
      bytes, then closes the connection.
    - [Delay_response]: the worker holds the queued reply back for one
      event-loop iteration window before sending it.
    - [Worker_crash]: request handling raises an escaped exception,
      killing the worker domain (the supervisor must restart it).
    - [Worker_wedge]: request handling blocks the worker's event loop for
      several seconds (the supervisor must detect the stalled heartbeat
      and quarantine the worker).
    - [Repl_drop]: the replication hub silently drops the next record
      instead of shipping it (the follower must detect the sequence gap
      and resubscribe from its last durable position).
    - [Repl_reorder]: the hub holds the next record back and ships it
      after its successor (the follower must reject the out-of-order
      sequence and resynchronize).
    - [Follower_crash]: the follower's apply loop raises mid-stream (the
      follower must reconnect and resume from its last fsynced entry). *)

type service_point =
  | Journal_tear
  | Drop_socket
  | Truncate_response
  | Delay_response
  | Worker_crash
  | Worker_wedge
  | Repl_drop
  | Repl_reorder
  | Follower_crash

val service_point_name : service_point -> string

val arm_service : service_point -> int -> unit
(** Fire at the [n]-th matching operation from now ([n >= 1]; [n <= 0]
    disarms).  Overwrites any previous countdown for the point. *)

val disarm_services : unit -> unit
(** Reset every service-point countdown (test teardown). *)

val service_fires : service_point -> bool
(** Decrement the point's countdown; [true] exactly when it reaches zero
    this call.  Always [false] when disarmed.  Domain-safe. *)
