(** Deterministic fault injection for the budget layer (testing).

    [arm budget point n] installs a countdown hook on [budget] that forces
    cancellation (reason {!Budget.Injected}) at exactly the [n]-th event of
    the given kind.  Because the solver itself is deterministic, sweeping
    [n] over a solve visits every interruption point exactly once, which is
    how the anytime-optimality contract is tested: each run must either
    complete identically to the unbudgeted solve or return a well-formed
    degraded outcome (valid stable model, cost vector >= the optimum). *)

type point = Conflicts | Instances | Opt_steps | Verify_steps

val arm : Budget.t -> point -> int -> unit
(** Overwrites any previously armed hook on [budget].  [n <= 0] trips at
    the first event of the kind. *)
