type preset = Frumpy | Jumpy | Tweety | Trendy | Crafty | Handy
type strategy = Bb | Usc
type t = {
  preset : preset;
  strategy : strategy;
  limits : Budget.limits;
  verify : bool;
}

let default =
  { preset = Tweety; strategy = Usc; limits = Budget.no_limits; verify = true }

let make ?(preset = Tweety) ?(strategy = Usc) ?(limits = Budget.no_limits)
    ?(verify = true) () =
  { preset; strategy; limits; verify }

let params = function
  | Tweety ->
    (* geared towards typical ASP programs: fast decay, frequent restarts *)
    {
      Sat.default_params with
      var_decay = 0.92;
      restart_base = 60;
      learnt_start = 3000;
      seed = 11;
    }
  | Trendy ->
    (* industrial problems: slow decay, infrequent restarts, big clause DB *)
    {
      Sat.default_params with
      var_decay = 0.99;
      restart_base = 256;
      learnt_start = 10000;
      learnt_inc = 1.5;
      seed = 23;
    }
  | Handy ->
    (* large problems: aggressive clause deletion, moderate restarts *)
    {
      Sat.default_params with
      var_decay = 0.97;
      restart_base = 128;
      learnt_start = 2000;
      learnt_inc = 1.2;
      seed = 37;
    }
  | Frumpy ->
    (* conservative defaults reminiscent of early clasp *)
    {
      Sat.default_params with
      var_decay = 0.95;
      restart_base = 100;
      learnt_start = 4000;
      seed = 41;
    }
  | Jumpy ->
    (* very aggressive restarts *)
    {
      Sat.default_params with
      var_decay = 0.94;
      restart_base = 32;
      learnt_start = 2500;
      seed = 53;
    }
  | Crafty ->
    (* geared towards crafted/combinatorial instances *)
    {
      Sat.default_params with
      var_decay = 0.98;
      restart_base = 192;
      learnt_start = 6000;
      default_phase = true;
      seed = 67;
    }

let strategy_name = function Bb -> "bb" | Usc -> "usc"

let preset_name = function
  | Frumpy -> "frumpy"
  | Jumpy -> "jumpy"
  | Tweety -> "tweety"
  | Trendy -> "trendy"
  | Crafty -> "crafty"
  | Handy -> "handy"

let preset_of_name = function
  | "frumpy" -> Some Frumpy
  | "jumpy" -> Some Jumpy
  | "tweety" -> Some Tweety
  | "trendy" -> Some Trendy
  | "crafty" -> Some Crafty
  | "handy" -> Some Handy
  | _ -> None

let all_presets = [ Frumpy; Jumpy; Tweety; Trendy; Crafty; Handy ]
