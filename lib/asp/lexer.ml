type token =
  | IDENT of string
  | VARIABLE of string
  | STRING of string
  | INT of int
  | IF
  | DOT
  | COMMA
  | SEMI
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | AT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BACKSLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | NOT
  | MINIMIZE
  | MAXIMIZE
  | SHOW
  | CONST
  | DOTDOT
  | EOF

type pos = { line : int; col : int }

let pp_token ppf = function
  | IDENT s -> Format.fprintf ppf "identifier %s" s
  | VARIABLE s -> Format.fprintf ppf "variable %s" s
  | STRING s -> Format.fprintf ppf "string %S" s
  | INT i -> Format.fprintf ppf "integer %d" i
  | IF -> Format.pp_print_string ppf "':-'"
  | DOT -> Format.pp_print_string ppf "'.'"
  | COMMA -> Format.pp_print_string ppf "','"
  | SEMI -> Format.pp_print_string ppf "';'"
  | COLON -> Format.pp_print_string ppf "':'"
  | LPAREN -> Format.pp_print_string ppf "'('"
  | RPAREN -> Format.pp_print_string ppf "')'"
  | LBRACE -> Format.pp_print_string ppf "'{'"
  | RBRACE -> Format.pp_print_string ppf "'}'"
  | AT -> Format.pp_print_string ppf "'@'"
  | PLUS -> Format.pp_print_string ppf "'+'"
  | MINUS -> Format.pp_print_string ppf "'-'"
  | STAR -> Format.pp_print_string ppf "'*'"
  | SLASH -> Format.pp_print_string ppf "'/'"
  | BACKSLASH -> Format.pp_print_string ppf "'\\'"
  | EQ -> Format.pp_print_string ppf "'='"
  | NE -> Format.pp_print_string ppf "'!='"
  | LT -> Format.pp_print_string ppf "'<'"
  | LE -> Format.pp_print_string ppf "'<='"
  | GT -> Format.pp_print_string ppf "'>'"
  | GE -> Format.pp_print_string ppf "'>='"
  | NOT -> Format.pp_print_string ppf "'not'"
  | MINIMIZE -> Format.pp_print_string ppf "'#minimize'"
  | MAXIMIZE -> Format.pp_print_string ppf "'#maximize'"
  | SHOW -> Format.pp_print_string ppf "'#show'"
  | CONST -> Format.pp_print_string ppf "'#const'"
  | DOTDOT -> Format.pp_print_string ppf "'..'"
  | EOF -> Format.pp_print_string ppf "end of input"

let is_alpha = function 'a' .. 'z' | 'A' .. 'Z' | '_' -> true | _ -> false
let is_digit = function '0' .. '9' -> true | _ -> false
let is_alnum c = is_alpha c || is_digit c

let tokenize ?(file = "<input>") src =
  let n = String.length src in
  let toks = ref [] in
  let line = ref 1 in
  let line_start = ref 0 in  (* offset of the first char of the current line *)
  let i = ref 0 in
  let fail at msg =
    Solver_error.parse_error ~src:file ~line:!line ~col:(at - !line_start + 1) "%s" msg
  in
  let peek k = if !i + k < n then Some src.[!i + k] else None in
  while !i < n do
    let c = src.[!i] in
    (* tokens never span lines, so the column of the token being lexed is
       relative to the line start captured here *)
    let start = !i in
    let emit t = toks := (t, { line = !line; col = start - !line_start + 1 }) :: !toks in
    (match c with
    | '\n' ->
      incr line;
      incr i;
      line_start := !i
    | ' ' | '\t' | '\r' -> incr i
    | '%' ->
      (* comment to end of line *)
      while !i < n && src.[!i] <> '\n' do
        incr i
      done
    | '"' ->
      let buf = Buffer.create 16 in
      incr i;
      let closed = ref false in
      while (not !closed) && !i < n do
        (match src.[!i] with
        | '"' -> closed := true
        | '\\' when !i + 1 < n ->
          incr i;
          Buffer.add_char buf
            (match src.[!i] with 'n' -> '\n' | 't' -> '\t' | ch -> ch)
        | '\n' -> fail start "unterminated string"
        | ch -> Buffer.add_char buf ch);
        incr i
      done;
      if not !closed then fail start "unterminated string";
      emit (STRING (Buffer.contents buf))
    | '#' ->
      let j = ref (!i + 1) in
      while !j < n && is_alnum src.[!j] do
        incr j
      done;
      let word = String.sub src (!i + 1) (!j - !i - 1) in
      (match word with
      | "minimize" -> emit MINIMIZE
      | "maximize" -> emit MAXIMIZE
      | "show" -> emit SHOW
      | "const" -> emit CONST
      | w -> fail start (Printf.sprintf "unknown directive #%s" w));
      i := !j
    | ':' when peek 1 = Some '-' ->
      emit IF;
      i := !i + 2
    | ':' ->
      emit COLON;
      incr i
    | '.' when peek 1 = Some '.' ->
      emit DOTDOT;
      i := !i + 2
    | '.' ->
      emit DOT;
      incr i
    | ',' ->
      emit COMMA;
      incr i
    | ';' ->
      emit SEMI;
      incr i
    | '(' ->
      emit LPAREN;
      incr i
    | ')' ->
      emit RPAREN;
      incr i
    | '{' ->
      emit LBRACE;
      incr i
    | '}' ->
      emit RBRACE;
      incr i
    | '@' ->
      emit AT;
      incr i
    | '+' ->
      emit PLUS;
      incr i
    | '-' ->
      emit MINUS;
      incr i
    | '*' ->
      emit STAR;
      incr i
    | '/' ->
      emit SLASH;
      incr i
    | '\\' ->
      emit BACKSLASH;
      incr i
    | '=' ->
      emit EQ;
      incr i
    | '!' when peek 1 = Some '=' ->
      emit NE;
      i := !i + 2
    | '<' when peek 1 = Some '=' ->
      emit LE;
      i := !i + 2
    | '<' ->
      emit LT;
      incr i
    | '>' when peek 1 = Some '=' ->
      emit GE;
      i := !i + 2
    | '>' ->
      emit GT;
      incr i
    | c when is_digit c ->
      let j = ref !i in
      while !j < n && is_digit src.[!j] do
        incr j
      done;
      emit (INT (int_of_string (String.sub src !i (!j - !i))));
      i := !j
    | c when is_alpha c ->
      let j = ref !i in
      while !j < n && is_alnum src.[!j] do
        incr j
      done;
      let word = String.sub src !i (!j - !i) in
      (match word with
      | "not" -> emit NOT
      | _ ->
        if word = "_" || (word.[0] >= 'A' && word.[0] <= 'Z') || word.[0] = '_' then
          emit (VARIABLE word)
        else emit (IDENT word));
      i := !j
    | c -> fail start (Printf.sprintf "unexpected character %C" c));
    ()
  done;
  toks := (EOF, { line = !line; col = n - !line_start + 1 }) :: !toks;
  List.rev !toks
