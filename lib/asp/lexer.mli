(** Tokenizer for the ASP input language. *)

type token =
  | IDENT of string  (** lowercase identifier *)
  | VARIABLE of string  (** capitalized identifier, or [_] (anonymous) *)
  | STRING of string  (** quoted string, unescaped *)
  | INT of int
  | IF  (** [:-] *)
  | DOT
  | COMMA
  | SEMI
  | COLON
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | AT
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | BACKSLASH
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | NOT
  | MINIMIZE
  | MAXIMIZE
  | SHOW
  | CONST
  | DOTDOT  (** [..] (intervals) *)
  | EOF

type pos = { line : int; col : int }
(** 1-based source position of a token's first character. *)

val pp_token : Format.formatter -> token -> unit

val tokenize : ?file:string -> string -> (token * pos) list
(** [tokenize src] lexes a whole program, pairing each token with its
    source position.  [%]-comments are skipped.  [file] labels error
    locations (default ["<input>"]).
    @raise Solver_error.Error ([Parse _]) on invalid input. *)
