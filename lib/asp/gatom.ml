type t = { pred : string; args : Term.t list }

(* Terms are hash-consed, so argument comparison is pointer equality and
   [Term.hash] is a field read: both operations are O(arity) with no
   recursion into term structure. *)
let equal a b =
  a == b || (String.equal a.pred b.pred && List.equal Term.equal a.args b.args)

let hash a =
  List.fold_left (fun acc t -> (acc * 31) + Term.hash t) (Hashtbl.hash a.pred) a.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let pp ppf a =
  match a.args with
  | [] -> Format.pp_print_string ppf a.pred
  | _ ->
    Format.fprintf ppf "%s(%a)" a.pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Term.pp)
      a.args

let make pred args = { pred; args }

module Store = struct
  type atom = t

  module H = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  type key = { kpred : string; karity : int; kpos : int; kvalue : Term.t }

  module K = Hashtbl.Make (struct
    type t = key

    let equal a b =
      a.karity = b.karity && a.kpos = b.kpos
      && Term.equal a.kvalue b.kvalue
      && String.equal a.kpred b.kpred

    (* id-based, non-allocating: the interned term id discriminates values *)
    let hash k =
      (((((Hashtbl.hash k.kpred * 31) + k.karity) * 31) + k.kpos) * 31)
      + Term.id k.kvalue
  end)

  (* A store is either a root (parent = None) or a single extension layer
     over a frozen root: ids below [offset] resolve in the parent, ids at or
     above it in the layer's own tables.  Layers never nest (the substrate
     clones roots instead of chaining), so every lookup is at most two
     probes.  A frozen root is immutable and safe to share across domains;
     fact marks a layer places on parent atoms live in [overlay]. *)
  type t = {
    parent : t option;
    offset : int;  (** ids below this live in [parent] *)
    ids : int H.t;
    atoms : atom Vec.t;
    facts : bool Vec.t;
    overlay : (int, unit) Hashtbl.t;  (** parent ids fact-marked by this layer *)
    preds : (string * int, int Vec.t) Hashtbl.t;
    index : int Vec.t K.t;
    mutable frozen : bool;
    empty : int Vec.t;  (** shared empty vector for misses *)
  }

  let create () =
    {
      parent = None;
      offset = 0;
      ids = H.create 4096;
      atoms = Vec.create ~dummy:{ pred = ""; args = [] } ();
      facts = Vec.create ~dummy:false ();
      overlay = Hashtbl.create 1;
      preds = Hashtbl.create 256;
      index = K.create 4096;
      frozen = false;
      empty = Vec.create ~capacity:1 ~dummy:0 ();
    }

  let count st = st.offset + Vec.length st.atoms

  let local_intern st a =
    match H.find_opt st.ids a with
    | Some id -> id
    | None ->
      if st.frozen then invalid_arg "Gatom.Store.intern: store is frozen";
      let id = st.offset + Vec.length st.atoms in
      H.add st.ids a id;
      Vec.push st.atoms a;
      Vec.push st.facts false;
      let arity = List.length a.args in
      let pk = (a.pred, arity) in
      (match Hashtbl.find_opt st.preds pk with
      | Some v -> Vec.push v id
      | None ->
        let v = Vec.create ~dummy:0 () in
        Vec.push v id;
        Hashtbl.add st.preds pk v);
      List.iteri
        (fun kpos value ->
          let k = { kpred = a.pred; karity = arity; kpos; kvalue = value } in
          match K.find_opt st.index k with
          | Some v -> Vec.push v id
          | None ->
            let v = Vec.create ~dummy:0 () in
            Vec.push v id;
            K.add st.index k v)
        a.args;
      id

  let intern st a =
    match st.parent with
    | None -> local_intern st a
    | Some p -> ( match H.find_opt p.ids a with Some id -> id | None -> local_intern st a)

  let find st a =
    match st.parent with
    | None -> H.find_opt st.ids a
    | Some p -> (
      match H.find_opt p.ids a with Some id -> Some id | None -> H.find_opt st.ids a)

  let rec atom st id =
    if id < st.offset then atom (Option.get st.parent) id
    else Vec.get st.atoms (id - st.offset)

  let mark_fact st id =
    if id < st.offset then begin
      let p = Option.get st.parent in
      if not (Vec.get p.facts id) then Hashtbl.replace st.overlay id ()
    end
    else begin
      if st.frozen then invalid_arg "Gatom.Store.mark_fact: store is frozen";
      Vec.set st.facts (id - st.offset) true
    end

  let is_fact st id =
    if id < st.offset then
      let p = Option.get st.parent in
      Vec.get p.facts id || Hashtbl.mem st.overlay id
    else Vec.get st.facts (id - st.offset)

  let freeze st =
    if st.parent <> None then invalid_arg "Gatom.Store.freeze: not a root store";
    st.frozen <- true

  let extend st =
    if st.parent <> None then invalid_arg "Gatom.Store.extend: layers do not nest";
    if not st.frozen then invalid_arg "Gatom.Store.extend: freeze the base first";
    {
      parent = Some st;
      offset = count st;
      ids = H.create 256;
      atoms = Vec.create ~dummy:{ pred = ""; args = [] } ();
      facts = Vec.create ~dummy:false ();
      overlay = Hashtbl.create 16;
      preds = Hashtbl.create 64;
      index = K.create 256;
      frozen = false;
      empty = st.empty;
    }

  (* Deep copy of a root store (atoms and terms shared; all tables fresh).
     The install-delta path clones the frozen base and mutates the clone,
     so substrates never chain layers. *)
  let clone st =
    if st.parent <> None then invalid_arg "Gatom.Store.clone: not a root store";
    let preds = Hashtbl.create (Hashtbl.length st.preds) in
    Hashtbl.iter (fun k v -> Hashtbl.add preds k (Vec.copy v)) st.preds;
    let index = K.create (K.length st.index) in
    K.iter (fun k v -> K.add index k (Vec.copy v)) st.index;
    {
      parent = None;
      offset = 0;
      ids = H.copy st.ids;
      atoms = Vec.copy st.atoms;
      facts = Vec.copy st.facts;
      overlay = Hashtbl.create 1;
      preds;
      index;
      frozen = false;
      empty = Vec.create ~capacity:1 ~dummy:0 ();
    }

  (* Candidate ids for a (pred, arity[, arg]) probe: at most two backing
     vectors (parent layer + local layer), exposed as one sequence. *)
  type cands = { c_n : int; c_a : int Vec.t; c_b : int Vec.t }

  let cands_length c = c.c_n
  let cands_iter f c =
    Vec.iter f c.c_a;
    Vec.iter f c.c_b

  let pred_vec st p a =
    match Hashtbl.find_opt st.preds (p, a) with Some v -> v | None -> st.empty

  let by_pred st p a =
    match st.parent with
    | None ->
      let v = pred_vec st p a in
      { c_n = Vec.length v; c_a = v; c_b = st.empty }
    | Some par ->
      let v1 = pred_vec par p a and v2 = pred_vec st p a in
      { c_n = Vec.length v1 + Vec.length v2; c_a = v1; c_b = v2 }

  let arg_vec st p a ~pos ~value =
    match K.find_opt st.index { kpred = p; karity = a; kpos = pos; kvalue = value } with
    | Some v -> v
    | None -> st.empty

  let by_pred_arg st p a ~pos ~value =
    match st.parent with
    | None ->
      let v = arg_vec st p a ~pos ~value in
      { c_n = Vec.length v; c_a = v; c_b = st.empty }
    | Some par ->
      let v1 = arg_vec par p a ~pos ~value and v2 = arg_vec st p a ~pos ~value in
      { c_n = Vec.length v1 + Vec.length v2; c_a = v1; c_b = v2 }

  let fold_pred_names st f acc =
    let acc =
      match st.parent with
      | Some p -> Hashtbl.fold (fun k _ acc -> f k acc) p.preds acc
      | None -> acc
    in
    Hashtbl.fold (fun k _ acc -> f k acc) st.preds acc
end
