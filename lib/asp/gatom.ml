type t = { pred : string; args : Term.t list }

(* Terms are hash-consed, so argument comparison is pointer equality and
   [Term.hash] is a field read: both operations are O(arity) with no
   recursion into term structure. *)
let equal a b =
  a == b || (String.equal a.pred b.pred && List.equal Term.equal a.args b.args)

let hash a =
  List.fold_left (fun acc t -> (acc * 31) + Term.hash t) (Hashtbl.hash a.pred) a.args

let compare a b =
  let c = String.compare a.pred b.pred in
  if c <> 0 then c else List.compare Term.compare a.args b.args

let pp ppf a =
  match a.args with
  | [] -> Format.pp_print_string ppf a.pred
  | _ ->
    Format.fprintf ppf "%s(%a)" a.pred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         Term.pp)
      a.args

let make pred args = { pred; args }

module Store = struct
  type atom = t

  module H = Hashtbl.Make (struct
    type nonrec t = t

    let equal = equal
    let hash = hash
  end)

  type key = { kpred : string; karity : int; kpos : int; kvalue : Term.t }

  module K = Hashtbl.Make (struct
    type t = key

    let equal a b =
      a.karity = b.karity && a.kpos = b.kpos
      && Term.equal a.kvalue b.kvalue
      && String.equal a.kpred b.kpred

    (* id-based, non-allocating: the interned term id discriminates values *)
    let hash k =
      (((((Hashtbl.hash k.kpred * 31) + k.karity) * 31) + k.kpos) * 31)
      + Term.id k.kvalue
  end)

  type t = {
    ids : int H.t;
    atoms : atom Vec.t;
    facts : bool Vec.t;
    preds : (string * int, int Vec.t) Hashtbl.t;
    index : int Vec.t K.t;
    empty : int Vec.t;  (** shared empty vector for misses *)
  }

  let create () =
    {
      ids = H.create 4096;
      atoms = Vec.create ~dummy:{ pred = ""; args = [] } ();
      facts = Vec.create ~dummy:false ();
      preds = Hashtbl.create 256;
      index = K.create 4096;
      empty = Vec.create ~capacity:1 ~dummy:0 ();
    }

  let intern st a =
    match H.find_opt st.ids a with
    | Some id -> id
    | None ->
      let id = Vec.length st.atoms in
      H.add st.ids a id;
      Vec.push st.atoms a;
      Vec.push st.facts false;
      let arity = List.length a.args in
      let pk = (a.pred, arity) in
      (match Hashtbl.find_opt st.preds pk with
      | Some v -> Vec.push v id
      | None ->
        let v = Vec.create ~dummy:0 () in
        Vec.push v id;
        Hashtbl.add st.preds pk v);
      List.iteri
        (fun kpos value ->
          let k = { kpred = a.pred; karity = arity; kpos; kvalue = value } in
          match K.find_opt st.index k with
          | Some v -> Vec.push v id
          | None ->
            let v = Vec.create ~dummy:0 () in
            Vec.push v id;
            K.add st.index k v)
        a.args;
      id

  let find st a = H.find_opt st.ids a
  let atom st id = Vec.get st.atoms id
  let count st = Vec.length st.atoms
  let mark_fact st id = Vec.set st.facts id true
  let is_fact st id = Vec.get st.facts id

  let by_pred st p a =
    match Hashtbl.find_opt st.preds (p, a) with Some v -> v | None -> st.empty

  let by_pred_arg st p a ~pos ~value =
    match K.find_opt st.index { kpred = p; karity = a; kpos = pos; kvalue = value } with
    | Some v -> v
    | None -> st.empty

  let fold_pred_names st f acc = Hashtbl.fold (fun k _ acc -> f k acc) st.preds acc
end
