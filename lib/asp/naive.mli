(** Brute-force reference semantics for small programs (testing only).

    Enumerates every subset of the non-fact ground atoms and keeps exactly
    the stable models (Gelfond–Lifschitz reduct check, with the usual
    extension for choice rules and cardinality bounds).  Exponential — use
    on programs with at most ~20 candidate atoms. *)

val stable_models : Ast.program -> Gatom.t list list
(** All stable models, each sorted, the list itself sorted (deterministic).
    @raise Invalid_argument when the program has more than 22 candidate
    atoms. *)

val optimal_models : Ast.program -> (Gatom.t list * (int * int) list) list
(** Stable models that are lexicographically optimal w.r.t. the program's
    [#minimize] statements, with their cost vectors (priority, value),
    priorities descending. *)

(** {1 Building blocks}

    Exposed for {!Verify}, which re-checks claimed answers with these naive
    code paths instead of trusting the CDCL pipeline. *)

val body_holds : (int -> bool) -> Ground.body -> bool
(** Truth of a simplified body under a candidate assignment (atom id ->
    truth; facts must map to [true]). *)

val is_model : Ground.t -> (int -> bool) -> bool
(** Does the assignment satisfy every ground rule (constraints, normal
    rules, choice cardinalities) and is the program not flagged
    inconsistent? *)

val founded_set : Ground.t -> int -> (int -> bool) -> bool array
(** [founded_set g natoms is_true]: least fixpoint of the reduct — the atoms
    non-circularly derivable under the candidate model.  A stable model is
    exactly a model whose true atoms are all founded. *)

val cost_vector : Ground.t -> bool array -> (int * int) list
(** Cost vector of the assignment w.r.t. the ground [#minimize] entries:
    (priority, value) pairs, priorities descending, each (priority, weight,
    tuple) group counted once if any of its bodies holds. *)

val stable_models_ground : Ground.t -> int array * bool array list
(** All stable models of a ground program by exhaustive enumeration:
    the candidate atom ids and one truth array (indexed by atom id) per
    model.
    @raise Invalid_argument beyond 22 candidate atoms. *)

val atoms_of_truth : Ground.t -> bool array -> Gatom.t list
(** Atoms true in the assignment, as sorted ground atoms (facts included). *)
