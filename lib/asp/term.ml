type t = { node : node; id : int; hkey : int }
and node = Int of int | Str of string | Fun of string * t list

let node t = t.node
let id t = t.id
let hash t = t.hkey
let equal (a : t) (b : t) = a == b

(* Non-allocating structural hash over a single node level: children are
   already interned, so they contribute their precomputed hashes.  (The
   previous implementation hashed [(tag, payload)] tuples, allocating one
   tuple per call in the grounder's innermost loops.) *)
let[@inline] mix h x = ((h * 0x01000193) lxor x) land max_int

let node_hash = function
  | Int i -> mix 0x2f i
  | Str s -> mix 0x3d (Hashtbl.hash s)
  | Fun (f, args) ->
    List.fold_left (fun acc a -> mix acc a.hkey) (mix 0x53 (Hashtbl.hash f)) args

(* Shallow equality: sub-terms compare by physical identity, which is sound
   because every [t] is produced by the interning constructors below. *)
let rec args_eq xs ys =
  match (xs, ys) with
  | [], [] -> true
  | x :: xs, y :: ys -> x == y && args_eq xs ys
  | _ -> false

let node_equal a b =
  match (a, b) with
  | Int x, Int y -> Int.equal x y
  | Str x, Str y -> String.equal x y
  | Fun (f, xs), Fun (g, ys) -> String.equal f g && args_eq xs ys
  | _ -> false

module H = Hashtbl.Make (struct
  type t = node

  let equal = node_equal
  let hash = node_hash
end)

(* The global hash-cons table.  Terms live for the whole process; ids are
   dense, start at 0, and never change once assigned.

   The table is shared by every domain (physical equality of equal terms
   must hold across domains: answers computed by a portfolio racer are
   compared against terms interned by the caller), so it is sharded by hash
   with one mutex per shard.  Ids come from one atomic counter and are
   therefore dense but not allocation-ordered under parallelism. *)
let shard_count = 64 (* power of two *)

let tables : t H.t array = Array.init shard_count (fun _ -> H.create 1024)
let locks : Mutex.t array = Array.init shard_count (fun _ -> Mutex.create ())
let next_id = Atomic.make 0

let hashcons node =
  let h = node_hash node in
  let s = h land (shard_count - 1) in
  let tbl = tables.(s) and lock = locks.(s) in
  Mutex.lock lock;
  match H.find_opt tbl node with
  | Some t ->
    Mutex.unlock lock;
    t
  | None ->
    let t = { node; id = Atomic.fetch_and_add next_id 1; hkey = h } in
    H.add tbl node t;
    Mutex.unlock lock;
    t

let int i = hashcons (Int i)
let str s = hashcons (Str s)
let fun_ f args = hashcons (Fun (f, args))
let interned () = Atomic.get next_id

let rec compare a b =
  if a == b then 0
  else
    match (a.node, b.node) with
    | Int x, Int y -> Int.compare x y
    | Int _, _ -> -1
    | _, Int _ -> 1
    | Str x, Str y -> String.compare x y
    | Str _, _ -> -1
    | _, Str _ -> 1
    | Fun (f, xs), Fun (g, ys) ->
      let c = String.compare f g in
      if c <> 0 then c else List.compare compare xs ys

let to_int t = match t.node with Int i -> Some i | _ -> None

let is_ident s =
  s <> ""
  && (match s.[0] with 'a' .. 'z' -> true | _ -> false)
  && String.for_all
       (function 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' -> true | _ -> false)
       s

let rec pp ppf t =
  match t.node with
  | Int i -> Format.pp_print_int ppf i
  | Str s ->
    if is_ident s then Format.pp_print_string ppf s
    else Format.fprintf ppf "%S" s
  | Fun (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',') pp)
      args

let to_string t =
  match t.node with
  | Int i -> string_of_int i
  | Str s -> s
  | Fun _ -> Format.asprintf "%a" pp t
