type body = { pos : int array; neg : int array }

type rule =
  | Rnormal of int * body
  | Rchoice of choice
  | Rconstraint of body

and choice = { lb : int option; ub : int option; heads : int array; cbody : body }

type min_entry = {
  mweight : int;
  mpriority : int;
  mtuple : Term.t list;
  mbody : body;
}

(* Where a ground rule came from: the source rule's line and pretty-printed
   text, and the atom ids matched by the positive body {e before} the
   fact-stripping simplification — pins imposed as facts (version
   constraints, compiler requests) vanish from simplified bodies, and UNSAT
   explanations need them back. *)
type origin = { o_line : int; o_text : string; o_pos : int array }

type t = {
  store : Gatom.Store.t;
  rules : rule Vec.t;
  origins : origin Vec.t;  (* parallel to [rules] *)
  conflicts0 : origin Vec.t;
      (* constraint instances whose body simplified to the empty body: each
         is independently sufficient for unsatisfiability (see
         [inconsistent]) *)
  minimize : min_entry Vec.t;
  mutable inconsistent : bool;
}

let empty_body = { pos = [||]; neg = [||] }

let dummy_rule = Rconstraint empty_body

let dummy_origin = { o_line = 0; o_text = ""; o_pos = [||] }

let create store =
  {
    store;
    rules = Vec.create ~dummy:dummy_rule ();
    origins = Vec.create ~dummy:dummy_origin ();
    conflicts0 = Vec.create ~dummy:dummy_origin ();
    minimize =
      Vec.create ~dummy:{ mweight = 0; mpriority = 0; mtuple = []; mbody = empty_body } ();
    inconsistent = false;
  }

(* A vacuous placeholder: an unbounded choice over no atoms constrains
   nothing.  Incremental re-emission overwrites retracted rule slots with
   this instead of compacting the vector (indices are stable provenance). *)
let noop_rule = Rchoice { lb = None; ub = None; heads = [||]; cbody = empty_body }

let fork t store =
  {
    store;
    rules = Vec.copy t.rules;
    origins = Vec.copy t.origins;
    conflicts0 = Vec.copy t.conflicts0;
    minimize = Vec.copy t.minimize;
    inconsistent = t.inconsistent;
  }

let push_rule t rule origin =
  Vec.push t.rules rule;
  Vec.push t.origins origin

let origin t i = Vec.get t.origins i

let body_size b = Array.length b.pos + Array.length b.neg
let num_rules t = Vec.length t.rules
let num_atoms t = Gatom.Store.count t.store

let pp_body store ppf b =
  let first = ref true in
  let sep () =
    if !first then first := false else Format.pp_print_string ppf ", "
  in
  Array.iter
    (fun id ->
      sep ();
      Gatom.pp ppf (Gatom.Store.atom store id))
    b.pos;
  Array.iter
    (fun id ->
      sep ();
      Format.fprintf ppf "not %a" Gatom.pp (Gatom.Store.atom store id))
    b.neg

let pp_rule store ppf = function
  | Rnormal (h, b) when body_size b = 0 ->
    Format.fprintf ppf "%a." Gatom.pp (Gatom.Store.atom store h)
  | Rnormal (h, b) ->
    Format.fprintf ppf "%a :- %a." Gatom.pp (Gatom.Store.atom store h) (pp_body store) b
  | Rconstraint b -> Format.fprintf ppf ":- %a." (pp_body store) b
  | Rchoice { lb; ub; heads; cbody } ->
    let pp_b ppf = function None -> () | Some n -> Format.fprintf ppf "%d" n in
    Format.fprintf ppf "%a { " pp_b lb;
    Array.iteri
      (fun i h ->
        if i > 0 then Format.pp_print_string ppf "; ";
        Gatom.pp ppf (Gatom.Store.atom store h))
      heads;
    Format.fprintf ppf " } %a" pp_b ub;
    if body_size cbody > 0 then Format.fprintf ppf " :- %a" (pp_body store) cbody;
    Format.pp_print_string ppf "."

let pp ppf t =
  Vec.iter (fun r -> Format.fprintf ppf "%a@." (pp_rule t.store) r) t.rules;
  Vec.iter
    (fun { mweight; mpriority; mtuple; mbody } ->
      Format.fprintf ppf "#minimize{ %d@%d,%a : %a }.@." mweight mpriority
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
           Term.pp)
        mtuple (pp_body t.store) mbody)
    t.minimize
