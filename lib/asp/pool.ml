type state = {
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  nonempty : Condition.t;  (* signalled on push and on shutdown *)
  mutable closed : bool;
}

type t = { st : state; mutable workers : unit Domain.t array }

type 'a cell = Pending | Done of 'a | Failed of exn * Printexc.raw_backtrace

type 'a future = {
  fmutex : Mutex.t;
  fdone : Condition.t;
  mutable cell : 'a cell;
}

let rec worker st =
  Mutex.lock st.mutex;
  while Queue.is_empty st.queue && not st.closed do
    Condition.wait st.nonempty st.mutex
  done;
  match Queue.take_opt st.queue with
  | None ->
    (* closed and drained *)
    Mutex.unlock st.mutex
  | Some job ->
    Mutex.unlock st.mutex;
    job ();
    worker st

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: need at least one domain";
  let st =
    {
      queue = Queue.create ();
      mutex = Mutex.create ();
      nonempty = Condition.create ();
      closed = false;
    }
  in
  let workers = Array.init domains (fun _ -> Domain.spawn (fun () -> worker st)) in
  { st; workers }

let size t = Array.length t.workers

let default_size () = max 1 (Domain.recommended_domain_count () - 1)

let submit t f =
  let fut = { fmutex = Mutex.create (); fdone = Condition.create (); cell = Pending } in
  let job () =
    let outcome =
      match f () with
      | v -> Done v
      | exception e -> Failed (e, Printexc.get_raw_backtrace ())
    in
    Mutex.lock fut.fmutex;
    fut.cell <- outcome;
    Condition.broadcast fut.fdone;
    Mutex.unlock fut.fmutex
  in
  let st = t.st in
  Mutex.lock st.mutex;
  if st.closed then begin
    Mutex.unlock st.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.push job st.queue;
  Condition.signal st.nonempty;
  Mutex.unlock st.mutex;
  fut

let is_done fut =
  Mutex.lock fut.fmutex;
  let c = fut.cell in
  Mutex.unlock fut.fmutex;
  match c with Pending -> false | Done _ | Failed _ -> true

let await fut =
  Mutex.lock fut.fmutex;
  let rec wait () =
    match fut.cell with
    | Pending ->
      Condition.wait fut.fdone fut.fmutex;
      wait ()
    | (Done _ | Failed _) as c -> c
  in
  let c = wait () in
  Mutex.unlock fut.fmutex;
  match c with
  | Done v -> v
  | Failed (e, bt) -> Printexc.raise_with_backtrace e bt
  | Pending -> assert false

let map_list t f xs =
  let futs = List.map (fun x -> submit t (fun () -> f x)) xs in
  (* collect everything before raising so no job is left running behind the
     caller's back *)
  let outcomes =
    List.map
      (fun fu ->
        match await fu with
        | v -> Ok v
        | exception e -> Error (e, Printexc.get_raw_backtrace ()))
      futs
  in
  List.map
    (function Ok v -> v | Error (e, bt) -> Printexc.raise_with_backtrace e bt)
    outcomes

let shutdown t =
  let st = t.st in
  Mutex.lock st.mutex;
  let was_closed = st.closed in
  st.closed <- true;
  Condition.broadcast st.nonempty;
  Mutex.unlock st.mutex;
  if not was_closed then Array.iter Domain.join t.workers;
  t.workers <- [||]

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
