(** Minimal unsat cores with rule provenance.

    When a program is unsatisfiable, [explain] identifies a minimal set of
    integrity-constraint instances that are jointly responsible: the
    program is re-translated with assumable selector guards
    ({!Translate.translate_with_selectors}), solved under the full
    assumption set, and the final-conflict core is shrunk by deletion
    ({!Sat.shrink_core}).  Each cause carries the {!Ground.origin} of its
    constraint — source line, input-rule text, and the pre-simplification
    matched atoms — which is what [Core.Diagnose.explain_core] maps back to
    package recipes and request constraints. *)

type cause = {
  rule_index : int option;
      (** index of the constraint in [ground.rules]; [None] when the
          conflict was already detected at grounding time (the constraint's
          body grounded entirely to facts) *)
  origin : Ground.origin;
  ground_text : string;  (** the offending ground instance, pretty-printed *)
}

type result =
  | Unsat_core of { causes : cause list; minimal : bool }
      (** [minimal] is [false] when core shrinking was cut short by the
          budget; the causes are still jointly unsatisfiable *)
  | Satisfiable  (** the program has a stable model — nothing to explain *)
  | Exhausted of Budget.info
      (** the budget ran out before unsatisfiability was established *)

val explain : ?params:Sat.params -> ?budget:Budget.t -> Ground.t -> result
(** Never raises {!Budget.Exhausted}: exhaustion during the initial solve
    yields [Exhausted], exhaustion during shrinking yields a sound but
    possibly non-minimal core. *)

val pp_cause : Format.formatter -> cause -> unit
(** "input rule (line N): ground instance". *)
