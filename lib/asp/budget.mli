(** Resource governance for the solve pipeline.

    A budget bounds a solve by wall-clock deadline, number of conflicts and
    number of grounded instances, and carries a cooperative cancel token
    (settable from a SIGINT handler or an embedding caller).  The pipeline
    {e ticks} the budget at its three interruption points — {!Grounder}'s
    instantiation loop, {!Sat}'s conflict loop and {!Optimize}'s descent —
    and a tick that finds the budget exhausted raises {!Exhausted} carrying
    the phase, the reason and a snapshot of the progress counters.

    Every interruption point is exception-safe: the solver unwinds to a
    consistent state, so the caller can keep the best model found so far
    (see {!Optimize}) or retry with a larger budget (see
    [Concretizer.solve_escalating]).

    Budgets also host the deterministic fault-injection hook used by
    {!Fault}: the hook sees every tick and may force cancellation after an
    exact event count, which is how the interruption points are tested. *)

type phase =
  | Ground  (** instantiating the program *)
  | Search  (** looking for a first stable model *)
  | Optimize  (** lexicographic descent, a model is already in hand *)
  | Verify  (** independent re-checking of a claimed answer *)

type reason =
  | Deadline  (** wall-clock limit passed *)
  | Conflict_limit
  | Instance_limit
  | Cancelled  (** the cancel token was set (SIGINT or embedding caller) *)
  | Injected  (** fault-injection hook fired (tests only) *)

type progress = { conflicts : int; instances : int; opt_steps : int }
(** Event counts observed by this budget so far (its partial stats). *)

type info = { phase : phase; reason : reason; progress : progress }

exception Exhausted of info

val phase_name : phase -> string
val reason_name : reason -> string
val pp_info : Format.formatter -> info -> unit

(** Declarative limits; [None] everywhere means unbounded. *)
type limits = {
  wall : float option;  (** seconds from {!start} *)
  conflicts : int option;
  instances : int option;
}

val no_limits : limits

val double : limits -> limits
(** Double every finite limit (escalation retries). *)

type cancel_token

val token : unit -> cancel_token

val child_token : cancel_token -> cancel_token
(** A token linked under [parent]: cancelling the parent cancels the child,
    cancelling the child leaves the parent untouched.  The portfolio racer
    protocol hangs one race token under the caller's token — the winner
    cancels the race token to stop the losers, while a SIGINT on the
    caller's token still reaches every racer. *)

val cancel : cancel_token -> unit
(** Async-signal-safe and domain-safe: an atomic store, checked at the next
    tick of any budget sharing (or descending from) the token. *)

val is_cancelled : cancel_token -> bool
(** True when this token or any ancestor was cancelled. *)

type event = Conflict | Instance | Opt_step | Verify_step

type t

val start : ?cancel:cancel_token -> limits -> t
(** Arm a budget: the wall-clock deadline is [now + wall].  The same token
    may be shared by successive budgets (escalation keeps honouring a
    SIGINT received during an earlier attempt). *)

val unlimited : t
(** Shared never-expiring budget, the default of the [?budget] parameters
    throughout the pipeline.  Its progress counters are meaningless (they
    accumulate across unrelated solves); never arm a hook on it. *)

val cancel_token_of : t -> cancel_token option
(** The token the budget was armed with, if any. *)

val sibling : ?cancel:cancel_token -> t -> t
(** A budget with the {e same} absolute deadline and event limits but fresh
    counters, for parallel racers sharing one declarative budget.  [cancel]
    replaces the parent's token (default: share it); the fault hook is not
    inherited.  Each sibling must be ticked by a single domain. *)

val enter : t -> phase -> unit
(** Record the pipeline phase subsequent ticks are attributed to. *)

val progress : t -> progress

val set_hook : t -> (event -> bool) -> unit
(** Fault injection: the hook observes every tick (after the counter is
    bumped) and returns [true] to force cancellation with reason
    {!Injected}.  See {!Fault}. *)

val tick_conflict : t -> unit
(** @raise Exhausted when a limit is hit; once exhausted, every later tick
    or poll re-raises the same [info]. *)

val tick_instance : t -> unit
val tick_opt_step : t -> unit

val tick_verify_step : t -> unit
(** Ticked by {!Verify} per checked rule/atom chunk.  No counter or limit of
    its own: the event exists so countdown faults and cancellation reach the
    verification pass. *)

val poll : t -> unit
(** Cheap check of the cancel flag and (periodically) the deadline without
    counting an event; called from {!Sat}'s decision loop so even
    conflict-free search notices deadlines and SIGINT. *)
