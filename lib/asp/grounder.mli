(** Grounding: instantiating a first-order {!Ast.program} into a
    propositional {!Ground.t}.

    The algorithm follows the classic two-phase scheme used by lparse/gringo:

    + a semi-naive fixpoint computes the set of {e possibly true} atoms,
      treating negative literals and conditional-literal targets
      optimistically;
    + a second pass re-enumerates every rule against the final possible-atom
      set and emits simplified ground rules: literals over input facts are
      removed, rules whose positive body mentions impossible atoms are
      dropped, and negative literals on impossible atoms are erased.

    Conditional literals ([a : conds]) and choice-element guards must range
    over EDB predicates (predicates defined only by facts); this is checked
    and a {!Solver_error.Error} is raised otherwise. *)

type stats = {
  possible_atoms : int;  (** atoms in the possible-set closure *)
  ground_rules : int;
  fixpoint_rounds : int;
}

val ground :
  ?budget:Budget.t ->
  ?facts_stream:((Gatom.t -> unit) -> unit) ->
  Ast.program ->
  Ground.t * stats
(** The budget is ticked once per derived/emitted rule instance.

    [facts_stream], when given, is invoked once with a sink; every ground
    atom pushed into the sink is seeded as an input fact, exactly as if it
    had appeared as a fact statement {e after} the program's statements —
    but with no [Ast] statement or per-atom list materialized (the
    streaming fast path for E4S-scale reuse facts, §VII-C).  Atom
    interning order, and therefore the emitted ground program, is
    identical to the materialized equivalent.
    @raise Solver_error.Error ([Ground _]) on unsafe rules, non-EDB
    conditions, or arithmetic on non-integer terms.
    @raise Budget.Exhausted when the instance budget, deadline or cancel
    token fires mid-grounding. *)

(** {1 Incremental bases}

    [ground_base] grounds a program once and freezes the result together
    with the bookkeeping needed to grow it soundly:

    - {!extend} instantiates the program over extra {e fact} statements
      without re-grounding what the base already covers.  The base is
      never written: the result lives in a fresh atom-store layer and a
      forked rule vector, so many extensions (including concurrent ones on
      OCaml 5 domains) can share one base.
    - {!rebase} applies a durable delta (e.g. newly installed packages)
      producing a {e new} frozen base, cloning the base's tables.

    Soundness does not require re-running the base's work because growth
    is monotone except in three recorded places: erased negative literals
    and missing conditional-literal targets (instances indexed by the
    predicates they assumed impossible), and guard enumerations (instances
    indexed by their guard predicates, which are EDB-only).  Stale
    instances are re-emitted in place; instances matching a new atom are
    found semi-naively.  Literals whose {e fact} status changed are
    re-checked dynamically by {!Translate}. *)

type base
(** A frozen ground program plus extension bookkeeping. *)

val base_ground : base -> Ground.t
(** The base's own ground program (solving it answers the base request). *)

val base_stats : base -> stats

val ground_base :
  ?budget:Budget.t ->
  ?facts_stream:((Gatom.t -> unit) -> unit) ->
  Ast.program ->
  base * stats
(** Ground [prog] and freeze the result for extension.  [facts_stream] is
    seeded into the base exactly as in {!ground}.
    @raise Solver_error.Error as {!ground}. *)

val extend : ?budget:Budget.t -> base -> Ast.statement list -> Ground.t * stats
(** [extend base facts] is the ground program of [base]'s source program
    plus [facts].  [stats] counts totals (base + extension); its
    [fixpoint_rounds] are the delta rounds only.
    @raise Solver_error.Error if [facts] contains a non-fact statement or
    the base is inconsistent. *)

val rebase :
  ?budget:Budget.t ->
  ?facts_stream:((Gatom.t -> unit) -> unit) ->
  base ->
  Ast.statement list ->
  base * stats
(** [rebase base facts] is a new independent base equivalent to grounding
    [base]'s source program plus [facts].  [base] itself is unchanged and
    remains usable.  Atoms pushed by [facts_stream] are seeded alongside
    [facts]; a streamed atom the base already holds as a fact is a no-op
    (no staleness taint), so callers may re-stream a full fact set and pay
    only for the genuinely new atoms.
    @raise Solver_error.Error as {!extend}. *)
