(** Grounding: instantiating a first-order {!Ast.program} into a
    propositional {!Ground.t}.

    The algorithm follows the classic two-phase scheme used by lparse/gringo:

    + a semi-naive fixpoint computes the set of {e possibly true} atoms,
      treating negative literals and conditional-literal targets
      optimistically;
    + a second pass re-enumerates every rule against the final possible-atom
      set and emits simplified ground rules: literals over input facts are
      removed, rules whose positive body mentions impossible atoms are
      dropped, and negative literals on impossible atoms are erased.

    Conditional literals ([a : conds]) and choice-element guards must range
    over EDB predicates (predicates defined only by facts); this is checked
    and a {!Solver_error.Error} is raised otherwise. *)

type stats = {
  possible_atoms : int;  (** atoms in the possible-set closure *)
  ground_rules : int;
  fixpoint_rounds : int;
}

val ground : ?budget:Budget.t -> Ast.program -> Ground.t * stats
(** The budget is ticked once per derived/emitted rule instance.
    @raise Solver_error.Error ([Ground _]) on unsafe rules, non-EDB
    conditions, or arithmetic on non-integer terms.
    @raise Budget.Exhausted when the instance budget, deadline or cancel
    token fires mid-grounding. *)
