(** The typed error taxonomy of the solve pipeline.

    Everything [solve_program] / [Concretizer.solve] can fail with is one of
    these constructors — no bare [Failure] strings escape the pipeline:

    - {!Parse}: syntax errors from {!Lexer}/{!Parser}, located by source
      label, line and column;
    - {!Ground}: grounding-time violations (unsafe rules, non-EDB
      conditions, arithmetic on non-integer terms);
    - {!Exhausted}: a budget ran out, with the phase and partial stats
      (usually surfaced as an [Interrupted] result rather than raised);
    - {!No_model}: a model accessor ({!Sat.value},
      {!Sat.model_true_vars}) was called before a successful solve;
    - {!Verification_failed}: the independent checker ({!Verify}) rejected
      every candidate answer, including the sequential re-solve of last
      resort — a solver bug was caught before shipping a wrong answer. *)

type t =
  | Parse of { src : string; line : int; col : int; msg : string }
  | Ground of { msg : string }
  | Exhausted of Budget.info
  | No_model
  | Verification_failed of { violations : string list }

exception Error of t

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val parse_error :
  src:string -> line:int -> col:int -> ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise [Error (Parse _)] with a formatted message. *)

val ground_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Raise [Error (Ground _)] with a formatted message. *)
