type t =
  | Parse of { src : string; line : int; col : int; msg : string }
  | Ground of { msg : string }
  | Exhausted of Budget.info
  | No_model
  | Verification_failed of { violations : string list }

exception Error of t

let pp ppf = function
  | Parse { src; line; col; msg } ->
    Format.fprintf ppf "%s:%d:%d: syntax error: %s" src line col msg
  | Ground { msg } -> Format.fprintf ppf "grounding error: %s" msg
  | Exhausted info -> Format.fprintf ppf "budget exhausted: %a" Budget.pp_info info
  | No_model ->
    Format.pp_print_string ppf
      "no model available: the solver has not produced a model yet"
  | Verification_failed { violations } ->
    Format.fprintf ppf
      "independent verification rejected every candidate answer:@,%a"
      (Format.pp_print_list ~pp_sep:Format.pp_print_cut
         (fun ppf v -> Format.fprintf ppf "  %s" v))
      violations

let to_string e = Format.asprintf "%a" pp e

let parse_error ~src ~line ~col fmt =
  Format.kasprintf (fun msg -> raise (Error (Parse { src; line; col; msg }))) fmt

let ground_error fmt = Format.kasprintf (fun msg -> raise (Error (Ground { msg }))) fmt
