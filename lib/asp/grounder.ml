type stats = { possible_atoms : int; ground_rules : int; fixpoint_rounds : int }

let errf fmt = Solver_error.ground_error fmt

(* ------------------------------------------------------------------ *)
(* Compiled patterns: variables resolved to dense per-rule slots.       *)
(* ------------------------------------------------------------------ *)

(* Rules are compiled once before grounding: every variable becomes an
   integer slot into the substitution array, so the inner join loops never
   touch variable names (the source name is kept for error messages only). *)
type cterm =
  | C_cst of Term.t
  | C_var of int * string  (** slot, source name *)
  | C_binop of Ast.binop * cterm * cterm
  | C_interval of cterm * cterm
  | C_fn of string * cterm list

type catom = { cpred : string; carity : int; cargs : cterm list }

type cx = { ctbl : (string, int) Hashtbl.t; mutable nvars : int }

let new_cx () = { ctbl = Hashtbl.create 16; nvars = 0 }

let slot cx v =
  match Hashtbl.find_opt cx.ctbl v with
  | Some i -> i
  | None ->
    let i = cx.nvars in
    cx.nvars <- i + 1;
    Hashtbl.add cx.ctbl v i;
    i

let rec compile_term cx = function
  | Ast.Cst c -> C_cst c
  | Ast.Var v -> C_var (slot cx v, v)
  | Ast.Binop (op, a, b) -> C_binop (op, compile_term cx a, compile_term cx b)
  | Ast.Interval (a, b) -> C_interval (compile_term cx a, compile_term cx b)
  | Ast.Fn (f, args) -> C_fn (f, List.map (compile_term cx) args)

let compile_atom cx (a : Ast.atom) =
  {
    cpred = a.Ast.pred;
    carity = List.length a.Ast.args;
    cargs = List.map (compile_term cx) a.Ast.args;
  }

let rec pp_cterm ppf = function
  | C_cst c -> Term.pp ppf c
  | C_var (_, v) -> Format.pp_print_string ppf v
  | C_binop (op, a, b) ->
    let op =
      match op with
      | Ast.Add -> "+"
      | Ast.Sub -> "-"
      | Ast.Mul -> "*"
      | Ast.Div -> "/"
      | Ast.Mod -> "\\"
    in
    Format.fprintf ppf "(%a%s%a)" pp_cterm a op pp_cterm b
  | C_interval (a, b) -> Format.fprintf ppf "%a..%a" pp_cterm a pp_cterm b
  | C_fn (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         pp_cterm)
      args

let pp_catom ppf a =
  match a.cargs with
  | [] -> Format.pp_print_string ppf a.cpred
  | _ ->
    Format.fprintf ppf "%s(%a)" a.cpred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         pp_cterm)
      a.cargs

(* ------------------------------------------------------------------ *)
(* Substitution environments with trailing for cheap undo.             *)
(* ------------------------------------------------------------------ *)

module Env = struct
  type t = { mutable slots : Term.t option array; trail : int Vec.t }

  let create () = { slots = Array.make 64 None; trail = Vec.create ~dummy:0 () }

  let ensure env n =
    if Array.length env.slots < n then begin
      let ns = Array.make (max n (2 * Array.length env.slots)) None in
      Array.blit env.slots 0 ns 0 (Array.length env.slots);
      env.slots <- ns
    end

  let mark env = Vec.length env.trail

  let undo env m =
    while Vec.length env.trail > m do
      env.slots.(Vec.pop env.trail) <- None
    done

  (* terms are interned, so the conflict check is pointer equality *)
  let bind env v t =
    match Array.unsafe_get env.slots v with
    | Some t' -> Term.equal t t'
    | None ->
      Array.unsafe_set env.slots v (Some t);
      Vec.push env.trail v;
      true

  let lookup env v = Array.unsafe_get env.slots v
end

(* Evaluate a term under an environment; [None] if a variable is unbound. *)
let rec eval env (t : cterm) : Term.t option =
  match t with
  | C_cst c -> Some c
  | C_var (v, _) -> Env.lookup env v
  | C_interval _ -> errf "intervals are only supported in fact arguments"
  | C_fn (f, args) ->
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | t :: rest -> ( match eval env t with Some v -> all (v :: acc) rest | None -> None)
    in
    Option.map (fun vs -> Term.fun_ f vs) (all [] args)
  | C_binop (op, a, b) -> (
    match (eval env a, eval env b) with
    | Some { Term.node = Term.Int x; _ }, Some { Term.node = Term.Int y; _ } ->
      let r =
        match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Div ->
          if y = 0 then errf "division by zero in grounding" else x / y
        | Ast.Mod -> if y = 0 then errf "modulo by zero in grounding" else x mod y
      in
      Some (Term.int r)
    | Some a', Some b' ->
      errf "arithmetic on non-integer terms %a, %a" Term.pp a' Term.pp b'
    | _ -> None)

let eval_exn env ctx t =
  match eval env t with
  | Some v -> v
  | None -> errf "unsafe rule: unbound variable in %s (%a)" ctx pp_cterm t

(* Match pattern term [p] against ground value [v], extending [env]. *)
let rec match_term env (p : cterm) (v : Term.t) =
  match p with
  | C_cst c -> Term.equal c v
  | C_var (x, _) -> Env.bind env x v
  | C_fn (f, args) -> (
    match Term.node v with
    | Term.Fun (g, vals) ->
      String.equal f g
      && List.length args = List.length vals
      && List.for_all2 (fun p v -> match_term env p v) args vals
    | _ -> false)
  | C_binop _ | C_interval _ -> (
    match eval env p with Some pv -> Term.equal pv v | None -> false)

let match_atom env (pat : catom) (ga : Gatom.t) =
  List.for_all2 (fun p v -> match_term env p v) pat.cargs ga.Gatom.args

let eval_cmp c (a : Term.t) (b : Term.t) =
  let k = Term.compare a b in
  match c with
  | Ast.Eq -> k = 0
  | Ast.Ne -> k <> 0
  | Ast.Lt -> k < 0
  | Ast.Le -> k <= 0
  | Ast.Gt -> k > 0
  | Ast.Ge -> k >= 0

(* ------------------------------------------------------------------ *)
(* Compiled rules: bodies split by literal kind.                       *)
(* ------------------------------------------------------------------ *)

type split_body = {
  b_pos : catom array;
  b_cmps : (Ast.cmp * cterm * cterm) array;
  b_foralls : (catom * catom list) array;
  b_negs : catom array;
}

let split_body cx (body : Ast.body_lit list) =
  let pos = ref [] and cmps = ref [] and foralls = ref [] and negs = ref [] in
  List.iter
    (function
      | Ast.Pos a -> pos := compile_atom cx a :: !pos
      | Ast.Neg a -> negs := compile_atom cx a :: !negs
      | Ast.Cmp (c, x, y) -> cmps := (c, compile_term cx x, compile_term cx y) :: !cmps
      | Ast.Forall (a, conds) ->
        foralls := (compile_atom cx a, List.map (compile_atom cx) conds) :: !foralls)
    body;
  {
    b_pos = Array.of_list (List.rev !pos);
    b_cmps = Array.of_list (List.rev !cmps);
    b_foralls = Array.of_list (List.rev !foralls);
    b_negs = Array.of_list (List.rev !negs);
  }

(* Compiled choice element; [ce_bad] carries the rendering of a non-positive
   guard literal, reported (like the interpreter used to) only when the
   element is actually derived. *)
type celem = { ce_elem : catom; ce_guard : catom list; ce_bad : string option }

type chead =
  | C_none
  | C_atom of catom
  | C_choice of { c_lb : cterm option; c_ub : cterm option; c_elems : celem list }

type compiled = {
  c_head : chead;
  c_body : split_body;
  c_text : string;  (** for error messages and provenance *)
  c_line : int;  (** source line of the rule (0 when synthesized) *)
  c_nvars : int;
}

let compile_head cx = function
  | Ast.Head_none -> C_none
  | Ast.Head_atom a -> C_atom (compile_atom cx a)
  | Ast.Head_choice { lb; ub; elems } ->
    let celems =
      List.map
        (fun { Ast.elem; guard } ->
          let bad =
            List.find_map
              (function Ast.Pos _ -> None | l -> Some (Format.asprintf "%a" Ast.pp_body_lit l))
              guard
          in
          let conds =
            List.filter_map
              (function Ast.Pos a -> Some (compile_atom cx a) | _ -> None)
              guard
          in
          { ce_elem = compile_atom cx elem; ce_guard = conds; ce_bad = bad })
        elems
    in
    C_choice
      {
        c_lb = Option.map (compile_term cx) lb;
        c_ub = Option.map (compile_term cx) ub;
        c_elems = celems;
      }

(* ------------------------------------------------------------------ *)
(* The grounding state.                                                *)
(* ------------------------------------------------------------------ *)

type state = {
  store : Gatom.Store.t;
  env : Env.t;
  idb : (string * int, unit) Hashtbl.t;  (** predicates with rule-defined heads *)
  budget : Budget.t;
}

let is_edb st (a : catom) = not (Hashtbl.mem st.idb (a.cpred, a.carity))

(* Candidate atom ids for a positive atom pattern under the current env.
   Picks the most selective index among argument positions whose pattern is
   already ground. *)
let candidates st (pat : catom) : int Vec.t =
  let best = ref None in
  List.iteri
    (fun pos p ->
      match eval st.env p with
      | Some v ->
        let c = Gatom.Store.by_pred_arg st.store pat.cpred pat.carity ~pos ~value:v in
        let n = Vec.length c in
        (match !best with
        | Some (m, _) when m <= n -> ()
        | _ -> best := Some (n, c))
      | None -> ())
    pat.cargs;
  match !best with
  | Some (_, c) -> c
  | None -> Gatom.Store.by_pred st.store pat.cpred pat.carity

(* Enumerate all substitutions satisfying the positive atoms and comparisons
   of [body] over the possible-atom store.  [delta] optionally restricts one
   positive literal (by index) to atoms with id >= the given bound, for
   semi-naive evaluation.  Calls [k] for each complete substitution with the
   matched positive atom ids (in literal order). *)
let enumerate st (body : split_body) ?delta (k : int array -> unit) =
  let npos = Array.length body.b_pos in
  let matched = Array.make npos (-1) in
  let done_pos = Array.make npos false in
  let cmps_left = ref (Array.to_list body.b_cmps) in
  (* Evaluate all comparisons that have become ground; false means prune. *)
  let rec check_cmps acc = function
    | [] ->
      cmps_left := List.rev acc;
      true
    | ((c, x, y) as cmp) :: rest -> (
      match (eval st.env x, eval st.env y) with
      | Some a, Some b ->
        if eval_cmp c a b then check_cmps acc rest else false
      | _ -> check_cmps (cmp :: acc) rest)
  in
  let rec go remaining =
    if remaining = 0 then begin
      (match !cmps_left with
      | [] -> ()
      | (_, x, y) :: _ ->
        ignore (eval_exn st.env "comparison" x);
        ignore (eval_exn st.env "comparison" y));
      k (Array.copy matched)
    end
    else begin
      (* choose the unprocessed literal with the fewest candidates *)
      let best = ref (-1) and best_c = ref None and best_n = ref max_int in
      for i = 0 to npos - 1 do
        if not done_pos.(i) then begin
          let c = candidates st body.b_pos.(i) in
          let n = Vec.length c in
          if n < !best_n then begin
            best := i;
            best_c := Some c;
            best_n := n
          end
        end
      done;
      let i = !best in
      let cands = Option.get !best_c in
      done_pos.(i) <- true;
      let lo = match delta with Some (j, lo) when j = i -> lo | _ -> 0 in
      Vec.iter
        (fun id ->
          if id >= lo then begin
            let m = Env.mark st.env in
            let saved_cmps = !cmps_left in
            if
              match_atom st.env body.b_pos.(i) (Gatom.Store.atom st.store id)
              && check_cmps [] !cmps_left
            then begin
              matched.(i) <- id;
              go (remaining - 1)
            end;
            cmps_left := saved_cmps;
            Env.undo st.env m
          end)
        cands;
      done_pos.(i) <- false
    end
  in
  let m = Env.mark st.env in
  let saved = !cmps_left in
  if check_cmps [] !cmps_left then go npos;
  cmps_left := saved;
  Env.undo st.env m

(* Enumerate EDB-guard matches: used for Forall conditions and choice-element
   guards.  The guard is a conjunction of atoms over EDB predicates; local
   variables are bound during enumeration.  Calls [k] once per match. *)
let enumerate_guard st (conds : catom list) rule_text (k : unit -> unit) =
  List.iter
    (fun c ->
      if not (is_edb st c) then
        errf "condition %a in %s must range over fact-only predicates" pp_catom c
          rule_text)
    conds;
  let rec go = function
    | [] -> k ()
    | c :: rest ->
      let cands = candidates st c in
      Vec.iter
        (fun id ->
          if Gatom.Store.is_fact st.store id then begin
            let m = Env.mark st.env in
            if match_atom st.env c (Gatom.Store.atom st.store id) then go rest;
            Env.undo st.env m
          end)
        cands
    in
  go conds

let ground_atom st ctx (a : catom) : Gatom.t =
  Gatom.make a.cpred (List.map (fun t -> eval_exn st.env ctx t) a.cargs)

(* ------------------------------------------------------------------ *)
(* Phase 1: possible-atom closure.                                     *)
(* ------------------------------------------------------------------ *)

(* Derive all head atoms of [rule] for the current substitution into the
   store (optimistic w.r.t. negation and Forall targets). *)
let derive_heads st (rule : compiled) =
  Budget.tick_instance st.budget;
  match rule.c_head with
  | C_none -> ()
  | C_atom a ->
    ignore (Gatom.Store.intern st.store (ground_atom st rule.c_text a))
  | C_choice { c_elems; _ } ->
    List.iter
      (fun { ce_elem; ce_guard; ce_bad } ->
        (match ce_bad with
        | Some l ->
          errf "choice guard %s in %s must be a positive atom" l rule.c_text
        | None -> ());
        enumerate_guard st ce_guard rule.c_text (fun () ->
            ignore (Gatom.Store.intern st.store (ground_atom st rule.c_text ce_elem))))
      c_elems

let possible_closure st (rules : compiled list) =
  let nfacts = Gatom.Store.count st.store in
  (* round 0: full evaluation over the facts *)
  List.iter (fun r -> enumerate st r.c_body (fun _ -> derive_heads st r)) rules;
  let rounds = ref 1 in
  (* semi-naive rounds: some positive literal must match an atom added since
     the previous round *)
  let frontier = ref nfacts in
  while !frontier < Gatom.Store.count st.store do
    incr rounds;
    let lo = !frontier in
    frontier := Gatom.Store.count st.store;
    List.iter
      (fun r ->
        let npos = Array.length r.c_body.b_pos in
        for i = 0 to npos - 1 do
          enumerate st r.c_body ~delta:(i, lo) (fun _ -> derive_heads st r)
        done)
      rules
  done;
  !rounds

(* ------------------------------------------------------------------ *)
(* Phase 2: emitting simplified ground rules.                          *)
(* ------------------------------------------------------------------ *)

exception Drop_instance

(* Resolve the full body of a rule instance to (pos, neg) atom-id arrays.
   [matched] are the ids matched for positive literals.  Facts are removed;
   impossible positive atoms (from Forall expansion) or negated facts drop
   the whole instance. *)
let resolve_body st (body : split_body) (matched : int array) : Ground.body =
  let pos = ref [] and neg = ref [] in
  let add_pos id = if not (Gatom.Store.is_fact st.store id) then pos := id :: !pos in
  Array.iter add_pos matched;
  Array.iter
    (fun (target, conds) ->
      enumerate_guard st conds "conditional literal" (fun () ->
          let ga = ground_atom st "conditional literal" target in
          match Gatom.Store.find st.store ga with
          | Some id -> add_pos id
          | None -> raise Drop_instance))
    body.b_foralls;
  Array.iter
    (fun a ->
      let ga = ground_atom st "negative literal" a in
      match Gatom.Store.find st.store ga with
      | None -> () (* impossible atom: [not a] trivially true *)
      | Some id -> if Gatom.Store.is_fact st.store id then raise Drop_instance else neg := id :: !neg)
    body.b_negs;
  let dedup l = List.sort_uniq Int.compare l in
  { Ground.pos = Array.of_list (dedup !pos); neg = Array.of_list (dedup !neg) }

let bound_value st rule_text = function
  | None -> None
  | Some t -> (
    match eval_exn st.env ("cardinality bound of " ^ rule_text) t with
    | { Term.node = Term.Int n; _ } -> Some n
    | t -> errf "cardinality bound %a in %s is not an integer" Term.pp t rule_text)

let emit_rules st (out : Ground.t) (rules : compiled list) =
  List.iter
    (fun r ->
      enumerate st r.c_body (fun matched ->
          Budget.tick_instance st.budget;
          (* [matched] is a fresh array per instance: retain it as the
             pre-simplification positive body for provenance *)
          let origin =
            { Ground.o_line = r.c_line; o_text = r.c_text; o_pos = matched }
          in
          match resolve_body st r.c_body matched with
          | exception Drop_instance -> ()
          | body -> (
            match r.c_head with
            | C_none ->
              if Ground.body_size body = 0 then begin
                out.Ground.inconsistent <- true;
                Vec.push out.Ground.conflicts0 origin
              end
              else Ground.push_rule out (Ground.Rconstraint body) origin
            | C_atom a -> (
              let ga = ground_atom st r.c_text a in
              let id = Gatom.Store.intern st.store ga in
              if not (Gatom.Store.is_fact st.store id) then
                if Ground.body_size body = 0 then Gatom.Store.mark_fact st.store id
                else Ground.push_rule out (Ground.Rnormal (id, body)) origin)
            | C_choice { c_lb; c_ub; c_elems } ->
              let lb = bound_value st r.c_text c_lb in
              let ub = bound_value st r.c_text c_ub in
              let heads = ref [] in
              List.iter
                (fun { ce_elem; ce_guard; ce_bad = _ } ->
                  enumerate_guard st ce_guard r.c_text (fun () ->
                      let ga = ground_atom st r.c_text ce_elem in
                      match Gatom.Store.find st.store ga with
                      | Some id -> heads := id :: !heads
                      | None -> heads := Gatom.Store.intern st.store ga :: !heads))
                c_elems;
              let heads = Array.of_list (List.sort_uniq Int.compare !heads) in
              if Array.length heads = 0 then begin
                match lb with
                | Some n when n > 0 ->
                  if Ground.body_size body = 0 then begin
                    out.Ground.inconsistent <- true;
                    Vec.push out.Ground.conflicts0 origin
                  end
                  else Ground.push_rule out (Ground.Rconstraint body) origin
                | _ -> ()
              end
              else
                Ground.push_rule out
                  (Ground.Rchoice { lb; ub; heads; cbody = body })
                  origin)))
    rules

(* Compiled minimize element: weight/priority/tuple plus its guard body. *)
type cmin = {
  cm_weight : cterm;
  cm_priority : cterm;
  cm_tuple : cterm list;
  cm_body : split_body;
  cm_nvars : int;
}

let compile_min_elem ({ Ast.weight; priority; tuple; guard } : Ast.min_elem) =
  let cx = new_cx () in
  {
    cm_weight = compile_term cx weight;
    cm_priority = compile_term cx priority;
    cm_tuple = List.map (compile_term cx) tuple;
    cm_body = split_body cx guard;
    cm_nvars = cx.nvars;
  }

let emit_minimize st (out : Ground.t) (groups : cmin list list) =
  List.iter
    (fun group ->
      List.iter
        (fun m ->
          Env.ensure st.env m.cm_nvars;
          enumerate st m.cm_body (fun matched ->
              Budget.tick_instance st.budget;
              match resolve_body st m.cm_body matched with
              | exception Drop_instance -> ()
              | mbody ->
                let w =
                  match eval_exn st.env "minimize weight" m.cm_weight with
                  | { Term.node = Term.Int n; _ } -> n
                  | t -> errf "minimize weight %a is not an integer" Term.pp t
                in
                let p =
                  match eval_exn st.env "minimize priority" m.cm_priority with
                  | { Term.node = Term.Int n; _ } -> n
                  | t -> errf "minimize priority %a is not an integer" Term.pp t
                in
                let tup =
                  List.map (fun t -> eval_exn st.env "minimize tuple" t) m.cm_tuple
                in
                Vec.push out.Ground.minimize
                  { Ground.mweight = w; mpriority = p; mtuple = tup; mbody }))
        group)
    groups

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

(* Safety runs on the source rule (variable names are needed for messages)
   before compilation to slots. *)
let check_safety text (head : Ast.head) (body : Ast.body_lit list) =
  let bound =
    List.concat_map
      (function Ast.Pos a -> Ast.atom_vars a | _ -> [])
      body
  in
  let bound = List.sort_uniq String.compare bound in
  let is_bound v = List.mem v bound in
  let check_vars ctx vars =
    List.iter
      (fun v ->
        if not (is_bound v) then
          errf "unsafe rule %s: variable %s in %s not bound by a positive body literal"
            text v ctx)
      vars
  in
  List.iter
    (function
      | Ast.Neg a -> check_vars "negative literal" (Ast.atom_vars a)
      | _ -> ())
    body;
  (* head variables must be bound, except choice-element locals bound by guards *)
  match head with
  | Ast.Head_none -> ()
  | Ast.Head_atom a -> check_vars "rule head" (Ast.atom_vars a)
  | Ast.Head_choice { elems; _ } ->
    List.iter
      (fun { Ast.elem; guard } ->
        let guard_vars =
          List.concat_map
            (function Ast.Pos a -> Ast.atom_vars a | _ -> [])
            guard
        in
        List.iter
          (fun v ->
            if not (is_bound v || List.mem v guard_vars) then
              errf
                "unsafe rule %s: choice variable %s bound neither by the body nor by \
                 its guard"
                text v)
          (Ast.atom_vars elem))
      elems

(* Evaluate a ground (variable-free) fact argument. *)
let eval_ground_arg t =
  let cx = new_cx () in
  let ct = compile_term cx t in
  eval (Env.create ()) ct

let ground ?(budget = Budget.unlimited) (prog : Ast.program) : Ground.t * stats =
  Budget.enter budget Budget.Ground;
  let store = Gatom.Store.create () in
  let st = { store; env = Env.create (); idb = Hashtbl.create 64; budget } in
  let rules = ref [] and minimizes = ref [] in
  (* Seed facts; collect rules and classify IDB predicates. *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Show _ -> ()
      | Ast.Minimize elems -> minimizes := List.map compile_min_elem elems :: !minimizes
      | Ast.Rule ({ head; body; _ } as r) ->
        if Ast.statement_is_fact stmt then begin
          match head with
          | Ast.Head_atom a ->
            (* expand interval arguments into their cartesian product *)
            let rec arg_values = function
              | Ast.Cst c -> [ c ]
              | Ast.Interval (lo, hi) -> (
                let ev t =
                  match t with
                  | Ast.Cst { Term.node = Term.Int i; _ } -> i
                  | Ast.Cst c -> errf "interval bound %a is not an integer" Term.pp c
                  | t -> errf "interval bound %a is not ground" Ast.pp_term t
                in
                let lo = ev lo and hi = ev hi in
                if lo > hi then []
                else List.init (hi - lo + 1) (fun k -> Term.int (lo + k)))
              | (Ast.Binop _ | Ast.Fn _) as t -> (
                match eval_ground_arg t with
                | Some c -> [ c ]
                | None -> errf "non-ground fact argument %a" Ast.pp_term t)
              | Ast.Var _ as t -> errf "non-ground fact argument %a" Ast.pp_term t
            and expand = function
              | [] -> [ [] ]
              | t :: rest ->
                let tails = expand rest in
                List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) (arg_values t)
            in
            List.iter
              (fun args ->
                let id = Gatom.Store.intern store (Gatom.make a.Ast.pred args) in
                Gatom.Store.mark_fact store id)
              (expand a.Ast.args)
          | _ -> assert false
        end
        else begin
          List.iter
            (fun (a : Ast.atom) ->
              Hashtbl.replace st.idb (a.Ast.pred, List.length a.Ast.args) ())
            (Ast.head_atoms head);
          let text = Format.asprintf "%a" Ast.pp_statement (Ast.Rule r) in
          check_safety text head body;
          let cx = new_cx () in
          let c =
            {
              c_head = compile_head cx head;
              c_body = split_body cx body;
              c_text = text;
              c_line = r.Ast.line;
              c_nvars = cx.nvars;
            }
          in
          rules := c :: !rules
        end)
    prog;
  let rules = List.rev !rules in
  let max_nvars = List.fold_left (fun m r -> max m r.c_nvars) 0 rules in
  Env.ensure st.env max_nvars;
  let rounds = possible_closure st rules in
  let out = Ground.create store in
  emit_rules st out rules;
  emit_minimize st out (List.rev !minimizes);
  ( out,
    {
      possible_atoms = Gatom.Store.count store;
      ground_rules = Ground.num_rules out;
      fixpoint_rounds = rounds;
    } )
