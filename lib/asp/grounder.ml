type stats = { possible_atoms : int; ground_rules : int; fixpoint_rounds : int }

let errf fmt = Solver_error.ground_error fmt

(* ------------------------------------------------------------------ *)
(* Compiled patterns: variables resolved to dense per-rule slots.       *)
(* ------------------------------------------------------------------ *)

(* Rules are compiled once before grounding: every variable becomes an
   integer slot into the substitution array, so the inner join loops never
   touch variable names (the source name is kept for error messages only). *)
type cterm =
  | C_cst of Term.t
  | C_var of int * string  (** slot, source name *)
  | C_binop of Ast.binop * cterm * cterm
  | C_interval of cterm * cterm
  | C_fn of string * cterm list

type catom = { cpred : string; carity : int; cargs : cterm list }

type cx = { ctbl : (string, int) Hashtbl.t; mutable nvars : int }

let new_cx () = { ctbl = Hashtbl.create 16; nvars = 0 }

let slot cx v =
  match Hashtbl.find_opt cx.ctbl v with
  | Some i -> i
  | None ->
    let i = cx.nvars in
    cx.nvars <- i + 1;
    Hashtbl.add cx.ctbl v i;
    i

let rec compile_term cx = function
  | Ast.Cst c -> C_cst c
  | Ast.Var v -> C_var (slot cx v, v)
  | Ast.Binop (op, a, b) -> C_binop (op, compile_term cx a, compile_term cx b)
  | Ast.Interval (a, b) -> C_interval (compile_term cx a, compile_term cx b)
  | Ast.Fn (f, args) -> C_fn (f, List.map (compile_term cx) args)

let compile_atom cx (a : Ast.atom) =
  {
    cpred = a.Ast.pred;
    carity = List.length a.Ast.args;
    cargs = List.map (compile_term cx) a.Ast.args;
  }

let rec pp_cterm ppf = function
  | C_cst c -> Term.pp ppf c
  | C_var (_, v) -> Format.pp_print_string ppf v
  | C_binop (op, a, b) ->
    let op =
      match op with
      | Ast.Add -> "+"
      | Ast.Sub -> "-"
      | Ast.Mul -> "*"
      | Ast.Div -> "/"
      | Ast.Mod -> "\\"
    in
    Format.fprintf ppf "(%a%s%a)" pp_cterm a op pp_cterm b
  | C_interval (a, b) -> Format.fprintf ppf "%a..%a" pp_cterm a pp_cterm b
  | C_fn (f, args) ->
    Format.fprintf ppf "%s(%a)" f
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         pp_cterm)
      args

let pp_catom ppf a =
  match a.cargs with
  | [] -> Format.pp_print_string ppf a.cpred
  | _ ->
    Format.fprintf ppf "%s(%a)" a.cpred
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ',')
         pp_cterm)
      a.cargs

(* ------------------------------------------------------------------ *)
(* Substitution environments with trailing for cheap undo.             *)
(* ------------------------------------------------------------------ *)

module Env = struct
  type t = { mutable slots : Term.t option array; trail : int Vec.t }

  let create () = { slots = Array.make 64 None; trail = Vec.create ~dummy:0 () }

  let ensure env n =
    if Array.length env.slots < n then begin
      let ns = Array.make (max n (2 * Array.length env.slots)) None in
      Array.blit env.slots 0 ns 0 (Array.length env.slots);
      env.slots <- ns
    end

  let mark env = Vec.length env.trail

  let undo env m =
    while Vec.length env.trail > m do
      env.slots.(Vec.pop env.trail) <- None
    done

  (* terms are interned, so the conflict check is pointer equality *)
  let bind env v t =
    match Array.unsafe_get env.slots v with
    | Some t' -> Term.equal t t'
    | None ->
      Array.unsafe_set env.slots v (Some t);
      Vec.push env.trail v;
      true

  let lookup env v = Array.unsafe_get env.slots v
end

(* Evaluate a term under an environment; [None] if a variable is unbound. *)
let rec eval env (t : cterm) : Term.t option =
  match t with
  | C_cst c -> Some c
  | C_var (v, _) -> Env.lookup env v
  | C_interval _ -> errf "intervals are only supported in fact arguments"
  | C_fn (f, args) ->
    let rec all acc = function
      | [] -> Some (List.rev acc)
      | t :: rest -> ( match eval env t with Some v -> all (v :: acc) rest | None -> None)
    in
    Option.map (fun vs -> Term.fun_ f vs) (all [] args)
  | C_binop (op, a, b) -> (
    match (eval env a, eval env b) with
    | Some { Term.node = Term.Int x; _ }, Some { Term.node = Term.Int y; _ } ->
      let r =
        match op with
        | Ast.Add -> x + y
        | Ast.Sub -> x - y
        | Ast.Mul -> x * y
        | Ast.Div ->
          if y = 0 then errf "division by zero in grounding" else x / y
        | Ast.Mod -> if y = 0 then errf "modulo by zero in grounding" else x mod y
      in
      Some (Term.int r)
    | Some a', Some b' ->
      errf "arithmetic on non-integer terms %a, %a" Term.pp a' Term.pp b'
    | _ -> None)

let eval_exn env ctx t =
  match eval env t with
  | Some v -> v
  | None -> errf "unsafe rule: unbound variable in %s (%a)" ctx pp_cterm t

(* Match pattern term [p] against ground value [v], extending [env]. *)
let rec match_term env (p : cterm) (v : Term.t) =
  match p with
  | C_cst c -> Term.equal c v
  | C_var (x, _) -> Env.bind env x v
  | C_fn (f, args) -> (
    match Term.node v with
    | Term.Fun (g, vals) ->
      String.equal f g
      && List.length args = List.length vals
      && List.for_all2 (fun p v -> match_term env p v) args vals
    | _ -> false)
  | C_binop _ | C_interval _ -> (
    match eval env p with Some pv -> Term.equal pv v | None -> false)

let match_atom env (pat : catom) (ga : Gatom.t) =
  List.for_all2 (fun p v -> match_term env p v) pat.cargs ga.Gatom.args

let eval_cmp c (a : Term.t) (b : Term.t) =
  let k = Term.compare a b in
  match c with
  | Ast.Eq -> k = 0
  | Ast.Ne -> k <> 0
  | Ast.Lt -> k < 0
  | Ast.Le -> k <= 0
  | Ast.Gt -> k > 0
  | Ast.Ge -> k >= 0

(* ------------------------------------------------------------------ *)
(* Compiled rules: bodies split by literal kind.                       *)
(* ------------------------------------------------------------------ *)

type split_body = {
  b_pos : catom array;
  b_cmps : (Ast.cmp * cterm * cterm) array;
  b_foralls : (catom * catom list) array;
  b_negs : catom array;
}

let split_body cx (body : Ast.body_lit list) =
  let pos = ref [] and cmps = ref [] and foralls = ref [] and negs = ref [] in
  List.iter
    (function
      | Ast.Pos a -> pos := compile_atom cx a :: !pos
      | Ast.Neg a -> negs := compile_atom cx a :: !negs
      | Ast.Cmp (c, x, y) -> cmps := (c, compile_term cx x, compile_term cx y) :: !cmps
      | Ast.Forall (a, conds) ->
        foralls := (compile_atom cx a, List.map (compile_atom cx) conds) :: !foralls)
    body;
  {
    b_pos = Array.of_list (List.rev !pos);
    b_cmps = Array.of_list (List.rev !cmps);
    b_foralls = Array.of_list (List.rev !foralls);
    b_negs = Array.of_list (List.rev !negs);
  }

(* Compiled choice element; [ce_bad] carries the rendering of a non-positive
   guard literal, reported (like the interpreter used to) only when the
   element is actually derived. *)
type celem = { ce_elem : catom; ce_guard : catom list; ce_bad : string option }

type chead =
  | C_none
  | C_atom of catom
  | C_choice of { c_lb : cterm option; c_ub : cterm option; c_elems : celem list }

type compiled = {
  c_uid : int;  (** unique per source rule within one base program *)
  c_head : chead;
  c_body : split_body;
  c_text : string;  (** for error messages and provenance *)
  c_line : int;  (** source line of the rule (0 when synthesized) *)
  c_nvars : int;
  c_gpreds : (string * int) list;
      (** predicates the instance's emission consults through guard
          enumeration (choice-element guards and Forall conditions): new
          facts of these predicates can change what an already-emitted
          instance should look like *)
  c_cgpreds : (string * int) list;
      (** choice-element guard predicates only: new facts here require
          re-deriving the rule's heads during an incremental closure *)
}

let compile_head cx = function
  | Ast.Head_none -> C_none
  | Ast.Head_atom a -> C_atom (compile_atom cx a)
  | Ast.Head_choice { lb; ub; elems } ->
    let celems =
      List.map
        (fun { Ast.elem; guard } ->
          let bad =
            List.find_map
              (function Ast.Pos _ -> None | l -> Some (Format.asprintf "%a" Ast.pp_body_lit l))
              guard
          in
          let conds =
            List.filter_map
              (function Ast.Pos a -> Some (compile_atom cx a) | _ -> None)
              guard
          in
          { ce_elem = compile_atom cx elem; ce_guard = conds; ce_bad = bad })
        elems
    in
    C_choice
      {
        c_lb = Option.map (compile_term cx) lb;
        c_ub = Option.map (compile_term cx) ub;
        c_elems = celems;
      }

let forall_pred_list (b : split_body) =
  Array.fold_left
    (fun acc (_, conds) ->
      List.fold_left (fun acc c -> (c.cpred, c.carity) :: acc) acc conds)
    [] b.b_foralls

let choice_guard_pred_list = function
  | C_choice { c_elems; _ } ->
    List.concat_map
      (fun e -> List.map (fun c -> (c.cpred, c.carity)) e.ce_guard)
      c_elems
  | C_none | C_atom _ -> []

(* ------------------------------------------------------------------ *)
(* The grounding state.                                                *)
(* ------------------------------------------------------------------ *)

type state = {
  store : Gatom.Store.t;
  env : Env.t;
  idb : (string * int, unit) Hashtbl.t;  (** predicates with rule-defined heads *)
  budget : Budget.t;
}

let is_edb st (a : catom) = not (Hashtbl.mem st.idb (a.cpred, a.carity))

(* Candidate atom ids for a positive atom pattern under the current env.
   Picks the most selective index among argument positions whose pattern is
   already ground. *)
let candidates st (pat : catom) : Gatom.Store.cands =
  let best = ref None in
  List.iteri
    (fun pos p ->
      match eval st.env p with
      | Some v ->
        let c = Gatom.Store.by_pred_arg st.store pat.cpred pat.carity ~pos ~value:v in
        let n = Gatom.Store.cands_length c in
        (match !best with
        | Some (m, _) when m <= n -> ()
        | _ -> best := Some (n, c))
      | None -> ())
    pat.cargs;
  match !best with
  | Some (_, c) -> c
  | None -> Gatom.Store.by_pred st.store pat.cpred pat.carity

(* Enumerate all substitutions satisfying the positive atoms and comparisons
   of [body] over the possible-atom store.  [delta] optionally restricts one
   positive literal (by index) to atoms with id >= the given bound, for
   semi-naive evaluation.  Calls [k] for each complete substitution with the
   matched positive atom ids (in literal order). *)
let enumerate st (body : split_body) ?delta (k : int array -> unit) =
  let npos = Array.length body.b_pos in
  let matched = Array.make npos (-1) in
  let done_pos = Array.make npos false in
  let cmps_left = ref (Array.to_list body.b_cmps) in
  (* Evaluate all comparisons that have become ground; false means prune. *)
  let rec check_cmps acc = function
    | [] ->
      cmps_left := List.rev acc;
      true
    | ((c, x, y) as cmp) :: rest -> (
      match (eval st.env x, eval st.env y) with
      | Some a, Some b ->
        if eval_cmp c a b then check_cmps acc rest else false
      | _ -> check_cmps (cmp :: acc) rest)
  in
  let rec go remaining =
    if remaining = 0 then begin
      (match !cmps_left with
      | [] -> ()
      | (_, x, y) :: _ ->
        ignore (eval_exn st.env "comparison" x);
        ignore (eval_exn st.env "comparison" y));
      k (Array.copy matched)
    end
    else begin
      (* The delta-restricted literal goes first when present (semi-naive:
         only a handful of atoms pass its id filter, so it is the most
         selective join start); otherwise choose the unprocessed literal
         with the fewest candidates. *)
      let i, cands =
        match delta with
        | Some (j, _) when not done_pos.(j) -> (j, candidates st body.b_pos.(j))
        | _ ->
          let best = ref (-1) and best_c = ref None and best_n = ref max_int in
          for i = 0 to npos - 1 do
            if not done_pos.(i) then begin
              let c = candidates st body.b_pos.(i) in
              let n = Gatom.Store.cands_length c in
              if n < !best_n then begin
                best := i;
                best_c := Some c;
                best_n := n
              end
            end
          done;
          (!best, Option.get !best_c)
      in
      done_pos.(i) <- true;
      let lo = match delta with Some (j, lo) when j = i -> lo | _ -> 0 in
      Gatom.Store.cands_iter
        (fun id ->
          if id >= lo then begin
            let m = Env.mark st.env in
            let saved_cmps = !cmps_left in
            if
              match_atom st.env body.b_pos.(i) (Gatom.Store.atom st.store id)
              && check_cmps [] !cmps_left
            then begin
              matched.(i) <- id;
              go (remaining - 1)
            end;
            cmps_left := saved_cmps;
            Env.undo st.env m
          end)
        cands;
      done_pos.(i) <- false
    end
  in
  let m = Env.mark st.env in
  let saved = !cmps_left in
  if check_cmps [] !cmps_left then go npos;
  cmps_left := saved;
  Env.undo st.env m

(* Enumerate EDB-guard matches: used for Forall conditions and choice-element
   guards.  The guard is a conjunction of atoms over EDB predicates; local
   variables are bound during enumeration.  Calls [k] once per match. *)
let enumerate_guard st (conds : catom list) rule_text (k : unit -> unit) =
  List.iter
    (fun c ->
      if not (is_edb st c) then
        errf "condition %a in %s must range over fact-only predicates" pp_catom c
          rule_text)
    conds;
  let rec go = function
    | [] -> k ()
    | c :: rest ->
      let cands = candidates st c in
      Gatom.Store.cands_iter
        (fun id ->
          if Gatom.Store.is_fact st.store id then begin
            let m = Env.mark st.env in
            if match_atom st.env c (Gatom.Store.atom st.store id) then go rest;
            Env.undo st.env m
          end)
        cands
    in
  go conds

let ground_atom st ctx (a : catom) : Gatom.t =
  Gatom.make a.cpred (List.map (fun t -> eval_exn st.env ctx t) a.cargs)

(* ------------------------------------------------------------------ *)
(* Phase 1: possible-atom closure.                                     *)
(* ------------------------------------------------------------------ *)

(* Derive all head atoms of [rule] for the current substitution into the
   store (optimistic w.r.t. negation and Forall targets). *)
let derive_heads st (rule : compiled) =
  Budget.tick_instance st.budget;
  match rule.c_head with
  | C_none -> ()
  | C_atom a ->
    ignore (Gatom.Store.intern st.store (ground_atom st rule.c_text a))
  | C_choice { c_elems; _ } ->
    List.iter
      (fun { ce_elem; ce_guard; ce_bad } ->
        (match ce_bad with
        | Some l ->
          errf "choice guard %s in %s must be a positive atom" l rule.c_text
        | None -> ());
        enumerate_guard st ce_guard rule.c_text (fun () ->
            ignore (Gatom.Store.intern st.store (ground_atom st rule.c_text ce_elem))))
      c_elems

let possible_closure st (rules : compiled list) =
  let nfacts = Gatom.Store.count st.store in
  (* round 0: full evaluation over the facts *)
  List.iter (fun r -> enumerate st r.c_body (fun _ -> derive_heads st r)) rules;
  let rounds = ref 1 in
  (* semi-naive rounds: some positive literal must match an atom added since
     the previous round *)
  let frontier = ref nfacts in
  while !frontier < Gatom.Store.count st.store do
    incr rounds;
    let lo = !frontier in
    frontier := Gatom.Store.count st.store;
    List.iter
      (fun r ->
        let npos = Array.length r.c_body.b_pos in
        for i = 0 to npos - 1 do
          enumerate st r.c_body ~delta:(i, lo) (fun _ -> derive_heads st r)
        done)
      rules
  done;
  !rounds

(* ------------------------------------------------------------------ *)
(* Phase 2: emitting simplified ground rules.                          *)
(* ------------------------------------------------------------------ *)

exception Drop_instance

(* Per-instance emission record: the (pred, arity) pairs this instance's
   simplification treated as {e impossible} — erased negative literals and
   missing Forall targets.  If atoms of such a predicate later join the
   possible set (an incremental extension), the instance is stale and must
   be re-emitted. *)
type emitrec = { mutable er_absent : (string * int) list }

(* Resolve the full body of a rule instance to (pos, neg) atom-id arrays.
   [matched] are the ids matched for positive literals.  Facts are removed;
   impossible positive atoms (from Forall expansion) or negated facts drop
   the whole instance. *)
let resolve_body ?er st (body : split_body) (matched : int array) : Ground.body =
  let pos = ref [] and neg = ref [] in
  let note_absent (a : catom) =
    match er with
    | Some e -> e.er_absent <- (a.cpred, a.carity) :: e.er_absent
    | None -> ()
  in
  let add_pos id = if not (Gatom.Store.is_fact st.store id) then pos := id :: !pos in
  Array.iter add_pos matched;
  Array.iter
    (fun (target, conds) ->
      enumerate_guard st conds "conditional literal" (fun () ->
          let ga = ground_atom st "conditional literal" target in
          match Gatom.Store.find st.store ga with
          | Some id -> add_pos id
          | None ->
            note_absent target;
            raise Drop_instance))
    body.b_foralls;
  Array.iter
    (fun a ->
      let ga = ground_atom st "negative literal" a in
      match Gatom.Store.find st.store ga with
      | None -> note_absent a (* impossible atom: [not a] trivially true *)
      | Some id -> if Gatom.Store.is_fact st.store id then raise Drop_instance else neg := id :: !neg)
    body.b_negs;
  let dedup l = List.sort_uniq Int.compare l in
  { Ground.pos = Array.of_list (dedup !pos); neg = Array.of_list (dedup !neg) }

let bound_value st rule_text = function
  | None -> None
  | Some t -> (
    match eval_exn st.env ("cardinality bound of " ^ rule_text) t with
    | { Term.node = Term.Int n; _ } -> Some n
    | t -> errf "cardinality bound %a in %s is not an integer" Term.pp t rule_text)

(* Compiled minimize element: weight/priority/tuple plus its guard body. *)
type cmin = {
  cm_uid : int;  (** shares the uid space of {!compiled.c_uid} *)
  cm_weight : cterm;
  cm_priority : cterm;
  cm_tuple : cterm list;
  cm_body : split_body;
  cm_nvars : int;
  cm_gpreds : (string * int) list;  (** Forall condition predicates *)
}

let compile_min_elem uid ({ Ast.weight; priority; tuple; guard } : Ast.min_elem) =
  let cx = new_cx () in
  let cm_body = split_body cx guard in
  {
    cm_uid = uid;
    cm_weight = compile_term cx weight;
    cm_priority = compile_term cx priority;
    cm_tuple = List.map (compile_term cx) tuple;
    cm_body;
    cm_nvars = cx.nvars;
    cm_gpreds = List.sort_uniq compare (forall_pred_list cm_body);
  }

(* ------------------------------------------------------------------ *)
(* Instance bookkeeping for incremental extension.                     *)
(* ------------------------------------------------------------------ *)

(* Where an instance's emitted form lives in the output program, so a
   re-emission can overwrite it in place. [S_none] means the instance
   currently emits nothing (dropped, head-is-fact, or empty choice). *)
type islot = S_rule of int | S_min of int | S_none

type inst = {
  i_src : isrc;
  i_matched : int array;  (** atom ids matched by the positive body *)
  i_uid : int;
  mutable i_slot : islot;
}

and isrc = I_rule of compiled | I_min of cmin

(* Staleness maps of a frozen base program.  An emitted (or dropped)
   instance is indexed under every (pred, arity) whose future growth could
   change its emitted form:
   - [m_absent]: predicates of erased negative literals and of missing
     Forall targets (the instance assumed these atoms impossible);
   - [m_guard]: predicates its guard enumerations range over (choice
     element guards, Forall conditions) — guards see only {e facts}, which
     are all seeded (guards are restricted to EDB predicates), so new
     seeded facts are the only way a guard's expansion can grow.
   Everything else an emitted instance depends on is either monotone or
   re-checked dynamically by {!Translate} (fact marks on body literals). *)
type maps = {
  mutable m_next : int;  (** instance uid counter *)
  m_absent : (string * int, inst list ref) Hashtbl.t;
  m_guard : (string * int, inst list ref) Hashtbl.t;
}

let multi_add tbl k v =
  match Hashtbl.find_opt tbl k with
  | Some l -> l := v :: !l
  | None -> Hashtbl.add tbl k (ref [ v ])

(* Dedup key for delta emission: (rule uid, matched ids).  An instance
   whose positive body matches >= 2 new atoms is found once per delta
   position. *)
module Ikey = Hashtbl.Make (struct
  type t = int * int array

  let equal (a, xs) (b, ys) = Int.equal a b && xs = ys
  let hash (a, xs) = Array.fold_left (fun h x -> (h * 31) + x) a xs
end)

(* Emit one rule instance.  The environment must hold the instance's
   substitution (the enumerate callback provides it; re-emission restores
   it with [rebind]).  With [maps], the instance is recorded in the
   staleness maps; with [replace], it overwrites its previous slot instead
   of appending ([Ground.noop_rule] fills slots whose instance no longer
   emits anything, keeping rule indices stable). *)
let emit_rule_instance st (out : Ground.t) ?maps ?replace (r : compiled)
    (matched : int array) : islot =
  Budget.tick_instance st.budget;
  (* [matched] is a fresh array per instance: retain it as the
     pre-simplification positive body for provenance *)
  let origin = { Ground.o_line = r.c_line; o_text = r.c_text; o_pos = matched } in
  let er = match maps with Some _ -> Some { er_absent = [] } | None -> None in
  let record slot =
    (match maps with
    | Some m ->
      let absent =
        match er with Some e -> List.sort_uniq compare e.er_absent | None -> []
      in
      if absent <> [] || r.c_gpreds <> [] then begin
        let i = { i_src = I_rule r; i_matched = matched; i_uid = m.m_next; i_slot = slot } in
        m.m_next <- m.m_next + 1;
        List.iter (fun k -> multi_add m.m_absent k i) absent;
        List.iter (fun k -> multi_add m.m_guard k i) r.c_gpreds
      end
    | None -> ());
    slot
  in
  let put rule =
    match replace with
    | Some (S_rule i) ->
      Vec.set out.Ground.rules i rule;
      Vec.set out.Ground.origins i origin;
      S_rule i
    | Some (S_min _) -> assert false
    | Some S_none | None ->
      Ground.push_rule out rule origin;
      S_rule (Ground.num_rules out - 1)
  in
  let void () =
    match replace with
    | Some (S_rule i) ->
      Vec.set out.Ground.rules i Ground.noop_rule;
      S_rule i
    | Some (S_min _) -> assert false
    | Some S_none | None -> S_none
  in
  let conflict () =
    out.Ground.inconsistent <- true;
    Vec.push out.Ground.conflicts0 origin;
    void ()
  in
  match resolve_body ?er st r.c_body matched with
  | exception Drop_instance -> record (void ())
  | body -> (
    match r.c_head with
    | C_none ->
      if Ground.body_size body = 0 then record (conflict ())
      else record (put (Ground.Rconstraint body))
    | C_atom a ->
      let ga = ground_atom st r.c_text a in
      let id = Gatom.Store.intern st.store ga in
      if Gatom.Store.is_fact st.store id then record (void ())
      else if Ground.body_size body = 0 then begin
        (* An empty body normally promotes the head to a fact — but a fact
           mark cannot be retracted by a later re-emission, so when the
           emptiness rests on retractable grounds (erased negation, missing
           Forall target, guard expansion) emit an unconditional rule
           instead. *)
        let retractable =
          match er with
          | Some e -> e.er_absent <> [] || r.c_gpreds <> []
          | None -> false
        in
        if retractable then record (put (Ground.Rnormal (id, body)))
        else begin
          Gatom.Store.mark_fact st.store id;
          record (void ())
        end
      end
      else record (put (Ground.Rnormal (id, body)))
    | C_choice { c_lb; c_ub; c_elems } ->
      let lb = bound_value st r.c_text c_lb in
      let ub = bound_value st r.c_text c_ub in
      let heads = ref [] in
      List.iter
        (fun { ce_elem; ce_guard; ce_bad = _ } ->
          enumerate_guard st ce_guard r.c_text (fun () ->
              heads := Gatom.Store.intern st.store (ground_atom st r.c_text ce_elem) :: !heads))
        c_elems;
      let heads = Array.of_list (List.sort_uniq Int.compare !heads) in
      if Array.length heads = 0 then begin
        match lb with
        | Some n when n > 0 ->
          if Ground.body_size body = 0 then record (conflict ())
          else record (put (Ground.Rconstraint body))
        | _ -> record (void ())
      end
      else record (put (Ground.Rchoice { lb; ub; heads; cbody = body })))

let emit_min_instance st (out : Ground.t) ?maps ?replace (mn : cmin)
    (matched : int array) : islot =
  Budget.tick_instance st.budget;
  let er = match maps with Some _ -> Some { er_absent = [] } | None -> None in
  let record slot =
    (match maps with
    | Some m ->
      let absent =
        match er with Some e -> List.sort_uniq compare e.er_absent | None -> []
      in
      if absent <> [] || mn.cm_gpreds <> [] then begin
        let i = { i_src = I_min mn; i_matched = matched; i_uid = m.m_next; i_slot = slot } in
        m.m_next <- m.m_next + 1;
        List.iter (fun k -> multi_add m.m_absent k i) absent;
        List.iter (fun k -> multi_add m.m_guard k i) mn.cm_gpreds
      end
    | None -> ());
    slot
  in
  let put entry =
    match replace with
    | Some (S_min i) ->
      Vec.set out.Ground.minimize i entry;
      S_min i
    | Some (S_rule _) -> assert false
    | Some S_none | None ->
      Vec.push out.Ground.minimize entry;
      S_min (Vec.length out.Ground.minimize - 1)
  in
  let void () =
    match replace with
    | Some (S_min i) ->
      (* keep the old priority: a zero-weight entry never changes the cost
         at a priority level that exists, whereas dropping the level
         entirely could change the cost vector's shape *)
      let old = Vec.get out.Ground.minimize i in
      Vec.set out.Ground.minimize i
        { old with Ground.mweight = 0; mtuple = []; mbody = Ground.empty_body };
      S_min i
    | Some (S_rule _) -> assert false
    | Some S_none | None -> S_none
  in
  match resolve_body ?er st mn.cm_body matched with
  | exception Drop_instance -> record (void ())
  | mbody ->
    let w =
      match eval_exn st.env "minimize weight" mn.cm_weight with
      | { Term.node = Term.Int n; _ } -> n
      | t -> errf "minimize weight %a is not an integer" Term.pp t
    in
    let p =
      match eval_exn st.env "minimize priority" mn.cm_priority with
      | { Term.node = Term.Int n; _ } -> n
      | t -> errf "minimize priority %a is not an integer" Term.pp t
    in
    let tup = List.map (fun t -> eval_exn st.env "minimize tuple" t) mn.cm_tuple in
    record (put { Ground.mweight = w; mpriority = p; mtuple = tup; mbody })

(* Full (non-incremental) emission pass over the closure. *)
let emit_all st (out : Ground.t) ?maps (rules : compiled list)
    (mins : cmin list list) =
  List.iter
    (fun r ->
      enumerate st r.c_body (fun matched ->
          ignore (emit_rule_instance st out ?maps r matched)))
    rules;
  List.iter
    (fun group ->
      List.iter
        (fun m ->
          Env.ensure st.env m.cm_nvars;
          enumerate st m.cm_body (fun matched ->
              ignore (emit_min_instance st out ?maps m matched)))
        group)
    mins

(* ------------------------------------------------------------------ *)
(* Entry point.                                                        *)
(* ------------------------------------------------------------------ *)

(* Safety runs on the source rule (variable names are needed for messages)
   before compilation to slots. *)
let check_safety text (head : Ast.head) (body : Ast.body_lit list) =
  let bound =
    List.concat_map
      (function Ast.Pos a -> Ast.atom_vars a | _ -> [])
      body
  in
  let bound = List.sort_uniq String.compare bound in
  let is_bound v = List.mem v bound in
  let check_vars ctx vars =
    List.iter
      (fun v ->
        if not (is_bound v) then
          errf "unsafe rule %s: variable %s in %s not bound by a positive body literal"
            text v ctx)
      vars
  in
  List.iter
    (function
      | Ast.Neg a -> check_vars "negative literal" (Ast.atom_vars a)
      | _ -> ())
    body;
  (* head variables must be bound, except choice-element locals bound by guards *)
  match head with
  | Ast.Head_none -> ()
  | Ast.Head_atom a -> check_vars "rule head" (Ast.atom_vars a)
  | Ast.Head_choice { elems; _ } ->
    List.iter
      (fun { Ast.elem; guard } ->
        let guard_vars =
          List.concat_map
            (function Ast.Pos a -> Ast.atom_vars a | _ -> [])
            guard
        in
        List.iter
          (fun v ->
            if not (is_bound v || List.mem v guard_vars) then
              errf
                "unsafe rule %s: choice variable %s bound neither by the body nor by \
                 its guard"
                text v)
          (Ast.atom_vars elem))
      elems

(* Evaluate a ground (variable-free) fact argument. *)
let eval_ground_arg t =
  let cx = new_cx () in
  let ct = compile_term cx t in
  eval (Env.create ()) ct

(* Seed one already-ground atom as a fact.  With [taint], records the
   (pred, arity) of atoms that are new or newly fact-marked — the guard
   taint set of an incremental extension.  This is the streaming fact
   fast path: producers (reuse-fact generation at E4S scale) hand atoms
   straight to the interned store, with no Ast statement or per-spec
   atom list in between, and re-seeding an existing fact is a no-op. *)
let seed_ground_atom store ?taint (ga : Gatom.t) =
  let changed =
    match Gatom.Store.find store ga with
    | Some id ->
      if Gatom.Store.is_fact store id then false
      else begin
        Gatom.Store.mark_fact store id;
        true
      end
    | None ->
      let id = Gatom.Store.intern store ga in
      Gatom.Store.mark_fact store id;
      true
  in
  match taint with
  | Some t when changed ->
    Hashtbl.replace t (ga.Gatom.pred, List.length ga.Gatom.args) ()
  | _ -> ()

(* Seed a ground fact statement into the store, expanding interval
   arguments into their cartesian product. *)
let seed_fact store ?taint (a : Ast.atom) =
  let rec arg_values = function
    | Ast.Cst c -> [ c ]
    | Ast.Interval (lo, hi) -> (
      let ev t =
        match t with
        | Ast.Cst { Term.node = Term.Int i; _ } -> i
        | Ast.Cst c -> errf "interval bound %a is not an integer" Term.pp c
        | t -> errf "interval bound %a is not ground" Ast.pp_term t
      in
      let lo = ev lo and hi = ev hi in
      if lo > hi then []
      else List.init (hi - lo + 1) (fun k -> Term.int (lo + k)))
    | (Ast.Binop _ | Ast.Fn _) as t -> (
      match eval_ground_arg t with
      | Some c -> [ c ]
      | None -> errf "non-ground fact argument %a" Ast.pp_term t)
    | Ast.Var _ as t -> errf "non-ground fact argument %a" Ast.pp_term t
  and expand = function
    | [] -> [ [] ]
    | t :: rest ->
      let tails = expand rest in
      List.concat_map (fun v -> List.map (fun tl -> v :: tl) tails) (arg_values t)
  in
  List.iter
    (fun args -> seed_ground_atom store ?taint (Gatom.make a.Ast.pred args))
    (expand a.Ast.args)

let ground_internal ~budget ~maps ?facts_stream (prog : Ast.program) =
  Budget.enter budget Budget.Ground;
  let store = Gatom.Store.create () in
  let st = { store; env = Env.create (); idb = Hashtbl.create 64; budget } in
  let rules = ref [] and minimizes = ref [] in
  let uid = ref 0 in
  let next_uid () =
    let u = !uid in
    incr uid;
    u
  in
  (* Seed facts; collect rules and classify IDB predicates. *)
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Show _ -> ()
      | Ast.Minimize elems ->
        minimizes := List.map (fun e -> compile_min_elem (next_uid ()) e) elems :: !minimizes
      | Ast.Rule ({ head; body; _ } as r) ->
        if Ast.statement_is_fact stmt then begin
          match head with
          | Ast.Head_atom a -> seed_fact store a
          | _ -> assert false
        end
        else begin
          List.iter
            (fun (a : Ast.atom) ->
              Hashtbl.replace st.idb (a.Ast.pred, List.length a.Ast.args) ())
            (Ast.head_atoms head);
          let text = Format.asprintf "%a" Ast.pp_statement (Ast.Rule r) in
          check_safety text head body;
          let cx = new_cx () in
          let c_head = compile_head cx head in
          let c_body = split_body cx body in
          let cgpreds = List.sort_uniq compare (choice_guard_pred_list c_head) in
          let c =
            {
              c_uid = next_uid ();
              c_head;
              c_body;
              c_text = text;
              c_line = r.Ast.line;
              c_nvars = cx.nvars;
              c_gpreds =
                List.sort_uniq compare (choice_guard_pred_list c_head @ forall_pred_list c_body);
              c_cgpreds = cgpreds;
            }
          in
          rules := c :: !rules
        end)
    prog;
  (* Streamed facts are seeded after the statement facts, which is where
     a materialized producer appends them — atom interning order (and so
     every downstream id) is identical on both paths. *)
  (match facts_stream with
  | Some stream -> stream (fun ga -> seed_ground_atom store ga)
  | None -> ());
  let rules = List.rev !rules in
  let mins = List.rev !minimizes in
  let max_nvars = List.fold_left (fun m r -> max m r.c_nvars) 0 rules in
  Env.ensure st.env max_nvars;
  let rounds = possible_closure st rules in
  let out = Ground.create store in
  emit_all st out ?maps rules mins;
  let stats =
    {
      possible_atoms = Gatom.Store.count store;
      ground_rules = Ground.num_rules out;
      fixpoint_rounds = rounds;
    }
  in
  (st, out, rules, mins, max_nvars, stats)

let ground ?(budget = Budget.unlimited) ?facts_stream (prog : Ast.program) :
    Ground.t * stats =
  let _, out, _, _, _, stats =
    ground_internal ~budget ~maps:None ?facts_stream prog
  in
  (out, stats)

(* ------------------------------------------------------------------ *)
(* Incremental bases: ground once, extend per request, rebase on       *)
(* install deltas.                                                     *)
(* ------------------------------------------------------------------ *)

type base = {
  b_store : Gatom.Store.t;  (** frozen *)
  b_ground : Ground.t;
  b_rules : compiled list;
  b_mins : cmin list list;
  b_idb : (string * int, unit) Hashtbl.t;
  b_nvars : int;
  b_maps : maps;
  b_stats : stats;
}

let base_ground b = b.b_ground
let base_stats b = b.b_stats

let ground_base ?(budget = Budget.unlimited) ?facts_stream (prog : Ast.program) :
    base * stats =
  let maps =
    { m_next = 0; m_absent = Hashtbl.create 256; m_guard = Hashtbl.create 64 }
  in
  let st, out, rules, mins, nvars, stats =
    ground_internal ~budget ~maps:(Some maps) ?facts_stream prog
  in
  Gatom.Store.freeze st.store;
  ( {
      b_store = st.store;
      b_ground = out;
      b_rules = rules;
      b_mins = mins;
      b_idb = st.idb;
      b_nvars = nvars;
      b_maps = maps;
      b_stats = stats;
    },
    stats )

let clone_maps (m : maps) =
  let copies = Hashtbl.create 256 in
  let copy_inst i =
    match Hashtbl.find_opt copies i.i_uid with
    | Some c -> c
    | None ->
      let c = { i with i_slot = i.i_slot } in
      Hashtbl.add copies i.i_uid c;
      c
  in
  let copy_tbl t =
    let t' = Hashtbl.create (max 16 (Hashtbl.length t)) in
    Hashtbl.iter (fun k l -> Hashtbl.add t' k (ref (List.map copy_inst !l))) t;
    t'
  in
  { m_next = m.m_next; m_absent = copy_tbl m.m_absent; m_guard = copy_tbl m.m_guard }

(* Restore an instance's substitution by re-matching its positive patterns
   against the atoms it matched originally, then run [k]. *)
let rebind st (b : split_body) nvars (matched : int array) (k : unit -> unit) =
  Env.ensure st.env nvars;
  let m = Env.mark st.env in
  let ok = ref true in
  Array.iteri
    (fun i pat ->
      if !ok && not (match_atom st.env pat (Gatom.Store.atom st.store matched.(i)))
      then ok := false)
    b.b_pos;
  if !ok then k ();
  Env.undo st.env m

(* Seed the delta's fact statements; returns the guard taint set. *)
let seed_delta st (added : Ast.statement list) =
  let tainted = Hashtbl.create 16 in
  List.iter
    (fun stmt ->
      match stmt with
      | Ast.Show _ -> ()
      | Ast.Rule { head = Ast.Head_atom a; _ } when Ast.statement_is_fact stmt ->
        seed_fact st.store ~taint:tainted a
      | stmt ->
        errf "substrate delta must contain only facts, got %a" Ast.pp_statement stmt)
    added;
  tainted

(* The incremental core: seed [added] facts over a base, continue the
   possible-atom closure, re-emit the base instances the growth made
   stale, and emit the brand-new instances semi-naively.  [src_maps] is
   consulted for staleness; [maps]/[update_slots] control whether the
   result's bookkeeping is maintained (rebase) or discarded (per-request
   extension). *)
let extend_onto st (out : Ground.t) (base : base) ~src_maps ~maps ~update_slots
    ?facts_stream (added : Ast.statement list) =
  let pre_count = Gatom.Store.count st.store in
  let guard_taint = seed_delta st added in
  (* A streamed fact that already exists is a no-op (no taint); only the
     genuinely new atoms taint guards, so re-streaming the full reuse set
     over a rebased base dedups for free. *)
  (match facts_stream with
  | Some stream ->
    stream (fun ga -> seed_ground_atom st.store ~taint:guard_taint ga)
  | None -> ());
  (* Closure continuation.  Rules whose choice-element guards range over a
     tainted predicate re-derive their heads in full: the guard (not the
     body) changed, which the semi-naive body delta cannot see. *)
  List.iter
    (fun r ->
      if List.exists (fun k -> Hashtbl.mem guard_taint k) r.c_cgpreds then
        enumerate st r.c_body (fun _ -> derive_heads st r))
    base.b_rules;
  let rounds = ref 0 in
  let frontier = ref pre_count in
  while !frontier < Gatom.Store.count st.store do
    incr rounds;
    let lo = !frontier in
    frontier := Gatom.Store.count st.store;
    List.iter
      (fun r ->
        let npos = Array.length r.c_body.b_pos in
        for i = 0 to npos - 1 do
          enumerate st r.c_body ~delta:(i, lo) (fun _ -> derive_heads st r)
        done)
      base.b_rules
  done;
  (* Predicates that gained possible atoms: any base instance that treated
     them as impossible (erased negs, missing Forall targets) is stale. *)
  let absent_taint = Hashtbl.create 32 in
  for id = pre_count to Gatom.Store.count st.store - 1 do
    let a = Gatom.Store.atom st.store id in
    Hashtbl.replace absent_taint (a.Gatom.pred, List.length a.Gatom.args) ()
  done;
  (* Snapshot the stale instances first: re-emission may append to the very
     map lists being traversed when [maps] is set. *)
  let to_reemit = Hashtbl.create 64 in
  let gather tbl key =
    match Hashtbl.find_opt tbl key with
    | Some l ->
      List.iter
        (fun i ->
          if not (Hashtbl.mem to_reemit i.i_uid) then Hashtbl.add to_reemit i.i_uid i)
        !l
    | None -> ()
  in
  Hashtbl.iter (fun k () -> gather src_maps.m_guard k) guard_taint;
  Hashtbl.iter (fun k () -> gather src_maps.m_absent k) absent_taint;
  Hashtbl.iter
    (fun _ i ->
      match i.i_src with
      | I_rule r ->
        rebind st r.c_body r.c_nvars i.i_matched (fun () ->
            let slot = emit_rule_instance st out ?maps ~replace:i.i_slot r i.i_matched in
            if update_slots then i.i_slot <- slot)
      | I_min mn ->
        rebind st mn.cm_body mn.cm_nvars i.i_matched (fun () ->
            let slot = emit_min_instance st out ?maps ~replace:i.i_slot mn i.i_matched in
            if update_slots then i.i_slot <- slot))
    to_reemit;
  (* New instances: at least one positive literal matches a new atom.
     Base instances are disjoint (all their matched ids are old), so only
     within-delta duplicates need the dedup table. *)
  let seen = Ikey.create 256 in
  List.iter
    (fun r ->
      let npos = Array.length r.c_body.b_pos in
      for i = 0 to npos - 1 do
        enumerate st r.c_body ~delta:(i, pre_count) (fun matched ->
            let key = (r.c_uid, matched) in
            if not (Ikey.mem seen key) then begin
              Ikey.add seen key ();
              ignore (emit_rule_instance st out ?maps r matched)
            end)
      done)
    base.b_rules;
  List.iter
    (fun group ->
      List.iter
        (fun m ->
          Env.ensure st.env m.cm_nvars;
          let npos = Array.length m.cm_body.b_pos in
          for i = 0 to npos - 1 do
            enumerate st m.cm_body ~delta:(i, pre_count) (fun matched ->
                let key = (m.cm_uid, matched) in
                if not (Ikey.mem seen key) then begin
                  Ikey.add seen key ();
                  ignore (emit_min_instance st out ?maps m matched)
                end)
          done)
        group)
    base.b_mins;
  !rounds

let check_extendable (base : base) =
  (* A base with an empty-body conflict is already UNSAT; extension could
     in principle retract such a conflict (an erased negation becoming
     possible again), which the in-place re-emission cannot express.
     Callers build bases from relaxed programs, so this does not arise. *)
  if base.b_ground.Ground.inconsistent then
    errf "cannot extend an inconsistent base program"

let extension_stats st out rounds =
  {
    possible_atoms = Gatom.Store.count st.store;
    ground_rules = Ground.num_rules out;
    fixpoint_rounds = rounds;
  }

let extend ?(budget = Budget.unlimited) (base : base) (added : Ast.statement list) :
    Ground.t * stats =
  check_extendable base;
  Budget.enter budget Budget.Ground;
  let store = Gatom.Store.extend base.b_store in
  let st = { store; env = Env.create (); idb = base.b_idb; budget } in
  Env.ensure st.env base.b_nvars;
  let out = Ground.fork base.b_ground store in
  let rounds =
    extend_onto st out base ~src_maps:base.b_maps ~maps:None ~update_slots:false added
  in
  (out, extension_stats st out rounds)

let rebase ?(budget = Budget.unlimited) ?facts_stream (base : base)
    (added : Ast.statement list) : base * stats =
  check_extendable base;
  Budget.enter budget Budget.Ground;
  let store = Gatom.Store.clone base.b_store in
  let st = { store; env = Env.create (); idb = base.b_idb; budget } in
  Env.ensure st.env base.b_nvars;
  let out = Ground.fork base.b_ground store in
  let maps = clone_maps base.b_maps in
  let rounds =
    extend_onto st out base ~src_maps:maps ~maps:(Some maps) ~update_slots:true
      ?facts_stream added
  in
  Gatom.Store.freeze store;
  let stats = extension_stats st out rounds in
  ({ base with b_store = store; b_ground = out; b_maps = maps; b_stats = stats }, stats)
