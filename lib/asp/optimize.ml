type level = { priority : int; entries : (int * Sat.lit) list; offset : int }

type group_key = { gprio : int; gweight : int; gtuple : Term.t list }

(* Group keys hash and compare through interned term ids: no structural
   recursion into (possibly nested) tuple terms. *)
module G = Hashtbl.Make (struct
  type t = group_key

  let equal a b =
    a.gprio = b.gprio && a.gweight = b.gweight
    && List.equal Term.equal a.gtuple b.gtuple

  let hash k =
    List.fold_left
      (fun acc t -> (acc * 31) + Term.id t)
      ((k.gprio * 31) + k.gweight)
      k.gtuple
end)

let levels (t : Translate.t) =
  let sat = t.Translate.sat in
  let groups : Ground.body list ref G.t = G.create 64 in
  Vec.iter
    (fun (m : Ground.min_entry) ->
      let key = { gprio = m.mpriority; gweight = m.mweight; gtuple = m.mtuple } in
      match G.find_opt groups key with
      | Some r -> r := m.mbody :: !r
      | None -> G.add groups key (ref [ m.mbody ]))
    t.Translate.ground.Ground.minimize;
  (* indicator literal per group: true iff one of the bodies holds *)
  let by_priority : (int, (int * Sat.lit) list ref * int ref) Hashtbl.t =
    Hashtbl.create 16
  in
  let level_slot prio =
    match Hashtbl.find_opt by_priority prio with
    | Some slot -> slot
    | None ->
      let slot = (ref [], ref 0) in
      Hashtbl.add by_priority prio slot;
      slot
  in
  G.iter
    (fun key bodies ->
      let entries, offset = level_slot key.gprio in
      let inds = List.map (Translate.body_indicator t) !bodies in
      if List.exists (fun i -> i = None) inds then
        (* some condition is unconditionally true: constant contribution *)
        offset := !offset + key.gweight
      else begin
        let inds = List.filter_map Fun.id inds in
        let ind =
          match inds with
          | [ l ] -> l
          | _ ->
            let y = Sat.Lit.pos (Sat.new_var sat) in
            List.iter (fun b -> Sat.add_clause sat [ Sat.Lit.negate b; y ]) inds;
            Sat.add_clause sat (Sat.Lit.negate y :: inds);
            y
        in
        if key.gweight > 0 then entries := (key.gweight, ind) :: !entries
        else if key.gweight < 0 then begin
          (* w*x = w + |w|*(1-x): minimize |w| * (not x), constant w *)
          offset := !offset + key.gweight;
          entries := (-key.gweight, Sat.Lit.negate ind) :: !entries
        end
      end)
    groups;
  Hashtbl.fold
    (fun priority (entries, offset) acc ->
      { priority; entries = !entries; offset = !offset } :: acc)
    by_priority []
  |> List.sort (fun a b -> Int.compare b.priority a.priority)

let eval_raw sat level =
  List.fold_left
    (fun acc (w, l) -> if Sat.value sat l then acc + w else acc)
    0 level.entries

let eval_level sat level = level.offset + eval_raw sat level

type quality = [ `Optimal | `Degraded of (int * int) list ]

type outcome = {
  costs : (int * int) list;
  models_enumerated : int;
  quality : quality;
}

(* Each level's descent returns [(value, lower, complete)]: the stored
   model's value on the level, the lower bound proved so far, and whether
   the optimum was reached.  [complete = false] means the budget expired
   mid-level; the stored model is still a valid stable model satisfying
   every bound fixed for earlier levels, so its cost vector is
   lexicographically >= the true optimum (the anytime invariant). *)

(* --- model-guided branch and bound (clasp's "bb") -------------------- *)

(* Tighten sum <= best-1 under a fresh selector until unsatisfiable; the
   stored model always satisfies all bounds fixed so far. *)
let bb_level sat ~(solve : ?assumptions:Sat.lit list -> unit -> Sat.result) ~budget lvl =
  let w_total = List.fold_left (fun acc (w, _) -> acc + w) 0 lvl.entries in
  let best = ref (eval_raw sat lvl) in
  let improving = ref true in
  let complete = ref true in
  while !improving && !best > 0 do
    match Budget.tick_opt_step budget with
    | exception Budget.Exhausted _ ->
      improving := false;
      complete := false
    | () -> (
      let sel = Sat.Lit.pos (Sat.new_var sat) in
      Sat.add_pb_le sat ((w_total - !best + 1, sel) :: lvl.entries) w_total;
      match solve ~assumptions:[ sel ] () with
      | Sat.Sat ->
        Sat.add_clause sat [ Sat.Lit.negate sel ];
        let v = eval_raw sat lvl in
        assert (v < !best);
        best := v
      | Sat.Unsat ->
        Sat.add_clause sat [ Sat.Lit.negate sel ];
        improving := false
      | exception Budget.Exhausted _ ->
        (* neutralize the tightening constraint before bailing out: the
           solver is back at level 0, so the selector can be fixed false *)
        Sat.add_clause sat [ Sat.Lit.negate sel ];
        improving := false;
        complete := false)
  done;
  (* bb proves optimality only through its final Unsat: an interrupted
     descent has established nothing below the incumbent *)
  (!best, 0, !complete)

(* --- unsatisfiable-core-guided (clasp's "usc,one", OLL-style) -------- *)

(* Assume every objective indicator false; each core raises the lower bound
   by its minimum weight and is relaxed with one cardinality ladder (soft
   literals "at most j of this core violated"). *)
let usc_level sat ~(solve : ?assumptions:Sat.lit list -> unit -> Sat.result) ~budget lvl =
  let weights : (Sat.lit, int) Hashtbl.t = Hashtbl.create 16 in
  let add_soft l w =
    Hashtbl.replace weights l (w + Option.value ~default:0 (Hashtbl.find_opt weights l))
  in
  List.iter (fun (w, y) -> add_soft (Sat.Lit.negate y) w) lvl.entries;
  let lower = ref 0 in
  let complete = ref true in
  let continue_ = ref true in
  while !continue_ do
    match Budget.tick_opt_step budget with
    | exception Budget.Exhausted _ ->
      continue_ := false;
      complete := false
    | () ->
    let assumptions =
      Hashtbl.fold (fun l w acc -> if w > 0 then l :: acc else acc) weights []
    in
    if assumptions = [] then continue_ := false
    else
      match solve ~assumptions () with
      | exception Budget.Exhausted _ ->
        (* relaxation ladders added so far are sound (implied) constraints;
           nothing to retract *)
        continue_ := false;
        complete := false
      | Sat.Sat -> continue_ := false
      | Sat.Unsat -> (
        (* keep only genuine soft assumptions (defensive) *)
        match List.filter (Hashtbl.mem weights) (Sat.last_core sat) with
        | [] ->
          (* hard conflict: cannot happen after an initial model exists *)
          continue_ := false
        | core ->
          let wmin =
            List.fold_left
              (fun m l -> min m (Option.value ~default:max_int (Hashtbl.find_opt weights l)))
              max_int core
          in
          lower := !lower + wmin;
          List.iter
            (fun l ->
              match Hashtbl.find_opt weights l with
              | Some w -> Hashtbl.replace weights l (w - wmin)
              | None -> ())
            core;
          let n = List.length core in
          if n > 1 then begin
            (* cardinality ladder: soft "at most j violated" for j=1..n-1 *)
            let violations = List.map (fun l -> (1, Sat.Lit.negate l)) core in
            for j = 1 to n - 1 do
              let r = Sat.Lit.pos (Sat.new_var sat) in
              (* not r -> (violations <= j):  sum + (n-j)*(not r) <= n *)
              Sat.add_pb_le sat ((n - j, Sat.Lit.negate r) :: violations) n;
              add_soft (Sat.Lit.negate r) wmin
            done
          end)
  done;
  (* the stored model realizes at least the proved lower bound (the bound
     is a property of the constraints, interruption does not weaken it) *)
  let v = eval_raw sat lvl in
  assert (v >= !lower);
  (v, !lower, !complete)

let run ?(strategy = `Bb) ?(budget = Budget.unlimited) (t : Translate.t) ~on_model =
  let sat = t.Translate.sat in
  let models = ref 0 in
  let solve ?assumptions () =
    let r = Sat.solve ?assumptions ~on_model ~budget sat in
    if r = Sat.Sat then incr models;
    r
  in
  Budget.enter budget Budget.Search;
  match solve () with
  | Sat.Unsat -> None
  | Sat.Sat ->
    let lvls = levels t in
    (* [levels] added fresh indicator variables that are unassigned in the
       stored model: re-solve once so every eval below sees them.  From here
       on the stored model always satisfies all permanent bounds. *)
    (match solve () with
    | Sat.Unsat -> assert false (* indicators are unconstrained so far *)
    | Sat.Sat -> ());
    Budget.enter budget Budget.Optimize;
    let interrupted = ref false in
    (* proved lower bounds (priority, bound) for the interrupted level and
       every level after it; earlier levels are exact *)
    let bounds = ref [] in
    let costs =
      List.map
        (fun lvl ->
          if !interrupted then begin
            (* budget already gone: report the incumbent's value on this
               level; nothing beyond the constant offset is proved *)
            bounds := (lvl.priority, lvl.offset) :: !bounds;
            (lvl.priority, eval_level sat lvl)
          end
          else begin
            let w_total = List.fold_left (fun acc (w, _) -> acc + w) 0 lvl.entries in
            let best, lower, complete =
              (* the stored model already realizes 0: no search needed *)
              if eval_raw sat lvl = 0 then (0, 0, true)
              else
                match strategy with
                | `Bb -> bb_level sat ~solve ~budget lvl
                | `Usc -> usc_level sat ~solve ~budget lvl
            in
            if complete then begin
              (* fix the optimum for the remaining levels; the stored model
                 already satisfies this bound *)
              if lvl.entries <> [] && best < w_total then
                Sat.add_pb_le sat lvl.entries best
            end
            else begin
              interrupted := true;
              bounds := (lvl.priority, lvl.offset + lower) :: !bounds
            end;
            (lvl.priority, lvl.offset + best)
          end)
        lvls
    in
    let quality = if !interrupted then `Degraded (List.rev !bounds) else `Optimal in
    Some { costs; models_enumerated = !models; quality }
