(** Independent verification of claimed answers (the trust layer).

    Re-checks a model produced by the CDCL pipeline against the ground
    program using only the naive reference semantics ({!Naive}): rule
    satisfaction, Clark-completion support, unfounded-freeness, and
    weak-constraint cost recomputation.  One O(ground-program) pass (the
    foundedness fixpoint is worst-case quadratic but linear in practice), so
    it is cheap enough to run on every returned model — {!Solve} and
    {!Portfolio} do exactly that before a winning model is allowed to cancel
    the other racers. *)

type violation =
  | Inconsistent_program
      (** the ground program was flagged inconsistent: nothing is a model *)
  | Rule_violated of int  (** index into [ground.rules] *)
  | Unsupported of int
      (** ground atom id: true but no rule with a satisfied body derives it *)
  | Unfounded of int
      (** ground atom id: true but only circularly justified — a supported
          model that is not stable *)
  | Cost_mismatch of { claimed : (int * int) list; actual : (int * int) list }

val check :
  ?budget:Budget.t ->
  ?costs:(int * int) list ->
  Ground.t ->
  is_true:(int -> bool) ->
  (unit, violation list) result
(** Verify the assignment [is_true] (over ground atom ids; facts must be
    true).  [costs] is the cost vector the solver claims for this model;
    when given, it is recomputed and compared.  At most 20 violations are
    reported.  The budget is ticked per rule/atom ({!Budget.Verify_step}) so
    countdown faults and cancellation reach the checker; verification is
    normally run with its own (unlimited) budget — a budget exhausted during
    the solve must not veto checking the degraded model it produced.
    @raise Budget.Exhausted only via an explicitly passed budget. *)

val check_translation :
  ?budget:Budget.t ->
  ?costs:(int * int) list ->
  Translate.t ->
  (unit, violation list) result
(** {!check} against the translation's last stored SAT model. *)

val describe : Ground.t -> violation -> string

val describe_all : Ground.t -> violation list -> string list
