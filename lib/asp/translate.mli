(** Translation of a ground program into a {!Sat} instance via Clark
    completion.

    Each (possibly true, non-fact) ground atom gets a solver variable.  Rule
    bodies get shared auxiliary variables with full equivalence clauses;
    normal rules force their head; choice rules merely {e support} their
    heads, with cardinality bounds expressed as native pseudo-Boolean
    constraints conditioned on the body.  Completion clauses close each atom
    under its set of supports.

    The translation also records, per atom, its supporting rules (body
    auxiliary plus positive body atoms), which is what the unfounded-set check
    in {!Stable} consumes, and whether the positive dependency graph is
    cyclic (tight programs skip the stability check entirely). *)

type support = {
  s_lit : Sat.lit option;  (** body indicator; [None] when the body is empty *)
  s_pos : int array;  (** positive body atom ids *)
  s_neg : int array;
  s_choice : bool;  (** support comes from a choice rule *)
}

module Body_tbl : Hashtbl.S with type key = Ground.body
(** Bodies hashed by their atom-id tuples (used to share body auxiliaries). *)

type t = {
  sat : Sat.t;
  ground : Ground.t;
  var_of_atom : int array;  (** ground atom id -> solver var, or -1 *)
  supports : support list array;  (** ground atom id -> supporting rules *)
  tight : bool;  (** no cycle in the positive dependency graph *)
  mutable false_lit : Sat.lit option;  (** lazily created constant-false literal *)
  body_cache : Sat.lit option Body_tbl.t;  (** shared body auxiliaries *)
}

val translate : ?params:Sat.params -> Ground.t -> t
(** Build the instance.  If the ground program was flagged inconsistent the
    returned solver is already unsatisfiable. *)

val translate_with_selectors :
  ?params:Sat.params -> Ground.t -> t * (Sat.lit * int) list
(** Like {!translate}, but every integrity constraint is guarded by a fresh
    {e selector} literal ([sel -> not body]) instead of being asserted
    unconditionally.  Returns the selectors paired with the index of the
    guarded rule in [ground.rules].  Solving with all selectors assumed is
    equisatisfiable with {!translate}; on UNSAT, {!Sat.last_core} is a set of
    selectors whose constraints suffice for the conflict (the aspcud-style
    unsat-core setup used by {!Explain}). *)

val atom_lit : t -> int -> Sat.lit option
(** Solver literal of a ground atom id ([None] for atoms with no variable:
    facts and impossible atoms). *)

val body_indicator : t -> Ground.body -> Sat.lit option
(** Indicator literal [b] with [body -> b] and [b -> body] (full
    equivalence, sharing auxiliaries across identical bodies).  [None] means
    the body is unconditionally true; if the body is unsatisfiable
    (mentions an impossible atom) the result is a literal fixed false. *)

val atom_is_true : t -> int -> bool
(** Truth of a ground atom id in the last model (facts are true). *)

val answer : t -> Gatom.t list
(** All atoms true in the last model, facts included, sorted. *)
