(* Independent verification of claimed answers.

   The CDCL pipeline (Sat propagation, Stable's lazy loop formulas,
   Optimize's bound bookkeeping) is the fast path; this module is the slow,
   obviously-correct path that re-checks its results using only the naive
   reference semantics of {!Naive}.  A model that passes here satisfies every
   ground rule, is supported, is unfounded-free (i.e. a stable model), and
   realizes exactly the cost vector the solver claimed — so a silent solver
   bug is caught before the answer ships. *)

type violation =
  | Inconsistent_program
  | Rule_violated of int
  | Unsupported of int
  | Unfounded of int
  | Cost_mismatch of { claimed : (int * int) list; actual : (int * int) list }

let pp_costs ppf costs =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_char ppf ' ')
    (fun ppf (p, v) -> Format.fprintf ppf "%d@%d" v p)
    ppf costs

let describe (g : Ground.t) = function
  | Inconsistent_program ->
    "a constraint grounded to an empty body: the program has no model at all"
  | Rule_violated i ->
    Format.asprintf "ground rule not satisfied: %a"
      (Ground.pp_rule g.Ground.store)
      (Vec.get g.Ground.rules i)
  | Unsupported id ->
    Format.asprintf "atom %a is true but no rule with a satisfied body derives it"
      Gatom.pp
      (Gatom.Store.atom g.Ground.store id)
  | Unfounded id ->
    Format.asprintf "atom %a is true but unfounded (only circular justification)"
      Gatom.pp
      (Gatom.Store.atom g.Ground.store id)
  | Cost_mismatch { claimed; actual } ->
    Format.asprintf "claimed cost vector [%a] but the model's recomputed costs are [%a]"
      pp_costs claimed pp_costs actual

(* cap the report: one violation proves the answer wrong, a handful helps
   debugging, thousands help nobody *)
let max_reported = 20

let check ?(budget = Budget.unlimited) ?costs (g : Ground.t) ~is_true =
  Budget.enter budget Budget.Verify;
  let store = g.Ground.store in
  let natoms = Gatom.Store.count store in
  let violations = ref [] in
  let reported = ref 0 in
  let add v =
    if !reported < max_reported then violations := v :: !violations;
    incr reported
  in
  if g.Ground.inconsistent then add Inconsistent_program;
  (* 1. every ground rule is satisfied *)
  let count_true heads =
    Array.fold_left (fun acc h -> if is_true h then acc + 1 else acc) 0 heads
  in
  Vec.iteri
    (fun i rule ->
      Budget.tick_verify_step budget;
      let ok =
        match rule with
        | Ground.Rnormal (h, b) -> (not (Naive.body_holds is_true b)) || is_true h
        | Ground.Rconstraint b -> not (Naive.body_holds is_true b)
        | Ground.Rchoice { lb; ub; heads; cbody } ->
          (not (Naive.body_holds is_true cbody))
          || begin
               let n = count_true heads in
               (match lb with Some l -> n >= l | None -> true)
               && match ub with Some u -> n <= u | None -> true
             end
      in
      if not ok then add (Rule_violated i))
    g.Ground.rules;
  (* 2. Clark-completion support: every true non-fact atom is the head of
     some rule whose body holds *)
  let supports = Array.make natoms [] in
  Vec.iter
    (fun rule ->
      match rule with
      | Ground.Rnormal (h, b) -> supports.(h) <- b :: supports.(h)
      | Ground.Rchoice { heads; cbody; _ } ->
        Array.iter (fun h -> supports.(h) <- cbody :: supports.(h)) heads
      | Ground.Rconstraint _ -> ())
    g.Ground.rules;
  for id = 0 to natoms - 1 do
    Budget.tick_verify_step budget;
    if
      is_true id
      && (not (Gatom.Store.is_fact store id))
      && not (List.exists (Naive.body_holds is_true) supports.(id))
    then add (Unsupported id)
  done;
  (* 3. unfounded-freeness: the true atoms are exactly their own least
     fixpoint under the reduct — supported but circular justifications
     (which Clark completion admits and {!Stable} exists to exclude) fail
     here *)
  let founded = Naive.founded_set g natoms is_true in
  for id = 0 to natoms - 1 do
    Budget.tick_verify_step budget;
    if is_true id && not founded.(id) then
      if Gatom.Store.is_fact store id then () else add (Unfounded id)
  done;
  (* 4. the claimed cost vector matches a from-scratch recomputation *)
  (match costs with
  | None -> ()
  | Some claimed ->
    Budget.tick_verify_step budget;
    let truth = Array.init natoms is_true in
    let actual = Naive.cost_vector g truth in
    if claimed <> actual then add (Cost_mismatch { claimed; actual }));
  match !violations with [] -> Ok () | vs -> Error (List.rev vs)

let check_translation ?budget ?costs (t : Translate.t) =
  check ?budget ?costs t.Translate.ground ~is_true:(Translate.atom_is_true t)

let describe_all g vs = List.map (describe g) vs
