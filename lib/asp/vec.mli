(** Growable arrays (the workhorse container of the grounder and solver). *)

type 'a t

val create : ?capacity:int -> dummy:'a -> unit -> 'a t
(** [dummy] fills unused capacity; it is never observable. *)

val length : 'a t -> int
val get : 'a t -> int -> 'a
val set : 'a t -> int -> 'a -> unit
val push : 'a t -> 'a -> unit
val pop : 'a t -> 'a
(** @raise Invalid_argument on an empty vector. *)

val top : 'a t -> 'a
val clear : 'a t -> unit
val shrink : 'a t -> int -> unit
(** [shrink v n] truncates [v] to its first [n] elements. *)

val iter : ('a -> unit) -> 'a t -> unit
val iteri : (int -> 'a -> unit) -> 'a t -> unit
val fold : ('acc -> 'a -> 'acc) -> 'acc -> 'a t -> 'acc
val exists : ('a -> bool) -> 'a t -> bool
val copy : 'a t -> 'a t
(** Independent copy (elements shared). *)

val to_array : 'a t -> 'a array
val to_list : 'a t -> 'a list
val of_list : dummy:'a -> 'a list -> 'a t
val sort : ('a -> 'a -> int) -> 'a t -> unit
