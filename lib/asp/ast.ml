type binop = Add | Sub | Mul | Div | Mod

type term =
  | Cst of Term.t
  | Var of string
  | Binop of binop * term * term
  | Interval of term * term
  | Fn of string * term list
type atom = { pred : string; args : term list }
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type body_lit =
  | Pos of atom
  | Neg of atom
  | Cmp of cmp * term * term
  | Forall of atom * atom list

type choice_elem = { elem : atom; guard : body_lit list }

type head =
  | Head_atom of atom
  | Head_choice of { lb : term option; ub : term option; elems : choice_elem list }
  | Head_none

type rule = { head : head; body : body_lit list; line : int }

type min_elem = {
  weight : term;
  priority : term;
  tuple : term list;
  guard : body_lit list;
}

type statement = Rule of rule | Minimize of min_elem list | Show of (string * int) option
type program = statement list

let cst_str s = Cst (Term.str s)
let cst_int i = Cst (Term.int i)
let var v = Var v
let atom pred args = { pred; args }
let fact p args =
  Rule { head = Head_atom (atom p (List.map (fun t -> Cst t) args)); body = []; line = 0 }

let rule h body = Rule { head = Head_atom h; body; line = 0 }
let constraint_ body = Rule { head = Head_none; body; line = 0 }

let rec term_vars = function
  | Cst _ -> []
  | Var v -> [ v ]
  | Binop (_, a, b) -> term_vars a @ term_vars b
  | Interval (a, b) -> term_vars a @ term_vars b
  | Fn (_, args) -> List.concat_map term_vars args

let atom_vars a = List.concat_map term_vars a.args

let body_lit_vars = function
  | Pos a | Neg a -> atom_vars a
  | Cmp (_, a, b) -> term_vars a @ term_vars b
  | Forall (a, conds) -> atom_vars a @ List.concat_map atom_vars conds

let rec is_ground_term = function
  | Cst _ -> true
  | Var _ -> false
  | Binop (_, a, b) -> is_ground_term a && is_ground_term b
  | Interval (a, b) -> is_ground_term a && is_ground_term b
  | Fn (_, args) -> List.for_all is_ground_term args

let statement_is_fact = function
  | Rule { head = Head_atom a; body = []; _ } -> List.for_all is_ground_term a.args
  | _ -> false

let rec term_has_interval = function
  | Cst _ | Var _ -> false
  | Binop (_, a, b) -> term_has_interval a || term_has_interval b
  | Interval _ -> true
  | Fn (_, args) -> List.exists term_has_interval args

let head_atoms = function
  | Head_atom a -> [ a ]
  | Head_choice { elems; _ } -> List.map (fun e -> e.elem) elems
  | Head_none -> []

let pp_binop ppf op =
  Format.pp_print_string ppf
    (match op with Add -> "+" | Sub -> "-" | Mul -> "*" | Div -> "/" | Mod -> "\\")

let pp_comma_list pp ppf xs =
  Format.pp_print_list ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ",") pp ppf xs

let rec pp_term ppf = function
  | Cst t -> Term.pp ppf t
  | Var v -> Format.pp_print_string ppf v
  | Binop (op, a, b) -> Format.fprintf ppf "(%a%a%a)" pp_term a pp_binop op pp_term b
  | Interval (a, b) -> Format.fprintf ppf "%a..%a" pp_term a pp_term b
  | Fn (f, args) -> Format.fprintf ppf "%s(%a)" f (pp_comma_list pp_term) args

let pp_atom ppf { pred; args } =
  match args with
  | [] -> Format.pp_print_string ppf pred
  | _ -> Format.fprintf ppf "%s(%a)" pred (pp_comma_list pp_term) args

let pp_cmp ppf c =
  Format.pp_print_string ppf
    (match c with Eq -> "=" | Ne -> "!=" | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">=")

let rec pp_body_lit ppf = function
  | Pos a -> pp_atom ppf a
  | Neg a -> Format.fprintf ppf "not %a" pp_atom a
  | Cmp (c, a, b) -> Format.fprintf ppf "%a %a %a" pp_term a pp_cmp c pp_term b
  | Forall (a, conds) ->
    Format.fprintf ppf "%a : %a" pp_atom a (pp_comma_list pp_atom) conds

and pp_body ppf body =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
    pp_body_lit ppf body

let pp_choice_elem ppf { elem; guard } =
  match guard with
  | [] -> pp_atom ppf elem
  | _ -> Format.fprintf ppf "%a : %a" pp_atom elem (pp_comma_list pp_body_lit) guard

let pp_head ppf = function
  | Head_atom a -> pp_atom ppf a
  | Head_none -> ()
  | Head_choice { lb; ub; elems } ->
    let pp_bound ppf = function None -> () | Some t -> Format.fprintf ppf "%a " pp_term t in
    let pp_ubound ppf = function None -> () | Some t -> Format.fprintf ppf " %a" pp_term t in
    Format.fprintf ppf "%a{ %a }%a" pp_bound lb
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_choice_elem)
      elems pp_ubound ub

let pp_min_elem ppf { weight; priority; tuple; guard } =
  Format.fprintf ppf "%a@%a" pp_term weight pp_term priority;
  List.iter (fun t -> Format.fprintf ppf ",%a" pp_term t) tuple;
  match guard with
  | [] -> ()
  | _ -> Format.fprintf ppf " : %a" (pp_comma_list pp_body_lit) guard

let pp_statement ppf = function
  | Show None -> Format.pp_print_string ppf "#show."
  | Show (Some (p, n)) -> Format.fprintf ppf "#show %s/%d." p n
  | Rule { head = Head_none; body; _ } -> Format.fprintf ppf ":- %a." pp_body body
  | Rule { head; body = []; _ } -> Format.fprintf ppf "%a." pp_head head
  | Rule { head; body; _ } -> Format.fprintf ppf "%a :- %a." pp_head head pp_body body
  | Minimize elems ->
    Format.fprintf ppf "#minimize{ %a }."
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.pp_print_string ppf "; ")
         pp_min_elem)
      elems

let pp_program ppf prog =
  Format.pp_print_list
    ~pp_sep:(fun ppf () -> Format.pp_print_newline ppf ())
    pp_statement ppf prog
