(** A CDCL SAT solver with native pseudo-Boolean (cardinality) constraints.

    This plays the role of clasp's search core: conflict-driven clause
    learning with two-watched-literal propagation, EVSIDS decision heuristic,
    phase saving, Luby restarts, and activity-based deletion of learnt
    clauses.  Pseudo-Boolean [<=] constraints are propagated natively with a
    counter scheme (no CNF encoding), which is what makes cardinality rules
    and optimization bounds cheap.

    Literal encoding: variable [v] yields literals [2*v] (positive) and
    [2*v+1] (negated). *)

type t

type lit = int

module Lit : sig
  val pos : int -> lit
  val neg : int -> lit
  val negate : lit -> lit
  val var : lit -> int
  val sign : lit -> bool
  (** [true] for negative literals. *)
end

(** Search-behaviour knobs (set per clingo-style preset by {!Config}). *)
type params = {
  var_decay : float;  (** EVSIDS decay, e.g. 0.95 *)
  clause_decay : float;
  restart_base : int;  (** Luby unit, in conflicts *)
  default_phase : bool;  (** polarity used before phase saving kicks in *)
  learnt_start : int;  (** learnt-clause cap before the first reduction *)
  learnt_inc : float;  (** cap growth factor per reduction *)
  seed : int;  (** deterministic tie-breaking jitter on initial activities *)
}

val default_params : params

type stats = {
  mutable conflicts : int;
  mutable decisions : int;
  mutable propagations : int;
  mutable restarts : int;
  mutable learnt_literals : int;
  mutable pb_propagations : int;
}

val create : ?params:params -> unit -> t
val num_vars : t -> int

val new_var : t -> int
(** Fresh variable, initially unassigned. *)

val add_clause : t -> lit list -> unit
(** Add a clause (at decision level 0).  The solver may become trivially
    unsatisfiable; subsequent [solve] calls then return [Unsat]. *)

val add_pb_le : t -> (int * lit) list -> int -> unit
(** [add_pb_le s wls k] adds [sum w_i * l_i <= k]; all weights must be
    positive (normalize before calling). *)

type result = Sat | Unsat

val solve :
  ?assumptions:lit list ->
  ?on_model:(t -> [ `Accept | `Refine of lit list list ]) ->
  ?budget:Budget.t ->
  t ->
  result
(** Search for a model.  When a total assignment is found, [on_model] is
    consulted: [`Accept] ends the search with [Sat]; [`Refine clauses]
    installs the clauses (at least one of which must be violated by the
    current assignment, or the search may not terminate) and continues.
    Assumptions are decided first; if they are contradictory with the
    constraints the result is [Unsat].

    The budget is ticked at every learning conflict and polled at every
    decision.
    @raise Budget.Exhausted when the budget runs out; the solver is left in
    a consistent level-0 state (re-solvable, and the last stored model — if
    any — is untouched). *)

val value : t -> lit -> bool
(** Value of a literal in the last stored model.
    @raise Solver_error.Error [No_model] before the first successful solve,
    or when the literal's variable was created after the model was stored. *)

val model_true_vars : t -> int list
(** Variables assigned true in the last stored model.
    @raise Solver_error.Error [No_model] before the first successful solve. *)

val stats : t -> stats

val current_lit_value : t -> lit -> int
(** Live value of a literal in the solver's current assignment: [1] true,
    [0] false, [-1] unassigned.  Meant for [on_model] hooks, where the
    assignment is total. *)

val suggest_phase : t -> lit -> unit
(** Bias the decision heuristic so that, when the variable of [lit] is
    branched on, [lit] is tried true first (until phase saving overrides
    it).  Domain-aware polarity seeding, like clasp's [#heuristic]. *)

val last_core : t -> lit list
(** After [solve ~assumptions] returned [Unsat]: a subset of the assumptions
    that together are inconsistent with the constraints (the {e core}).
    Empty when the instance is unsatisfiable even without assumptions. *)

val solve_with_assumptions :
  ?on_model:(t -> [ `Accept | `Refine of lit list list ]) ->
  ?budget:Budget.t ->
  t ->
  lit list ->
  result
(** [solve] with the assumptions as the positional argument; on [Unsat] the
    core is available from {!last_core}. *)

val shrink_core :
  ?on_model:(t -> [ `Accept | `Refine of lit list list ]) ->
  ?budget:Budget.t ->
  t ->
  lit list ->
  lit list * bool
(** Deletion-based minimization of an unsatisfiable assumption set: re-solve
    with each literal removed in turn, keeping it only when its removal makes
    the instance satisfiable.  Returns [(core, minimal)]; [minimal] is [true]
    when the pass completed, in which case the core is a minimal
    unsatisfiable subset.  Anytime: on budget exhaustion the current (still
    unsatisfiable, possibly non-minimal) set is returned with [false] instead
    of raising.  The budget is ticked once per deletion attempt
    ({!Budget.Opt_step}) and by each inner solve as usual.  Pass the same
    [on_model] hook used for the original solve (e.g. {!Stable.hook}) so
    cores remain sound for non-tight programs. *)
