type outcome = {
  answer : Gatom.t list;
  index : Answer.t Lazy.t;
  costs : (int * int) list;
  quality : Optimize.quality;
  ground_stats : Grounder.stats;
  sat_stats : Sat.stats;
  models_enumerated : int;
  ground_time : float;
  solve_time : float;
  verified : bool;
}

type result =
  | Sat of outcome
  | Unsat of { ground_time : float; solve_time : float }
  | Interrupted of {
      info : Budget.info;
      ground_time : float;
      solve_time : float;
    }

(* Apply #show statements: when any are present, only atoms whose
   (predicate, arity) is explicitly shown are reported.  (Also used by
   {!Portfolio} on the winning racer's answer.) *)
let apply_show prog answer =
  let shows = List.filter_map (function Ast.Show s -> Some s | _ -> None) prog in
  if shows = [] then answer
  else
    let shown = List.filter_map Fun.id shows in
    List.filter
      (fun (a : Gatom.t) ->
        List.mem (a.Gatom.pred, List.length a.Gatom.args) shown)
      answer

(* The verified sequential runner shared by {!solve_program}, the
   concretizer's sequential path and the portfolio's rescue path: translate,
   seed phase hints, optimize, then independently re-check the winning model
   with {!Verify}.  On verification failure the solve is retried once from a
   reseeded search (a different EVSIDS tie-breaking order steers CDCL away
   from whatever state triggered the bug); if the retry's model also fails,
   the typed {!Solver_error.Verification_failed} surfaces — never a wrong
   answer.  Verification runs on a fresh unlimited budget: a budget that
   expired mid-optimization must not veto checking the degraded model it
   produced. *)
let solve_ground_verified ?(hints = fun _ -> ()) ?(verify = true) ~params
    ~strategy ~budget g =
  let attempt params =
    let t = Translate.translate ~params g in
    hints t;
    let on_model = Stable.hook t in
    match Optimize.run ~strategy ~budget t ~on_model with
    | None -> `Unsat
    | Some { Optimize.costs; models_enumerated; quality } ->
      if not verify then `Model (t, costs, quality, models_enumerated, false)
      else (
        match Verify.check_translation ~costs t with
        | Ok () -> `Model (t, costs, quality, models_enumerated, true)
        | Error vs -> `Bad (Verify.describe_all g vs))
  in
  match attempt params with
  | `Unsat -> None
  | `Model m -> Some m
  | `Bad _ -> (
    match attempt { params with Sat.seed = params.seed + 7919 } with
    | `Model m -> Some m
    | `Unsat ->
      (* the reseeded solve proved UNSAT: the rejected model was bogus and
         the independent verdict stands *)
      None
    | `Bad violations ->
      raise (Solver_error.Error (Solver_error.Verification_failed { violations })))

let solve_program ?(config = Config.default) ?budget prog =
  let budget =
    match budget with Some b -> b | None -> Budget.start config.Config.limits
  in
  let t0 = Unix.gettimeofday () in
  match Grounder.ground ~budget prog with
  | exception Budget.Exhausted info ->
    Interrupted { info; ground_time = Unix.gettimeofday () -. t0; solve_time = 0. }
  | g, gstats -> (
    let ground_time = Unix.gettimeofday () -. t0 in
    let params = Config.params config.Config.preset in
    let t1 = Unix.gettimeofday () in
    let run () =
      let strategy =
        match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
      in
      match
        solve_ground_verified ~verify:config.Config.verify ~params ~strategy
          ~budget g
      with
      | None -> None
      | Some (t, costs, quality, models_enumerated, verified) ->
        Some
          ( apply_show prog (Translate.answer t),
            costs,
            quality,
            Sat.stats t.Translate.sat,
            models_enumerated,
            verified )
    in
    match run () with
    | exception Budget.Exhausted info ->
      (* the budget expired before any stable model was found *)
      Interrupted { info; ground_time; solve_time = Unix.gettimeofday () -. t1 }
    | None -> Unsat { ground_time; solve_time = Unix.gettimeofday () -. t1 }
    | Some (answer, costs, quality, sat_stats, models_enumerated, verified) ->
      Sat
        {
          answer;
          index = lazy (Answer.of_list answer);
          costs;
          quality;
          ground_stats = gstats;
          sat_stats;
          models_enumerated;
          ground_time;
          solve_time = Unix.gettimeofday () -. t1;
          verified;
        })

let solve_text ?config ?budget src = solve_program ?config ?budget (Parser.parse src)

let index o = Lazy.force o.index
let holds o p args = Answer.holds (index o) p args
let atoms_of o p = Answer.atoms_of (index o) p

let enumerate ?(config = Config.default) ?budget ?(limit = max_int) prog =
  let budget =
    match budget with Some b -> b | None -> Budget.start config.Config.limits
  in
  match Grounder.ground ~budget prog with
  | exception Budget.Exhausted _ -> []
  | g, _ -> (
    let params = Config.params config.Config.preset in
    let t = Translate.translate ~params g in
    let on_model = Stable.hook t in
    let strategy =
      match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
    in
    match Optimize.run ~strategy ~budget t ~on_model with
    | exception Budget.Exhausted _ -> []
    | None -> []
    | Some _ ->
      (* block each found model on its atom variables and continue *)
      let atom_vars =
        Array.to_list t.Translate.var_of_atom |> List.filter (fun v -> v >= 0)
      in
      let results = ref [] in
      let found = ref 0 in
      (* stability/support re-check per enumerated model (no cost check:
         enumeration reports every optimal model, not a claimed vector) *)
      let model_checks_out () =
        (not config.Config.verify)
        || match Verify.check_translation t with Ok () -> true | Error _ -> false
      in
      (try
         let continue_ = ref true in
         while !continue_ && !found < limit do
           if model_checks_out () then begin
             incr found;
             results := apply_show prog (Translate.answer t) :: !results
           end;
           let blocking =
             List.map
               (fun v ->
                 let l = Sat.Lit.pos v in
                 if Sat.value t.Translate.sat l then Sat.Lit.negate l else l)
               atom_vars
           in
           Sat.add_clause t.Translate.sat blocking;
           match Sat.solve ~on_model ~budget t.Translate.sat with
           | Sat.Sat -> ()
           | Sat.Unsat -> continue_ := false
         done
       with Budget.Exhausted _ -> ());
      List.rev !results)
