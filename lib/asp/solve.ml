type outcome = {
  answer : Gatom.t list;
  index : Answer.t Lazy.t;
  costs : (int * int) list;
  quality : Optimize.quality;
  ground_stats : Grounder.stats;
  sat_stats : Sat.stats;
  models_enumerated : int;
  ground_time : float;
  solve_time : float;
}

type result =
  | Sat of outcome
  | Unsat of { ground_time : float; solve_time : float }
  | Interrupted of {
      info : Budget.info;
      ground_time : float;
      solve_time : float;
    }

(* Apply #show statements: when any are present, only atoms whose
   (predicate, arity) is explicitly shown are reported.  (Also used by
   {!Portfolio} on the winning racer's answer.) *)
let apply_show prog answer =
  let shows = List.filter_map (function Ast.Show s -> Some s | _ -> None) prog in
  if shows = [] then answer
  else
    let shown = List.filter_map Fun.id shows in
    List.filter
      (fun (a : Gatom.t) ->
        List.mem (a.Gatom.pred, List.length a.Gatom.args) shown)
      answer

let solve_program ?(config = Config.default) ?budget prog =
  let budget =
    match budget with Some b -> b | None -> Budget.start config.Config.limits
  in
  let t0 = Unix.gettimeofday () in
  match Grounder.ground ~budget prog with
  | exception Budget.Exhausted info ->
    Interrupted { info; ground_time = Unix.gettimeofday () -. t0; solve_time = 0. }
  | g, gstats -> (
    let ground_time = Unix.gettimeofday () -. t0 in
    let params = Config.params config.Config.preset in
    let t1 = Unix.gettimeofday () in
    let run () =
      let t = Translate.translate ~params g in
      let on_model = Stable.hook t in
      let strategy =
        match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
      in
      match Optimize.run ~strategy ~budget t ~on_model with
      | None -> None
      | Some { Optimize.costs; models_enumerated; quality } ->
        Some
          ( apply_show prog (Translate.answer t),
            costs,
            quality,
            Sat.stats t.Translate.sat,
            models_enumerated )
    in
    match run () with
    | exception Budget.Exhausted info ->
      (* the budget expired before any stable model was found *)
      Interrupted { info; ground_time; solve_time = Unix.gettimeofday () -. t1 }
    | None -> Unsat { ground_time; solve_time = Unix.gettimeofday () -. t1 }
    | Some (answer, costs, quality, sat_stats, models_enumerated) ->
      Sat
        {
          answer;
          index = lazy (Answer.of_list answer);
          costs;
          quality;
          ground_stats = gstats;
          sat_stats;
          models_enumerated;
          ground_time;
          solve_time = Unix.gettimeofday () -. t1;
        })

let solve_text ?config ?budget src = solve_program ?config ?budget (Parser.parse src)

let index o = Lazy.force o.index
let holds o p args = Answer.holds (index o) p args
let atoms_of o p = Answer.atoms_of (index o) p

let enumerate ?(config = Config.default) ?budget ?(limit = max_int) prog =
  let budget =
    match budget with Some b -> b | None -> Budget.start config.Config.limits
  in
  match Grounder.ground ~budget prog with
  | exception Budget.Exhausted _ -> []
  | g, _ -> (
    let params = Config.params config.Config.preset in
    let t = Translate.translate ~params g in
    let on_model = Stable.hook t in
    let strategy =
      match config.Config.strategy with Config.Bb -> `Bb | Config.Usc -> `Usc
    in
    match Optimize.run ~strategy ~budget t ~on_model with
    | exception Budget.Exhausted _ -> []
    | None -> []
    | Some _ ->
      (* block each found model on its atom variables and continue *)
      let atom_vars =
        Array.to_list t.Translate.var_of_atom |> List.filter (fun v -> v >= 0)
      in
      let results = ref [] in
      let found = ref 0 in
      (try
         let continue_ = ref true in
         while !continue_ && !found < limit do
           incr found;
           results := apply_show prog (Translate.answer t) :: !results;
           let blocking =
             List.map
               (fun v ->
                 let l = Sat.Lit.pos v in
                 if Sat.value t.Translate.sat l then Sat.Lit.negate l else l)
               atom_vars
           in
           Sat.add_clause t.Translate.sat blocking;
           match Sat.solve ~on_model ~budget t.Translate.sat with
           | Sat.Sat -> ()
           | Sat.Unsat -> continue_ := false
         done
       with Budget.Exhausted _ -> ());
      List.rev !results)
