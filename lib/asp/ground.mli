(** Propositional (ground) programs produced by the grounder.

    Atom ids refer to the grounder's {!Gatom.Store}.  Bodies are already
    simplified: literals over input facts are removed, and rules whose body is
    refuted by the possible-atom analysis are dropped. *)

type body = { pos : int array; neg : int array }

type rule =
  | Rnormal of int * body  (** [head :- body] *)
  | Rchoice of choice
  | Rconstraint of body  (** [:- body] *)

and choice = {
  lb : int option;  (** lower cardinality bound on true head atoms *)
  ub : int option;  (** upper cardinality bound *)
  heads : int array;
  cbody : body;
}

type min_entry = {
  mweight : int;
  mpriority : int;
  mtuple : Term.t list;  (** discriminating tuple (deduplicated) *)
  mbody : body;  (** contributes [mweight] when this body holds *)
}

type origin = {
  o_line : int;  (** source line of the input rule (0 when synthesized) *)
  o_text : string;  (** pretty-printed input rule (shared per source rule) *)
  o_pos : int array;
      (** atom ids matched by the positive body before fact-stripping: the
          simplification removes literals over input facts, which is exactly
          where concretizer pins (version/compiler constraints imposed as
          facts) live — explanations recover them from here *)
}

type t = {
  store : Gatom.Store.t;
  rules : rule Vec.t;
  origins : origin Vec.t;  (** parallel to [rules], same indices *)
  conflicts0 : origin Vec.t;
      (** constraint instances whose body simplified to the empty body; each
          one independently forces unsatisfiability *)
  minimize : min_entry Vec.t;
  mutable inconsistent : bool;
      (** true when an integrity constraint grounded to an empty body *)
}

val create : Gatom.Store.t -> t
val empty_body : body

val noop_rule : rule
(** A vacuous rule (unbounded choice over no atoms): incremental
    re-emission overwrites retracted slots with it, keeping rule indices
    stable for provenance. *)

val fork : t -> Gatom.Store.t -> t
(** Copy of the program (rules, origins, conflicts, minimize) over a new
    store — the starting point for extending a frozen base program.  The
    copies are independent; rule records are shared. *)

val body_size : body -> int
val num_rules : t -> int
val num_atoms : t -> int

val push_rule : t -> rule -> origin -> unit
(** Append a rule and its origin, keeping [rules] and [origins] in sync. *)

val origin : t -> int -> origin
(** Origin of rule [i]. *)

val pp_rule : Gatom.Store.t -> Format.formatter -> rule -> unit
val pp : Format.formatter -> t -> unit
