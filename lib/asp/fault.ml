type point = Conflicts | Instances | Opt_steps | Verify_steps

let matches point (ev : Budget.event) =
  match (point, ev) with
  | Conflicts, Budget.Conflict | Instances, Budget.Instance
  | Opt_steps, Budget.Opt_step | Verify_steps, Budget.Verify_step ->
    true
  | _ -> false

let arm budget point n =
  let remaining = ref n in
  Budget.set_hook budget (fun ev ->
      matches point ev
      && begin
           decr remaining;
           !remaining <= 0
         end)

(* ------------------------------------------------------------------ *)
(* Service-layer injection points                                      *)
(* ------------------------------------------------------------------ *)

type service_point =
  | Journal_tear
  | Drop_socket
  | Truncate_response
  | Delay_response
  | Worker_crash
  | Worker_wedge
  | Repl_drop
  | Repl_reorder
  | Follower_crash

let n_service_points = 9

let service_index = function
  | Journal_tear -> 0
  | Drop_socket -> 1
  | Truncate_response -> 2
  | Delay_response -> 3
  | Worker_crash -> 4
  | Worker_wedge -> 5
  | Repl_drop -> 6
  | Repl_reorder -> 7
  | Follower_crash -> 8

let service_point_name = function
  | Journal_tear -> "journal_tear"
  | Drop_socket -> "drop_socket"
  | Truncate_response -> "truncate_response"
  | Delay_response -> "delay_response"
  | Worker_crash -> "worker_crash"
  | Worker_wedge -> "worker_wedge"
  | Repl_drop -> "repl_drop"
  | Repl_reorder -> "repl_reorder"
  | Follower_crash -> "follower_crash"

(* One countdown per point, global to the process: the daemon's workers run
   in their own domains, so the counters are atomics.  0 = disarmed. *)
let service_counters =
  Array.init n_service_points (fun _ -> Atomic.make 0)

let arm_service point n =
  Atomic.set service_counters.(service_index point) (max 0 n)

let disarm_services () =
  Array.iter (fun c -> Atomic.set c 0) service_counters

let service_fires point =
  let c = service_counters.(service_index point) in
  let rec loop () =
    let v = Atomic.get c in
    if v <= 0 then false
    else if Atomic.compare_and_set c v (v - 1) then v = 1
    else loop ()
  in
  loop ()
