type point = Conflicts | Instances | Opt_steps | Verify_steps

let matches point (ev : Budget.event) =
  match (point, ev) with
  | Conflicts, Budget.Conflict | Instances, Budget.Instance
  | Opt_steps, Budget.Opt_step | Verify_steps, Budget.Verify_step ->
    true
  | _ -> false

let arm budget point n =
  let remaining = ref n in
  Budget.set_hook budget (fun ev ->
      matches point ev
      && begin
           decr remaining;
           !remaining <= 0
         end)
