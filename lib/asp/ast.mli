(** Abstract syntax of (a practical subset of) the ASP input language.

    The subset is the one needed by the Spack-style concretizer encoding plus
    everything exercised in the paper: normal rules, integrity constraints,
    choice rules with cardinality bounds, conditional body literals
    ([a : c1, ..., cn], "for all" expansion over EDB conditions), comparison
    built-ins, integer arithmetic, and [#minimize] statements with weights,
    priorities and term tuples. *)

type binop = Add | Sub | Mul | Div | Mod

type term =
  | Cst of Term.t  (** ground constant *)
  | Var of string  (** variable (capitalized in the input syntax) *)
  | Binop of binop * term * term  (** integer arithmetic *)
  | Interval of term * term
      (** [lo..hi]: expands to each integer in the range (facts only) *)
  | Fn of string * term list  (** compound term with possibly non-ground args *)

type atom = { pred : string; args : term list }

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type body_lit =
  | Pos of atom  (** positive literal *)
  | Neg of atom  (** negation as failure: [not a] *)
  | Cmp of cmp * term * term  (** built-in comparison *)
  | Forall of atom * atom list
      (** [Forall (a, conds)] is the conditional literal [a : conds]: for
          every instantiation of the condition's local variables that makes
          all of [conds] facts, [a] must hold.  Conditions must be EDB-only
          (checked by the grounder). *)

type choice_elem = { elem : atom; guard : body_lit list }
    (** one element [a : guard] of a choice head *)

type head =
  | Head_atom of atom
  | Head_choice of {
      lb : term option;  (** lower cardinality bound *)
      ub : term option;  (** upper cardinality bound *)
      elems : choice_elem list;
    }
  | Head_none  (** integrity constraint *)

type rule = {
  head : head;
  body : body_lit list;
  line : int;  (** 1-based source line of the rule; [0] when synthesized *)
}

type min_elem = {
  weight : term;
  priority : term;  (** defaults to [Cst (Int 0)] when [@p] is omitted *)
  tuple : term list;  (** discriminating term tuple *)
  guard : body_lit list;
}

type statement =
  | Rule of rule
  | Minimize of min_elem list
  | Show of (string * int) option
      (** [#show p/n.] restricts the reported answer atoms; [#show.] hides
          everything not explicitly shown *)

type program = statement list

(** {1 Construction helpers} *)

val cst_str : string -> term
val cst_int : int -> term
val var : string -> term
val atom : string -> term list -> atom

val fact : string -> Term.t list -> statement
(** [fact p args] is the ground fact [p(args).]. *)

val rule : atom -> body_lit list -> statement
val constraint_ : body_lit list -> statement

(** {1 Queries} *)

val term_vars : term -> string list
val atom_vars : atom -> string list

val body_lit_vars : body_lit -> string list
(** All variables, including condition-local ones of [Forall]. *)

val is_ground_term : term -> bool
val statement_is_fact : statement -> bool

val term_has_interval : term -> bool
(** Does the term contain an [lo..hi] range? *)

val head_atoms : head -> atom list
(** Atoms that can be derived by this head (choice elements included). *)

val pp_term : Format.formatter -> term -> unit
val pp_atom : Format.formatter -> atom -> unit
val pp_body_lit : Format.formatter -> body_lit -> unit
val pp_statement : Format.formatter -> statement -> unit
val pp_program : Format.formatter -> program -> unit
