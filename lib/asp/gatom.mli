(** Ground atoms and the interning store used by the grounder.

    Atoms are interned to dense integer ids.  The store maintains, per
    predicate, the list of (possibly true) atoms and per-argument-position
    indices used for joins during grounding. *)

type t = { pred : string; args : Term.t list }

val equal : t -> t -> bool
val hash : t -> int
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val make : string -> Term.t list -> t

(** Interning store.

    A store is either a {e root} or a single {e extension layer} over a
    frozen root ({!Store.extend}): layered stores resolve ids below the
    base's count in the base and the rest locally, which is what lets the
    incremental grounder share one immutable base store across many
    concurrent per-request extensions. *)
module Store : sig
  type atom = t
  type t

  val create : unit -> t
  val intern : t -> atom -> int
  (** Id of the atom, adding it if new.
      @raise Invalid_argument when the store is frozen and the atom is new. *)

  val find : t -> atom -> int option
  val atom : t -> int -> atom
  val count : t -> int

  val mark_fact : t -> int -> unit
  val is_fact : t -> int -> bool
  (** Atoms asserted by ground fact statements (unconditionally true).  A
      layer marking a base atom records the mark in a local overlay; the
      frozen base is never written. *)

  val freeze : t -> unit
  (** Make a root store immutable ({!intern} of new atoms and {!mark_fact}
      raise).  Required before {!extend}; a frozen store is safe to share
      across domains. *)

  val extend : t -> t
  (** A fresh mutable layer over a frozen root.  Layers do not nest. *)

  val clone : t -> t
  (** Independent mutable copy of a root store (atoms shared, tables
      fresh).  The install-delta path mutates clones instead of chaining
      layers. *)

  (** Candidate ids of a probe: at most two backing vectors (base + layer)
      exposed as one sequence.  Do not mutate the backing vectors. *)
  type cands

  val cands_length : cands -> int
  val cands_iter : (int -> unit) -> cands -> unit

  val by_pred : t -> string -> int -> cands
  (** [by_pred store p a] is the ids of all stored atoms with predicate [p]
      and arity [a]. *)

  val by_pred_arg : t -> string -> int -> pos:int -> value:Term.t -> cands
  (** Atoms of [p/a] whose argument at [pos] equals [value]. *)

  val fold_pred_names : t -> (string * int -> 'a -> 'a) -> 'a -> 'a
  (** May present a (pred, arity) pair twice on a layered store when both
      layers contain atoms of it. *)
end
