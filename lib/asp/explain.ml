(* UNSAT explanation via assumption-based unsat cores.

   Following the aspcud/Spack pattern: re-translate the ground program with
   every integrity constraint guarded by a selector literal, solve with all
   selectors assumed, and on UNSAT extract (then shrink) the final-conflict
   core — a small set of constraint instances that are jointly
   unsatisfiable.  Each core member carries its {!Ground.origin}, so callers
   can map it back to the input rule and, for concretizer programs, to the
   package recipe or request constraint that produced it.

   Constraints whose body grounded entirely to facts never reach the solver
   (the grounder just flags the program inconsistent); those are reported
   directly from [conflicts0] — each one is independently sufficient, so the
   "core" is trivially minimal and no solving happens at all. *)

type cause = {
  rule_index : int option;
      (* index into [ground.rules]; [None] for grounding-time conflicts *)
  origin : Ground.origin;
  ground_text : string;
}

type result =
  | Unsat_core of { causes : cause list; minimal : bool }
  | Satisfiable
  | Exhausted of Budget.info

(* a conflict instance whose body simplified away entirely: re-render it
   from the pre-simplification matched atoms *)
let conflict0_text (g : Ground.t) (o : Ground.origin) =
  Format.asprintf ":- %a."
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.pp_print_string ppf ", ")
       (fun ppf id -> Gatom.pp ppf (Gatom.Store.atom g.Ground.store id)))
    (Array.to_list o.Ground.o_pos)

let explain ?params ?(budget = Budget.unlimited) (g : Ground.t) =
  if Vec.length g.Ground.conflicts0 > 0 then
    Unsat_core
      {
        causes =
          List.map
            (fun o ->
              { rule_index = None; origin = o; ground_text = conflict0_text g o })
            (Vec.to_list g.Ground.conflicts0);
        minimal = true;
      }
  else
    let t, selectors = Translate.translate_with_selectors ?params g in
    (* the stability hook keeps cores sound for non-tight programs: a
       completion model that is not stable is refined away with loop
       formulas instead of being reported as Satisfiable *)
    let on_model = Stable.hook t in
    match
      Sat.solve_with_assumptions ~on_model ~budget t.Translate.sat
        (List.map fst selectors)
    with
    | exception Budget.Exhausted info -> Exhausted info
    | Sat.Sat -> Satisfiable
    | Sat.Unsat ->
      let core = Sat.last_core t.Translate.sat in
      (* anytime minimization: on budget exhaustion the current (still
         unsatisfiable, possibly non-minimal) core is kept *)
      let core, minimal = Sat.shrink_core ~on_model ~budget t.Translate.sat core in
      let causes =
        List.filter_map
          (fun sel ->
            match List.assoc_opt sel selectors with
            | None -> None
            | Some i ->
              Some
                {
                  rule_index = Some i;
                  origin = Ground.origin g i;
                  ground_text =
                    Format.asprintf "%a"
                      (Ground.pp_rule g.Ground.store)
                      (Vec.get g.Ground.rules i);
                })
          core
        |> List.sort (fun a b -> compare a.rule_index b.rule_index)
      in
      Unsat_core { causes; minimal }

let pp_cause ppf c =
  if c.origin.Ground.o_line > 0 then
    Format.fprintf ppf "%s (line %d): %s" c.origin.Ground.o_text
      c.origin.Ground.o_line c.ground_text
  else Format.fprintf ppf "%s: %s" c.origin.Ground.o_text c.ground_text
