(** Top-level solving pipeline: ground, translate, search, optimize.

    This is the [clingo]-equivalent entry point: it takes a first-order
    program, grounds it, runs CDCL search under stable-model semantics and
    returns the optimal answer set together with per-phase timings (the
    paper's instrumentation distinguishes {e load}, {e ground} and {e solve}
    phases; {e setup} — fact generation — happens in the caller).

    Solves are budgeted (see {!Budget}): when the budget expires after a
    stable model is in hand the result is still [Sat], marked
    [`Degraded]; when it expires earlier the result is {!Interrupted}.
    Neither case raises. *)

type outcome = {
  answer : Gatom.t list;  (** atoms of the stable model, facts included *)
  index : Answer.t Lazy.t;
  (** id-keyed index over [answer], built on first use; {!holds} and
      {!atoms_of} query it instead of scanning the list *)
  costs : (int * int) list;  (** optimization results: (priority, value) *)
  quality : Optimize.quality;
  (** [`Optimal], or [`Degraded bounds] when the budget expired
      mid-optimization (the answer is the best model found; completed
      levels are exact, [bounds] are the proved lower bounds of the rest) *)
  ground_stats : Grounder.stats;
  sat_stats : Sat.stats;
  models_enumerated : int;
  ground_time : float;  (** seconds *)
  solve_time : float;  (** translation + search + optimization, seconds *)
  verified : bool;
  (** the answer passed independent verification ({!Verify}); [false] only
      when [config.verify] was off — a model that {e fails} verification is
      never returned (reseeded retry, then
      {!Solver_error.Verification_failed}) *)
}

type result =
  | Sat of outcome
  | Unsat of { ground_time : float; solve_time : float }
  | Interrupted of {
      info : Budget.info;  (** phase, reason and partial stats at expiry *)
      ground_time : float;
      solve_time : float;
    }  (** the budget expired before any stable model was found *)

val solve_program : ?config:Config.t -> ?budget:Budget.t -> Ast.program -> result
(** A budget is armed from [config.limits] unless an explicit (possibly
    fault-injected, see {!Fault}) [budget] is given.
    @raise Solver_error.Error ([Ground _]) on unsafe or unsupported
    programs; ([Verification_failed _]) when verification is on and both the
    original and the reseeded solve produced answers the independent checker
    rejects. *)

val solve_ground_verified :
  ?hints:(Translate.t -> unit) ->
  ?verify:bool ->
  params:Sat.params ->
  strategy:[ `Bb | `Usc ] ->
  budget:Budget.t ->
  Ground.t ->
  (Translate.t * (int * int) list * Optimize.quality * int * bool) option
(** The verified sequential runner over an already-ground program:
    translate, apply [hints] (phase seeding), optimize, then re-check the
    winning model with {!Verify} (on a fresh unlimited budget, so a solve
    budget that expired mid-descent cannot veto checking the degraded model).
    On verification failure, one retry from a reseeded search; [None] means
    UNSAT.  Returns [(t, costs, quality, models_enumerated, verified)] with
    the model stored in [t]'s solver.  Shared with [Concretizer] and the
    {!Portfolio} quarantine-rescue path.
    @raise Budget.Exhausted before the first model, as {!Optimize.run}.
    @raise Solver_error.Error ([Verification_failed _]) when both attempts
    fail verification. *)

val solve_text : ?config:Config.t -> ?budget:Budget.t -> string -> result
(** Parse then solve.
    @raise Solver_error.Error ([Parse _]) on syntax errors. *)

val apply_show : Ast.program -> Gatom.t list -> Gatom.t list
(** Filter an answer through the program's [#show] statements (identity when
    there are none).  Exposed for {!Portfolio}. *)

val index : outcome -> Answer.t
(** Force and return the answer index (O(answer) the first time, O(1)
    after).  Not domain-safe: force it before handing the outcome to other
    domains. *)

val holds : outcome -> string -> Term.t list -> bool
(** [holds o p args] tests whether atom [p(args)] is in the answer.
    O(arity) via the index. *)

val atoms_of : outcome -> string -> Term.t list list
(** Argument vectors of all answer atoms with predicate [p]. *)

val enumerate :
  ?config:Config.t ->
  ?budget:Budget.t ->
  ?limit:int ->
  Ast.program ->
  Gatom.t list list
(** Enumerate stable models (all of them by default, up to [limit]): each
    answer is blocked and the search continues, like clingo's [--models N].
    When the program has [#minimize] statements only {e optimal} models are
    enumerated (clingo's [--opt-mode=optN]).  Enumeration is anytime: a
    budget armed from [config.limits] (or the explicit [budget]) is ticked
    through grounding, search and every blocked re-solve, and on expiry the
    models found so far are returned. *)
