type support = {
  s_lit : Sat.lit option;
  s_pos : int array;
  s_neg : int array;
  s_choice : bool;
}

(* Bodies are deduplicated by their atom-id tuples: plain int-array hashing,
   no tuple allocation per probe and no polymorphic hash. *)
module Body_tbl = Hashtbl.Make (struct
  type t = Ground.body

  let arr_eq (a : int array) (b : int array) =
    Array.length a = Array.length b
    &&
    let rec go i = i < 0 || (Array.unsafe_get a i = Array.unsafe_get b i && go (i - 1)) in
    go (Array.length a - 1)

  let equal (x : Ground.body) (y : Ground.body) =
    arr_eq x.Ground.pos y.Ground.pos && arr_eq x.Ground.neg y.Ground.neg

  let arr_hash h a = Array.fold_left (fun acc x -> (acc * 31) + x) h a

  let hash (b : Ground.body) = arr_hash (arr_hash 17 b.Ground.pos) b.Ground.neg
end)

type t = {
  sat : Sat.t;
  ground : Ground.t;
  var_of_atom : int array;
  supports : support list array;
  tight : bool;
  mutable false_lit : Sat.lit option;  (** lazily created constant-false literal *)
  body_cache : Sat.lit option Body_tbl.t;
}

let fact t id = Gatom.Store.is_fact t.ground.Ground.store id

let atom_lit t id =
  let v = t.var_of_atom.(id) in
  if v < 0 then None else Some (Sat.Lit.pos v)

let constant_false t =
  match t.false_lit with
  | Some l -> l
  | None ->
    let v = Sat.new_var t.sat in
    Sat.add_clause t.sat [ Sat.Lit.neg v ];
    let l = Sat.Lit.pos v in
    t.false_lit <- Some l;
    l

(* literal for a body atom occurrence: None = unconditionally satisfied *)
let pos_occurrence t id =
  if fact t id then `True
  else match atom_lit t id with Some l -> `Lit l | None -> `False

let neg_occurrence t id =
  if fact t id then `False
  else match atom_lit t id with Some l -> `Lit (Sat.Lit.negate l) | None -> `True

(* Build (or fetch) the indicator literal of a body, with full equivalence. *)
let body_indicator t (b : Ground.body) =
  match Body_tbl.find_opt t.body_cache b with
  | Some r -> r
  | None ->
    let lits = ref [] and impossible = ref false in
    Array.iter
      (fun id ->
        match pos_occurrence t id with
        | `True -> ()
        | `False -> impossible := true
        | `Lit l -> lits := l :: !lits)
      b.pos;
    Array.iter
      (fun id ->
        match neg_occurrence t id with
        | `True -> ()
        | `False -> impossible := true
        | `Lit l -> lits := l :: !lits)
      b.neg;
    let result =
      if !impossible then Some (constant_false t)
      else
        match !lits with
        | [] -> None
        | [ l ] -> Some l
        | lits ->
          let beta = Sat.Lit.pos (Sat.new_var t.sat) in
          List.iter
            (fun l -> Sat.add_clause t.sat [ Sat.Lit.negate beta; l ])
            lits;
          Sat.add_clause t.sat (beta :: List.map Sat.Lit.negate lits);
          Some beta
    in
    Body_tbl.add t.body_cache b result;
    result

let add_support t id s = t.supports.(id) <- s :: t.supports.(id)

let process_rule t = function
  | Ground.Rconstraint b -> (
    (* clause: not all body literals may hold *)
    match body_indicator t b with
    | None -> Sat.add_clause t.sat [] (* body unconditionally true: UNSAT *)
    | Some l -> Sat.add_clause t.sat [ Sat.Lit.negate l ])
  | Ground.Rnormal (h, b) ->
    if not (fact t h) then begin
      let hlit = Option.get (atom_lit t h) in
      let slit = body_indicator t b in
      (match slit with
      | None -> Sat.add_clause t.sat [ hlit ] (* should not happen: grounder makes facts *)
      | Some l -> Sat.add_clause t.sat [ Sat.Lit.negate l; hlit ]);
      add_support t h { s_lit = slit; s_pos = b.pos; s_neg = b.neg; s_choice = false }
    end
  | Ground.Rchoice { lb; ub; heads; cbody } ->
    let slit = body_indicator t cbody in
    let var_heads = ref [] and nfacts = ref 0 in
    Array.iter
      (fun h ->
        if fact t h then incr nfacts
        else begin
          let hl = Option.get (atom_lit t h) in
          var_heads := hl :: !var_heads;
          add_support t h
            { s_lit = slit; s_pos = cbody.pos; s_neg = cbody.neg; s_choice = true }
        end)
      heads;
    let hs = Array.of_list !var_heads in
    let m = Array.length hs in
    let body_false () =
      match slit with
      | None -> Sat.add_clause t.sat []
      | Some l -> Sat.add_clause t.sat [ Sat.Lit.negate l ]
    in
    (match lb with
    | Some lb ->
      let lb = lb - !nfacts in
      if lb > m then body_false ()
      else if lb > 0 then begin
        (* body -> at least lb of hs:  sum(not h) + lb*body <= m *)
        let entries = Array.to_list (Array.map (fun h -> (1, Sat.Lit.negate h)) hs) in
        match slit with
        | None -> Sat.add_pb_le t.sat entries (m - lb)
        | Some l -> Sat.add_pb_le t.sat ((lb, l) :: entries) m
      end
    | None -> ());
    match ub with
    | Some ub ->
      let ub = ub - !nfacts in
      if ub < 0 then body_false ()
      else if ub < m then begin
        (* body -> at most ub of hs:  sum(h) + (m-ub)*body <= m *)
        let entries = Array.to_list (Array.map (fun h -> (1, h)) hs) in
        match slit with
        | None -> Sat.add_pb_le t.sat entries ub
        | Some l -> Sat.add_pb_le t.sat ((m - ub, l) :: entries) m
      end
    | None -> ()

(* Does the positive dependency graph (head -> positive body atoms) have a
   cycle?  Iterative DFS with tri-state colouring. *)
let has_positive_cycle (g : Ground.t) natoms =
  let edges = Array.make natoms [] in
  let add_edges heads (b : Ground.body) =
    if Array.length b.pos > 0 then
      Array.iter (fun h -> edges.(h) <- Array.to_list b.pos @ edges.(h)) heads
  in
  Vec.iter
    (function
      | Ground.Rnormal (h, b) -> add_edges [| h |] b
      | Ground.Rchoice { heads; cbody; _ } -> add_edges heads cbody
      | Ground.Rconstraint _ -> ())
    g.Ground.rules;
  let color = Array.make natoms 0 in
  (* 0 white, 1 on stack, 2 done *)
  let cyclic = ref false in
  let rec visit stack =
    match stack with
    | [] -> ()
    | `Enter v :: rest ->
      if color.(v) = 1 then begin
        cyclic := true;
        visit rest
      end
      else if color.(v) = 2 then visit rest
      else begin
        color.(v) <- 1;
        visit (List.map (fun w -> `Enter w) edges.(v) @ (`Exit v :: rest))
      end
    | `Exit v :: rest ->
      color.(v) <- 2;
      visit rest
  in
  (try
     for v = 0 to natoms - 1 do
       if color.(v) = 0 && not !cyclic then visit [ `Enter v ]
     done
   with Stack_overflow -> cyclic := true);
  !cyclic

let build ~guard_constraints params (g : Ground.t) =
  let natoms = Gatom.Store.count g.Ground.store in
  let sat = Sat.create ~params () in
  let var_of_atom = Array.make natoms (-1) in
  (* allocate variables for every non-fact atom mentioned in the program *)
  let touch id =
    if var_of_atom.(id) < 0 && not (Gatom.Store.is_fact g.Ground.store id) then
      var_of_atom.(id) <- Sat.new_var sat
  in
  let touch_body (b : Ground.body) =
    Array.iter touch b.pos;
    Array.iter touch b.neg
  in
  Vec.iter
    (function
      | Ground.Rnormal (h, b) ->
        touch h;
        touch_body b
      | Ground.Rchoice { heads; cbody; _ } ->
        Array.iter touch heads;
        touch_body cbody
      | Ground.Rconstraint b -> touch_body b)
    g.Ground.rules;
  Vec.iter (fun (m : Ground.min_entry) -> touch_body m.mbody) g.Ground.minimize;
  let t =
    {
      sat;
      ground = g;
      var_of_atom;
      supports = Array.make natoms [];
      tight = true;
      false_lit = None;
      body_cache = Body_tbl.create 256;
    }
  in
  if g.Ground.inconsistent then Sat.add_clause sat [];
  let selectors = ref [] in
  Vec.iteri
    (fun i r ->
      match r with
      | Ground.Rconstraint b when guard_constraints ->
        (* assumable selector: the constraint is enforced only while its
           selector is assumed, so a final conflict under the assumption set
           names the responsible constraint instances *)
        let sel = Sat.Lit.pos (Sat.new_var sat) in
        (match body_indicator t b with
        | None -> Sat.add_clause sat [ Sat.Lit.negate sel ]
        | Some l -> Sat.add_clause sat [ Sat.Lit.negate sel; Sat.Lit.negate l ]);
        selectors := (sel, i) :: !selectors
      | r -> process_rule t r)
    g.Ground.rules;
  (* completion: an atom needs at least one support *)
  Array.iteri
    (fun id v ->
      if v >= 0 then begin
        let hlit = Sat.Lit.pos v in
        let unconditional =
          List.exists (fun s -> s.s_lit = None) t.supports.(id)
        in
        if not unconditional then begin
          let slits = List.filter_map (fun s -> s.s_lit) t.supports.(id) in
          Sat.add_clause sat (Sat.Lit.negate hlit :: slits)
        end
      end)
    var_of_atom;
  let tight = not (has_positive_cycle g natoms) in
  ({ t with tight }, List.rev !selectors)

let translate ?(params = Sat.default_params) (g : Ground.t) =
  fst (build ~guard_constraints:false params g)

let translate_with_selectors ?(params = Sat.default_params) (g : Ground.t) =
  build ~guard_constraints:true params g

let atom_is_true t id =
  if fact t id then true
  else match atom_lit t id with None -> false | Some l -> Sat.value t.sat l

let answer t =
  let acc = ref [] in
  for id = Gatom.Store.count t.ground.Ground.store - 1 downto 0 do
    if atom_is_true t id then acc := Gatom.Store.atom t.ground.Ground.store id :: !acc
  done;
  !acc
