open Lexer

type state = {
  file : string;
  toks : (token * Lexer.pos) array;
  mutable pos : int;
  mutable anon : int;
  consts : (string, Ast.term) Hashtbl.t;  (* #const definitions *)
}

let peek st = fst st.toks.(st.pos)
let advance st = st.pos <- st.pos + 1

let err st msg =
  let p = snd st.toks.(st.pos) in
  Solver_error.parse_error ~src:st.file ~line:p.Lexer.line ~col:p.Lexer.col "%s" msg

let expect st tok =
  if peek st = tok then advance st
  else
    err st
      (Format.asprintf "expected %a but found %a" Lexer.pp_token tok Lexer.pp_token
         (peek st))

let fresh_anon st =
  st.anon <- st.anon + 1;
  Printf.sprintf "_Anon%d" st.anon

(* term := add_expr (".." add_expr)?
   add_expr := mul_expr (("+"|"-") mul_expr)...
   mul_expr := factor (("*"|"/"|"\\") factor)...
   factor := INT | STRING | IDENT | VARIABLE | "(" term ")" | "-" factor *)
let rec parse_interval st =
  let lo = parse_add st in
  if peek st = DOTDOT then begin
    advance st;
    Ast.Interval (lo, parse_add st)
  end
  else lo

and parse_add st =
  let lhs = parse_mul st in
  let rec loop acc =
    match peek st with
    | PLUS ->
      advance st;
      loop (Ast.Binop (Ast.Add, acc, parse_mul st))
    | MINUS ->
      advance st;
      loop (Ast.Binop (Ast.Sub, acc, parse_mul st))
    | _ -> acc
  in
  loop lhs

and parse_mul st =
  let lhs = parse_factor st in
  let rec loop acc =
    match peek st with
    | STAR ->
      advance st;
      loop (Ast.Binop (Ast.Mul, acc, parse_factor st))
    | SLASH ->
      advance st;
      loop (Ast.Binop (Ast.Div, acc, parse_factor st))
    | BACKSLASH ->
      advance st;
      loop (Ast.Binop (Ast.Mod, acc, parse_factor st))
    | _ -> acc
  in
  loop lhs

and parse_factor st =
  match peek st with
  | INT i ->
    advance st;
    Ast.cst_int i
  | STRING s ->
    advance st;
    Ast.cst_str s
  | IDENT s ->
    advance st;
    if peek st = LPAREN then begin
      (* compound term *)
      advance st;
      let rec args acc =
        let t = parse_interval st in
        match peek st with
        | COMMA ->
          advance st;
          args (t :: acc)
        | RPAREN ->
          advance st;
          List.rev (t :: acc)
        | tok ->
          err st (Format.asprintf "expected ',' or ')' but found %a" Lexer.pp_token tok)
      in
      Ast.Fn (s, args [])
    end
    else begin
      match Hashtbl.find_opt st.consts s with
      | Some t -> t (* #const substitution *)
      | None -> Ast.cst_str s
    end
  | VARIABLE v ->
    advance st;
    if v = "_" then Ast.var (fresh_anon st) else Ast.var v
  | LPAREN ->
    advance st;
    let t = parse_interval st in
    expect st RPAREN;
    t
  | MINUS ->
    advance st;
    Ast.Binop (Ast.Sub, Ast.cst_int 0, parse_factor st)
  | t -> err st (Format.asprintf "expected a term but found %a" Lexer.pp_token t)

let parse_term_ast st = parse_interval st

let parse_atom st =
  match peek st with
  | IDENT pred ->
    advance st;
    if peek st = LPAREN then begin
      advance st;
      let rec args acc =
        let t = parse_term_ast st in
        match peek st with
        | COMMA ->
          advance st;
          args (t :: acc)
        | RPAREN ->
          advance st;
          List.rev (t :: acc)
        | tok -> err st (Format.asprintf "expected ',' or ')' but found %a" Lexer.pp_token tok)
      in
      Ast.atom pred (args [])
    end
    else Ast.atom pred []
  | t -> err st (Format.asprintf "expected an atom but found %a" Lexer.pp_token t)

let cmp_of_token = function
  | EQ -> Some Ast.Eq
  | NE -> Some Ast.Ne
  | LT -> Some Ast.Lt
  | LE -> Some Ast.Le
  | GT -> Some Ast.Gt
  | GE -> Some Ast.Ge
  | _ -> None

(* A "simple" body literal: positive/negative atom or comparison, without the
   trailing conditional part. *)
let parse_simple_lit st =
  match peek st with
  | NOT ->
    advance st;
    Ast.Neg (parse_atom st)
  | IDENT _ -> (
    (* could be an atom or the lhs of a comparison (a 0-ary constant) *)
    let a = parse_atom st in
    match cmp_of_token (peek st) with
    | Some c when a.Ast.args = [] ->
      advance st;
      Ast.Cmp (c, Ast.cst_str a.Ast.pred, parse_term_ast st)
    | _ -> Ast.Pos a)
  | _ -> (
    let t = parse_term_ast st in
    match cmp_of_token (peek st) with
    | Some c ->
      advance st;
      Ast.Cmp (c, t, parse_term_ast st)
    | None -> err st "expected a comparison operator")

(* Conditions after ':' extend until ';', '.', ':-', '}' or ']'. They are
   comma-separated. *)
let parse_conditions st =
  let rec loop acc =
    let l = parse_simple_lit st in
    match peek st with
    | COMMA ->
      advance st;
      loop (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  loop []

let parse_body_lit st =
  let l = parse_simple_lit st in
  if peek st = COLON then begin
    advance st;
    let conds = parse_conditions st in
    let conds =
      List.map
        (function
          | Ast.Pos a -> a
          | _ -> err st "conditions of a conditional literal must be positive atoms")
        conds
    in
    match l with
    | Ast.Pos a -> Ast.Forall (a, conds)
    | _ -> err st "only positive atoms can carry a condition in a rule body"
  end
  else l

(* body := body_lit ((','|';') body_lit)* *)
let parse_body st =
  let rec loop acc =
    let l = parse_body_lit st in
    match peek st with
    | COMMA | SEMI ->
      advance st;
      loop (l :: acc)
    | _ -> List.rev (l :: acc)
  in
  loop []

let parse_choice_elem st =
  let a = parse_atom st in
  if peek st = COLON then begin
    advance st;
    let guard = parse_conditions st in
    { Ast.elem = a; guard }
  end
  else { Ast.elem = a; guard = [] }

let parse_choice st ~lb =
  expect st LBRACE;
  let rec elems acc =
    if peek st = RBRACE then List.rev acc
    else
      let e = parse_choice_elem st in
      match peek st with
      | SEMI ->
        advance st;
        elems (e :: acc)
      | RBRACE -> List.rev (e :: acc)
      | tok -> err st (Format.asprintf "expected ';' or '}' but found %a" Lexer.pp_token tok)
  in
  let elems = elems [] in
  expect st RBRACE;
  let ub =
    match peek st with
    | INT _ | VARIABLE _ | LPAREN -> Some (parse_term_ast st)
    | _ -> None
  in
  Ast.Head_choice { lb; ub; elems }

let parse_head st =
  match peek st with
  | LBRACE -> parse_choice st ~lb:None
  | INT _ | VARIABLE _ | LPAREN ->
    (* a head can only start with a term when it is a choice bound *)
    let lb = parse_term_ast st in
    parse_choice st ~lb:(Some lb)
  | _ -> Ast.Head_atom (parse_atom st)

let parse_min_elem st ~negate =
  let weight = parse_term_ast st in
  let priority =
    if peek st = AT then begin
      advance st;
      parse_term_ast st
    end
    else Ast.cst_int 0
  in
  let rec tuple acc =
    if peek st = COMMA then begin
      advance st;
      tuple (parse_term_ast st :: acc)
    end
    else List.rev acc
  in
  let tuple = tuple [] in
  let guard = if peek st = COLON then (advance st; parse_conditions st) else [] in
  let weight = if negate then Ast.Binop (Ast.Sub, Ast.cst_int 0, weight) else weight in
  { Ast.weight; priority; tuple; guard }

let parse_minimize st ~negate =
  expect st LBRACE;
  let rec elems acc =
    if peek st = RBRACE then List.rev acc
    else
      let e = parse_min_elem st ~negate in
      match peek st with
      | SEMI ->
        advance st;
        elems (e :: acc)
      | RBRACE -> List.rev (e :: acc)
      | tok -> err st (Format.asprintf "expected ';' or '}' but found %a" Lexer.pp_token tok)
  in
  let elems = elems [] in
  expect st RBRACE;
  expect st DOT;
  Ast.Minimize elems

(* [None] for pure directives (#const) that produce no statement *)
let parse_statement st =
  let line = (snd st.toks.(st.pos)).Lexer.line in
  match peek st with
  | MINIMIZE ->
    advance st;
    Some (parse_minimize st ~negate:false)
  | MAXIMIZE ->
    advance st;
    Some (parse_minimize st ~negate:true)
  | SHOW -> (
    advance st;
    match peek st with
    | DOT ->
      advance st;
      Some (Ast.Show None)
    | IDENT p -> (
      advance st;
      expect st SLASH;
      match peek st with
      | INT n ->
        advance st;
        expect st DOT;
        Some (Ast.Show (Some (p, n)))
      | tok -> err st (Format.asprintf "expected an arity but found %a" Lexer.pp_token tok))
    | tok ->
      err st (Format.asprintf "expected '.' or a predicate signature but found %a"
                Lexer.pp_token tok))
  | CONST -> (
    advance st;
    match peek st with
    | IDENT name -> (
      advance st;
      expect st EQ;
      let t = parse_term_ast st in
      expect st DOT;
      match t with
      | Ast.Cst _ ->
        Hashtbl.replace st.consts name t;
        None
      | _ -> err st "#const requires a ground value")
    | tok -> err st (Format.asprintf "expected a name after #const but found %a" Lexer.pp_token tok))
  | IF ->
    advance st;
    let body = parse_body st in
    expect st DOT;
    Some (Ast.Rule { head = Ast.Head_none; body; line })
  | _ ->
    let head = parse_head st in
    let body =
      if peek st = IF then begin
        advance st;
        parse_body st
      end
      else []
    in
    expect st DOT;
    Some (Ast.Rule { head; body; line })

let parse ?(file = "<program>") src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { file; toks; pos = 0; anon = 0; consts = Hashtbl.create 8 } in
  let rec loop acc =
    if peek st = EOF then List.rev acc
    else
      match parse_statement st with
      | Some stmt -> loop (stmt :: acc)
      | None -> loop acc
  in
  loop []

let parse_term ?(file = "<term>") src =
  let toks = Array.of_list (Lexer.tokenize ~file src) in
  let st = { file; toks; pos = 0; anon = 0; consts = Hashtbl.create 8 } in
  let rec ground = function
    | Ast.Cst c -> c
    | Ast.Fn (f, args) -> Term.fun_ f (List.map ground args)
    | _ -> err st "expected a single ground constant"
  in
  match parse_term_ast st with
  | t when peek st = EOF -> ground t
  | _ -> err st "expected a single ground constant"
