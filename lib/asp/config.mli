(** clingo-style solver configuration presets.

    clingo ships six presets ([frumpy], [jumpy], [tweety], [trendy],
    [crafty], [handy]) that differ in low-level search parameters — decision
    heuristic decay, restart schedule, clause-deletion policy — but not in
    grounding (the paper observes identical ground times across presets,
    which holds here by construction).  The paper benchmarks [tweety]
    (typical ASP programs), [trendy] (industrial) and [handy] (large
    problems) and picks [tweety] as Spack's default. *)

type preset = Frumpy | Jumpy | Tweety | Trendy | Crafty | Handy

type strategy =
  | Bb  (** model-guided branch-and-bound descent *)
  | Usc  (** unsatisfiable-core-guided (clasp's [usc,one]) *)

type t = {
  preset : preset;
  strategy : strategy;
  limits : Budget.limits;  (** resource budget armed per solve *)
  verify : bool;
      (** independently re-check every returned model with {!Verify}
          (default [true]; a cheap O(ground-program) pass) *)
}

val default : t
(** [tweety] with [usc], no limits and verification on, the configuration
    the paper settles on. *)

val make :
  ?preset:preset ->
  ?strategy:strategy ->
  ?limits:Budget.limits ->
  ?verify:bool ->
  unit ->
  t
val params : preset -> Sat.params
val strategy_name : strategy -> string
val preset_name : preset -> string
val preset_of_name : string -> preset option
val all_presets : preset list
