(* Self-contained CUDF semantics, written directly against Doc — no ASP,
   no sets, no sharing with Encode/Logic beyond the Doc helpers — so the
   differential tests compare two independent implementations. *)

let selected_list (doc : Doc.t) sel =
  List.filteri (fun i _ -> sel.(i)) doc.Doc.packages

let sat_by_selected (doc : Doc.t) sel vp =
  List.exists (fun q -> Doc.satisfies q vp) (selected_list doc sel)

let valid (doc : Doc.t) sel =
  let pkgs = Array.of_list doc.Doc.packages in
  let selected = selected_list doc sel in
  let sat vp = sat_by_selected doc sel vp in
  let clause_hit cl = List.exists sat cl in
  let real_versions n =
    List.filter_map
      (fun (q : Doc.package) ->
        if String.equal q.Doc.name n then Some q.Doc.version else None)
      selected
  in
  (* depends *)
  List.for_all
    (fun (p : Doc.package) -> List.for_all clause_hit p.Doc.depends)
    selected
  (* conflicts, with CUDF's self-exemption *)
  && List.for_all
       (fun (p : Doc.package) ->
         List.for_all
           (fun vp ->
             List.for_all
               (fun (q : Doc.package) ->
                 (not (Doc.satisfies q vp))
                 || (String.equal q.Doc.name p.Doc.name
                    && q.Doc.version = p.Doc.version))
               selected)
           p.Doc.conflicts)
       selected
  (* request *)
  && List.for_all sat doc.Doc.request.Doc.install
  && List.for_all (fun vp -> not (sat vp)) doc.Doc.request.Doc.remove
  && List.for_all
       (fun (vp : Doc.vpkg) ->
         sat vp
         &&
         let vs = real_versions vp.Doc.vname in
         let max_installed =
           Array.fold_left
             (fun m (q : Doc.package) ->
               if q.Doc.installed && String.equal q.Doc.name vp.Doc.vname then
                 max m q.Doc.version
               else m)
             0 pkgs
         in
         match vs with [ v ] -> v >= max_installed | _ -> false)
       doc.Doc.request.Doc.upgrade
  (* keep flags of installed stanzas *)
  && Array.for_all
       (fun (p : Doc.package) ->
         (not p.Doc.installed)
         ||
         match p.Doc.keep with
         | Doc.Knone -> true
         | Doc.Kversion ->
           List.exists
             (fun (q : Doc.package) ->
               String.equal q.Doc.name p.Doc.name && q.Doc.version = p.Doc.version)
             selected
         | Doc.Kpackage -> real_versions p.Doc.name <> []
         | Doc.Kfeature ->
           List.for_all
             (fun (f, _) -> sat { Doc.vname = f; Doc.vconstr = None })
             p.Doc.provides)
       pkgs

let costs ~(stack : Criteria.stack) (doc : Doc.t) sel =
  let selected = selected_list doc sel in
  let names xs =
    let seen = Hashtbl.create 16 in
    List.iter (fun n -> Hashtbl.replace seen n ()) xs;
    seen
  in
  let installed = Doc.installed_pairs doc in
  let installed_names = names (List.map fst installed) in
  let selected_names =
    names (List.map (fun (q : Doc.package) -> q.Doc.name) selected)
  in
  let count_names pred tbl =
    Hashtbl.fold (fun n () acc -> if pred n then acc + 1 else acc) tbl 0
  in
  let has tbl n = Hashtbl.mem tbl n in
  let is_selected n v =
    List.exists
      (fun (q : Doc.package) -> String.equal q.Doc.name n && q.Doc.version = v)
      selected
  in
  match stack with
  | Criteria.Paranoid ->
    let removed = count_names (fun n -> not (has selected_names n)) installed_names in
    let changed_names = Hashtbl.create 16 in
    List.iter
      (fun (q : Doc.package) ->
        if not (List.mem (q.Doc.name, q.Doc.version) installed) then
          Hashtbl.replace changed_names q.Doc.name ())
      selected;
    List.iter
      (fun (n, v) -> if not (is_selected n v) then Hashtbl.replace changed_names n ())
      installed;
    [ (20, removed); (19, Hashtbl.length changed_names) ]
  | Criteria.Trendy ->
    let newest = Hashtbl.create 16 in
    List.iter
      (fun (q : Doc.package) ->
        let cur = try Hashtbl.find newest q.Doc.name with Not_found -> 0 in
        if q.Doc.version > cur then Hashtbl.replace newest q.Doc.name q.Doc.version)
      doc.Doc.packages;
    let outdated =
      count_names
        (fun n -> not (is_selected n (Hashtbl.find newest n)))
        selected_names
    in
    let new_pkgs = count_names (fun n -> not (has installed_names n)) selected_names in
    let rec_unmet =
      List.fold_left
        (fun acc (q : Doc.package) ->
          List.fold_left
            (fun acc cl ->
              if List.exists (fun vp -> sat_by_selected doc sel vp) cl then acc
              else acc + 1)
            acc q.Doc.recommends)
        0 selected
    in
    [ (20, outdated); (19, new_pkgs); (18, rec_unmet) ]

(* lexicographic comparison along descending priorities *)
let better a b =
  let rec go = function
    | [], [] -> false
    | (_, va) :: ra, (_, vb) :: rb ->
      if va < vb then true else if va > vb then false else go (ra, rb)
    | _ -> invalid_arg "Reference.better: shape mismatch"
  in
  go (a, b)

let best ~stack (doc : Doc.t) =
  let n = List.length doc.Doc.packages in
  if n > 20 then invalid_arg "Reference.best: more than 20 stanzas";
  let sel = Array.make n false in
  let best = ref None in
  let rec go i =
    if i = n then begin
      if valid doc sel then begin
        let c = costs ~stack doc sel in
        match !best with
        | Some (bc, _) when not (better c bc) -> ()
        | _ ->
          let state =
            List.sort compare
              (List.map
                 (fun (q : Doc.package) -> (q.Doc.name, q.Doc.version))
                 (selected_list doc sel))
          in
          best := Some (c, state)
      end
    end
    else begin
      sel.(i) <- false;
      go (i + 1);
      sel.(i) <- true;
      go (i + 1);
      sel.(i) <- false
    end
  in
  go 0;
  !best

let valid_state (doc : Doc.t) (state : (string * int) list) =
  let sel =
    Array.of_list
      (List.map
         (fun (q : Doc.package) -> List.mem (q.Doc.name, q.Doc.version) state)
         doc.Doc.packages)
  in
  valid doc sel

let costs_of_state ~stack (doc : Doc.t) (state : (string * int) list) =
  let sel =
    Array.of_list
      (List.map
         (fun (q : Doc.package) -> List.mem (q.Doc.name, q.Doc.version) state)
         doc.Doc.packages)
  in
  costs ~stack doc sel
