module Gen = Concretize.Facts.Gen

type mode = [ `Stream | `Materialize ]

type t = {
  statements : Asp.Ast.statement list;
  n_facts : int;
  n_packages : int;
  n_sets : int;
  cond_origins : (int * string) list;
  installed_stream : ((Asp.Gatom.t -> unit) -> unit) option;
}

let str = Asp.Term.str
let int = Asp.Term.int

(* Satisfier-set keys.  [Vp] is the general constraint (provides included);
   [Exact]/[Name] are the narrower sets keep flags need — keep is about the
   stanza itself staying installed, not about its name staying satisfiable
   through some provider. *)
type skey =
  | Vp of string * (Doc.relop * int) option
  | Exact of string * int
  | Name of string

let generate ?(installed_mode = `Stream) (doc : Doc.t) : t =
  let g = Gen.create () in
  (* name / feature indexes *)
  let by_name : (string, Doc.package list ref) Hashtbl.t = Hashtbl.create 256 in
  let by_feature : (string, Doc.package list ref) Hashtbl.t = Hashtbl.create 64 in
  let push tbl k v =
    match Hashtbl.find_opt tbl k with
    | Some r -> r := v :: !r
    | None -> Hashtbl.add tbl k (ref [ v ])
  in
  List.iter
    (fun (p : Doc.package) ->
      push by_name p.Doc.name p;
      List.iter (fun (f, _) -> push by_feature f p) p.Doc.provides)
    doc.Doc.packages;
  let versions_of n =
    match Hashtbl.find_opt by_name n with Some r -> !r | None -> []
  in
  let offers_of n =
    versions_of n
    @ (match Hashtbl.find_opt by_feature n with Some r -> !r | None -> [])
  in
  (* the universe *)
  List.iter
    (fun (p : Doc.package) ->
      Gen.fact g "cudf_package" [ str p.Doc.name; int p.Doc.version ])
    doc.Doc.packages;
  Hashtbl.iter
    (fun n versions ->
      let newest =
        List.fold_left (fun m (q : Doc.package) -> max m q.Doc.version) 0 !versions
      in
      Gen.fact g "newest" [ str n; int newest ])
    by_name;
  (* interned satisfier sets *)
  let sets : (skey, int) Hashtbl.t = Hashtbl.create 256 in
  let n_sets = ref 0 in
  let intern key =
    match Hashtbl.find_opt sets key with
    | Some s -> s
    | None ->
      let s = !n_sets in
      incr n_sets;
      Hashtbl.add sets key s;
      let members =
        match key with
        | Exact (n, v) ->
          List.filter (fun (q : Doc.package) -> q.Doc.version = v) (versions_of n)
        | Name n -> versions_of n
        | Vp (n, c) ->
          let vp = { Doc.vname = n; Doc.vconstr = c } in
          List.filter (fun q -> Doc.satisfies q vp) (offers_of n)
      in
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (q : Doc.package) ->
          if not (Hashtbl.mem seen (q.Doc.name, q.Doc.version)) then begin
            Hashtbl.add seen (q.Doc.name, q.Doc.version) ();
            Gen.fact g "sat" [ int s; str q.Doc.name; int q.Doc.version ]
          end)
        members;
      s
  in
  let intern_vp (vp : Doc.vpkg) = intern (Vp (vp.Doc.vname, vp.Doc.vconstr)) in
  (* clause ids are shared between depends and recommends (clause_hit) *)
  let next_clause = ref 0 in
  let emit_clause cl =
    let c = !next_clause in
    incr next_clause;
    List.iter (fun vp -> Gen.fact g "clause_lit" [ int c; int (intern_vp vp) ]) cl;
    c
  in
  (* a condition triggered by the stanza being installed *)
  let stanza_condition (p : Doc.package) desc =
    let id = Gen.new_condition g in
    Gen.require g id "in" [ str p.Doc.name; int p.Doc.version ];
    Gen.describe g id desc;
    id
  in
  (* an unconditional (request/keep) condition *)
  let free_condition desc =
    let id = Gen.new_condition g in
    Gen.describe g id desc;
    id
  in
  List.iter
    (fun (p : Doc.package) ->
      let pv = Printf.sprintf "%s=%d" p.Doc.name p.Doc.version in
      List.iter
        (fun cl ->
          let id =
            stanza_condition p
              (Printf.sprintf "%s depends on %s" pv (Doc.clause_to_string cl))
          in
          Gen.fact g "depends_clause" [ int id; int (emit_clause cl) ])
        p.Doc.depends;
      List.iter
        (fun vp ->
          let id =
            stanza_condition p
              (Printf.sprintf "package %s conflicts with %s" pv
                 (Doc.vpkg_to_string vp))
          in
          Gen.fact g "conflict_owner" [ int id; str p.Doc.name; int p.Doc.version ];
          Gen.fact g "conflict_set" [ int id; int (intern_vp vp) ])
        p.Doc.conflicts;
      List.iter
        (fun cl ->
          let c = emit_clause cl in
          Gen.fact g "rec_owner" [ int c; str p.Doc.name; int p.Doc.version ])
        p.Doc.recommends;
      if p.Doc.installed then begin
        match p.Doc.keep with
        | Doc.Knone -> ()
        | Doc.Kversion ->
          let id =
            free_condition (Printf.sprintf "%s is installed with keep: version" pv)
          in
          Gen.fact g "require_set"
            [ int id; int (intern (Exact (p.Doc.name, p.Doc.version))) ]
        | Doc.Kpackage ->
          let id =
            free_condition (Printf.sprintf "%s is installed with keep: package" pv)
          in
          Gen.fact g "require_set" [ int id; int (intern (Name p.Doc.name)) ]
        | Doc.Kfeature ->
          List.iter
            (fun (f, _) ->
              let id =
                free_condition
                  (Printf.sprintf "%s is installed with keep: feature (provides %s)"
                     pv f)
              in
              Gen.fact g "require_set" [ int id; int (intern (Vp (f, None))) ])
            p.Doc.provides
      end)
    doc.Doc.packages;
  (* the request *)
  let r = doc.Doc.request in
  List.iter
    (fun vp ->
      let id =
        free_condition
          (Printf.sprintf "the request asks to install %s" (Doc.vpkg_to_string vp))
      in
      Gen.fact g "require_set" [ int id; int (intern_vp vp) ])
    r.Doc.install;
  List.iter
    (fun vp ->
      let id =
        free_condition
          (Printf.sprintf "the request asks to upgrade %s" (Doc.vpkg_to_string vp))
      in
      Gen.fact g "require_set" [ int id; int (intern_vp vp) ];
      Gen.fact g "upgrade_name" [ str vp.Doc.vname ];
      let max_installed =
        List.fold_left
          (fun m (q : Doc.package) ->
            if q.Doc.installed then max m q.Doc.version else m)
          0
          (versions_of vp.Doc.vname)
      in
      List.iter
        (fun (q : Doc.package) ->
          if q.Doc.version < max_installed then
            Gen.fact g "upgrade_forbidden" [ str q.Doc.name; int q.Doc.version ])
        (versions_of vp.Doc.vname))
    r.Doc.upgrade;
  List.iter
    (fun vp ->
      let id =
        free_condition
          (Printf.sprintf "the request asks to remove %s" (Doc.vpkg_to_string vp))
      in
      Gen.fact g "forbid_set" [ int id; int (intern_vp vp) ])
    r.Doc.remove;
  (* Installed-state facts come last: statement order and streamed seeding
     order coincide, so both modes intern atoms identically (the E4S
     pattern, Facts.reuse_mode). *)
  let installed = Doc.installed_pairs doc in
  let names =
    let seen = Hashtbl.create 64 in
    List.filter_map
      (fun (n, _) ->
        if Hashtbl.mem seen n then None
        else begin
          Hashtbl.add seen n ();
          Some n
        end)
      installed
  in
  let installed_stream =
    match installed_mode with
    | `Materialize ->
      List.iter (fun (n, v) -> Gen.fact g "was_installed" [ str n; int v ]) installed;
      List.iter (fun n -> Gen.fact g "was_installed_name" [ str n ]) names;
      None
    | `Stream ->
      if installed = [] then None
      else begin
        Gen.bump g (List.length installed + List.length names);
        Some
          (fun sink ->
            List.iter
              (fun (n, v) ->
                sink (Asp.Gatom.make "was_installed" [ str n; int v ]))
              installed;
            List.iter
              (fun n -> sink (Asp.Gatom.make "was_installed_name" [ str n ]))
              names)
      end
  in
  {
    statements = Gen.statements g;
    n_facts = Gen.n_facts g;
    n_packages = List.length doc.Doc.packages;
    n_sets = !n_sets;
    cond_origins = Gen.origins g;
    installed_stream;
  }
