(* Deterministic Debian-like universes.

   Shape: tall version columns (a 10% slice of names carries up to ~20
   versions), a universal "conflicts: ownname" self-conflict (the
   single-version discipline of real distributions), virtual features with
   dense provider cliques (every provider conflicts with the feature it
   provides — the mail-transport-agent idiom — so providers of one virtual
   are mutually exclusive), and CNF dependencies over names and virtuals.

   Satisfiability by construction: names are partitioned into providers
   (reachable only through their virtual), leaves (reachable by nothing —
   keep flags and remove requests are confined here) and free names
   (dependency targets).  Every depends clause leads with a literal
   satisfied by the newest version of a free name or by any provider of a
   virtual, so {newest of every free name} ∪ {one provider per virtual} ∪
   {kept leaves} is always a witness — the generator can emit dense
   conflict structure at 10k+ stanzas and still guarantee the benchmark
   asserts a proven optimum.  The installed state carries deliberate
   breakage (old versions, co-installed rival providers): fixing it is the
   solver's job, not the generator's. *)

let universe ?(seed = 0) ~n () =
  let rng = Random.State.make [| 0x0cdf; seed; n |] in
  let int_in lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let flip p = Random.State.float rng 1.0 < p in
  (* names and their version-column heights, trimmed to exactly [n] stanzas *)
  let nnames = max 6 (n / 3) in
  let heights =
    Array.init nnames (fun _ -> if flip 0.10 then int_in 8 20 else int_in 1 5)
  in
  let total = Array.fold_left ( + ) 0 heights in
  let total = ref total in
  let i = ref 0 in
  while !total <> n do
    let k = !i mod nnames in
    if !total > n && heights.(k) > 1 then begin
      heights.(k) <- heights.(k) - 1;
      decr total
    end
    else if !total < n then begin
      heights.(k) <- heights.(k) + 1;
      incr total
    end;
    incr i
  done;
  let name k = Printf.sprintf "pkg%05d" k in
  (* pools: [0, n_prov) providers, [n_prov, n_prov + n_leaf) leaves, rest free *)
  let n_prov = max 2 (nnames * 12 / 100) in
  let n_leaf = max 2 (nnames * 18 / 100) in
  let n_virt = max 1 (n_prov / 4) in
  let virt j = Printf.sprintf "virt%03d" j in
  let virt_of_provider k = k mod n_virt in
  let is_provider k = k < n_prov in
  let is_leaf k = k >= n_prov && k < n_prov + n_leaf in
  let free_names =
    Array.init (nnames - n_prov - n_leaf) (fun i -> n_prov + n_leaf + i)
  in
  (* dependency targets follow a power law (everything depends on libc):
     squaring the uniform draw concentrates ~75% of edges on the first
     quarter of the pool, keeping dependency closures small and heavily
     overlapping like a real distribution's *)
  let pick_free () =
    let u = Random.State.float rng 1.0 in
    free_names.(int_of_float (u *. u *. float_of_int (Array.length free_names)))
  in
  (* installed state: ~35% of names carry one installed version (old when
     the column allows, so paranoid and trendy pull in different
     directions); leaves sometimes pin it with keep *)
  let installed_version = Array.make nnames 0 in
  Array.iteri
    (fun k h ->
      if flip 0.35 then
        installed_version.(k) <- (if h > 1 then int_in 1 (h - 1) else 1))
    heights;
  let keep_of = Array.make nnames Doc.Knone in
  Array.iteri
    (fun k v ->
      if v > 0 && is_leaf k then begin
        if flip 0.2 then keep_of.(k) <- Doc.Kversion
        else if flip 0.12 then keep_of.(k) <- Doc.Kpackage
      end)
    installed_version;
  (* Installed stanzas draw their dependencies from other installed free
     names, with constraints satisfied by the installed version and by any
     upgrade of it (None, or Geq at/below the installed version) — the
     installed state is dependency-closed modulo provider rivalry, like a
     real distribution, so the optimal repair is a small delta around the
     request rather than a rebuild of the world. *)
  let installed_free =
    Array.to_list free_names |> List.filter (fun k -> installed_version.(k) > 0)
  in
  let coherent_clause self =
    let cands =
      List.filter (fun k -> not (String.equal (name k) self)) installed_free
    in
    match cands with
    | [] -> None
    | _ ->
      let t = List.nth cands (Random.State.int rng (List.length cands)) in
      let c =
        if flip 0.6 then None else Some (Doc.Geq, int_in 1 installed_version.(t))
      in
      Some [ { Doc.vname = name t; Doc.vconstr = c } ]
  in
  (* a dependency literal always satisfiable at the target's newest version *)
  let safe_literal () =
    if flip 0.25 then { Doc.vname = virt (Random.State.int rng n_virt); Doc.vconstr = None }
    else begin
      let t = pick_free () in
      let c =
        if flip 0.5 then None
        else if flip 0.8 then Some (Doc.Geq, int_in 1 heights.(t))
        else Some (Doc.Eq, heights.(t))
      in
      { Doc.vname = name t; Doc.vconstr = c }
    end
  in
  (* extra literals may be anything, satisfiable or not *)
  let wild_literal () =
    let t = Random.State.int rng nnames in
    let c =
      match int_in 0 4 with
      | 0 -> None
      | 1 -> Some (Doc.Geq, int_in 1 (heights.(t) + 2))
      | 2 -> Some (Doc.Lt, int_in 1 (heights.(t) + 1))
      | 3 -> Some (Doc.Eq, int_in 1 (heights.(t) + 1))
      | _ -> Some (Doc.Neq, int_in 1 heights.(t))
    in
    { Doc.vname = name t; Doc.vconstr = c }
  in
  let clause self =
    (* most clauses of uninstalled stanzas also resolve inside the
       installed world (a new release mostly depends on what is already
       there) — without this, the all-newest world trendy reaches for
       drags in a large fresh closure and proving the minimum number of
       new packages becomes an intractable covering problem *)
    match if flip 0.75 then coherent_clause self else None with
    | Some cl -> cl
    | None ->
      let lead = ref (safe_literal ()) in
      while String.equal !lead.Doc.vname self do
        lead := safe_literal ()
      done;
      let extras =
        List.init (int_in 0 1) (fun _ -> wild_literal ())
        |> List.filter
             (fun (vp : Doc.vpkg) -> not (String.equal vp.Doc.vname self))
      in
      !lead :: extras
  in
  let packages =
    List.concat
      (List.init nnames (fun k ->
           let pname = name k in
           List.init heights.(k) (fun vi ->
               let v = vi + 1 in
               let depends =
                 if installed_version.(k) = v then
                   List.filter_map
                     (fun _ -> coherent_clause pname)
                     (List.init (int_in 0 2) Fun.id)
                 else List.init (int_in 0 3) (fun _ -> clause pname)
               in
               let conflicts =
                 { Doc.vname = pname; Doc.vconstr = None }
                 ::
                 (if is_provider k then
                    [ { Doc.vname = virt (virt_of_provider k); Doc.vconstr = None } ]
                  else [])
               in
               let provides =
                 if is_provider k then
                   [
                     ( virt (virt_of_provider k),
                       if flip 0.3 then Some v else None );
                   ]
                 else []
               in
               let recommends =
                 (* only non-newest stanzas carry recommends, and each is
                    either resolvable in place or names a release that
                    never shipped (unsatisfiable by propagation).
                    Recommends on the all-newest frontier that are
                    satisfiable only at the price of extra packages couple
                    level 18 with the fixed new-package bound of level 19
                    into a joint covering problem that stops scaling past
                    a few thousand stanzas. *)
                 if v < heights.(k) && flip 0.3 then
                   match
                     if flip 0.75 then coherent_clause pname else None
                   with
                   | Some cl -> [ cl ]
                   | None ->
                     let t = Random.State.int rng nnames in
                     [ [ { Doc.vname = name t;
                           Doc.vconstr = Some (Doc.Gt, heights.(t) + 5) } ] ]
                 else []
               in
               {
                 Doc.name = pname;
                 version = v;
                 depends;
                 conflicts;
                 provides;
                 recommends;
                 installed = installed_version.(k) = v;
                 keep = (if installed_version.(k) = v then keep_of.(k) else Doc.Knone);
               })))
  in
  (* request: installs and upgrades over free names, removes over unkept
     installed leaves *)
  let install =
    List.init (int_in 2 4) (fun _ ->
        let t = pick_free () in
        let c = if flip 0.5 then None else Some (Doc.Geq, int_in 1 heights.(t)) in
        { Doc.vname = name t; Doc.vconstr = c })
  in
  let upgrade =
    let cands =
      Array.to_list free_names
      |> List.filter (fun k -> installed_version.(k) > 0)
    in
    List.filteri (fun i _ -> i < int_in 1 3) cands
    |> List.map (fun k -> { Doc.vname = name k; Doc.vconstr = None })
  in
  let remove =
    let cands =
      List.init nnames Fun.id
      |> List.filter (fun k ->
             is_leaf k && installed_version.(k) > 0 && keep_of.(k) = Doc.Knone)
    in
    List.filteri (fun i _ -> i < int_in 1 2) cands
    |> List.map (fun k -> { Doc.vname = name k; Doc.vconstr = None })
  in
  {
    Doc.packages;
    request = { Doc.req_id = Printf.sprintf "synth-%d-%d" n seed; install; upgrade; remove };
  }

(* Tiny chaotic universes for the differential tests: no satisfiability
   guarantee (UNSAT agreement is part of what the tests check), every
   feature exercised. *)
let small ?(seed = 0) () =
  let rng = Random.State.make [| 0x5a11; seed |] in
  let int_in lo hi = lo + Random.State.int rng (hi - lo + 1) in
  let flip p = Random.State.float rng 1.0 < p in
  let nnames = int_in 3 4 in
  let name k = String.make 1 (Char.chr (Char.code 'a' + k)) in
  let heights = Array.init nnames (fun _ -> int_in 1 3) in
  let any_vp () =
    let t = Random.State.int rng nnames in
    let c =
      match int_in 0 5 with
      | 0 | 1 -> None
      | 2 -> Some (Doc.Geq, int_in 1 (heights.(t) + 1))
      | 3 -> Some (Doc.Lt, int_in 1 (heights.(t) + 1))
      | 4 -> Some (Doc.Eq, int_in 1 (heights.(t) + 1))
      | _ -> Some (Doc.Neq, int_in 1 heights.(t))
    in
    { Doc.vname = name t; Doc.vconstr = c }
  in
  let packages =
    List.concat
      (List.init nnames (fun k ->
           List.init heights.(k) (fun vi ->
               let v = vi + 1 in
               let depends =
                 if flip 0.55 then
                   [ List.init (int_in 1 2) (fun _ -> any_vp ()) ]
                 else []
               in
               let conflicts = if flip 0.3 then [ any_vp () ] else [] in
               let provides =
                 if flip 0.2 then
                   [ ("virt", if flip 0.5 then Some v else None) ]
                 else []
               in
               let recommends = if flip 0.2 then [ [ any_vp () ] ] else [] in
               let installed = flip 0.4 in
               {
                 Doc.name = name k;
                 version = v;
                 depends;
                 conflicts;
                 provides;
                 recommends;
                 installed;
                 keep =
                   (if installed && flip 0.15 then
                      if flip 0.5 then Doc.Kversion else Doc.Kpackage
                    else Doc.Knone);
               })))
  in
  let vps n = List.init n (fun _ -> any_vp ()) in
  let request =
    {
      Doc.req_id = Printf.sprintf "small-%d" seed;
      install = vps (int_in 0 2);
      upgrade =
        (if flip 0.35 then [ { Doc.vname = name (Random.State.int rng nnames); Doc.vconstr = None } ]
         else []);
      remove = (if flip 0.35 then vps 1 else []);
    }
  in
  { Doc.packages; request }
