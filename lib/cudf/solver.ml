type phases = {
  setup_time : float;
  load_time : float;
  ground_time : float;
  solve_time : float;
}

let total p = p.setup_time +. p.load_time +. p.ground_time +. p.solve_time

type solution = {
  state : (string * int) list;
  removed : string list;
  installed_new : string list;
  changed : string list;
  costs : (int * int) list;
  quality : Asp.Optimize.quality;
  verified : bool;
  phases : phases;
  n_facts : int;
  n_packages : int;
  n_sets : int;
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
}

type result =
  | Solution of solution
  | Unsatisfiable of { reasons : string list; phases : phases; n_facts : int }
  | Interrupted of { info : Asp.Budget.info; phases : phases; n_facts : int }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Cheap syntactic diagnosis — the fallback when unsat-core extraction is
   off or out of budget (mirrors Diagnose.explain for Spack). *)
let heuristic_reasons (doc : Doc.t) =
  let reasons = ref [] in
  let say fmt = Printf.ksprintf (fun s -> reasons := s :: !reasons) fmt in
  let satisfiable vp = List.exists (fun p -> Doc.satisfies p vp) doc.Doc.packages in
  let check_known what vp =
    if not (satisfiable vp) then
      if
        List.exists
          (fun (p : Doc.package) ->
            String.equal p.Doc.name vp.Doc.vname
            || List.exists (fun (f, _) -> String.equal f vp.Doc.vname) p.Doc.provides)
          doc.Doc.packages
      then
        say "no version in the universe satisfies the request to %s %s" what
          (Doc.vpkg_to_string vp)
      else say "the request asks to %s unknown package %s" what vp.Doc.vname
  in
  List.iter (check_known "install") doc.Doc.request.Doc.install;
  List.iter (check_known "upgrade") doc.Doc.request.Doc.upgrade;
  (* a removal that tears out a kept stanza can never be satisfied *)
  List.iter
    (fun rm ->
      List.iter
        (fun (p : Doc.package) ->
          if
            p.Doc.installed
            && p.Doc.keep <> Doc.Knone
            && Doc.satisfies p rm
          then
            say "the request removes %s but %s=%d is installed with keep: %s"
              (Doc.vpkg_to_string rm) p.Doc.name p.Doc.version
              (match p.Doc.keep with
              | Doc.Kversion -> "version"
              | Doc.Kpackage -> "package"
              | Doc.Kfeature -> "feature"
              | Doc.Knone -> "none"))
        doc.Doc.packages)
    doc.Doc.request.Doc.remove;
  (* unsatisfiable dependencies of stanzas the request plainly needs *)
  List.iter
    (fun vp ->
      List.iter
        (fun (p : Doc.package) ->
          if Doc.satisfies p vp then
            List.iter
              (fun cl ->
                if cl = [] then
                  say "%s=%d (a satisfier of %s) depends on false!" p.Doc.name
                    p.Doc.version (Doc.vpkg_to_string vp))
              p.Doc.depends)
        doc.Doc.packages)
    doc.Doc.request.Doc.install;
  List.rev !reasons

(* Seed the search's polarity toward a near-optimal initial model:
   paranoid wants yesterday's state back, trendy wants the newest version
   of everything that was installed.  Like the Spack hints this only
   shapes the first descent — optimality is proved regardless. *)
let apply_phase_hints stack (t : Asp.Translate.t) =
  let store = t.Asp.Translate.ground.Asp.Ground.store in
  let fact_holds pred args =
    match Asp.Gatom.Store.find store (Asp.Gatom.make pred args) with
    | Some id -> Asp.Gatom.Store.is_fact store id
    | None -> false
  in
  for id = 0 to Asp.Gatom.Store.count store - 1 do
    let a = Asp.Gatom.Store.atom store id in
    let preferred =
      match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
      | "attr", [ { Asp.Term.node = Asp.Term.Str "in"; _ }; p; v ] -> (
        match stack with
        | Criteria.Paranoid -> fact_holds "was_installed" [ p; v ]
        | Criteria.Trendy ->
          fact_holds "newest" [ p; v ] && fact_holds "was_installed_name" [ p ])
      | _ -> false
    in
    if preferred then
      match Asp.Translate.atom_lit t id with
      | Some l -> Asp.Sat.suggest_phase t.Asp.Translate.sat l
      | None -> ()
  done

let decode_state answer =
  List.filter_map
    (fun (a : Asp.Gatom.t) ->
      match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
      | ( "attr",
          [
            { Asp.Term.node = Asp.Term.Str "in"; _ };
            { Asp.Term.node = Asp.Term.Str p; _ };
            { Asp.Term.node = Asp.Term.Int v; _ };
          ] ) ->
        Some (p, v)
      | _ -> None)
    answer
  |> List.sort compare

let diff_state (doc : Doc.t) state =
  let installed = Doc.installed_pairs doc in
  let uniq xs =
    let seen = Hashtbl.create 16 in
    List.filter (fun n ->
        if Hashtbl.mem seen n then false
        else begin
          Hashtbl.add seen n ();
          true
        end)
      xs
  in
  let installed_names = uniq (List.map fst installed) in
  let state_names = uniq (List.map fst state) in
  let removed =
    List.filter (fun n -> not (List.mem n state_names)) installed_names
  in
  let installed_new =
    List.filter (fun n -> not (List.mem n installed_names)) state_names
  in
  let changed =
    uniq
      (List.filter_map
         (fun (n, v) -> if List.mem (n, v) installed then None else Some n)
         state
      @ List.filter_map
          (fun (n, v) -> if List.mem (n, v) state then None else Some n)
          installed)
  in
  (removed, installed_new, changed)

let solve ?(config = Asp.Config.default) ?params ?budget ?pool ?(racers = 1)
    ?(explain = false) ?(stack = Criteria.Paranoid) ?installed_mode (doc : Doc.t) =
  let budget =
    match budget with
    | Some b -> b
    | None -> Asp.Budget.start config.Asp.Config.limits
  in
  let enc, setup_time = time (fun () -> Encode.generate ?installed_mode doc) in
  let n_facts = enc.Encode.n_facts in
  (* load: parse the logic program (timed, like the Spack pipeline) *)
  let lp, load_time = time (fun () -> Asp.Parser.parse (Logic.text stack)) in
  let t0 = Unix.gettimeofday () in
  match
    Asp.Grounder.ground ~budget ?facts_stream:enc.Encode.installed_stream
      (lp @ enc.Encode.statements)
  with
  | exception Asp.Budget.Exhausted info ->
    let phases =
      {
        setup_time;
        load_time;
        ground_time = Unix.gettimeofday () -. t0;
        solve_time = 0.;
      }
    in
    Interrupted { info; phases; n_facts }
  | ground, ground_stats -> (
    let ground_time = Unix.gettimeofday () -. t0 in
    let params =
      match params with
      | Some p -> p
      | None -> Asp.Config.params config.Asp.Config.preset
    in
    let strategy =
      match config.Asp.Config.strategy with
      | Asp.Config.Bb -> `Bb
      | Asp.Config.Usc -> `Usc
    in
    let hints = apply_phase_hints stack in
    let t1 = Unix.gettimeofday () in
    let run_sequential params =
      match
        Asp.Solve.solve_ground_verified ~hints ~verify:config.Asp.Config.verify
          ~params ~strategy ~budget ground
      with
      | None -> None
      | Some (t, costs, quality, _models, verified) ->
        Some
          ( Asp.Translate.answer t,
            costs,
            quality,
            Asp.Sat.stats t.Asp.Translate.sat,
            verified )
    in
    let solved =
      match pool with
      | Some p when racers > 1 -> (
        let rs = Asp.Portfolio.racers ~config racers in
        match
          Asp.Portfolio.race ~pool:p ~hints ~verify:config.Asp.Config.verify
            ~racers:rs ~budget ground
        with
        | { Asp.Portfolio.attempt = Asp.Portfolio.Proved_unsat; _ } -> Ok None
        | { attempt = Asp.Portfolio.Gave_up info; _ } -> Error info
        | {
            attempt =
              Asp.Portfolio.Model { answer; costs; quality; sat_stats; verified; _ };
            _;
          } ->
          Ok (Some (answer, costs, quality, sat_stats, verified))
        | { attempt = Asp.Portfolio.Quarantined _; _ } -> (
          match
            run_sequential
              { params with Asp.Sat.seed = params.Asp.Sat.seed + 104729 }
          with
          | exception Asp.Budget.Exhausted info -> Error info
          | r -> Ok r))
      | _ -> (
        match run_sequential params with
        | exception Asp.Budget.Exhausted info -> Error info
        | r -> Ok r)
    in
    let phases =
      {
        setup_time;
        load_time;
        ground_time;
        solve_time = Unix.gettimeofday () -. t1;
      }
    in
    match solved with
    | Error info -> Interrupted { info; phases; n_facts }
    | Ok None ->
      let reasons =
        if explain then
          Concretize.Diagnose.explain_core_origins ~params ~budget
            ~cond_origins:enc.Encode.cond_origins
            ~fallback:(fun () -> heuristic_reasons doc)
            ~ground ()
        else heuristic_reasons doc
      in
      Unsatisfiable { reasons; phases; n_facts }
    | Ok (Some (answer, costs, quality, sat_stats, verified)) ->
      let state = decode_state answer in
      let removed, installed_new, changed = diff_state doc state in
      Solution
        {
          state;
          removed;
          installed_new;
          changed;
          costs;
          quality;
          verified;
          phases;
          n_facts;
          n_packages = enc.Encode.n_packages;
          n_sets = enc.Encode.n_sets;
          ground_stats;
          sat_stats;
        })

(* Escalating retries, the Concretizer idiom: double every finite limit and
   reseed; never retry a cancellation. *)
let solve_escalating ?(attempts = 3) ?(config = Asp.Config.default) ?cancel
    ?pool ?racers ?explain ?stack ?installed_mode doc =
  let base = Asp.Config.params config.Asp.Config.preset in
  let rec go k limits =
    let budget = Asp.Budget.start ?cancel limits in
    let params =
      if k = 0 then base
      else { base with Asp.Sat.seed = base.Asp.Sat.seed + (k * 7919) }
    in
    match
      solve ~config ~params ~budget ?pool ?racers ?explain ?stack
        ?installed_mode doc
    with
    | Interrupted { info; _ } as r ->
      if info.Asp.Budget.reason = Asp.Budget.Cancelled || k + 1 >= attempts
      then r
      else go (k + 1) (Asp.Budget.double limits)
    | r -> r
  in
  go 0 config.Asp.Config.limits
