(* The CUDF universe model.  Facts supplied per solve (see Encode):
     cudf_package/2, newest/2, sat/3, clause_lit/2,
     depends_clause/2, conflict_set/2, conflict_owner/3,
     rec_owner/3, require_set/2, forbid_set/2,
     upgrade_name/1, upgrade_forbidden/2,
     was_installed/2, was_installed_name/1 (possibly streamed),
   plus the generalized-condition vocabulary shared with the Spack model:
     condition/1, condition_requirement/3..5, imposed_constraint/3..5. *)

let base =
  {|
%=============================================================================
% CUDF universes on the generalized-condition encoding (ROADMAP item 3).
%
% The state is flat: attr("in", P, V) means stanza (P, V) is installed in
% the final state.  Version constraints are pre-compiled by the encoder
% into interned satisfier sets: sat(S, Q, W) lists every stanza (Q, W)
% that satisfies constraint S, provides included — so the program never
% compares versions, it only joins sets.
%=============================================================================

{ attr("in", P, V) } :- cudf_package(P, V).

pkg_in(P) :- attr("in", P, V).

% a satisfier set is hit when any member is installed
set_hit(S) :- sat(S, Q, W), attr("in", Q, W).

% a CNF clause is hit when any of its literals' sets is hit
clause_hit(C) :- clause_lit(C, S), set_hit(S).

|}

let model =
  {|
%-----------------------------------------------------------------------------
% Dependencies: each depends clause of an installed stanza must be hit.
% The owning stanza is the condition's requirement (attr("in", P, V)), so
% condition_holds(ID) means "the stanza with this depends: line is in".
%-----------------------------------------------------------------------------
:- depends_clause(ID, C), condition_holds(ID), not clause_hit(C).

%-----------------------------------------------------------------------------
% Conflicts: an installed stanza excludes every member of its conflict
% sets — except itself (CUDF's self-exemption: the "conflicts: ownname"
% idiom forbids other versions, never the stanza itself).
%-----------------------------------------------------------------------------
:- conflict_set(ID, S), condition_holds(ID), conflict_owner(ID, P, V),
   sat(S, Q, W), attr("in", Q, W), Q != P.
:- conflict_set(ID, S), condition_holds(ID), conflict_owner(ID, P, V),
   sat(S, P, W), attr("in", P, W), W != V.

%-----------------------------------------------------------------------------
% The request: install/upgrade/keep require their satisfier sets hit,
% remove forbids them.  Request conditions have no requirements, so
% condition_holds(ID) is unconditional — keeping the provenance path
% (Diagnose) uniform across constraint kinds.
%-----------------------------------------------------------------------------
:- require_set(ID, S), condition_holds(ID), not set_hit(S).
:- forbid_set(ID, S), condition_holds(ID), set_hit(S).

% upgrade: single version of the named package, present, never below the
% highest currently-installed version (upgrade_forbidden enumerates those)
:- upgrade_name(P), attr("in", P, V1), attr("in", P, V2), V1 < V2.
:- upgrade_name(P), not pkg_in(P).
:- upgrade_forbidden(P, V), attr("in", P, V).

%-----------------------------------------------------------------------------
% Objective atoms (counted by the criterion stacks, Criteria).
%-----------------------------------------------------------------------------
removed(P)  :- was_installed_name(P), not pkg_in(P).
new_pkg(P)  :- pkg_in(P), not was_installed_name(P).
changed(P)  :- attr("in", P, V), not was_installed(P, V).
changed(P)  :- was_installed(P, V), not attr("in", P, V).
outdated(P) :- pkg_in(P), newest(P, V), not attr("in", P, V).
rec_unmet(C) :- rec_owner(C, P, V), attr("in", P, V), not clause_hit(C).
|}

let text stack =
  base ^ Concretize.Logic_program.conditions_fragment ^ model
  ^ Criteria.minimize_text stack

let program =
  let memo = Hashtbl.create 2 in
  fun stack ->
    match Hashtbl.find_opt memo stack with
    | Some p -> p
    | None ->
      let p = Asp.Parser.parse (text stack) in
      Hashtbl.add memo stack p;
      p

let line_count stack =
  String.split_on_char '\n' (text stack)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
