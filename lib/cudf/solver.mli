(** End-to-end CUDF solving on the shared ASP engine.

    Mirrors the Spack pipeline ({!Concretize.Concretizer}): encode the
    document to facts, parse the (stack-specific) logic program, ground
    under a budget with installed stanzas streamed as reuse facts, solve
    with branch-and-bound or unsat-core optimization, optionally race a
    portfolio, verify the model, and decode the chosen state plus its
    per-criterion cost vector. *)

type phases = {
  setup_time : float;  (** document → facts *)
  load_time : float;  (** logic-program parse *)
  ground_time : float;
  solve_time : float;
}

val total : phases -> float

type solution = {
  state : (string * int) list;  (** the final installation, sorted *)
  removed : string list;
  installed_new : string list;
  changed : string list;
  costs : (int * int) list;  (** [(priority, value)], priorities descending *)
  quality : Asp.Optimize.quality;
  verified : bool;
  phases : phases;
  n_facts : int;
  n_packages : int;
  n_sets : int;
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
}

type result =
  | Solution of solution
  | Unsatisfiable of { reasons : string list; phases : phases; n_facts : int }
  | Interrupted of { info : Asp.Budget.info; phases : phases; n_facts : int }

val heuristic_reasons : Doc.t -> string list
(** Cheap syntactic diagnosis of an unsatisfiable document: unknown
    request targets, unsatisfiable request constraints, removes that
    contradict keep flags, [false!] dependencies of requested stanzas. *)

val solve :
  ?config:Asp.Config.t ->
  ?params:Asp.Sat.params ->
  ?budget:Asp.Budget.t ->
  ?pool:Asp.Pool.t ->
  ?racers:int ->
  ?explain:bool ->
  ?stack:Criteria.stack ->
  ?installed_mode:Encode.mode ->
  Doc.t ->
  result
(** One attempt.  [~explain:true] runs unsat-core extraction over the
    encoder's condition provenance on UNSAT, naming the offending
    [depends:]/[conflicts:]/request stanza; otherwise UNSAT falls back to
    {!heuristic_reasons}.  [~pool] with [racers > 1] races a diversified
    portfolio, rescuing quarantined races sequentially with a shifted
    seed. *)

val solve_escalating :
  ?attempts:int ->
  ?config:Asp.Config.t ->
  ?cancel:Asp.Budget.cancel_token ->
  ?pool:Asp.Pool.t ->
  ?racers:int ->
  ?explain:bool ->
  ?stack:Criteria.stack ->
  ?installed_mode:Encode.mode ->
  Doc.t ->
  result
(** Retry on budget exhaustion with doubled limits and a reseeded solver
    ([attempts] tries total, default 3); cancellations are never
    retried. *)
