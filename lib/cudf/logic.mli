(** The CUDF software model as an ASP program.

    Structurally a sibling of {!Concretize.Logic_program}: the
    generalized-condition fragment is spliced in verbatim
    ({!Concretize.Logic_program.conditions_fragment}), so depends clauses,
    conflicts and request constraints all trigger through [condition/1] +
    [condition_requirement] facts and map back through the same unsat-core
    provenance path.  The rest is CUDF-specific: a flat
    [attr("in", P, V)] choice per stanza, interned satisfier sets
    ([sat/3]) instead of per-rule version comparisons, and the
    user-selected objective stack appended per solve. *)

val text : Criteria.stack -> string
(** ASP source for one criterion stack (rules are shared; only the
    [#minimize] statements differ). *)

val program : Criteria.stack -> Asp.Ast.program
(** Parsed form, memoized per stack. *)

val line_count : Criteria.stack -> int
(** Non-blank source lines (reported in benchmarks). *)
