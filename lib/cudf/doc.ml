type relop = Eq | Neq | Geq | Gt | Leq | Lt

type vpkg = { vname : string; vconstr : (relop * int) option }
type clause = vpkg list
type keep = Knone | Kversion | Kpackage | Kfeature

type package = {
  name : string;
  version : int;
  depends : clause list;
  conflicts : vpkg list;
  provides : (string * int option) list;
  recommends : clause list;
  installed : bool;
  keep : keep;
}

type request = {
  req_id : string;
  install : vpkg list;
  upgrade : vpkg list;
  remove : vpkg list;
}

type t = { packages : package list; request : request }

exception Parse_error of int * string

let empty_request = { req_id = ""; install = []; upgrade = []; remove = [] }

let package name version =
  {
    name;
    version;
    depends = [];
    conflicts = [];
    provides = [];
    recommends = [];
    installed = false;
    keep = Knone;
  }

(* --- semantics helpers ------------------------------------------------- *)

let relop_sat op a b =
  match op with
  | Eq -> a = b
  | Neq -> a <> b
  | Geq -> a >= b
  | Gt -> a > b
  | Leq -> a <= b
  | Lt -> a < b

let constr_sat c v = match c with None -> true | Some (op, k) -> relop_sat op v k

(* CUDF satisfaction: a package stanza satisfies [name op v] through its own
   (name, version), or through a feature it provides — an unversioned
   feature matches any constraint on that name, a versioned one matches iff
   its version does. *)
let satisfies (p : package) (vp : vpkg) =
  (String.equal p.name vp.vname && constr_sat vp.vconstr p.version)
  || List.exists
       (fun (f, vo) ->
         String.equal f vp.vname
         && (match vo with None -> true | Some w -> constr_sat vp.vconstr w))
       p.provides

let installed_pairs doc =
  List.filter_map
    (fun p -> if p.installed then Some (p.name, p.version) else None)
    doc.packages

(* --- printer ----------------------------------------------------------- *)

let relop_to_string = function
  | Eq -> "="
  | Neq -> "!="
  | Geq -> ">="
  | Gt -> ">"
  | Leq -> "<="
  | Lt -> "<"

let vpkg_to_string { vname; vconstr } =
  match vconstr with
  | None -> vname
  | Some (op, v) -> Printf.sprintf "%s %s %d" vname (relop_to_string op) v

let clause_to_string = function
  | [] -> "false!"
  | lits -> String.concat " | " (List.map vpkg_to_string lits)

let vpkglist_to_string l = String.concat ", " (List.map vpkg_to_string l)
let cnf_to_string cls = String.concat ", " (List.map clause_to_string cls)

let provide_to_string (f, vo) =
  match vo with None -> f | Some v -> Printf.sprintf "%s = %d" f v

let keep_to_string = function
  | Knone -> "none"
  | Kversion -> "version"
  | Kpackage -> "package"
  | Kfeature -> "feature"

let print_package b (p : package) =
  let pr fmt = Printf.ksprintf (fun s -> Buffer.add_string b s) fmt in
  pr "package: %s\n" p.name;
  pr "version: %d\n" p.version;
  if p.depends <> [] then pr "depends: %s\n" (cnf_to_string p.depends);
  if p.conflicts <> [] then pr "conflicts: %s\n" (vpkglist_to_string p.conflicts);
  if p.provides <> [] then
    pr "provides: %s\n" (String.concat ", " (List.map provide_to_string p.provides));
  if p.recommends <> [] then pr "recommends: %s\n" (cnf_to_string p.recommends);
  if p.installed then pr "installed: true\n";
  if p.keep <> Knone then pr "keep: %s\n" (keep_to_string p.keep)

let to_string doc =
  let b = Buffer.create 1024 in
  List.iter
    (fun p ->
      print_package b p;
      Buffer.add_char b '\n')
    doc.packages;
  let r = doc.request in
  Buffer.add_string b
    (if r.req_id = "" then "request: \n" else Printf.sprintf "request: %s\n" r.req_id);
  if r.install <> [] then
    Buffer.add_string b (Printf.sprintf "install: %s\n" (vpkglist_to_string r.install));
  if r.upgrade <> [] then
    Buffer.add_string b (Printf.sprintf "upgrade: %s\n" (vpkglist_to_string r.upgrade));
  if r.remove <> [] then
    Buffer.add_string b (Printf.sprintf "remove: %s\n" (vpkglist_to_string r.remove));
  Buffer.contents b

(* --- parser ------------------------------------------------------------ *)

let err line fmt = Printf.ksprintf (fun s -> raise (Parse_error (line, s))) fmt

let valid_name s =
  s <> ""
  && String.for_all
       (fun c -> not (c = ' ' || c = ',' || c = '|' || c = ':' || c = '\t'))
       s

let parse_vpkg ~line s =
  let s = String.trim s in
  let n = String.length s in
  let is_op c = c = '=' || c = '!' || c = '<' || c = '>' in
  let i = ref 0 in
  while !i < n && not (is_op s.[!i]) do
    incr i
  done;
  if !i >= n then begin
    if not (valid_name s) then err line "bad package name %S" s;
    { vname = s; vconstr = None }
  end
  else begin
    let name = String.trim (String.sub s 0 !i) in
    let j = ref !i in
    while !j < n && is_op s.[!j] do
      incr j
    done;
    let op_s = String.sub s !i (!j - !i) in
    let ver_s = String.trim (String.sub s !j (n - !j)) in
    let op =
      match op_s with
      | "=" -> Eq
      | "!=" -> Neq
      | ">=" -> Geq
      | ">" -> Gt
      | "<=" -> Leq
      | "<" -> Lt
      | o -> err line "bad version operator %S" o
    in
    let v =
      match int_of_string_opt ver_s with
      | Some v when v >= 0 -> v
      | _ -> err line "bad version %S (CUDF versions are nonnegative integers)" ver_s
    in
    if not (valid_name name) then err line "bad package name %S" name;
    { vname = name; vconstr = Some (op, v) }
  end

let split_nonempty sep s =
  String.split_on_char sep s |> List.map String.trim
  |> List.filter (fun x -> x <> "")

let parse_vpkglist ~line s =
  if String.trim s = "" then []
  else List.map (parse_vpkg ~line) (split_nonempty ',' s)

let parse_clause ~line s =
  if String.trim s = "false!" then []
  else List.map (parse_vpkg ~line) (split_nonempty '|' s)

let parse_cnf ~line s =
  let s = String.trim s in
  if s = "" || s = "true!" then []
  else
    String.split_on_char ',' s |> List.map String.trim
    |> List.filter (fun x -> x <> "")
    |> List.map (parse_clause ~line)

let parse_provides ~line s =
  parse_vpkglist ~line s
  |> List.map (fun vp ->
         match vp.vconstr with
         | None -> (vp.vname, None)
         | Some (Eq, v) -> (vp.vname, Some v)
         | Some _ -> err line "provides admits only '=' version qualifiers")

(* One stanza: (line, key, value) triples.  Lines starting with a space
   continue the previous property's value. *)
let stanzas src =
  let lines = String.split_on_char '\n' src in
  let stanzas = ref [] and cur = ref [] in
  let flush () =
    if !cur <> [] then begin
      stanzas := List.rev !cur :: !stanzas;
      cur := []
    end
  in
  List.iteri
    (fun i raw ->
      let lineno = i + 1 in
      let line = if String.length raw > 0 && raw.[String.length raw - 1] = '\r'
        then String.sub raw 0 (String.length raw - 1) else raw in
      if String.trim line = "" then flush ()
      else if String.length line > 0 && (line.[0] = ' ' || line.[0] = '\t') then (
        match !cur with
        | (l, k, v) :: rest -> cur := (l, k, v ^ " " ^ String.trim line) :: rest
        | [] -> err lineno "continuation line outside a stanza")
      else if line.[0] = '#' then ()
      else
        match String.index_opt line ':' with
        | None -> err lineno "expected 'property: value', got %S" line
        | Some c ->
          let k = String.trim (String.sub line 0 c) in
          let v = String.trim (String.sub line (c + 1) (String.length line - c - 1)) in
          if k = "" then err lineno "empty property name";
          cur := (lineno, String.lowercase_ascii k, v) :: !cur)
    lines;
  flush ();
  List.rev !stanzas

let parse_package stanza =
  let first_line = match stanza with (l, _, _) :: _ -> l | [] -> 0 in
  let p = ref (package "" (-1)) in
  List.iter
    (fun (line, k, v) ->
      match k with
      | "package" ->
        if not (valid_name v) then err line "bad package name %S" v;
        p := { !p with name = v }
      | "version" -> (
        match int_of_string_opt v with
        | Some n when n >= 1 -> p := { !p with version = n }
        | _ -> err line "bad version %S (CUDF versions are positive integers)" v)
      | "depends" -> p := { !p with depends = parse_cnf ~line v }
      | "conflicts" -> p := { !p with conflicts = parse_vpkglist ~line v }
      | "provides" -> p := { !p with provides = parse_provides ~line v }
      | "recommends" -> p := { !p with recommends = parse_cnf ~line v }
      | "installed" -> (
        match v with
        | "true" -> p := { !p with installed = true }
        | "false" -> p := { !p with installed = false }
        | _ -> err line "installed must be true or false, got %S" v)
      | "keep" -> (
        match v with
        | "none" -> p := { !p with keep = Knone }
        | "version" -> p := { !p with keep = Kversion }
        | "package" -> p := { !p with keep = Kpackage }
        | "feature" -> p := { !p with keep = Kfeature }
        | _ -> err line "bad keep value %S" v)
      | _ -> (* CUDF allows extra properties; ignore them *) ())
    stanza;
  if !p.name = "" then err first_line "package stanza without a name";
  if !p.version < 0 then err first_line "package %s without a version" !p.name;
  (first_line, !p)

let parse_request stanza =
  let r = ref empty_request in
  List.iter
    (fun (line, k, v) ->
      match k with
      | "request" -> r := { !r with req_id = v }
      | "install" -> r := { !r with install = parse_vpkglist ~line v }
      | "upgrade" -> r := { !r with upgrade = parse_vpkglist ~line v }
      | "remove" -> r := { !r with remove = parse_vpkglist ~line v }
      | _ -> ())
    stanza;
  !r

let parse src =
  let packages = ref [] and request = ref None in
  List.iter
    (fun stanza ->
      match stanza with
      | (line, k, _) :: _ -> (
        match k with
        | "preamble" -> ()
        | "package" -> packages := parse_package stanza :: !packages
        | "request" ->
          if !request <> None then err line "duplicate request stanza";
          request := Some (parse_request stanza)
        | k -> err line "unknown stanza kind %S" k)
      | [] -> ())
    (stanzas src);
  let packages = List.rev !packages in
  let seen = Hashtbl.create 64 in
  List.iter
    (fun (line, (p : package)) ->
      if Hashtbl.mem seen (p.name, p.version) then
        err line "duplicate package stanza %s = %d" p.name p.version;
      Hashtbl.add seen (p.name, p.version) ())
    packages;
  {
    packages = List.map snd packages;
    request = (match !request with Some r -> r | None -> empty_request);
  }

let equal (a : t) (b : t) = a = b
