(** CUDF documents: the Common Upgradeability Description Format used by
    the Mancoosi solver competitions and by aspcud (PAPERS.md).

    A document is a flat universe of package stanzas — integer versions,
    [depends] as a CNF of version-constrained disjunctions, [conflicts],
    [provides] (optionally versioned virtual features), [installed]/[keep]
    flags — plus one request stanza (install/upgrade/remove lists).  This
    module is the document model with a parser and canonical printer;
    semantics live in {!Encode} (ASP) and {!Reference} (brute force). *)

type relop = Eq | Neq | Geq | Gt | Leq | Lt

type vpkg = { vname : string; vconstr : (relop * int) option }
(** A possibly version-constrained package (or feature) name: [bar >= 2]. *)

type clause = vpkg list
(** One disjunct group of a [depends]/[recommends] CNF.  The empty clause is
    CUDF's [false!] (never satisfiable). *)

type keep =
  | Knone
  | Kversion  (** this exact (name, version) must stay installed *)
  | Kpackage  (** some version of the package must stay installed *)
  | Kfeature  (** every feature it provides must stay provided *)

type package = {
  name : string;
  version : int;  (** CUDF versions are positive integers *)
  depends : clause list;  (** conjunction of disjunctions *)
  conflicts : vpkg list;  (** the stanza itself is always exempt *)
  provides : (string * int option) list;
      (** virtual features; [None] matches any version constraint *)
  recommends : clause list;  (** soft CNF (trendy's third objective) *)
  installed : bool;
  keep : keep;  (** only meaningful on installed stanzas *)
}

type request = {
  req_id : string;
  install : vpkg list;  (** each must be satisfied by the final state *)
  upgrade : vpkg list;
      (** satisfied, single version of the named package, no downgrade *)
  remove : vpkg list;  (** none may be satisfied by the final state *)
}

type t = { packages : package list; request : request }

exception Parse_error of int * string
(** Line number (1-based) and message. *)

val empty_request : request

val package : string -> int -> package
(** A bare stanza with the given name and version, everything else empty. *)

(** {1 Semantics helpers} *)

val relop_sat : relop -> int -> int -> bool
val constr_sat : (relop * int) option -> int -> bool

val satisfies : package -> vpkg -> bool
(** Does the stanza satisfy the constraint, through its own (name, version)
    or through a feature it provides?  Unversioned features match any
    constraint on their name. *)

val installed_pairs : t -> (string * int) list
(** The [(name, version)] pairs marked installed, in document order. *)

(** {1 Printing and parsing} *)

val relop_to_string : relop -> string
val vpkg_to_string : vpkg -> string
val clause_to_string : clause -> string
val vpkglist_to_string : vpkg list -> string
val cnf_to_string : clause list -> string

val to_string : t -> string
(** Canonical text: default-valued properties are omitted; [parse] of the
    result is structurally equal to the document. *)

val parse : string -> t
(** Parse CUDF text: blank-line-separated stanzas of [key: value]
    properties (leading whitespace continues the previous value, [#] lines
    are comments, [preamble] stanzas and unknown properties are ignored).
    @raise Parse_error on malformed input, duplicate (name, version)
    stanzas, or duplicate request stanzas. *)

val equal : t -> t -> bool
(** Structural equality. *)
