(** Deterministic synthetic CUDF universes.

    [universe] generates Debian-like benchmark instances — tall version
    columns, universal self-conflicts, virtual features with mutually
    exclusive provider cliques, CNF dependencies, a deliberately stale or
    broken installed state, and an install/upgrade/remove request — that
    are {e satisfiable by construction} (see the implementation notes), so
    benchmarks and CI can assert a proven optimum at any size.

    [small] generates tiny chaotic universes with no satisfiability
    guarantee, for the differential tests against {!Reference}. *)

val universe : ?seed:int -> n:int -> unit -> Doc.t
(** Exactly [n] stanzas.  Deterministic in [(seed, n)]. *)

val small : ?seed:int -> unit -> Doc.t
(** 3–12 stanzas over 3–4 names.  Deterministic in [seed]. *)
