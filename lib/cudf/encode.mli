(** CUDF universe → ASP facts, on the generalized-condition encoding.

    Version constraints never reach the logic program: each distinct
    constraint (and each keep-flag target) is interned once as a
    {e satisfier set} — [sat(S, Q, W)] facts listing every stanza that
    satisfies it, provides included — so a 10k-stanza universe with tall
    version columns grounds linearly in [sum of set sizes], not
    quadratically in versions.  Depends clauses, conflicts, keep flags and
    the request all become [condition/1]-keyed facts (driven through
    {!Concretize.Facts.Gen}), giving them the same trigger semantics and
    unsat-core provenance as Spack's conditions.  Installed state becomes
    [was_installed/2] reuse facts, streamed into the grounder's atom store
    by default (the PR 6/8 substrate path, unchanged). *)

type mode = [ `Stream | `Materialize ]
(** How the installed-state facts are delivered; both modes produce the
    identical ground program (atoms are seeded in the same order). *)

type t = {
  statements : Asp.Ast.statement list;
  n_facts : int;  (** total, streamed facts included *)
  n_packages : int;
  n_sets : int;  (** interned satisfier sets *)
  cond_origins : (int * string) list;
      (** condition id → provenance ("pkg=3 depends on bar >= 2 | baz",
          "package pkg=3 conflicts with quux < 4", "the request asks to
          install foo"), printed by {!Concretize.Diagnose} on unsat *)
  installed_stream : ((Asp.Gatom.t -> unit) -> unit) option;
      (** with [`Stream] and a non-empty installed state: replays the
          [was_installed] facts (pass as [?facts_stream] to
          {!Asp.Grounder.ground}) *)
}

val generate : ?installed_mode:mode -> Doc.t -> t
