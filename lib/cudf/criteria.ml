type stack = Paranoid | Trendy

let all = [ Paranoid; Trendy ]
let name = function Paranoid -> "paranoid" | Trendy -> "trendy"

let of_name = function
  | "paranoid" -> Some Paranoid
  | "trendy" -> Some Trendy
  | _ -> None

let levels = function
  | Paranoid -> [ (20, "removed packages"); (19, "changed packages") ]
  | Trendy ->
    [ (20, "outdated packages"); (19, "new packages"); (18, "unmet recommends") ]

let to_core s = Concretize.Criteria.stack_of_levels ~name:(name s) (levels s)

let minimize_text = function
  | Paranoid ->
    {|
% paranoid: disturb the installation as little as possible
#minimize { 1@20,P : removed(P) }.
#minimize { 1@19,P : changed(P) }.
|}
  | Trendy ->
    {|
% trendy: as fresh as possible, then as small and as complete as possible
#minimize { 1@20,P : outdated(P) }.
#minimize { 1@19,P : new_pkg(P) }.
#minimize { 1@18,C : rec_unmet(C) }.
|}

let pp_costs s ppf costs = Concretize.Criteria.pp_costs_in (to_core s) ppf costs
let pp_cost s ppf pv = Concretize.Criteria.pp_cost_in (to_core s) ppf pv
