(** CUDF user-objective criterion stacks.

    Where Spack's objective is fixed (Table II), CUDF solvers take the
    objective from the user.  The two standard Mancoosi tracks are
    reproduced here as alternative lexicographic stacks over the same
    encoding, selectable per request:

    - {e paranoid}: fewest removed packages, then fewest changed;
    - {e trendy}: fewest outdated packages, then fewest newly installed,
      then fewest unmet [recommends].

    Priorities deliberately overlap across stacks (both use @20, @19) —
    decoding a cost vector requires knowing the stack it was solved under,
    which is exactly what {!Concretize.Criteria}'s stack-aware rendering
    handles. *)

type stack = Paranoid | Trendy

val all : stack list
val name : stack -> string
val of_name : string -> stack option

val levels : stack -> (int * string) list
(** [(ground priority, level label)] pairs, most significant first. *)

val to_core : stack -> Concretize.Criteria.stack
(** The stack's decoding scheme for {!Concretize.Criteria.pp_costs_in}. *)

val minimize_text : stack -> string
(** The stack's [#minimize] statements (appended to {!Logic.text}). *)

val pp_cost : stack -> Format.formatter -> int * int -> unit
val pp_costs : stack -> Format.formatter -> (int * int) list -> unit
(** Render (nonzero entries of) a cost vector under the stack's own level
    names. *)
