(** Brute-force CUDF reference semantics (testing only).

    An independent implementation of document validity and the criterion
    stacks, written directly against {!Doc} — it shares nothing with
    {!Encode}/{!Logic} beyond the vpkg-satisfaction helper — so the
    differential tests pit the whole ASP pipeline (encoder, logic program,
    grounder, CDCL solver, optimizer) against straight-line OCaml.
    Exponential in the stanza count. *)

val valid : Doc.t -> bool array -> bool
(** Is the selection (indexed like [doc.packages]) a consistent final
    state satisfying the request and every keep flag? *)

val costs : stack:Criteria.stack -> Doc.t -> bool array -> (int * int) list
(** The stack's cost vector for a selection, [(priority, value)] with
    priorities descending — same shape as the engine's. *)

val better : (int * int) list -> (int * int) list -> bool
(** Strict lexicographic improvement along descending priorities. *)

val best : stack:Criteria.stack -> Doc.t -> ((int * int) list * (string * int) list) option
(** Optimal cost vector and one optimal state (sorted), by exhaustive
    enumeration; [None] when no valid state exists.
    @raise Invalid_argument beyond 20 stanzas. *)

val valid_state : Doc.t -> (string * int) list -> bool
(** {!valid} for a state given as the engine reports it. *)

val costs_of_state :
  stack:Criteria.stack -> Doc.t -> (string * int) list -> (int * int) list
