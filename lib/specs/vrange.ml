type interval = {
  lo : Version.t option;  (** inclusive *)
  hi : Version.t option;  (** inclusive (prefix-inclusive: [:1.5] admits 1.5.2) *)
  exact : bool;  (** single-version constraint: prefix semantics *)
}

type t = { raw : string; intervals : interval list }

let of_string raw =
  if String.trim raw = "" then invalid_arg "Vrange.of_string: empty constraint";
  let parse_one part =
    match String.index_opt part ':' with
    | None -> { lo = Some (Version.of_string part); hi = Some (Version.of_string part); exact = true }
    | Some i ->
      let lo = String.sub part 0 i in
      let hi = String.sub part (i + 1) (String.length part - i - 1) in
      {
        lo = (if lo = "" then None else Some (Version.of_string lo));
        hi = (if hi = "" then None else Some (Version.of_string hi));
        exact = false;
      }
  in
  let intervals = String.split_on_char ',' raw |> List.map String.trim |> List.map parse_one in
  { raw; intervals }

let to_string t = t.raw

let canonical t =
  let one iv =
    let v = function Some x -> Version.to_string x | None -> "" in
    if iv.exact then v iv.lo else v iv.lo ^ ":" ^ v iv.hi
  in
  String.concat "," (List.map one t.intervals)
let any = { raw = ":"; intervals = [ { lo = None; hi = None; exact = false } ] }

let exactly v =
  {
    raw = Version.to_string v;
    intervals = [ { lo = Some v; hi = Some v; exact = true } ];
  }

let interval_satisfies iv v =
  if iv.exact then
    match iv.lo with
    | Some p -> Version.satisfies_prefix ~prefix:p v
    | None -> true
  else
    (match iv.lo with Some lo -> Version.compare v lo >= 0 | None -> true)
    && (match iv.hi with
       | Some hi -> Version.compare v hi <= 0 || Version.satisfies_prefix ~prefix:hi v
       | None -> true)

let satisfies t v = List.exists (fun iv -> interval_satisfies iv v) t.intervals

let is_any t = List.exists (fun iv -> iv.lo = None && iv.hi = None) t.intervals

let interval_intersects a b =
  let lo_le_hi lo hi =
    match (lo, hi) with
    | Some l, Some h ->
      Version.compare l h <= 0 || Version.satisfies_prefix ~prefix:h l
    | _ -> true
  in
  lo_le_hi a.lo b.hi && lo_le_hi b.lo a.hi

let intersects a b =
  List.exists (fun ia -> List.exists (fun ib -> interval_intersects ia ib) b.intervals) a.intervals

let equal a b = String.equal a.raw b.raw
let pp ppf t = Format.pp_print_string ppf t.raw
