type constraint_node = {
  cname : string;
  cversion : Vrange.t option;
  cvariants : (string * string) list;
  ccompiler : string option;
  ccompiler_version : Vrange.t option;
  cflags : (string * string) list;
  cos : string option;
  ctarget : string option;
}

type abstract = { aroot : constraint_node; adeps : constraint_node list }

let empty_node cname =
  {
    cname;
    cversion = None;
    cvariants = [];
    ccompiler = None;
    ccompiler_version = None;
    cflags = [];
    cos = None;
    ctarget = None;
  }

let abstract_of_name name = { aroot = empty_node name; adeps = [] }

let merge_nodes a b =
  let scalar x y = match y with Some _ -> y | None -> x in
  let variants =
    List.fold_left
      (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc)
      a.cvariants b.cvariants
  in
  let flags =
    List.fold_left (fun acc (k, v) -> (k, v) :: List.remove_assoc k acc) a.cflags b.cflags
  in
  {
    cname = a.cname;
    cversion = scalar a.cversion b.cversion;
    cvariants = List.sort compare variants;
    ccompiler = scalar a.ccompiler b.ccompiler;
    ccompiler_version = scalar a.ccompiler_version b.ccompiler_version;
    cflags = List.sort compare flags;
    cos = scalar a.cos b.cos;
    ctarget = scalar a.ctarget b.ctarget;
  }

let variant_to_string (name, value) =
  match value with
  | "true" -> "+" ^ name
  | "false" -> "~" ^ name
  | v -> Printf.sprintf " %s=%s" name v

(* Renders to spec syntax that {!Spec_parser} parses back to the same
   constraints: version ranges are re-rendered canonically (the raw form may
   contain spaces, which do not survive reparsing) and flag values are quoted
   verbatim (the parser reads quoted values without unescaping, so [%S]-style
   escaping would not round-trip). *)
let node_to_string n =
  let buf = Buffer.create 32 in
  Buffer.add_string buf n.cname;
  (match n.cversion with
  | Some v -> Buffer.add_string buf ("@" ^ Vrange.canonical v)
  | None -> ());
  List.iter (fun kv -> Buffer.add_string buf (variant_to_string kv)) n.cvariants;
  (match n.ccompiler with
  | Some c ->
    Buffer.add_string buf ("%" ^ c);
    (match n.ccompiler_version with
    | Some v -> Buffer.add_string buf ("@" ^ Vrange.canonical v)
    | None -> ())
  | None -> ());
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=\"%s\"" k v))
    n.cflags;
  (match n.cos with Some o -> Buffer.add_string buf (" os=" ^ o) | None -> ());
  (match n.ctarget with Some t -> Buffer.add_string buf (" target=" ^ t) | None -> ());
  Buffer.contents buf

let abstract_to_string a =
  String.concat " "
    (node_to_string a.aroot :: List.map (fun d -> "^" ^ node_to_string d) a.adeps)

(* ------------------------------------------------------------------ *)
(* Canonical digest of an abstract spec.  Forward declaration of the    *)
(* digest helper defined with the concrete-spec hashing below.          *)
(* ------------------------------------------------------------------ *)

let fnv_fold (h : int64) (s : string) =
  let prime = 0x100000001b3L in
  let h = ref h in
  String.iter
    (fun c -> h := Int64.mul (Int64.logxor !h (Int64.of_int (Char.code c))) prime)
    s;
  !h

let digest strings =
  let h1 = List.fold_left fnv_fold 0xcbf29ce484222325L strings in
  let h2 = List.fold_left fnv_fold 0x9e3779b97f4a7c15L (List.rev strings) in
  Printf.sprintf "%016Lx%016Lx" h1 h2

let digest_strings = digest

(* A rendering of a constraint node in which every choice the parser or the
   caller could have made differently (variant order, flag order, range
   spelling) is normalized away.  Fields are joined with control characters
   so adjacent fields cannot alias ("ab"+"c" vs "a"+"bc"). *)
let canonical_node n =
  let opt f = function Some x -> f x | None -> "" in
  let kvs l =
    String.concat "\x02"
      (List.map (fun (k, v) -> k ^ "=" ^ v) (List.sort compare l))
  in
  String.concat "\x01"
    [
      n.cname;
      opt Vrange.canonical n.cversion;
      kvs n.cvariants;
      opt Fun.id n.ccompiler;
      opt Vrange.canonical n.ccompiler_version;
      kvs n.cflags;
      opt Fun.id n.cos;
      opt Fun.id n.ctarget;
    ]

let abstract_digest a =
  (* duplicate ^dep constraints on one package all apply: merge them (later
     spellings win scalar conflicts, as in [merge_nodes]) so "a ^b+x ^b~y"
     and "a ^b+x~y" digest identically; then order-insensitivity across
     distinct dependencies comes from sorting by name *)
  let merged =
    List.fold_left
      (fun acc d ->
        match List.assoc_opt d.cname acc with
        | Some prev -> (d.cname, merge_nodes prev d) :: List.remove_assoc d.cname acc
        | None -> (d.cname, d) :: acc)
      [] a.adeps
    |> List.map snd
    |> List.sort (fun x y -> String.compare x.cname y.cname)
  in
  digest ("abstract.v1" :: canonical_node a.aroot :: List.map canonical_node merged)

(* ------------------------------------------------------------------ *)

type concrete_node = {
  name : string;
  version : Version.t;
  variants : (string * string) list;
  compiler : Compiler.t;
  flags : (string * string) list;
  os : Os.t;
  target : string;
  depends : string list;
}

module Node_map = Map.Make (String)

type concrete = { root : string; nodes : concrete_node Node_map.t }

let make_concrete ~root nodes =
  let map =
    List.fold_left
      (fun acc n ->
        {
          n with
          variants = List.sort compare n.variants;
          flags = List.sort compare n.flags;
          depends = List.sort_uniq String.compare n.depends;
        }
        |> fun n -> Node_map.add n.name n acc)
      Node_map.empty nodes
  in
  if not (Node_map.mem root map) then invalid_arg "make_concrete: missing root node";
  Node_map.iter
    (fun _ n ->
      List.iter
        (fun d ->
          if not (Node_map.mem d map) then
            invalid_arg (Printf.sprintf "make_concrete: dangling edge %s -> %s" n.name d))
        n.depends)
    map;
  (* cycle check via DFS *)
  let state = Hashtbl.create 16 in
  let rec visit name =
    match Hashtbl.find_opt state name with
    | Some `Active -> invalid_arg "make_concrete: dependency cycle"
    | Some `Done -> ()
    | None ->
      Hashtbl.replace state name `Active;
      List.iter visit (Node_map.find name map).depends;
      Hashtbl.replace state name `Done
  in
  Node_map.iter (fun name _ -> visit name) map;
  { root; nodes = map }

let concrete_root c = Node_map.find c.root c.nodes

let concrete_nodes c =
  (* topological order, root first *)
  let seen = Hashtbl.create 16 in
  let order = ref [] in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      let n = Node_map.find name c.nodes in
      List.iter visit n.depends;
      order := n :: !order
    end
  in
  visit c.root;
  let reachable = !order in
  (* nodes unreachable from the root (multi-root solves) go last *)
  order := [];
  Node_map.iter (fun name _ -> visit name) c.nodes;
  reachable @ !order

let target_constraint_ok actual = function
  | None -> true
  | Some c ->
    if String.length c > 0 && c.[String.length c - 1] = ':' then
      let family = String.sub c 0 (String.length c - 1) in
      match Target.find actual with
      | Some t -> Target.is_descendant_of t family
      | None -> false
    else String.equal actual c

let node_satisfies (n : concrete_node) (c : constraint_node) =
  String.equal n.name c.cname
  && (match c.cversion with Some r -> Vrange.satisfies r n.version | None -> true)
  && List.for_all
       (fun (k, v) ->
         match List.assoc_opt k n.variants with
         | Some v' -> String.equal v v'
         | None -> false)
       c.cvariants
  && (match c.ccompiler with
     | Some cc -> String.equal n.compiler.Compiler.name cc
     | None -> true)
  && (match c.ccompiler_version with
     | Some r -> Vrange.satisfies r n.compiler.Compiler.version
     | None -> true)
  && List.for_all
       (fun (k, v) ->
         match List.assoc_opt k n.flags with
         | Some v' -> String.equal v v'
         | None -> false)
       c.cflags
  && (match c.cos with Some o -> String.equal n.os o | None -> true)
  && target_constraint_ok n.target c.ctarget

let concrete_satisfies (c : concrete) (a : abstract) =
  node_satisfies (concrete_root c) a.aroot
  && List.for_all
       (fun dep ->
         Node_map.exists (fun _ n -> node_satisfies n dep) c.nodes)
       a.adeps

(* ------------------------------------------------------------------ *)
(* DAG hashing: a 128-bit FNV-style digest over a canonical rendering   *)
(* of the node plus the hashes of its dependencies.                     *)
(* ------------------------------------------------------------------ *)

let concrete_node_to_string n =
  let buf = Buffer.create 48 in
  Buffer.add_string buf n.name;
  Buffer.add_string buf ("@" ^ Version.to_string n.version);
  List.iter (fun kv -> Buffer.add_string buf (variant_to_string kv)) n.variants;
  Buffer.add_string buf ("%" ^ Compiler.to_string n.compiler);
  List.iter
    (fun (k, v) -> Buffer.add_string buf (Printf.sprintf " %s=%S" k v))
    n.flags;
  Buffer.add_string buf (Printf.sprintf " os=%s target=%s" n.os n.target);
  Buffer.contents buf

let node_hash c name =
  let memo = Hashtbl.create 16 in
  let rec go name =
    match Hashtbl.find_opt memo name with
    | Some h -> h
    | None ->
      let n = Node_map.find name c.nodes in
      let h = digest (concrete_node_to_string n :: List.map go n.depends) in
      Hashtbl.replace memo name h;
      h
  in
  go name

let pp_concrete ppf c =
  let nodes = concrete_nodes c in
  List.iteri
    (fun i n ->
      if i > 0 then Format.fprintf ppf "@\n    ^%s" (concrete_node_to_string n)
      else Format.fprintf ppf "%s" (concrete_node_to_string n))
    nodes
