(** Specs: Spack's dependency-graph descriptions of builds.

    An {e abstract} spec is a bag of constraints (possibly underspecified)
    on a root package and selected dependencies.  A {e concrete} spec is a
    fully specified DAG: every node has a version, variant values, compiler,
    OS and target, and every edge is resolved.  The concretizer maps the
    former to the latter. *)

(** {1 Abstract specs} *)

type constraint_node = {
  cname : string;  (** package or virtual name *)
  cversion : Vrange.t option;
  cvariants : (string * string) list;  (** variant -> required value *)
  ccompiler : string option;
  ccompiler_version : Vrange.t option;
  cflags : (string * string) list;  (** compiler flags, e.g. [("cflags", "-O3")] *)
  cos : string option;
  ctarget : string option;  (** exact name, or [family:] for descendants *)
}

type abstract = {
  aroot : constraint_node;
  adeps : constraint_node list;  (** [^dep] constraints *)
}

val empty_node : string -> constraint_node
val abstract_of_name : string -> abstract

val merge_nodes : constraint_node -> constraint_node -> constraint_node
(** Union of constraints; second wins on scalar conflicts.  Used when the
    same dependency is constrained twice. *)

val node_to_string : constraint_node -> string
val abstract_to_string : abstract -> string
(** Spec syntax that {!Spec_parser.parse} maps back to the same constraints
    (ranges re-rendered canonically, flag values quoted verbatim). *)

val abstract_digest : abstract -> string
(** Canonical 128-bit digest of the constraints: insensitive to variant and
    flag order, to [^dep] order, to duplicate [^dep] constraints on one
    package (merged as {!merge_nodes} would), and to range spelling
    ([@1.2, 2.0:] vs [@1.2,2.0:]).  Two syntactic spellings of the same
    request produce one digest — the solve cache's request key
    ([Concretize.Concretizer.request_key]) is built on this. *)

val digest_strings : string list -> string
(** The 128-bit FNV-style digest underlying {!node_hash} and
    {!abstract_digest}, exposed for other content-addressed keys (installed
    database fingerprints, repository fingerprints, cache file footers). *)

(** {1 Concrete specs} *)

type concrete_node = {
  name : string;
  version : Version.t;
  variants : (string * string) list;  (** sorted by variant name *)
  compiler : Compiler.t;
  flags : (string * string) list;  (** sorted by flag name *)
  os : Os.t;
  target : string;
  depends : string list;  (** dependency package names, sorted *)
}

module Node_map : Map.S with type key = string

type concrete = { root : string; nodes : concrete_node Node_map.t }

val make_concrete : root:string -> concrete_node list -> concrete
(** @raise Invalid_argument if the root is missing, an edge dangles, or the
    graph is cyclic. *)

val concrete_root : concrete -> concrete_node
val concrete_nodes : concrete -> concrete_node list
(** In topological order, root first. *)

val node_satisfies : concrete_node -> constraint_node -> bool
(** Does a concrete node meet all the node-level constraints?  (Dependency
    constraints are checked by {!concrete_satisfies}.) *)

val concrete_satisfies : concrete -> abstract -> bool

val node_hash : concrete -> string -> string
(** Spack-style DAG hash of the sub-DAG rooted at the named node: stable
    digest of the node's parameters and its dependencies' hashes. *)

val concrete_node_to_string : concrete_node -> string
val pp_concrete : Format.formatter -> concrete -> unit
(** Paper-style rendering: root first, dependencies prefixed with [^]. *)
