type error = { message : string; text : string; pos : int }

exception Error of error

let error_to_string e =
  Printf.sprintf "%s\n  %s\n  %s^" e.message e.text (String.make e.pos ' ')

let is_name_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> true
  | _ -> false

let is_version_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | ',' -> true
  | _ -> false

let is_value_char = function
  | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' | '.' | ':' | ',' -> true
  | _ -> false

let flag_keys = [ "cflags"; "cxxflags"; "fflags"; "ldflags"; "cppflags" ]

(* Parse one node's text (without '^').  [s] may contain spaces between
   sigil groups: "hdf5@1.10 +mpi target=skylake".  Errors report [full]
   (the complete spec string) with a position of [base] plus the local
   offset, so the caret in the rendered message points into the original
   input even for [^dep] nodes. *)
let parse_node_text ?full ?(base = 0) text =
  let full = match full with Some f -> f | None -> text in
  let n = String.length text in
  let i = ref 0 in
  let fail at fmt =
    Printf.ksprintf
      (fun message ->
        raise (Error { message; text = full; pos = min (base + at) (String.length full) }))
      fmt
  in
  let err fmt = fail !i fmt in
  let peek () = if !i < n then Some text.[!i] else None in
  let take pred =
    let start = !i in
    while !i < n && pred text.[!i] do
      incr i
    done;
    String.sub text start (!i - start)
  in
  let skip_spaces () =
    while !i < n && (text.[!i] = ' ' || text.[!i] = '\t') do
      incr i
    done
  in
  skip_spaces ();
  let name = take is_name_char in
  if name = "" then err "expected a package name";
  let node = ref (Spec.empty_node name) in
  let set_variant k v =
    node :=
      { !node with Spec.cvariants = (k, v) :: List.remove_assoc k !node.Spec.cvariants }
  in
  let rec loop () =
    skip_spaces ();
    match peek () with
    | None -> ()
    | Some '@' ->
      incr i;
      let v = take is_version_char in
      if v = "" then err "empty version constraint";
      node := { !node with Spec.cversion = Some (Vrange.of_string v) };
      loop ()
    | Some '%' ->
      incr i;
      let c = take is_name_char in
      if c = "" then err "empty compiler name";
      node := { !node with Spec.ccompiler = Some c };
      (match peek () with
      | Some '@' ->
        incr i;
        let v = take is_version_char in
        if v = "" then err "empty compiler version";
        node := { !node with Spec.ccompiler_version = Some (Vrange.of_string v) }
      | _ -> ());
      loop ()
    | Some '+' ->
      incr i;
      let v = take is_name_char in
      if v = "" then err "empty variant name";
      set_variant v "true";
      loop ()
    | Some '~' ->
      incr i;
      let v = take is_name_char in
      if v = "" then err "empty variant name";
      set_variant v "false";
      loop ()
    | Some c when is_name_char c ->
      (* key=value *)
      let key_start = !i in
      let key = take is_name_char in
      (match peek () with
      | Some '=' ->
        incr i;
        (* values may be quoted (required for flags with spaces/dashes) *)
        let value_start = !i in
        let value =
          if peek () = Some '"' then begin
            incr i;
            let start = !i in
            while !i < n && text.[!i] <> '"' do
              incr i
            done;
            if !i >= n then fail value_start "unterminated quoted value";
            let v = String.sub text start (!i - start) in
            incr i;
            v
          end
          else take is_value_char
        in
        if value = "" then fail value_start "empty value for %s" key;
        (match key with
        | k when List.mem k flag_keys ->
          node :=
            {
              !node with
              Spec.cflags = (k, value) :: List.remove_assoc k !node.Spec.cflags;
            }
        | "os" -> node := { !node with Spec.cos = Some value }
        | "target" -> node := { !node with Spec.ctarget = Some value }
        | "arch" -> (
          (* platform-os-target *)
          match String.split_on_char '-' value with
          | [ _platform; os; target ] ->
            node := { !node with Spec.cos = Some os; ctarget = Some target }
          | _ ->
            fail value_start "arch= expects platform-os-target, got %S" value)
        | _ -> set_variant key value)
      | _ -> fail key_start "dangling token %S" key);
      loop ()
    | Some c -> err "unexpected character %C" c
  in
  loop ();
  {
    !node with
    Spec.cvariants = List.sort compare !node.Spec.cvariants;
    cflags = List.sort compare !node.Spec.cflags;
  }

let parse_node text =
  (match String.index_opt text '^' with
  | Some at ->
    raise (Error { message = "unexpected '^' in node"; text; pos = at })
  | None -> ());
  parse_node_text text

let parse original =
  let text = String.trim original in
  if text = "" then
    raise (Error { message = "empty spec"; text = original; pos = 0 });
  (* split on '^' keeping each piece's offset into [text] for error
     positions *)
  let pieces =
    let acc = ref [] and start = ref 0 in
    String.iteri (fun j c -> if c = '^' then begin
        acc := (String.sub text !start (j - !start), !start) :: !acc;
        start := j + 1
      end) text;
    acc := (String.sub text !start (String.length text - !start), !start) :: !acc;
    List.rev !acc
  in
  match pieces with
  | [] -> raise (Error { message = "empty spec"; text; pos = 0 })
  | (root, _) :: deps ->
    if String.trim root = "" then
      raise (Error { message = "spec must start with a root package"; text; pos = 0 });
    {
      Spec.aroot = parse_node_text ~full:text root;
      adeps =
        List.filter_map
          (fun (s, base) ->
            if String.trim s = "" then None
            else Some (parse_node_text ~full:text ~base s))
          deps;
    }
