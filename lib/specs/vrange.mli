(** Version constraints in Spack's [@] syntax.

    A constraint is a union of intervals:
    - ["1.2.8"] — the single version 1.2.8 (prefix match: also 1.2.8.x)
    - ["1.0.7:"] — 1.0.7 or higher
    - [":1.5"] — 1.5 or lower (any 1.5.x included)
    - ["1.2:1.5"] — inclusive range
    - ["1.2,2.0:"] — union *)

type t

val of_string : string -> t
(** @raise Invalid_argument on an empty constraint string. *)

val to_string : t -> string
(** The constraint as originally written (whitespace and all). *)

(** A normalized rendering that reparses to the same constraint: intervals
    rebuilt from their endpoints, no whitespace.  ["1.2, 2.0:"] becomes
    ["1.2,2.0:"].  Used by [Spec.abstract_digest] and the spec printers so
    two spellings of one constraint share a cache key. *)
val canonical : t -> string
val any : t
(** Matches every version. *)

val exactly : Version.t -> t
val satisfies : t -> Version.t -> bool
val is_any : t -> bool

val intersects : t -> t -> bool
(** Do the two constraints admit a common version?  (Approximate: decided on
    interval endpoints; sufficient for the package model, where conflicting
    declared versions are what matters.) *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
