(** Parser for Spack's spec syntax (Table I of the paper).

    Supported sigils:
    - [pkg@1.10.2] / [pkg@1.2:] / [pkg@1.2:1.5] — version constraints
    - [pkg%gcc] / [pkg%gcc@10.3.1] — compiler (and compiler version)
    - [+variant] / [~variant] — boolean variants (chainable: [+a~b+c])
    - [key=value] — valued variants, plus the reserved keys [os=], [target=]
      and [arch=platform-os-target]
    - [^dep...] — constraints on a dependency (fully recursive)

    Example: [hdf5@1.10.2 ^zlib%gcc ^cmake target=aarch64] *)

type error = {
  message : string;
  text : string;  (** the full spec string being parsed *)
  pos : int;  (** 0-based character offset of the error into [text] *)
}

exception Error of error

val error_to_string : error -> string
(** Render the message with the offending input and a caret under [pos]. *)

val parse : string -> Spec.abstract
(** @raise Error on malformed input. *)

val parse_node : string -> Spec.constraint_node
(** Parse a single node (no [^] allowed). *)
