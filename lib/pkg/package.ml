type version_decl = { vversion : Specs.Version.t; vweight : int; vdeprecated : bool }

type variant_decl = {
  var_name : string;
  var_default : string;
  var_values : string list;
  var_description : string;
}

type dependency = {
  dep_spec : Specs.Spec.constraint_node;
  dep_when : Specs.Spec.abstract option;
}

type conflict_decl = {
  conflict_spec : Specs.Spec.constraint_node;
  conflict_when : Specs.Spec.abstract option;
  conflict_msg : string;
}

type provide = { prov_virtual : string; prov_when : Specs.Spec.abstract option }

type t = {
  name : string;
  versions : version_decl list;
  variants : variant_decl list;
  dependencies : dependency list;
  conflicts : conflict_decl list;
  provides : provide list;
}

type directive =
  | Dversion of string * bool
  | Dvariant of variant_decl
  | Ddep of string * string option
  | Dconflict of string * string option * string
  | Dprovides of string * string option

let version ?(deprecated = false) v = Dversion (v, deprecated)

let variant ?(default = true) ?(description = "") name =
  Dvariant
    {
      var_name = name;
      var_default = (if default then "true" else "false");
      var_values = [ "true"; "false" ];
      var_description = description;
    }

let variant_values name ~default ~values ?(description = "") () =
  Dvariant
    {
      var_name = name;
      var_default = default;
      var_values = values;
      var_description = description;
    }

let depends_on ?when_ spec = Ddep (spec, when_)
let conflicts ?when_ ?(msg = "") spec = Dconflict (spec, when_, msg)
let provides ?when_ v = Dprovides (v, when_)

(* An "anonymous" constraint like "+mpi" or "%intel" or "@1.2:" or
   "target=aarch64:" constrains the package itself. *)
let parse_constraint ~self text =
  let text = String.trim text in
  let anonymous =
    text = ""
    || (match text.[0] with '@' | '%' | '+' | '~' -> true | _ -> false)
    ||
    (* key=value with no package name before it *)
    let rec scan i =
      if i >= String.length text then false
      else
        match text.[i] with
        | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '_' | '-' -> scan (i + 1)
        | '=' -> true
        | _ -> false
    in
    scan 0
  in
  if anonymous then
    let sep =
      if text = "" || text.[0] = '@' || text.[0] = '%' || text.[0] = '+' || text.[0] = '~'
      then ""
      else " "
    in
    Specs.Spec_parser.parse_node (self ^ sep ^ text)
  else Specs.Spec_parser.parse_node text

(* A when= condition may carry ^dep constraints on other DAG nodes. *)
let parse_when ~self text =
  match String.split_on_char '^' (String.trim text) with
  | [] -> { Specs.Spec.aroot = Specs.Spec.empty_node self; adeps = [] }
  | root :: deps ->
    let aroot =
      if String.trim root = "" then Specs.Spec.empty_node self
      else parse_constraint ~self root
    in
    {
      Specs.Spec.aroot;
      adeps =
        List.map Specs.Spec_parser.parse_node
          (List.filter (fun s -> String.trim s <> "") deps);
    }

let make name directives =
  let versions = ref [] and variants = ref [] in
  let deps = ref [] and confs = ref [] and provs = ref [] in
  let vcount = ref 0 in
  List.iter
    (function
      | Dversion (v, deprecated) ->
        versions :=
          { vversion = Specs.Version.of_string v; vweight = !vcount; vdeprecated = deprecated }
          :: !versions;
        incr vcount
      | Dvariant v -> variants := v :: !variants
      | Ddep (spec, when_) ->
        deps :=
          {
            dep_spec = Specs.Spec_parser.parse_node spec;
            dep_when = Option.map (parse_when ~self:name) when_;
          }
          :: !deps
      | Dconflict (spec, when_, msg) ->
        confs :=
          {
            conflict_spec = parse_constraint ~self:name spec;
            conflict_when = Option.map (parse_when ~self:name) when_;
            conflict_msg = msg;
          }
          :: !confs
      | Dprovides (v, when_) ->
        provs :=
          { prov_virtual = v; prov_when = Option.map (parse_when ~self:name) when_ }
          :: !provs)
    directives;
  {
    name;
    versions = List.rev !versions;
    variants = List.rev !variants;
    dependencies = List.rev !deps;
    conflicts = List.rev !confs;
    provides = List.rev !provs;
  }

let find_variant p name = List.find_opt (fun v -> String.equal v.var_name name) p.variants

let preferred_version p =
  match p.versions with
  | [] -> invalid_arg (Printf.sprintf "package %s declares no versions" p.name)
  | vs ->
    (List.fold_left (fun best v -> if v.vweight < best.vweight then v else best)
       (List.hd vs) vs)
      .vversion

let declared_versions p = p.versions

let versions_satisfying p range =
  List.filter_map
    (fun v ->
      if Specs.Vrange.satisfies range v.vversion then Some v.vversion else None)
    p.versions

(* A stable plain-text rendering of the whole recipe, used to fingerprint
   repositories for solve-cache keys: any change to a directive changes the
   rendering, and therefore the fingerprint. *)
let render p =
  let b = Buffer.create 256 in
  let add fmt = Printf.bprintf b fmt in
  let when_to_string = function
    | None -> ""
    | Some w -> " when " ^ Specs.Spec.abstract_to_string w
  in
  add "package %s\n" p.name;
  List.iter
    (fun v ->
      add "  version %s w=%d%s\n"
        (Specs.Version.to_string v.vversion)
        v.vweight
        (if v.vdeprecated then " deprecated" else ""))
    p.versions;
  List.iter
    (fun v ->
      add "  variant %s default=%s values=%s\n" v.var_name v.var_default
        (String.concat "," v.var_values))
    p.variants;
  List.iter
    (fun d ->
      add "  depends_on %s%s\n"
        (Specs.Spec.node_to_string d.dep_spec)
        (when_to_string d.dep_when))
    p.dependencies;
  List.iter
    (fun c ->
      add "  conflicts %s%s msg=%s\n"
        (Specs.Spec.node_to_string c.conflict_spec)
        (when_to_string c.conflict_when)
        c.conflict_msg)
    p.conflicts;
  List.iter
    (fun pr -> add "  provides %s%s\n" pr.prov_virtual (when_to_string pr.prov_when))
    p.provides;
  Buffer.contents b
