(** The installed-package database / binary buildcache.

    Stores per-node records of concrete specs keyed by DAG hash — the same
    information Spack encodes into reuse facts ([installed_hash/2] plus
    hash-keyed [imposed_constraint]s, Section VI). *)

type record = {
  hash : string;
  name : string;
  version : Specs.Version.t;
  variants : (string * string) list;
  compiler : Specs.Compiler.t;
  os : Specs.Os.t;
  target : string;
  deps : (string * string) list;  (** (dependency package, dependency hash) *)
}

type t

val create : unit -> t

val add_record : t -> record -> unit
(** Idempotent on hash. *)

val add_concrete : t -> Specs.Spec.concrete -> unit
(** Install every node of a concrete spec. *)

val find : t -> string -> record option
(** Lookup by hash. *)

val by_package : t -> string -> record list
val records : t -> record list
val size : t -> int
val is_empty : t -> bool

val filter : t -> f:(record -> bool) -> t
(** Restrict to records matching [f] whose dependency closure also matches
    (dangling sub-DAGs are dropped), e.g. per-architecture or per-OS
    buildcache slices (§VII-C). *)

val mem_dag : t -> string -> bool
(** Is the hash present with its full dependency closure? *)

(** {1 Persistence}

    A stable line-oriented text format ([spack-installed-db v1]) with a
    digest footer, so the installed database and buildcaches survive across
    runs ([spack_serve]'s [--db]) and corruption is detected instead of
    silently accepted. *)

type load_error =
  | No_such_file of string
  | Bad_header of string  (** not this format, or a stale format version *)
  | Bad_digest  (** footer digest mismatch: the file is corrupt *)
  | Truncated  (** missing digest footer: the file was cut short *)
  | Malformed of { line : int; reason : string }

val load_error_to_string : load_error -> string

val save : t -> string -> unit
(** Write the database to [path] atomically (temp file + rename): a reader
    never observes a half-written file.  Records are written in insertion
    order, so save/load round-trips preserve {!records} order and therefore
    reuse-fact generation. *)

val load : string -> (t, load_error) result

val fingerprint : t -> string
(** Cheap content digest over the record DAG hashes (insertion order).
    Solve-cache keys include it, so installing anything invalidates every
    key derived from the old database state. *)
