(** The installed-package database / binary buildcache.

    Stores per-node records of concrete specs keyed by DAG hash — the same
    information Spack encodes into reuse facts ([installed_hash/2] plus
    hash-keyed [imposed_constraint]s, Section VI).

    Records live in a packed arena — every string field is interned into a
    pool and each record is a row of pool ids in flat int arrays — so a
    full E4S-scale buildcache (60k+ specs, §VII-C) costs a few hundred
    bytes per record instead of a boxed record of lists.  {!filter}
    returns a *view* sharing the parent's arena (no copying); the arena is
    append-only, so a view is a stable snapshot and mutating through one
    is rejected. *)

type record = {
  hash : string;
  name : string;
  version : Specs.Version.t;
  variants : (string * string) list;
  compiler : Specs.Compiler.t;
  os : Specs.Os.t;
  target : string;
  deps : (string * string) list;  (** (dependency package, dependency hash) *)
}

type t

val create : unit -> t

val add_record : t -> record -> unit
(** Idempotent on hash. Raises [Invalid_argument] on a {!filter} view. *)

val add_concrete : t -> Specs.Spec.concrete -> unit
(** Install every node of a concrete spec. Raises [Invalid_argument] on a
    {!filter} view. *)

val copy : t -> t
(** An independent database with the same visible records (the server's
    install path copies, extends, then atomically swaps). Copying a full
    database is a flat array blit; copying a view compacts it. *)

val find : t -> string -> record option
(** Lookup by hash. *)

val by_package : t -> string -> record list
(** Records for one package, newest install first. *)

val records : t -> record list
(** All visible records in insertion order. *)

val size : t -> int
val is_empty : t -> bool
val is_view : t -> bool

val filter : t -> f:(record -> bool) -> t
(** Restrict to records matching [f] whose dependency closure also matches
    (dangling sub-DAGs are dropped), e.g. per-architecture or per-OS
    buildcache slices (§VII-C). The result is a view over the parent's
    arena: no records are copied, and it is a snapshot — records installed
    into the parent afterwards are not visible, and {!add_record} /
    {!add_concrete} on the view raise. *)

val mem_dag : t -> string -> bool
(** Is the hash present with its full dependency closure? *)

(** {1 Packed access}

    Allocation-free accessors for the fact pipeline: iterate visible rows
    ({e slots}), read pool ids per field, resolve ids to strings or
    memoized parsed versions. Slots and pool ids are only meaningful for
    the database (and views of the database) that produced them. *)

val iter_slots : t -> (int -> unit) -> unit
(** Visible slots in insertion order. *)

val slot_of_hash : t -> string -> int option
val pool_size : t -> int
val str_of_id : t -> int -> string

val version_of_id : t -> int -> Specs.Version.t
(** Memoized [Specs.Version.of_string] of the pooled string. *)

val p_hash : t -> int -> int
val p_name : t -> int -> int
val p_version : t -> int -> int
val p_compiler_name : t -> int -> int
val p_compiler_version : t -> int -> int
val p_os : t -> int -> int
val p_target : t -> int -> int
val n_variants : t -> int -> int
val n_deps : t -> int -> int

val iter_variants : t -> int -> (int -> int -> unit) -> unit
(** [iter_variants t slot f] calls [f key_id value_id] in recipe order. *)

val iter_deps : t -> int -> (int -> int -> unit) -> unit
(** [iter_deps t slot f] calls [f package_id hash_id] per direct dep. *)

(** {1 Persistence}

    A stable line-oriented text format ([spack-installed-db v1]) with a
    digest footer, so the installed database and buildcaches survive across
    runs ([spack_serve]'s [--db]) and corruption is detected instead of
    silently accepted. *)

type load_error =
  | No_such_file of string
  | Bad_header of string  (** not this format, or a stale format version *)
  | Bad_digest  (** footer digest mismatch: the file is corrupt *)
  | Truncated  (** missing digest footer: the file was cut short *)
  | Malformed of { line : int; reason : string }

val load_error_to_string : load_error -> string

val format_header : string

val save : t -> string -> unit
(** Write the database to [path] atomically (temp file + rename): a reader
    never observes a half-written file.  Records are written in insertion
    order, so save/load round-trips preserve {!records} order and therefore
    reuse-fact generation. *)

val load : string -> (t, load_error) result

val render_string : t -> string
(** The exact bytes {!save} would write (digest footer included) as one
    string — how replication ships a database snapshot to a follower. *)

val load_string : string -> (t, load_error) result
(** Parse {!render_string} output, with the same verification as {!load}. *)

val fingerprint : t -> string
(** Cheap content digest over the record DAG hashes (insertion order).
    Solve-cache keys include it, so installing anything invalidates every
    key derived from the old database state. *)
