(** Package recipes: the metadata half of Spack's package DSL (Fig. 2).

    A recipe declares versions, variants, dependencies, conflicts and
    virtual-package [provides] — each optionally guarded by a [when]
    condition written in spec syntax.  The build half ([install()]) is out
    of scope: nothing is compiled here.

    Example, mirroring the paper's Fig. 2:
    {[
      let example =
        Package.make "example"
          [
            version "1.1.0";
            version "1.0.0";
            variant "bzip" ~default:true ~description:"enable bzip";
            depends_on "bzip2@1.0.7:" ~when_:"+bzip";
            depends_on "zlib";
            depends_on "zlib@1.2.8:" ~when_:"@1.1.0:";
            depends_on "mpi";
            conflicts "%intel";
            conflicts "target=aarch64:";
          ]
    ]} *)

type version_decl = { vversion : Specs.Version.t; vweight : int; vdeprecated : bool }

type variant_decl = {
  var_name : string;
  var_default : string;
  var_values : string list;
  var_description : string;
}

type dependency = {
  dep_spec : Specs.Spec.constraint_node;  (** constraint imposed on the dependency *)
  dep_when : Specs.Spec.abstract option;
      (** condition on the dependent; its [adeps] express [^pkg] conditions
          on other nodes of the DAG (§V-B.3) *)
}

type conflict_decl = {
  conflict_spec : Specs.Spec.constraint_node;  (** pattern that must not hold *)
  conflict_when : Specs.Spec.abstract option;
  conflict_msg : string;
}

type provide = {
  prov_virtual : string;
  prov_when : Specs.Spec.abstract option;
}

type t = {
  name : string;
  versions : version_decl list;  (** newest (lowest weight) first *)
  variants : variant_decl list;
  dependencies : dependency list;
  conflicts : conflict_decl list;
  provides : provide list;
}

(** {1 Directives} *)

type directive

val version : ?deprecated:bool -> string -> directive
(** Versions are weighted by declaration order: first declared = preferred. *)

val variant : ?default:bool -> ?description:string -> string -> directive
(** Boolean variant. *)

val variant_values :
  string -> default:string -> values:string list -> ?description:string -> unit -> directive
(** Multi-valued variant. *)

val depends_on : ?when_:string -> string -> directive
val conflicts : ?when_:string -> ?msg:string -> string -> directive
val provides : ?when_:string -> string -> directive

val make : string -> directive list -> t
(** Assemble a recipe.  [when]/[conflicts] spec strings may be anonymous
    (["+mpi"], ["%intel"], ["@1.2:"]): they implicitly constrain the package
    itself.
    @raise Specs.Spec_parser.Error on malformed spec strings. *)

(** {1 Accessors} *)

val find_variant : t -> string -> variant_decl option
val preferred_version : t -> Specs.Version.t
(** @raise Invalid_argument when the recipe declares no versions. *)

val declared_versions : t -> version_decl list
val versions_satisfying : t -> Specs.Vrange.t -> Specs.Version.t list
val parse_constraint : self:string -> string -> Specs.Spec.constraint_node
(** Parse a possibly anonymous constraint against package [self]
    (no [^] allowed). *)

val parse_when : self:string -> string -> Specs.Spec.abstract
(** Parse a [when=] condition: a possibly anonymous constraint on [self],
    optionally followed by [^dep] constraints on other DAG nodes. *)

val render : t -> string
(** Stable plain-text rendering of the recipe (every directive, in
    declaration order).  [Repo.fingerprint] digests these to content-address
    a repository for the solve cache. *)
