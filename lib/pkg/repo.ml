type t = {
  by_name : (string, Package.t) Hashtbl.t;
  names : string list;
  virtual_providers : (string, string list) Hashtbl.t;
  mutable fp : string option;  (** memoized {!fingerprint} (immutable repo) *)
}

let make ?(preferred_providers = []) packages =
  let by_name = Hashtbl.create 256 in
  List.iter
    (fun (p : Package.t) ->
      if Hashtbl.mem by_name p.Package.name then
        invalid_arg (Printf.sprintf "duplicate package %s" p.Package.name);
      Hashtbl.add by_name p.Package.name p)
    packages;
  let virtual_providers = Hashtbl.create 16 in
  List.iter
    (fun (p : Package.t) ->
      List.iter
        (fun (pr : Package.provide) ->
          let v = pr.Package.prov_virtual in
          let existing = Option.value ~default:[] (Hashtbl.find_opt virtual_providers v) in
          if not (List.mem p.Package.name existing) then
            Hashtbl.replace virtual_providers v (existing @ [ p.Package.name ]))
        p.Package.provides)
    packages;
  (* apply preferred-provider ordering *)
  Hashtbl.iter
    (fun v provs ->
      let preferred =
        List.filter_map
          (fun (v', p) -> if String.equal v v' && List.mem p provs then Some p else None)
          preferred_providers
      in
      let rest = List.filter (fun p -> not (List.mem p preferred)) provs in
      Hashtbl.replace virtual_providers v (preferred @ rest))
    (Hashtbl.copy virtual_providers);
  { by_name; names = List.map (fun (p : Package.t) -> p.Package.name) packages;
    virtual_providers; fp = None }

let find t name = Hashtbl.find_opt t.by_name name

let find_exn t name =
  match find t name with
  | Some p -> p
  | None -> invalid_arg (Printf.sprintf "unknown package %s" name)

let package_names t = t.names
let packages t = List.map (fun n -> Hashtbl.find t.by_name n) t.names
let size t = List.length t.names
let is_virtual t name = Hashtbl.mem t.virtual_providers name

let virtuals t =
  Hashtbl.fold (fun v _ acc -> v :: acc) t.virtual_providers [] |> List.sort compare

let providers t v = Option.value ~default:[] (Hashtbl.find_opt t.virtual_providers v)

let provider_weight t ~virtual_ ~provider =
  let rec idx i = function
    | [] -> 99
    | p :: rest -> if String.equal p provider then i else idx (i + 1) rest
  in
  idx 0 (providers t virtual_)

let possible_dependencies t root =
  let seen = Hashtbl.create 64 in
  let rec visit name =
    if not (Hashtbl.mem seen name) then begin
      Hashtbl.replace seen name ();
      let targets =
        if is_virtual t name then providers t name
        else
          match find t name with
          | None -> []
          | Some p ->
            List.map
              (fun (d : Package.dependency) -> d.Package.dep_spec.Specs.Spec.cname)
              p.Package.dependencies
      in
      List.iter visit targets
    end
  in
  visit root;
  Hashtbl.remove seen root;
  Hashtbl.fold (fun n () acc -> n :: acc) seen [] |> List.sort compare

let fingerprint t =
  match t.fp with
  | Some fp -> fp
  | None ->
    let provider_lines =
      List.map
        (fun v -> v ^ " -> " ^ String.concat "," (providers t v))
        (virtuals t)
    in
    let fp =
      Specs.Spec.digest_strings
        (("repo.v1" :: List.map Package.render (packages t)) @ provider_lines)
    in
    t.fp <- Some fp;
    fp
