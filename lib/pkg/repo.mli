(** Package repositories: the set of recipes a concretization draws from. *)

type t

val make : ?preferred_providers:(string * string) list -> Package.t list -> t
(** Build a repository.  Virtual package names are inferred from [provides]
    directives.  [preferred_providers] orders providers per virtual (first =
    most preferred); unlisted providers follow in declaration order.
    @raise Invalid_argument on duplicate package names. *)

val find : t -> string -> Package.t option
val find_exn : t -> string -> Package.t
val package_names : t -> string list
val packages : t -> Package.t list
val size : t -> int

val is_virtual : t -> string -> bool
val virtuals : t -> string list

val providers : t -> string -> string list
(** Provider package names for a virtual, most preferred first. *)

val provider_weight : t -> virtual_:string -> provider:string -> int

val possible_dependencies : t -> string -> string list
(** Transitive closure of every package that {e could} appear in a solve
    rooted at the given package: all conditional dependency branches are
    followed and virtual dependencies expand to all their providers.  This
    is the paper's "possible dependencies" measure (Fig. 7), which bounds
    solver work much better than the resolved dependency count. *)

val fingerprint : t -> string
(** Content digest of every recipe plus the effective provider orderings.
    Two repositories with the same fingerprint concretize identically, so
    the fingerprint is a sound solve-cache key component; it is computed on
    first use and memoized (the repository is immutable after {!make}). *)
