(* The installed database as a packed record arena.

   At E4S scale (§VII-C: 63,099 installed specs) the database dominates
   resident memory if every record is a boxed OCaml record of strings and
   lists.  Instead, all record fields live in flat int arrays indexed by a
   dense {e slot}; the ints are ids into a string pool that interns every
   distinct name/hash/version/os/target/variant string once.  A 63k-spec
   cache has only a few thousand distinct strings, so the arena is a few
   hundred bytes per record and field access is an array read.

   Slices ({!filter}) are *views*: a selection of slots sharing the parent's
   arena, no copying.  The arena is append-only and existing slots are never
   mutated, so a view is a consistent snapshot even if the parent keeps
   installing; mutating through a view is rejected.

   The boxed {!record} type survives as a materialized view for callers
   that want one; the fact pipeline ({!Concretize.Facts}) uses the packed
   accessors and never materializes. *)

type record = {
  hash : string;
  name : string;
  version : Specs.Version.t;
  variants : (string * string) list;
  compiler : Specs.Compiler.t;
  os : Specs.Os.t;
  target : string;
  deps : (string * string) list;
}

(* ------------------------------------------------------------------ *)
(* String pool: dense ids, memoized version parses                     *)
(* ------------------------------------------------------------------ *)

module Pool = struct
  type t = {
    tbl : (string, int) Hashtbl.t;
    mutable strs : string array;
    mutable vers : Specs.Version.t option array;  (** memoized [of_string strs.(i)] *)
    mutable n : int;
  }

  let create () =
    { tbl = Hashtbl.create 512; strs = Array.make 512 ""; vers = Array.make 512 None; n = 0 }

  let intern p s =
    match Hashtbl.find_opt p.tbl s with
    | Some i -> i
    | None ->
      if p.n = Array.length p.strs then begin
        let grow a dummy =
          let a' = Array.make (2 * Array.length a) dummy in
          Array.blit a 0 a' 0 p.n;
          a'
        in
        p.strs <- grow p.strs "";
        p.vers <- grow p.vers None
      end;
      let i = p.n in
      p.strs.(i) <- s;
      Hashtbl.add p.tbl s i;
      p.n <- i + 1;
      i

  let str p i = p.strs.(i)

  let version p i =
    match p.vers.(i) with
    | Some v -> v
    | None ->
      let v = Specs.Version.of_string p.strs.(i) in
      p.vers.(i) <- Some v;
      v

  let copy p =
    {
      tbl = Hashtbl.copy p.tbl;
      strs = Array.copy p.strs;
      vers = Array.copy p.vers;
      n = p.n;
    }
end

(* ------------------------------------------------------------------ *)
(* The arena                                                           *)
(* ------------------------------------------------------------------ *)

type arena = {
  pool : Pool.t;
  mutable n : int;  (** records, in insertion order *)
  (* per-record pool ids *)
  mutable f_hash : int array;
  mutable f_name : int array;
  mutable f_version : int array;
  mutable f_cname : int array;
  mutable f_cversion : int array;
  mutable f_os : int array;
  mutable f_target : int array;
  (* per-record ranges into the flat kv / dep arrays *)
  mutable f_voff : int array;
  mutable f_vlen : int array;
  mutable f_doff : int array;
  mutable f_dlen : int array;
  mutable kv_key : int array;
  mutable kv_val : int array;
  mutable n_kv : int;
  mutable dp_name : int array;
  mutable dp_hash : int array;
  mutable n_dp : int;
  by_hash : (string, int) Hashtbl.t;  (** hash string -> slot *)
}

type t = {
  arena : arena;
  sel : int array option;  (** visible slots, insertion order; [None] = whole arena *)
  mask : Bytes.t option;  (** visibility bitset over slots; paired with [sel] *)
}

let mask_get m i = Char.code (Bytes.get m (i lsr 3)) land (1 lsl (i land 7)) <> 0

let mask_set m i =
  Bytes.set m (i lsr 3) (Char.chr (Char.code (Bytes.get m (i lsr 3)) lor (1 lsl (i land 7))))

let create_arena () =
  {
    pool = Pool.create ();
    n = 0;
    f_hash = Array.make 256 0;
    f_name = Array.make 256 0;
    f_version = Array.make 256 0;
    f_cname = Array.make 256 0;
    f_cversion = Array.make 256 0;
    f_os = Array.make 256 0;
    f_target = Array.make 256 0;
    f_voff = Array.make 256 0;
    f_vlen = Array.make 256 0;
    f_doff = Array.make 256 0;
    f_dlen = Array.make 256 0;
    kv_key = Array.make 512 0;
    kv_val = Array.make 512 0;
    n_kv = 0;
    dp_name = Array.make 512 0;
    dp_hash = Array.make 512 0;
    n_dp = 0;
    by_hash = Hashtbl.create 256;
  }

let create () = { arena = create_arena (); sel = None; mask = None }
let is_view t = t.sel <> None

let grow_to a n dummy =
  if n <= Array.length a then a
  else begin
    let a' = Array.make (max n (2 * Array.length a)) dummy in
    Array.blit a 0 a' 0 (Array.length a);
    a'
  end

let ensure_records ar n =
  if n > Array.length ar.f_hash then begin
    ar.f_hash <- grow_to ar.f_hash n 0;
    ar.f_name <- grow_to ar.f_name n 0;
    ar.f_version <- grow_to ar.f_version n 0;
    ar.f_cname <- grow_to ar.f_cname n 0;
    ar.f_cversion <- grow_to ar.f_cversion n 0;
    ar.f_os <- grow_to ar.f_os n 0;
    ar.f_target <- grow_to ar.f_target n 0;
    ar.f_voff <- grow_to ar.f_voff n 0;
    ar.f_vlen <- grow_to ar.f_vlen n 0;
    ar.f_doff <- grow_to ar.f_doff n 0;
    ar.f_dlen <- grow_to ar.f_dlen n 0
  end

let add_record t r =
  if is_view t then
    invalid_arg "Pkg.Database.add_record: cannot mutate a filtered slice";
  let ar = t.arena in
  if not (Hashtbl.mem ar.by_hash r.hash) then begin
    let slot = ar.n in
    ensure_records ar (slot + 1);
    let it = Pool.intern ar.pool in
    ar.f_hash.(slot) <- it r.hash;
    ar.f_name.(slot) <- it r.name;
    ar.f_version.(slot) <- it (Specs.Version.to_string r.version);
    ar.f_cname.(slot) <- it r.compiler.Specs.Compiler.name;
    ar.f_cversion.(slot) <- it (Specs.Version.to_string r.compiler.Specs.Compiler.version);
    ar.f_os.(slot) <- it r.os;
    ar.f_target.(slot) <- it r.target;
    let nv = List.length r.variants in
    ar.kv_key <- grow_to ar.kv_key (ar.n_kv + nv) 0;
    ar.kv_val <- grow_to ar.kv_val (ar.n_kv + nv) 0;
    ar.f_voff.(slot) <- ar.n_kv;
    ar.f_vlen.(slot) <- nv;
    List.iter
      (fun (k, v) ->
        ar.kv_key.(ar.n_kv) <- it k;
        ar.kv_val.(ar.n_kv) <- it v;
        ar.n_kv <- ar.n_kv + 1)
      r.variants;
    let nd = List.length r.deps in
    ar.dp_name <- grow_to ar.dp_name (ar.n_dp + nd) 0;
    ar.dp_hash <- grow_to ar.dp_hash (ar.n_dp + nd) 0;
    ar.f_doff.(slot) <- ar.n_dp;
    ar.f_dlen.(slot) <- nd;
    List.iter
      (fun (p, h) ->
        ar.dp_name.(ar.n_dp) <- it p;
        ar.dp_hash.(ar.n_dp) <- it h;
        ar.n_dp <- ar.n_dp + 1)
      r.deps;
    Hashtbl.add ar.by_hash r.hash slot;
    ar.n <- slot + 1
  end

let add_concrete t (c : Specs.Spec.concrete) =
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      add_record t
        {
          hash = Specs.Spec.node_hash c n.Specs.Spec.name;
          name = n.Specs.Spec.name;
          version = n.Specs.Spec.version;
          variants = n.Specs.Spec.variants;
          compiler = n.Specs.Spec.compiler;
          os = n.Specs.Spec.os;
          target = n.Specs.Spec.target;
          deps =
            List.map (fun d -> (d, Specs.Spec.node_hash c d)) n.Specs.Spec.depends;
        })
    (Specs.Spec.concrete_nodes c)

(* ------------------------------------------------------------------ *)
(* Packed access                                                       *)
(* ------------------------------------------------------------------ *)

let size t = match t.sel with Some s -> Array.length s | None -> t.arena.n
let is_empty t = size t = 0

let iter_slots t f =
  match t.sel with
  | Some s -> Array.iter f s
  | None ->
    for i = 0 to t.arena.n - 1 do
      f i
    done

let visible t slot =
  match t.mask with
  | Some m -> slot < 8 * Bytes.length m && mask_get m slot
  | None -> true

let slot_of_hash t h =
  match Hashtbl.find_opt t.arena.by_hash h with
  | Some slot when visible t slot -> Some slot
  | _ -> None

let pool_size t = t.arena.pool.Pool.n
let str_of_id t i = Pool.str t.arena.pool i
let version_of_id t i = Pool.version t.arena.pool i
let p_hash t slot = t.arena.f_hash.(slot)
let p_name t slot = t.arena.f_name.(slot)
let p_version t slot = t.arena.f_version.(slot)
let p_compiler_name t slot = t.arena.f_cname.(slot)
let p_compiler_version t slot = t.arena.f_cversion.(slot)
let p_os t slot = t.arena.f_os.(slot)
let p_target t slot = t.arena.f_target.(slot)
let n_variants t slot = t.arena.f_vlen.(slot)
let n_deps t slot = t.arena.f_dlen.(slot)

let iter_variants t slot f =
  let ar = t.arena in
  let off = ar.f_voff.(slot) in
  for k = 0 to ar.f_vlen.(slot) - 1 do
    f ar.kv_key.(off + k) ar.kv_val.(off + k)
  done

let iter_deps t slot f =
  let ar = t.arena in
  let off = ar.f_doff.(slot) in
  for k = 0 to ar.f_dlen.(slot) - 1 do
    f ar.dp_name.(off + k) ar.dp_hash.(off + k)
  done

(* ------------------------------------------------------------------ *)
(* Materialized views                                                  *)
(* ------------------------------------------------------------------ *)

let record_of_slot t slot =
  let ar = t.arena in
  let s = Pool.str ar.pool in
  let variants = ref [] and deps = ref [] in
  iter_variants t slot (fun k v -> variants := (s k, s v) :: !variants);
  iter_deps t slot (fun p h -> deps := (s p, s h) :: !deps);
  {
    hash = s ar.f_hash.(slot);
    name = s ar.f_name.(slot);
    version = Pool.version ar.pool ar.f_version.(slot);
    variants = List.rev !variants;
    compiler =
      {
        Specs.Compiler.name = s ar.f_cname.(slot);
        version = Pool.version ar.pool ar.f_cversion.(slot);
      };
    os = s ar.f_os.(slot);
    target = s ar.f_target.(slot);
    deps = List.rev !deps;
  }

let find t hash = Option.map (record_of_slot t) (slot_of_hash t hash)

let records t =
  let acc = ref [] in
  iter_slots t (fun slot -> acc := record_of_slot t slot :: !acc);
  List.rev !acc

let by_package t name =
  (* newest first, matching the historical insertion-list order *)
  let acc = ref [] in
  iter_slots t (fun slot ->
      if String.equal (Pool.str t.arena.pool t.arena.f_name.(slot)) name then
        acc := record_of_slot t slot :: !acc);
  !acc

let rec dag_complete t slot =
  let ok = ref true in
  iter_deps t slot (fun _ dh ->
      if !ok then
        match slot_of_hash t (Pool.str t.arena.pool dh) with
        | Some d -> if not (dag_complete t d) then ok := false
        | None -> ok := false);
  !ok

let mem_dag t hash =
  match slot_of_hash t hash with Some slot -> dag_complete t slot | None -> false

(* ------------------------------------------------------------------ *)
(* Copy (the server's install path builds a fresh db and swaps it in)  *)
(* ------------------------------------------------------------------ *)

let copy_arena ar =
  {
    pool = Pool.copy ar.pool;
    n = ar.n;
    f_hash = Array.copy ar.f_hash;
    f_name = Array.copy ar.f_name;
    f_version = Array.copy ar.f_version;
    f_cname = Array.copy ar.f_cname;
    f_cversion = Array.copy ar.f_cversion;
    f_os = Array.copy ar.f_os;
    f_target = Array.copy ar.f_target;
    f_voff = Array.copy ar.f_voff;
    f_vlen = Array.copy ar.f_vlen;
    f_doff = Array.copy ar.f_doff;
    f_dlen = Array.copy ar.f_dlen;
    kv_key = Array.copy ar.kv_key;
    kv_val = Array.copy ar.kv_val;
    n_kv = ar.n_kv;
    dp_name = Array.copy ar.dp_name;
    dp_hash = Array.copy ar.dp_hash;
    n_dp = ar.n_dp;
    by_hash = Hashtbl.copy ar.by_hash;
  }

let copy t =
  match t.sel with
  | None -> { arena = copy_arena t.arena; sel = None; mask = None }
  | Some _ ->
    (* a slice copies record by record into a compact fresh arena *)
    let out = create () in
    iter_slots t (fun slot -> add_record out (record_of_slot t slot));
    out

(* ------------------------------------------------------------------ *)
(* Persistence: a stable line-oriented text format with a digest footer.

   header:   spack-installed-db v1
   records:  record <hash> <name> <version> <os> <target> <cname> <cversion>
             variant <name> <value>          (0+ lines, this record's)
             dep <package> <hash>            (0+ lines, this record's)
   footer:   digest <hex over every preceding line>

   Fields are tab-separated; none of them can contain a tab (they come from
   recipe names, version strings and variant values).  Records are written
   in insertion order so a load-save cycle is byte-identical and reuse-fact
   generation (which walks records in insertion order) is unchanged after a
   reload. *)
(* ------------------------------------------------------------------ *)

let format_header = "spack-installed-db v1"

type load_error =
  | No_such_file of string
  | Bad_header of string  (** first line (stale or foreign format) *)
  | Bad_digest  (** footer digest does not match the content (corruption) *)
  | Truncated  (** no digest footer: the file was cut short *)
  | Malformed of { line : int; reason : string }

let load_error_to_string = function
  | No_such_file p -> Printf.sprintf "no such database file: %s" p
  | Bad_header h -> Printf.sprintf "not a spack-installed-db file (header %S)" h
  | Bad_digest -> "digest mismatch: the database file is corrupt"
  | Truncated -> "truncated database file (missing digest footer)"
  | Malformed { line; reason } -> Printf.sprintf "malformed database file, line %d: %s" line reason

let render_lines t =
  let buf = ref [ format_header ] in
  let add l = buf := l :: !buf in
  let s = Pool.str t.arena.pool in
  iter_slots t (fun slot ->
      let ar = t.arena in
      add
        (String.concat "\t"
           [
             "record";
             s ar.f_hash.(slot);
             s ar.f_name.(slot);
             s ar.f_version.(slot);
             s ar.f_os.(slot);
             s ar.f_target.(slot);
             s ar.f_cname.(slot);
             s ar.f_cversion.(slot);
           ]);
      iter_variants t slot (fun k v -> add (String.concat "\t" [ "variant"; s k; s v ]));
      iter_deps t slot (fun p h -> add (String.concat "\t" [ "dep"; s p; s h ])));
  List.rev !buf

let render_string t =
  let lines = render_lines t in
  let digest = Specs.Spec.digest_strings lines in
  let buf = Buffer.create 4096 in
  List.iter
    (fun l ->
      Buffer.add_string buf l;
      Buffer.add_char buf '\n')
    lines;
  Buffer.add_string buf ("digest\t" ^ digest ^ "\n");
  Buffer.contents buf

let save t path =
  let lines = render_lines t in
  let digest = Specs.Spec.digest_strings lines in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      output_string oc ("digest\t" ^ digest ^ "\n"));
  (* atomic publish: readers see either the old or the new complete file *)
  Sys.rename tmp path

let parse_lines lines =
  match lines with
    | [] -> Error (Bad_header "")
    | header :: _ when not (String.equal header format_header) -> Error (Bad_header header)
    | _ :: rest -> (
      (* split off the digest footer, then verify it over everything else *)
      match List.rev rest with
      | [] -> Error Truncated
      | footer :: body_rev -> (
        let body = List.rev body_rev in
        match String.split_on_char '\t' footer with
        | [ "digest"; d ] ->
          if not (String.equal d (Specs.Spec.digest_strings (format_header :: body)))
          then Error Bad_digest
          else begin
            let t = create () in
            let current = ref None in
            let flush_current () =
              match !current with
              | None -> ()
              | Some r ->
                add_record t { r with variants = List.rev r.variants; deps = List.rev r.deps };
                current := None
            in
            let err = ref None in
            List.iteri
              (fun i line ->
                if !err = None then
                  let lineno = i + 2 (* 1-based, after the header *) in
                  match String.split_on_char '\t' line with
                  | [ "record"; hash; name; version; os; target; cname; cversion ] ->
                    flush_current ();
                    (match
                       ( Specs.Version.of_string version,
                         Specs.Version.of_string cversion )
                     with
                    | v, cv ->
                      current :=
                        Some
                          {
                            hash;
                            name;
                            version = v;
                            variants = [];
                            compiler = { Specs.Compiler.name = cname; version = cv };
                            os;
                            target;
                            deps = [];
                          }
                    | exception _ ->
                      err := Some (Malformed { line = lineno; reason = "bad version" }))
                  | [ "variant"; k; v ] -> (
                    match !current with
                    | Some r -> current := Some { r with variants = (k, v) :: r.variants }
                    | None ->
                      err := Some (Malformed { line = lineno; reason = "variant before record" }))
                  | [ "dep"; p; h ] -> (
                    match !current with
                    | Some r -> current := Some { r with deps = (p, h) :: r.deps }
                    | None ->
                      err := Some (Malformed { line = lineno; reason = "dep before record" }))
                  | _ ->
                    err := Some (Malformed { line = lineno; reason = "unrecognized line " ^ line }))
              body;
            match !err with
            | Some e -> Error e
            | None ->
              flush_current ();
              Ok t
          end
        | _ -> Error Truncated))

let load path =
  if not (Sys.file_exists path) then Error (No_such_file path)
  else begin
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref [] in
          (try
             while true do
               acc := input_line ic :: !acc
             done
           with End_of_file -> ());
          List.rev !acc)
    in
    parse_lines lines
  end

(* The in-memory mirror of [load]/[save]: replication ships database
   snapshots as the exact bytes [save] would have written, footer digest
   included, so the receiving side gets the same corruption detection a
   file read does. *)
let load_string s =
  let lines = String.split_on_char '\n' s in
  let lines =
    match List.rev lines with "" :: rest -> List.rev rest | _ -> lines
  in
  parse_lines lines

let fingerprint t =
  (* cheap content address: the record hashes already digest each node's
     full parameter set and dependency closure, so hashing them (in
     insertion order) fingerprints the whole database *)
  let hashes = ref [] in
  iter_slots t (fun slot -> hashes := Pool.str t.arena.pool t.arena.f_hash.(slot) :: !hashes);
  Specs.Spec.digest_strings ("db.v1" :: List.rev !hashes)

(* ------------------------------------------------------------------ *)
(* Slices                                                              *)
(* ------------------------------------------------------------------ *)

let filter t ~f =
  let ar = t.arena in
  let snap = ar.n in
  let keep = Bytes.make ((snap + 7) / 8) '\000' in
  iter_slots t (fun slot -> if f (record_of_slot t slot) then mask_set keep slot);
  (* drop records whose dependency closure is not fully kept *)
  let kept slot = mask_get keep slot in
  let changed = ref true in
  while !changed do
    changed := false;
    for slot = 0 to snap - 1 do
      if kept slot then begin
        let ok = ref true in
        iter_deps t slot (fun _ dh ->
            if !ok then
              match Hashtbl.find_opt ar.by_hash (Pool.str ar.pool dh) with
              | Some d when d < snap && kept d -> ()
              | _ -> ok := false);
        if not !ok then begin
          (* clear the bit *)
          Bytes.set keep (slot lsr 3)
            (Char.chr (Char.code (Bytes.get keep (slot lsr 3)) land lnot (1 lsl (slot land 7))));
          changed := true
        end
      end
    done
  done;
  let sel = ref [] and n = ref 0 in
  iter_slots t (fun slot ->
      if kept slot then begin
        sel := slot :: !sel;
        incr n
      end);
  let sel_arr = Array.make !n 0 in
  List.iteri (fun i slot -> sel_arr.(!n - 1 - i) <- slot) !sel;
  { arena = ar; sel = Some sel_arr; mask = Some keep }
