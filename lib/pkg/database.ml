type record = {
  hash : string;
  name : string;
  version : Specs.Version.t;
  variants : (string * string) list;
  compiler : Specs.Compiler.t;
  os : Specs.Os.t;
  target : string;
  deps : (string * string) list;
}

type t = {
  by_hash : (string, record) Hashtbl.t;
  mutable insertion : string list;  (** hashes, newest first *)
}

let create () = { by_hash = Hashtbl.create 256; insertion = [] }

let add_record t r =
  if not (Hashtbl.mem t.by_hash r.hash) then begin
    Hashtbl.add t.by_hash r.hash r;
    t.insertion <- r.hash :: t.insertion
  end

let add_concrete t (c : Specs.Spec.concrete) =
  List.iter
    (fun (n : Specs.Spec.concrete_node) ->
      add_record t
        {
          hash = Specs.Spec.node_hash c n.Specs.Spec.name;
          name = n.Specs.Spec.name;
          version = n.Specs.Spec.version;
          variants = n.Specs.Spec.variants;
          compiler = n.Specs.Spec.compiler;
          os = n.Specs.Spec.os;
          target = n.Specs.Spec.target;
          deps =
            List.map (fun d -> (d, Specs.Spec.node_hash c d)) n.Specs.Spec.depends;
        })
    (Specs.Spec.concrete_nodes c)

let find t hash = Hashtbl.find_opt t.by_hash hash

let by_package t name =
  List.filter_map
    (fun h ->
      match Hashtbl.find_opt t.by_hash h with
      | Some r when String.equal r.name name -> Some r
      | _ -> None)
    t.insertion

let records t = List.filter_map (Hashtbl.find_opt t.by_hash) (List.rev t.insertion)
let size t = Hashtbl.length t.by_hash
let is_empty t = size t = 0

let rec dag_complete t hash =
  match Hashtbl.find_opt t.by_hash hash with
  | None -> false
  | Some r -> List.for_all (fun (_, dh) -> dag_complete t dh) r.deps

let mem_dag t hash = dag_complete t hash

(* ------------------------------------------------------------------ *)
(* Persistence: a stable line-oriented text format with a digest footer.

   header:   spack-installed-db v1
   records:  record <hash> <name> <version> <os> <target> <cname> <cversion>
             variant <name> <value>          (0+ lines, this record's)
             dep <package> <hash>            (0+ lines, this record's)
   footer:   digest <hex over every preceding line>

   Fields are tab-separated; none of them can contain a tab (they come from
   recipe names, version strings and variant values).  Records are written
   in insertion order so a load-save cycle is byte-identical and reuse-fact
   generation (which walks [records]) is unchanged after a reload. *)
(* ------------------------------------------------------------------ *)

let format_header = "spack-installed-db v1"

type load_error =
  | No_such_file of string
  | Bad_header of string  (** first line (stale or foreign format) *)
  | Bad_digest  (** footer digest does not match the content (corruption) *)
  | Truncated  (** no digest footer: the file was cut short *)
  | Malformed of { line : int; reason : string }

let load_error_to_string = function
  | No_such_file p -> Printf.sprintf "no such database file: %s" p
  | Bad_header h -> Printf.sprintf "not a spack-installed-db file (header %S)" h
  | Bad_digest -> "digest mismatch: the database file is corrupt"
  | Truncated -> "truncated database file (missing digest footer)"
  | Malformed { line; reason } -> Printf.sprintf "malformed database file, line %d: %s" line reason

let render_lines t =
  let buf = ref [ format_header ] in
  let add l = buf := l :: !buf in
  List.iter
    (fun r ->
      add
        (String.concat "\t"
           [
             "record";
             r.hash;
             r.name;
             Specs.Version.to_string r.version;
             r.os;
             r.target;
             r.compiler.Specs.Compiler.name;
             Specs.Version.to_string r.compiler.Specs.Compiler.version;
           ]);
      List.iter (fun (k, v) -> add (String.concat "\t" [ "variant"; k; v ])) r.variants;
      List.iter (fun (p, h) -> add (String.concat "\t" [ "dep"; p; h ])) r.deps)
    (records t);
  List.rev !buf

let save t path =
  let lines = render_lines t in
  let digest = Specs.Spec.digest_strings lines in
  let tmp = path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let oc = open_out tmp in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        lines;
      output_string oc ("digest\t" ^ digest ^ "\n"));
  (* atomic publish: readers see either the old or the new complete file *)
  Sys.rename tmp path

let load path =
  if not (Sys.file_exists path) then Error (No_such_file path)
  else begin
    let ic = open_in path in
    let lines =
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let acc = ref [] in
          (try
             while true do
               acc := input_line ic :: !acc
             done
           with End_of_file -> ());
          List.rev !acc)
    in
    match lines with
    | [] -> Error (Bad_header "")
    | header :: _ when not (String.equal header format_header) -> Error (Bad_header header)
    | _ :: rest -> (
      (* split off the digest footer, then verify it over everything else *)
      match List.rev rest with
      | [] -> Error Truncated
      | footer :: body_rev -> (
        let body = List.rev body_rev in
        match String.split_on_char '\t' footer with
        | [ "digest"; d ] ->
          if not (String.equal d (Specs.Spec.digest_strings (format_header :: body)))
          then Error Bad_digest
          else begin
            let t = create () in
            let current = ref None in
            let flush_current () =
              match !current with
              | None -> ()
              | Some r ->
                add_record t { r with variants = List.rev r.variants; deps = List.rev r.deps };
                current := None
            in
            let err = ref None in
            List.iteri
              (fun i line ->
                if !err = None then
                  let lineno = i + 2 (* 1-based, after the header *) in
                  match String.split_on_char '\t' line with
                  | [ "record"; hash; name; version; os; target; cname; cversion ] ->
                    flush_current ();
                    (match
                       ( Specs.Version.of_string version,
                         Specs.Version.of_string cversion )
                     with
                    | v, cv ->
                      current :=
                        Some
                          {
                            hash;
                            name;
                            version = v;
                            variants = [];
                            compiler = { Specs.Compiler.name = cname; version = cv };
                            os;
                            target;
                            deps = [];
                          }
                    | exception _ ->
                      err := Some (Malformed { line = lineno; reason = "bad version" }))
                  | [ "variant"; k; v ] -> (
                    match !current with
                    | Some r -> current := Some { r with variants = (k, v) :: r.variants }
                    | None ->
                      err := Some (Malformed { line = lineno; reason = "variant before record" }))
                  | [ "dep"; p; h ] -> (
                    match !current with
                    | Some r -> current := Some { r with deps = (p, h) :: r.deps }
                    | None ->
                      err := Some (Malformed { line = lineno; reason = "dep before record" }))
                  | _ ->
                    err := Some (Malformed { line = lineno; reason = "unrecognized line " ^ line }))
              body;
            match !err with
            | Some e -> Error e
            | None ->
              flush_current ();
              Ok t
          end
        | _ -> Error Truncated))
  end

let fingerprint t =
  (* cheap content address: the record hashes already digest each node's
     full parameter set and dependency closure, so hashing them (in
     insertion order) fingerprints the whole database *)
  Specs.Spec.digest_strings ("db.v1" :: List.rev t.insertion)

let filter t ~f =
  let keep = Hashtbl.create 256 in
  List.iter
    (fun r -> if f r then Hashtbl.replace keep r.hash r)
    (records t);
  (* drop records whose dependency closure is not fully kept *)
  let changed = ref true in
  while !changed do
    changed := false;
    Hashtbl.iter
      (fun h (r : record) ->
        if not (List.for_all (fun (_, dh) -> Hashtbl.mem keep dh) r.deps) then begin
          Hashtbl.remove keep h;
          changed := true
        end)
      (Hashtbl.copy keep)
  done;
  let out = create () in
  List.iter (fun r -> if Hashtbl.mem keep r.hash then add_record out r) (records t);
  out
