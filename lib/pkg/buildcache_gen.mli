(** Synthetic buildcache generator (the E4S buildcache stand-in, §VII-C).

    The E4S buildcache spans multiple architectures, operating systems and
    compilers: ~600 packages become >60k installed hashes.  This generator
    reproduces that blow-up: it concretizes each root with the greedy-style
    default expansion under every (os, target, compiler) combination plus
    variant jitter, and installs the resulting concrete DAGs.

    Slices matching the paper's four groups are obtained with
    {!Database.filter} on target family and/or OS. *)

type combo = { c_os : Specs.Os.t; c_target : string; c_compiler : Specs.Compiler.t }

val default_combos : combo list
(** A paper-like matrix: x86_64, ppc64le and aarch64 targets, three OSes,
    several compilers. *)

type stats = {
  expanded : int;  (** root×combo×variation expansions that concretized *)
  skipped : int;  (** expansions aborted (no provider/version under combo) *)
  duplicates : int;  (** expansions whose whole DAG was already installed *)
  added : int;  (** records actually appended to the database *)
}

val zero_stats : stats
val merge_stats : stats -> stats -> stats
val stats_to_string : stats -> string

val populate :
  ?seed:int ->
  ?variations:int ->
  ?cap:int ->
  repo:Repo.t ->
  combos:combo list ->
  roots:string list ->
  Database.t ->
  stats
(** [cap] stops expansion once the database holds that many specs (the
    stats only count work actually performed — a capped run is still
    deterministic for a fixed seed/cap).
    For every root × combo × variation, build a concrete spec with
    recipe-consistent defaults (newest version, default variants except the
    jittered ones, the combo's compiler/OS/target) and install its nodes.
    Roots that cannot be expanded under a combo are counted as [skipped];
    expansions whose DAG hashes were all already present count as
    [duplicates].  Deterministic in [seed]. *)

val quick : ?seed:int -> repo:Repo.t -> roots:string list -> int -> Database.t
(** [quick ~repo ~roots n] populates a cache of roughly [n] hashes using
    {!default_combos} (truncated/cycled as needed). *)

val scale_to :
  ?seed:int ->
  ?log:(string -> unit) ->
  repo:Repo.t ->
  roots:string list ->
  int ->
  Database.t * stats
(** [scale_to ~repo ~roots target] grows a cache until it holds at least
    [target] distinct DAG hashes by doubling the per-root variation count,
    deduping identical DAGs across rounds.  Deterministic in [seed]; each
    round's size and stats go through [log]. *)
