type combo = { c_os : Specs.Os.t; c_target : string; c_compiler : Specs.Compiler.t }

let default_combos =
  let gcc11 = Specs.Compiler.make "gcc" "11.2.0" in
  let gcc8 = Specs.Compiler.make "gcc" "8.5.0" in
  let clang = Specs.Compiler.make "clang" "14.0.6" in
  let xl = Specs.Compiler.make "xl" "16.1.1" in
  [
    { c_os = "rhel7"; c_target = "power9le"; c_compiler = gcc8 };
    { c_os = "rhel7"; c_target = "power9le"; c_compiler = xl };
    { c_os = "rhel7"; c_target = "power8le"; c_compiler = gcc8 };
    { c_os = "rhel8"; c_target = "skylake"; c_compiler = gcc11 };
    { c_os = "rhel8"; c_target = "icelake"; c_compiler = gcc11 };
    { c_os = "rhel8"; c_target = "haswell"; c_compiler = gcc8 };
    { c_os = "rhel7"; c_target = "haswell"; c_compiler = gcc8 };
    { c_os = "ubuntu20.04"; c_target = "skylake"; c_compiler = clang };
    { c_os = "ubuntu20.04"; c_target = "thunderx2"; c_compiler = gcc11 };
    { c_os = "rhel8"; c_target = "thunderx2"; c_compiler = gcc11 };
  ]

type stats = {
  expanded : int;
  skipped : int;
  duplicates : int;
  added : int;
}

let zero_stats = { expanded = 0; skipped = 0; duplicates = 0; added = 0 }

let merge_stats a b =
  {
    expanded = a.expanded + b.expanded;
    skipped = a.skipped + b.skipped;
    duplicates = a.duplicates + b.duplicates;
    added = a.added + b.added;
  }

let stats_to_string s =
  Printf.sprintf "expanded=%d skipped=%d duplicates=%d added=%d" s.expanded
    s.skipped s.duplicates s.added

(* Recipe-consistent default expansion: newest (or jittered) version, default
   (or jittered) variants, fixed compiler/os/target, dependencies activated
   by their when-conditions against already-made decisions. *)
let expand rng ~repo ~combo ~jitter root =
  let nodes : (string, Specs.Spec.concrete_node) Hashtbl.t = Hashtbl.create 16 in
  let flip prob = Random.State.float rng 1.0 < prob in
  let when_holds (w : Specs.Spec.abstract) =
    let ok (cn : Specs.Spec.constraint_node) =
      match Hashtbl.find_opt nodes cn.Specs.Spec.cname with
      | None -> false
      | Some n -> Specs.Spec.node_satisfies n cn
    in
    ok w.Specs.Spec.aroot && List.for_all ok w.Specs.Spec.adeps
  in
  let provider_for v =
    match Repo.providers repo v with
    | [] -> raise Exit
    | ps -> List.nth ps (Random.State.int rng (List.length ps))
  in
  let rec visit name (req : Specs.Vrange.t option) =
    let name = if Repo.is_virtual repo name then provider_for name else name in
    match Hashtbl.find_opt nodes name with
    | Some _ -> name
    | None ->
      let p = match Repo.find repo name with Some p -> p | None -> raise Exit in
      let pool =
        List.sort
          (fun (a : Package.version_decl) b ->
            Int.compare a.Package.vweight b.Package.vweight)
          (Package.declared_versions p)
        |> List.filter (fun (d : Package.version_decl) ->
               match req with
               | None -> true
               | Some r -> Specs.Vrange.satisfies r d.Package.vversion)
      in
      let version =
        match pool with
        | [] -> raise Exit
        | [ only ] -> only.Package.vversion
        | first :: rest ->
          if jitter && flip 0.3 then
            (List.nth rest (Random.State.int rng (List.length rest))).Package.vversion
          else first.Package.vversion
      in
      let variants =
        List.map
          (fun (v : Package.variant_decl) ->
            let value =
              if jitter && flip 0.2 then
                List.nth v.Package.var_values
                  (Random.State.int rng (List.length v.Package.var_values))
              else v.Package.var_default
            in
            (v.Package.var_name, value))
          p.Package.variants
      in
      Hashtbl.replace nodes name
        {
          Specs.Spec.name;
          version;
          variants = List.sort compare variants;
          compiler = combo.c_compiler;
          flags = [];
          os = combo.c_os;
          target = combo.c_target;
          depends = [];
        };
      let deps = ref [] in
      List.iter
        (fun (d : Package.dependency) ->
          let active =
            match d.Package.dep_when with None -> true | Some w -> when_holds w
          in
          if active then begin
            let spec = d.Package.dep_spec in
            deps := visit spec.Specs.Spec.cname spec.Specs.Spec.cversion :: !deps
          end)
        p.Package.dependencies;
      let n = Hashtbl.find nodes name in
      Hashtbl.replace nodes name
        { n with Specs.Spec.depends = List.sort_uniq compare !deps };
      name
  in
  let root = visit root None in
  let all = Hashtbl.fold (fun _ n acc -> n :: acc) nodes [] in
  Specs.Spec.make_concrete ~root all

exception Capped

let populate ?(seed = 7) ?(variations = 3) ?cap ~repo ~combos ~roots db =
  let rng = Random.State.make [| seed |] in
  let st = ref zero_stats in
  let reached () =
    match cap with Some c -> Database.size db >= c | None -> false
  in
  (try
     List.iter
       (fun root ->
         List.iter
           (fun combo ->
             for v = 0 to variations - 1 do
               if reached () then raise Capped;
               match expand rng ~repo ~combo ~jitter:(v > 0) root with
               | spec ->
                 let before = Database.size db in
                 Database.add_concrete db spec;
                 let delta = Database.size db - before in
                 st :=
                   {
                     !st with
                     expanded = !st.expanded + 1;
                     added = !st.added + delta;
                     duplicates = (!st.duplicates + if delta = 0 then 1 else 0);
                   }
               | exception Exit -> st := { !st with skipped = !st.skipped + 1 }
               | exception Invalid_argument _ ->
                 st := { !st with skipped = !st.skipped + 1 }
             done)
           combos)
       roots
   with Capped -> ());
  !st

let quick ?(seed = 7) ~repo ~roots target_size =
  let db = Database.create () in
  let variations = ref 1 in
  while Database.size db < target_size && !variations < 64 do
    ignore
      (populate ~seed:(seed + !variations) ~variations:!variations ~repo
         ~combos:default_combos ~roots db
        : stats);
    variations := !variations * 2
  done;
  db

(* Deterministic growth to a target hash count: double the per-root
   variation count until the database holds at least [target] distinct
   DAG hashes (add_concrete dedups on hash, so re-expanded duplicates
   across rounds are free).  The paper's §VII-C buildcache is 63,099
   specs from ~600 packages; this is how we reach that honestly — the
   returned stats say exactly how many expansions were deduped or
   skipped to get there. *)
let scale_to ?(seed = 7) ?(log = fun (_ : string) -> ()) ~repo ~roots target =
  let db = Database.create () in
  let total = ref zero_stats in
  let variations = ref 1 in
  while Database.size db < target && !variations <= 4096 do
    (* the cap stops the final round within one expansion of the target
       instead of letting a doubled variation count overshoot it *)
    let round =
      populate ~seed:(seed + !variations) ~variations:!variations ~cap:target
        ~repo ~combos:default_combos ~roots db
    in
    total := merge_stats !total round;
    log
      (Printf.sprintf "buildcache scale_to: variations=%d size=%d (%s)"
         !variations (Database.size db) (stats_to_string round));
    variations := !variations * 2
  done;
  (db, !total)
