(** The concretizer's logic program — the declarative "software model" of
    Section V.

    This is the fixed part of every solve: first-order rules, integrity
    constraints and optimization criteria.  It changes only when the software
    model changes; the facts generated per solve ({!Facts}) are what varies
    with the root spec, the repository and Spack's state.  The paper reports
    ~800 lines for Spack's full program; this one covers the subset of the
    model reproduced here (nodes, versions, variants, compilers, targets,
    OSes, virtuals/providers, generalized conditions, conflicts, reuse, and
    the 15 + build-reuse optimization criteria). *)

val text : string
(** ASP source, parsed by {!Asp.Parser}. *)

val conditions_fragment : string
(** The generalized-condition rules alone (Section V-A): [condition_holds/1]
    triggered by [condition_requirement/3..5], imposing
    [imposed_constraint/3..5].  Ecosystem-neutral — [text] splices it in
    unchanged, and the CUDF frontend ([Cudf.Logic]) shares it so both
    workloads run the identical trigger/effect semantics and unsat-core
    provenance ({!Diagnose.explain_core_origins}). *)

val program : unit -> Asp.Ast.program
(** Parsed form (parsed once, memoized). *)

val line_count : int
(** Number of non-blank source lines (reported in benchmarks). *)
