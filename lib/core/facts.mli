(** Setup phase: translate the problem instance into ASP facts.

    The facts encode (1) the root specs and their constraints, (2) the
    metadata of every package that could possibly appear in the solve
    (versions, variants, dependencies-as-conditions, conflicts, provides),
    (3) the solver environment (compilers, OSes, targets and their weights),
    and (4) optionally the installed database for reuse (hash-keyed
    constraints, Section VI).  A typical solve produces 10k–100k facts. *)

type env = {
  compilers : Specs.Compiler.t list;  (** roster, most preferred first *)
  oses : Specs.Os.t list;  (** most preferred first *)
  target_family : string;  (** host architecture family, e.g. "x86_64" *)
}

val default_env : env

type t = {
  statements : Asp.Ast.statement list;
  n_facts : int;
  possible : string list;  (** package closure considered by this solve *)
  conflict_msgs : (int * string) list;  (** condition id -> message *)
  cond_origins : (int * string) list;
  (** condition id -> human-readable provenance ("hdf5 depends on mpi@3:",
      "the request asks for ...") — what {!Diagnose.explain_core} prints
      when the id turns up in an unsat core *)
}

exception Unknown_package of string

val generate :
  ?env:env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  t
(** @raise Unknown_package when a root or [^dep] names no known package or
    virtual. *)

val closure_packages : repo:Pkg.Repo.t -> Specs.Spec.abstract list -> string list
(** The package closure a request's facts would cover, sorted.  Depends
    only on the names in the request (roots and [^dep]s), never on their
    constraints.
    @raise Unknown_package as {!generate}. *)

val reuse_digest :
  ?installed:Pkg.Database.t -> repo:Pkg.Repo.t -> Specs.Spec.abstract list -> string
(** Digest of the slice of the installed database a solve of [roots] can
    observe: the reuse-eligible records of the request's closure (plus
    whether reuse is on at all).  Installing a package outside the closure
    leaves the digest unchanged — cache keys built on it survive unrelated
    installs, narrowing install invalidation from "every key" to "keys
    whose answer could mention the new record".
    @raise Unknown_package as {!generate}. *)
