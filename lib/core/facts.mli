(** Setup phase: translate the problem instance into ASP facts.

    The facts encode (1) the root specs and their constraints, (2) the
    metadata of every package that could possibly appear in the solve
    (versions, variants, dependencies-as-conditions, conflicts, provides),
    (3) the solver environment (compilers, OSes, targets and their weights),
    and (4) optionally the installed database for reuse (hash-keyed
    constraints, Section VI).  A typical solve produces 10k–100k facts. *)

(** Shared fact-generation core, exposed for other workload frontends.

    Accumulates fact statements and the condition-id / provenance
    bookkeeping needed to target the generalized-condition fragment
    ({!Logic_program.conditions_fragment}): fresh [condition/1] ids,
    [condition_requirement] / [imposed_constraint] facts keyed by them, and
    the id → human-readable origin map that
    {!Diagnose.explain_core_origins} prints for unsat cores.  The Spack
    generator below and the CUDF encoder ([Cudf.Encode]) both drive it, so
    every frontend gets identical condition semantics and provenance. *)
module Gen : sig
  type t

  val create : ?first_id:int -> unit -> t
  (** Fresh state; condition ids start at [first_id] (default 1). *)

  val fact : t -> string -> Asp.Term.t list -> unit

  val bump : t -> int -> unit
  (** Count [n] facts delivered outside [statements] (streamed atoms). *)

  val new_condition : t -> int
  (** Allocate a condition id and emit its [condition/1] fact. *)

  val describe : t -> int -> string -> unit
  (** Record a condition's human-readable provenance. *)

  val require : t -> int -> string -> Asp.Term.t list -> unit
  (** [require t id attr args]: a [condition_requirement] of [id]. *)

  val impose : t -> int -> string -> Asp.Term.t list -> unit
  (** [impose t id attr args]: an [imposed_constraint] of [id]. *)

  val statements : t -> Asp.Ast.statement list
  (** Emission order. *)

  val n_facts : t -> int

  val origins : t -> (int * string) list
  (** Condition provenance, newest first. *)
end

type env = {
  compilers : Specs.Compiler.t list;  (** roster, most preferred first *)
  oses : Specs.Os.t list;  (** most preferred first *)
  target_family : string;  (** host architecture family, e.g. "x86_64" *)
}

val default_env : env

type reuse_mode = [ `Stream | `Materialize ]
(** How installed-database reuse facts are delivered.  [`Stream] (the
    default) puts them in {!t.reuse_stream} — a replayable callback the
    grounder seeds directly into its interned atom store, with no
    intermediate statement or per-spec atom list; at E4S scale (60k+
    installed specs, §VII-C) this is the difference between a bounded and
    an exploding setup phase.  [`Materialize] appends them to
    {!t.statements} as ordinary fact statements; both modes produce the
    identical ground program (atoms are seeded in the same order). *)

type t = {
  statements : Asp.Ast.statement list;
  n_facts : int;
  (** total fact count, including streamed reuse facts *)
  possible : string list;  (** package closure considered by this solve *)
  conflict_msgs : (int * string) list;  (** condition id -> message *)
  cond_origins : (int * string) list;
  (** condition id -> human-readable provenance ("hdf5 depends on mpi@3:",
      "the request asks for ...") — what {!Diagnose.explain_core} prints
      when the id turns up in an unsat core *)
  reuse_stream : ((Asp.Gatom.t -> unit) -> unit) option;
  (** with [`Stream] and a non-empty eligible slice: replays the reuse
      facts into a sink (pass as [?facts_stream] to {!Asp.Grounder}) *)
}

exception Unknown_package of string

val generate :
  ?env:env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?reuse_mode:reuse_mode ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  t
(** @raise Unknown_package when a root or [^dep] names no known package or
    virtual. *)

val closure_packages : repo:Pkg.Repo.t -> Specs.Spec.abstract list -> string list
(** The package closure a request's facts would cover, sorted.  Depends
    only on the names in the request (roots and [^dep]s), never on their
    constraints.
    @raise Unknown_package as {!generate}. *)

val reuse_digest :
  ?installed:Pkg.Database.t -> repo:Pkg.Repo.t -> Specs.Spec.abstract list -> string
(** Digest of the slice of the installed database a solve of [roots] can
    observe: the reuse-eligible records of the request's closure (plus
    whether reuse is on at all).  Installing a package outside the closure
    leaves the digest unchanged — cache keys built on it survive unrelated
    installs, narrowing install invalidation from "every key" to "keys
    whose answer could mention the new record".
    @raise Unknown_package as {!generate}. *)
