(* The ground-program substrate: a registry of frozen, reusable ground
   bases keyed by everything the request-independent part of a grounding
   depends on.

   A base is the full grounding of the request's *name skeleton* — the
   roots with every constraint stripped, keeping only package names (the
   package closure, and hence the whole rule instantiation universe,
   depends only on names).  A concrete request then *extends* the base
   with the handful of fact statements the skeleton lacks: its constraint
   requirements and imposed values.  Solving cost is unchanged (the
   extended program is exactly what scratch grounding would produce, up to
   rule order and retractable-fact representation); grounding cost drops
   from "instantiate everything" to "instantiate the delta".

   Installing a package rebases affected entries in place
   ({!Asp.Grounder.rebase}): the new reuse facts are applied as a delta to
   a clone of the base, producing the next frozen base.  Entries whose
   regenerated facts are no longer a superset of the base (e.g. an
   installed version renumbering a version pool) are dropped — the
   conservative full-rebuild fallback. *)

module GT = Hashtbl.Make (struct
  type t = Asp.Gatom.t

  let equal = Asp.Gatom.equal
  let hash = Asp.Gatom.hash
end)

type counters = {
  base_builds : int;  (** cold: a skeleton base was ground from scratch *)
  extensions : int;  (** warm: a request reused a base via extension *)
  delta_applies : int;  (** installs applied to a base as a rebase delta *)
  drops : int;  (** entries dropped because a delta could not be applied *)
  fallbacks : int;  (** requests that could not use the substrate *)
  evictions : int;  (** LRU evictions *)
}

type entry = {
  e_key : string;
  e_skeleton : Specs.Spec.abstract list;
  e_env : Facts.env;
  e_prefs : Preferences.t;
  e_repo_fp : string;
  e_base : Asp.Grounder.base;
  e_base_atoms : unit GT.t;  (** ground atoms of the base's fact statements *)
  e_base_n : int;
  mutable e_stamp : int;  (** LRU clock value of the last use *)
}

type t = {
  mu : Mutex.t;
  entries : (string, entry) Hashtbl.t;
  cap : int;
  lp : Asp.Ast.statement list Lazy.t;  (** parsed logic program, shared *)
  mutable tick : int;
  mutable n_base_builds : int;
  mutable n_extensions : int;
  mutable n_delta_applies : int;
  mutable n_drops : int;
  mutable n_fallbacks : int;
  mutable n_evictions : int;
}

let create ?(capacity = 8) () =
  {
    mu = Mutex.create ();
    entries = Hashtbl.create 16;
    cap = max 1 capacity;
    lp = lazy (Asp.Parser.parse Logic_program.text);
    tick = 0;
    n_base_builds = 0;
    n_extensions = 0;
    n_delta_applies = 0;
    n_drops = 0;
    n_fallbacks = 0;
    n_evictions = 0;
  }

let counters t =
  Mutex.lock t.mu;
  let c =
    {
      base_builds = t.n_base_builds;
      extensions = t.n_extensions;
      delta_applies = t.n_delta_applies;
      drops = t.n_drops;
      fallbacks = t.n_fallbacks;
      evictions = t.n_evictions;
    }
  in
  Mutex.unlock t.mu;
  c

let size t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.entries in
  Mutex.unlock t.mu;
  n

let clear t =
  Mutex.lock t.mu;
  let n = Hashtbl.length t.entries in
  Hashtbl.reset t.entries;
  t.n_drops <- t.n_drops + n;
  Mutex.unlock t.mu

(* --- keys ----------------------------------------------------------------- *)

let skeleton_of roots =
  List.map
    (fun (a : Specs.Spec.abstract) ->
      {
        Specs.Spec.aroot = Specs.Spec.empty_node a.Specs.Spec.aroot.Specs.Spec.cname;
        adeps =
          List.map
            (fun (d : Specs.Spec.constraint_node) ->
              Specs.Spec.empty_node d.Specs.Spec.cname)
            a.Specs.Spec.adeps;
      })
    roots

(* Everything the skeleton's grounding depends on: repo contents, the
   reuse-eligible DB slice, environment roster and preferences (the
   request's own constraints are exactly what the key excludes). *)
let key_of ?installed ~repo ~(env : Facts.env) ~(prefs : Preferences.t) skeleton =
  let b = Buffer.create 256 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\x00'
  in
  add "substrate.v1";
  List.iter (fun r -> add (Specs.Spec.abstract_digest r)) skeleton;
  add (Pkg.Repo.fingerprint repo);
  add (Facts.reuse_digest ?installed ~repo skeleton);
  List.iter (fun c -> add (Specs.Compiler.to_string c)) env.Facts.compilers;
  List.iter add env.Facts.oses;
  add env.Facts.target_family;
  List.iter
    (fun (name, (p : Preferences.package_prefs)) ->
      add name;
      (match p.Preferences.pref_version with
      | Some r -> add (Specs.Vrange.canonical r)
      | None -> add "");
      List.iter
        (fun (k, v) -> add (k ^ "=" ^ v))
        (List.sort compare p.Preferences.pref_variants))
    (List.sort compare prefs.Preferences.packages);
  List.iter
    (fun (v, ps) -> add (v ^ "->" ^ String.concat "," ps))
    (List.sort compare prefs.Preferences.providers);
  (match prefs.Preferences.compilers with
  | Some cs -> List.iter (fun c -> add ("pc:" ^ Specs.Compiler.to_string c)) cs
  | None -> add "no-pref-compilers");
  Specs.Spec.digest_strings [ Buffer.contents b ]

(* --- fact diffing --------------------------------------------------------- *)

(* The ground atom of a fact statement with fully constant arguments;
   [None] for anything else (interval facts, non-facts). *)
let fact_atom (stmt : Asp.Ast.statement) : Asp.Gatom.t option =
  match stmt with
  | Asp.Ast.Rule { head = Asp.Ast.Head_atom a; _ } when Asp.Ast.statement_is_fact stmt
    ->
    let rec simple = function
      | [] -> Some []
      | Asp.Ast.Cst c :: rest -> Option.map (fun l -> c :: l) (simple rest)
      | _ -> None
    in
    Option.map (fun args -> Asp.Gatom.make a.Asp.Ast.pred args) (simple a.Asp.Ast.args)
  | _ -> None

let atom_set stmts =
  let atoms = GT.create 4096 in
  List.iter
    (fun s -> match fact_atom s with Some ga -> GT.replace atoms ga () | None -> ())
    stmts;
  atoms

(* Statements of [stmts] the base does not already cover.  [None] when some
   base fact is missing from [stmts]: the base over-approximates the
   request and extension would be unsound — the caller must fall back.
   Statements that cannot be resolved to a single atom are passed through
   (re-seeding an existing fact is a no-op). *)
let diff_statements entry (stmts : Asp.Ast.statement list) =
  let matched = GT.create 1024 in
  let ext =
    List.filter
      (fun stmt ->
        match fact_atom stmt with
        | Some ga when GT.mem entry.e_base_atoms ga ->
          GT.replace matched ga ();
          false
        | _ -> true)
      stmts
  in
  if GT.length matched = entry.e_base_n then Some ext else None

(* --- entry lifecycle ------------------------------------------------------ *)

let evict_over_cap t =
  while Hashtbl.length t.entries > t.cap do
    let victim = ref None in
    Hashtbl.iter
      (fun _ e ->
        match !victim with
        | Some v when v.e_stamp <= e.e_stamp -> ()
        | _ -> victim := Some e)
      t.entries;
    match !victim with
    | Some v ->
      Hashtbl.remove t.entries v.e_key;
      t.n_evictions <- t.n_evictions + 1
    | None -> ()
  done

(* Reuse facts are streamed straight into the base's atom store
   ([?facts_stream]); [e_base_atoms] tracks only the skeleton's fact
   *statements*.  That asymmetry is sound on the warm path: the entry key
   digests [Facts.reuse_digest] over the skeleton, the package closure
   depends only on names, and a request shares its skeleton's names — so
   any request that finds this entry has exactly the base's eligible
   record set (hash equality implies record equality), its reuse facts
   are already seeded, and only statements need diffing. *)
let build_entry t ~env ~prefs ?installed ~repo ~budget key skeleton =
  let sfacts = Facts.generate ~env ~prefs ?installed ~repo skeleton in
  let lp = Lazy.force t.lp in
  let base, _ =
    Asp.Grounder.ground_base ~budget ?facts_stream:sfacts.Facts.reuse_stream
      (lp @ sfacts.Facts.statements)
  in
  let atoms = atom_set sfacts.Facts.statements in
  {
    e_key = key;
    e_skeleton = skeleton;
    e_env = env;
    e_prefs = prefs;
    e_repo_fp = Pkg.Repo.fingerprint repo;
    e_base = base;
    e_base_atoms = atoms;
    e_base_n = GT.length atoms;
    e_stamp = 0;
  }

type grounding = {
  ground : Asp.Ground.t;
  stats : Asp.Grounder.stats;
  base_time : float;  (** seconds spent building the base; 0 on a warm hit *)
  extend_time : float;  (** seconds spent extending the base *)
  outcome : [ `Base_built | `Extended ];
}

let now () = Unix.gettimeofday ()

(* Ground [roots]'s request through the substrate: fetch or build the
   skeleton base, then extend it with the facts the skeleton lacks.
   [facts] must be the request's own generated facts.  [None] means the
   substrate cannot serve this request soundly (the caller grounds from
   scratch); {!Asp.Budget.Exhausted} propagates. *)
let ground_request t ~env ~prefs ?installed ~repo ~budget ~(facts : Facts.t) roots =
  let skeleton = skeleton_of roots in
  let key = key_of ?installed ~repo ~env ~prefs skeleton in
  let fallback () =
    Mutex.lock t.mu;
    t.n_fallbacks <- t.n_fallbacks + 1;
    Mutex.unlock t.mu;
    None
  in
  Mutex.lock t.mu;
  t.tick <- t.tick + 1;
  let tick = t.tick in
  let entry, base_time =
    match Hashtbl.find_opt t.entries key with
    | Some e ->
      e.e_stamp <- tick;
      Mutex.unlock t.mu;
      (Some e, 0.)
    | None -> (
      (* build under the lock: concurrent requests for one skeleton must
         not duplicate the base build (double-checked above) *)
      let t0 = now () in
      match build_entry t ~env ~prefs ?installed ~repo ~budget key skeleton with
      | exception e ->
        Mutex.unlock t.mu;
        (match e with
        | Asp.Budget.Exhausted _ -> raise e
        | _ -> ());
        (None, 0.)
      | e ->
        let dt = now () -. t0 in
        if (Asp.Grounder.base_ground e.e_base).Asp.Ground.inconsistent then begin
          (* an inconsistent base cannot be extended; skeletons are
             relaxations so this is a defensive path *)
          Mutex.unlock t.mu;
          (None, dt)
        end
        else begin
          e.e_stamp <- tick;
          Hashtbl.replace t.entries key e;
          t.n_base_builds <- t.n_base_builds + 1;
          evict_over_cap t;
          Mutex.unlock t.mu;
          (Some e, dt)
        end)
  in
  match entry with
  | None -> fallback ()
  | Some entry -> (
    match diff_statements entry facts.Facts.statements with
    | None -> fallback ()
    | Some ext -> (
      let t0 = now () in
      match Asp.Grounder.extend ~budget entry.e_base ext with
      | exception Asp.Solver_error.Error _ -> fallback ()
      | ground, stats ->
        Mutex.lock t.mu;
        t.n_extensions <- t.n_extensions + 1;
        Mutex.unlock t.mu;
        Some
          {
            ground;
            stats;
            base_time;
            extend_time = now () -. t0;
            outcome = (if base_time > 0. then `Base_built else `Extended);
          }))

(* --- install deltas ------------------------------------------------------- *)

(* Apply an install to every entry: regenerate the skeleton's facts against
   the new database and rebase the base over the added facts, re-inserting
   the entry under its new key (the reuse digest changed for entries whose
   closure sees the new records).  Entries that cannot absorb the delta —
   regenerated facts no longer a superset of the base, or a different
   repository — are dropped and will rebuild cold on next use. *)
let on_install t ~repo ~db =
  let repo_fp = Pkg.Repo.fingerprint repo in
  Mutex.lock t.mu;
  let old = Hashtbl.fold (fun _ e acc -> e :: acc) t.entries [] in
  Hashtbl.reset t.entries;
  List.iter
    (fun e ->
      let drop () = t.n_drops <- t.n_drops + 1 in
      if not (String.equal e.e_repo_fp repo_fp) then drop ()
      else
        match
          Facts.generate ~env:e.e_env ~prefs:e.e_prefs ~installed:db ~repo
            e.e_skeleton
        with
        | exception _ -> drop ()
        | sfacts -> (
          (* The key decides whether anything this closure can see changed:
             with streamed reuse facts, new eligible records leave the
             statement delta empty, so an empty delta alone proves nothing.
             Installs only append to the database, so the eligible set is
             monotone — rebasing with the full re-generated stream is
             sound, and seeding already-present facts costs nothing. *)
          let key =
            key_of ~installed:db ~repo ~env:e.e_env ~prefs:e.e_prefs e.e_skeleton
          in
          match diff_statements e sfacts.Facts.statements with
          | None -> drop ()
          | Some [] when String.equal key e.e_key ->
            Hashtbl.replace t.entries e.e_key e
          | Some delta -> (
            match
              Asp.Grounder.rebase ?facts_stream:sfacts.Facts.reuse_stream
                e.e_base delta
            with
            | exception _ -> drop ()
            | base, _ ->
              let atoms = atom_set sfacts.Facts.statements in
              t.n_delta_applies <- t.n_delta_applies + 1;
              Hashtbl.replace t.entries key
                {
                  e with
                  e_key = key;
                  e_base = base;
                  e_base_atoms = atoms;
                  e_base_n = GT.length atoms;
                })))
    old;
  evict_over_cap t;
  Mutex.unlock t.mu
