type shot = { shot_root : string; shot_result : Concretizer.result }

type t = {
  shots : shot list;
  db : Pkg.Database.t;
  distinct_configs : (string * int) list;
  total_time : float;
}

let solve_stack ?config ?env ?prefs ?installed ?pool ?racers ~repo roots =
  let t0 = Unix.gettimeofday () in
  let db = Pkg.Database.create () in
  let seeded = Hashtbl.create 64 in
  (match installed with
  | Some seed ->
    List.iter
      (fun (r : Pkg.Database.record) ->
        Hashtbl.replace seeded r.Pkg.Database.hash ();
        Pkg.Database.add_record db r)
      (Pkg.Database.records seed)
  | None -> ());
  let shots =
    List.map
      (fun (a : Specs.Spec.abstract) ->
        let result =
          Concretizer.solve ?config ?env ?prefs ~installed:db ?pool ?racers
            ~repo [ a ]
        in
        (match result with
        | Concretizer.Concrete s -> Pkg.Database.add_concrete db s.Concretizer.spec
        | Concretizer.Unsatisfiable _ | Concretizer.Interrupted _ -> ());
        { shot_root = a.Specs.Spec.aroot.Specs.Spec.cname; shot_result = result })
      roots
  in
  (* count packages with several distinct configurations across the shots *)
  let configs = Hashtbl.create 64 in
  List.iter
    (fun (r : Pkg.Database.record) ->
      if not (Hashtbl.mem seeded r.Pkg.Database.hash) then begin
        let existing =
          Option.value ~default:[] (Hashtbl.find_opt configs r.Pkg.Database.name)
        in
        if not (List.mem r.Pkg.Database.hash existing) then
          Hashtbl.replace configs r.Pkg.Database.name (r.Pkg.Database.hash :: existing)
      end)
    (Pkg.Database.records db);
  let distinct_configs =
    Hashtbl.fold
      (fun name hashes acc ->
        if List.length hashes > 1 then (name, List.length hashes) :: acc else acc)
      configs []
    |> List.sort compare
  in
  { shots; db; distinct_configs; total_time = Unix.gettimeofday () -. t0 }
