(* The generalized-condition fragment (Section V-A) is ecosystem-neutral:
   any frontend that emits [condition/1], [condition_requirement/3..5] and
   [imposed_constraint/3..5] facts over its own [attr] vocabulary gets the
   same trigger/effect semantics (and, downstream, the same unsat-core
   provenance mapping in [Diagnose]).  It is exposed separately so the CUDF
   frontend ([Cudf.Logic]) can splice it into its own program; [text] below
   concatenates it back unchanged. *)
let conditions_fragment =
  {|%-----------------------------------------------------------------------------
% Generalized conditions (Section V-A): a condition holds when every
% requirement attribute of its arity holds.
%-----------------------------------------------------------------------------
condition_holds(ID) :-
  condition(ID);
  attr(N, A1)         : condition_requirement(ID, N, A1);
  attr(N, A1, A2)     : condition_requirement(ID, N, A1, A2);
  attr(N, A1, A2, A3) : condition_requirement(ID, N, A1, A2, A3).

% conditions impose constraints when they hold
attr(N, A1)         :- condition_holds(ID), imposed_constraint(ID, N, A1).
attr(N, A1, A2)     :- condition_holds(ID), imposed_constraint(ID, N, A1, A2).
attr(N, A1, A2, A3) :- condition_holds(ID), imposed_constraint(ID, N, A1, A2, A3).
|}

let text =
  {|
%=============================================================================
% The Spack-style software model, as an ASP logic program (Section V).
%
% Facts supplied per solve (see Facts):
%   root/1, virtual/1, possible_provider/2, provider_weight/3,
%   version_declared/3, deprecated_version/2, version_satisfies_possible/3,
%   variant/2, variant_possible_value/3, variant_default/3,
%   compiler/2, compiler_weight/3, compiler_supports_target/3,
%   compiler_version_satisfies/3,
%   os/1, os_weight/2, target/1, target_weight/2, target_satisfies/2,
%   condition/1, condition_requirement/3..5, imposed_constraint/3..5,
%   dependency_condition/3, provider_condition/3, conflict/1,
%   installed_hash/2, hash_constraint/3..5, hash_dep/3, optimize_for_reuse/0
%=============================================================================

|}
  ^ conditions_fragment
  ^ {|
% conflicts are conditions that must not hold (Section V-B.2); they apply to
% packages we would build, while installed packages are taken as-is
:- conflict(ID, P), condition_holds(ID), build(P).

%-----------------------------------------------------------------------------
% Nodes and dependencies
%-----------------------------------------------------------------------------
attr("node", P) :- root(P).

% dependency conditions drive new builds; a reused package's dependencies
% are pinned by its hash instead (Section VI)
depends_on(P, D) :- dependency_condition(ID, P, D), condition_holds(ID), build(P).

attr("node", D) :- depends_on(P, D), attr("node", P), not virtual(D).
edge(P, D)      :- depends_on(P, D), attr("node", P), not virtual(D).

% virtual dependencies resolve to exactly one provider (Section III-B)
virtual_needed(V) :- depends_on(P, V), attr("node", P), virtual(V).
virtual_needed(V) :- attr("virtual_node", V).
1 { provider(V, P) : possible_provider(V, P) } 1 :- virtual_needed(V).
attr("node", P) :- provider(V, P).
edge(P, Prov)   :- depends_on(P, V), attr("node", P), virtual(V), provider(V, Prov).

% a chosen provider must actually provide the virtual under its conditions
provides(P, V) :- provider_condition(ID, P, V), condition_holds(ID).
:- provider(V, P), not provides(P, V).

% constraints written against a virtual transfer to its chosen provider
attr("version_satisfies", P, Con) :-
  attr("provider_version_satisfies", V, Con), provider(V, P).
attr("variant_set", P, Var, Val) :-
  attr("provider_variant_set", V, Var, Val), provider(V, P).

% the resolved graph is a DAG
path(A, B) :- edge(A, B).
path(A, C) :- path(A, B), edge(B, C).
:- path(A, A).

% command-line ^dep constraints name actual dependencies of the root: the
% solver must find variant/provider choices that pull them into the DAG
% (Section V-B.1: hpctoolkit ^mpich forces +mpi)
:- attr("root_dep", R, D), not path(R, D).
virtual_needed(V) :- attr("root_virtual_dep", R, V).
:- attr("root_virtual_dep", R, V), provider(V, P), not path(R, P).

%-----------------------------------------------------------------------------
% Versions
%-----------------------------------------------------------------------------
1 { attr("version", P, V) : version_declared(P, V, W) } 1 :- attr("node", P).
:- attr("version", P, V1), attr("version", P, V2), V1 < V2.

version_weight(P, W) :- attr("version", P, V), version_declared(P, V, W).

% version constraints: satisfied iff the chosen version is in the
% precomputed satisfying set
attr("version_satisfies", P, Con) :-
  attr("version", P, V), version_satisfies_possible(P, Con, V).
:- attr("version_satisfies", P, Con), attr("version", P, V),
   not version_satisfies_possible(P, Con, V).

%-----------------------------------------------------------------------------
% Variants
%-----------------------------------------------------------------------------
1 { attr("variant_value", P, Var, Val) : variant_possible_value(P, Var, Val) } 1 :-
  attr("node", P), variant(P, Var).
:- attr("variant_value", P, Var, V1), attr("variant_value", P, Var, V2), V1 < V2.

attr("variant_value", P, Var, Val) :- attr("variant_set", P, Var, Val), attr("node", P).

% a set variant must actually exist on the package
:- attr("variant_set", P, Var, Val), attr("node", P), not variant(P, Var).

variant_not_default(P, Var, Val) :-
  attr("variant_value", P, Var, Val), not variant_default(P, Var, Val), attr("node", P).
unused_default(P, Var) :-
  variant_default(P, Var, Val), attr("node", P), variant(P, Var),
  not attr("variant_value", P, Var, Val).

%-----------------------------------------------------------------------------
% Compilers
%-----------------------------------------------------------------------------
1 { attr("node_compiler_version", P, C, V) : compiler(C, V) } 1 :- attr("node", P).
:- attr("node_compiler_version", P, C1, V1), attr("node_compiler_version", P, C2, V2),
   C1 < C2.
:- attr("node_compiler_version", P, C, V1), attr("node_compiler_version", P, C, V2),
   V1 < V2.

attr("node_compiler", P, C) :- attr("node_compiler_version", P, C, V).
:- attr("node_compiler_set", P, C), attr("node", P), not attr("node_compiler", P, C).

attr("node_compiler_version_satisfies", P, C, Con) :-
  attr("node_compiler_version", P, C, V), compiler_version_satisfies(C, Con, V).
:- attr("node_compiler_version_satisfies", P, C, Con),
   attr("node_compiler_version", P, C, V), not compiler_version_satisfies(C, Con, V).

node_compiler_weight(P, W) :-
  attr("node_compiler_version", P, C, V), compiler_weight(C, V, W).
compiler_mismatch(P, D) :-
  edge(P, D), attr("node_compiler_version", P, C, V),
  not attr("node_compiler_version", D, C, V).

%-----------------------------------------------------------------------------
% Compiler flags: set by specs, inherited by the dependencies we build
%-----------------------------------------------------------------------------
attr("node_flags", P, F, V) :- attr("node_flags_set", P, F, V), attr("node", P).
attr("node_flags", D, F, V) :- edge(P, D), attr("node_flags", P, F, V), build(D).
:- attr("node_flags", P, F, V1), attr("node_flags", P, F, V2), V1 < V2.

%-----------------------------------------------------------------------------
% Operating system
%-----------------------------------------------------------------------------
1 { attr("node_os", P, O) : os(O) } 1 :- attr("node", P).
:- attr("node_os", P, O1), attr("node_os", P, O2), O1 < O2.
attr("node_os", P, O) :- attr("node_os_set", P, O), attr("node", P).

node_os_weight(P, W) :- attr("node_os", P, O), os_weight(O, W).
os_mismatch(P, D) :- edge(P, D), attr("node_os", P, O), not attr("node_os", D, O).

%-----------------------------------------------------------------------------
% Target microarchitecture (Section V's running example)
%-----------------------------------------------------------------------------
1 { attr("node_target", P, T) : target(T) } 1 :- attr("node", P).
:- attr("node_target", P, T1), attr("node_target", P, T2), T1 < T2.
attr("node_target", P, T) :- attr("node_target_set", P, T), attr("node", P).

% targets not supported by the chosen compiler are invalid
:- attr("node_target", P, T),
   not compiler_supports_target(C, V, T),
   attr("node_compiler_version", P, C, V).

attr("node_target_satisfies", P, Con) :-
  attr("node_target", P, T), target_satisfies(Con, T).
:- attr("node_target_satisfies", P, Con), attr("node_target", P, T),
   not target_satisfies(Con, T).

node_target_weight(P, W) :- attr("node_target", P, T), target_weight(T, W).
target_mismatch(P, D) :-
  edge(P, D), attr("node_target", P, T), not attr("node_target", D, T).

%-----------------------------------------------------------------------------
% Reuse of installed packages (Section VI)
%-----------------------------------------------------------------------------
% The } 1 upper bound is enforced as a cardinality over every instantiated
% hash(P, H) element — including ones derived by dependency pinning below —
% so at-most-one-hash-per-package needs no pairwise integrity constraint.
% (A pairwise ":- hash(P,H1), hash(P,H2), H1 < H2" encoding grounds
% quadratically in a package's installed hash count: at E4S scale, where a
% common utility has thousands of installed hashes, that alone is tens of
% millions of ground constraints.)
{ hash(P, H) : installed_hash(P, H) } 1 :- attr("node", P).
hashed(P) :- hash(P, H).
build(P) :- attr("node", P), not hashed(P).

% a chosen hash imposes the installed spec's parameters ...
attr(A1, A2)         :- hash(P, H), hash_constraint(H, A1, A2).
attr(A1, A2, A3)     :- hash(P, H), hash_constraint(H, A1, A2, A3).
attr(A1, A2, A3, A4) :- hash(P, H), hash_constraint(H, A1, A2, A3, A4).

% ... and pins its dependencies to the installed sub-DAG
attr("node", D) :- hash(P, H), hash_dep(H, D, DH).
hash(D, DH)     :- hash(P, H), hash_dep(H, D, DH).
edge(P, D)      :- hash(P, H), hash_dep(H, D, DH).

%-----------------------------------------------------------------------------
% Optimization (Table II + Section VI's two-bucket scheme, Fig. 5).
% Criterion i of Table II gets base priority 16-i; contributions from
% packages that must be built land in the higher bucket at +200, those from
% reused installs in the base bucket.  The build count sits between the
% buckets at priority 100.
%-----------------------------------------------------------------------------
build_priority(P, 200) :- build(P), attr("node", P), optimize_for_reuse.
build_priority(P, 0)   :- attr("node", P), not build(P), optimize_for_reuse.
build_priority(P, 0)   :- attr("node", P), not optimize_for_reuse.

provider_root(V, P)    :- provider(V, P), depends_on(R, V), root(R).
provider_nonroot(V, P) :- provider(V, P), not provider_root(V, P).

#minimize { 1@100,P : build(P), optimize_for_reuse }.

% 1: deprecated versions used
#minimize { 1@15+X,P,V : attr("version", P, V), deprecated_version(P, V), build_priority(P, X) }.
% 2: version oldness (roots)
#minimize { W@14+X,P : version_weight(P, W), root(P), build_priority(P, X) }.
% 3: non-default variant values (roots)
#minimize { 1@13+X,P,Var,Val : variant_not_default(P, Var, Val), root(P), build_priority(P, X) }.
% 4: non-preferred providers (roots)
#minimize { W@12+X,V,P : provider_root(V, P), provider_weight(V, P, W), build_priority(P, X) }.
% 5: unused default variant values (roots)
#minimize { 1@11+X,P,Var : unused_default(P, Var), root(P), build_priority(P, X) }.
% 6: non-default variant values (non-roots)
#minimize { 1@10+X,P,Var,Val : variant_not_default(P, Var, Val), not root(P), build_priority(P, X) }.
% 7: non-preferred providers (non-roots)
#minimize { W@9+X,V,P : provider_nonroot(V, P), provider_weight(V, P, W), build_priority(P, X) }.
% 8: compiler mismatches
#minimize { 1@8+X,P,D : compiler_mismatch(P, D), build_priority(D, X) }.
% 9: OS mismatches
#minimize { 1@7+X,P,D : os_mismatch(P, D), build_priority(D, X) }.
% 10: non-preferred OS's
#minimize { W@6+X,P : node_os_weight(P, W), build_priority(P, X) }.
% 11: version oldness (non-roots)
#minimize { W@5+X,P : version_weight(P, W), not root(P), build_priority(P, X) }.
% 12: unused default variant values (non-roots)
#minimize { 1@4+X,P,Var : unused_default(P, Var), not root(P), build_priority(P, X) }.
% 13: non-preferred compilers
#minimize { W@3+X,P : node_compiler_weight(P, W), build_priority(P, X) }.
% 14: target mismatches
#minimize { 1@2+X,P,D : target_mismatch(P, D), build_priority(D, X) }.
% 15: non-preferred targets
#minimize { W@1+X,P : node_target_weight(P, W), build_priority(P, X) }.
|}

let program =
  let memo = ref None in
  fun () ->
    match !memo with
    | Some p -> p
    | None ->
      let p = Asp.Parser.parse text in
      memo := Some p;
      p

let line_count =
  String.split_on_char '\n' text
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length
