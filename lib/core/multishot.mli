(** Multi-shot concretization (§VII-C's closing remark: "Multi-shot solver
    techniques may offer additional solver performance, as we can divide and
    conquer for a slightly less optimal final result").

    Instead of concretizing a whole stack in one unified solve, each root is
    solved on its own and its concrete DAG is immediately installed into a
    scratch database, so later roots {e reuse} earlier results through the
    ordinary reuse machinery (Section VI).  Wall-clock cost becomes a sum of
    small solves instead of one combinatorial solve, at the price of global
    optimality: later roots are biased toward whatever the earlier roots
    happened to pick. *)

type shot = {
  shot_root : string;
  shot_result : Concretizer.result;
}

type t = {
  shots : shot list;
  db : Pkg.Database.t;  (** all concretized DAGs, installed *)
  distinct_configs : (string * int) list;
      (** packages that ended up with more than one configuration across
          shots — the "slightly less optimal" part; empty for a unified
          solve by construction *)
  total_time : float;
}

val solve_stack :
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?pool:Asp.Pool.t ->
  ?racers:int ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  t
(** Concretize the roots in order, each shot reusing all previous results.
    [installed] seeds the scratch database.  Shots are inherently
    sequential (each reuses its predecessors), but [pool]/[racers] turn
    every shot's solve phase into a portfolio race
    ({!Concretizer.solve}). *)
