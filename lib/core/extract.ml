exception Error of string

type info = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;
  built : string list;
}

let errf fmt = Format.kasprintf (fun s -> raise (Error s)) fmt

let s = Asp.Term.to_string

(* Consumes the id-keyed answer index ({!Asp.Answer}) built once per solve:
   only the extraction-relevant predicates are visited, instead of
   re-scanning every atom of the (facts-included) answer. *)
let of_index (idx : Asp.Answer.t) =
  let nodes = Hashtbl.create 16 in
  let versions = Hashtbl.create 16 in
  let variants = Hashtbl.create 16 in
  let compilers = Hashtbl.create 16 in
  let flags = Hashtbl.create 16 in
  let oses = Hashtbl.create 16 in
  let targets = Hashtbl.create 16 in
  let edges = Hashtbl.create 16 in
  let reused = ref [] and built = ref [] and roots = ref [] in
  List.iter
    (fun args ->
      match args with
      | [ n; p ] when s n = "node" -> Hashtbl.replace nodes (s p) ()
      | [ n; p; v ] when s n = "version" -> Hashtbl.replace versions (s p) (s v)
      | [ n; p; var; value ] when s n = "variant_value" ->
        Hashtbl.replace variants (s p) ((s var, s value) :: Option.value ~default:[] (Hashtbl.find_opt variants (s p)))
      | [ n; p; c; v ] when s n = "node_compiler_version" ->
        Hashtbl.replace compilers (s p) (s c, s v)
      | [ n; p; f; v ] when s n = "node_flags" ->
        Hashtbl.replace flags (s p)
          ((s f, s v) :: Option.value ~default:[] (Hashtbl.find_opt flags (s p)))
      | [ n; p; o ] when s n = "node_os" -> Hashtbl.replace oses (s p) (s o)
      | [ n; p; t ] when s n = "node_target" -> Hashtbl.replace targets (s p) (s t)
      | _ -> ())
    (Asp.Answer.atoms_of idx "attr");
  List.iter
    (function
      | [ p; d ] ->
        Hashtbl.replace edges (s p)
          (s d :: Option.value ~default:[] (Hashtbl.find_opt edges (s p)))
      | _ -> ())
    (Asp.Answer.atoms_of idx "edge");
  List.iter
    (function [ p; h ] -> reused := (s p, s h) :: !reused | _ -> ())
    (Asp.Answer.atoms_of idx "hash");
  List.iter
    (function [ p ] -> built := s p :: !built | _ -> ())
    (Asp.Answer.atoms_of idx "build");
  List.iter
    (function [ p ] -> roots := s p :: !roots | _ -> ())
    (Asp.Answer.atoms_of idx "root");
  let concrete_nodes =
    Hashtbl.fold
      (fun name () acc ->
        let get tbl what =
          match Hashtbl.find_opt tbl name with
          | Some v -> v
          | None -> errf "node %s has no %s in the answer" name what
        in
        let cname, cver = get compilers "compiler" in
        {
          Specs.Spec.name;
          version = Specs.Version.of_string (get versions "version");
          variants = Option.value ~default:[] (Hashtbl.find_opt variants name);
          compiler = Specs.Compiler.make cname cver;
          flags = Option.value ~default:[] (Hashtbl.find_opt flags name);
          os = get oses "os";
          target = get targets "target";
          depends = Option.value ~default:[] (Hashtbl.find_opt edges name);
        }
        :: acc)
      nodes []
  in
  let root =
    match !roots with
    | r :: _ -> r
    | [] -> (
      (* virtual root: any node without an incoming edge *)
      let has_parent n =
        Hashtbl.fold (fun _ ds acc -> acc || List.mem n ds) edges false
      in
      match List.find_opt (fun (n : Specs.Spec.concrete_node) -> not (has_parent n.Specs.Spec.name)) concrete_nodes with
      | Some n -> n.Specs.Spec.name
      | None -> errf "no root in the answer")
  in
  let spec =
    try Specs.Spec.make_concrete ~root concrete_nodes
    with Invalid_argument m -> errf "ill-formed concrete spec: %s" m
  in
  { spec; reused = List.sort_uniq compare !reused; built = List.sort_uniq compare !built }

let extract answer = of_index (Asp.Answer.of_list answer)
