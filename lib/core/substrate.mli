(** Persistent ground-program substrate (incremental grounding).

    The request-independent part of a concretization grounding — the rule
    instantiation universe over the request's {e name skeleton} — is ground
    once per (skeleton, repository, reuse-visible DB slice, environment,
    preferences) and frozen ({!Asp.Grounder.ground_base}).  Each concrete
    request then {e extends} that base with only its own constraint facts,
    and installing packages applies a {e delta} to affected bases
    ({!Asp.Grounder.rebase}) instead of discarding them.

    The registry is safe to share across domains: bases are frozen and
    read-only, extensions live in per-request layers, and the registry
    itself is mutex-guarded with a small LRU cap. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh, empty substrate holding at most [capacity] (default 8) bases. *)

type counters = {
  base_builds : int;  (** cold: a skeleton base was ground from scratch *)
  extensions : int;  (** warm: a request reused a base via extension *)
  delta_applies : int;  (** installs applied to a base as a rebase delta *)
  drops : int;  (** entries dropped because a delta could not be applied *)
  fallbacks : int;  (** requests that could not use the substrate *)
  evictions : int;  (** LRU evictions *)
}

val counters : t -> counters

val size : t -> int
(** Number of bases currently held. *)

val clear : t -> unit
(** Drop every base (counted as drops).  {!on_install} only absorbs
    add-only deltas; a state change that can {e remove} records — a
    replication follower resynchronizing from a snapshot — must invalidate
    wholesale and let bases rebuild cold. *)

type grounding = {
  ground : Asp.Ground.t;
  stats : Asp.Grounder.stats;
  base_time : float;  (** seconds spent building the base; 0 on a warm hit *)
  extend_time : float;  (** seconds spent extending the base *)
  outcome : [ `Base_built | `Extended ];
}

val ground_request :
  t ->
  env:Facts.env ->
  prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  repo:Pkg.Repo.t ->
  budget:Asp.Budget.t ->
  facts:Facts.t ->
  Specs.Spec.abstract list ->
  grounding option
(** Ground [roots]'s request through the substrate.  [facts] must be the
    facts {!Facts.generate} produced for this exact request (same [env],
    [prefs], [installed], [repo]).  The resulting program is equivalent to
    grounding from scratch; [None] means the substrate cannot serve the
    request soundly and the caller should ground from scratch (counted as
    a fallback).
    @raise Asp.Budget.Exhausted when [budget] runs out mid-grounding. *)

val on_install :
  t -> repo:Pkg.Repo.t -> db:Pkg.Database.t -> unit
(** Rebase every base over the facts newly visible after an install
    recorded in [db], re-keying entries in place.  Entries that cannot
    absorb the delta are dropped (and rebuild cold on next use). *)
