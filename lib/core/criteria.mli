(** Table II: the optimization criteria, as data.

    The authoritative encoding lives in {!Logic_program} ([#minimize]
    statements); this module is the single source of truth for the
    criteria's names and for decoding ground priority levels back into
    human-readable form (used by the CLI, benchmarks and tests). *)

val names : (int * string) list
(** [(criterion number 1..15, description)] in Table II's priority order. *)

val name : int -> string
(** @raise Not_found for numbers outside 1..15. *)

type bucket =
  | Build  (** contribution from a package that must be built (@201..215) *)
  | Reuse  (** contribution from an installed package (@1..15) *)

type decoded =
  | Number_of_builds  (** the @100 level between the buckets (Section VI) *)
  | Criterion of int * bucket

val decode_priority : int -> decoded option
(** Decode a ground [#minimize] priority level. *)

type stack
(** A frontend's objective-level naming scheme: how ground [#minimize]
    priorities decode to human-readable level names.  Cost-vector rendering
    is stack-aware so each frontend's levels print under their own names —
    Spack's Table II criteria for {!spack}, [removed]/[changed]/... for the
    CUDF user-objective stacks ([Cudf.Criteria]). *)

val spack : stack
(** Decodes via {!decode_priority} (Table II + the two-bucket scheme). *)

val stack_of_levels : name:string -> (int * string) list -> stack
(** A stack from explicit [(priority, label)] pairs; unlisted priorities
    render bare. *)

val stack_name : stack -> string

val level_label : stack -> int -> string option
(** The label of a ground priority level under this stack's decoding. *)

val pp_cost_in : stack -> Format.formatter -> int * int -> unit
(** Render one [(priority, value)] pair under a stack's level names. *)

val pp_costs_in : stack -> Format.formatter -> (int * int) list -> unit
(** Render the nonzero entries of an objective vector, one per line. *)

val pp_cost : Format.formatter -> int * int -> unit
(** [pp_cost_in spack]. *)

val pp_costs : Format.formatter -> (int * int) list -> unit
(** [pp_costs_in spack]. *)
