type phases = {
  setup_time : float;
  load_time : float;
  ground_time : float;
  solve_time : float;
}

let total p = p.setup_time +. p.load_time +. p.ground_time +. p.solve_time

type success = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;
  built : string list;
  costs : (int * int) list;
  phases : phases;
  n_facts : int;
  n_possible : int;
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
}

type result =
  | Concrete of success
  | Unsatisfiable of {
      phases : phases;
      n_facts : int;
      n_possible : int;
      reasons : string list;
    }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* Seed the solver's polarity toward the default configuration (newest
   version, default variants, best target, preferred compiler/OS/provider) so
   that the first model found is already close to optimal and the
   optimization descent mostly just proves optimality.  This plays the role
   of the domain heuristics (clasp's #heuristic) Spack uses. *)
let apply_phase_hints (t : Asp.Translate.t) =
  let store = t.Asp.Translate.ground.Asp.Ground.store in
  let fact_holds pred args =
    match Asp.Gatom.Store.find store (Asp.Gatom.make pred args) with
    | Some id -> Asp.Gatom.Store.is_fact store id
    | None -> false
  in
  let zero = Asp.Term.int 0 in
  for id = 0 to Asp.Gatom.Store.count store - 1 do
    let a = Asp.Gatom.Store.atom store id in
    let preferred =
      match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
      | "attr", [ { Asp.Term.node = Asp.Term.Str "version"; _ }; p; v ] ->
        fact_holds "version_declared" [ p; v; zero ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "variant_value"; _ }; p; var; value ] ->
        fact_holds "variant_default" [ p; var; value ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "node_target"; _ }; _; tgt ] ->
        fact_holds "target_weight" [ tgt; zero ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "node_os"; _ }; _; os ] ->
        fact_holds "os_weight" [ os; zero ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "node_compiler_version"; _ }; _; c; v ] ->
        fact_holds "compiler_weight" [ c; v; zero ]
      | "provider", [ v; p ] -> fact_holds "provider_weight" [ v; p; zero ]
      | _ -> false
    in
    if preferred then
      match Asp.Translate.atom_lit t id with
      | Some l -> Asp.Sat.suggest_phase t.Asp.Translate.sat l
      | None -> ()
  done

let solve ?(config = Asp.Config.default) ?(env = Facts.default_env)
    ?(prefs = Preferences.empty) ?installed ~repo roots =
  (* setup: generate the problem-instance facts *)
  let facts, setup_time =
    time (fun () -> Facts.generate ~env ~prefs ?installed ~repo roots)
  in
  (* load: parse the logic program (not memoized: the paper times this) *)
  let lp, load_time = time (fun () -> Asp.Parser.parse Logic_program.text) in
  (* ground *)
  let (ground, ground_stats), ground_time =
    time (fun () -> Asp.Grounder.ground (lp @ facts.Facts.statements))
  in
  (* solve: translate, search, optimize *)
  let params = Asp.Config.params config.Asp.Config.preset in
  let outcome, solve_time =
    time (fun () ->
        let t = Asp.Translate.translate ~params ground in
        apply_phase_hints t;
        let on_model = Asp.Stable.hook t in
        let strategy =
          match config.Asp.Config.strategy with
          | Asp.Config.Bb -> `Bb
          | Asp.Config.Usc -> `Usc
        in
        match Asp.Optimize.run ~strategy t ~on_model with
        | None -> None
        | Some { Asp.Optimize.costs; _ } ->
          Some (Asp.Translate.answer t, costs, Asp.Sat.stats t.Asp.Translate.sat))
  in
  let phases = { setup_time; load_time; ground_time; solve_time } in
  match outcome with
  | None ->
    Unsatisfiable
      {
        phases;
        n_facts = facts.Facts.n_facts;
        n_possible = List.length facts.Facts.possible;
        reasons = Diagnose.explain ~env ~repo roots;
      }
  | Some (answer, costs, sat_stats) ->
    let info = Extract.extract answer in
    Concrete
      {
        spec = info.Extract.spec;
        reused = info.Extract.reused;
        built = info.Extract.built;
        costs;
        phases;
        n_facts = facts.Facts.n_facts;
        n_possible = List.length facts.Facts.possible;
        ground_stats;
        sat_stats;
      }

let solve_spec ?config ?env ?prefs ?installed ~repo text =
  solve ?config ?env ?prefs ?installed ~repo [ Specs.Spec_parser.parse text ]
