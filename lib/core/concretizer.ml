type phases = {
  setup_time : float;
  load_time : float;
  ground_time : float;
  ground_base_time : float;
  ground_extend_time : float;
  solve_time : float;
}

let total p = p.setup_time +. p.load_time +. p.ground_time +. p.solve_time

type success = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;
  built : string list;
  costs : (int * int) list;
  quality : Asp.Optimize.quality;
  phases : phases;
  n_facts : int;
  n_possible : int;
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
  verified : bool;
}

type result =
  | Concrete of success
  | Unsatisfiable of {
      phases : phases;
      n_facts : int;
      n_possible : int;
      reasons : string list;
    }
  | Interrupted of {
      info : Asp.Budget.info;
      phases : phases;
      n_facts : int;
      n_possible : int;
    }

let time f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  (r, Unix.gettimeofday () -. t0)

(* ------------------------------------------------------------------ *)
(* Content-addressed solve caching.

   The key digests everything the answer depends on: the normalized request
   (order-insensitive per-spec constraint digests, root order preserved —
   extraction roots the DAG at the first spec), the repository fingerprint,
   the installed-database fingerprint, the solver configuration that can
   change the answer (preset, strategy, verify — budgets are excluded
   because only [`Optimal] results are stored, and those are
   limit-independent), the environment roster and the preferences.  The
   cache itself lives outside this library ([Server.Cache] provides an LRU +
   on-disk implementation); here it is just a pair of closures. *)
(* ------------------------------------------------------------------ *)

type cache = {
  lookup : string -> result option;
  store : string -> result -> unit;
}

let request_key ?(config = Asp.Config.default) ?(env = Facts.default_env)
    ?(prefs = Preferences.empty) ?installed ~repo roots =
  let b = Buffer.create 512 in
  let add s =
    Buffer.add_string b s;
    Buffer.add_char b '\x00'
  in
  add "request.v2";
  List.iter (fun r -> add (Specs.Spec.abstract_digest r)) roots;
  add (Pkg.Repo.fingerprint repo);
  (match installed with
  | Some db -> (
    (* narrowed install invalidation: key on the reuse-visible slice of the
       DB, not the whole DB — installing a package outside the request's
       closure leaves the key intact.  Unknown packages fall back to the
       whole-DB fingerprint (the solve itself will raise on them anyway). *)
    match Facts.reuse_digest ~installed:db ~repo roots with
    | d -> add d
    | exception Facts.Unknown_package _ -> add (Pkg.Database.fingerprint db))
  | None -> add "no-db");
  add (Asp.Config.preset_name config.Asp.Config.preset);
  add (Asp.Config.strategy_name config.Asp.Config.strategy);
  add (string_of_bool config.Asp.Config.verify);
  List.iter (fun c -> add (Specs.Compiler.to_string c)) env.Facts.compilers;
  List.iter add env.Facts.oses;
  add env.Facts.target_family;
  List.iter
    (fun (name, (p : Preferences.package_prefs)) ->
      add name;
      (match p.Preferences.pref_version with
      | Some r -> add (Specs.Vrange.canonical r)
      | None -> add "");
      List.iter (fun (k, v) -> add (k ^ "=" ^ v)) (List.sort compare p.Preferences.pref_variants))
    (List.sort compare prefs.Preferences.packages);
  List.iter
    (fun (v, ps) -> add (v ^ "->" ^ String.concat "," ps))
    (List.sort compare prefs.Preferences.providers);
  (match prefs.Preferences.compilers with
  | Some cs -> List.iter (fun c -> add ("pc:" ^ Specs.Compiler.to_string c)) cs
  | None -> add "no-pref-compilers");
  Specs.Spec.digest_strings [ Buffer.contents b ]

(* Only proven-optimal concrete results enter the cache: degraded or
   interrupted outcomes depend on the budget that produced them, and UNSAT
   diagnoses depend on [explain]. *)
let cacheable = function
  | Concrete { quality = `Optimal; _ } -> true
  | Concrete { quality = `Degraded _; _ } | Unsatisfiable _ | Interrupted _ -> false

(* Seed the solver's polarity toward the default configuration (newest
   version, default variants, best target, preferred compiler/OS/provider) so
   that the first model found is already close to optimal and the
   optimization descent mostly just proves optimality.  This plays the role
   of the domain heuristics (clasp's #heuristic) Spack uses. *)
let apply_phase_hints (t : Asp.Translate.t) =
  let store = t.Asp.Translate.ground.Asp.Ground.store in
  let fact_holds pred args =
    match Asp.Gatom.Store.find store (Asp.Gatom.make pred args) with
    | Some id -> Asp.Gatom.Store.is_fact store id
    | None -> false
  in
  let zero = Asp.Term.int 0 in
  for id = 0 to Asp.Gatom.Store.count store - 1 do
    let a = Asp.Gatom.Store.atom store id in
    let preferred =
      match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
      | "attr", [ { Asp.Term.node = Asp.Term.Str "version"; _ }; p; v ] ->
        fact_holds "version_declared" [ p; v; zero ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "variant_value"; _ }; p; var; value ] ->
        fact_holds "variant_default" [ p; var; value ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "node_target"; _ }; _; tgt ] ->
        fact_holds "target_weight" [ tgt; zero ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "node_os"; _ }; _; os ] ->
        fact_holds "os_weight" [ os; zero ]
      | "attr", [ { Asp.Term.node = Asp.Term.Str "node_compiler_version"; _ }; _; c; v ] ->
        fact_holds "compiler_weight" [ c; v; zero ]
      | "provider", [ v; p ] -> fact_holds "provider_weight" [ v; p; zero ]
      | _ -> false
    in
    if preferred then
      match Asp.Translate.atom_lit t id with
      | Some l -> Asp.Sat.suggest_phase t.Asp.Translate.sat l
      | None -> ()
  done

let solve_uncached ?(config = Asp.Config.default) ?params ?(env = Facts.default_env)
    ?(prefs = Preferences.empty) ?installed ?reuse_mode ?budget ?pool ?(racers = 1)
    ?(explain = false) ?substrate ~repo roots =
  let budget =
    match budget with
    | Some b -> b
    | None -> Asp.Budget.start config.Asp.Config.limits
  in
  (* setup: generate the problem-instance facts *)
  let facts, setup_time =
    time (fun () -> Facts.generate ~env ~prefs ?installed ?reuse_mode ~repo roots)
  in
  let n_facts = facts.Facts.n_facts in
  let n_possible = List.length facts.Facts.possible in
  (* ground: through the substrate when one is given (frozen base + request
     extension; the substrate holds its own parsed logic program, so the
     load phase is 0 there), from scratch otherwise or when the substrate
     declines the request *)
  let via_substrate =
    match substrate with
    | None -> `Scratch
    | Some s -> (
      let t0 = Unix.gettimeofday () in
      match
        Substrate.ground_request s ~env ~prefs ?installed ~repo ~budget ~facts
          roots
      with
      | exception Asp.Budget.Exhausted info ->
        `Err (info, 0., Unix.gettimeofday () -. t0)
      | None -> `Scratch
      | Some g ->
        `Ok
          ( g.Substrate.ground,
            g.Substrate.stats,
            0.,
            Unix.gettimeofday () -. t0,
            g.Substrate.base_time,
            g.Substrate.extend_time ))
  in
  let grounded =
    match via_substrate with
    | `Scratch -> (
      (* load: parse the logic program (not memoized: the paper times this) *)
      let lp, load_time = time (fun () -> Asp.Parser.parse Logic_program.text) in
      let t0 = Unix.gettimeofday () in
      match
        Asp.Grounder.ground ~budget ?facts_stream:facts.Facts.reuse_stream
          (lp @ facts.Facts.statements)
      with
      | exception Asp.Budget.Exhausted info ->
        `Err (info, load_time, Unix.gettimeofday () -. t0)
      | ground, stats ->
        `Ok (ground, stats, load_time, Unix.gettimeofday () -. t0, 0., 0.))
    | (`Err _ | `Ok _) as o -> o
  in
  match grounded with
  | `Err (info, load_time, ground_time) ->
    let phases =
      {
        setup_time;
        load_time;
        ground_time;
        ground_base_time = 0.;
        ground_extend_time = 0.;
        solve_time = 0.;
      }
    in
    Interrupted { info; phases; n_facts; n_possible }
  | `Ok
      ( ground,
        ground_stats,
        load_time,
        ground_time,
        ground_base_time,
        ground_extend_time ) -> (
    (* solve: translate, search, optimize *)
    let params =
      match params with
      | Some p -> p
      | None -> Asp.Config.params config.Asp.Config.preset
    in
    let t1 = Unix.gettimeofday () in
    let strategy =
      match config.Asp.Config.strategy with
      | Asp.Config.Bb -> `Bb
      | Asp.Config.Usc -> `Usc
    in
    (* the verified sequential runner: translate, seed phase hints, optimize,
       then independently re-check the winning model ({!Asp.Verify}) with a
       reseeded retry on failure *)
    let run_sequential params =
      match
        Asp.Solve.solve_ground_verified ~hints:apply_phase_hints
          ~verify:config.Asp.Config.verify ~params ~strategy ~budget ground
      with
      | None -> None
      | Some (t, costs, quality, _models, verified) ->
        Some
          ( Asp.Translate.answer t,
            costs,
            quality,
            Asp.Sat.stats t.Asp.Translate.sat,
            verified )
    in
    (* portfolio mode: race diverse configurations over the shared ground
       program, each racer re-seeding the phase hints on its own
       translation.  [?params] (escalation reseeding) only drives the
       sequential path — racers carry their own seed offsets. *)
    let solved =
      match pool with
      | Some p when racers > 1 -> (
        let rs = Asp.Portfolio.racers ~config racers in
        match
          Asp.Portfolio.race ~pool:p ~hints:apply_phase_hints
            ~verify:config.Asp.Config.verify ~racers:rs ~budget ground
        with
        | { Asp.Portfolio.attempt = Asp.Portfolio.Proved_unsat; _ } -> Ok None
        | { attempt = Asp.Portfolio.Gave_up info; _ } -> Error info
        | {
            attempt =
              Asp.Portfolio.Model { answer; costs; quality; sat_stats; verified; _ };
            _;
          } ->
          Ok (Some (answer, costs, quality, sat_stats, verified))
        | { attempt = Asp.Portfolio.Quarantined _; _ } -> (
          (* every racer's model failed verification: sequential reseeded
             re-solve of last resort (which itself retries once and raises
             Solver_error.Verification_failed if that fails too) *)
          match
            run_sequential
              { params with Asp.Sat.seed = params.Asp.Sat.seed + 104729 }
          with
          | exception Asp.Budget.Exhausted info -> Error info
          | r -> Ok r))
      | _ -> (
        match run_sequential params with
        | exception Asp.Budget.Exhausted info -> Error info
        | r -> Ok r)
    in
    match solved with
    | Error info ->
      let phases =
        {
          setup_time;
          load_time;
          ground_time;
          ground_base_time;
          ground_extend_time;
          solve_time = Unix.gettimeofday () -. t1;
        }
      in
      Interrupted { info; phases; n_facts; n_possible }
    | Ok outcome -> (
      let solve_time = Unix.gettimeofday () -. t1 in
      let phases =
        {
          setup_time;
          load_time;
          ground_time;
          ground_base_time;
          ground_extend_time;
          solve_time;
        }
      in
      match outcome with
      | None ->
        let reasons =
          (* provenance-mapped unsat core on demand: re-solves the ground
             program with selector guards, so it is opt-in *)
          if explain then
            Diagnose.explain_core ~params ~budget ~env ~repo ~facts ~ground
              roots
          else Diagnose.explain ~env ~repo roots
        in
        Unsatisfiable { phases; n_facts; n_possible; reasons }
      | Some (answer, costs, quality, sat_stats, verified) ->
        let info = Extract.of_index (Asp.Answer.of_list answer) in
        Concrete
          {
            spec = info.Extract.spec;
            reused = info.Extract.reused;
            built = info.Extract.built;
            costs;
            quality;
            phases;
            n_facts;
            n_possible;
            ground_stats;
            sat_stats;
            verified;
          }))

let solve ?config ?params ?env ?prefs ?installed ?reuse_mode ?budget ?pool
    ?racers ?explain ?cache ?substrate ~repo roots =
  let run () =
    solve_uncached ?config ?params ?env ?prefs ?installed ?reuse_mode ?budget
      ?pool ?racers ?explain ?substrate ~repo roots
  in
  match cache with
  | None -> run ()
  | Some c -> (
    let key = request_key ?config ?env ?prefs ?installed ~repo roots in
    match c.lookup key with
    | Some r -> r
    | None ->
      let r = run () in
      if cacheable r then c.store key r;
      r)

let solve_spec ?config ?env ?prefs ?installed ?reuse_mode ?budget ?explain
    ?cache ?substrate ~repo text =
  solve ?config ?env ?prefs ?installed ?reuse_mode ?budget ?explain ?cache
    ?substrate ~repo
    [ Specs.Spec_parser.parse text ]

(* Retry with escalation: each interrupted attempt doubles every finite
   limit and reseeds the search (a different EVSIDS tie-breaking order often
   finds a first model much faster, clasp's restart-on-budget idiom).
   Cancellation is honoured immediately — a SIGINT must not trigger a
   retry. *)
let solve_escalating ?(attempts = 3) ?(config = Asp.Config.default)
    ?env ?prefs ?installed ?reuse_mode ?cancel ?fault ?pool ?racers ?explain
    ?cache ?substrate ~repo roots =
  let base = Asp.Config.params config.Asp.Config.preset in
  let rec go k limits =
    let budget = Asp.Budget.start ?cancel limits in
    (match fault with Some f -> f k budget | None -> ());
    let params =
      if k = 0 then base
      else { base with Asp.Sat.seed = base.Asp.Sat.seed + (k * 7919) }
    in
    match
      solve ~config ~params ?env ?prefs ?installed ?reuse_mode ~budget ?pool
        ?racers ?explain ?cache ?substrate ~repo roots
    with
    | Interrupted { info; _ } as r ->
      if info.Asp.Budget.reason = Asp.Budget.Cancelled || k + 1 >= attempts
      then r
      else go (k + 1) (Asp.Budget.double limits)
    | r -> r
  in
  go 0 config.Asp.Config.limits

(* Batch-level parallelism: independent root sets concretized across the
   pool, one full pipeline (setup, load, ground, solve) per job.  Jobs are
   sequential inside — batch parallelism and portfolio racing compose only
   by over-subscribing, so [solve_many] keeps each job single-domain.
   Results are in input order. *)
let solve_many ?pool ?(attempts = 1) ?config ?env ?prefs ?installed ?reuse_mode
    ?cancel ?fault ?explain ?cache ?substrate ~repo jobs =
  let one roots =
    solve_escalating ~attempts ?config ?env ?prefs ?installed ?reuse_mode
      ?cancel ?fault ?explain ?cache ?substrate ~repo roots
  in
  (* Dedupe identical requests within the batch before dispatch: duplicate-
     heavy batches (environment refreshes, CI matrices) pay for each unique
     request once and the single result fans back out in input order.  The
     key is the same normalized constraint digest the solve cache uses, so
     two spellings of one spec dedupe too. *)
  let key roots =
    String.concat "\x00" (List.map Specs.Spec.abstract_digest roots)
  in
  let seen = Hashtbl.create 16 in
  let uniques = ref [] in
  let slots =
    List.map
      (fun roots ->
        let k = key roots in
        match Hashtbl.find_opt seen k with
        | Some idx -> idx
        | None ->
          let idx = Hashtbl.length seen in
          Hashtbl.add seen k idx;
          uniques := roots :: !uniques;
          idx)
      jobs
  in
  let uniques = List.rev !uniques in
  let results =
    match pool with
    | Some p when Asp.Pool.size p > 1 -> Asp.Pool.map_list p one uniques
    | _ -> List.map one uniques
  in
  let arr = Array.of_list results in
  List.map (fun idx -> arr.(idx)) slots
