(* Order-preserving dedupe: a node repeated across roots and ^deps would
   otherwise repeat its diagnosis verbatim. *)
let dedup xs =
  let seen = Hashtbl.create 16 in
  List.filter
    (fun x ->
      if Hashtbl.mem seen x then false
      else begin
        Hashtbl.add seen x ();
        true
      end)
    xs

let explain ~env ~repo (roots : Specs.Spec.abstract list) =
  let reasons = ref [] in
  let say fmt = Format.kasprintf (fun s -> reasons := s :: !reasons) fmt in
  let check_node (cn : Specs.Spec.constraint_node) =
    let name = cn.Specs.Spec.cname in
    let pkg = Pkg.Repo.find repo name in
    (* version requirement vs declared versions *)
    (match (cn.Specs.Spec.cversion, pkg) with
    | Some r, Some p ->
      if Pkg.Package.versions_satisfying p r = [] then
        say "no declared version of %s satisfies @%s (declared: %s)" name
          (Specs.Vrange.to_string r)
          (String.concat ", "
             (List.map
                (fun (d : Pkg.Package.version_decl) ->
                  Specs.Version.to_string d.Pkg.Package.vversion)
                (Pkg.Package.declared_versions p)))
    | _ -> ());
    (* variants must exist and admit the requested value *)
    (match pkg with
    | Some p ->
      List.iter
        (fun (var, value) ->
          match Pkg.Package.find_variant p var with
          | None -> say "package %s has no variant %S" name var
          | Some v ->
            if not (List.mem value v.Pkg.Package.var_values) then
              say "variant %s of %s admits {%s}, not %S" var name
                (String.concat ", " v.Pkg.Package.var_values)
                value)
        cn.Specs.Spec.cvariants
    | None -> ());
    (* compiler must be in the roster, with a satisfying version *)
    (match cn.Specs.Spec.ccompiler with
    | Some c ->
      let candidates =
        List.filter
          (fun (k : Specs.Compiler.t) -> String.equal k.Specs.Compiler.name c)
          env.Facts.compilers
      in
      if candidates = [] then say "no compiler %s is available" c
      else (
        match cn.Specs.Spec.ccompiler_version with
        | Some r
          when not
                 (List.exists
                    (fun (k : Specs.Compiler.t) ->
                      Specs.Vrange.satisfies r k.Specs.Compiler.version)
                    candidates) ->
          say "no available %s satisfies %%%s@%s" c c (Specs.Vrange.to_string r)
        | _ -> ())
    | None -> ());
    (* target must exist and be reachable by some compiler *)
    (match cn.Specs.Spec.ctarget with
    | Some t when not (String.length t > 0 && t.[String.length t - 1] = ':') -> (
      match Specs.Target.find t with
      | None -> say "unknown target %s" t
      | Some tt ->
        if
          not
            (List.exists
               (fun c -> Specs.Compiler.supports_target c tt)
               env.Facts.compilers)
        then say "no available compiler can generate code for target %s" t)
    | _ -> ());
    (* conflicts declared by the package that plainly match the request *)
    match pkg with
    | Some p ->
      List.iter
        (fun (c : Pkg.Package.conflict_decl) ->
          let spec = c.Pkg.Package.conflict_spec in
          let compiler_matches =
            match (spec.Specs.Spec.ccompiler, cn.Specs.Spec.ccompiler) with
            | Some a, Some b -> String.equal a b
            | Some _, None | None, _ -> false
          in
          let target_matches =
            match (spec.Specs.Spec.ctarget, cn.Specs.Spec.ctarget) with
            | Some a, Some b ->
              String.equal a b
              || (String.length a > 0
                 && a.[String.length a - 1] = ':'
                 &&
                 match Specs.Target.find b with
                 | Some t ->
                   Specs.Target.is_descendant_of t (String.sub a 0 (String.length a - 1))
                 | None -> false)
            | _ -> false
          in
          if compiler_matches || target_matches then
            say "%s conflicts with %s%s" name
              (Specs.Spec.node_to_string spec)
              (if c.Pkg.Package.conflict_msg = "" then ""
               else ": " ^ c.Pkg.Package.conflict_msg))
        p.Pkg.Package.conflicts
    | None -> ()
  in
  List.iter
    (fun (a : Specs.Spec.abstract) ->
      check_node a.Specs.Spec.aroot;
      List.iter check_node a.Specs.Spec.adeps;
      (* virtuals named in the request must have providers *)
      List.iter
        (fun (d : Specs.Spec.constraint_node) ->
          let n = d.Specs.Spec.cname in
          if Pkg.Repo.is_virtual repo n && Pkg.Repo.providers repo n = [] then
            say "virtual package %s has no providers" n)
        (a.Specs.Spec.aroot :: a.Specs.Spec.adeps))
    roots;
  dedup (List.rev !reasons)

(* --- provenance-mapped unsat cores ------------------------------------- *)

(* Condition ids an atom carries explicitly (always the first argument of
   the condition-shaped predicates emitted by {!Facts}). *)
let atom_condition_ids (a : Asp.Gatom.t) =
  match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
  | ( ( "condition" | "condition_holds" | "conflict" | "dependency_condition"
      | "provider_condition" | "condition_requirement" | "imposed_constraint" ),
      { Asp.Term.node = Asp.Term.Int id; _ } :: _ ) ->
    [ id ]
  | _ -> []

(* Conditions that require or impose a derived [attr(...)] atom: the link
   from "version_satisfies(hdf5, 99.9) is violated" back to "the request
   asks for hdf5@99.9" (or "foo depends on hdf5@99.9"). *)
let attr_condition_ids store cond_ids (a : Asp.Gatom.t) =
  match (a.Asp.Gatom.pred, a.Asp.Gatom.args) with
  | "attr", args ->
    List.filter
      (fun id ->
        let carries pred =
          match
            Asp.Gatom.Store.find store
              (Asp.Gatom.make pred (Asp.Term.int id :: args))
          with
          | Some aid -> Asp.Gatom.Store.is_fact store aid
          | None -> false
        in
        carries "imposed_constraint" || carries "condition_requirement")
      cond_ids
  | _ -> []

(* Frontend-neutral core mapping: everything here keys off the
   generalized-condition predicates (Logic_program.conditions_fragment), so
   any frontend that emits them — Spack's [Facts], the CUDF encoder — gets
   its own [cond_origins] provenance printed; only the [fallback] heuristics
   are per-frontend. *)
let explain_core_origins ?params ?budget ~cond_origins ~fallback ~ground () =
  match Asp.Explain.explain ?params ?budget ground with
  | Asp.Explain.Satisfiable ->
    (* should not happen when the caller just proved UNSAT; trust the
       syntactic heuristics instead of reporting nothing *)
    fallback ()
  | Asp.Explain.Exhausted _ ->
    "unsat-core extraction exhausted its budget; heuristic diagnosis follows"
    :: fallback ()
  | Asp.Explain.Unsat_core { causes; minimal } ->
    let store = ground.Asp.Ground.store in
    let cond_ids = List.map fst cond_origins in
    (* group the core's ground instances by source constraint, keeping the
       order of first appearance (causes arrive sorted by rule index) *)
    let groups = ref [] in
    let group_of key =
      match List.assoc_opt key !groups with
      | Some g -> g
      | None ->
        let g = (ref 0, ref "", ref []) in
        groups := !groups @ [ (key, g) ];
        g
    in
    List.iter
      (fun (c : Asp.Explain.cause) ->
        let o = c.Asp.Explain.origin in
        let count, example, conds =
          group_of (o.Asp.Ground.o_line, o.Asp.Ground.o_text)
        in
        incr count;
        if !count = 1 then example := c.Asp.Explain.ground_text;
        Array.iter
          (fun aid ->
            let a = Asp.Gatom.Store.atom store aid in
            List.iter
              (fun id -> if not (List.mem id !conds) then conds := !conds @ [ id ])
              (atom_condition_ids a @ attr_condition_ids store cond_ids a))
          o.Asp.Ground.o_pos)
      causes;
    let render ((line, text), (count, example, conds)) =
      let b = Buffer.create 128 in
      Buffer.add_string b
        (Printf.sprintf "violated constraint: %s%s" (String.trim text)
           (if line > 0 then Printf.sprintf " (solver rule, line %d)" line
            else ""));
      if !example <> "" then
        Buffer.add_string b (Printf.sprintf "\n    instance: %s" !example);
      if !count > 1 then
        Buffer.add_string b
          (Printf.sprintf "\n    (+%d more ground instances)" (!count - 1));
      List.iter
        (fun id ->
          match List.assoc_opt id cond_origins with
          | Some d -> Buffer.add_string b (Printf.sprintf "\n    because %s" d)
          | None -> ())
        !conds;
      Buffer.contents b
    in
    let n = List.length !groups in
    let header =
      if minimal then
        Printf.sprintf "minimal unsatisfiable core (%d conflicting constraint%s):"
          n
          (if n = 1 then "" else "s")
      else
        Printf.sprintf
          "unsatisfiable core, %d constraint%s (budget expired before full \
           minimization):"
          n
          (if n = 1 then "" else "s")
    in
    header :: List.map render !groups

let explain_core ?params ?budget ~env ~repo ~(facts : Facts.t) ~ground roots =
  explain_core_origins ?params ?budget ~cond_origins:facts.Facts.cond_origins
    ~fallback:(fun () -> explain ~env ~repo roots)
    ~ground ()
