let names =
  [
    (1, "Deprecated versions used");
    (2, "Version oldness (roots)");
    (3, "Non-default variant values (roots)");
    (4, "Non-preferred providers (roots)");
    (5, "Unused default variant values (roots)");
    (6, "Non-default variant values (non-roots)");
    (7, "Non-preferred providers (non-roots)");
    (8, "Compiler mismatches");
    (9, "OS mismatches");
    (10, "Non-preferred OS's");
    (11, "Version oldness (non-roots)");
    (12, "Unused default variant values (non-roots)");
    (13, "Non-preferred compilers");
    (14, "Target mismatches");
    (15, "Non-preferred targets");
  ]

let name i = List.assoc i names

type bucket = Build | Reuse
type decoded = Number_of_builds | Criterion of int * bucket

(* Criterion i has base priority 16-i; the build bucket sits at +200 and the
   build count at 100 (Fig. 5). *)
let decode_priority p =
  if p = 100 then Some Number_of_builds
  else
    let base, bucket = if p > 100 then (p - 200, Build) else (p, Reuse) in
    if base >= 1 && base <= 15 then Some (Criterion (16 - base, bucket)) else None

(* --- criterion stacks ------------------------------------------------- *)

(* A stack names the objective levels of one frontend's #minimize scheme.
   Decoding and rendering go through the stack so cost vectors print with
   the frontend's own level names: the Spack stack decodes Table II's
   1..15/100/201..215 priorities, the CUDF stacks (paranoid, trendy — see
   Cudf.Criteria) carry explicit (priority, label) lists. *)
type stack = { stack_name : string; level : int -> string option }

let stack_name s = s.stack_name
let level_label s p = s.level p

let spack_level p =
  match decode_priority p with
  | Some Number_of_builds -> Some "number of builds"
  | Some (Criterion (i, bucket)) ->
    Some
      (Printf.sprintf "criterion %2d (%s)%s" i (name i)
         (match bucket with Build -> " [build]" | Reuse -> ""))
  | None -> None

let spack = { stack_name = "spack"; level = spack_level }

let stack_of_levels ~name levels =
  { stack_name = name; level = (fun p -> List.assoc_opt p levels) }

let pp_cost_in s ppf (p, v) =
  match s.level p with
  | Some l -> Format.fprintf ppf "@%-3d %s = %d" p l v
  | None -> Format.fprintf ppf "@%-3d = %d" p v

let pp_costs_in s ppf costs =
  List.iter
    (fun (p, v) -> if v <> 0 then Format.fprintf ppf "%a@." (pp_cost_in s) (p, v))
    costs

let pp_cost ppf pv = pp_cost_in spack ppf pv
let pp_costs ppf costs = pp_costs_in spack ppf costs
