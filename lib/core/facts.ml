type env = {
  compilers : Specs.Compiler.t list;
  oses : Specs.Os.t list;
  target_family : string;
}

let default_env =
  { compilers = Specs.Compiler.default_roster; oses = Specs.Os.known; target_family = "x86_64" }

type reuse_mode = [ `Stream | `Materialize ]

type t = {
  statements : Asp.Ast.statement list;
  n_facts : int;
  possible : string list;
  conflict_msgs : (int * string) list;
  cond_origins : (int * string) list;
  reuse_stream : ((Asp.Gatom.t -> unit) -> unit) option;
}

exception Unknown_package of string

let str s = Asp.Term.str s
let int i = Asp.Term.int i

(* Shared fact-generation core: statement accumulation plus the
   condition-id/provenance bookkeeping every frontend needs to target the
   generalized-condition fragment (Logic_program.conditions_fragment).
   The Spack generator below drives it through thin wrappers; the CUDF
   frontend (Cudf.Encode) drives it directly. *)
module Gen = struct
  type t = {
    mutable stmts : Asp.Ast.statement list;  (* newest first *)
    mutable count : int;
    mutable next_id : int;
    mutable origins : (int * string) list;  (* newest first *)
  }

  let create ?(first_id = 1) () =
    { stmts = []; count = 0; next_id = first_id; origins = [] }

  let fact t p args =
    t.stmts <- Asp.Ast.fact p args :: t.stmts;
    t.count <- t.count + 1

  (* streamed facts bypass [stmts] but still count toward [n_facts] *)
  let bump t n = t.count <- t.count + n

  let new_condition t =
    let id = t.next_id in
    t.next_id <- id + 1;
    fact t "condition" [ Asp.Term.int id ];
    id

  let describe t id desc = t.origins <- (id, desc) :: t.origins

  let require t id n args =
    fact t "condition_requirement" (Asp.Term.int id :: Asp.Term.str n :: args)

  let impose t id n args =
    fact t "imposed_constraint" (Asp.Term.int id :: Asp.Term.str n :: args)

  let statements t = List.rev t.stmts
  let n_facts t = t.count
  let origins t = t.origins
end

(* Mutable generation state. *)
type gen = {
  repo : Pkg.Repo.t;
  genv : env;
  prefs : Preferences.t;
  core : Gen.t;
  mutable msgs : (int * string) list;
  (* (package, version-constraint) pairs needing enumeration *)
  version_sites : (string * string, unit) Hashtbl.t;
  (* (compiler-name, version-constraint) pairs *)
  compiler_sites : (string * string, unit) Hashtbl.t;
  (* target constraint strings *)
  target_sites : (string, unit) Hashtbl.t;
  (* extra values discovered in constraints / installed records *)
  extra_targets : (string, unit) Hashtbl.t;
  extra_oses : (string, unit) Hashtbl.t;
  extra_compilers : (Specs.Compiler.t, unit) Hashtbl.t;
  extra_versions : (string, Specs.Version.t list ref) Hashtbl.t;
  extra_variant_values : (string * string, string list ref) Hashtbl.t;
}

let fact g p args = Gen.fact g.core p args
let new_condition g = Gen.new_condition g.core

(* Human-readable provenance of a condition, recovered by
   [Diagnose.explain_core] when the condition id turns up in an unsat
   core. *)
let describe_condition g id desc = Gen.describe g.core id desc

let when_suffix = function
  | None -> ""
  | Some (w : Specs.Spec.abstract) ->
    " when " ^ Specs.Spec.abstract_to_string w

let is_virtual g name = Pkg.Repo.is_virtual g.repo name

let add_version_site g pkg con =
  if is_virtual g pkg then
    List.iter
      (fun p -> Hashtbl.replace g.version_sites (p, con) ())
      (Pkg.Repo.providers g.repo pkg)
  else Hashtbl.replace g.version_sites (pkg, con) ()

let effective_providers g virt = Preferences.provider_order g.prefs g.repo virt

let target_is_family_constraint c = String.length c > 0 && c.[String.length c - 1] = ':'

(* --- requirements of a condition ------------------------------------- *)

let req3 g id n a = fact g "condition_requirement" [ int id; str n; str a ]
let req4 g id n a b = fact g "condition_requirement" [ int id; str n; str a; str b ]

let req5 g id n a b c =
  fact g "condition_requirement" [ int id; str n; str a; str b; str c ]

(* Node-level constraints as *requirements* on [name]. *)
let emit_node_requirements g id name (cn : Specs.Spec.constraint_node) =
  (match cn.Specs.Spec.cversion with
  | Some r ->
    let con = Specs.Vrange.to_string r in
    if is_virtual g name then begin
      req4 g id "provider_version_satisfies" name con;
      add_version_site g name con
    end
    else begin
      req4 g id "version_satisfies" name con;
      add_version_site g name con
    end
  | None -> ());
  List.iter (fun (var, value) -> req5 g id "variant_value" name var value) cn.Specs.Spec.cvariants;
  (match cn.Specs.Spec.ccompiler with
  | Some c ->
    req4 g id "node_compiler" name c;
    (match cn.Specs.Spec.ccompiler_version with
    | Some r ->
      let con = Specs.Vrange.to_string r in
      req5 g id "node_compiler_version_satisfies" name c con;
      Hashtbl.replace g.compiler_sites (c, con) ()
    | None -> ())
  | None -> ());
  List.iter (fun (f, v) -> req5 g id "node_flags" name f v) cn.Specs.Spec.cflags;
  (match cn.Specs.Spec.cos with Some o -> req4 g id "node_os" name o | None -> ());
  match cn.Specs.Spec.ctarget with
  | Some t ->
    if target_is_family_constraint t then begin
      req4 g id "node_target_satisfies" name t;
      Hashtbl.replace g.target_sites t ()
    end
    else begin
      req4 g id "node_target" name t;
      Hashtbl.replace g.extra_targets t ()
    end
  | None -> ()

(* A when-condition: requirements on the package itself plus on other DAG
   nodes (the ^dep part, Section V-B.3). *)
let emit_when_requirements g id self (w : Specs.Spec.abstract) =
  if not (String.equal w.Specs.Spec.aroot.Specs.Spec.cname self) then
    invalid_arg "when-condition root must constrain the package itself";
  emit_node_requirements g id self w.Specs.Spec.aroot;
  List.iter
    (fun (d : Specs.Spec.constraint_node) ->
      let dname = d.Specs.Spec.cname in
      if is_virtual g dname then req3 g id "virtual_on" dname
      else req3 g id "node" dname;
      emit_node_requirements g id dname d)
    w.Specs.Spec.adeps

(* --- imposed constraints of a condition ------------------------------- *)

let imp3 g id n a = fact g "imposed_constraint" [ int id; str n; str a ]
let imp4 g id n a b = fact g "imposed_constraint" [ int id; str n; str a; str b ]

let imp5 g id n a b c =
  fact g "imposed_constraint" [ int id; str n; str a; str b; str c ]

(* Node-level constraints *imposed* on [name] when the condition holds. *)
let emit_imposed g id name (cn : Specs.Spec.constraint_node) =
  let virt = is_virtual g name in
  (match cn.Specs.Spec.cversion with
  | Some r ->
    let con = Specs.Vrange.to_string r in
    add_version_site g name con;
    if virt then imp4 g id "provider_version_satisfies" name con
    else imp4 g id "version_satisfies" name con
  | None -> ());
  List.iter
    (fun (var, value) ->
      if virt then imp5 g id "provider_variant_set" name var value
      else imp5 g id "variant_set" name var value)
    cn.Specs.Spec.cvariants;
  (match cn.Specs.Spec.ccompiler with
  | Some c ->
    imp4 g id "node_compiler_set" name c;
    (match cn.Specs.Spec.ccompiler_version with
    | Some r ->
      let con = Specs.Vrange.to_string r in
      imp5 g id "node_compiler_version_satisfies" name c con;
      Hashtbl.replace g.compiler_sites (c, con) ()
    | None -> ())
  | None -> ());
  List.iter (fun (f, v) -> imp5 g id "node_flags_set" name f v) cn.Specs.Spec.cflags;
  (match cn.Specs.Spec.cos with
  | Some o ->
    imp4 g id "node_os_set" name o;
    Hashtbl.replace g.extra_oses o ()
  | None -> ());
  match cn.Specs.Spec.ctarget with
  | Some t ->
    if target_is_family_constraint t then begin
      imp4 g id "node_target_satisfies" name t;
      Hashtbl.replace g.target_sites t ()
    end
    else begin
      imp4 g id "node_target_set" name t;
      Hashtbl.replace g.extra_targets t ()
    end
  | None -> ()

(* --- per-package metadata ---------------------------------------------- *)

let emit_package g (p : Pkg.Package.t) =
  let name = p.Pkg.Package.name in
  (* dependencies as generalized conditions *)
  List.iter
    (fun (d : Pkg.Package.dependency) ->
      let id = new_condition g in
      req3 g id "node" name;
      (match d.Pkg.Package.dep_when with
      | Some w -> emit_when_requirements g id name w
      | None -> ());
      let dname = d.Pkg.Package.dep_spec.Specs.Spec.cname in
      fact g "dependency_condition" [ int id; str name; str dname ];
      describe_condition g id
        (Printf.sprintf "%s depends on %s%s" name
           (Specs.Spec.node_to_string d.Pkg.Package.dep_spec)
           (when_suffix d.Pkg.Package.dep_when));
      emit_imposed g id dname d.Pkg.Package.dep_spec)
    p.Pkg.Package.dependencies;
  (* conflicts: conditions that must not hold *)
  List.iter
    (fun (c : Pkg.Package.conflict_decl) ->
      let id = new_condition g in
      req3 g id "node" name;
      emit_node_requirements g id name c.Pkg.Package.conflict_spec;
      (match c.Pkg.Package.conflict_when with
      | Some w -> emit_when_requirements g id name w
      | None -> ());
      fact g "conflict" [ int id; str name ];
      describe_condition g id
        (Printf.sprintf "%s conflicts with %s%s%s" name
           (Specs.Spec.node_to_string c.Pkg.Package.conflict_spec)
           (when_suffix c.Pkg.Package.conflict_when)
           (if c.Pkg.Package.conflict_msg = "" then ""
            else ": " ^ c.Pkg.Package.conflict_msg));
      g.msgs <- (id, c.Pkg.Package.conflict_msg) :: g.msgs)
    p.Pkg.Package.conflicts;
  (* provides *)
  List.iter
    (fun (pr : Pkg.Package.provide) ->
      let id = new_condition g in
      req3 g id "node" name;
      (match pr.Pkg.Package.prov_when with
      | Some w -> emit_when_requirements g id name w
      | None -> ());
      fact g "provider_condition" [ int id; str name; str pr.Pkg.Package.prov_virtual ];
      describe_condition g id
        (Printf.sprintf "%s provides %s%s" name pr.Pkg.Package.prov_virtual
           (when_suffix pr.Pkg.Package.prov_when)))
    p.Pkg.Package.provides;
  (* variants (preferences may override the recipe's defaults) *)
  List.iter
    (fun (v : Pkg.Package.variant_decl) ->
      fact g "variant" [ str name; str v.Pkg.Package.var_name ];
      fact g "variant_default"
        [
          str name;
          str v.Pkg.Package.var_name;
          str (Preferences.preferred_variant_default g.prefs name v);
        ];
      let extra =
        match Hashtbl.find_opt g.extra_variant_values (name, v.Pkg.Package.var_name) with
        | Some r -> !r
        | None -> []
      in
      List.iter
        (fun value ->
          fact g "variant_possible_value" [ str name; str v.Pkg.Package.var_name; str value ])
        (List.sort_uniq compare (v.Pkg.Package.var_values @ extra)))
    p.Pkg.Package.variants

(* Version pool of a package: declared versions (by weight) plus installed
   extras appended with worse weights. *)
let version_pool g (p : Pkg.Package.t) =
  let declared = Pkg.Package.declared_versions p in
  let extras =
    match Hashtbl.find_opt g.extra_versions p.Pkg.Package.name with
    | Some r ->
      List.filter
        (fun v ->
          not
            (List.exists
               (fun (d : Pkg.Package.version_decl) ->
                 Specs.Version.equal d.Pkg.Package.vversion v)
               declared))
        (List.sort_uniq Specs.Version.compare !r)
    | None -> []
  in
  let base = List.length declared in
  List.map
    (fun (d : Pkg.Package.version_decl) ->
      (d.Pkg.Package.vversion, d.Pkg.Package.vweight, d.Pkg.Package.vdeprecated))
    declared
  @ List.mapi (fun i v -> (v, base + i, false)) extras
  |> Preferences.version_pool g.prefs p.Pkg.Package.name

let emit_versions g (p : Pkg.Package.t) =
  let name = p.Pkg.Package.name in
  List.iter
    (fun (v, w, deprecated) ->
      fact g "version_declared" [ str name; str (Specs.Version.to_string v); int w ];
      if deprecated then
        fact g "deprecated_version" [ str name; str (Specs.Version.to_string v) ])
    (version_pool g p)

(* --- environment facts -------------------------------------------------- *)

let emit_environment g =
  (* compilers *)
  let roster =
    g.genv.compilers
    @ (Hashtbl.fold (fun c () acc -> c :: acc) g.extra_compilers []
      |> List.filter (fun c -> not (List.exists (Specs.Compiler.equal c) g.genv.compilers))
      |> List.sort Specs.Compiler.compare)
  in
  List.iteri
    (fun i (c : Specs.Compiler.t) ->
      let cv = Specs.Version.to_string c.Specs.Compiler.version in
      fact g "compiler" [ str c.Specs.Compiler.name; str cv ];
      fact g "compiler_weight" [ str c.Specs.Compiler.name; str cv; int i ])
    roster;
  (* OSes *)
  let oses =
    g.genv.oses
    @ (Hashtbl.fold (fun o () acc -> o :: acc) g.extra_oses []
      |> List.filter (fun o -> not (List.mem o g.genv.oses))
      |> List.sort compare)
  in
  List.iteri
    (fun i o ->
      fact g "os" [ str o ];
      fact g "os_weight" [ str o; int i ])
    oses;
  (* targets: the host family plus any explicitly named foreign targets *)
  let family_targets = Specs.Target.family_members g.genv.target_family in
  let extra =
    Hashtbl.fold (fun t () acc -> t :: acc) g.extra_targets []
    |> List.filter_map (fun t ->
           match Specs.Target.find t with
           | Some tt
             when not
                    (List.exists
                       (fun (x : Specs.Target.t) -> String.equal x.Specs.Target.name t)
                       family_targets) ->
             Some tt
           | _ -> None)
    |> List.sort_uniq compare
  in
  let targets = family_targets @ extra in
  List.iter
    (fun (t : Specs.Target.t) ->
      fact g "target" [ str t.Specs.Target.name ];
      fact g "target_weight" [ str t.Specs.Target.name; int (Specs.Target.weight t) ])
    targets;
  (* compiler-target support *)
  List.iter
    (fun (c : Specs.Compiler.t) ->
      let cv = Specs.Version.to_string c.Specs.Compiler.version in
      List.iter
        (fun (t : Specs.Target.t) ->
          if Specs.Compiler.supports_target c t then
            fact g "compiler_supports_target"
              [ str c.Specs.Compiler.name; str cv; str t.Specs.Target.name ])
        targets)
    roster;
  (* target constraint enumerations *)
  Hashtbl.iter
    (fun con () ->
      let family = String.sub con 0 (String.length con - 1) in
      List.iter
        (fun (t : Specs.Target.t) ->
          if Specs.Target.is_descendant_of t family then
            fact g "target_satisfies" [ str con; str t.Specs.Target.name ])
        targets)
    g.target_sites;
  (* compiler version-constraint enumerations *)
  Hashtbl.iter
    (fun (cname, con) () ->
      let r = Specs.Vrange.of_string con in
      List.iter
        (fun (c : Specs.Compiler.t) ->
          if
            String.equal c.Specs.Compiler.name cname
            && Specs.Vrange.satisfies r c.Specs.Compiler.version
          then
            fact g "compiler_version_satisfies"
              [ str cname; str con; str (Specs.Version.to_string c.Specs.Compiler.version) ])
        roster)
    g.compiler_sites

(* --- installed database -------------------------------------------------- *)

module D = Pkg.Database

(* Slots eligible for reuse: package in the closure and the whole
   dependency sub-DAG eligible too.  Works entirely on packed ids — no
   record is materialized — and returns slots in insertion order, so
   both the streamed and the materialized path emit facts in the same
   canonical order. *)
let eligible_slots db closure =
  let slot_of_hash_id = Hashtbl.create 256 in
  D.iter_slots db (fun s -> Hashtbl.replace slot_of_hash_id (D.p_hash db s) s);
  let keep = Hashtbl.create 256 in
  D.iter_slots db (fun s ->
      if Hashtbl.mem closure (D.str_of_id db (D.p_name db s)) then
        Hashtbl.replace keep s ());
  let changed = ref true in
  while !changed do
    changed := false;
    let drop = ref [] in
    Hashtbl.iter
      (fun s () ->
        let ok = ref true in
        D.iter_deps db s (fun _ dh ->
            if !ok then
              match Hashtbl.find_opt slot_of_hash_id dh with
              | Some d when Hashtbl.mem keep d -> ()
              | _ -> ok := false);
        if not !ok then drop := s :: !drop)
      keep;
    if !drop <> [] then begin
      changed := true;
      List.iter (Hashtbl.remove keep) !drop
    end
  done;
  let out = ref [] in
  D.iter_slots db (fun s -> if Hashtbl.mem keep s then out := s :: !out);
  List.rev !out

let note_installed_values g db slot =
  let name = D.str_of_id db (D.p_name db slot) in
  let version = D.version_of_id db (D.p_version db slot) in
  (match Hashtbl.find_opt g.extra_versions name with
  | Some l -> l := version :: !l
  | None -> Hashtbl.replace g.extra_versions name (ref [ version ]));
  D.iter_variants db slot (fun var value ->
      let key = (name, D.str_of_id db var) in
      let value = D.str_of_id db value in
      match Hashtbl.find_opt g.extra_variant_values key with
      | Some l -> l := value :: !l
      | None -> Hashtbl.replace g.extra_variant_values key (ref [ value ]));
  Hashtbl.replace g.extra_compilers
    {
      Specs.Compiler.name = D.str_of_id db (D.p_compiler_name db slot);
      version = D.version_of_id db (D.p_compiler_version db slot);
    }
    ();
  Hashtbl.replace g.extra_oses (D.str_of_id db (D.p_os db slot)) ()

(* Pool-id -> hash-consed term, memoized per generation: at E4S scale the
   63k records share a few thousand distinct strings, so every term is
   built once and reused by array index. *)
let term_memo db =
  let memo = Array.make (max 1 (D.pool_size db)) None in
  fun i ->
    match memo.(i) with
    | Some t -> t
    | None ->
      let t = Asp.Term.str (D.str_of_id db i) in
      memo.(i) <- Some t;
      t

(* One installed record's reuse facts, handed to [emit] as ground atoms:
   [installed_hash(name, hash)] plus the hash-keyed constraints and
   [hash_dep] edges (Section VI).  Shared verbatim by the materialized
   path (emit = append a fact statement) and the streaming path (emit =
   seed straight into the grounder's store). *)
let emit_installed_atoms ts db slot emit =
  let name = ts (D.p_name db slot) and h = ts (D.p_hash db slot) in
  emit (Asp.Gatom.make "installed_hash" [ name; h ]);
  let hc args = emit (Asp.Gatom.make "hash_constraint" (h :: args)) in
  hc [ str "version"; name; ts (D.p_version db slot) ];
  D.iter_variants db slot (fun var value ->
      hc [ str "variant_value"; name; ts var; ts value ]);
  hc
    [
      str "node_compiler_version";
      name;
      ts (D.p_compiler_name db slot);
      ts (D.p_compiler_version db slot);
    ];
  hc [ str "node_os"; name; ts (D.p_os db slot) ];
  hc [ str "node_target"; name; ts (D.p_target db slot) ];
  D.iter_deps db slot (fun dn dh ->
      emit (Asp.Gatom.make "hash_dep" [ h; ts dn; ts dh ]))

let n_installed_atoms db slot = 5 + D.n_variants db slot + D.n_deps db slot

(* --- closure -------------------------------------------------------------- *)

(* The package closure of a request depends only on the {e names} in it
   (roots and [^dep]s), never on the constraints: this is what lets the
   substrate key a ground base by the request's name skeleton. *)
let closure_table ~repo (roots : Specs.Spec.abstract list) =
  let is_virt n = Pkg.Repo.is_virtual repo n in
  let closure = Hashtbl.create 128 in
  let add_closure name =
    if not (Hashtbl.mem closure name) then begin
      if (not (is_virt name)) && Pkg.Repo.find repo name = None then
        raise (Unknown_package name);
      if not (is_virt name) then Hashtbl.replace closure name ();
      List.iter
        (fun d -> if not (is_virt d) then Hashtbl.replace closure d ())
        (Pkg.Repo.possible_dependencies repo name)
    end
  in
  List.iter
    (fun (a : Specs.Spec.abstract) ->
      add_closure a.Specs.Spec.aroot.Specs.Spec.cname;
      List.iter
        (fun (d : Specs.Spec.constraint_node) -> add_closure d.Specs.Spec.cname)
        a.Specs.Spec.adeps)
    roots;
  closure

let closure_packages ~repo roots =
  Hashtbl.fold (fun n () acc -> n :: acc) (closure_table ~repo roots) []
  |> List.sort compare

let reuse_digest ?installed ~repo roots =
  match installed with
  | Some db -> (
    (* an empty database and a slice with nothing eligible generate the
       same (absent) reuse facts, so they share the "reuse-empty" digest —
       the first install must not re-key requests that cannot see it *)
    match eligible_slots db (closure_table ~repo roots) with
    | [] -> "reuse-empty"
    | slots ->
      let hs =
        List.sort compare
          (List.map (fun s -> D.str_of_id db (D.p_hash db s)) slots)
      in
      Specs.Spec.digest_strings ("reuse.v1" :: hs))
  | None -> "no-reuse"

(* --- entry point ---------------------------------------------------------- *)

let generate ?(env = default_env) ?(prefs = Preferences.empty) ?installed
    ?(reuse_mode = `Stream) ~repo (roots : Specs.Spec.abstract list) =
  let env =
    match prefs.Preferences.compilers with
    | Some roster -> { env with compilers = roster }
    | None -> env
  in
  let g =
    {
      repo;
      genv = env;
      prefs;
      core = Gen.create ();
      msgs = [];
      version_sites = Hashtbl.create 64;
      compiler_sites = Hashtbl.create 16;
      target_sites = Hashtbl.create 16;
      extra_targets = Hashtbl.create 16;
      extra_oses = Hashtbl.create 16;
      extra_compilers = Hashtbl.create 16;
      extra_versions = Hashtbl.create 16;
      extra_variant_values = Hashtbl.create 16;
    }
  in
  (* validate root and ^dep names, and compute the package closure *)
  let closure = closure_table ~repo roots in
  let closure_packages =
    Hashtbl.fold (fun n () acc -> n :: acc) closure [] |> List.sort compare
  in
  (* reuse: record installed values first so version/variant/compiler pools
     include them *)
  let eligible =
    match installed with
    | Some db when not (Pkg.Database.is_empty db) ->
      let slots = eligible_slots db closure in
      List.iter (note_installed_values g db) slots;
      fact g "optimize_for_reuse" [];
      Some (db, slots)
    | _ -> None
  in
  (* roots *)
  List.iter
    (fun (a : Specs.Spec.abstract) ->
      let rname = a.Specs.Spec.aroot.Specs.Spec.cname in
      let id = new_condition g in
      describe_condition g id
        (Printf.sprintf "the request asks for %s" (Specs.Spec.abstract_to_string a));
      if is_virtual g rname then begin
        (* a virtual root: require its resolution, constrain the provider *)
        imp3 g id "virtual_node" rname;
        emit_imposed g id rname a.Specs.Spec.aroot
      end
      else begin
        fact g "root" [ str rname ];
        req3 g id "node" rname;
        emit_imposed g id rname a.Specs.Spec.aroot
      end;
      List.iter
        (fun (d : Specs.Spec.constraint_node) ->
          let dname = d.Specs.Spec.cname in
          if is_virtual g rname then begin
            (* virtual root: no reachability anchor; just force the nodes *)
            if is_virtual g dname then imp3 g id "virtual_node" dname
            else imp3 g id "node" dname
          end
          else if is_virtual g dname then imp4 g id "root_virtual_dep" rname dname
          else imp4 g id "root_dep" rname dname;
          emit_imposed g id dname d)
        a.Specs.Spec.adeps)
    roots;
  (* virtuals present in this solve *)
  let virtuals =
    List.filter
      (fun v ->
        List.exists
          (fun p -> Hashtbl.mem closure p)
          (Pkg.Repo.providers repo v)
        || List.exists
             (fun (a : Specs.Spec.abstract) ->
               String.equal a.Specs.Spec.aroot.Specs.Spec.cname v
               || List.exists
                    (fun (d : Specs.Spec.constraint_node) ->
                      String.equal d.Specs.Spec.cname v)
                    a.Specs.Spec.adeps)
             roots)
      (Pkg.Repo.virtuals repo)
  in
  List.iter
    (fun v ->
      fact g "virtual" [ str v ];
      List.iter
        (fun p ->
          if Hashtbl.mem closure p then begin
            fact g "possible_provider" [ str v; str p ]
          end)
        (Pkg.Repo.providers repo v);
      List.iteri
        (fun i p ->
          if Hashtbl.mem closure p then fact g "provider_weight" [ str v; str p; int i ])
        (effective_providers g v))
    virtuals;
  (* package metadata (conditions reference version/variant pools, so emit
     after noting installed extras) *)
  List.iter
    (fun name ->
      let p = Pkg.Repo.find_exn repo name in
      emit_package g p;
      emit_versions g p)
    closure_packages;
  (* version-constraint enumerations *)
  Hashtbl.iter
    (fun (pkg, con) () ->
      match Pkg.Repo.find repo pkg with
      | None -> ()
      | Some p ->
        let r = Specs.Vrange.of_string con in
        List.iter
          (fun (v, _, _) ->
            if Specs.Vrange.satisfies r v then
              fact g "version_satisfies_possible"
                [ str pkg; str con; str (Specs.Version.to_string v) ])
          (version_pool g p))
    g.version_sites;
  emit_environment g;
  (* Installed reuse facts come last — statement order and streamed
     seeding order coincide, so both modes intern atoms identically. *)
  let reuse_stream =
    match (eligible, reuse_mode) with
    | None, _ -> None
    | Some (db, slots), `Materialize ->
      let ts = term_memo db in
      List.iter
        (fun slot ->
          emit_installed_atoms ts db slot (fun (ga : Asp.Gatom.t) ->
              fact g ga.Asp.Gatom.pred ga.Asp.Gatom.args))
        slots;
      None
    | Some (db, slots), `Stream ->
      (* no per-spec atom lists: atoms are built on demand, straight into
         whatever sink the grounder hands us.  The stream is replayable
         (the arena is append-only, so the slots stay valid) and counts
         toward [n_facts] arithmetically. *)
      List.iter
        (fun slot -> Gen.bump g.core (n_installed_atoms db slot))
        slots;
      let ts = term_memo db in
      Some (fun sink -> List.iter (fun s -> emit_installed_atoms ts db s sink) slots)
  in
  {
    statements = Gen.statements g.core;
    n_facts = Gen.n_facts g.core;
    possible = closure_packages;
    conflict_msgs = g.msgs;
    cond_origins = Gen.origins g.core;
    reuse_stream;
  }
