(** The ASP-based concretizer: Spack's dependency solver, reimplemented.

    Pipeline (§VII): {e setup} generates facts for the problem instance,
    {e load} parses the logic program, {e ground} instantiates it, and
    {e solve} runs CDCL search with lexicographic optimization.  Each phase
    is timed separately, matching the paper's instrumentation.

    Solves are budgeted (see {!Asp.Budget}): a budget expiring after a
    stable model is in hand still yields {!Concrete}, marked [`Degraded];
    expiring earlier yields {!Interrupted}.  Neither case raises, and
    {!solve_escalating} retries interrupted solves with doubled limits. *)

type phases = {
  setup_time : float;
  load_time : float;
  ground_time : float;
  solve_time : float;
}

val total : phases -> float

type success = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;  (** (package, hash) reused from the DB *)
  built : string list;  (** packages built from source *)
  costs : (int * int) list;  (** optimization vector: (priority, value) *)
  quality : Asp.Optimize.quality;
  (** [`Optimal], or [`Degraded bounds] when the budget expired
      mid-optimization: the spec is valid (it is a stable model) but its
      costs are only guaranteed optimal for completed levels *)
  phases : phases;
  n_facts : int;
  n_possible : int;  (** possible dependencies considered (Fig. 7's x-axis) *)
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
}

type result =
  | Concrete of success
  | Unsatisfiable of {
      phases : phases;
      n_facts : int;
      n_possible : int;
      reasons : string list;  (** best-effort explanations ({!Diagnose}) *)
    }
  | Interrupted of {
      info : Asp.Budget.info;  (** phase, reason, partial stats at expiry *)
      phases : phases;
      n_facts : int;
      n_possible : int;
    }  (** the budget expired before any stable model was found *)

val solve :
  ?config:Asp.Config.t ->
  ?params:Asp.Sat.params ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?budget:Asp.Budget.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  result
(** Concretize one or more root specs together (unified DAG).  A budget is
    armed from [config.limits] unless an explicit [budget] is given;
    [params] overrides the preset's search parameters (used by
    {!solve_escalating} to reseed retries).
    @raise Facts.Unknown_package on unknown roots or [^deps]. *)

val solve_spec :
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?budget:Asp.Budget.t ->
  repo:Pkg.Repo.t ->
  string ->
  result
(** Parse a spec string, then {!solve}.
    @raise Specs.Spec_parser.Error on malformed spec syntax. *)

val solve_escalating :
  ?attempts:int ->
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?cancel:Asp.Budget.cancel_token ->
  ?fault:(int -> Asp.Budget.t -> unit) ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  result
(** {!solve} with retry-on-interruption: up to [attempts] (default 3)
    rounds, doubling every finite limit of [config.limits] and reseeding
    the search each round.  Returns the first non-interrupted result, or
    the last {!Interrupted} one.  Cancellation (reason [Cancelled]) is
    never retried.  [fault] observes each round's armed budget before the
    solve — the fault-injection tests use it; [cancel] is shared across
    rounds so a SIGINT during any round sticks. *)
