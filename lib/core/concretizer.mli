(** The ASP-based concretizer: Spack's dependency solver, reimplemented.

    Pipeline (§VII): {e setup} generates facts for the problem instance,
    {e load} parses the logic program, {e ground} instantiates it, and
    {e solve} runs CDCL search with lexicographic optimization.  Each phase
    is timed separately, matching the paper's instrumentation.

    Solves are budgeted (see {!Asp.Budget}): a budget expiring after a
    stable model is in hand still yields {!Concrete}, marked [`Degraded];
    expiring earlier yields {!Interrupted}.  Neither case raises, and
    {!solve_escalating} retries interrupted solves with doubled limits. *)

type phases = {
  setup_time : float;
  load_time : float;
  ground_time : float;
  ground_base_time : float;
      (** portion of [ground_time] spent building a substrate base from
          scratch (0 without a substrate, or on a warm base hit) *)
  ground_extend_time : float;
      (** portion of [ground_time] spent extending a substrate base with
          the request's own facts (0 without a substrate) *)
  solve_time : float;
}

val total : phases -> float

type success = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;  (** (package, hash) reused from the DB *)
  built : string list;  (** packages built from source *)
  costs : (int * int) list;  (** optimization vector: (priority, value) *)
  quality : Asp.Optimize.quality;
  (** [`Optimal], or [`Degraded bounds] when the budget expired
      mid-optimization: the spec is valid (it is a stable model) but its
      costs are only guaranteed optimal for completed levels *)
  phases : phases;
  n_facts : int;
  n_possible : int;  (** possible dependencies considered (Fig. 7's x-axis) *)
  ground_stats : Asp.Grounder.stats;
  sat_stats : Asp.Sat.stats;
  verified : bool;
  (** the spec passed independent model verification ({!Asp.Verify});
      [false] only when [config.verify] is off — a model that {e fails}
      verification is never returned (reseeded retry, then
      {!Asp.Solver_error.Verification_failed}) *)
}

type result =
  | Concrete of success
  | Unsatisfiable of {
      phases : phases;
      n_facts : int;
      n_possible : int;
      reasons : string list;  (** best-effort explanations ({!Diagnose}) *)
    }
  | Interrupted of {
      info : Asp.Budget.info;  (** phase, reason, partial stats at expiry *)
      phases : phases;
      n_facts : int;
      n_possible : int;
    }  (** the budget expired before any stable model was found *)

(** {1 Solve caching}

    A content-addressed cache of solve results, supplied by the caller as a
    pair of closures ([Server.Cache] provides the LRU + on-disk
    implementation).  Keys come from {!request_key}; only proven-optimal
    {!Concrete} results are stored (degraded/interrupted outcomes depend on
    the budget that produced them, UNSAT diagnoses on [explain]).  A cached
    result is returned exactly as solved — cost vector, [verified] flag and
    original phase timings intact. *)

type cache = {
  lookup : string -> result option;
  store : string -> result -> unit;
}

val request_key :
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  string
(** Canonical digest of everything a solve's answer depends on: the
    normalized request ({!Specs.Spec.abstract_digest} per root, root order
    preserved), {!Pkg.Repo.fingerprint}, {!Facts.reuse_digest} of the
    installed DB (the whole-DB {!Pkg.Database.fingerprint} only as a
    fallback for unknown packages), the answer-relevant solver
    configuration (preset/strategy/verify; budgets excluded), the
    environment roster and the preferences.  Installing a package changes
    the reuse digest — and therefore the key — only for requests whose
    package closure can observe the new record; every other cached answer
    survives the install.  Stale entries are never served, they just stop
    being addressed. *)

val solve :
  ?config:Asp.Config.t ->
  ?params:Asp.Sat.params ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?reuse_mode:Facts.reuse_mode ->
  ?budget:Asp.Budget.t ->
  ?pool:Asp.Pool.t ->
  ?racers:int ->
  ?explain:bool ->
  ?cache:cache ->
  ?substrate:Substrate.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  result
(** Concretize one or more root specs together (unified DAG).  A budget is
    armed from [config.limits] unless an explicit [budget] is given;
    [params] overrides the preset's search parameters (used by
    {!solve_escalating} to reseed retries).

    With [explain] (default [false]) an unsatisfiable solve is diagnosed
    through {!Diagnose.explain_core} — a provenance-mapped minimal unsat
    core naming the conflicting recipes and request constraints — instead
    of the cheap syntactic heuristics.

    With [config.verify] (default on) the winning model is independently
    re-checked before being reported; see [success.verified].

    When [racers > 1] and a [pool] is given, the solve phase runs as a
    parallel portfolio ({!Asp.Portfolio}): setup, load and grounding stay
    on the calling domain, then [racers] diverse configurations race over
    the shared ground program; the cost vector of the result is the same as
    the sequential solver's ([params] is then ignored — racers carry their
    own seeds).
    @raise Facts.Unknown_package on unknown roots or [^deps]. *)

val solve_spec :
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?reuse_mode:Facts.reuse_mode ->
  ?budget:Asp.Budget.t ->
  ?explain:bool ->
  ?cache:cache ->
  ?substrate:Substrate.t ->
  repo:Pkg.Repo.t ->
  string ->
  result
(** Parse a spec string, then {!solve}.
    @raise Specs.Spec_parser.Error on malformed spec syntax. *)

val solve_escalating :
  ?attempts:int ->
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?reuse_mode:Facts.reuse_mode ->
  ?cancel:Asp.Budget.cancel_token ->
  ?fault:(int -> Asp.Budget.t -> unit) ->
  ?pool:Asp.Pool.t ->
  ?racers:int ->
  ?explain:bool ->
  ?cache:cache ->
  ?substrate:Substrate.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list ->
  result
(** {!solve} with retry-on-interruption: up to [attempts] (default 3)
    rounds, doubling every finite limit of [config.limits] and reseeding
    the search each round.  Returns the first non-interrupted result, or
    the last {!Interrupted} one.  Cancellation (reason [Cancelled]) is
    never retried.  [fault] observes each round's armed budget before the
    solve — the fault-injection tests use it; [cancel] is shared across
    rounds so a SIGINT during any round sticks.  [pool]/[racers] enable the
    portfolio solve phase of {!solve} on every round. *)

val solve_many :
  ?pool:Asp.Pool.t ->
  ?attempts:int ->
  ?config:Asp.Config.t ->
  ?env:Facts.env ->
  ?prefs:Preferences.t ->
  ?installed:Pkg.Database.t ->
  ?reuse_mode:Facts.reuse_mode ->
  ?cancel:Asp.Budget.cancel_token ->
  ?fault:(int -> Asp.Budget.t -> unit) ->
  ?explain:bool ->
  ?cache:cache ->
  ?substrate:Substrate.t ->
  repo:Pkg.Repo.t ->
  Specs.Spec.abstract list list ->
  result list
(** Concretize independent root sets in parallel across [pool] (sequential
    when the pool is absent or has one domain), each through
    {!solve_escalating} with [attempts] rounds (default 1, i.e. no
    retries).  Identical requests within the batch (same normalized
    constraint digests, any spelling) are deduplicated before dispatch: a
    duplicate-heavy batch performs one solve per {e unique} request and the
    result fans back out, so results are still in input order and
    one-per-job.  [cancel] is shared by every job, so one SIGINT stops the
    whole batch; [fault] observes each solve's armed budget (tests count
    dispatches through it).  Jobs are single-domain inside — batch
    parallelism does not compose with portfolio racing. *)
