(** Human-readable explanations for unsatisfiable concretizations.

    The ASP solver proves unsatisfiability but (like clasp) does not produce
    an explanation.  This module re-examines the request against the
    repository with cheap syntactic checks and reports the likely causes:
    unsatisfiable version requirements, unknown compilers/targets/OSes,
    matching [conflicts] declarations, variant misuse, and providerless
    virtuals. *)

val explain :
  env:Facts.env -> repo:Pkg.Repo.t -> Specs.Spec.abstract list -> string list
(** Best-effort list of reasons, most specific first; empty when nothing
    obvious is wrong (a genuinely combinatorial conflict).  Duplicates
    (repeated nodes across roots and [^deps]) are removed, keeping first
    occurrences. *)

val explain_core_origins :
  ?params:Asp.Sat.params ->
  ?budget:Asp.Budget.t ->
  cond_origins:(int * string) list ->
  fallback:(unit -> string list) ->
  ground:Asp.Ground.t ->
  unit ->
  string list
(** Frontend-neutral unsat-core explanation: extract a minimal core
    ({!Asp.Explain}), group its ground instances by source constraint, and
    map every condition id found in the core's atoms back through
    [cond_origins] ("because pkg foo conflicts with bar < 2").  Works for
    any frontend that targets the generalized-condition fragment
    ({!Logic_program.conditions_fragment}): Spack's {!Facts} and the CUDF
    encoder both qualify.  [fallback] supplies the frontend's syntactic
    heuristics, used when core extraction exhausts its budget (prefixed
    with a note) or, defensively, when the re-solve is satisfiable. *)

val explain_core :
  ?params:Asp.Sat.params ->
  ?budget:Asp.Budget.t ->
  env:Facts.env ->
  repo:Pkg.Repo.t ->
  facts:Facts.t ->
  ground:Asp.Ground.t ->
  Specs.Spec.abstract list ->
  string list
(** Exact explanation via a minimal unsat core ({!Asp.Explain}): the ground
    program is re-solved with selector-guarded constraints, the final
    conflict is shrunk by deletion, and each surviving constraint instance
    is mapped back through its {!Asp.Ground.origin} and the condition
    provenance recorded by {!Facts} ([cond_origins]) — naming the package
    recipes and request constraints in conflict.  Ground instances of the
    same source constraint are grouped.  Falls back to the syntactic
    {!explain} heuristics only when core extraction runs out of [budget]
    (or, defensively, when the re-solve finds the program satisfiable). *)
