(** Reading an optimal stable model back into a concrete spec DAG. *)

exception Error of string

type info = {
  spec : Specs.Spec.concrete;
  reused : (string * string) list;  (** (package, installed hash) choices *)
  built : string list;  (** packages that must be built from source *)
}

val of_index : Asp.Answer.t -> info
(** Extract from a pre-built answer index (the concretizer builds the index
    once and shares it).
    @raise Error when the answer set is not a well-formed concretization
    (missing attributes — indicates a logic-program bug). *)

val extract : Asp.Gatom.t list -> info
(** [of_index] over a freshly built index.
    @raise Error as {!of_index}. *)
