type error = Transient of string | Fatal of string

let error_message = function Transient m | Fatal m -> m

type t = {
  endpoints : string array;  (* failover list; [cursor] is the active one *)
  mutable cursor : int;
  recv_timeout : float option;
  retries : int;
  backoff : float;
  backoff_cap : float;
  rng : Random.State.t;
  mutable io : (in_channel * out_channel) option;
  mutable next_id : int;
  mutable n_reconnects : int;
  mutable n_failovers : int;
}

let reconnects t = t.n_reconnects
let failovers t = t.n_failovers
let endpoint t = t.endpoints.(t.cursor)

let drop t =
  match t.io with
  | None -> ()
  | Some (ic, oc) ->
    t.io <- None;
    (try flush oc with Sys_error _ -> ());
    (try close_in ic with Sys_error _ -> ())

(* Move to the next endpoint in the list (no-op with a single endpoint):
   called when the active one failed transiently or answered [Read_only] —
   either the primary died (a follower will answer once promoted) or we
   were pointed at a follower all along. *)
let rotate t =
  if Array.length t.endpoints > 1 then begin
    drop t;
    t.cursor <- (t.cursor + 1) mod Array.length t.endpoints;
    t.n_failovers <- t.n_failovers + 1
  end

let dial t =
  let path = endpoint t in
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX path);
    Option.iter
      (fun s -> Unix.setsockopt_float fd Unix.SO_RCVTIMEO s)
      t.recv_timeout
  with
  | () ->
    let io = (Unix.in_channel_of_descr fd, Unix.out_channel_of_descr fd) in
    t.io <- Some io;
    Ok io
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (path ^ ": " ^ Unix.error_message e)

let connect_many ?(retries = 4) ?(backoff = 0.05) ?recv_timeout paths =
  (* writes to a peer-closed socket must surface as EPIPE, not kill the
     process *)
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  match paths with
  | [] -> Error "no endpoints"
  | _ ->
    let t =
      {
        endpoints = Array.of_list paths;
        cursor = 0;
        recv_timeout;
        retries = max 0 retries;
        backoff = Float.max 0.001 backoff;
        backoff_cap = 2.0;
        rng =
          Random.State.make
            [| Unix.getpid (); int_of_float (Unix.gettimeofday () *. 1e6) |];
        io = None;
        next_id = 1;
        n_reconnects = 0;
        n_failovers = 0;
      }
    in
    (* connect to the first endpoint that answers; all down is still Ok if
       retries remain for the first request to spend *)
    let rec first i last =
      if i >= Array.length t.endpoints then
        if t.retries > 0 then Ok t else Error last
      else begin
        t.cursor <- i;
        match dial t with Ok _ -> Ok t | Error m -> first (i + 1) m
      end
    in
    first 0 "unreachable"

let connect ?retries ?backoff ?recv_timeout path =
  connect_many ?retries ?backoff ?recv_timeout [ path ]

(* Bounded exponential backoff with full jitter: sleep a uniform fraction
   of [base * 2^attempt], capped — herds of retrying clients decorrelate
   instead of hammering the daemon in lockstep. *)
let backoff_sleep t attempt =
  let ceiling =
    Float.min t.backoff_cap (t.backoff *. Float.pow 2. (float_of_int attempt))
  in
  let d = t.backoff *. 0.1 in
  Unix.sleepf (d +. Random.State.float t.rng (Float.max d (ceiling -. d)))

(* ------------------------------------------------------------------ *)
(* One attempt over the current connection                             *)
(* ------------------------------------------------------------------ *)

let request_once t req =
  match
    match t.io with Some io -> Ok io | None -> dial t
  with
  | Error m -> Error (Transient ("connect: " ^ m))
  | Ok (ic, oc) -> (
    let id = t.next_id in
    t.next_id <- id + 1;
    match
      output_string oc (Json.to_string (Protocol.request_to_json ~id req));
      output_char oc '\n';
      flush oc
    with
    | exception Sys_error m ->
      drop t;
      Error (Transient ("send failed: " ^ m))
    | () ->
      let rec wait () =
        match input_line ic with
        | exception End_of_file ->
          drop t;
          Error (Transient "server closed the connection")
        | exception Sys_error m ->
          drop t;
          Error (Transient ("receive failed: " ^ m))
        | exception Sys_blocked_io ->
          (* SO_RCVTIMEO expired mid-read *)
          drop t;
          Error (Transient "receive timed out")
        | line -> (
          match Json.of_string line with
          | Error m ->
            (* a half-written line is indistinguishable from garbage:
               either way this connection is no longer in a usable state *)
            drop t;
            Error (Transient ("invalid response: " ^ m))
          | Ok j -> (
            match Protocol.response_of_json j with
            | Error m ->
              drop t;
              Error (Transient ("malformed response: " ^ m))
            | Ok (rid, resp) -> if rid = id then Ok resp else wait ()))
      in
      wait ())

(* ------------------------------------------------------------------ *)
(* Retrying layers                                                     *)
(* ------------------------------------------------------------------ *)

(* Transparent reconnect on transient transport failures.  Safe to resend:
   solves are read-only and installs are idempotent (records key on the
   DAG hash; the journal replay gives the same guarantee to the daemon
   itself). *)
let request t req =
  let rec go attempt last =
    if attempt > t.retries then Error last
    else begin
      if attempt > 0 then begin
        backoff_sleep t (attempt - 1);
        t.n_reconnects <- t.n_reconnects + 1
      end;
      match request_once t req with
      | Ok resp -> Ok resp
      | Error (Fatal m) -> Error m
      | Error (Transient m) ->
        rotate t;
        go (attempt + 1) m
    end
  in
  go 0 "unreachable"

(* Also retry typed [Overloaded] sheds (the daemon is telling us to come
   back later, so back off with jitter and do exactly that) and typed
   [Read_only] refusals (we reached a follower; rotate endpoints and retry
   until promotion makes one of them a primary).  Used by the load
   generator and batch tooling; interactive callers usually want the shed
   surfaced instead. *)
let call ?(retry_overloaded = true) t req =
  let rec go attempt =
    if attempt > t.retries then
      match request t req with
      | Ok (Protocol.Error { kind = Protocol.Overloaded; message }) ->
        Error ("overloaded: " ^ message)
      | Ok (Protocol.Error { kind = Protocol.Read_only; message }) ->
        Error ("read-only: " ^ message)
      | other -> other
    else
      match request_once t req with
      | Ok (Protocol.Error { kind = Protocol.Overloaded; _ })
        when retry_overloaded ->
        backoff_sleep t attempt;
        go (attempt + 1)
      | Ok (Protocol.Error { kind = Protocol.Read_only; _ }) ->
        rotate t;
        backoff_sleep t attempt;
        go (attempt + 1)
      | Ok resp -> Ok resp
      | Error (Fatal m) -> Error m
      | Error (Transient _) ->
        rotate t;
        backoff_sleep t attempt;
        t.n_reconnects <- t.n_reconnects + 1;
        go (attempt + 1)
  in
  go 0

let close t = drop t
