type t = { ic : in_channel; oc : out_channel; mutable next_id : int }

let connect path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match Unix.connect fd (Unix.ADDR_UNIX path) with
  | () ->
    Ok
      {
        ic = Unix.in_channel_of_descr fd;
        oc = Unix.out_channel_of_descr fd;
        next_id = 1;
      }
  | exception Unix.Unix_error (e, _, _) ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Error (path ^ ": " ^ Unix.error_message e)

let request t req =
  let id = t.next_id in
  t.next_id <- id + 1;
  match
    output_string t.oc (Json.to_string (Protocol.request_to_json ~id req));
    output_char t.oc '\n';
    flush t.oc
  with
  | exception Sys_error m -> Error ("send failed: " ^ m)
  | () ->
    let rec wait () =
      match input_line t.ic with
      | exception End_of_file -> Error "server closed the connection"
      | exception Sys_error m -> Error ("receive failed: " ^ m)
      | line -> (
        match Json.of_string line with
        | Error m -> Error ("invalid response: " ^ m)
        | Ok j -> (
          match Protocol.response_of_json j with
          | Error m -> Error m
          | Ok (rid, resp) -> if rid = id then Ok resp else wait ()))
    in
    wait ()

let close t =
  (try flush t.oc with Sys_error _ -> ());
  try close_in t.ic with Sys_error _ -> ()
