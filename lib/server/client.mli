(** Blocking client for the {!Daemon} socket protocol, used by
    [spack_solve --connect] and the end-to-end tests.

    One request at a time per connection: {!request} writes the line,
    tags it with a fresh id and reads until the matching reply arrives
    (the daemon answers in completion order, so replies to earlier
    pipelined requests are skipped, not lost — this client simply does not
    pipeline). *)

type t

val connect : string -> (t, string) result
(** Connect to the daemon's socket path. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** [Error] is a transport or framing failure (daemon gone, invalid bytes);
    daemon-level failures arrive as [Ok (Protocol.Error _)]. *)

val close : t -> unit
