(** Resilient blocking client for the {!Daemon} socket protocol, used by
    [spack_solve --connect], [spack_load] and the end-to-end tests.

    One request at a time per connection: a request line is tagged with a
    fresh id and the client reads until the matching reply arrives (the
    daemon answers in completion order, so replies to earlier pipelined
    requests are skipped, not lost — this client simply does not
    pipeline).

    Transport failures mid-request ([EPIPE]/[ECONNRESET] surfacing as
    [Sys_error], server EOF, truncated or malformed frames) are typed
    {!Transient} and handled by reconnecting with bounded exponential
    backoff and full jitter; requests are safe to resend because solves
    are read-only and installs are idempotent on the DAG hash.

    {!connect_many} takes a failover list of endpoints (primary first,
    then hot-standby followers).  Transient failures and typed
    [Read_only] refusals rotate to the next endpoint before retrying, so
    a client survives a primary crash: its retries land on the follower,
    which answers once promoted. *)

type t

type error = Transient of string | Fatal of string
(** [Transient]: the connection died or returned garbage — a retry on a
    fresh connection may succeed.  [Fatal]: retrying cannot help. *)

val error_message : error -> string

val connect :
  ?retries:int ->
  ?backoff:float ->
  ?recv_timeout:float ->
  string ->
  (t, string) result
(** Connect to the daemon's socket path.  [retries] (default 4) bounds the
    reconnect attempts made by {!request} and {!call}; [backoff] (default
    50 ms) is the base delay, doubled per attempt with full jitter and
    capped at 2 s.  [recv_timeout] arms [SO_RCVTIMEO] so a wedged server
    surfaces as a transient receive failure instead of a hang.  SIGPIPE is
    set to ignore process-wide. *)

val connect_many :
  ?retries:int ->
  ?backoff:float ->
  ?recv_timeout:float ->
  string list ->
  (t, string) result
(** Like {!connect} with a failover endpoint list: the client starts on
    the first endpoint that accepts a connection and rotates through the
    list whenever the active one fails transiently or answers a typed
    [Read_only] refusal.  With every endpoint down at connect time the
    client is still returned (as long as [retries > 0]) so the first
    request can spend the retry budget waiting out a failover. *)

val request : t -> Protocol.request -> (Protocol.response, string) result
(** Send, reconnecting and resending on transient transport failures up to
    [retries] times.  [Error] means the transport failed even after
    retries; daemon-level failures (including typed [Overloaded] sheds)
    arrive as [Ok (Protocol.Error _)] and are {e not} retried here. *)

val request_once : t -> Protocol.request -> (Protocol.response, error) result
(** One attempt on the current connection, no retries; the connection is
    dropped on any transport error so the next call redials. *)

val call :
  ?retry_overloaded:bool ->
  t ->
  Protocol.request ->
  (Protocol.response, string) result
(** Like {!request} but also backs off and retries typed [Overloaded]
    sheds (default true) and typed [Read_only] refusals (rotating to the
    next endpoint — the daemon answering is a not-yet-promoted follower) —
    the failover-aware entry point used by the load generator. *)

val reconnects : t -> int
(** Number of reconnect-and-retry cycles performed so far. *)

val failovers : t -> int
(** Number of endpoint rotations performed so far (0 with a single
    endpoint). *)

val endpoint : t -> string
(** The endpoint currently targeted. *)

val close : t -> unit
