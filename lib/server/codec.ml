module C = Concretize.Concretizer

(* ------------------------------------------------------------------ *)
(* Encoding                                                            *)
(* ------------------------------------------------------------------ *)

let pairs_to_json l =
  Json.List (List.map (fun (a, b) -> Json.List [ Json.Str a; Json.Str b ]) l)

let int_pairs_to_json l =
  Json.List (List.map (fun (a, b) -> Json.List [ Json.Int a; Json.Int b ]) l)

let concrete_to_json (c : Specs.Spec.concrete) =
  let node (n : Specs.Spec.concrete_node) =
    Json.Obj
      [
        ("name", Json.Str n.Specs.Spec.name);
        ("version", Json.Str (Specs.Version.to_string n.Specs.Spec.version));
        ("variants", pairs_to_json n.Specs.Spec.variants);
        ("compiler", Json.Str n.Specs.Spec.compiler.Specs.Compiler.name);
        ( "compiler_version",
          Json.Str
            (Specs.Version.to_string n.Specs.Spec.compiler.Specs.Compiler.version) );
        ("flags", pairs_to_json n.Specs.Spec.flags);
        ("os", Json.Str n.Specs.Spec.os);
        ("target", Json.Str n.Specs.Spec.target);
        ("depends", Json.List (List.map (fun d -> Json.Str d) n.Specs.Spec.depends));
      ]
  in
  Json.Obj
    [
      ("root", Json.Str c.Specs.Spec.root);
      ("nodes", Json.List (List.map node (Specs.Spec.concrete_nodes c)));
    ]

let phases_to_json (p : C.phases) =
  Json.Obj
    [
      ("setup", Json.Float p.C.setup_time);
      ("load", Json.Float p.C.load_time);
      ("ground", Json.Float p.C.ground_time);
      ("ground_base", Json.Float p.C.ground_base_time);
      ("ground_extend", Json.Float p.C.ground_extend_time);
      ("solve", Json.Float p.C.solve_time);
    ]

let quality_to_json = function
  | `Optimal -> Json.Str "optimal"
  | `Degraded bounds -> int_pairs_to_json bounds

let budget_info_to_json (info : Asp.Budget.info) =
  Json.Obj
    [
      ("phase", Json.Str (Asp.Budget.phase_name info.Asp.Budget.phase));
      ("reason", Json.Str (Asp.Budget.reason_name info.Asp.Budget.reason));
      ("conflicts", Json.Int info.Asp.Budget.progress.Asp.Budget.conflicts);
      ("instances", Json.Int info.Asp.Budget.progress.Asp.Budget.instances);
      ("opt_steps", Json.Int info.Asp.Budget.progress.Asp.Budget.opt_steps);
    ]

let result_to_json = function
  | C.Concrete s ->
    Json.Obj
      [
        ("outcome", Json.Str "concrete");
        ("spec", concrete_to_json s.C.spec);
        ("reused", pairs_to_json s.C.reused);
        ("built", Json.List (List.map (fun b -> Json.Str b) s.C.built));
        ("costs", int_pairs_to_json s.C.costs);
        ("quality", quality_to_json s.C.quality);
        ("phases", phases_to_json s.C.phases);
        ("n_facts", Json.Int s.C.n_facts);
        ("n_possible", Json.Int s.C.n_possible);
        ( "ground_stats",
          Json.List
            [
              Json.Int s.C.ground_stats.Asp.Grounder.possible_atoms;
              Json.Int s.C.ground_stats.Asp.Grounder.ground_rules;
              Json.Int s.C.ground_stats.Asp.Grounder.fixpoint_rounds;
            ] );
        ( "sat_stats",
          Json.List
            [
              Json.Int s.C.sat_stats.Asp.Sat.conflicts;
              Json.Int s.C.sat_stats.Asp.Sat.decisions;
              Json.Int s.C.sat_stats.Asp.Sat.propagations;
              Json.Int s.C.sat_stats.Asp.Sat.restarts;
              Json.Int s.C.sat_stats.Asp.Sat.learnt_literals;
              Json.Int s.C.sat_stats.Asp.Sat.pb_propagations;
            ] );
        ("verified", Json.Bool s.C.verified);
      ]
  | C.Unsatisfiable { phases; n_facts; n_possible; reasons } ->
    Json.Obj
      [
        ("outcome", Json.Str "unsatisfiable");
        ("phases", phases_to_json phases);
        ("n_facts", Json.Int n_facts);
        ("n_possible", Json.Int n_possible);
        ("reasons", Json.List (List.map (fun r -> Json.Str r) reasons));
      ]
  | C.Interrupted { info; phases; n_facts; n_possible } ->
    Json.Obj
      [
        ("outcome", Json.Str "interrupted");
        ("info", budget_info_to_json info);
        ("phases", phases_to_json phases);
        ("n_facts", Json.Int n_facts);
        ("n_possible", Json.Int n_possible);
      ]

(* ------------------------------------------------------------------ *)
(* Decoding — total; the [let*] on options collapses any shape error    *)
(* into a single [Error].                                               *)
(* ------------------------------------------------------------------ *)

let ( let* ) o f = match o with Some v -> f v | None -> None

let str_pairs_of_json j =
  let* l = Json.to_list j in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Json.List [ Json.Str a; Json.Str b ] :: rest -> go ((a, b) :: acc) rest
    | _ -> None
  in
  go [] l

let int_pairs_of_json j =
  let* l = Json.to_list j in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Json.List [ Json.Int a; Json.Int b ] :: rest -> go ((a, b) :: acc) rest
    | _ -> None
  in
  go [] l

let str_list_of_json j =
  let* l = Json.to_list j in
  let rec go acc = function
    | [] -> Some (List.rev acc)
    | Json.Str s :: rest -> go (s :: acc) rest
    | _ -> None
  in
  go [] l

let field k conv j =
  let* v = Json.member k j in
  conv v

let concrete_of_json j =
  let node nj =
    let* name = field "name" Json.to_str nj in
    let* version = field "version" Json.to_str nj in
    let* variants = field "variants" str_pairs_of_json nj in
    let* cname = field "compiler" Json.to_str nj in
    let* cversion = field "compiler_version" Json.to_str nj in
    let* flags = field "flags" str_pairs_of_json nj in
    let* os = field "os" Json.to_str nj in
    let* target = field "target" Json.to_str nj in
    let* depends = field "depends" str_list_of_json nj in
    match (Specs.Version.of_string version, Specs.Version.of_string cversion) with
    | v, cv ->
      Some
        {
          Specs.Spec.name;
          version = v;
          variants;
          compiler = { Specs.Compiler.name = cname; version = cv };
          flags;
          os;
          target;
          depends;
        }
    | exception _ -> None
  in
  let* root = field "root" Json.to_str j in
  let* njs = field "nodes" Json.to_list j in
  let rec nodes acc = function
    | [] -> Some (List.rev acc)
    | nj :: rest ->
      let* n = node nj in
      nodes (n :: acc) rest
  in
  let* ns = nodes [] njs in
  match Specs.Spec.make_concrete ~root ns with
  | c -> Some c
  | exception Invalid_argument _ -> None

let phases_of_json j =
  let* setup_time = field "setup" Json.to_float j in
  let* load_time = field "load" Json.to_float j in
  let* ground_time = field "ground" Json.to_float j in
  let* solve_time = field "solve" Json.to_float j in
  (* absent in entries persisted before the substrate existed *)
  let opt name = Option.value ~default:0. (field name Json.to_float j) in
  let ground_base_time = opt "ground_base" in
  let ground_extend_time = opt "ground_extend" in
  Some
    {
      C.setup_time;
      load_time;
      ground_time;
      ground_base_time;
      ground_extend_time;
      solve_time;
    }

let quality_of_json = function
  | Json.Str "optimal" -> Some `Optimal
  | j ->
    let* bounds = int_pairs_of_json j in
    Some (`Degraded bounds)

(* inverses of Asp.Budget.phase_name / reason_name *)
let phase_of_name = function
  | "grounding" -> Some Asp.Budget.Ground
  | "search" -> Some Asp.Budget.Search
  | "optimization" -> Some Asp.Budget.Optimize
  | "verification" -> Some Asp.Budget.Verify
  | _ -> None

let reason_of_name = function
  | "deadline" -> Some Asp.Budget.Deadline
  | "conflict limit" -> Some Asp.Budget.Conflict_limit
  | "instance limit" -> Some Asp.Budget.Instance_limit
  | "cancelled" -> Some Asp.Budget.Cancelled
  | "injected fault" -> Some Asp.Budget.Injected
  | _ -> None

let budget_info_of_json j =
  let* phase = field "phase" Json.to_str j in
  let* phase = phase_of_name phase in
  let* reason = field "reason" Json.to_str j in
  let* reason = reason_of_name reason in
  let* conflicts = field "conflicts" Json.to_int j in
  let* instances = field "instances" Json.to_int j in
  let* opt_steps = field "opt_steps" Json.to_int j in
  Some
    {
      Asp.Budget.phase;
      reason;
      progress = { Asp.Budget.conflicts; instances; opt_steps };
    }

let success_of_json j =
  let* spec = field "spec" concrete_of_json j in
  let* reused = field "reused" str_pairs_of_json j in
  let* built = field "built" str_list_of_json j in
  let* costs = field "costs" int_pairs_of_json j in
  let* quality = field "quality" quality_of_json j in
  let* phases = field "phases" phases_of_json j in
  let* n_facts = field "n_facts" Json.to_int j in
  let* n_possible = field "n_possible" Json.to_int j in
  let* gs = field "ground_stats" Json.to_list j in
  let* ground_stats =
    match gs with
    | [ Json.Int possible_atoms; Json.Int ground_rules; Json.Int fixpoint_rounds ] ->
      Some { Asp.Grounder.possible_atoms; ground_rules; fixpoint_rounds }
    | _ -> None
  in
  let* ss = field "sat_stats" Json.to_list j in
  let* sat_stats =
    match ss with
    | [
     Json.Int conflicts;
     Json.Int decisions;
     Json.Int propagations;
     Json.Int restarts;
     Json.Int learnt_literals;
     Json.Int pb_propagations;
    ] ->
      Some
        {
          Asp.Sat.conflicts;
          decisions;
          propagations;
          restarts;
          learnt_literals;
          pb_propagations;
        }
    | _ -> None
  in
  let* verified = field "verified" Json.to_bool j in
  Some
    {
      C.spec;
      reused;
      built;
      costs;
      quality;
      phases;
      n_facts;
      n_possible;
      ground_stats;
      sat_stats;
      verified;
    }

let result_of_json j =
  let decoded =
    let* outcome = field "outcome" Json.to_str j in
    match outcome with
    | "concrete" ->
      let* s = success_of_json j in
      Some (C.Concrete s)
    | "unsatisfiable" ->
      let* phases = field "phases" phases_of_json j in
      let* n_facts = field "n_facts" Json.to_int j in
      let* n_possible = field "n_possible" Json.to_int j in
      let* reasons = field "reasons" str_list_of_json j in
      Some (C.Unsatisfiable { phases; n_facts; n_possible; reasons })
    | "interrupted" ->
      let* info = field "info" budget_info_of_json j in
      let* phases = field "phases" phases_of_json j in
      let* n_facts = field "n_facts" Json.to_int j in
      let* n_possible = field "n_possible" Json.to_int j in
      Some (C.Interrupted { info; phases; n_facts; n_possible })
    | _ -> None
  in
  match decoded with
  | Some r -> Ok r
  | None -> Error "malformed concretizer result"
