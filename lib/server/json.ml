type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.1f" f
  else Printf.sprintf "%.17g" f

let rec render buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float f ->
    (* JSON has no nan/inf *)
    if Float.is_nan f || Float.abs f = Float.infinity then
      Buffer.add_string buf "null"
    else Buffer.add_string buf (float_repr f)
  | Str s -> escape_into buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        render buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj kvs ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape_into buf k;
        Buffer.add_char buf ':';
        render buf v)
      kvs;
    Buffer.add_char buf '}'

let to_string v =
  let buf = Buffer.create 256 in
  render buf v;
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Parsing                                                             *)
(* ------------------------------------------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let i = ref 0 in
  let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt in
  let peek () = if !i < n then Some s.[!i] else None in
  let skip_ws () =
    while !i < n && (s.[!i] = ' ' || s.[!i] = '\t' || s.[!i] = '\n' || s.[!i] = '\r') do
      incr i
    done
  in
  let expect c =
    if !i < n && s.[!i] = c then incr i
    else fail "expected %C at offset %d" c !i
  in
  let literal word v =
    let l = String.length word in
    if !i + l <= n && String.sub s !i l = word then begin
      i := !i + l;
      v
    end
    else fail "bad literal at offset %d" !i
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !i >= n then fail "unterminated string";
      let c = s.[!i] in
      incr i;
      if c = '"' then Buffer.contents buf
      else if c = '\\' then begin
        if !i >= n then fail "unterminated escape";
        let e = s.[!i] in
        incr i;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'u' ->
          if !i + 4 > n then fail "bad \\u escape";
          let hex = String.sub s !i 4 in
          i := !i + 4;
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail "bad \\u escape %S" hex
          in
          (* decode into UTF-8; the protocol only round-trips what the
             printer emits (codes < 0x20), but be permissive *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | c -> fail "bad escape \\%c" c);
        go ()
      end
      else begin
        Buffer.add_char buf c;
        go ()
      end
    in
    go ()
  in
  let parse_number () =
    let start = !i in
    if peek () = Some '-' then incr i;
    let is_num_char = function
      | '0' .. '9' | '.' | 'e' | 'E' | '+' | '-' -> true
      | _ -> false
    in
    while !i < n && is_num_char s.[!i] do
      incr i
    done;
    let tok = String.sub s start (!i - start) in
    if String.contains tok '.' || String.contains tok 'e' || String.contains tok 'E'
    then
      match float_of_string_opt tok with
      | Some f -> Float f
      | None -> fail "bad number %S" tok
    else
      match int_of_string_opt tok with
      | Some x -> Int x
      | None -> (
        match float_of_string_opt tok with
        | Some f -> Float f
        | None -> fail "bad number %S" tok)
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
      incr i;
      skip_ws ();
      if peek () = Some ']' then begin
        incr i;
        List []
      end
      else begin
        let acc = ref [ parse_value () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr i;
          acc := parse_value () :: !acc;
          skip_ws ()
        done;
        expect ']';
        List (List.rev !acc)
      end
    | Some '{' ->
      incr i;
      skip_ws ();
      if peek () = Some '}' then begin
        incr i;
        Obj []
      end
      else begin
        let field () =
          skip_ws ();
          let k = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          (k, v)
        in
        let acc = ref [ field () ] in
        skip_ws ();
        while peek () = Some ',' do
          incr i;
          acc := field () :: !acc;
          skip_ws ()
        done;
        expect '}';
        Obj (List.rev !acc)
      end
    | Some _ -> parse_number ()
  in
  match
    let v = parse_value () in
    skip_ws ();
    if !i <> n then fail "trailing garbage at offset %d" !i;
    v
  with
  | v -> Ok v
  | exception Parse_error m -> Error m

(* ------------------------------------------------------------------ *)
(* Accessors                                                           *)
(* ------------------------------------------------------------------ *)

let member k = function Obj kvs -> List.assoc_opt k kvs | _ -> None
let to_int = function Int i -> Some i | _ -> None

let to_float = function
  | Float f -> Some f
  | Int i -> Some (float_of_int i)
  | _ -> None

let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
