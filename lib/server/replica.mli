(** Replicated install state: journal shipping to hot-standby daemons.

    The primary's write-ahead {!Journal} is the replication log.  After an
    install's commit marker is fsynced locally, the {e hub} ships the
    exact journal lines — the self-digested (intent, commit) pair — as one
    [Repl_record] frame to every subscribed follower; followers fsync the
    bytes into their own journal and apply the install to their own
    database {e before} acking, so a follower ack means the record
    survives a follower kill -9.  The [--repl-ack] knob picks the
    durability point of the client-visible install ack:

    - [none]: replication off (subscriptions are refused);
    - [async]: ack after the local commit fsync; followers trail;
    - [sync]: ack only after some follower acked the record too — a
      kill -9 of the primary at any instant loses nothing a client saw
      acknowledged, because every acked install is durable on two nodes.

    Sequence numbers survive journal compaction (the journal's [base_seq])
    — a follower resuming from below the primary's base receives a full
    database snapshot frame and continues from the primary's position.

    Promotion bumps the journal {e epoch} (monotonic, in the journal
    header / [E] records).  A stale primary rejoining as a follower
    announces its old epoch and is fenced with [Repl_reset]: it rotates
    its journal to [.stale], wipes its database and resubscribes from
    scratch, so unreplicated entries from the dead epoch cannot corrupt
    the new one.

    Fault points: {!Asp.Fault.Repl_drop} (hub silently drops a record —
    the follower detects the gap and resubscribes), {!Asp.Fault.Repl_reorder}
    (hub ships a record after its successor — rejected as a gap),
    {!Asp.Fault.Follower_crash} (the apply loop raises — the follower
    reconnects and resumes from its last fsynced entry). *)

(** {1 Ack modes} *)

type ack_mode = Ack_none | Ack_async | Ack_sync

val ack_mode_name : ack_mode -> string
val ack_mode_of_string : string -> ack_mode option

(** {1 The hub (primary side)} *)

type hub

val create_hub : ?sync_timeout:float -> mode:ack_mode -> Journal.t -> hub
(** A hub over the daemon's journal.  [sync_timeout] (default 5 s) bounds
    the per-install wait for a follower ack under [Ack_sync]; on expiry
    the install is acked locally and counted in [sync_timeouts]. *)

val hub_mode : hub -> ack_mode

val set_snapshot : hub -> (unit -> string) -> unit
(** Install the database-snapshot renderer ({!Pkg.Database.render_string}
    over the current state) used for followers resuming from below the
    journal's base sequence. *)

val adopt : hub -> Unix.file_descr -> epoch:int -> from_seq:int -> unit
(** Take ownership of a client socket whose [repl_subscribe] a worker just
    decoded.  The fd leaves the request/response protocol for good: a
    dedicated pump domain streams records to it and reads acks off it, so
    a worker blocked in a sync-mode install can never deadlock against its
    own event loop.  Stale epochs are fenced ([Repl_reset] + close); the
    catch-up backlog (snapshot frame and/or journal tail) is enqueued
    atomically with the subscription, so the live stream cannot
    interleave out of order. *)

val ship : hub -> seq:int -> intent:string -> commit:string -> unit
(** Ship one committed install (the primary's exact journal lines) to
    every subscriber; under [Ack_sync], block until a follower acks [seq]
    (or the timeout/degraded paths count the miss).  Called by
    {!State.record_install} after the local commit fsync, still under the
    install mutex — replication order is install order. *)

val followers : hub -> int
val hub_stats : hub -> (string * Json.t) list

val shutdown_hub : hub -> unit
(** Stop every pump domain and close the subscriber sockets. *)

(** {1 The follower loop} *)

type follower_cbs = {
  fc_position : unit -> int * int;
      (** (epoch, next expected seq), read from durable local state —
          where to resume the subscription *)
  fc_apply :
    epoch:int ->
    seq:int ->
    intent:string ->
    commit:string ->
    spec:Specs.Spec.concrete ->
    unit;
      (** make the record durable locally (journal fsync), then apply the
          install; the ack is sent only after this returns *)
  fc_snapshot : epoch:int -> next_seq:int -> db:string -> unit;
      (** adopt a full database snapshot and the primary's position *)
  fc_reset : epoch:int -> unit;
      (** fenced: rotate local journal to [.stale], wipe the database,
          adopt [epoch]; the loop then resubscribes from scratch *)
}

type follower

val start_follower : primary:string -> follower_cbs -> follower
(** Spawn the follower domain: connect to the primary's socket, subscribe
    from [fc_position ()], stream-apply-ack until stopped.  Transport
    errors, sequence gaps, corrupt frames and injected crashes all
    reconnect with backoff and resume from the durable position. *)

val stop_follower : follower -> unit
(** Stop and join the follower domain (promotion, shutdown). *)

val follower_stats : follower -> (string * Json.t) list
