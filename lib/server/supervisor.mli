(** Worker supervision: the daemon's top-level loop.

    The supervisor owns the listening socket and shards accepted
    connections round-robin across {!Worker} domains over the shared
    {!State} (one solve cache, one substrate, one scheduler, one installed
    database).  It is also the failure detector:

    - a worker whose domain died from an escaped exception is observed
      via its status flag; the supervisor closes the connections the dead
      domain leaked (clients see EOF and reconnect onto a healthy worker)
      and starts a replacement in the same slot — other workers' clients
      never notice;
    - a worker whose heartbeat stalls past [wedge_timeout] (wedged in a
      blocking call — OCaml domains cannot be killed) is quarantined:
      replaced immediately, told to tear itself down whenever it wakes,
      and joined at shutdown.

    Drain ([State.draining], set by a [shutdown] request or SIGTERM in
    [spack_serve]): stop accepting, let every worker finish or flush its
    in-flight work bounded by [drain_grace], then flip [State.stopping]
    and join everything.  {!run} returns with the socket file removed;
    final persistence ([State.persist]) is the caller's job. *)

type config = {
  socket_path : string;
  workers : int;  (** connection-handling worker domains (at least 1) *)
  drain_grace : float;  (** seconds to let in-flight work finish on drain *)
  wedge_timeout : float;  (** heartbeat stall before quarantine; 0 = off *)
}

val run : ?on_ready:(unit -> unit) -> config -> State.t -> unit
(** Bind, listen, supervise until [State.stopping].  [on_ready] fires once
    the socket accepts connections (tests synchronize on it). *)
