type config = {
  socket_path : string;
  workers : int;  (** connection-handling worker domains (at least 1) *)
  drain_grace : float;  (** seconds to let in-flight work finish on drain *)
  wedge_timeout : float;  (** heartbeat stall before quarantine; 0 = off *)
}

type slot = {
  mutable worker : Worker.t;
  mutable zombies : Worker.t list;
      (* quarantined predecessors of this slot, joined at shutdown *)
}

let spawn_worker st cfg ~id =
  Worker.start st ~id ~n_workers:cfg.workers ~drain_grace:cfg.drain_grace

(* Replace a crashed or wedged worker in its slot.  A crashed worker's
   domain is already dead: close the connections it leaked and join it.  A
   wedged worker cannot be killed: quarantine it (it tears down whenever it
   wakes) and keep it as a zombie to join at shutdown. *)
let monitor st cfg slots =
  let now = Unix.gettimeofday () in
  Array.iteri
    (fun id slot ->
      let w = slot.worker in
      match Worker.status w with
      | Worker.Crashed _ ->
        Worker.close_remaining w;
        Worker.close_pipes w;
        Worker.join w;
        Atomic.incr st.State.n_restarts;
        slot.worker <- spawn_worker st cfg ~id
      | Worker.Running
        when cfg.wedge_timeout > 0.
             && Worker.heartbeat_age w now > cfg.wedge_timeout ->
        Worker.quarantine w;
        Atomic.incr st.State.n_wedged;
        Atomic.incr st.State.n_restarts;
        slot.zombies <- w :: slot.zombies;
        slot.worker <- spawn_worker st cfg ~id
      | Worker.Running | Worker.Stopped -> ())
    slots

let run ?on_ready cfg st =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then (
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 128;
  Unix.set_nonblock listen_fd;
  let n_workers = max 1 cfg.workers in
  let cfg = { cfg with workers = n_workers } in
  let slots =
    Array.init n_workers (fun id ->
        { worker = spawn_worker st cfg ~id; zombies = [] })
  in
  let rr = ref 0 in
  let accepting = ref true in
  let accept_all () =
    let rec go () =
      match Unix.accept listen_fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Atomic.incr st.State.n_connections;
        (* round-robin over healthy workers; a slot being restarted this
           very iteration is Running again by construction *)
        let rec pick tries =
          let slot = slots.(!rr mod n_workers) in
          incr rr;
          match Worker.status slot.worker with
          | Worker.Running -> Some slot.worker
          | _ -> if tries <= 1 then None else pick (tries - 1)
        in
        (match pick n_workers with
        | Some w -> Worker.assign w fd
        | None -> ( try Unix.close fd with Unix.Unix_error _ -> ()));
        go ()
    in
    go ()
  in
  Option.iter (fun f -> f ()) on_ready;
  let drain_deadline = ref None in
  while not (Atomic.get st.State.stopping) do
    monitor st cfg slots;
    if Atomic.get st.State.draining then begin
      (* stop accepting: close the listening socket once, then wait for the
         workers to go quiescent (bounded by the grace period) *)
      if !accepting then begin
        accepting := false;
        (try Unix.close listen_fd with Unix.Unix_error _ -> ());
        (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ())
      end;
      (match !drain_deadline with
      | None -> drain_deadline := Some (Unix.gettimeofday () +. cfg.drain_grace)
      | Some _ -> ());
      let all_drained =
        Array.for_all
          (fun slot ->
            match Worker.status slot.worker with
            | Worker.Running -> Worker.is_drained slot.worker
            | Worker.Crashed _ | Worker.Stopped -> true)
          slots
      in
      let grace_over =
        match !drain_deadline with
        | Some d -> Unix.gettimeofday () > d
        | None -> false
      in
      if all_drained || grace_over then begin
        Atomic.set st.State.stopping true;
        Array.iter (fun slot -> Worker.wake slot.worker) slots
      end
      else Unix.sleepf 0.02
    end
    else begin
      match Unix.select [ listen_fd ] [] [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | r, _, _ -> if r <> [] then accept_all ()
    end
  done;
  Array.iter (fun slot -> Worker.wake slot.worker) slots;
  Array.iter
    (fun slot ->
      (match Worker.status slot.worker with
      | Worker.Crashed _ -> Worker.close_remaining slot.worker
      | _ -> ());
      Worker.join slot.worker;
      (* a connection assigned in the instant after the worker's final
         inbox sweep would otherwise stay open forever, leaving its client
         blocked on a read; the domain is dead, so closing is safe *)
      Worker.close_remaining slot.worker;
      Worker.close_pipes slot.worker;
      List.iter
        (fun z ->
          Worker.join z;
          Worker.close_remaining z;
          Worker.close_pipes z)
        slot.zombies)
    slots;
  if !accepting then begin
    (try Unix.close listen_fd with Unix.Unix_error _ -> ());
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ()
  end
