(** One connection-handling worker domain.

    Each worker owns a private set of client connections (handed over by
    the {!Supervisor} through a mutex-protected queue plus a self-pipe
    wakeup) and runs the select(2) event loop for them: framing, request
    parsing, per-client token-bucket admission, enqueue-time deadlines,
    solve admission through the shared {!Scheduler}, reply writing and
    install recording through the shared {!State}.

    Workers are crash domains: an exception escaping request handling
    kills only this worker's domain.  The supervisor observes the
    {!status}, closes the file descriptors the dead domain leaked (the
    registry is shared) and starts a replacement — clients of other
    workers never notice.  A worker that stops heartbeating (wedged in a
    blocking call) is {!quarantine}d instead: it is replaced immediately
    and told to tear itself down whenever it wakes up. *)

type t

type status = Running | Crashed of string | Stopped

val start : State.t -> id:int -> n_workers:int -> drain_grace:float -> t
(** Spawn the worker domain and return its handle. *)

val assign : t -> Unix.file_descr -> unit
(** Hand an accepted connection to this worker (supervisor side). *)

val wake : t -> unit
(** Nudge the event loop (used when lifecycle flags change). *)

val status : t -> status

val heartbeat_age : t -> float -> float
(** Seconds since the loop last ticked, given the current time. *)

val quarantine : t -> unit
(** Mark the worker for teardown: its loop exits at the next iteration it
    actually executes.  Used for wedged workers that cannot be killed. *)

val is_drained : t -> bool
(** Under drain: no pending solves and every reply flushed. *)

val close_remaining : t -> unit
(** Close every connection fd still registered to this worker — only safe
    once the worker domain is dead (crashed). *)

val close_pipes : t -> unit
val join : t -> unit
