(** Write-ahead install journal: crash safety for the daemon's installed
    database.

    An install appends an {e intent} (the full concrete DAG, one
    self-digested line, fsynced) before touching any other state, and a
    {e commit} marker after the new database file was atomically
    published.  A daemon killed at any instant — even mid-append — leaves
    a journal whose readable prefix is intact: {!replay} parses entries
    until the first line that fails its digest, truncates the torn tail in
    place, and hands back every intent so startup recovery can re-apply
    them ([Pkg.Database.add_record] is idempotent on the DAG hash, so
    replaying committed entries is harmless and replaying uncommitted ones
    completes the interrupted install).

    Files from a stale or foreign format version are rotated to
    [<path>.stale], never misparsed.

    All appends are serialized under an internal mutex; the fault point
    {!Asp.Fault.Journal_tear} makes the next append write only half its
    entry (a simulated crash mid-write). *)

type t

type entry = {
  seq : int;
  spec : Specs.Spec.concrete;
  committed : bool;  (** the commit marker for this intent was found *)
}

type replay = {
  entries : entry list;  (** intents in append order *)
  truncated : bool;  (** a torn or corrupt tail was dropped (and truncated) *)
  rotated : bool;  (** a stale-format file was moved to [<path>.stale] *)
}

val open_ : string -> t
(** Open (or create lazily on first append) the journal at [path],
    resuming the sequence counter after any existing entries. *)

val replay : string -> replay
(** Read the journal's valid prefix.  Missing file = no entries.  Also
    repairs the file: torn tails are truncated, stale formats rotated. *)

val append_intent : t -> Specs.Spec.concrete -> int
(** Append and fsync an intent; returns its sequence number. *)

val append_commit : t -> int -> unit
(** Append the commit marker for a previously appended intent. *)

val reset : t -> unit
(** Truncate to an empty journal (every entry is known durable in the
    database file) — startup recovery calls this after persisting. *)

val close : t -> unit
