(** Write-ahead install journal: crash safety for the daemon's installed
    database, and the unit of replication to hot-standby followers.

    An install appends an {e intent} (the full concrete DAG, one
    self-digested line, fsynced) before touching any other state, and a
    {e commit} marker after the new database file was atomically
    published.  A daemon killed at any instant — even mid-append — leaves
    a journal whose readable prefix is intact: {!replay} parses entries
    until the first line that fails its digest, truncates the torn tail in
    place, and hands back every intent so startup recovery can re-apply
    them ([Pkg.Database.add_record] is idempotent on the DAG hash, so
    replaying committed entries is harmless and replaying uncommitted ones
    completes the interrupted install).

    The v2 header carries a replication {e epoch} (monotonic, bumped when
    a follower is promoted — see {!Replica}) and the {e base sequence}:
    {!checkpoint} truncates the journal once the database snapshot holds
    every entry, and sequence numbers continue from the base instead of
    restarting, so follower resume positions survive compaction.  A later
    [E] record overrides the header epoch ({!bump_epoch} is append-only).
    v1 files are still read (as epoch 1); files from a foreign format are
    rotated to [<path>.stale], never misparsed.

    All appends are serialized under an internal mutex and fsynced; an
    fsync failure raises (the install must fail rather than be
    acknowledged on state the disk may not hold).  The fault point
    {!Asp.Fault.Journal_tear} makes the next append write only half its
    entry (a simulated crash mid-write). *)

type t

type entry = {
  seq : int;
  spec : Specs.Spec.concrete;
  committed : bool;  (** the commit marker for this intent was found *)
}

type replay = {
  entries : entry list;  (** intents in append order *)
  epoch : int;  (** effective epoch (header, overridden by [E] records) *)
  truncated : bool;  (** a torn or corrupt tail was dropped (and truncated) *)
  rotated : bool;  (** a stale-format file was moved to [<path>.stale] *)
}

val open_ : ?epoch:int -> string -> t
(** Open (or create lazily on first append) the journal at [path],
    resuming the sequence counter and epoch after any existing entries.
    [epoch] (default 1) seeds a journal created from scratch only. *)

val replay : string -> replay
(** Read the journal's valid prefix.  Missing file = no entries.  Also
    repairs the file: torn tails are truncated, stale formats rotated. *)

val epoch : t -> int
(** The current replication epoch. *)

val next_seq : t -> int
(** The sequence number the next intent will take; equivalently, one past
    the last sequence this journal has seen (a follower resumes
    replication from here). *)

val base_seq : t -> int
(** First sequence number the on-disk suffix can contain (entries below it
    were compacted into the database snapshot). *)

val size_bytes : t -> int
(** Current on-disk size ([0] if the file does not exist yet). *)

val append_intent : t -> Specs.Spec.concrete -> int
(** Append and fsync an intent; returns its sequence number. *)

val append_commit : t -> int -> unit
(** Append and fsync the commit marker for a previously appended intent. *)

val append_raw : t -> seq:int -> string list -> unit
(** Append pre-rendered journal lines verbatim (one fsync for the group)
    and advance the sequence counter past [seq] — the follower side of
    replication, mirroring the primary's exact bytes. The caller must have
    verified the lines with {!parse}. *)

val bump_epoch : t -> int -> unit
(** Append an epoch record raising the effective epoch to [e] (no-op when
    [e] is not greater) — follower promotion. *)

(** {1 Line codec} — shared with the replication layer *)

val render_intent : int -> Specs.Spec.concrete -> string
(** The exact line {!append_intent} would write for this (seq, spec). *)

val render_commit : int -> string

val parse :
  string ->
  [ `Intent of int * Specs.Spec.concrete | `Commit of int | `Epoch of int ]
  option
(** Parse and digest-verify one journal line ([None] = corrupt). *)

(** {1 Replication catch-up} *)

val tail_from : t -> int -> (int * string * string) list
(** [(seq, intent_line, commit_line)] for every {e committed} entry with
    [seq >= from], in sequence order — what a resubscribing follower
    missed.  Entries below {!base_seq} are gone (compacted); the caller
    must ship a database snapshot instead. *)

(** {1 Truncation} *)

val checkpoint : t -> unit
(** Atomically truncate to an empty journal whose base is the current
    {!next_seq} (every entry is known durable in the database snapshot) —
    clean shutdown, post-recovery persistence and the [--journal-max-bytes]
    compaction threshold all land here.  Epoch is preserved. *)

val set_position : t -> epoch:int -> base_seq:int -> unit
(** Truncate and restart at an explicit epoch/base — a follower installing
    a database snapshot adopts the primary's position. *)

val rotate_stale : t -> unit
(** Move the journal file aside to [<path>.stale] (fencing: a stale
    primary rejoining as follower must not replay its unacknowledged
    entries into the new epoch). *)

val close : t -> unit
