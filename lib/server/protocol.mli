(** The daemon's wire protocol: newline-delimited JSON over a Unix domain
    socket.

    Each request is one JSON object on one line ([{"op": ...}]); each
    response is one JSON object on one line, with ["ok": true/false].
    Requests are answered in completion order, so every response carries
    back the request's ["id"] (defaulting to 0) for correlation.

    Both ends of the codec live here so the daemon and the client cannot
    drift apart; decoding is total on both sides (network bytes are
    untrusted). *)

type request =
  | Solve of { spec : string; timeout : float option }
      (** abstract spec text, e.g. ["hdf5 +mpi ^mpich"]; [timeout] is the
          client's own end-to-end deadline in seconds — the daemon enforces
          the tighter of this and its [--timeout], measured from enqueue *)
  | Solve_many of { specs : string list; timeout : float option }
  | Install of { spec : string; timeout : float option }
      (** concretize, then record the DAG as installed *)
  | Stats
  | Shutdown
  | Promote
      (** admin verb: a follower stops following, bumps the epoch and
          starts accepting installs; idempotent on a primary *)
  | Repl_subscribe of { epoch : int; from_seq : int }
      (** a follower attaches to the primary's replication hub, resuming
          from its last durable position; the connection then carries
          server-pushed {!Repl_record}/{!Repl_snapshot} frames *)
  | Repl_ack of { seq : int }
      (** follower → primary on the subscription connection: every record
          up to [seq] is fsynced on the follower (no response) *)

val solve : ?timeout:float -> string -> request
val solve_many : ?timeout:float -> string list -> request
val install : ?timeout:float -> string -> request

val request_to_json : ?id:int -> request -> Json.t
val request_of_json : Json.t -> (int * request, string) result
(** Returns the request id (0 when absent) alongside the decoded request. *)

type cache_status = Hit | Miss

val cache_status_name : cache_status -> string

type error_kind =
  | Overloaded  (** shed by admission control; retry later *)
  | Bad_request  (** unparsable line, unknown op, malformed spec *)
  | Unknown_package of string
  | Read_only
      (** installs refused: this daemon is a replication follower — retry
          against the primary, or after promotion *)
  | Internal  (** solver raised; message carries the exception text *)

type response =
  | Result of { cache : cache_status; result : Concretize.Concretizer.result }
  | Results of (cache_status * Concretize.Concretizer.result) list
  | Installed of { root : string; hashes : (string * string) list; total : int }
      (** [hashes]: (package, DAG hash) per newly recorded node; [total]:
          database size after the install *)
  | Stats_reply of Json.t  (** free-form server counters, see {!Daemon} *)
  | Bye
  | Promoted of { epoch : int }  (** reply to {!Promote}: the new epoch *)
  | Repl_reset of { epoch : int }
      (** the subscriber's epoch is stale: rotate local state aside and
          resubscribe from sequence 0 under the current epoch *)
  | Repl_snapshot of { epoch : int; next_seq : int; db : string }
      (** full database snapshot ({!Pkg.Database} text format): entries
          before [next_seq] were compacted out of the primary's journal *)
  | Repl_record of { epoch : int; seq : int; intent : string; commit : string }
      (** one replicated install: the primary's exact journal lines,
          digest-verified by the follower before appending *)
  | Error of { kind : error_kind; message : string }

val response_to_json : ?id:int -> response -> Json.t
val response_of_json : Json.t -> (int * response, string) result
