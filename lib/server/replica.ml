(* Journal shipping: the primary streams its write-ahead journal to
   hot-standby followers over the same NDJSON protocol clients speak.

   Primary side (the hub): every committed install ships its exact journal
   lines — the (intent, commit) pair, self-digested — as one [Repl_record]
   frame to every subscriber.  Each subscriber owns a dedicated domain
   doing blocking-ish IO on the adopted socket: the worker that received
   the [repl_subscribe] request hands the fd over and never sees it again.
   That isolation is what makes [--repl-ack=sync] deadlock-free: an
   install blocked waiting for a follower ack inside a worker's event loop
   must not depend on that same event loop to read the ack.

   Follower side: a single domain connects to the primary, subscribes from
   its own durable position (journal epoch, next expected sequence) and
   applies the stream — fsync the primary's bytes into its own journal,
   then swap the install into its database — before acking.  An ack
   therefore means "this record survives my kill -9".  Gaps, reorders,
   corrupt frames and apply crashes all resolve the same way: drop the
   connection and resubscribe from the last durable position.

   Epoch fencing: the journal header carries a monotonic epoch, bumped on
   promotion.  A subscriber announcing an older epoch (a stale primary
   rejoining after failover) is told [Repl_reset]: it rotates its journal
   to [.stale], wipes its database and resubscribes from scratch — its
   unacknowledged entries can never leak into the new epoch. *)

(* ------------------------------------------------------------------ *)
(* Ack modes                                                           *)
(* ------------------------------------------------------------------ *)

type ack_mode = Ack_none | Ack_async | Ack_sync

let ack_mode_name = function
  | Ack_none -> "none"
  | Ack_async -> "async"
  | Ack_sync -> "sync"

let ack_mode_of_string = function
  | "none" -> Some Ack_none
  | "async" -> Some Ack_async
  | "sync" -> Some Ack_sync
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Low-level IO helpers (blocking fds)                                 *)
(* ------------------------------------------------------------------ *)

let write_all fd s =
  let len = String.length s in
  let rec go off =
    if off < len then begin
      match Unix.write_substring fd s off (len - off) with
      | n -> go (off + n)
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> go off
    end
  in
  go 0

let close_quiet fd = try Unix.close fd with Unix.Unix_error _ -> ()

(* A line-buffered reader over a raw fd.  [`Timeout] surfaces both
   SO_RCVTIMEO expiry and select timeouts so callers can poll their stop
   flag between reads. *)
type line_reader = { lr_fd : Unix.file_descr; mutable lr_buf : string }

let line_reader fd = { lr_fd = fd; lr_buf = "" }

let rec reader_next lr =
  match String.index_opt lr.lr_buf '\n' with
  | Some nl ->
    let line = String.sub lr.lr_buf 0 nl in
    lr.lr_buf <-
      String.sub lr.lr_buf (nl + 1) (String.length lr.lr_buf - nl - 1);
    let line =
      if String.length line > 0 && line.[String.length line - 1] = '\r' then
        String.sub line 0 (String.length line - 1)
      else line
    in
    `Line line
  | None -> (
    let buf = Bytes.create 8192 in
    match Unix.read lr.lr_fd buf 0 8192 with
    | 0 -> `Eof
    | n ->
      lr.lr_buf <- lr.lr_buf ^ Bytes.sub_string buf 0 n;
      reader_next lr
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
      `Timeout
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> reader_next lr
    | exception Unix.Unix_error _ -> `Eof)

(* ------------------------------------------------------------------ *)
(* The hub (primary side)                                              *)
(* ------------------------------------------------------------------ *)

type subscriber = {
  sid : int;
  fd : Unix.file_descr;
  outbox : string Queue.t;  (* rendered response lines, hub-mutex guarded *)
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  mutable acked : int;  (* highest sequence this follower has fsynced *)
  mutable sent : int;  (* highest sequence enqueued to this follower *)
  mutable live : bool;
  mutable domain : unit Domain.t option;
}

type hub = {
  mode : ack_mode;
  sync_timeout : float;
  journal : Journal.t;
  mutable snapshot_fn : unit -> string;
      (* rendered database snapshot; installed by the daemon once the
         shared state exists *)
  m : Mutex.t;
  mutable subs : subscriber list;
  mutable next_sid : int;
  mutable held : string option;  (* Repl_reorder fault: a delayed record *)
  stopping : bool Atomic.t;
  (* counters (stats) *)
  c_shipped : int Atomic.t;  (* record frames enqueued, summed over followers *)
  c_acked : int Atomic.t;  (* ack frames received *)
  c_snapshots : int Atomic.t;  (* snapshot frames shipped *)
  c_resets : int Atomic.t;  (* stale subscribers fenced *)
  c_dropped : int Atomic.t;  (* fault-injected record drops *)
  c_sync_degraded : int Atomic.t;  (* sync installs acked with no follower *)
  c_sync_timeouts : int Atomic.t;  (* sync installs acked after ack timeout *)
}

let create_hub ?(sync_timeout = 5.0) ~mode journal =
  {
    mode;
    sync_timeout;
    journal;
    snapshot_fn = (fun () -> "");
    m = Mutex.create ();
    subs = [];
    next_sid = 1;
    held = None;
    stopping = Atomic.make false;
    c_shipped = Atomic.make 0;
    c_acked = Atomic.make 0;
    c_snapshots = Atomic.make 0;
    c_resets = Atomic.make 0;
    c_dropped = Atomic.make 0;
    c_sync_degraded = Atomic.make 0;
    c_sync_timeouts = Atomic.make 0;
  }

let hub_mode hub = hub.mode
let set_snapshot hub f = hub.snapshot_fn <- f

let with_hub hub f =
  Mutex.lock hub.m;
  Fun.protect ~finally:(fun () -> Mutex.unlock hub.m) f

let response_line resp =
  Json.to_string (Protocol.response_to_json ~id:0 resp)

let record_line hub ~seq ~intent ~commit =
  response_line
    (Protocol.Repl_record
       { epoch = Journal.epoch hub.journal; seq; intent; commit })

let sub_wake sub =
  try ignore (Unix.write_substring sub.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

(* Call with the hub mutex held. *)
let enqueue_locked hub sub ~seq line =
  Queue.push line sub.outbox;
  if seq > sub.sent then sub.sent <- seq;
  Atomic.incr hub.c_shipped

let drop_sub_locked hub sub =
  if sub.live then begin
    sub.live <- false;
    hub.subs <- List.filter (fun s -> s != sub) hub.subs
  end

(* ---- per-subscriber pump domain ----------------------------------- *)

(* One domain per follower: drain the outbox to the socket, read acks off
   it.  Dies (and deregisters) on any socket error; the follower's retry
   loop resubscribes onto a fresh connection. *)
let pump hub sub =
  let lr = line_reader sub.fd in
  let handle_line line =
    match Json.of_string line with
    | Error _ -> ()
    | Ok j -> (
      match Protocol.request_of_json j with
      | Ok (_, Protocol.Repl_ack { seq }) ->
        Atomic.incr hub.c_acked;
        with_hub hub (fun () -> if seq > sub.acked then sub.acked <- seq)
      | _ -> ())
  in
  let rec loop () =
    if Atomic.get hub.stopping || not (with_hub hub (fun () -> sub.live))
    then ()
    else begin
      let batch =
        with_hub hub (fun () ->
            let acc = ref [] in
            while not (Queue.is_empty sub.outbox) do
              acc := Queue.pop sub.outbox :: !acc
            done;
            List.rev !acc)
      in
      match
        if batch <> [] then
          write_all sub.fd
            (String.concat "" (List.map (fun l -> l ^ "\n") batch))
      with
      | exception Unix.Unix_error _ -> ()
      | () -> (
        match Unix.select [ sub.fd; sub.wake_r ] [] [] 0.2 with
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> loop ()
        | exception Unix.Unix_error _ -> ()
        | r, _, _ -> (
          if List.memq sub.wake_r r then begin
            let b = Bytes.create 64 in
            try ignore (Unix.read sub.wake_r b 0 64)
            with Unix.Unix_error _ -> ()
          end;
          if not (List.memq sub.fd r) then loop ()
          else
            let rec drain_lines () =
              match reader_next lr with
              | `Line l ->
                handle_line l;
                drain_lines ()
              | `Timeout -> loop ()
              | `Eof -> ()
            in
            drain_lines ()))
    end
  in
  loop ();
  with_hub hub (fun () -> drop_sub_locked hub sub);
  close_quiet sub.fd;
  close_quiet sub.wake_r;
  close_quiet sub.wake_w

(* ---- subscription ------------------------------------------------- *)

(* Adopt a client socket as a replication subscriber.  The caller (a
   worker) has flushed and detached it; whatever happens, the fd now
   belongs to the hub.  Epoch fencing and catch-up happen here, under the
   hub mutex, so the backlog and the live stream cannot interleave out of
   order: [ship] also enqueues under the mutex. *)
let adopt hub fd ~epoch ~from_seq =
  if hub.mode = Ack_none then begin
    write_all fd
      (response_line
         (Protocol.Error
            {
              kind = Protocol.Bad_request;
              message = "replication disabled (--repl-ack=none)";
            })
      ^ "\n");
    close_quiet fd
  end
  else begin
    let j_epoch = Journal.epoch hub.journal in
    if epoch > j_epoch then begin
      (* the subscriber has seen a newer epoch than we have: WE are the
         stale side; refuse rather than feed it old-epoch records *)
      write_all fd
        (response_line
           (Protocol.Error
              {
                kind = Protocol.Bad_request;
                message =
                  Printf.sprintf
                    "subscriber epoch %d ahead of primary epoch %d" epoch
                    j_epoch;
              })
        ^ "\n");
      close_quiet fd
    end
    else if epoch > 0 && epoch < j_epoch then begin
      (* fencing: a stale-epoch subscriber must wipe before rejoining *)
      Atomic.incr hub.c_resets;
      write_all fd
        (response_line (Protocol.Repl_reset { epoch = j_epoch }) ^ "\n");
      close_quiet fd
    end
    else begin
      let wake_r, wake_w = Unix.pipe () in
      Unix.set_nonblock wake_r;
      Unix.set_nonblock wake_w;
      (* acks must not block the pump forever: reads time out and loop *)
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2
       with Unix.Unix_error _ -> ());
      let sub =
        with_hub hub (fun () ->
            let sub =
              {
                sid = hub.next_sid;
                fd;
                outbox = Queue.create ();
                wake_r;
                wake_w;
                acked = from_seq - 1;
                sent = from_seq - 1;
                live = true;
                domain = None;
              }
            in
            hub.next_sid <- hub.next_sid + 1;
            (* catch-up backlog, oldest first.  Reading [next_seq] before
               rendering the snapshot makes the pair safe against a
               concurrent install: the snapshot may contain more than
               [next_seq] promises (the follower then re-receives a record
               it already holds — idempotent), never less. *)
            (if from_seq < Journal.base_seq hub.journal then begin
               let next_seq = Journal.next_seq hub.journal in
               let db = hub.snapshot_fn () in
               Atomic.incr hub.c_snapshots;
               enqueue_locked hub sub ~seq:(next_seq - 1)
                 (response_line
                    (Protocol.Repl_snapshot { epoch = j_epoch; next_seq; db }))
             end);
            List.iter
              (fun (seq, intent, commit) ->
                enqueue_locked hub sub ~seq
                  (record_line hub ~seq ~intent ~commit))
              (Journal.tail_from hub.journal (max from_seq (Journal.base_seq hub.journal)));
            hub.subs <- sub :: hub.subs;
            sub)
      in
      sub.domain <- Some (Domain.spawn (fun () -> pump hub sub))
    end
  end

(* ---- shipping (called from State.record_install, post-commit) ------ *)

let followers hub = with_hub hub (fun () -> List.length hub.subs)

(* Under [Ack_sync], block until some follower acked [seq] — polling under
   the hub mutex rather than a condition variable keeps the wait bounded
   even if every follower dies silently.  Degrading to a local-only ack
   (no follower connected, or ack timeout) is counted, never silent: the
   drills assert the counter stayed at zero. *)
let sync_wait hub seq =
  let deadline = Unix.gettimeofday () +. hub.sync_timeout in
  let rec wait () =
    let verdict =
      with_hub hub (fun () ->
          if hub.subs = [] then `Degraded
          else if List.exists (fun s -> s.live && s.acked >= seq) hub.subs
          then `Acked
          else `Wait)
    in
    match verdict with
    | `Acked -> ()
    | `Degraded -> Atomic.incr hub.c_sync_degraded
    | `Wait ->
      if Unix.gettimeofday () > deadline then Atomic.incr hub.c_sync_timeouts
      else begin
        Unix.sleepf 0.001;
        wait ()
      end
  in
  wait ()

let ship hub ~seq ~intent ~commit =
  if hub.mode <> Ack_none then begin
    let line = record_line hub ~seq ~intent ~commit in
    let fire_drop = Asp.Fault.service_fires Asp.Fault.Repl_drop in
    let fire_reorder =
      (not fire_drop) && Asp.Fault.service_fires Asp.Fault.Repl_reorder
    in
    let touched =
      with_hub hub (fun () ->
          let batch =
            if fire_drop then begin
              (* the record vanishes in flight; anything held ships *)
              Atomic.incr hub.c_dropped;
              match hub.held with
              | Some h ->
                hub.held <- None;
                [ h ]
              | None -> []
            end
            else if fire_reorder && hub.held = None then begin
              (* hold this record back; it ships after its successor *)
              hub.held <- Some line;
              []
            end
            else begin
              match hub.held with
              | Some h ->
                hub.held <- None;
                [ line; h ]
              | None -> [ line ]
            end
          in
          List.iter
            (fun sub ->
              if sub.live then
                List.iter (fun l -> enqueue_locked hub sub ~seq l) batch)
            hub.subs;
          if batch <> [] then hub.subs else [])
    in
    List.iter sub_wake touched;
    if hub.mode = Ack_sync then sync_wait hub seq
  end

let hub_stats hub =
  let followers, lag =
    with_hub hub (fun () ->
        let n = List.length hub.subs in
        let lag =
          List.fold_left
            (fun acc s -> max acc (s.sent - s.acked))
            0 hub.subs
        in
        (n, lag))
  in
  [
    ("ack_mode", Json.Str (ack_mode_name hub.mode));
    ("followers", Json.Int followers);
    ("lag", Json.Int lag);
    ("shipped", Json.Int (Atomic.get hub.c_shipped));
    ("acked", Json.Int (Atomic.get hub.c_acked));
    ("snapshots_sent", Json.Int (Atomic.get hub.c_snapshots));
    ("resets_sent", Json.Int (Atomic.get hub.c_resets));
    ("dropped", Json.Int (Atomic.get hub.c_dropped));
    ("sync_degraded", Json.Int (Atomic.get hub.c_sync_degraded));
    ("sync_timeouts", Json.Int (Atomic.get hub.c_sync_timeouts));
  ]

let shutdown_hub hub =
  Atomic.set hub.stopping true;
  let subs = with_hub hub (fun () -> hub.subs) in
  List.iter sub_wake subs;
  List.iter
    (fun sub -> match sub.domain with Some d -> Domain.join d | None -> ())
    subs

(* ------------------------------------------------------------------ *)
(* The follower loop                                                   *)
(* ------------------------------------------------------------------ *)

type follower_cbs = {
  fc_position : unit -> int * int;
      (** (epoch, next expected sequence), both durable *)
  fc_apply :
    epoch:int ->
    seq:int ->
    intent:string ->
    commit:string ->
    spec:Specs.Spec.concrete ->
    unit;  (** fsync the lines into the local journal, apply the install *)
  fc_snapshot : epoch:int -> next_seq:int -> db:string -> unit;
  fc_reset : epoch:int -> unit;  (** rotate aside, wipe, adopt [epoch] *)
}

type follower = {
  f_primary : string;
  f_cbs : follower_cbs;
  f_stop : bool Atomic.t;
  mutable f_domain : unit Domain.t option;
  f_connected : bool Atomic.t;
  f_applied : int Atomic.t;
  f_snapshots : int Atomic.t;
  f_resyncs : int Atomic.t;  (* gap / corrupt-frame / crash recoveries *)
  f_reconnects : int Atomic.t;
  f_last_seq : int Atomic.t;
}

let dial_primary path =
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  match
    Unix.connect fd (Unix.ADDR_UNIX path);
    Unix.setsockopt_float fd Unix.SO_RCVTIMEO 0.2
  with
  | () -> Some fd
  | exception Unix.Unix_error _ ->
    close_quiet fd;
    None

exception Resync of string

(* One connected session: subscribe from the durable position, stream
   until something goes wrong.  Every failure mode — gap, reorder,
   corrupt frame, injected apply crash, transport error — lands back in
   [run_follower]'s reconnect loop, which resubscribes from the (possibly
   advanced) durable position. *)
let session fol fd =
  let cbs = fol.f_cbs in
  let epoch, from_seq = cbs.fc_position () in
  write_all fd
    (Json.to_string
       (Protocol.request_to_json ~id:1
          (Protocol.Repl_subscribe { epoch; from_seq }))
    ^ "\n");
  let lr = line_reader fd in
  let expected = ref from_seq in
  let ack seq =
    write_all fd
      (Json.to_string (Protocol.request_to_json ~id:0 (Protocol.Repl_ack { seq }))
      ^ "\n")
  in
  let rec loop () =
    if Atomic.get fol.f_stop then ()
    else
      match reader_next lr with
      | `Timeout -> loop ()
      | `Eof -> ()
      | `Line line -> (
        match Json.of_string line with
        | Error m -> raise (Resync ("unparsable frame: " ^ m))
        | Ok j -> (
          match Protocol.response_of_json j with
          | Error m -> raise (Resync ("malformed frame: " ^ m))
          | Ok (_, resp) -> (
            match resp with
            | Protocol.Repl_record { epoch; seq; intent; commit } ->
              if seq < !expected then begin
                (* duplicate delivery (snapshot overlap, primary retry):
                   already durable here, so just re-ack *)
                ack (!expected - 1);
                loop ()
              end
              else if seq > !expected then
                raise
                  (Resync
                     (Printf.sprintf "sequence gap: expected %d, got %d"
                        !expected seq))
              else begin
                if Asp.Fault.service_fires Asp.Fault.Follower_crash then
                  failwith "injected follower crash";
                (* trust nothing: the lines must digest-verify and carry
                   the advertised sequence before they reach the journal *)
                match (Journal.parse intent, Journal.parse commit) with
                | Some (`Intent (si, spec)), Some (`Commit sc)
                  when si = seq && sc = seq ->
                  cbs.fc_apply ~epoch ~seq ~intent ~commit ~spec;
                  expected := seq + 1;
                  Atomic.incr fol.f_applied;
                  Atomic.set fol.f_last_seq seq;
                  ack seq;
                  loop ()
                | _ -> raise (Resync "corrupt replicated record")
              end
            | Protocol.Repl_snapshot { epoch; next_seq; db } ->
              cbs.fc_snapshot ~epoch ~next_seq ~db;
              expected := next_seq;
              Atomic.incr fol.f_snapshots;
              if next_seq > 1 then Atomic.set fol.f_last_seq (next_seq - 1);
              ack (next_seq - 1);
              loop ()
            | Protocol.Repl_reset { epoch } ->
              cbs.fc_reset ~epoch;
              Atomic.incr fol.f_resyncs
              (* session over: resubscribe under the adopted epoch *)
            | Protocol.Error { message; _ } ->
              raise (Resync ("subscription refused: " ^ message))
            | _ -> loop ())))
  in
  loop ()

let run_follower fol =
  let backoff = ref 0.05 in
  while not (Atomic.get fol.f_stop) do
    match dial_primary fol.f_primary with
    | None ->
      Unix.sleepf !backoff;
      backoff := Float.min 0.5 (!backoff *. 2.)
    | Some fd ->
      Atomic.set fol.f_connected true;
      Atomic.incr fol.f_reconnects;
      backoff := 0.05;
      (try session fol fd with
      | Resync _ | Failure _ -> Atomic.incr fol.f_resyncs
      | Unix.Unix_error _ | Sys_error _ -> ());
      Atomic.set fol.f_connected false;
      close_quiet fd;
      if not (Atomic.get fol.f_stop) then Unix.sleepf 0.02
  done

let start_follower ~primary cbs =
  let fol =
    {
      f_primary = primary;
      f_cbs = cbs;
      f_stop = Atomic.make false;
      f_domain = None;
      f_connected = Atomic.make false;
      f_applied = Atomic.make 0;
      f_snapshots = Atomic.make 0;
      f_resyncs = Atomic.make 0;
      f_reconnects = Atomic.make 0;
      f_last_seq = Atomic.make 0;
    }
  in
  fol.f_domain <- Some (Domain.spawn (fun () -> run_follower fol));
  fol

let stop_follower fol =
  Atomic.set fol.f_stop true;
  match fol.f_domain with
  | Some d ->
    Domain.join d;
    fol.f_domain <- None
  | None -> ()

let follower_stats fol =
  [
    ("following", Json.Str fol.f_primary);
    ("connected", Json.Bool (Atomic.get fol.f_connected));
    ("stream_applied", Json.Int (Atomic.get fol.f_applied));
    ("snapshots", Json.Int (Atomic.get fol.f_snapshots));
    ("stream_resyncs", Json.Int (Atomic.get fol.f_resyncs));
    ("reconnects", Json.Int (Atomic.get fol.f_reconnects));
    ("last_seq", Json.Int (Atomic.get fol.f_last_seq));
  ]
