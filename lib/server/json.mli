(** A minimal JSON layer for the wire protocol and the on-disk cache.

    The container ships no JSON library, and the service only needs
    newline-delimited single-line values, so this is a small self-contained
    implementation: a strict recursive-descent parser and a printer that
    never emits raw newlines (strings escape them), keeping one value = one
    line by construction. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val to_string : t -> string
(** Compact one-line rendering.  Floats round-trip ([%.17g], with a trailing
    [.0] forced so they re-parse as floats). *)

val of_string : string -> (t, string) result
(** Parse exactly one JSON value (surrounding whitespace allowed); trailing
    garbage is an error. *)

(** {1 Accessors} — total, for protocol decoding *)

val member : string -> t -> t option
(** Field of an object ([None] on missing field or non-object). *)

val to_int : t -> int option
val to_float : t -> float option
(** Accepts both [Int] and [Float]. *)

val to_str : t -> string option
val to_bool : t -> bool option
val to_list : t -> t list option
