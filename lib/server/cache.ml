(* File format (one file per key, [<dir>/<key>.solve]):

     spack-solve-cache v1
     <key>
     <result as one JSON line>
     digest <hex over the three preceding lines>

   The version lives in the header line: bumping the format makes every
   old file unreadable (a miss), which is exactly the invalidation rule —
   stale formats are ignored, never misparsed. *)

let format_header = "spack-solve-cache v1"

type entry = { value : Concretize.Concretizer.result; mutable used : int }

type t = {
  mutex : Mutex.t;
  mem : (string, entry) Hashtbl.t;
  capacity : int;
  dir : string option;
  mutable tick : int;  (* LRU clock: bumped on every touch *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
  mutable stores : int;
  mutable disk_hits : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  stores : int;
  mem_entries : int;
  disk_hits : int;
}

let create ?(mem_capacity = 256) ?dir () =
  (match dir with
  | Some d when not (Sys.file_exists d) -> (
    try Unix.mkdir d 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ())
  | _ -> ());
  {
    mutex = Mutex.create ();
    mem = Hashtbl.create 64;
    capacity = max 1 mem_capacity;
    dir;
    tick = 0;
    hits = 0;
    misses = 0;
    evictions = 0;
    stores = 0;
    disk_hits = 0;
  }

let stats t =
  Mutex.lock t.mutex;
  let s =
    {
      hits = t.hits;
      misses = t.misses;
      evictions = t.evictions;
      stores = t.stores;
      mem_entries = Hashtbl.length t.mem;
      disk_hits = t.disk_hits;
    }
  in
  Mutex.unlock t.mutex;
  s

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* ---- the LRU (call with the lock held) ---------------------------- *)

let touch t e =
  t.tick <- t.tick + 1;
  e.used <- t.tick

let evict_over_capacity t =
  while Hashtbl.length t.mem > t.capacity do
    (* linear scan for the LRU victim: capacities are small (hundreds) and
       eviction is rare next to solve times *)
    let victim = ref None in
    Hashtbl.iter
      (fun k e ->
        match !victim with
        | Some (_, u) when u <= e.used -> ()
        | _ -> victim := Some (k, e.used))
      t.mem;
    match !victim with
    | Some (k, _) ->
      Hashtbl.remove t.mem k;
      t.evictions <- t.evictions + 1
    | None -> ()
  done

let insert_mem t key value =
  match Hashtbl.find_opt t.mem key with
  | Some e -> touch t e
  | None ->
    let e = { value; used = 0 } in
    touch t e;
    Hashtbl.replace t.mem key e;
    evict_over_capacity t

(* ---- the disk layer ----------------------------------------------- *)

let file_of t key = Option.map (fun d -> Filename.concat d (key ^ ".solve")) t.dir

let disk_read path key =
  match open_in path with
  | exception Sys_error _ -> None
  | ic -> (
    let read_line () = try Some (input_line ic) with End_of_file -> None in
    let r =
      match (read_line (), read_line (), read_line (), read_line ()) with
      | Some header, Some k, Some body, Some footer
        when String.equal header format_header && String.equal k key -> (
        match String.split_on_char '\t' footer with
        | [ "digest"; d ]
          when String.equal d (Specs.Spec.digest_strings [ header; k; body ]) -> (
          match Json.of_string body with
          | Ok j -> (
            match Codec.result_of_json j with Ok v -> Some v | Error _ -> None)
          | Error _ -> None)
        | _ -> None (* corrupt or truncated footer *))
      | _ -> None (* stale format version, foreign file, or truncation *)
    in
    close_in_noerr ic;
    r)

let disk_write path key value =
  let body = Json.to_string (Codec.result_to_json value) in
  let digest = Specs.Spec.digest_strings [ format_header; key; body ] in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ()) (Domain.self () :> int)
  in
  match open_out tmp with
  | exception Sys_error _ -> ()  (* cache dir vanished: caching is best-effort *)
  | oc ->
    Fun.protect
      ~finally:(fun () -> close_out_noerr oc)
      (fun () ->
        output_string oc (format_header ^ "\n");
        output_string oc (key ^ "\n");
        output_string oc (body ^ "\n");
        output_string oc ("digest\t" ^ digest ^ "\n"));
    (try Sys.rename tmp path with Sys_error _ -> ())

(* ---- public api ---------------------------------------------------- *)

let lookup t key =
  let from_mem =
    with_lock t (fun () ->
        match Hashtbl.find_opt t.mem key with
        | Some e ->
          touch t e;
          t.hits <- t.hits + 1;
          Some e.value
        | None -> None)
  in
  match from_mem with
  | Some v -> Some v
  | None -> (
    (* the file, once fully written, is immutable (atomic rename), so the
       read happens outside the lock *)
    match file_of t key with
    | None ->
      with_lock t (fun () -> t.misses <- t.misses + 1);
      None
    | Some path -> (
      match disk_read path key with
      | Some v ->
        with_lock t (fun () ->
            t.hits <- t.hits + 1;
            t.disk_hits <- t.disk_hits + 1;
            insert_mem t key v);
        Some v
      | None ->
        with_lock t (fun () -> t.misses <- t.misses + 1);
        None))

let mem t key =
  let in_mem = with_lock t (fun () -> Hashtbl.mem t.mem key) in
  in_mem
  ||
  match file_of t key with
  | None -> false
  | Some path -> disk_read path key <> None

let store t key value =
  with_lock t (fun () ->
      t.stores <- t.stores + 1;
      insert_mem t key value);
  match file_of t key with None -> () | Some path -> disk_write path key value

let hook t =
  { Concretize.Concretizer.lookup = lookup t; store = store t }
