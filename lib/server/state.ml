module C = Concretize.Concretizer

type crash_point = After_intent | After_save | After_commit

type config = {
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;
  cache : Cache.t;
  db : Pkg.Database.t;
  db_path : string option;
  journal : Journal.t option;
  journal_max_bytes : int;
  repl : Replica.hub option;
  follower : bool;
  timeout : float option;
  client_rate : float;
  client_burst : float;
  max_pending : int;
  crash : (crash_point * (unit -> unit)) option;
}

type t = {
  cfg : config;
  sched : C.result Scheduler.t;
  pool : Asp.Pool.t;
  substrate : Concretize.Substrate.t;
  db : Pkg.Database.t Atomic.t;
  install_mutex : Mutex.t;
  started : float;
  (* counters shared by every worker domain and the supervisor *)
  n_connections : int Atomic.t;
  n_requests : int Atomic.t;
  n_installs : int Atomic.t;
  n_expired : int Atomic.t;
  n_throttled : int Atomic.t;
  n_replayed : int Atomic.t;
  n_restarts : int Atomic.t;
  n_wedged : int Atomic.t;
  n_replicated : int Atomic.t;
  n_resyncs : int Atomic.t;
  (* replication role: a follower serves solves but refuses installs with
     a typed [Read_only] until promoted *)
  read_only : bool Atomic.t;
  (* promotion must stop the follower loop before the role flips; the
     daemon (which owns the loop) installs the hook *)
  on_promote : (unit -> unit) ref;
  (* extra fields merged into the stats [replication] section (the daemon
     adds the follower-link counters it owns) *)
  repl_extra : (unit -> (string * Json.t) list) ref;
  (* lifecycle: [draining] stops admission of new connections/requests,
     [stopping] makes every loop exit now *)
  draining : bool Atomic.t;
  stopping : bool Atomic.t;
}

let create ~jobs cfg =
  let pool = Asp.Pool.create ~domains:(max 1 jobs) in
  {
    cfg;
    sched = Scheduler.create ~pool ~max_pending:cfg.max_pending;
    pool;
    substrate = Concretize.Substrate.create ();
    db = Atomic.make cfg.db;
    install_mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    n_connections = Atomic.make 0;
    n_requests = Atomic.make 0;
    n_installs = Atomic.make 0;
    n_expired = Atomic.make 0;
    n_throttled = Atomic.make 0;
    n_replayed = Atomic.make 0;
    n_restarts = Atomic.make 0;
    n_wedged = Atomic.make 0;
    n_replicated = Atomic.make 0;
    n_resyncs = Atomic.make 0;
    read_only = Atomic.make cfg.follower;
    on_promote = ref (fun () -> ());
    repl_extra = ref (fun () -> []);
    draining = Atomic.make false;
    stopping = Atomic.make false;
  }

let db t = Atomic.get t.db
let read_only t = Atomic.get t.read_only

(* ------------------------------------------------------------------ *)
(* Startup recovery                                                    *)
(* ------------------------------------------------------------------ *)

type recovery = {
  db0 : Pkg.Database.t;
  replayed : int;  (** journal intents re-applied (committed or not) *)
  uncommitted : int;  (** subset that never reached their commit marker *)
  truncated : bool;  (** a torn journal tail was dropped *)
  rotated : bool;  (** a stale-format journal was moved aside *)
}

(* Load the database, then re-apply every journal intent: appends are
   idempotent on the DAG hash, so committed entries are no-ops and an
   uncommitted entry completes the install the crash interrupted.  When
   anything was replayed, the repaired database is persisted and the
   journal reset — recovery itself is crash-safe (dying between the save
   and the reset just replays again). *)
let recover ?db_path ?journal_path () =
  let db0 =
    match db_path with
    | Some p when Sys.file_exists p -> (
      match Pkg.Database.load p with
      | Ok db -> db
      | Error e ->
        failwith
          (Printf.sprintf "%s: %s" p (Pkg.Database.load_error_to_string e)))
    | _ -> Pkg.Database.create ()
  in
  match journal_path with
  | None -> { db0; replayed = 0; uncommitted = 0; truncated = false; rotated = false }
  | Some jp ->
    let r = Journal.replay jp in
    let uncommitted =
      List.length (List.filter (fun (e : Journal.entry) -> not e.Journal.committed) r.Journal.entries)
    in
    List.iter
      (fun (e : Journal.entry) -> Pkg.Database.add_concrete db0 e.Journal.spec)
      r.Journal.entries;
    if r.Journal.entries <> [] then begin
      Option.iter (Pkg.Database.save db0) db_path;
      (* checkpoint, not wipe: the sequence counter (and epoch) carry over
         as the new base, so replication followers' resume positions
         survive the recovery compaction *)
      let j = Journal.open_ jp in
      Journal.checkpoint j;
      Journal.close j
    end;
    {
      db0;
      replayed = List.length r.Journal.entries;
      uncommitted;
      truncated = r.Journal.truncated;
      rotated = r.Journal.rotated;
    }

(* ------------------------------------------------------------------ *)
(* Solve jobs                                                          *)
(* ------------------------------------------------------------------ *)

let request_key t root =
  C.request_key ~config:t.cfg.solver ~installed:(db t) ~repo:t.cfg.repo [ root ]

let zero_phases =
  {
    C.setup_time = 0.;
    load_time = 0.;
    ground_time = 0.;
    ground_base_time = 0.;
    ground_extend_time = 0.;
    solve_time = 0.;
  }

let expired_result =
  C.Interrupted
    {
      info =
        {
          Asp.Budget.phase = Asp.Budget.Ground;
          reason = Asp.Budget.Deadline;
          progress = { Asp.Budget.conflicts = 0; instances = 0; opt_steps = 0 };
        };
      phases = zero_phases;
      n_facts = 0;
      n_possible = 0;
    }

(* The deadline is absolute and was fixed at enqueue: a job that reaches
   the front of the queue after its deadline passed is shed (a typed
   deadline result, no solver work) instead of being solved with a
   token-sized leftover budget. *)
let make_job t ~deadline root =
  let installed = db t in
  fun ~cancel ->
    let expired =
      match deadline with
      | Some d -> Unix.gettimeofday () >= d
      | None -> false
    in
    if expired then begin
      Atomic.incr t.n_expired;
      expired_result
    end
    else begin
      let wall = Option.map (fun d -> d -. Unix.gettimeofday ()) deadline in
      let budget =
        Asp.Budget.start ~cancel { Asp.Budget.no_limits with Asp.Budget.wall }
      in
      C.solve ~config:t.cfg.solver ~installed ~budget ~substrate:t.substrate
        ~repo:t.cfg.repo [ root ]
    end

(* ------------------------------------------------------------------ *)
(* Installs: write-ahead journal, copy-on-swap database               *)
(* ------------------------------------------------------------------ *)

let crash_maybe t point =
  match t.cfg.crash with
  | Some (p, action) when p = point -> action ()
  | _ -> ()

(* Journal compaction ([--journal-max-bytes]): once the journal outgrows
   the threshold — and the database snapshot on disk already holds every
   entry, which is true after each install's save — truncate it to a bare
   header whose base is the current sequence.  Crashing between the save
   and the checkpoint merely replays entries idempotently.  Call with the
   install mutex held. *)
let maybe_compact t =
  match (t.cfg.journal, t.cfg.db_path) with
  | Some j, Some _
    when t.cfg.journal_max_bytes > 0
         && Journal.size_bytes j > t.cfg.journal_max_bytes ->
    Journal.checkpoint j
  | _ -> ()

(* Copy-and-extend, never mutate: worker domains may still be reading the
   current database value, so installs build a fresh one and swap it in.
   Ordering is what makes a kill -9 at any instant recoverable:
     1. journal intent (fsync)     — the install survives the crash;
     2. fresh db built and swapped — in-memory view consistent;
     3. db file saved (atomic rename);
     4. journal commit marker      — replay becomes a no-op.
   Crashing between 1 and 3 replays the intent onto the old db file;
   between 3 and 4 replays it onto the new one (idempotent). *)
let record_install t (s : C.success) =
  Mutex.lock t.install_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.install_mutex)
    (fun () ->
      let old = Atomic.get t.db in
      let seq = Option.map (fun j -> Journal.append_intent j s.C.spec) t.cfg.journal in
      crash_maybe t After_intent;
      (* copy is a flat arena blit, not a per-record rebuild *)
      let db = Pkg.Database.copy old in
      Pkg.Database.add_concrete db s.C.spec;
      let fresh =
        List.filter_map
          (fun (r : Pkg.Database.record) ->
            match Pkg.Database.find old r.Pkg.Database.hash with
            | Some _ -> None
            | None -> Some (r.Pkg.Database.name, r.Pkg.Database.hash))
          (Pkg.Database.records db)
      in
      Atomic.set t.db db;
      (* rebase the substrate's ground bases over the install delta instead
         of discarding them *)
      Concretize.Substrate.on_install t.substrate ~repo:t.cfg.repo ~db;
      Atomic.incr t.n_installs;
      Option.iter (Pkg.Database.save db) t.cfg.db_path;
      crash_maybe t After_save;
      (match (t.cfg.journal, seq) with
      | Some j, Some seq -> Journal.append_commit j seq
      | _ -> ());
      (* the client-visible ack happens strictly after the commit-marker
         fsync above: a kill -9 here (the After_commit seam) leaves an
         install that was never acknowledged, so losing its replication is
         allowed — but its journal entry is already durable locally *)
      crash_maybe t After_commit;
      (match (t.cfg.repl, seq) with
      | Some hub, Some seq ->
        (* ship the exact bytes the journal holds; under sync ack this
           blocks (inside the install mutex: replication order is install
           order) until a follower made them durable too *)
        Replica.ship hub ~seq
          ~intent:(Journal.render_intent seq s.C.spec)
          ~commit:(Journal.render_commit seq)
      | _ -> ());
      maybe_compact t;
      fresh)

(* ------------------------------------------------------------------ *)
(* Replication (follower side + promotion)                             *)
(* ------------------------------------------------------------------ *)

let with_install_mutex t f =
  Mutex.lock t.install_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.install_mutex) f

let replica_position t =
  match t.cfg.journal with
  | Some j -> (Journal.epoch j, Journal.next_seq j)
  | None -> (1, 1)

(* Apply one replicated install.  Durability first — the primary's exact
   bytes are fsynced into the local journal before the database moves —
   because the ack sent after this returns is a promise that a follower
   kill -9 loses nothing. *)
let apply_replicated t ~epoch ~seq ~intent ~commit ~spec =
  with_install_mutex t (fun () ->
      (match t.cfg.journal with
      | Some j ->
        if epoch > Journal.epoch j then Journal.bump_epoch j epoch;
        Journal.append_raw j ~seq [ intent; commit ]
      | None -> ());
      let old = Atomic.get t.db in
      let db = Pkg.Database.copy old in
      Pkg.Database.add_concrete db spec;
      Atomic.set t.db db;
      Concretize.Substrate.on_install t.substrate ~repo:t.cfg.repo ~db;
      Atomic.incr t.n_replicated;
      Option.iter (Pkg.Database.save db) t.cfg.db_path;
      maybe_compact t)

(* Adopt a full database snapshot (resume position was compacted away on
   the primary): swap it in, drop every ground base (records may have
   {e disappeared} relative to what we held — rebasing is add-only), and
   restart the local journal at the primary's position. *)
let install_snapshot t ~epoch ~next_seq ~db =
  match Pkg.Database.load_string db with
  | Error e ->
    failwith
      ("replicated snapshot rejected: " ^ Pkg.Database.load_error_to_string e)
  | Ok fresh ->
    with_install_mutex t (fun () ->
        Atomic.set t.db fresh;
        Concretize.Substrate.clear t.substrate;
        Option.iter (Pkg.Database.save fresh) t.cfg.db_path;
        (match t.cfg.journal with
        | Some j -> Journal.set_position j ~epoch ~base_seq:next_seq
        | None -> ());
        Atomic.incr t.n_replicated)

(* Fenced by the primary (our epoch is stale): preserve the old journal as
   [.stale] for forensics, wipe the database and start over under the new
   epoch.  Everything we held that the new epoch lacks was, by
   construction, never acknowledged under sync replication. *)
let reset_replica t ~epoch =
  with_install_mutex t (fun () ->
      Option.iter Journal.rotate_stale t.cfg.journal;
      let empty = Pkg.Database.create () in
      Atomic.set t.db empty;
      Concretize.Substrate.clear t.substrate;
      Option.iter (Pkg.Database.save empty) t.cfg.db_path;
      (match t.cfg.journal with
      | Some j -> Journal.set_position j ~epoch ~base_seq:1
      | None -> ());
      Atomic.incr t.n_resyncs)

(* Promotion: stop the follower loop (no more applies can race the role
   flip), bump the epoch — the fence against the old primary — and start
   accepting installs.  Idempotent on a primary: no bump, same epoch. *)
let promote t =
  !(t.on_promote) ();
  with_install_mutex t (fun () ->
      let epoch =
        match t.cfg.journal with
        | Some j ->
          let e = Journal.epoch j in
          if Atomic.get t.read_only then begin
            Journal.bump_epoch j (e + 1);
            e + 1
          end
          else e
        | None -> 1
      in
      Atomic.set t.read_only false;
      epoch)

(* ------------------------------------------------------------------ *)
(* Shutdown persistence                                                *)
(* ------------------------------------------------------------------ *)

let persist t =
  with_install_mutex t (fun () ->
      Option.iter (Pkg.Database.save (Atomic.get t.db)) t.cfg.db_path;
      (* clean shutdown: the saved snapshot holds every entry, so the
         journal compacts to a bare header (positions preserved) *)
      (match (t.cfg.journal, t.cfg.db_path) with
      | Some j, Some _ -> Journal.checkpoint j
      | _ -> ());
      Option.iter Journal.close t.cfg.journal)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_json ?(workers = 0) t =
  let c = Cache.stats t.cfg.cache in
  let s = Scheduler.stats t.sched in
  let sub = Concretize.Substrate.counters t.substrate in
  let current_db = db t in
  Json.Obj
    [
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int c.Cache.hits);
            ("misses", Json.Int c.Cache.misses);
            ("evictions", Json.Int c.Cache.evictions);
            ("stores", Json.Int c.Cache.stores);
            ("mem_entries", Json.Int c.Cache.mem_entries);
            ("disk_hits", Json.Int c.Cache.disk_hits);
          ] );
      ( "substrate",
        Json.Obj
          [
            ("entries", Json.Int (Concretize.Substrate.size t.substrate));
            ("base_builds", Json.Int sub.Concretize.Substrate.base_builds);
            ("extensions", Json.Int sub.Concretize.Substrate.extensions);
            ( "narrowed_invalidations",
              Json.Int sub.Concretize.Substrate.delta_applies );
            ("full_invalidations", Json.Int sub.Concretize.Substrate.drops);
            ("fallbacks", Json.Int sub.Concretize.Substrate.fallbacks);
            ("evictions", Json.Int sub.Concretize.Substrate.evictions);
          ] );
      ( "scheduler",
        Json.Obj
          [
            ("submitted", Json.Int s.Scheduler.submitted);
            ("deduped", Json.Int s.Scheduler.deduped);
            ("shed", Json.Int s.Scheduler.shed);
            ("cancelled", Json.Int s.Scheduler.cancelled);
            ("completed", Json.Int s.Scheduler.completed);
            ("pending", Json.Int s.Scheduler.pending);
          ] );
      ( "supervisor",
        Json.Obj
          [
            ("workers", Json.Int workers);
            ("restarts", Json.Int (Atomic.get t.n_restarts));
            ("wedged", Json.Int (Atomic.get t.n_wedged));
          ] );
      ( "replication",
        Json.Obj
          ([
             ( "role",
               Json.Str
                 (if Atomic.get t.read_only then "follower" else "primary") );
             ( "epoch",
               Json.Int
                 (match t.cfg.journal with
                 | Some j -> Journal.epoch j
                 | None -> 1) );
             ("applied", Json.Int (Atomic.get t.n_replicated));
             ("resyncs", Json.Int (Atomic.get t.n_resyncs));
           ]
          @ (match t.cfg.repl with
            | Some hub -> Replica.hub_stats hub
            | None -> [])
          @ !(t.repl_extra) ()) );
      ( "server",
        Json.Obj
          [
            ("uptime", Json.Float (Unix.gettimeofday () -. t.started));
            ("connections", Json.Int (Atomic.get t.n_connections));
            ("requests", Json.Int (Atomic.get t.n_requests));
            ("installs", Json.Int (Atomic.get t.n_installs));
            ("expired", Json.Int (Atomic.get t.n_expired));
            ("throttled", Json.Int (Atomic.get t.n_throttled));
            ("replayed", Json.Int (Atomic.get t.n_replayed));
            ("draining", Json.Bool (Atomic.get t.draining));
            ("db_size", Json.Int (Pkg.Database.size current_db));
            ("db_fingerprint", Json.Str (Pkg.Database.fingerprint current_db));
          ] );
    ]
