module C = Concretize.Concretizer

type crash_point = After_intent | After_save

type config = {
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;
  cache : Cache.t;
  db : Pkg.Database.t;
  db_path : string option;
  journal : Journal.t option;
  timeout : float option;
  client_rate : float;
  client_burst : float;
  max_pending : int;
  crash : (crash_point * (unit -> unit)) option;
}

type t = {
  cfg : config;
  sched : C.result Scheduler.t;
  pool : Asp.Pool.t;
  substrate : Concretize.Substrate.t;
  db : Pkg.Database.t Atomic.t;
  install_mutex : Mutex.t;
  started : float;
  (* counters shared by every worker domain and the supervisor *)
  n_connections : int Atomic.t;
  n_requests : int Atomic.t;
  n_installs : int Atomic.t;
  n_expired : int Atomic.t;
  n_throttled : int Atomic.t;
  n_replayed : int Atomic.t;
  n_restarts : int Atomic.t;
  n_wedged : int Atomic.t;
  (* lifecycle: [draining] stops admission of new connections/requests,
     [stopping] makes every loop exit now *)
  draining : bool Atomic.t;
  stopping : bool Atomic.t;
}

let create ~jobs cfg =
  let pool = Asp.Pool.create ~domains:(max 1 jobs) in
  {
    cfg;
    sched = Scheduler.create ~pool ~max_pending:cfg.max_pending;
    pool;
    substrate = Concretize.Substrate.create ();
    db = Atomic.make cfg.db;
    install_mutex = Mutex.create ();
    started = Unix.gettimeofday ();
    n_connections = Atomic.make 0;
    n_requests = Atomic.make 0;
    n_installs = Atomic.make 0;
    n_expired = Atomic.make 0;
    n_throttled = Atomic.make 0;
    n_replayed = Atomic.make 0;
    n_restarts = Atomic.make 0;
    n_wedged = Atomic.make 0;
    draining = Atomic.make false;
    stopping = Atomic.make false;
  }

let db t = Atomic.get t.db

(* ------------------------------------------------------------------ *)
(* Startup recovery                                                    *)
(* ------------------------------------------------------------------ *)

type recovery = {
  db0 : Pkg.Database.t;
  replayed : int;  (** journal intents re-applied (committed or not) *)
  uncommitted : int;  (** subset that never reached their commit marker *)
  truncated : bool;  (** a torn journal tail was dropped *)
  rotated : bool;  (** a stale-format journal was moved aside *)
}

(* Load the database, then re-apply every journal intent: appends are
   idempotent on the DAG hash, so committed entries are no-ops and an
   uncommitted entry completes the install the crash interrupted.  When
   anything was replayed, the repaired database is persisted and the
   journal reset — recovery itself is crash-safe (dying between the save
   and the reset just replays again). *)
let recover ?db_path ?journal_path () =
  let db0 =
    match db_path with
    | Some p when Sys.file_exists p -> (
      match Pkg.Database.load p with
      | Ok db -> db
      | Error e ->
        failwith
          (Printf.sprintf "%s: %s" p (Pkg.Database.load_error_to_string e)))
    | _ -> Pkg.Database.create ()
  in
  match journal_path with
  | None -> { db0; replayed = 0; uncommitted = 0; truncated = false; rotated = false }
  | Some jp ->
    let r = Journal.replay jp in
    let uncommitted =
      List.length (List.filter (fun (e : Journal.entry) -> not e.Journal.committed) r.Journal.entries)
    in
    List.iter
      (fun (e : Journal.entry) -> Pkg.Database.add_concrete db0 e.Journal.spec)
      r.Journal.entries;
    if r.Journal.entries <> [] then begin
      Option.iter (Pkg.Database.save db0) db_path;
      Journal.reset (Journal.open_ jp)
    end;
    {
      db0;
      replayed = List.length r.Journal.entries;
      uncommitted;
      truncated = r.Journal.truncated;
      rotated = r.Journal.rotated;
    }

(* ------------------------------------------------------------------ *)
(* Solve jobs                                                          *)
(* ------------------------------------------------------------------ *)

let request_key t root =
  C.request_key ~config:t.cfg.solver ~installed:(db t) ~repo:t.cfg.repo [ root ]

let zero_phases =
  {
    C.setup_time = 0.;
    load_time = 0.;
    ground_time = 0.;
    ground_base_time = 0.;
    ground_extend_time = 0.;
    solve_time = 0.;
  }

let expired_result =
  C.Interrupted
    {
      info =
        {
          Asp.Budget.phase = Asp.Budget.Ground;
          reason = Asp.Budget.Deadline;
          progress = { Asp.Budget.conflicts = 0; instances = 0; opt_steps = 0 };
        };
      phases = zero_phases;
      n_facts = 0;
      n_possible = 0;
    }

(* The deadline is absolute and was fixed at enqueue: a job that reaches
   the front of the queue after its deadline passed is shed (a typed
   deadline result, no solver work) instead of being solved with a
   token-sized leftover budget. *)
let make_job t ~deadline root =
  let installed = db t in
  fun ~cancel ->
    let expired =
      match deadline with
      | Some d -> Unix.gettimeofday () >= d
      | None -> false
    in
    if expired then begin
      Atomic.incr t.n_expired;
      expired_result
    end
    else begin
      let wall = Option.map (fun d -> d -. Unix.gettimeofday ()) deadline in
      let budget =
        Asp.Budget.start ~cancel { Asp.Budget.no_limits with Asp.Budget.wall }
      in
      C.solve ~config:t.cfg.solver ~installed ~budget ~substrate:t.substrate
        ~repo:t.cfg.repo [ root ]
    end

(* ------------------------------------------------------------------ *)
(* Installs: write-ahead journal, copy-on-swap database               *)
(* ------------------------------------------------------------------ *)

let crash_maybe t point =
  match t.cfg.crash with
  | Some (p, action) when p = point -> action ()
  | _ -> ()

(* Copy-and-extend, never mutate: worker domains may still be reading the
   current database value, so installs build a fresh one and swap it in.
   Ordering is what makes a kill -9 at any instant recoverable:
     1. journal intent (fsync)     — the install survives the crash;
     2. fresh db built and swapped — in-memory view consistent;
     3. db file saved (atomic rename);
     4. journal commit marker      — replay becomes a no-op.
   Crashing between 1 and 3 replays the intent onto the old db file;
   between 3 and 4 replays it onto the new one (idempotent). *)
let record_install t (s : C.success) =
  Mutex.lock t.install_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.install_mutex)
    (fun () ->
      let old = Atomic.get t.db in
      let seq = Option.map (fun j -> Journal.append_intent j s.C.spec) t.cfg.journal in
      crash_maybe t After_intent;
      (* copy is a flat arena blit, not a per-record rebuild *)
      let db = Pkg.Database.copy old in
      Pkg.Database.add_concrete db s.C.spec;
      let fresh =
        List.filter_map
          (fun (r : Pkg.Database.record) ->
            match Pkg.Database.find old r.Pkg.Database.hash with
            | Some _ -> None
            | None -> Some (r.Pkg.Database.name, r.Pkg.Database.hash))
          (Pkg.Database.records db)
      in
      Atomic.set t.db db;
      (* rebase the substrate's ground bases over the install delta instead
         of discarding them *)
      Concretize.Substrate.on_install t.substrate ~repo:t.cfg.repo ~db;
      Atomic.incr t.n_installs;
      Option.iter (Pkg.Database.save db) t.cfg.db_path;
      crash_maybe t After_save;
      (match (t.cfg.journal, seq) with
      | Some j, Some seq -> Journal.append_commit j seq
      | _ -> ());
      fresh)

(* ------------------------------------------------------------------ *)
(* Shutdown persistence                                                *)
(* ------------------------------------------------------------------ *)

let persist t =
  Mutex.lock t.install_mutex;
  Fun.protect
    ~finally:(fun () -> Mutex.unlock t.install_mutex)
    (fun () ->
      Option.iter (Pkg.Database.save (Atomic.get t.db)) t.cfg.db_path;
      Option.iter Journal.close t.cfg.journal)

(* ------------------------------------------------------------------ *)
(* Stats                                                               *)
(* ------------------------------------------------------------------ *)

let stats_json ?(workers = 0) t =
  let c = Cache.stats t.cfg.cache in
  let s = Scheduler.stats t.sched in
  let sub = Concretize.Substrate.counters t.substrate in
  let current_db = db t in
  Json.Obj
    [
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int c.Cache.hits);
            ("misses", Json.Int c.Cache.misses);
            ("evictions", Json.Int c.Cache.evictions);
            ("stores", Json.Int c.Cache.stores);
            ("mem_entries", Json.Int c.Cache.mem_entries);
            ("disk_hits", Json.Int c.Cache.disk_hits);
          ] );
      ( "substrate",
        Json.Obj
          [
            ("entries", Json.Int (Concretize.Substrate.size t.substrate));
            ("base_builds", Json.Int sub.Concretize.Substrate.base_builds);
            ("extensions", Json.Int sub.Concretize.Substrate.extensions);
            ( "narrowed_invalidations",
              Json.Int sub.Concretize.Substrate.delta_applies );
            ("full_invalidations", Json.Int sub.Concretize.Substrate.drops);
            ("fallbacks", Json.Int sub.Concretize.Substrate.fallbacks);
            ("evictions", Json.Int sub.Concretize.Substrate.evictions);
          ] );
      ( "scheduler",
        Json.Obj
          [
            ("submitted", Json.Int s.Scheduler.submitted);
            ("deduped", Json.Int s.Scheduler.deduped);
            ("shed", Json.Int s.Scheduler.shed);
            ("cancelled", Json.Int s.Scheduler.cancelled);
            ("completed", Json.Int s.Scheduler.completed);
            ("pending", Json.Int s.Scheduler.pending);
          ] );
      ( "supervisor",
        Json.Obj
          [
            ("workers", Json.Int workers);
            ("restarts", Json.Int (Atomic.get t.n_restarts));
            ("wedged", Json.Int (Atomic.get t.n_wedged));
          ] );
      ( "server",
        Json.Obj
          [
            ("uptime", Json.Float (Unix.gettimeofday () -. t.started));
            ("connections", Json.Int (Atomic.get t.n_connections));
            ("requests", Json.Int (Atomic.get t.n_requests));
            ("installs", Json.Int (Atomic.get t.n_installs));
            ("expired", Json.Int (Atomic.get t.n_expired));
            ("throttled", Json.Int (Atomic.get t.n_throttled));
            ("replayed", Json.Int (Atomic.get t.n_replayed));
            ("draining", Json.Bool (Atomic.get t.draining));
            ("db_size", Json.Int (Pkg.Database.size current_db));
            ("db_fingerprint", Json.Str (Pkg.Database.fingerprint current_db));
          ] );
    ]
