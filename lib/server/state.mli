(** Shared, domain-safe service state: everything the daemon's worker
    domains and supervisor operate on together.

    One value of {!t} is created per daemon and handed to every worker:
    the solve cache, the ground-program substrate, the single-flight
    scheduler (and its solver pool), the installed database (an atomic
    reference, swapped wholesale on install) and the shared counters.
    Lifecycle is two flags: [draining] stops admission (new connections
    and new solves) while in-flight work finishes; [stopping] makes every
    loop exit now. *)

module C = Concretize.Concretizer

(** Where {!record_install} simulates a crash (tests and the kill -9
    recovery drill): [After_intent] dies after the journal intent was
    fsynced but before the database was touched; [After_save] dies after
    the new database file was published but before the commit marker;
    [After_commit] dies after the commit marker was fsynced but before the
    client saw the ack (and before replication shipped) — the seam that
    proves the ack ordering: everything acked is already durable. *)
type crash_point = After_intent | After_save | After_commit

type config = {
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;
  cache : Cache.t;
  db : Pkg.Database.t;  (** initial installed database (post-recovery) *)
  db_path : string option;  (** persist the database here after installs *)
  journal : Journal.t option;  (** write-ahead journal for installs *)
  journal_max_bytes : int;
      (** compact the journal (checkpoint against the saved database) when
          it outgrows this; 0 = never *)
  repl : Replica.hub option;  (** replication hub (ships committed installs) *)
  follower : bool;  (** start read-only, following a primary *)
  timeout : float option;  (** server-side per-request deadline, seconds *)
  client_rate : float;  (** per-client token refill per second; 0 = off *)
  client_burst : float;  (** per-client token-bucket capacity *)
  max_pending : int;  (** distinct in-flight solves before shedding *)
  crash : (crash_point * (unit -> unit)) option;
      (** test seam: invoked when an install reaches the crash point *)
}

type t = {
  cfg : config;
  sched : C.result Scheduler.t;
  pool : Asp.Pool.t;
  substrate : Concretize.Substrate.t;
  db : Pkg.Database.t Atomic.t;
  install_mutex : Mutex.t;
  started : float;
  n_connections : int Atomic.t;
  n_requests : int Atomic.t;
  n_installs : int Atomic.t;
  n_expired : int Atomic.t;  (** jobs shed because their deadline passed *)
  n_throttled : int Atomic.t;  (** requests shed by the per-client bucket *)
  n_replayed : int Atomic.t;  (** journal intents re-applied at startup *)
  n_restarts : int Atomic.t;  (** crashed workers replaced *)
  n_wedged : int Atomic.t;  (** stalled workers quarantined *)
  n_replicated : int Atomic.t;  (** replicated records applied (follower) *)
  n_resyncs : int Atomic.t;  (** follower resets (fenced / resynced) *)
  read_only : bool Atomic.t;  (** refuses installs until promoted *)
  on_promote : (unit -> unit) ref;
      (** invoked by {!promote} before the role flips — the daemon hooks
          the follower-loop stop here *)
  repl_extra : (unit -> (string * Json.t) list) ref;
      (** extra fields for the stats [replication] section *)
  draining : bool Atomic.t;
  stopping : bool Atomic.t;
}

val create : jobs:int -> config -> t
(** Build the shared state, spawning [jobs] solver domains. *)

val db : t -> Pkg.Database.t
(** The current installed-database snapshot (immutable once published). *)

val read_only : t -> bool
(** [true] on an unpromoted follower: installs get a typed [Read_only]. *)

(** {1 Startup recovery} *)

type recovery = {
  db0 : Pkg.Database.t;  (** the recovered database *)
  replayed : int;  (** journal intents re-applied (committed or not) *)
  uncommitted : int;  (** subset whose commit marker was missing *)
  truncated : bool;  (** a torn journal tail was dropped *)
  rotated : bool;  (** a stale-format journal was moved aside *)
}

val recover : ?db_path:string -> ?journal_path:string -> unit -> recovery
(** Load the database file (if any), re-apply every journal intent, and —
    when anything was replayed — persist the repaired database and reset
    the journal.  Idempotent: running recovery twice yields the same
    database as running it once, and the same database a clean (uncrashed)
    run of the journaled installs would have produced.
    @raise Failure when the database file itself is unreadable or corrupt
    (a torn rename cannot produce this; disk corruption can, and must stop
    the daemon rather than silently drop installs). *)

(** {1 Solve jobs} *)

val request_key : t -> Specs.Spec.abstract -> string

val make_job :
  t ->
  deadline:float option ->
  Specs.Spec.abstract ->
  cancel:Asp.Budget.cancel_token ->
  C.result
(** A scheduler job for one root.  [deadline] is absolute (fixed at
    enqueue): a job starting past it is shed with a typed
    [Interrupted]/[Deadline] result and counted in [n_expired], never
    solved with a leftover sliver of budget. *)

val expired_result : C.result
(** The result [make_job] returns for a job already past its deadline. *)

(** {1 Installs} *)

val record_install : t -> C.success -> (string * string) list
(** Journal (intent, fsync) → fresh database swapped in → substrate
    rebased → database file saved → journal commit.  Serialized under the
    install mutex; safe against a kill -9 at any instant (see
    {!recover}).  Returns the (package, hash) pairs newly added. *)

val persist : t -> unit
(** Final save of the database, then a clean-shutdown journal checkpoint
    (the snapshot holds every entry; sequence positions carry over) and
    journal close. *)

(** {1 Replication} *)

val replica_position : t -> int * int
(** (epoch, next expected sequence) from the local journal — where a
    follower (re)subscribes from. *)

val apply_replicated :
  t ->
  epoch:int ->
  seq:int ->
  intent:string ->
  commit:string ->
  spec:Specs.Spec.concrete ->
  unit
(** Follower apply: fsync the primary's exact journal lines locally
    (bumping the epoch first if the stream moved ahead), then swap the
    install into the database.  The caller acks only after this returns. *)

val install_snapshot : t -> epoch:int -> next_seq:int -> db:string -> unit
(** Follower catch-up from a full database snapshot: verify and swap it
    in, drop every substrate base (snapshot deltas are not add-only), and
    restart the journal at the primary's position.
    @raise Failure when the snapshot fails its digest check. *)

val reset_replica : t -> epoch:int -> unit
(** Fenced (stale epoch): rotate the journal to [.stale], wipe the
    database, adopt [epoch] at sequence 1. *)

val promote : t -> int
(** Stop the follower loop ({!on_promote}), bump the journal epoch and
    start accepting installs; returns the (possibly new) epoch.
    Idempotent on a primary. *)

val stats_json : ?workers:int -> t -> Json.t
(** The [stats] reply: cache / substrate / scheduler / supervisor /
    server sections. *)
