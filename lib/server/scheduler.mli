(** Request scheduler: admission control in front of {!Asp.Pool}.

    The daemon's event loop funnels every solve through a scheduler, which
    adds three behaviours the raw pool does not have:

    - {b single-flight}: a request whose key is already in flight joins the
      existing job instead of spawning a second identical solve; the one
      result fans out to every waiter.
    - {b overload shedding}: once [max_pending] distinct jobs are in flight,
      new work is refused with [`Overloaded] immediately — the queue never
      grows without bound and clients get a typed answer instead of a stall.
    - {b cancellation}: each job runs under its own {!Asp.Budget.cancel_token};
      when every waiter has {!abandon}ed (clients disconnected), the token is
      cancelled and the solver unwinds at its next budget tick.

    Tickets are polled, never awaited — the single-threaded event loop must
    not block on a future ({!Asp.Pool.is_done} exists for exactly this). *)

type 'a t

val create : pool:Asp.Pool.t -> max_pending:int -> 'a t
(** [max_pending] bounds distinct in-flight jobs (at least 1).  Joining an
    existing job never counts against the bound (it adds no work). *)

type 'a ticket
(** One waiter's handle on a (possibly shared) in-flight job. *)

val submit :
  'a t ->
  key:string ->
  (cancel:Asp.Budget.cancel_token -> 'a) ->
  [ `Accepted of 'a ticket | `Overloaded ]
(** Run [job] on the pool under a fresh cancel token — unless [key] is
    already in flight, in which case the returned ticket shares that job. *)

val poll : 'a t -> 'a ticket -> [ `Pending | `Done of ('a, exn) result ]
(** Non-blocking.  [`Done] is stable: polling again returns the same
    answer. *)

val abandon : 'a t -> 'a ticket -> unit
(** This waiter no longer wants the result.  The last waiter off a still
    running job cancels its token.  Idempotent per ticket. *)

type stats = {
  submitted : int;  (** jobs dispatched to the pool *)
  deduped : int;  (** submits that joined an in-flight job *)
  shed : int;  (** submits refused with [`Overloaded] *)
  cancelled : int;  (** jobs whose token was cancelled by {!abandon} *)
  completed : int;  (** jobs observed finished *)
  pending : int;  (** distinct jobs currently in flight *)
}

val stats : 'a t -> stats
