(** JSON (de)serialization of {!Concretize.Concretizer.result}.

    Fully bidirectional for all three outcomes, so both the on-disk cache
    layer and the wire protocol round-trip a result without loss: the
    concrete DAG, cost vector, quality bounds, phase timings, ground/search
    statistics and the [verified] flag all survive.  Decoding is total —
    malformed input yields [Error], never an exception — because cache files
    and network bytes are untrusted. *)

val result_to_json : Concretize.Concretizer.result -> Json.t
val result_of_json : Json.t -> (Concretize.Concretizer.result, string) result

val concrete_to_json : Specs.Spec.concrete -> Json.t
(** The concrete-DAG fragment alone, reused by the install journal: a
    journal intent must carry everything needed to replay the install. *)

val concrete_of_json : Json.t -> Specs.Spec.concrete option
