module C = Concretize.Concretizer

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

(* Per-client token bucket: admission charges one token per root spec, so
   a greedy client exhausts its own bucket (typed Overloaded reply) while
   everyone else keeps solving. *)
type bucket = { mutable tokens : float; mutable last : float }

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* bytes read but not yet terminated by '\n' *)
  mutable out : string;  (* bytes owed to the client *)
  mutable alive : bool;
  bucket : bucket;
}

type slot =
  | Ready of Protocol.cache_status * C.result
  | Waiting of { key : string; ticket : C.result Scheduler.ticket }
  | Failed of exn

type pending = {
  pconn : conn;
  req_id : int;
  slots : slot array;
  install : string option;  (* spec text: record the result when done *)
}

type status = Running | Crashed of string | Stopped

type t = {
  id : int;
  st : State.t;
  n_workers : int;  (* for the stats reply *)
  drain_grace : float;
  inq : Unix.file_descr Queue.t;
  inq_mutex : Mutex.t;
  wake_r : Unix.file_descr;
  wake_w : Unix.file_descr;
  heartbeat : float Atomic.t;
  status : status Atomic.t;
  quarantined : bool Atomic.t;
  drained : bool Atomic.t;  (* no pendings, all output flushed *)
  (* fd registry shared with the supervisor: after a crash the supervisor
     closes whatever the dead domain left open *)
  live_fds : (Unix.file_descr, unit) Hashtbl.t;
  fds_mutex : Mutex.t;
  mutable domain : unit Domain.t option;
}

(* ---- local state of the running loop (single domain, no locking) --- *)

type loop = {
  w : t;
  mutable conns : conn list;
  mutable pendings : pending list;
  mutable drain_deadline : float option;
}

let register_fd w fd =
  Mutex.lock w.fds_mutex;
  Hashtbl.replace w.live_fds fd ();
  Mutex.unlock w.fds_mutex

let unregister_fd w fd =
  Mutex.lock w.fds_mutex;
  Hashtbl.remove w.live_fds fd;
  Mutex.unlock w.fds_mutex

let send conn line = if conn.alive then conn.out <- conn.out ^ line ^ "\n"

let reply conn ~id resp =
  send conn (Json.to_string (Protocol.response_to_json ~id resp))

let close_conn lp conn =
  if conn.alive then begin
    conn.alive <- false;
    unregister_fd lp.w conn.fd;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* a gone client wants nothing: drop its pendings and let the scheduler
       cancel solves nobody else is waiting on *)
    List.iter
      (fun p ->
        if p.pconn == conn then
          Array.iter
            (function
              | Waiting { ticket; _ } -> Scheduler.abandon lp.w.st.State.sched ticket
              | Ready _ | Failed _ -> ())
            p.slots)
      lp.pendings;
    lp.pendings <- List.filter (fun p -> p.pconn != conn) lp.pendings;
    lp.conns <- List.filter (fun c -> c != conn) lp.conns
  end

(* ------------------------------------------------------------------ *)
(* Admission                                                           *)
(* ------------------------------------------------------------------ *)

let take_tokens st conn n =
  let cfg = st.State.cfg in
  if cfg.State.client_rate <= 0. then true
  else begin
    let b = conn.bucket in
    let now = Unix.gettimeofday () in
    b.tokens <-
      Float.min cfg.State.client_burst
        (b.tokens +. ((now -. b.last) *. cfg.State.client_rate));
    b.last <- now;
    let n = float_of_int n in
    if b.tokens >= n then begin
      b.tokens <- b.tokens -. n;
      true
    end
    else false
  end

(* [Ok slot] or [Error ()] when the scheduler shed the solve. *)
let admit lp ~deadline root =
  let st = lp.w.st in
  let key = State.request_key st root in
  match Cache.lookup st.State.cfg.State.cache key with
  | Some result -> Ok (Ready (Protocol.Hit, result))
  | None -> (
    match
      Scheduler.submit st.State.sched ~key (State.make_job st ~deadline root)
    with
    | `Accepted ticket -> Ok (Waiting { key; ticket })
    | `Overloaded -> Error ())

let abandon_slots lp slots =
  List.iter
    (function
      | Waiting { ticket; _ } -> Scheduler.abandon lp.w.st.State.sched ticket
      | Ready _ | Failed _ -> ())
    slots

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let parse_roots specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match Specs.Spec_parser.parse s with
      | root -> go (root :: acc) rest
      | exception Specs.Spec_parser.Error e ->
        Error (Specs.Spec_parser.error_to_string e))
  in
  go [] specs

let overloaded message = Protocol.Error { kind = Protocol.Overloaded; message }

(* The end-to-end deadline is fixed here, at enqueue: the tighter of the
   server default and the client's own [timeout], measured from now.  A
   solve that starts late inherits less wall budget, and one that starts
   after the deadline is shed (State.make_job). *)
let effective_deadline st req_timeout =
  let budget =
    match (st.State.cfg.State.timeout, req_timeout) with
    | Some a, Some b -> Some (Float.min a b)
    | Some a, None -> Some a
    | None, b -> b
  in
  Option.map (fun t -> Unix.gettimeofday () +. t) budget

let solve_request lp conn ~id ~install ~timeout specs =
  let st = lp.w.st in
  if Atomic.get st.State.draining then
    reply conn ~id (overloaded "server draining: not accepting new solves")
  else
    match parse_roots specs with
    | Error msg ->
      reply conn ~id (Protocol.Error { kind = Protocol.Bad_request; message = msg })
    | Ok roots -> (
      if not (take_tokens st conn (List.length roots)) then begin
        Atomic.incr st.State.n_throttled;
        reply conn ~id
          (overloaded
             (Printf.sprintf
                "client rate limited (%.3g solves/s sustained, burst %.3g)"
                st.State.cfg.State.client_rate st.State.cfg.State.client_burst))
      end
      else
        let deadline = effective_deadline st timeout in
        let rec fill acc = function
          | [] -> Ok (List.rev acc)
          | root :: rest -> (
            match admit lp ~deadline root with
            | Ok slot -> fill (slot :: acc) rest
            | Error () ->
              abandon_slots lp acc;
              Error ())
        in
        match fill [] roots with
        | Error () ->
          reply conn ~id
            (overloaded
               (Printf.sprintf "server at capacity (%d solves in flight)"
                  st.State.cfg.State.max_pending))
        | Ok slots ->
          lp.pendings <-
            { pconn = conn; req_id = id; slots = Array.of_list slots; install }
            :: lp.pendings)

(* Hand a connection over to the replication hub: from here on the socket
   carries server-pushed record frames and follower acks, not the
   request/response protocol, and a dedicated hub domain owns its IO.  The
   worker flushes what it still owes, forgets the fd (without closing it)
   and never selects on it again. *)
let detach_for_replication lp conn =
  unregister_fd lp.w conn.fd;
  (try Unix.clear_nonblock conn.fd with Unix.Unix_error _ -> ());
  if conn.out <> "" then begin
    (try ignore (Unix.write_substring conn.fd conn.out 0 (String.length conn.out))
     with Unix.Unix_error _ -> ());
    conn.out <- ""
  end;
  conn.alive <- false;
  List.iter
    (fun p ->
      if p.pconn == conn then abandon_slots lp (Array.to_list p.slots))
    lp.pendings;
  lp.pendings <- List.filter (fun p -> p.pconn != conn) lp.pendings;
  lp.conns <- List.filter (fun c -> c != conn) lp.conns

let handle_request lp conn ~id req =
  let st = lp.w.st in
  Atomic.incr st.State.n_requests;
  if Asp.Fault.service_fires Asp.Fault.Worker_crash then
    failwith "injected worker crash";
  if Asp.Fault.service_fires Asp.Fault.Worker_wedge then
    (* block the event loop long enough for the supervisor's heartbeat
       monitor to notice *)
    Unix.sleepf 2.0;
  match req with
  | Protocol.Stats ->
    reply conn ~id
      (Protocol.Stats_reply (State.stats_json ~workers:lp.w.n_workers st))
  | Protocol.Shutdown ->
    reply conn ~id Protocol.Bye;
    Atomic.set st.State.draining true
  | Protocol.Solve { spec; timeout } ->
    solve_request lp conn ~id ~install:None ~timeout [ spec ]
  | Protocol.Install { spec; timeout } ->
    if State.read_only st then
      reply conn ~id
        (Protocol.Error
           {
             kind = Protocol.Read_only;
             message =
               "read-only follower: installs go to the primary (or promote)";
           })
    else solve_request lp conn ~id ~install:(Some spec) ~timeout [ spec ]
  | Protocol.Solve_many { specs; timeout } -> (
    match specs with
    | [] -> reply conn ~id (Protocol.Results [])
    | _ -> solve_request lp conn ~id ~install:None ~timeout specs)
  | Protocol.Promote ->
    let epoch = State.promote st in
    reply conn ~id (Protocol.Promoted { epoch })
  | Protocol.Repl_subscribe { epoch; from_seq } -> (
    match st.State.cfg.State.repl with
    | None ->
      reply conn ~id
        (Protocol.Error
           {
             kind = Protocol.Bad_request;
             message = "replication unavailable (daemon has no journal)";
           })
    | Some hub ->
      let fd = conn.fd in
      detach_for_replication lp conn;
      Replica.adopt hub fd ~epoch ~from_seq)
  | Protocol.Repl_ack _ ->
    (* acks belong on a subscription socket, which never reaches here *)
    reply conn ~id
      (Protocol.Error
         {
           kind = Protocol.Bad_request;
           message = "repl_ack outside a replication subscription";
         })

let handle_line lp conn line =
  let bad message =
    reply conn ~id:0 (Protocol.Error { kind = Protocol.Bad_request; message })
  in
  match Json.of_string line with
  | Error m -> bad ("invalid JSON: " ^ m)
  | Ok j -> (
    match Protocol.request_of_json j with
    | Error m -> bad m
    | Ok (id, req) -> handle_request lp conn ~id req)

(* ------------------------------------------------------------------ *)
(* Pending-request progress                                            *)
(* ------------------------------------------------------------------ *)

let exn_response = function
  | Concretize.Facts.Unknown_package p ->
    Protocol.Error
      { kind = Protocol.Unknown_package p; message = "unknown package " ^ p }
  | exn ->
    Protocol.Error { kind = Protocol.Internal; message = Printexc.to_string exn }

let cacheable = function C.Concrete { quality = `Optimal; _ } -> true | _ -> false

(* Advance one pending request; [true] when it was answered (or its client
   left) and can be dropped. *)
let advance lp p =
  let st = lp.w.st in
  if not p.pconn.alive then true
  else begin
    Array.iteri
      (fun i slot ->
        match slot with
        | Ready _ | Failed _ -> ()
        | Waiting { key; ticket } -> (
          match Scheduler.poll st.State.sched ticket with
          | `Pending -> ()
          | `Done (Error exn) -> p.slots.(i) <- Failed exn
          | `Done (Ok result) ->
            (* several waiters may share the job: first one stores *)
            if
              cacheable result
              && not (Cache.mem st.State.cfg.State.cache key)
            then Cache.store st.State.cfg.State.cache key result;
            p.slots.(i) <- Ready (Protocol.Miss, result)))
      p.slots;
    let all_done =
      Array.for_all (function Waiting _ -> false | _ -> true) p.slots
    in
    if not all_done then false
    else begin
      let failure =
        Array.fold_left
          (fun acc slot ->
            match (acc, slot) with
            | None, Failed exn -> Some exn
            | acc, _ -> acc)
          None p.slots
      in
      (match failure with
      | Some exn -> reply p.pconn ~id:p.req_id (exn_response exn)
      | None -> (
        let results =
          Array.to_list
            (Array.map
               (function
                 | Ready (c, r) -> (c, r)
                 | Waiting _ | Failed _ -> assert false)
               p.slots)
        in
        match (p.install, results) with
        | Some spec_text, [ (_, C.Concrete s) ] ->
          let hashes = State.record_install st s in
          reply p.pconn ~id:p.req_id
            (Protocol.Installed
               {
                 root = spec_text;
                 hashes;
                 total = Pkg.Database.size (State.db st);
               })
        | Some _, [ (cache, result) ] | None, [ (cache, result) ] ->
          (* an install whose solve did not produce a spec reports the
             outcome instead of recording anything *)
          reply p.pconn ~id:p.req_id (Protocol.Result { cache; result })
        | _, results -> reply p.pconn ~id:p.req_id (Protocol.Results results)));
      true
    end
  end

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

let read_into lp conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.fd buf 0 4096 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn lp conn
  | 0 -> close_conn lp conn
  | n ->
    conn.inbuf <- conn.inbuf ^ Bytes.sub_string buf 0 n;
    let rec lines () =
      match String.index_opt conn.inbuf '\n' with
      | None -> ()
      | Some nl ->
        let line = String.sub conn.inbuf 0 nl in
        conn.inbuf <-
          String.sub conn.inbuf (nl + 1) (String.length conn.inbuf - nl - 1);
        let line =
          (* tolerate CRLF clients *)
          if String.length line > 0 && line.[String.length line - 1] = '\r'
          then String.sub line 0 (String.length line - 1)
          else line
        in
        if String.trim line <> "" then handle_line lp conn line;
        if conn.alive then lines ()
    in
    lines ()

let write_out lp conn =
  let len = String.length conn.out in
  if len > 0 then
    if Asp.Fault.service_fires Asp.Fault.Drop_socket then close_conn lp conn
    else if Asp.Fault.service_fires Asp.Fault.Truncate_response then begin
      (try ignore (Unix.write_substring conn.fd conn.out 0 (len / 2))
       with Unix.Unix_error _ -> ());
      close_conn lp conn
    end
    else if Asp.Fault.service_fires Asp.Fault.Delay_response then
      (* hold the reply back one event-loop round *)
      ()
    else
      match Unix.write_substring conn.fd conn.out 0 len with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> close_conn lp conn
      | n -> conn.out <- String.sub conn.out n (len - n)

let adopt_incoming lp =
  let w = lp.w in
  Mutex.lock w.inq_mutex;
  let fds = Queue.fold (fun acc fd -> fd :: acc) [] w.inq in
  Queue.clear w.inq;
  Mutex.unlock w.inq_mutex;
  List.iter
    (fun fd ->
      Unix.set_nonblock fd;
      let now = Unix.gettimeofday () in
      let bucket = { tokens = w.st.State.cfg.State.client_burst; last = now } in
      lp.conns <- { fd; inbuf = ""; out = ""; alive = true; bucket } :: lp.conns)
    (List.rev fds)

let drain_wake lp =
  let buf = Bytes.create 64 in
  let rec go () =
    match Unix.read lp.w.wake_r buf 0 64 with
    | 64 -> go ()
    | _ -> ()
    | exception Unix.Unix_error _ -> ()
  in
  go ()

let quiesced lp =
  lp.pendings = [] && List.for_all (fun c -> c.out = "") lp.conns

(* Stop now: cancel whatever is still waiting, close every connection —
   including ones still queued in the inbox that this loop never adopted
   (a connection accepted in the instant before shutdown must see EOF, not
   hang on a silent fd). *)
let teardown lp =
  adopt_incoming lp;
  List.iter (fun p -> abandon_slots lp (Array.to_list p.slots)) lp.pendings;
  lp.pendings <- [];
  List.iter (fun c -> close_conn lp c) lp.conns

let run w =
  let lp = { w; conns = []; pendings = []; drain_deadline = None } in
  let st = w.st in
  let should_exit () =
    if Atomic.get st.State.stopping || Atomic.get w.quarantined then true
    else if Atomic.get st.State.draining then begin
      (match lp.drain_deadline with
      | None -> lp.drain_deadline <- Some (Unix.gettimeofday () +. w.drain_grace)
      | Some _ -> ());
      if quiesced lp then begin
        Atomic.set w.drained true;
        (* stay alive until the supervisor flips [stopping]: other workers
           may still be finishing *)
        false
      end
      else
        match lp.drain_deadline with
        | Some d when Unix.gettimeofday () > d -> true
        | _ -> false
    end
    else false
  in
  while not (should_exit ()) do
    Atomic.set w.heartbeat (Unix.gettimeofday ());
    adopt_incoming lp;
    let rfds = w.wake_r :: List.map (fun c -> c.fd) lp.conns in
    let wfds =
      List.filter_map (fun c -> if c.out <> "" then Some c.fd else None) lp.conns
    in
    let r, wr, _ =
      match Unix.select rfds wfds [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ([], [], [])
      | x -> x
    in
    if List.memq w.wake_r r then drain_wake lp;
    List.iter (fun c -> if c.alive && List.memq c.fd r then read_into lp c) lp.conns;
    List.iter (fun c -> if c.alive && List.memq c.fd wr then write_out lp c) lp.conns;
    lp.pendings <- List.filter (fun p -> not (advance lp p)) lp.pendings
  done;
  teardown lp

(* ------------------------------------------------------------------ *)
(* Lifecycle (called by the supervisor)                                *)
(* ------------------------------------------------------------------ *)

let start st ~id ~n_workers ~drain_grace =
  let wake_r, wake_w = Unix.pipe () in
  Unix.set_nonblock wake_r;
  Unix.set_nonblock wake_w;
  let w =
    {
      id;
      st;
      n_workers;
      drain_grace;
      inq = Queue.create ();
      inq_mutex = Mutex.create ();
      wake_r;
      wake_w;
      heartbeat = Atomic.make (Unix.gettimeofday ());
      status = Atomic.make Running;
      quarantined = Atomic.make false;
      drained = Atomic.make false;
      live_fds = Hashtbl.create 16;
      fds_mutex = Mutex.create ();
      domain = None;
    }
  in
  let d =
    Domain.spawn (fun () ->
        match run w with
        | () -> Atomic.set w.status Stopped
        | exception exn ->
          (* an escaped exception is a worker crash: record it and die; the
             supervisor replaces the worker and closes the fds we leaked *)
          Atomic.set w.status (Crashed (Printexc.to_string exn)))
  in
  w.domain <- Some d;
  w

let assign w fd =
  register_fd w fd;
  Mutex.lock w.inq_mutex;
  Queue.push fd w.inq;
  Mutex.unlock w.inq_mutex;
  (try ignore (Unix.write_substring w.wake_w "x" 0 1)
   with Unix.Unix_error _ -> ())

let wake w =
  try ignore (Unix.write_substring w.wake_w "x" 0 1)
  with Unix.Unix_error _ -> ()

let status w = Atomic.get w.status
let heartbeat_age w now = now -. Atomic.get w.heartbeat
let quarantine w = Atomic.set w.quarantined true
let is_drained w = Atomic.get w.drained

(* After a crash: the dead domain cannot close its connections, so the
   supervisor does — clients observe EOF and their retry layer reconnects
   onto a healthy worker. *)
let close_remaining w =
  Mutex.lock w.fds_mutex;
  let fds = Hashtbl.fold (fun fd () acc -> fd :: acc) w.live_fds [] in
  Hashtbl.reset w.live_fds;
  Mutex.unlock w.fds_mutex;
  List.iter (fun fd -> try Unix.close fd with Unix.Unix_error _ -> ()) fds

let close_pipes w =
  (try Unix.close w.wake_r with Unix.Unix_error _ -> ());
  try Unix.close w.wake_w with Unix.Unix_error _ -> ()

let join w =
  match w.domain with
  | Some d ->
    Domain.join d;
    w.domain <- None
  | None -> ()
