type config = {
  socket_path : string;
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;
  db : Pkg.Database.t;
  db_path : string option;
  journal_path : string option;
  journal_max_bytes : int;
  follow : string option;
  repl_ack : Replica.ack_mode;
  cache : Cache.t;
  workers : int;
  jobs : int;
  max_pending : int;
  timeout : float option;
  client_rate : float;
  client_burst : float;
  drain_grace : float;
  wedge_timeout : float;
  crash : (State.crash_point * (unit -> unit)) option;
}

let default_config ~socket_path ~repo ~db =
  {
    socket_path;
    repo;
    solver = Asp.Config.default;
    db;
    db_path = None;
    journal_path = None;
    journal_max_bytes = 0;
    follow = None;
    repl_ack = Replica.Ack_async;
    cache = Cache.create ();
    workers = 2;
    jobs = 1;
    max_pending = 8;
    timeout = None;
    client_rate = 0.;
    client_burst = 8.;
    drain_grace = 5.0;
    wedge_timeout = 10.0;
    crash = None;
  }

let state_config (cfg : config) journal repl =
  {
    State.repo = cfg.repo;
    solver = cfg.solver;
    cache = cfg.cache;
    db = cfg.db;
    db_path = cfg.db_path;
    journal;
    journal_max_bytes = cfg.journal_max_bytes;
    repl;
    follower = Option.is_some cfg.follow;
    timeout = cfg.timeout;
    client_rate = cfg.client_rate;
    client_burst = cfg.client_burst;
    max_pending = cfg.max_pending;
    crash = cfg.crash;
  }

let serve ?on_ready ?(signals = false) ?(replayed = 0) cfg =
  if cfg.follow <> None && cfg.journal_path = None then
    invalid_arg "Daemon.serve: --follow requires a journal (durable acks)";
  let journal = Option.map Journal.open_ cfg.journal_path in
  (* every journaled daemon gets a hub: a follower's hub is inert until
     promotion (no installs, no subscribers), after which it serves the
     {e next} generation of followers *)
  let hub =
    Option.map (fun j -> Replica.create_hub ~mode:cfg.repl_ack j) journal
  in
  let st = State.create ~jobs:(max 1 cfg.jobs) (state_config cfg journal hub) in
  Atomic.set st.State.n_replayed replayed;
  Option.iter
    (fun h ->
      Replica.set_snapshot h (fun () ->
          Pkg.Database.render_string (State.db st)))
    hub;
  (* follower mode: stream the primary's journal into our own state; the
     loop stops on promotion (State.promote fires on_promote) or shutdown *)
  let follower =
    Option.map
      (fun primary ->
        let fol =
          Replica.start_follower ~primary
            {
              Replica.fc_position = (fun () -> State.replica_position st);
              fc_apply =
                (fun ~epoch ~seq ~intent ~commit ~spec ->
                  State.apply_replicated st ~epoch ~seq ~intent ~commit ~spec);
              fc_snapshot =
                (fun ~epoch ~next_seq ~db ->
                  State.install_snapshot st ~epoch ~next_seq ~db);
              fc_reset = (fun ~epoch -> State.reset_replica st ~epoch);
            }
        in
        st.State.on_promote := (fun () -> Replica.stop_follower fol);
        st.State.repl_extra := (fun () -> Replica.follower_stats fol);
        fol)
      cfg.follow
  in
  (* SIGTERM = graceful drain; a second SIGTERM forces an immediate stop.
     Installed only when asked ([spack_serve]): the test harness runs the
     daemon inside its own process and must not hijack process signals. *)
  let previous = ref None in
  if signals then
    previous :=
      Some
        (Sys.signal Sys.sigterm
           (Sys.Signal_handle
              (fun _ ->
                if Atomic.get st.State.draining then
                  Atomic.set st.State.stopping true
                else Atomic.set st.State.draining true)));
  Fun.protect
    ~finally:(fun () ->
      (match !previous with
      | Some h -> ( try Sys.set_signal Sys.sigterm h with Sys_error _ -> ())
      | None -> ());
      Option.iter Replica.stop_follower follower;
      Option.iter Replica.shutdown_hub hub;
      State.persist st;
      Asp.Pool.shutdown st.State.pool)
    (fun () ->
      Supervisor.run ?on_ready
        {
          Supervisor.socket_path = cfg.socket_path;
          workers = max 1 cfg.workers;
          drain_grace = cfg.drain_grace;
          wedge_timeout = cfg.wedge_timeout;
        }
        st)
