module C = Concretize.Concretizer

type config = {
  socket_path : string;
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;
  db : Pkg.Database.t;
  db_path : string option;
  cache : Cache.t;
  jobs : int;
  max_pending : int;
  timeout : float option;
}

(* ------------------------------------------------------------------ *)
(* Connections                                                         *)
(* ------------------------------------------------------------------ *)

type conn = {
  fd : Unix.file_descr;
  mutable inbuf : string;  (* bytes read but not yet terminated by '\n' *)
  mutable out : string;  (* bytes owed to the client *)
  mutable alive : bool;
}

(* A request the loop is still waiting on.  [slots] covers both shapes:
   [solve] is a one-slot batch. *)
type slot =
  | Ready of Protocol.cache_status * C.result
  | Waiting of { key : string; ticket : C.result Scheduler.ticket }
  | Failed of exn

type pending = {
  pconn : conn;
  req_id : int;
  slots : slot array;
  install : string option;  (* spec text: record the result when done *)
}

type state = {
  cfg : config;
  sched : C.result Scheduler.t;
  substrate : Concretize.Substrate.t;  (* shared ground-program bases *)
  mutable db : Pkg.Database.t;  (* swapped wholesale on install *)
  mutable conns : conn list;
  mutable pendings : pending list;
  mutable stopping : bool;
  started : float;
  mutable n_connections : int;
  mutable n_requests : int;
  mutable n_installs : int;
}

let send conn line = if conn.alive then conn.out <- conn.out ^ line ^ "\n"

let reply st conn ~id resp =
  send conn (Json.to_string (Protocol.response_to_json ~id resp));
  ignore st

let close_conn st conn =
  if conn.alive then begin
    conn.alive <- false;
    (try Unix.close conn.fd with Unix.Unix_error _ -> ());
    (* a gone client wants nothing: drop its pendings and let the scheduler
       cancel solves nobody else is waiting on *)
    List.iter
      (fun p ->
        if p.pconn == conn then
          Array.iter
            (function
              | Waiting { ticket; _ } -> Scheduler.abandon st.sched ticket
              | Ready _ | Failed _ -> ())
            p.slots)
      st.pendings;
    st.pendings <- List.filter (fun p -> p.pconn != conn) st.pendings;
    st.conns <- List.filter (fun c -> c != conn) st.conns
  end

(* ------------------------------------------------------------------ *)
(* Solve admission                                                     *)
(* ------------------------------------------------------------------ *)

let make_job st root =
  (* the deadline derives from request arrival, not job start: time spent
     queued behind other solves counts against the request *)
  let deadline =
    Option.map (fun t -> Unix.gettimeofday () +. t) st.cfg.timeout
  in
  let db = st.db in
  fun ~cancel ->
    let wall =
      Option.map (fun d -> Float.max 0.01 (d -. Unix.gettimeofday ())) deadline
    in
    let budget =
      Asp.Budget.start ~cancel { Asp.Budget.no_limits with Asp.Budget.wall }
    in
    C.solve ~config:st.cfg.solver ~installed:db ~budget
      ~substrate:st.substrate ~repo:st.cfg.repo [ root ]

(* [Ok slot] or [Error ()] when the scheduler shed the solve. *)
let admit st root =
  let key =
    C.request_key ~config:st.cfg.solver ~installed:st.db ~repo:st.cfg.repo
      [ root ]
  in
  match Cache.lookup st.cfg.cache key with
  | Some result -> Ok (Ready (Protocol.Hit, result))
  | None -> (
    match Scheduler.submit st.sched ~key (make_job st root) with
    | `Accepted ticket -> Ok (Waiting { key; ticket })
    | `Overloaded -> Error ())

let abandon_slots st slots =
  List.iter
    (function
      | Waiting { ticket; _ } -> Scheduler.abandon st.sched ticket
      | Ready _ | Failed _ -> ())
    slots

(* ------------------------------------------------------------------ *)
(* Request handling                                                    *)
(* ------------------------------------------------------------------ *)

let stats_json st =
  let c = Cache.stats st.cfg.cache in
  let s = Scheduler.stats st.sched in
  let sub = Concretize.Substrate.counters st.substrate in
  Json.Obj
    [
      ( "cache",
        Json.Obj
          [
            ("hits", Json.Int c.Cache.hits);
            ("misses", Json.Int c.Cache.misses);
            ("evictions", Json.Int c.Cache.evictions);
            ("stores", Json.Int c.Cache.stores);
            ("mem_entries", Json.Int c.Cache.mem_entries);
            ("disk_hits", Json.Int c.Cache.disk_hits);
          ] );
      ( "substrate",
        Json.Obj
          [
            ("entries", Json.Int (Concretize.Substrate.size st.substrate));
            ("base_builds", Json.Int sub.Concretize.Substrate.base_builds);
            ("extensions", Json.Int sub.Concretize.Substrate.extensions);
            ( "narrowed_invalidations",
              Json.Int sub.Concretize.Substrate.delta_applies );
            ("full_invalidations", Json.Int sub.Concretize.Substrate.drops);
            ("fallbacks", Json.Int sub.Concretize.Substrate.fallbacks);
            ("evictions", Json.Int sub.Concretize.Substrate.evictions);
          ] );
      ( "scheduler",
        Json.Obj
          [
            ("submitted", Json.Int s.Scheduler.submitted);
            ("deduped", Json.Int s.Scheduler.deduped);
            ("shed", Json.Int s.Scheduler.shed);
            ("cancelled", Json.Int s.Scheduler.cancelled);
            ("completed", Json.Int s.Scheduler.completed);
            ("pending", Json.Int s.Scheduler.pending);
          ] );
      ( "server",
        Json.Obj
          [
            ("uptime", Json.Float (Unix.gettimeofday () -. st.started));
            ("connections", Json.Int st.n_connections);
            ("requests", Json.Int st.n_requests);
            ("installs", Json.Int st.n_installs);
            ("db_size", Json.Int (Pkg.Database.size st.db));
            ("db_fingerprint", Json.Str (Pkg.Database.fingerprint st.db));
          ] );
    ]

let parse_roots specs =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | s :: rest -> (
      match Specs.Spec_parser.parse s with
      | root -> go (root :: acc) rest
      | exception Specs.Spec_parser.Error e ->
        Error (Specs.Spec_parser.error_to_string e))
  in
  go [] specs

let solve_request st conn ~id ~install specs =
  match parse_roots specs with
  | Error msg ->
    reply st conn ~id (Protocol.Error { kind = Protocol.Bad_request; message = msg })
  | Ok roots -> (
    let rec fill acc = function
      | [] -> Ok (List.rev acc)
      | root :: rest -> (
        match admit st root with
        | Ok slot -> fill (slot :: acc) rest
        | Error () ->
          abandon_slots st acc;
          Error ())
    in
    match fill [] roots with
    | Error () ->
      reply st conn ~id
        (Protocol.Error
           {
             kind = Protocol.Overloaded;
             message =
               Printf.sprintf "server at capacity (%d solves in flight)"
                 st.cfg.max_pending;
           })
    | Ok slots ->
      st.pendings <-
        { pconn = conn; req_id = id; slots = Array.of_list slots; install }
        :: st.pendings)

let handle_request st conn ~id req =
  st.n_requests <- st.n_requests + 1;
  match req with
  | Protocol.Stats -> reply st conn ~id (Protocol.Stats_reply (stats_json st))
  | Protocol.Shutdown ->
    reply st conn ~id Protocol.Bye;
    st.stopping <- true
  | Protocol.Solve spec -> solve_request st conn ~id ~install:None [ spec ]
  | Protocol.Install spec -> solve_request st conn ~id ~install:(Some spec) [ spec ]
  | Protocol.Solve_many specs -> (
    match specs with
    | [] -> reply st conn ~id (Protocol.Results [])
    | _ -> solve_request st conn ~id ~install:None specs)

let handle_line st conn line =
  let bad message =
    reply st conn ~id:0
      (Protocol.Error { kind = Protocol.Bad_request; message })
  in
  match Json.of_string line with
  | Error m -> bad ("invalid JSON: " ^ m)
  | Ok j -> (
    match Protocol.request_of_json j with
    | Error m -> bad m
    | Ok (id, req) -> handle_request st conn ~id req)

(* ------------------------------------------------------------------ *)
(* Install bookkeeping                                                 *)
(* ------------------------------------------------------------------ *)

(* Copy-and-extend, never mutate: worker domains may still be reading the
   current database value, so installs build a fresh one and swap it in. *)
let record_install st (s : C.success) =
  let old = st.db in
  let db = Pkg.Database.create () in
  List.iter (Pkg.Database.add_record db) (Pkg.Database.records old);
  Pkg.Database.add_concrete db s.C.spec;
  let fresh =
    List.filter_map
      (fun (r : Pkg.Database.record) ->
        match Pkg.Database.find old r.Pkg.Database.hash with
        | Some _ -> None
        | None -> Some (r.Pkg.Database.name, r.Pkg.Database.hash))
      (Pkg.Database.records db)
  in
  st.db <- db;
  (* rebase the substrate's ground bases over the install delta instead of
     discarding them *)
  Concretize.Substrate.on_install st.substrate ~repo:st.cfg.repo ~db;
  st.n_installs <- st.n_installs + 1;
  Option.iter (Pkg.Database.save db) st.cfg.db_path;
  fresh

(* ------------------------------------------------------------------ *)
(* Pending-request progress                                            *)
(* ------------------------------------------------------------------ *)

let exn_response = function
  | Concretize.Facts.Unknown_package p ->
    Protocol.Error
      {
        kind = Protocol.Unknown_package p;
        message = "unknown package " ^ p;
      }
  | exn ->
    Protocol.Error { kind = Protocol.Internal; message = Printexc.to_string exn }

let cacheable = function C.Concrete { quality = `Optimal; _ } -> true | _ -> false

(* Advance one pending request; [true] when it was answered (or its client
   left) and can be dropped. *)
let advance st p =
  if not p.pconn.alive then true
  else begin
    Array.iteri
      (fun i slot ->
        match slot with
        | Ready _ | Failed _ -> ()
        | Waiting { key; ticket } -> (
          match Scheduler.poll st.sched ticket with
          | `Pending -> ()
          | `Done (Error exn) -> p.slots.(i) <- Failed exn
          | `Done (Ok result) ->
            (* several waiters may share the job: first one stores *)
            if cacheable result && not (Cache.mem st.cfg.cache key) then
              Cache.store st.cfg.cache key result;
            p.slots.(i) <- Ready (Protocol.Miss, result)))
      p.slots;
    let all_done =
      Array.for_all (function Waiting _ -> false | _ -> true) p.slots
    in
    if not all_done then false
    else begin
      let failure =
        Array.fold_left
          (fun acc slot ->
            match (acc, slot) with
            | None, Failed exn -> Some exn
            | acc, _ -> acc)
          None p.slots
      in
      (match failure with
      | Some exn -> reply st p.pconn ~id:p.req_id (exn_response exn)
      | None -> (
        let results =
          Array.to_list
            (Array.map
               (function
                 | Ready (c, r) -> (c, r)
                 | Waiting _ | Failed _ -> assert false)
               p.slots)
        in
        match (p.install, results) with
        | Some spec_text, [ (_, C.Concrete s) ] ->
          let hashes = record_install st s in
          reply st p.pconn ~id:p.req_id
            (Protocol.Installed
               { root = spec_text; hashes; total = Pkg.Database.size st.db })
        | Some _, [ (cache, result) ] | None, [ (cache, result) ] ->
          (* an install whose solve did not produce a spec reports the
             outcome instead of recording anything *)
          reply st p.pconn ~id:p.req_id (Protocol.Result { cache; result })
        | _, results -> reply st p.pconn ~id:p.req_id (Protocol.Results results)));
      true
    end
  end

(* ------------------------------------------------------------------ *)
(* The event loop                                                      *)
(* ------------------------------------------------------------------ *)

let read_into st conn =
  let buf = Bytes.create 4096 in
  match Unix.read conn.fd buf 0 4096 with
  | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
    -> ()
  | exception Unix.Unix_error _ -> close_conn st conn
  | 0 -> close_conn st conn
  | n ->
    conn.inbuf <- conn.inbuf ^ Bytes.sub_string buf 0 n;
    let rec lines () =
      match String.index_opt conn.inbuf '\n' with
      | None -> ()
      | Some nl ->
        let line = String.sub conn.inbuf 0 nl in
        conn.inbuf <-
          String.sub conn.inbuf (nl + 1) (String.length conn.inbuf - nl - 1);
        let line =
          (* tolerate CRLF clients *)
          if String.length line > 0 && line.[String.length line - 1] = '\r'
          then String.sub line 0 (String.length line - 1)
          else line
        in
        if String.trim line <> "" then handle_line st conn line;
        if conn.alive then lines ()
    in
    lines ()

let write_out st conn =
  let len = String.length conn.out in
  if len > 0 then
    match Unix.write_substring conn.fd conn.out 0 len with
    | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      -> ()
    | exception Unix.Unix_error _ -> close_conn st conn
    | n -> conn.out <- String.sub conn.out n (len - n)

let serve ?on_ready cfg =
  (match Sys.signal Sys.sigpipe Sys.Signal_ignore with
  | _ -> ()
  | exception Invalid_argument _ -> ());
  if Sys.file_exists cfg.socket_path then (
    try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  let listen_fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind listen_fd (Unix.ADDR_UNIX cfg.socket_path);
  Unix.listen listen_fd 64;
  Unix.set_nonblock listen_fd;
  let pool = Asp.Pool.create ~domains:(max 1 cfg.jobs) in
  let st =
    {
      cfg;
      sched = Scheduler.create ~pool ~max_pending:cfg.max_pending;
      substrate = Concretize.Substrate.create ();
      db = cfg.db;
      conns = [];
      pendings = [];
      stopping = false;
      started = Unix.gettimeofday ();
      n_connections = 0;
      n_requests = 0;
      n_installs = 0;
    }
  in
  Option.iter (fun f -> f ()) on_ready;
  let accept_all () =
    let rec go () =
      match Unix.accept listen_fd with
      | exception
          Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
        -> ()
      | exception Unix.Unix_error _ -> ()
      | fd, _ ->
        Unix.set_nonblock fd;
        st.n_connections <- st.n_connections + 1;
        st.conns <- { fd; inbuf = ""; out = ""; alive = true } :: st.conns;
        go ()
    in
    go ()
  in
  let flushed () = List.for_all (fun c -> c.out = "") st.conns in
  let stop_deadline = ref None in
  let should_stop () =
    st.stopping
    &&
    (flushed ()
    ||
    match !stop_deadline with
    | None ->
      (* give laggard clients a bounded grace period to drain *)
      stop_deadline := Some (Unix.gettimeofday () +. 2.0);
      false
    | Some d -> Unix.gettimeofday () > d)
  in
  while not (should_stop ()) do
    let rfds =
      if st.stopping then List.map (fun c -> c.fd) st.conns
      else listen_fd :: List.map (fun c -> c.fd) st.conns
    in
    let wfds =
      List.filter_map
        (fun c -> if c.out <> "" then Some c.fd else None)
        st.conns
    in
    let r, w, _ =
      match Unix.select rfds wfds [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ([], [], [])
      | x -> x
    in
    if List.memq listen_fd r then accept_all ();
    List.iter
      (fun c -> if c.alive && List.memq c.fd r then read_into st c)
      st.conns;
    List.iter
      (fun c -> if c.alive && List.memq c.fd w then write_out st c)
      st.conns;
    st.pendings <- List.filter (fun p -> not (advance st p)) st.pendings
  done;
  List.iter (fun c -> close_conn st c) st.conns;
  (try Unix.close listen_fd with Unix.Unix_error _ -> ());
  (try Unix.unlink cfg.socket_path with Unix.Unix_error _ -> ());
  Asp.Pool.shutdown pool
