(** The concretization daemon: a supervised, multi-worker Unix-domain-socket
    service in front of the solver.

    Architecture (PR 7): a {!Supervisor} accepts connections and shards
    them round-robin across [workers] {!Worker} event-loop domains; every
    worker operates on one shared {!State} — solve cache, ground-program
    substrate, single-flight {!Scheduler} over a pool of [jobs] solver
    domains, and the installed database (an atomic snapshot swapped
    wholesale on install).  Workers are crash domains: an escaped
    exception kills one worker, the supervisor restarts it and closes the
    connections it leaked; other clients never notice.  Wedged workers
    (stalled heartbeat) are quarantined and replaced.

    Robustness features on the request path:

    - {b end-to-end deadlines}: the per-request wall budget (the tighter
      of [timeout] and the client's own [timeout] field) is fixed at
      {e enqueue}; time spent queued counts, and a job starting past its
      deadline is shed with a typed [Interrupted]/[Deadline] result
      instead of being solved;
    - {b admission control}: beyond the scheduler's [max_pending] shed, a
      per-client token bucket ([client_rate]/[client_burst], 0 = off)
      refuses a greedy client's excess with a typed [Overloaded] reply
      while other clients keep solving;
    - {b crash-safe installs}: installs flow through a write-ahead
      {!Journal} (intent fsynced before any state changes, commit marker
      after the database file is atomically published); a daemon killed
      mid-install recovers on restart via {!State.recover};
    - {b graceful drain}: a [shutdown] request (or SIGTERM with
      [~signals:true]) stops accepting, lets in-flight work finish within
      [drain_grace], persists the database and returns;
    - {b replication} (PR 9): with a journal, the daemon runs a
      {!Replica} hub shipping committed installs to hot-standby followers;
      [repl_ack] picks the client-ack durability point ([sync] = acked on
      two nodes).  With [follow], the daemon starts as a warm read-only
      follower of another daemon's socket (solves served locally, installs
      refused with a typed [Read_only]) until a [promote] request fences
      the old epoch and flips it to primary. *)

type config = {
  socket_path : string;
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;  (** preset/strategy/verify; limits are ignored —
                              [timeout] governs *)
  db : Pkg.Database.t;  (** initial installed database (post-recovery) *)
  db_path : string option;  (** persist the database here after installs *)
  journal_path : string option;  (** write-ahead install journal *)
  journal_max_bytes : int;
      (** checkpoint/compact the journal beyond this size; 0 = never *)
  follow : string option;
      (** start as a follower of this primary socket (requires a journal) *)
  repl_ack : Replica.ack_mode;  (** install-ack durability (default async) *)
  cache : Cache.t;
  workers : int;  (** connection-handling event-loop domains (at least 1) *)
  jobs : int;  (** solver domains (at least 1) *)
  max_pending : int;  (** distinct in-flight solves before shedding *)
  timeout : float option;  (** per-request deadline, seconds, from enqueue *)
  client_rate : float;  (** per-client sustained solves/second; 0 = off *)
  client_burst : float;  (** per-client token-bucket capacity *)
  drain_grace : float;  (** seconds granted to in-flight work on drain *)
  wedge_timeout : float;  (** worker heartbeat stall before quarantine; 0 = off *)
  crash : (State.crash_point * (unit -> unit)) option;
      (** test seam: simulate a crash at an install crash point *)
}

val default_config :
  socket_path:string -> repo:Pkg.Repo.t -> db:Pkg.Database.t -> config
(** A config with production-shaped defaults (2 workers, 1 solver domain,
    [max_pending] 8, no timeout, token bucket off, 5 s drain grace, 10 s
    wedge timeout, memory-only cache, no persistence). *)

val serve :
  ?on_ready:(unit -> unit) -> ?signals:bool -> ?replayed:int -> config -> unit
(** [replayed] seeds the stats counter of journal intents re-applied by the
    startup {!State.recover} pass (informational).
    Bind, listen and run until a [shutdown] request drains the service (or
    SIGTERM does, when [signals] is true — a second SIGTERM forces an
    immediate stop).  [on_ready] fires once the socket accepts
    connections.  A stale socket file at [socket_path] is replaced.
    Returns after every worker and solver domain joined, the database was
    persisted and the socket file removed. *)
