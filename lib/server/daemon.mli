(** The concretization daemon: a Unix-domain-socket service in front of the
    solver.

    One single-threaded event loop ([select]) owns all connections and all
    bookkeeping; solves run on an {!Asp.Pool} of worker domains and are
    polled, never awaited.  Per request the loop:

    + parses the newline-delimited JSON request ({!Protocol});
    + derives the content-addressed key ({!Concretize.Concretizer.request_key})
      and answers cache hits immediately ([cache = "hit"], the stored result
      verbatim — cost vector and [verified] flag intact);
    + otherwise admits the solve through {!Scheduler} (single-flight dedup,
      typed [Overloaded] shed) under a budget whose wall-clock limit derives
      from the request's arrival deadline;
    + on completion stores proven-optimal results in the cache and writes
      the reply — unless the client has disconnected, which abandoned the
      ticket and cancelled the solve.

    Solves share a {!Concretize.Substrate}: the request-independent part of
    each grounding (the name-skeleton base) is ground once, frozen, and
    every request extends it with only its own constraint facts — the
    [stats] reply's ["substrate"] section counts base builds, extensions,
    narrowed invalidations (install deltas rebased onto a base) and full
    invalidations (bases dropped).

    [install] concretizes, then records the winning DAG into a {e fresh}
    database value (copy + extend) and atomically swaps it in: in-flight
    solves keep reading the old immutable snapshot.  Invalidation is
    {e narrowed}: cache keys digest only the reuse-visible slice of the
    database ({!Concretize.Facts.reuse_digest}), so an install changes the
    keys — and the substrate rebases the bases — only of requests whose
    package closure can observe the new records; every other cached answer
    and frozen base survives. *)

type config = {
  socket_path : string;
  repo : Pkg.Repo.t;
  solver : Asp.Config.t;  (** preset/strategy/verify; limits are ignored —
                              [timeout] governs *)
  db : Pkg.Database.t;  (** initial installed database *)
  db_path : string option;  (** persist the database here after installs *)
  cache : Cache.t;
  jobs : int;  (** worker domains (at least 1) *)
  max_pending : int;  (** distinct in-flight solves before shedding *)
  timeout : float option;  (** per-request wall-clock deadline, seconds *)
}

val serve : ?on_ready:(unit -> unit) -> config -> unit
(** Bind, listen and run until a [shutdown] request.  [on_ready] fires once
    the socket accepts connections (tests synchronize on it).  A stale
    socket file at [socket_path] is replaced.  Returns after every worker
    domain joined and the socket file was removed. *)
