(* File format (append-only, line-oriented):

     spack-install-journal v1
     I <seq> <digest> <concrete spec as one JSON line>     (intent)
     C <seq> <digest>                                      (commit)

   Fields are tab-separated; the JSON payload never contains a raw tab or
   newline (Json escapes control characters).  Each line carries its own
   digest, so replay can tell a complete entry from a torn tail: the first
   line that fails to parse or verify ends the readable prefix, and
   recovery truncates the file there — a crash mid-append never poisons
   the entries before it.

   An intent is appended and fsynced *before* the install touches the
   database; the commit marker lands after the new database file was
   atomically published.  Replay therefore re-applies every intent it
   finds (committed or not): [Pkg.Database.add_record] is idempotent on
   the DAG hash, so re-applying a committed install is a no-op and an
   uncommitted one completes the interrupted install. *)

let format_header = "spack-install-journal v1"

type entry = {
  seq : int;
  spec : Specs.Spec.concrete;
  committed : bool;
}

type t = {
  path : string;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr option;
  mutable next_seq : int;
}

type replay = {
  entries : entry list;
  truncated : bool;  (** a torn or corrupt tail was dropped *)
  rotated : bool;  (** a stale-format file was moved aside *)
}

(* ---- line codec --------------------------------------------------- *)

let intent_digest seq payload =
  Specs.Spec.digest_strings [ "I"; string_of_int seq; payload ]

let commit_digest seq = Specs.Spec.digest_strings [ "C"; string_of_int seq ]

let intent_line seq payload =
  String.concat "\t" [ "I"; string_of_int seq; intent_digest seq payload; payload ]

let commit_line seq =
  String.concat "\t" [ "C"; string_of_int seq; commit_digest seq ]

(* The payload is the remainder after the third tab: JSON may contain
   escaped but never raw tabs, so three splits are enough. *)
let parse_line line =
  match String.index_opt line '\t' with
  | None -> None
  | Some t1 -> (
    let kind = String.sub line 0 t1 in
    let rest = String.sub line (t1 + 1) (String.length line - t1 - 1) in
    match kind with
    | "C" -> (
      match String.split_on_char '\t' rest with
      | [ seq; digest ] -> (
        match int_of_string_opt seq with
        | Some s when String.equal digest (commit_digest s) -> Some (`Commit s)
        | _ -> None)
      | _ -> None)
    | "I" -> (
      match String.index_opt rest '\t' with
      | None -> None
      | Some t2 -> (
        let seq = String.sub rest 0 t2 in
        let rest = String.sub rest (t2 + 1) (String.length rest - t2 - 1) in
        match String.index_opt rest '\t' with
        | None -> None
        | Some t3 -> (
          let digest = String.sub rest 0 t3 in
          let payload = String.sub rest (t3 + 1) (String.length rest - t3 - 1) in
          match int_of_string_opt seq with
          | Some s when String.equal digest (intent_digest s payload) -> (
            match Json.of_string payload with
            | Error _ -> None
            | Ok j -> (
              match Codec.concrete_of_json j with
              | Some spec -> Some (`Intent (s, spec))
              | None -> None))
          | _ -> None)))
    | _ -> None)

(* ---- replay ------------------------------------------------------- *)

(* Read the longest valid prefix: the header, then entries until the first
   line that fails to parse or verify.  [good_bytes] is where that prefix
   ends, so recovery can truncate a torn tail in place. *)
let scan path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let read_line () = try Some (input_line ic) with End_of_file -> None in
        match read_line () with
        | Some h when String.equal h format_header ->
          let good = ref (pos_in ic) in
          let items = ref [] in
          let torn = ref false in
          let rec go () =
            match read_line () with
            | None -> ()
            | Some line -> (
              (* a line not terminated by '\n' (the file ends inside it) is
                 torn even if its digest happens to verify *)
              let complete =
                let p = pos_in ic in
                seek_in ic (p - 1);
                let last = input_char ic in
                seek_in ic p;
                last = '\n'
              in
              match parse_line line with
              | Some item when complete ->
                items := item :: !items;
                good := pos_in ic;
                go ()
              | _ -> torn := true)
          in
          go ();
          Some (`Current (List.rev !items, !good, !torn))
        | Some _ -> Some `Stale
        | None -> Some `Empty)

let entries_of_items items =
  let committed = Hashtbl.create 16 in
  List.iter
    (function `Commit s -> Hashtbl.replace committed s () | `Intent _ -> ())
    items;
  List.filter_map
    (function
      | `Intent (seq, spec) ->
        Some { seq; spec; committed = Hashtbl.mem committed seq }
      | `Commit _ -> None)
    items

let replay path =
  if not (Sys.file_exists path) then
    { entries = []; truncated = false; rotated = false }
  else begin
    match scan path with
    | None | Some `Empty -> { entries = []; truncated = false; rotated = false }
    | Some `Stale ->
      (* a foreign or stale-format file is preserved for inspection, never
         misparsed: move it aside and start fresh *)
      (try Sys.rename path (path ^ ".stale") with Sys_error _ -> ());
      { entries = []; truncated = false; rotated = true }
    | Some (`Current (items, good_bytes, torn)) ->
      if torn then begin
        (* truncate the torn tail in place so later appends extend a
           well-formed file *)
        match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
          (try Unix.ftruncate fd good_bytes with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      end;
      { entries = entries_of_items items; truncated = torn; rotated = false }
  end

(* ---- appending ---------------------------------------------------- *)

let open_ path =
  let next_seq =
    match scan path with
    | Some (`Current (items, _, _)) ->
      List.fold_left
        (fun acc -> function
          | `Intent (s, _) | `Commit s -> max acc (s + 1))
        1 items
    | _ -> 1
  in
  { path; mutex = Mutex.create (); fd = None; next_seq }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Call with the lock held. *)
let ensure_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fresh = not (Sys.file_exists t.path) in
    let fd =
      Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    if fresh || (Unix.fstat fd).Unix.st_size = 0 then begin
      let h = format_header ^ "\n" in
      ignore (Unix.write_substring fd h 0 (String.length h))
    end;
    t.fd <- Some fd;
    fd

let write_line t line =
  let fd = ensure_fd t in
  let data = line ^ "\n" in
  if Asp.Fault.service_fires Asp.Fault.Journal_tear then begin
    (* a torn write: half the bytes reach the disk, no fsync — exactly what
       a crash mid-append leaves behind *)
    let half = String.length data / 2 in
    ignore (Unix.write_substring fd data 0 half)
  end
  else begin
    ignore (Unix.write_substring fd data 0 (String.length data));
    (try Unix.fsync fd with Unix.Unix_error _ -> ())
  end

let append_intent t spec =
  with_lock t (fun () ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let payload = Json.to_string (Codec.concrete_to_json spec) in
      write_line t (intent_line seq payload);
      seq)

let append_commit t seq = with_lock t (fun () -> write_line t (commit_line seq))

let reset t =
  with_lock t (fun () ->
      (match t.fd with
      | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.fd <- None
      | None -> ());
      let fd =
        Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644
      in
      let h = format_header ^ "\n" in
      ignore (Unix.write_substring fd h 0 (String.length h));
      (try Unix.fsync fd with Unix.Unix_error _ -> ());
      t.fd <- Some fd;
      t.next_seq <- 1)

let close t =
  with_lock t (fun () ->
      match t.fd with
      | Some fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.fd <- None
      | None -> ())
