(* File format (append-only, line-oriented):

     spack-install-journal v2 <epoch> <base_seq>
     I <seq> <digest> <concrete spec as one JSON line>     (intent)
     C <seq> <digest>                                      (commit)
     E <epoch> <digest>                                    (epoch bump)

   Fields are tab-separated; the JSON payload never contains a raw tab or
   newline (Json escapes control characters).  Each line carries its own
   digest, so replay can tell a complete entry from a torn tail: the first
   line that fails to parse or verify ends the readable prefix, and
   recovery truncates the file there — a crash mid-append never poisons
   the entries before it.

   The header carries the replication epoch (bumped on follower promotion,
   possibly overridden by a later E record) and the base sequence number:
   checkpointing truncates the journal after the database snapshot was
   saved, and [base_seq] is where the surviving suffix starts, so sequence
   numbers stay monotonic across compactions — replication followers key
   their resume position on them.  v1 files (no epoch) are read as epoch 1,
   base 1.

   An intent is appended and fsynced *before* the install touches the
   database; the commit marker lands after the new database file was
   atomically published.  Replay therefore re-applies every intent it
   finds (committed or not): [Pkg.Database.add_record] is idempotent on
   the DAG hash, so re-applying a committed install is a no-op and an
   uncommitted one completes the interrupted install. *)

let header_v1 = "spack-install-journal v1"
let header_prefix_v2 = "spack-install-journal v2"

let render_header ~epoch ~base_seq =
  Printf.sprintf "%s\t%d\t%d" header_prefix_v2 epoch base_seq

(* [Some (epoch, base_seq)] when the line is a valid header of any
   supported format version. *)
let parse_header h =
  if String.equal h header_v1 then Some (1, 1)
  else
    match String.split_on_char '\t' h with
    | [ p; e; b ] when String.equal p header_prefix_v2 -> (
      match (int_of_string_opt e, int_of_string_opt b) with
      | Some e, Some b when e >= 1 && b >= 1 -> Some (e, b)
      | _ -> None)
    | _ -> None

type entry = {
  seq : int;
  spec : Specs.Spec.concrete;
  committed : bool;
}

type t = {
  path : string;
  mutex : Mutex.t;
  mutable fd : Unix.file_descr option;
  mutable next_seq : int;
  mutable cur_epoch : int;
  mutable base : int;
}

type replay = {
  entries : entry list;
  epoch : int;  (** effective epoch (header, overridden by E records) *)
  truncated : bool;  (** a torn or corrupt tail was dropped *)
  rotated : bool;  (** a stale-format file was moved aside *)
}

(* ---- line codec --------------------------------------------------- *)

let intent_digest seq payload =
  Specs.Spec.digest_strings [ "I"; string_of_int seq; payload ]

let commit_digest seq = Specs.Spec.digest_strings [ "C"; string_of_int seq ]
let epoch_digest e = Specs.Spec.digest_strings [ "E"; string_of_int e ]

let intent_line seq payload =
  String.concat "\t" [ "I"; string_of_int seq; intent_digest seq payload; payload ]

let commit_line seq =
  String.concat "\t" [ "C"; string_of_int seq; commit_digest seq ]

let epoch_line e = String.concat "\t" [ "E"; string_of_int e; epoch_digest e ]

let render_intent seq spec =
  intent_line seq (Json.to_string (Codec.concrete_to_json spec))

let render_commit = commit_line

(* The payload is the remainder after the third tab: JSON may contain
   escaped but never raw tabs, so three splits are enough. *)
let parse_line line =
  match String.index_opt line '\t' with
  | None -> None
  | Some t1 -> (
    let kind = String.sub line 0 t1 in
    let rest = String.sub line (t1 + 1) (String.length line - t1 - 1) in
    match kind with
    | "C" -> (
      match String.split_on_char '\t' rest with
      | [ seq; digest ] -> (
        match int_of_string_opt seq with
        | Some s when String.equal digest (commit_digest s) -> Some (`Commit s)
        | _ -> None)
      | _ -> None)
    | "E" -> (
      match String.split_on_char '\t' rest with
      | [ e; digest ] -> (
        match int_of_string_opt e with
        | Some e when String.equal digest (epoch_digest e) -> Some (`Epoch e)
        | _ -> None)
      | _ -> None)
    | "I" -> (
      match String.index_opt rest '\t' with
      | None -> None
      | Some t2 -> (
        let seq = String.sub rest 0 t2 in
        let rest = String.sub rest (t2 + 1) (String.length rest - t2 - 1) in
        match String.index_opt rest '\t' with
        | None -> None
        | Some t3 -> (
          let digest = String.sub rest 0 t3 in
          let payload = String.sub rest (t3 + 1) (String.length rest - t3 - 1) in
          match int_of_string_opt seq with
          | Some s when String.equal digest (intent_digest s payload) -> (
            match Json.of_string payload with
            | Error _ -> None
            | Ok j -> (
              match Codec.concrete_of_json j with
              | Some spec -> Some (`Intent (s, spec))
              | None -> None))
          | _ -> None)))
    | _ -> None)

let parse = parse_line

(* ---- scanning ----------------------------------------------------- *)

type scanned = {
  s_items : ([ `Intent of int * Specs.Spec.concrete | `Commit of int | `Epoch of int ] * string) list;
      (* (parsed item, raw line) in append order *)
  s_epoch : int;
  s_base : int;
  s_good : int;  (* byte offset where the valid prefix ends *)
  s_torn : bool;
}

(* Read the longest valid prefix: the header, then entries until the first
   line that fails to parse or verify.  [s_good] is where that prefix
   ends, so recovery can truncate a torn tail in place. *)
let scan path =
  match open_in_bin path with
  | exception Sys_error _ -> None
  | ic ->
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () ->
        let read_line () = try Some (input_line ic) with End_of_file -> None in
        match read_line () with
        | Some h -> (
          match parse_header h with
          | None -> Some `Stale
          | Some (epoch, base) ->
            let good = ref (pos_in ic) in
            let items = ref [] in
            let eff_epoch = ref epoch in
            let torn = ref false in
            let rec go () =
              match read_line () with
              | None -> ()
              | Some line -> (
                (* a line not terminated by '\n' (the file ends inside it)
                   is torn even if its digest happens to verify *)
                let complete =
                  let p = pos_in ic in
                  seek_in ic (p - 1);
                  let last = input_char ic in
                  seek_in ic p;
                  last = '\n'
                in
                match parse_line line with
                | Some item when complete ->
                  (match item with `Epoch e -> eff_epoch := max !eff_epoch e | _ -> ());
                  items := (item, line) :: !items;
                  good := pos_in ic;
                  go ()
                | _ -> torn := true)
            in
            go ();
            Some
              (`Current
                {
                  s_items = List.rev !items;
                  s_epoch = !eff_epoch;
                  s_base = base;
                  s_good = !good;
                  s_torn = !torn;
                }))
        | None -> Some `Empty)

let entries_of_items items =
  let committed = Hashtbl.create 16 in
  List.iter
    (fun (item, _) ->
      match item with `Commit s -> Hashtbl.replace committed s () | _ -> ())
    items;
  List.filter_map
    (fun (item, _) ->
      match item with
      | `Intent (seq, spec) ->
        Some { seq; spec; committed = Hashtbl.mem committed seq }
      | `Commit _ | `Epoch _ -> None)
    items

let replay path =
  if not (Sys.file_exists path) then
    { entries = []; epoch = 1; truncated = false; rotated = false }
  else begin
    match scan path with
    | None | Some `Empty ->
      { entries = []; epoch = 1; truncated = false; rotated = false }
    | Some `Stale ->
      (* a foreign or stale-format file is preserved for inspection, never
         misparsed: move it aside and start fresh *)
      (try Sys.rename path (path ^ ".stale") with Sys_error _ -> ());
      { entries = []; epoch = 1; truncated = false; rotated = true }
    | Some (`Current sc) ->
      if sc.s_torn then begin
        (* truncate the torn tail in place so later appends extend a
           well-formed file *)
        match Unix.openfile path [ Unix.O_WRONLY ] 0o644 with
        | exception Unix.Unix_error _ -> ()
        | fd ->
          (try Unix.ftruncate fd sc.s_good with Unix.Unix_error _ -> ());
          (try Unix.close fd with Unix.Unix_error _ -> ())
      end;
      {
        entries = entries_of_items sc.s_items;
        epoch = sc.s_epoch;
        truncated = sc.s_torn;
        rotated = false;
      }
  end

(* ---- opening / appending ------------------------------------------ *)

let open_ ?(epoch = 1) path =
  match scan path with
  | Some (`Current sc) ->
    let next =
      List.fold_left
        (fun acc (item, _) ->
          match item with
          | `Intent (s, _) | `Commit s -> max acc (s + 1)
          | `Epoch _ -> acc)
        sc.s_base sc.s_items
    in
    {
      path;
      mutex = Mutex.create ();
      fd = None;
      next_seq = next;
      cur_epoch = sc.s_epoch;
      base = sc.s_base;
    }
  | _ ->
    {
      path;
      mutex = Mutex.create ();
      fd = None;
      next_seq = 1;
      cur_epoch = max 1 epoch;
      base = 1;
    }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

let epoch t = with_lock t (fun () -> t.cur_epoch)
let next_seq t = with_lock t (fun () -> t.next_seq)
let base_seq t = with_lock t (fun () -> t.base)

let size_bytes t =
  match Unix.stat t.path with
  | { Unix.st_size; _ } -> st_size
  | exception Unix.Unix_error _ -> 0

(* Call with the lock held. *)
let ensure_fd t =
  match t.fd with
  | Some fd -> fd
  | None ->
    let fresh = not (Sys.file_exists t.path) in
    let fd =
      Unix.openfile t.path [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_APPEND ] 0o644
    in
    if fresh || (Unix.fstat fd).Unix.st_size = 0 then begin
      t.base <- t.next_seq;
      let h = render_header ~epoch:t.cur_epoch ~base_seq:t.base ^ "\n" in
      ignore (Unix.write_substring fd h 0 (String.length h))
    end;
    t.fd <- Some fd;
    fd

(* Durability is the whole point of the journal: an fsync failure must
   fail the append (and with it the install, which is then never
   acknowledged) instead of acknowledging state the disk may not have. *)
let write_lines t lines =
  let fd = ensure_fd t in
  let data = String.concat "" (List.map (fun l -> l ^ "\n") lines) in
  if Asp.Fault.service_fires Asp.Fault.Journal_tear then begin
    (* a torn write: half the bytes reach the disk, no fsync — exactly what
       a crash mid-append leaves behind *)
    let half = String.length data / 2 in
    ignore (Unix.write_substring fd data 0 half)
  end
  else begin
    ignore (Unix.write_substring fd data 0 (String.length data));
    Unix.fsync fd
  end

let append_intent t spec =
  with_lock t (fun () ->
      let seq = t.next_seq in
      t.next_seq <- seq + 1;
      let payload = Json.to_string (Codec.concrete_to_json spec) in
      write_lines t [ intent_line seq payload ];
      seq)

let append_commit t seq = with_lock t (fun () -> write_lines t [ commit_line seq ])

let append_raw t ~seq lines =
  with_lock t (fun () ->
      write_lines t lines;
      t.next_seq <- max t.next_seq (seq + 1))

let bump_epoch t e =
  with_lock t (fun () ->
      if e > t.cur_epoch then begin
        write_lines t [ epoch_line e ];
        t.cur_epoch <- e
      end)

(* ---- tail reads (replication catch-up) ---------------------------- *)

(* Committed (intent, commit) pairs with seq >= [from], in sequence order.
   Taken under the journal mutex so no append is mid-write while the file
   is being re-read; an intent whose commit has not landed yet is an
   install still inside [record_install] and is excluded — it will be
   shipped by its own commit. *)
let tail_from t from =
  with_lock t (fun () ->
      match scan t.path with
      | Some (`Current sc) ->
        let intents = Hashtbl.create 16 in
        List.iter
          (fun (item, raw) ->
            match item with
            | `Intent (s, _) when s >= from -> Hashtbl.replace intents s raw
            | _ -> ())
          sc.s_items;
        List.filter_map
          (fun (item, raw) ->
            match item with
            | `Commit s when s >= from -> (
              match Hashtbl.find_opt intents s with
              | Some intent -> Some (s, intent, raw)
              | None -> None)
            | _ -> None)
          sc.s_items
        |> List.sort (fun (a, _, _) (b, _, _) -> compare a b)
      | _ -> [])

(* ---- truncation --------------------------------------------------- *)

(* Rewrite the journal as just a header, atomically (temp + rename): used
   after the database snapshot made every entry durable elsewhere.  The
   sequence counter carries over as the new base, so replication positions
   stay meaningful across compactions. *)
let rewrite_locked t ~epoch ~base_seq =
  (match t.fd with
  | Some fd ->
    (try Unix.close fd with Unix.Unix_error _ -> ());
    t.fd <- None
  | None -> ());
  t.cur_epoch <- epoch;
  t.base <- base_seq;
  t.next_seq <- max t.next_seq base_seq;
  let tmp = t.path ^ ".tmp." ^ string_of_int (Unix.getpid ()) in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  let h = render_header ~epoch ~base_seq ^ "\n" in
  ignore (Unix.write_substring fd h 0 (String.length h));
  Unix.fsync fd;
  (try Unix.close fd with Unix.Unix_error _ -> ());
  Sys.rename tmp t.path

let checkpoint t =
  with_lock t (fun () ->
      rewrite_locked t ~epoch:t.cur_epoch ~base_seq:t.next_seq)

let set_position t ~epoch ~base_seq =
  with_lock t (fun () ->
      t.next_seq <- base_seq;
      rewrite_locked t ~epoch ~base_seq)

let rotate_stale t =
  with_lock t (fun () ->
      (match t.fd with
      | Some fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.fd <- None
      | None -> ());
      if Sys.file_exists t.path then
        try Sys.rename t.path (t.path ^ ".stale") with Sys_error _ -> ())

let close t =
  with_lock t (fun () ->
      match t.fd with
      | Some fd ->
        (try Unix.fsync fd with Unix.Unix_error _ -> ());
        (try Unix.close fd with Unix.Unix_error _ -> ());
        t.fd <- None
      | None -> ())
