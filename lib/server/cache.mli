(** Content-addressed solve cache: bounded in-memory LRU over an optional
    on-disk layer.

    Keys are {!Concretize.Concretizer.request_key} digests, so a key names
    the full solve input (request, repository, installed DB, configuration)
    and entries never go stale — changing any input changes the key, and
    old entries simply stop being addressed (and eventually fall out of the
    LRU / are overwritten on disk).

    The disk layer stores one file per key under the cache directory
    ([<key>.solve]), written atomically (temp file + rename) with a
    versioned header and a digest footer: files from older format versions,
    truncated files and corrupt files are ignored (a miss), never an error.

    All operations are domain-safe (one internal lock; disk I/O happens
    outside it only for reads of immutable files). *)

type t

val create : ?mem_capacity:int -> ?dir:string -> unit -> t
(** [mem_capacity] bounds the in-memory LRU (default 256 entries; least
    recently used entries are evicted first).  [dir] enables the on-disk
    layer (created if missing). *)

type stats = {
  hits : int;  (** lookups served (memory or disk) *)
  misses : int;
  evictions : int;  (** LRU entries dropped over capacity *)
  stores : int;
  mem_entries : int;  (** current LRU size *)
  disk_hits : int;  (** subset of [hits] that had to read a file *)
}

val stats : t -> stats

val lookup : t -> string -> Concretize.Concretizer.result option
(** Memory first, then disk (a disk hit is promoted into the LRU).  Counts
    a hit or a miss. *)

val mem : t -> string -> bool
(** Would {!lookup} hit?  Does not touch the counters or the LRU order
    (used by the bench harness to attribute hits per row without spending
    them). *)

val store : t -> string -> Concretize.Concretizer.result -> unit
(** Insert into the LRU (evicting if over capacity) and, when a directory
    was given, persist to disk atomically. *)

val hook : t -> Concretize.Concretizer.cache
(** The cache as the concretizer's lookup/store closure pair, for
    [Concretizer.solve ~cache]. *)
