(* [timeout] is the client's own end-to-end deadline in seconds, measured
   from the moment the daemon dequeues the request line: the effective
   deadline is the tighter of this and the server-side default, computed at
   enqueue — time spent queued behind other solves counts against it. *)
type request =
  | Solve of { spec : string; timeout : float option }
  | Solve_many of { specs : string list; timeout : float option }
  | Install of { spec : string; timeout : float option }
  | Stats
  | Shutdown

let solve ?timeout spec = Solve { spec; timeout }
let solve_many ?timeout specs = Solve_many { specs; timeout }
let install ?timeout spec = Install { spec; timeout }

let ( let* ) o f = match o with Some v -> f v | None -> None

let timeout_field = function
  | None -> []
  | Some t -> [ ("timeout", Json.Float t) ]

let request_to_json ?(id = 0) req =
  let fields =
    match req with
    | Solve { spec; timeout } ->
      [ ("op", Json.Str "solve"); ("spec", Json.Str spec) ]
      @ timeout_field timeout
    | Solve_many { specs; timeout } ->
      [
        ("op", Json.Str "solve_many");
        ("specs", Json.List (List.map (fun s -> Json.Str s) specs));
      ]
      @ timeout_field timeout
    | Install { spec; timeout } ->
      [ ("op", Json.Str "install"); ("spec", Json.Str spec) ]
      @ timeout_field timeout
    | Stats -> [ ("op", Json.Str "stats") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
  in
  Json.Obj (("id", Json.Int id) :: fields)

let id_of j = match Json.member "id" j with Some (Json.Int i) -> i | _ -> 0

let timeout_of j =
  match Json.member "timeout" j with
  | Some (Json.Float t) when t > 0. -> Some t
  | Some (Json.Int t) when t > 0 -> Some (float_of_int t)
  | _ -> None

let request_of_json j =
  let id = id_of j in
  let timeout = timeout_of j in
  let decoded =
    let* op = Json.member "op" j in
    let* op = Json.to_str op in
    match op with
    | "solve" ->
      let* spec = Json.member "spec" j in
      let* spec = Json.to_str spec in
      Some (Solve { spec; timeout })
    | "solve_many" ->
      let* specs = Json.member "specs" j in
      let* specs = Json.to_list specs in
      let rec strs acc = function
        | [] -> Some (List.rev acc)
        | Json.Str s :: rest -> strs (s :: acc) rest
        | _ -> None
      in
      let* specs = strs [] specs in
      Some (Solve_many { specs; timeout })
    | "install" ->
      let* spec = Json.member "spec" j in
      let* spec = Json.to_str spec in
      Some (Install { spec; timeout })
    | "stats" -> Some Stats
    | "shutdown" -> Some Shutdown
    | _ -> None
  in
  match decoded with
  | Some r -> Ok (id, r)
  | None -> Error "malformed request"

type cache_status = Hit | Miss

let cache_status_name = function Hit -> "hit" | Miss -> "miss"

type error_kind =
  | Overloaded
  | Bad_request
  | Unknown_package of string
  | Internal

type response =
  | Result of { cache : cache_status; result : Concretize.Concretizer.result }
  | Results of (cache_status * Concretize.Concretizer.result) list
  | Installed of { root : string; hashes : (string * string) list; total : int }
  | Stats_reply of Json.t
  | Bye
  | Error of { kind : error_kind; message : string }

let error_kind_to_json = function
  | Overloaded -> Json.Str "overloaded"
  | Bad_request -> Json.Str "bad_request"
  | Unknown_package p -> Json.List [ Json.Str "unknown_package"; Json.Str p ]
  | Internal -> Json.Str "internal"

let error_kind_of_json = function
  | Json.Str "overloaded" -> Some Overloaded
  | Json.Str "bad_request" -> Some Bad_request
  | Json.List [ Json.Str "unknown_package"; Json.Str p ] ->
    Some (Unknown_package p)
  | Json.Str "internal" -> Some Internal
  | _ -> None

let entry_to_json (cache, result) =
  Json.Obj
    [
      ("cache", Json.Str (cache_status_name cache));
      ("result", Codec.result_to_json result);
    ]

let entry_of_json j =
  let* c = Json.member "cache" j in
  let* c = Json.to_str c in
  let* cache = match c with "hit" -> Some Hit | "miss" -> Some Miss | _ -> None in
  let* rj = Json.member "result" j in
  match Codec.result_of_json rj with
  | Ok result -> Some (cache, result)
  | Error _ -> None

let response_to_json ?(id = 0) resp =
  let fields =
    match resp with
    | Result { cache; result } ->
      [
        ("ok", Json.Bool true);
        ("cache", Json.Str (cache_status_name cache));
        ("result", Codec.result_to_json result);
      ]
    | Results entries ->
      [
        ("ok", Json.Bool true);
        ("results", Json.List (List.map entry_to_json entries));
      ]
    | Installed { root; hashes; total } ->
      [
        ("ok", Json.Bool true);
        ("installed", Json.Str root);
        ( "hashes",
          Json.List
            (List.map
               (fun (p, h) -> Json.List [ Json.Str p; Json.Str h ])
               hashes) );
        ("total", Json.Int total);
      ]
    | Stats_reply stats -> [ ("ok", Json.Bool true); ("stats", stats) ]
    | Bye -> [ ("ok", Json.Bool true); ("bye", Json.Bool true) ]
    | Error { kind; message } ->
      [
        ("ok", Json.Bool false);
        ("error", error_kind_to_json kind);
        ("message", Json.Str message);
      ]
  in
  Json.Obj (("id", Json.Int id) :: fields)

let response_of_json j =
  let id = id_of j in
  let decoded =
    let* ok = Json.member "ok" j in
    let* ok = Json.to_bool ok in
    if not ok then
      let* kind = Json.member "error" j in
      let* kind = error_kind_of_json kind in
      let message =
        match Json.member "message" j with
        | Some (Json.Str m) -> m
        | _ -> ""
      in
      Some (Error { kind; message })
    else
      match Json.member "result" j with
      | Some rj -> (
        let* c = Json.member "cache" j in
        let* c = Json.to_str c in
        let* cache =
          match c with "hit" -> Some Hit | "miss" -> Some Miss | _ -> None
        in
        match Codec.result_of_json rj with
        | Ok result -> Some (Result { cache; result })
        | Error _ -> None)
      | None -> (
        match Json.member "results" j with
        | Some (Json.List ejs) ->
          let rec entries acc = function
            | [] -> Some (Results (List.rev acc))
            | ej :: rest ->
              let* e = entry_of_json ej in
              entries (e :: acc) rest
          in
          entries [] ejs
        | Some _ -> None
        | None -> (
          match Json.member "installed" j with
          | Some (Json.Str root) ->
            let* hjs = Json.member "hashes" j in
            let* hjs = Json.to_list hjs in
            let rec hashes acc = function
              | [] -> Some (List.rev acc)
              | Json.List [ Json.Str p; Json.Str h ] :: rest ->
                hashes ((p, h) :: acc) rest
              | _ -> None
            in
            let* hashes = hashes [] hjs in
            let* total = Json.member "total" j in
            let* total = Json.to_int total in
            Some (Installed { root; hashes; total })
          | Some _ -> None
          | None -> (
            match Json.member "stats" j with
            | Some stats -> Some (Stats_reply stats)
            | None -> (
              match Json.member "bye" j with
              | Some (Json.Bool true) -> Some Bye
              | _ -> None))))
  in
  match decoded with
  | Some r -> Ok (id, r)
  | None -> Error "malformed response"
