(* [timeout] is the client's own end-to-end deadline in seconds, measured
   from the moment the daemon dequeues the request line: the effective
   deadline is the tighter of this and the server-side default, computed at
   enqueue — time spent queued behind other solves counts against it. *)
type request =
  | Solve of { spec : string; timeout : float option }
  | Solve_many of { specs : string list; timeout : float option }
  | Install of { spec : string; timeout : float option }
  | Stats
  | Shutdown
  | Promote
  | Repl_subscribe of { epoch : int; from_seq : int }
  | Repl_ack of { seq : int }

let solve ?timeout spec = Solve { spec; timeout }
let solve_many ?timeout specs = Solve_many { specs; timeout }
let install ?timeout spec = Install { spec; timeout }

let ( let* ) o f = match o with Some v -> f v | None -> None

let timeout_field = function
  | None -> []
  | Some t -> [ ("timeout", Json.Float t) ]

let request_to_json ?(id = 0) req =
  let fields =
    match req with
    | Solve { spec; timeout } ->
      [ ("op", Json.Str "solve"); ("spec", Json.Str spec) ]
      @ timeout_field timeout
    | Solve_many { specs; timeout } ->
      [
        ("op", Json.Str "solve_many");
        ("specs", Json.List (List.map (fun s -> Json.Str s) specs));
      ]
      @ timeout_field timeout
    | Install { spec; timeout } ->
      [ ("op", Json.Str "install"); ("spec", Json.Str spec) ]
      @ timeout_field timeout
    | Stats -> [ ("op", Json.Str "stats") ]
    | Shutdown -> [ ("op", Json.Str "shutdown") ]
    | Promote -> [ ("op", Json.Str "promote") ]
    | Repl_subscribe { epoch; from_seq } ->
      [
        ("op", Json.Str "repl_subscribe");
        ("epoch", Json.Int epoch);
        ("from_seq", Json.Int from_seq);
      ]
    | Repl_ack { seq } -> [ ("op", Json.Str "repl_ack"); ("seq", Json.Int seq) ]
  in
  Json.Obj (("id", Json.Int id) :: fields)

let id_of j = match Json.member "id" j with Some (Json.Int i) -> i | _ -> 0

let timeout_of j =
  match Json.member "timeout" j with
  | Some (Json.Float t) when t > 0. -> Some t
  | Some (Json.Int t) when t > 0 -> Some (float_of_int t)
  | _ -> None

let request_of_json j =
  let id = id_of j in
  let timeout = timeout_of j in
  let decoded =
    let* op = Json.member "op" j in
    let* op = Json.to_str op in
    match op with
    | "solve" ->
      let* spec = Json.member "spec" j in
      let* spec = Json.to_str spec in
      Some (Solve { spec; timeout })
    | "solve_many" ->
      let* specs = Json.member "specs" j in
      let* specs = Json.to_list specs in
      let rec strs acc = function
        | [] -> Some (List.rev acc)
        | Json.Str s :: rest -> strs (s :: acc) rest
        | _ -> None
      in
      let* specs = strs [] specs in
      Some (Solve_many { specs; timeout })
    | "install" ->
      let* spec = Json.member "spec" j in
      let* spec = Json.to_str spec in
      Some (Install { spec; timeout })
    | "stats" -> Some Stats
    | "shutdown" -> Some Shutdown
    | "promote" -> Some Promote
    | "repl_subscribe" ->
      let* epoch = Json.member "epoch" j in
      let* epoch = Json.to_int epoch in
      let* from_seq = Json.member "from_seq" j in
      let* from_seq = Json.to_int from_seq in
      Some (Repl_subscribe { epoch; from_seq })
    | "repl_ack" ->
      let* seq = Json.member "seq" j in
      let* seq = Json.to_int seq in
      Some (Repl_ack { seq })
    | _ -> None
  in
  match decoded with
  | Some r -> Ok (id, r)
  | None -> Error "malformed request"

type cache_status = Hit | Miss

let cache_status_name = function Hit -> "hit" | Miss -> "miss"

type error_kind =
  | Overloaded
  | Bad_request
  | Unknown_package of string
  | Read_only  (** installs refused: this daemon is a replication follower *)
  | Internal

type response =
  | Result of { cache : cache_status; result : Concretize.Concretizer.result }
  | Results of (cache_status * Concretize.Concretizer.result) list
  | Installed of { root : string; hashes : (string * string) list; total : int }
  | Stats_reply of Json.t
  | Bye
  | Promoted of { epoch : int }
  | Repl_reset of { epoch : int }
  | Repl_snapshot of { epoch : int; next_seq : int; db : string }
  | Repl_record of { epoch : int; seq : int; intent : string; commit : string }
  | Error of { kind : error_kind; message : string }

let error_kind_to_json = function
  | Overloaded -> Json.Str "overloaded"
  | Bad_request -> Json.Str "bad_request"
  | Unknown_package p -> Json.List [ Json.Str "unknown_package"; Json.Str p ]
  | Read_only -> Json.Str "read_only"
  | Internal -> Json.Str "internal"

let error_kind_of_json = function
  | Json.Str "overloaded" -> Some Overloaded
  | Json.Str "bad_request" -> Some Bad_request
  | Json.List [ Json.Str "unknown_package"; Json.Str p ] ->
    Some (Unknown_package p)
  | Json.Str "read_only" -> Some Read_only
  | Json.Str "internal" -> Some Internal
  | _ -> None

let entry_to_json (cache, result) =
  Json.Obj
    [
      ("cache", Json.Str (cache_status_name cache));
      ("result", Codec.result_to_json result);
    ]

let entry_of_json j =
  let* c = Json.member "cache" j in
  let* c = Json.to_str c in
  let* cache = match c with "hit" -> Some Hit | "miss" -> Some Miss | _ -> None in
  let* rj = Json.member "result" j in
  match Codec.result_of_json rj with
  | Ok result -> Some (cache, result)
  | Error _ -> None

let response_to_json ?(id = 0) resp =
  let fields =
    match resp with
    | Result { cache; result } ->
      [
        ("ok", Json.Bool true);
        ("cache", Json.Str (cache_status_name cache));
        ("result", Codec.result_to_json result);
      ]
    | Results entries ->
      [
        ("ok", Json.Bool true);
        ("results", Json.List (List.map entry_to_json entries));
      ]
    | Installed { root; hashes; total } ->
      [
        ("ok", Json.Bool true);
        ("installed", Json.Str root);
        ( "hashes",
          Json.List
            (List.map
               (fun (p, h) -> Json.List [ Json.Str p; Json.Str h ])
               hashes) );
        ("total", Json.Int total);
      ]
    | Stats_reply stats -> [ ("ok", Json.Bool true); ("stats", stats) ]
    | Bye -> [ ("ok", Json.Bool true); ("bye", Json.Bool true) ]
    | Promoted { epoch } ->
      [
        ("ok", Json.Bool true);
        ("promoted", Json.Bool true);
        ("epoch", Json.Int epoch);
      ]
    | Repl_reset { epoch } ->
      [ ("ok", Json.Bool true); ("repl", Json.Str "reset"); ("epoch", Json.Int epoch) ]
    | Repl_snapshot { epoch; next_seq; db } ->
      [
        ("ok", Json.Bool true);
        ("repl", Json.Str "snapshot");
        ("epoch", Json.Int epoch);
        ("next_seq", Json.Int next_seq);
        ("db", Json.Str db);
      ]
    | Repl_record { epoch; seq; intent; commit } ->
      [
        ("ok", Json.Bool true);
        ("repl", Json.Str "record");
        ("epoch", Json.Int epoch);
        ("seq", Json.Int seq);
        ("intent", Json.Str intent);
        ("commit", Json.Str commit);
      ]
    | Error { kind; message } ->
      [
        ("ok", Json.Bool false);
        ("error", error_kind_to_json kind);
        ("message", Json.Str message);
      ]
  in
  Json.Obj (("id", Json.Int id) :: fields)

let response_of_json j =
  let id = id_of j in
  let decoded =
    let* ok = Json.member "ok" j in
    let* ok = Json.to_bool ok in
    if not ok then
      let* kind = Json.member "error" j in
      let* kind = error_kind_of_json kind in
      let message =
        match Json.member "message" j with
        | Some (Json.Str m) -> m
        | _ -> ""
      in
      Some (Error { kind; message })
    else
      match Json.member "repl" j with
      | Some (Json.Str tag) -> (
        let* epoch = Json.member "epoch" j in
        let* epoch = Json.to_int epoch in
        match tag with
        | "reset" -> Some (Repl_reset { epoch })
        | "snapshot" ->
          let* next_seq = Json.member "next_seq" j in
          let* next_seq = Json.to_int next_seq in
          let* db = Json.member "db" j in
          let* db = Json.to_str db in
          Some (Repl_snapshot { epoch; next_seq; db })
        | "record" ->
          let* seq = Json.member "seq" j in
          let* seq = Json.to_int seq in
          let* intent = Json.member "intent" j in
          let* intent = Json.to_str intent in
          let* commit = Json.member "commit" j in
          let* commit = Json.to_str commit in
          Some (Repl_record { epoch; seq; intent; commit })
        | _ -> None)
      | Some _ -> None
      | None -> (
      match Json.member "promoted" j with
      | Some (Json.Bool true) ->
        let* epoch = Json.member "epoch" j in
        let* epoch = Json.to_int epoch in
        Some (Promoted { epoch })
      | Some _ -> None
      | None -> (
      match Json.member "result" j with
      | Some rj -> (
        let* c = Json.member "cache" j in
        let* c = Json.to_str c in
        let* cache =
          match c with "hit" -> Some Hit | "miss" -> Some Miss | _ -> None
        in
        match Codec.result_of_json rj with
        | Ok result -> Some (Result { cache; result })
        | Error _ -> None)
      | None -> (
        match Json.member "results" j with
        | Some (Json.List ejs) ->
          let rec entries acc = function
            | [] -> Some (Results (List.rev acc))
            | ej :: rest ->
              let* e = entry_of_json ej in
              entries (e :: acc) rest
          in
          entries [] ejs
        | Some _ -> None
        | None -> (
          match Json.member "installed" j with
          | Some (Json.Str root) ->
            let* hjs = Json.member "hashes" j in
            let* hjs = Json.to_list hjs in
            let rec hashes acc = function
              | [] -> Some (List.rev acc)
              | Json.List [ Json.Str p; Json.Str h ] :: rest ->
                hashes ((p, h) :: acc) rest
              | _ -> None
            in
            let* hashes = hashes [] hjs in
            let* total = Json.member "total" j in
            let* total = Json.to_int total in
            Some (Installed { root; hashes; total })
          | Some _ -> None
          | None -> (
            match Json.member "stats" j with
            | Some stats -> Some (Stats_reply stats)
            | None -> (
              match Json.member "bye" j with
              | Some (Json.Bool true) -> Some Bye
              | _ -> None))))))
  in
  match decoded with
  | Some r -> Ok (id, r)
  | None -> Error "malformed response"
