type 'a entry = {
  key : string;
  future : 'a Asp.Pool.future;
  cancel : Asp.Budget.cancel_token;
  mutable waiters : int;
  mutable counted : bool;  (* bumped the completed counter already *)
  mutable cancelled : bool;
}

type 'a ticket = { entry : 'a entry; mutable live : bool }

type 'a t = {
  pool : Asp.Pool.t;
  max_pending : int;
  mutex : Mutex.t;
  inflight : (string, 'a entry) Hashtbl.t;
  mutable submitted : int;
  mutable deduped : int;
  mutable shed : int;
  mutable n_cancelled : int;
  mutable completed : int;
}

type stats = {
  submitted : int;
  deduped : int;
  shed : int;
  cancelled : int;
  completed : int;
  pending : int;
}

let create ~pool ~max_pending =
  {
    pool;
    max_pending = max 1 max_pending;
    mutex = Mutex.create ();
    inflight = Hashtbl.create 16;
    submitted = 0;
    deduped = 0;
    shed = 0;
    n_cancelled = 0;
    completed = 0;
  }

let with_lock t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Call with the lock held.  Finished entries leave the table (tickets keep
   their own reference), so [Hashtbl.length] is the pending count and a key
   can be solved afresh once its previous flight landed. *)
let reap t =
  let done_keys =
    Hashtbl.fold
      (fun k e acc -> if Asp.Pool.is_done e.future then (k, e) :: acc else acc)
      t.inflight []
  in
  List.iter
    (fun (k, e) ->
      Hashtbl.remove t.inflight k;
      if not e.counted then begin
        e.counted <- true;
        t.completed <- t.completed + 1
      end)
    done_keys

let submit t ~key job =
  with_lock t (fun () ->
      reap t;
      match Hashtbl.find_opt t.inflight key with
      | Some e ->
        e.waiters <- e.waiters + 1;
        t.deduped <- t.deduped + 1;
        `Accepted { entry = e; live = true }
      | None ->
        if Hashtbl.length t.inflight >= t.max_pending then begin
          t.shed <- t.shed + 1;
          `Overloaded
        end
        else begin
          let cancel = Asp.Budget.token () in
          let future = Asp.Pool.submit t.pool (fun () -> job ~cancel) in
          let e =
            { key; future; cancel; waiters = 1; counted = false; cancelled = false }
          in
          Hashtbl.replace t.inflight key e;
          t.submitted <- t.submitted + 1;
          `Accepted { entry = e; live = true }
        end)

let poll t ticket =
  let e = ticket.entry in
  if not (Asp.Pool.is_done e.future) then `Pending
  else begin
    with_lock t (fun () ->
        Hashtbl.remove t.inflight e.key;
        if not e.counted then begin
          e.counted <- true;
          t.completed <- t.completed + 1
        end);
    `Done (try Ok (Asp.Pool.await e.future) with exn -> Error exn)
  end

let abandon t ticket =
  if ticket.live then begin
    ticket.live <- false;
    let e = ticket.entry in
    with_lock t (fun () ->
        e.waiters <- e.waiters - 1;
        if e.waiters <= 0 && (not (Asp.Pool.is_done e.future)) && not e.cancelled
        then begin
          e.cancelled <- true;
          Asp.Budget.cancel e.cancel;
          t.n_cancelled <- t.n_cancelled + 1
        end)
  end

let stats t =
  with_lock t (fun () ->
      reap t;
      {
        submitted = t.submitted;
        deduped = t.deduped;
        shed = t.shed;
        cancelled = t.n_cancelled;
        completed = t.completed;
        pending = Hashtbl.length t.inflight;
      })
