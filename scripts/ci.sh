#!/bin/sh
# CI entry point: build, run the full test suite, then a quick benchmark
# smoke test to catch performance-path regressions that type-check fine.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
dune build

echo "== dune runtest"
dune runtest

echo "== bench smoke (fig3 + fig7d --quick)"
dune exec bench/main.exe -- fig3 fig7d --quick --json BENCH_ci.json

echo "== ci OK"
