#!/bin/sh
# CI entry point: build, run the full test suite, then a quick benchmark
# smoke test to catch performance-path regressions that type-check fine.
# Every stage runs under a hard timeout so a hung solve (the class of bug
# the budget layer exists to prevent) fails CI instead of wedging it.
set -eu

cd "$(dirname "$0")/.."

echo "== dune build"
timeout 600 dune build

echo "== dune runtest"
timeout 600 dune runtest

echo "== fault-injection sweep"
timeout 300 dune exec test/test_budget.exe

echo "== verifier fuzz smoke"
timeout 120 dune exec test/test_verify.exe

echo "== unsat-core explanation golden"
out=$(timeout 60 dune exec bin/spack_solve.exe -- --explain 'hdf5@99.9' || true)
echo "$out" | grep -q "unsatisfiable core"
echo "$out" | grep -q "because the request asks for hdf5@99.9"

echo "== budgeted solve returns promptly"
rc=0
timeout 60 dune exec bin/spack_solve.exe -- --repo 800 --timeout 0.05 app-000 \
  > /dev/null 2>&1 || rc=$?
# 0 = solved in time (fast machine), 3 = interrupted cleanly; anything else
# (hang killed by timeout, crash, bare exception) fails
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]

echo "== bench smoke (fig3 + fig7d --quick)"
timeout 600 dune exec bench/main.exe -- fig3 fig7d --quick --json BENCH_ci.json

echo "== portfolio smoke (fig7d --quick --jobs 4)"
timeout 600 dune exec bench/main.exe -- fig7d --quick --jobs 4 --json BENCH_ci_jobs4.json
grep -q '"jobs": 4' BENCH_ci_jobs4.json

echo "== ci OK"
