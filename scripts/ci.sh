#!/bin/sh
# CI entry point: build, run the full test suite, then a quick benchmark
# smoke test to catch performance-path regressions that type-check fine.
# Every stage runs under a hard timeout so a hung solve (the class of bug
# the budget layer exists to prevent) fails CI instead of wedging it.
set -eu

cd "$(dirname "$0")/.."

wait_sock() {
  i=0
  while [ ! -S "$1" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
  [ -S "$1" ]
}

echo "== dune build"
timeout 600 dune build

echo "== dune runtest"
timeout 600 dune runtest

echo "== fault-injection sweep"
timeout 300 dune exec test/test_budget.exe

echo "== verifier fuzz smoke"
timeout 120 dune exec test/test_verify.exe

echo "== unsat-core explanation golden"
out=$(timeout 60 dune exec bin/spack_solve.exe -- --explain 'hdf5@99.9' || true)
echo "$out" | grep -q "unsatisfiable core"
echo "$out" | grep -q "because the request asks for hdf5@99.9"

echo "== budgeted solve returns promptly"
rc=0
timeout 60 dune exec bin/spack_solve.exe -- --repo 800 --timeout 0.05 app-000 \
  > /dev/null 2>&1 || rc=$?
# 0 = solved in time (fast machine), 3 = interrupted cleanly; anything else
# (hang killed by timeout, crash, bare exception) fails
[ "$rc" -eq 0 ] || [ "$rc" -eq 3 ]

echo "== daemon smoke (spack_serve + spack_solve --connect)"
SMOKE_DIR=$(mktemp -d)
SOCK="$SMOKE_DIR/serve.sock"
# the daemon itself runs under a hard timeout: if shutdown never lands, the
# background process dies on its own instead of outliving CI
timeout 120 dune exec bin/spack_serve.exe -- \
  --socket "$SOCK" --cache-dir "$SMOKE_DIR/cache" > "$SMOKE_DIR/serve.log" 2>&1 &
SERVE_PID=$!
trap 'kill "$SERVE_PID" 2> /dev/null || true; rm -rf "$SMOKE_DIR"' EXIT
i=0
while [ ! -S "$SOCK" ] && [ "$i" -lt 100 ]; do sleep 0.1; i=$((i + 1)); done
[ -S "$SOCK" ]
# cold solve populates the cache, the identical warm solve is served from it
timeout 60 dune exec bin/spack_solve.exe -- --connect "$SOCK" zlib \
  | grep -q "cache miss: zlib"
timeout 60 dune exec bin/spack_solve.exe -- --connect "$SOCK" zlib \
  | grep -q "cache hit: zlib"
# incremental grounding: two *different* requests over one name skeleton —
# the second must extend the first request's frozen ground base, not
# rebuild it (zlib above contributed one base + one extension of its own)
timeout 60 dune exec bin/spack_solve.exe -- --connect "$SOCK" hdf5 \
  | grep -q "cache miss: hdf5"
timeout 60 dune exec bin/spack_solve.exe -- --connect "$SOCK" hdf5+szip \
  | grep -q "cache miss: hdf5+szip"
STATS=$(timeout 60 dune exec bin/spack_solve.exe -- --connect "$SOCK" --remote-stats)
echo "$STATS" | grep -q '"hits":1'
echo "$STATS" | grep -q '"base_builds":2'
echo "$STATS" | grep -q '"extensions":3'
echo "$STATS" | grep -q '"fallbacks":0'
timeout 60 dune exec bin/spack_solve.exe -- --connect "$SOCK" --remote-shutdown
wait "$SERVE_PID"
trap - EXIT
rm -rf "$SMOKE_DIR"

echo "== crash recovery drill (kill -9 mid-install, journal replay)"
# Differential check: a daemon killed at each point of the write-ahead
# install protocol, then restarted, must converge on the same installed
# database (by content fingerprint) as a daemon that never crashed.
SERVE=./_build/default/bin/spack_serve.exe
SOLVE=./_build/default/bin/spack_solve.exe
LOAD=./_build/default/bin/spack_load.exe
DRILL_DIR=$(mktemp -d)
trap 'rm -rf "$DRILL_DIR"' EXIT
SOCK="$DRILL_DIR/clean.sock"
timeout 120 "$SERVE" --socket "$SOCK" --db "$DRILL_DIR/clean.db" \
  > "$DRILL_DIR/clean.log" 2>&1 &
PID=$!
wait_sock "$SOCK"
timeout 60 "$SOLVE" --connect "$SOCK" --remote-install zlib \
  | grep -q "installed zlib"
CLEAN_FP=$(timeout 60 "$SOLVE" --connect "$SOCK" --remote-stats \
  | grep -o '"db_fingerprint":"[^"]*"')
[ -n "$CLEAN_FP" ]
timeout 60 "$SOLVE" --connect "$SOCK" --remote-shutdown
wait "$PID"
for POINT in after-intent after-save after-commit; do
  SOCK="$DRILL_DIR/$POINT.sock"
  SPACK_SERVE_CRASH=$POINT timeout 120 "$SERVE" --socket "$SOCK" \
    --db "$DRILL_DIR/$POINT.db" > "$DRILL_DIR/$POINT.log" 2>&1 &
  PID=$!
  wait_sock "$SOCK"
  # the install request rides into the injected _exit(42); the client's
  # transport error is expected
  timeout 60 "$SOLVE" --connect "$SOCK" --remote-install zlib \
    > /dev/null 2>&1 || true
  rc=0
  wait "$PID" || rc=$?
  [ "$rc" -eq 42 ]
  # restart without the crash env: journal replay reconstructs the state
  # (_exit skipped cleanup, so drop the stale socket before waiting on it)
  rm -f "$SOCK"
  timeout 120 "$SERVE" --socket "$SOCK" --db "$DRILL_DIR/$POINT.db" \
    > "$DRILL_DIR/$POINT.restart.log" 2>&1 &
  PID=$!
  wait_sock "$SOCK"
  grep -q "recovered 1 journaled install(s)" "$DRILL_DIR/$POINT.restart.log"
  FP=$(timeout 60 "$SOLVE" --connect "$SOCK" --remote-stats \
    | grep -o '"db_fingerprint":"[^"]*"')
  [ "$FP" = "$CLEAN_FP" ]
  timeout 60 "$SOLVE" --connect "$SOCK" --remote-shutdown
  wait "$PID"
done

echo "== failover drill (kill -9 primary, promote standby, lossless sync acks)"
PSOCK="$DRILL_DIR/primary.sock"
FSOCK="$DRILL_DIR/standby.sock"
timeout 180 "$SERVE" --socket "$PSOCK" --db "$DRILL_DIR/primary.db" \
  --repl-ack sync > "$DRILL_DIR/primary.log" 2>&1 &
PRIMARY_PID=$!
wait_sock "$PSOCK"
# $! is the timeout(1) wrapper; resolve the daemon underneath it so the
# kill -9 hits the primary itself, not its babysitter
PRIMARY_DPID=$(pgrep -P "$PRIMARY_PID")
timeout 180 "$SERVE" --socket "$FSOCK" --db "$DRILL_DIR/standby.db" \
  --follow "$PSOCK" > "$DRILL_DIR/standby.log" 2>&1 &
STANDBY_PID=$!
wait_sock "$FSOCK"
# wait for the subscription: from here every install ack is follower-backed
i=0
until timeout 60 "$SOLVE" --connect "$PSOCK" --remote-stats \
  | grep -q '"followers":1'; do
  sleep 0.1
  i=$((i + 1))
  [ "$i" -lt 100 ]
done
timeout 60 "$SOLVE" --connect "$PSOCK" --remote-install zlib \
  | grep -q "installed zlib"
timeout 60 "$SOLVE" --connect "$PSOCK" --remote-install hdf5 \
  | grep -q "installed hdf5"
STATS=$(timeout 60 "$SOLVE" --connect "$PSOCK" --remote-stats)
echo "$STATS" | grep -q '"sync_degraded":0'
echo "$STATS" | grep -q '"sync_timeouts":0'
ACKED_FP=$(echo "$STATS" | grep -o '"db_fingerprint":"[^"]*"')
# the primary dies without warning; the standby holds every acked install
kill -9 "$PRIMARY_DPID" 2> /dev/null || true
wait "$PRIMARY_PID" 2> /dev/null || true
timeout 60 "$SOLVE" --connect "$FSOCK" --remote-promote \
  | grep -q "promoted: now primary in epoch 2"
FP=$(timeout 60 "$SOLVE" --connect "$FSOCK" --remote-stats \
  | grep -o '"db_fingerprint":"[^"]*"')
[ "$FP" = "$ACKED_FP" ]
# clients configured with the failover chain rotate past the dead primary
timeout 60 "$SOLVE" --connect "$PSOCK,$FSOCK" --remote-install libiconv \
  | grep -q "installed libiconv"
timeout 60 "$SOLVE" --connect "$FSOCK" --remote-shutdown
wait "$STANDBY_PID" 2> /dev/null || true

echo "== failover chaos tier (spack_load --kill-primary, lost-ack audit)"
rm -f "$DRILL_DIR/primary.sock" "$DRILL_DIR/standby.sock"
timeout 180 "$SERVE" --socket "$PSOCK" --db "$DRILL_DIR/chaos-primary.db" \
  --repl-ack sync > "$DRILL_DIR/chaos-primary.log" 2>&1 &
PRIMARY_PID=$!
wait_sock "$PSOCK"
PRIMARY_DPID=$(pgrep -P "$PRIMARY_PID")
timeout 180 "$SERVE" --socket "$FSOCK" --db "$DRILL_DIR/chaos-standby.db" \
  --follow "$PSOCK" > "$DRILL_DIR/chaos-standby.log" 2>&1 &
STANDBY_PID=$!
wait_sock "$FSOCK"
i=0
until timeout 60 "$SOLVE" --connect "$PSOCK" --remote-stats \
  | grep -q '"followers":1'; do
  sleep 0.1
  i=$((i + 1))
  [ "$i" -lt 100 ]
done
timeout 120 "$LOAD" --socket "$PSOCK" --standby "$FSOCK" \
  --kill-primary "$PRIMARY_DPID" --tiers 0 --clients 6 --duration 6 \
  --install-frac 0.5 --timeout 5 --json BENCH_failover_ci.json
# under sync acks the drill must lose nothing a client saw acknowledged
grep -q '"lost_acks":0' BENCH_failover_ci.json
grep -q '"audited":true' BENCH_failover_ci.json
! grep -q '"promoted_epoch":-1' BENCH_failover_ci.json
wait "$PRIMARY_PID" 2> /dev/null || true
timeout 60 "$SOLVE" --connect "$FSOCK" --remote-shutdown
wait "$STANDBY_PID" 2> /dev/null || true

echo "== SIGTERM drains gracefully"
SOCK="$DRILL_DIR/drain.sock"
timeout 120 "$SERVE" --socket "$SOCK" --drain-grace 5 \
  > "$DRILL_DIR/drain.log" 2>&1 &
PID=$!
wait_sock "$SOCK"
timeout 60 "$SOLVE" --connect "$SOCK" zlib > /dev/null
kill -TERM "$PID"
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 0 ]
grep -q "shutdown complete" "$DRILL_DIR/drain.log"

echo "== chaos load smoke (2x overload, ~10s)"
SOCK="$DRILL_DIR/load.sock"
timeout 120 "$SERVE" --socket "$SOCK" --repo 300 --jobs 1 --max-pending 4 \
  > "$DRILL_DIR/load.log" 2>&1 &
PID=$!
wait_sock "$SOCK"
timeout 90 "$LOAD" --socket "$SOCK" --synth 300 --chaos \
  --clients 8 --tiers 2 --duration 5 --timeout 2 --json BENCH_serve_ci.json
# overload must shed with a typed reply somewhere in the tier...
grep -o '"shed":[0-9]*' BENCH_serve_ci.json | grep -qv '"shed":0'
# ...while no worker crashed or wedged under chaos...
grep -q '"restarts":0' BENCH_serve_ci.json
# ...and the daemon still drains cleanly afterwards
timeout 60 "$SOLVE" --connect "$SOCK" --remote-shutdown
rc=0
wait "$PID" || rc=$?
[ "$rc" -eq 0 ]
grep -q "shutdown complete" "$DRILL_DIR/load.log"
rm -rf "$DRILL_DIR"
trap - EXIT

echo "== bench smoke (fig3 + fig7d --quick)"
timeout 600 dune exec bench/main.exe -- fig3 fig7d --quick --json BENCH_ci.json

echo "== portfolio smoke (fig7d --quick --jobs 4)"
timeout 600 dune exec bench/main.exe -- fig7d --quick --jobs 4 --json BENCH_ci_jobs4.json
grep -q '"jobs": 4' BENCH_ci_jobs4.json

echo "== E4S-scale reuse smoke (5k-spec buildcache, streamed reuse facts)"
# medium-scale rehearsal of the paper's §VII-C stress test: grows a ~5,000
# spec buildcache and runs all four slices through the streaming fact
# pipeline; independent of --quick so the solve sizes match a real run
timeout 900 dune exec bench/main.exe -- fig7efg-full --e4s-target 5000 \
  --json BENCH_e4s_ci.json
python3 - << 'EOF'
import json
d = json.load(open("BENCH_e4s_ci.json"))
m = d["metrics"]
assert m["e4s_specs"] >= 5000, m
# the streamed fact path must beat the materialized one at CI scale
assert m["factgen_streamed_p50_s"] < m["factgen_materialized_p50_s"], m
# the full 63k run is bounded at 2 GiB; the 5k smoke must stay far below
assert d["peak_rss_mb"] < 1024, d["peak_rss_mb"]
sums = [s for s in d["summaries"] if s["experiment"].startswith("fig7efg-full")]
assert len(sums) == 4, [s["experiment"] for s in sums]
assert all(s["n"] > 0 and s["p50_total_s"] > 0 for s in sums), sums
print("e4s smoke: %d specs, factgen %.3fs -> %.3fs, peak rss %.0f MB" % (
    m["e4s_specs"], m["factgen_materialized_p50_s"],
    m["factgen_streamed_p50_s"], d["peak_rss_mb"]))
EOF

echo "== CUDF frontend smoke (1k-package universe, both criterion stacks)"
# the Linux-distro frontend end to end: a 1k-stanza synthetic Debian-like
# universe must solve to a verified proven optimum under both stacks, and
# the unsat-core diagnosis must name the offending stanza
timeout 300 dune exec bench/main.exe -- cudf --quick --json BENCH_cudf_ci.json
python3 - << 'EOF'
import json
d = json.load(open("BENCH_cudf_ci.json"))
rows = [r for r in d["rows"] if r["experiment"].startswith("cudf-")]
assert rows, d
assert all(r["outcome"] == "optimal" and r["verified"] for r in rows), rows
stacks = {r["experiment"].split("-")[-1] for r in rows}
assert stacks == {"paranoid", "trendy"}, stacks
m = d["metrics"]
assert m["cudf-1000-paranoid_p50_s"] > 0 and m["cudf-1000-trendy_p50_s"] > 0, m
print("cudf smoke: %d solves, paranoid p50 %.2fs, trendy p50 %.2fs" % (
    len(rows), m["cudf-1000-paranoid_p50_s"], m["cudf-1000-trendy_p50_s"]))
EOF
out=$(timeout 60 dune exec bin/cudf_solve.exe -- --synth 200 --stats)
echo "$out" | grep -q "optimality proven at every level"
echo "$out" | grep -q "verified: independent model check passed"
out=$(timeout 60 dune exec bin/cudf_solve.exe -- --explain "$(dirname "$0")/ci_broken.cudf" || true)
echo "$out" | grep -q "conflicts with"

echo "== ci OK"
