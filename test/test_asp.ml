(* Tests for the ASP engine: lexer, parser, grounder, solver, optimization. *)

let solve ?config src = Asp.Solve.solve_text ?config src

let answer_strings = function
  | Asp.Solve.Unsat _ -> [ "UNSAT" ]
  | Asp.Solve.Interrupted _ -> [ "INTERRUPTED" ]
  | Asp.Solve.Sat o ->
    List.map (Format.asprintf "%a" Asp.Gatom.pp) o.Asp.Solve.answer |> List.sort compare

let check_answer msg src expected =
  Alcotest.(check (slist string compare)) msg expected (answer_strings (solve src))

let outcome src =
  match solve src with
  | Asp.Solve.Sat o -> o
  | Asp.Solve.Unsat _ -> Alcotest.fail "expected SAT"
  | Asp.Solve.Interrupted _ -> Alcotest.fail "unbudgeted solve interrupted"

let is_unsat src =
  match solve src with
  | Asp.Solve.Unsat _ -> true
  | Asp.Solve.Sat _ | Asp.Solve.Interrupted _ -> false

(* ------------------------------------------------------------------ *)
(* Parser                                                              *)
(* ------------------------------------------------------------------ *)

let test_parse_roundtrip () =
  let src =
    "node(\"hdf5\").\n\
     depends_on(\"hdf5\", \"mpi\").\n\
     node(D) :- node(P), depends_on(P, D).\n\
     :- depends_on(P, P).\n\
     1 { version(P, V) : possible_version(P, V) } 1 :- node(P).\n\
     #minimize{ W@3,P,V : version_weight(P, V, W) }.\n"
  in
  let prog = Asp.Parser.parse src in
  Alcotest.(check int) "statements" 6 (List.length prog);
  (* pretty-print then re-parse: same statement count *)
  let printed = Format.asprintf "%a" Asp.Ast.pp_program prog in
  let reparsed = Asp.Parser.parse printed in
  Alcotest.(check int) "reparse" 6 (List.length reparsed)

let test_parse_conditional () =
  let src =
    "condition_holds(ID) :- condition(ID); attr(N, A1) : condition_requirement(ID, N, \
     A1); attr(N, A1, A2) : condition_requirement(ID, N, A1, A2).\n"
  in
  match Asp.Parser.parse src with
  | [ Asp.Ast.Rule { body; _ } ] ->
    let foralls =
      List.filter (function Asp.Ast.Forall _ -> true | _ -> false) body
    in
    Alcotest.(check int) "two conditional literals" 2 (List.length foralls)
  | _ -> Alcotest.fail "expected one rule"

let test_parse_errors () =
  let bad = [ "node(."; "a :- b"; "1 { x } y."; "#unknown." ] in
  List.iter
    (fun src ->
      match Asp.Parser.parse src with
      | exception Asp.Solver_error.Error (Asp.Solver_error.Parse _) -> ()
      | _ -> Alcotest.failf "expected syntax error for %S" src)
    bad

let test_parse_error_position () =
  match Asp.Parser.parse "p(a).\nq(X :- r." with
  | exception Asp.Solver_error.Error (Asp.Solver_error.Parse { line; col; _ }) ->
    Alcotest.(check int) "error on the second line" 2 line;
    Alcotest.(check bool) "column is positive" true (col > 0)
  | _ -> Alcotest.fail "expected a located parse error"

let test_lexer_error_position () =
  match Asp.Parser.parse "p(a).\nq(\"unterminated." with
  | exception Asp.Solver_error.Error (Asp.Solver_error.Parse { line; col; _ }) ->
    Alcotest.(check int) "line of the open quote" 2 line;
    Alcotest.(check int) "column of the open quote" 3 col
  | _ -> Alcotest.fail "expected a located lexer error"

let test_parse_arith () =
  match Asp.Parser.parse "p(X + 2 * Y) :- q(X, Y)." with
  | [ Asp.Ast.Rule { head = Asp.Ast.Head_atom { args = [ t ]; _ }; _ } ] -> (
    match t with
    | Asp.Ast.Binop (Asp.Ast.Add, _, Asp.Ast.Binop (Asp.Ast.Mul, _, _)) -> ()
    | _ -> Alcotest.fail "precedence: expected X + (2 * Y)")
  | _ -> Alcotest.fail "expected one rule"

(* ------------------------------------------------------------------ *)
(* Grounding + solving basics                                          *)
(* ------------------------------------------------------------------ *)

let test_facts_only () =
  check_answer "facts are the answer" {|p(1). q("a"). r.|} [ "p(1)"; "q(a)"; "r" ]

let test_closure () =
  (* the paper's dependency-closure example *)
  let src =
    {|node("hdf5").
      depends_on("hdf5", "mpi").
      depends_on("mpi", "hwloc").
      node(D) :- node(P), depends_on(P, D).|}
  in
  check_answer "transitive nodes" src
    [
      "node(hdf5)";
      "node(mpi)";
      "node(hwloc)";
      "depends_on(hdf5,mpi)";
      "depends_on(mpi,hwloc)";
    ]

let test_integrity_constraint () =
  Alcotest.(check bool) "self-dep banned" true
    (is_unsat
       {|node("a"). depends_on("a", "a").
         node(D) :- node(P), depends_on(P, D).
         :- depends_on(P, P).|})

let test_fig3 () =
  (* Figure 3 of the paper: two stable models; the choice picks node(a)
     and/or node(b); closure adds c and d. *)
  let src =
    {|depends_on(a, c).
      depends_on(b, d).
      depends_on(c, d).
      node(D) :- node(P), depends_on(P, D).
      1 { node(a); node(b) }.|}
  in
  let models = Asp.Naive.stable_models (Asp.Parser.parse src) in
  let strings =
    List.map
      (fun m ->
        List.filter_map
          (fun (a : Asp.Gatom.t) ->
            if a.Asp.Gatom.pred = "node" then
              Some (Format.asprintf "%a" Asp.Gatom.pp a)
            else None)
          m)
      models
  in
  (* three models: {b,d}, {a,c,d}, {a,b,c,d} *)
  Alcotest.(check int) "three stable models" 3 (List.length strings);
  Alcotest.(check bool) "b-only model" true
    (List.mem [ "node(b)"; "node(d)" ] strings);
  Alcotest.(check bool) "a-only model" true
    (List.mem [ "node(a)"; "node(c)"; "node(d)" ] strings)

let test_negation () =
  check_answer "negation as failure" {|p :- not q. r :- p.|} [ "p"; "r" ]

let test_negation_cycle_two_models () =
  (* p :- not q. q :- not p. has two stable models; solver returns one *)
  let o = outcome "p :- not q. q :- not p." in
  let ans = List.map (fun (a : Asp.Gatom.t) -> a.Asp.Gatom.pred) o.Asp.Solve.answer in
  Alcotest.(check bool) "exactly one of p/q" true (ans = [ "p" ] || ans = [ "q" ])

let test_unfounded_rejected () =
  (* mutual positive support must not justify itself *)
  check_answer "unfounded loop" {|p :- q. q :- p. r :- not p.|} [ "r" ]

let test_loop_external_support_via_other_atom () =
  (* Regression: {a, b} form a positive loop; only [a] has an external
     support (via e), while [b] must be true.  A loop formula built from
     per-atom external supports would wrongly conclude UNSAT -- the correct
     formula uses the external supports of the whole unfounded set. *)
  let src = {|a :- b. b :- a. a :- e. { e }. :- not b.|} in
  check_answer "loop entered through the other atom" src [ "a"; "b"; "e" ]

let test_unfounded_with_choice () =
  (* a and b support each other; the choice provides external support only
     for a, so {a, b} is stable only via the choice *)
  let src = {|a :- b. b :- a. { a }. :- not b.|} in
  check_answer "choice-founded loop" src [ "a"; "b" ]

let test_choice_cardinality () =
  let src =
    {|item(1). item(2). item(3).
      2 { pick(I) : item(I) } 2.|}
  in
  let o = outcome src in
  Alcotest.(check int) "picks exactly 2" 2
    (List.length (Asp.Solve.atoms_of o "pick"))

let test_choice_bound_unsat () =
  Alcotest.(check bool) "lb > elems" true
    (is_unsat {|item(1). 3 { pick(I) : item(I) } 3.|})

let test_paper_version_choice () =
  (* Section IV-D program: optimization picks the newest version (weight 0) *)
  let src =
    {|node("hdf5").
      possible_version("hdf5", "1.13.1", 0).
      possible_version("hdf5", "1.12.1", 1).
      1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
      version_weight(P, V, Weight) :-
        version(P, V), possible_version(P, V, Weight).
      #minimize{ W@3,P,V : version_weight(P, V, W)}.|}
  in
  let o = outcome src in
  Alcotest.(check bool) "newest version chosen" true
    (Asp.Solve.holds o "version" [ Asp.Term.str "hdf5"; Asp.Term.str "1.13.1" ]);
  Alcotest.(check (list (pair int int))) "cost 0 at priority 3" [ (3, 0) ]
    o.Asp.Solve.costs

let test_optimization_forced_cost () =
  (* constraint forces the worse version: optimal cost is 1 *)
  let src =
    {|node("hdf5").
      possible_version("hdf5", "new", 0).
      possible_version("hdf5", "old", 1).
      1 { version(P, V) : possible_version(P, V, W) } 1 :- node(P).
      :- version("hdf5", "new").
      version_weight(P, V, W) :- version(P, V), possible_version(P, V, W).
      #minimize{ W@3,P,V : version_weight(P, V, W)}.|}
  in
  let o = outcome src in
  Alcotest.(check (list (pair int int))) "forced cost" [ (3, 1) ] o.Asp.Solve.costs

let test_multi_level_optimization () =
  (* lexicographic: higher priority dominates *)
  let src =
    {|1 { pick(a); pick(b) } 1.
      costly_high(X) :- pick(X), X = a.
      costly_low(X) :- pick(X), X = b.
      #minimize{ 1@10,X : costly_high(X) }.
      #minimize{ 5@1,X : costly_low(X) }.|}
  in
  let o = outcome src in
  (* avoiding the priority-10 cost means picking b, paying 5 at priority 1 *)
  Alcotest.(check bool) "picked b" true
    (Asp.Solve.holds o "pick" [ Asp.Term.str "b" ]);
  Alcotest.(check (list (pair int int))) "costs" [ (10, 0); (1, 5) ] o.Asp.Solve.costs

let test_maximize () =
  let src =
    {|{ take(gold); take(silver) }.
      value(gold, 10). value(silver, 5).
      :- take(gold), take(silver).
      #maximize{ V@1,X : take(X), value(X, V) }.|}
  in
  let o = outcome src in
  Alcotest.(check bool) "takes gold" true
    (Asp.Solve.holds o "take" [ Asp.Term.str "gold" ]);
  Alcotest.(check (list (pair int int))) "negated cost" [ (1, -10) ] o.Asp.Solve.costs

let test_cycle_detection_path () =
  (* the paper's acyclicity program *)
  let src =
    {|depends_on(a, b). depends_on(b, c). depends_on(c, a).
      path(A, B) :- depends_on(A, B).
      path(A, C) :- path(A, B), depends_on(B, C).
      :- path(A, B), path(B, A).|}
  in
  Alcotest.(check bool) "cyclic graph rejected" true (is_unsat src)

let test_arith_in_rules () =
  check_answer "arithmetic" {|num(3). double(X * 2) :- num(X). big(X) :- double(X), X > 5.|}
    [ "num(3)"; "double(6)"; "big(6)" ]

let test_comparisons () =
  let src =
    {|v(1). v(2). v(3).
      less(X, Y) :- v(X), v(Y), X < Y.|}
  in
  let o = outcome src in
  Alcotest.(check int) "three pairs" 3 (List.length (Asp.Solve.atoms_of o "less"))

(* ------------------------------------------------------------------ *)
(* Conditional literals (generalized conditions of Section V-A)        *)
(* ------------------------------------------------------------------ *)

let test_generalized_conditions () =
  let src =
    {|condition(1).
      condition_requirement(1, "node", "h5utils").
      condition_requirement(1, "variant_on", "h5utils").
      attr("node", "h5utils").
      attr("variant_on", "h5utils").
      condition_holds(ID) :-
        condition(ID);
        attr(N, A1) : condition_requirement(ID, N, A1).|}
  in
  let o = outcome src in
  Alcotest.(check bool) "condition holds" true
    (Asp.Solve.holds o "condition_holds" [ Asp.Term.int 1 ])

let test_generalized_conditions_unmet () =
  let src =
    {|condition(1).
      condition_requirement(1, "node", "h5utils").
      condition_requirement(1, "variant_on", "h5utils").
      attr("node", "h5utils").
      condition_holds(ID) :-
        condition(ID);
        attr(N, A1) : condition_requirement(ID, N, A1).|}
  in
  let o = outcome src in
  Alcotest.(check bool) "condition does not hold" false
    (Asp.Solve.holds o "condition_holds" [ Asp.Term.int 1 ])

let test_condition_triggers_choice () =
  (* requirement satisfied by a solver choice, not a fact *)
  let src =
    {|condition(1).
      condition_requirement(1, "on", "x").
      { attr("on", "x") }.
      condition_holds(ID) :- condition(ID); attr(N, A) : condition_requirement(ID, N, A).
      imposed("y") :- condition_holds(1).
      :- not imposed("y").|}
  in
  let o = outcome src in
  Alcotest.(check bool) "choice made to satisfy condition" true
    (Asp.Solve.holds o "attr" [ Asp.Term.str "on"; Asp.Term.str "x" ])

(* ------------------------------------------------------------------ *)
(* Grounder edge cases and error reporting                              *)
(* ------------------------------------------------------------------ *)

let ground_error src =
  match Asp.Grounder.ground (Asp.Parser.parse src) with
  | exception Asp.Solver_error.Error (Asp.Solver_error.Ground _) -> true
  | _ -> false

let test_grounder_errors () =
  Alcotest.(check bool) "unsafe head variable" true (ground_error "p(X) :- q.  q.");
  Alcotest.(check bool) "unsafe negative literal" true
    (ground_error "p :- q, not r(X). q.");
  Alcotest.(check bool) "division by zero" true (ground_error "p(1 / 0).");
  Alcotest.(check bool) "arithmetic on strings" true
    (ground_error {|q("a"). p(X + 1) :- q(X).|});
  Alcotest.(check bool) "non-EDB forall condition" true
    (ground_error "d(1). c(X) :- d(X). h :- a(X) : c(X).");
  Alcotest.(check bool) "string cardinality bound" true
    (ground_error {|b("x"). B { p } :- b(B).|})

let test_arith_operators () =
  check_answer "all operators"
    {|n(7). sub(X - 2) :- n(X). mul(X * 3) :- n(X). div(X / 2) :- n(X).
      md(X \ 4) :- n(X). neg(0 - X) :- n(X).|}
    [ "n(7)"; "sub(5)"; "mul(21)"; "div(3)"; "md(3)"; "neg(-7)" ]

let test_choice_guard_generates () =
  (* guards bind choice-local variables over EDB facts *)
  let src = {|opt(a). opt(b). opt(c). 2 { pick(X) : opt(X) } 2.|} in
  let o = outcome src in
  Alcotest.(check int) "two picks" 2 (List.length (Asp.Solve.atoms_of o "pick"))

let test_minimize_with_negation_guard () =
  let src =
    {|1 { p(a); p(b) } 2.
      #minimize { 1@1,X : p(X), not preferred(X) }.
      preferred(a).|}
  in
  let o = outcome src in
  (* choosing only the preferred element costs nothing *)
  Alcotest.(check (list (pair int int))) "zero cost" [ (1, 0) ] o.Asp.Solve.costs;
  Alcotest.(check bool) "picked a" true (Asp.Solve.holds o "p" [ Asp.Term.str "a" ])

let test_lexer_strings_and_comments () =
  let src = "p(\"a \\\"quoted\\\" string\"). % trailing comment\n% full line\nq." in
  let o = outcome src in
  Alcotest.(check bool) "string fact" true
    (Asp.Solve.holds o "p" [ Asp.Term.str "a \"quoted\" string" ]);
  Alcotest.(check bool) "q" true (Asp.Solve.holds o "q" [])

let test_empty_and_weird_programs () =
  (* an empty program has one (empty) stable model *)
  (match Asp.Solve.solve_text "" with
  | Asp.Solve.Sat o -> Alcotest.(check int) "empty answer" 0 (List.length o.Asp.Solve.answer)
  | Asp.Solve.Unsat _ -> Alcotest.fail "empty program is satisfiable"
  | Asp.Solve.Interrupted _ -> Alcotest.fail "unbudgeted solve interrupted");
  (* a single trivially false constraint *)
  Alcotest.(check bool) "fact + contradiction" true (is_unsat "p. :- p.")

let test_intervals () =
  check_answer "interval facts expand" {|cell(1..3). even(X) :- cell(X), X \ 2 = 0.|}
    [ "cell(1)"; "cell(2)"; "cell(3)"; "even(2)" ];
  check_answer "empty interval" {|p(5..3). q.|} [ "q" ];
  (* multiple intervals take the cartesian product *)
  let o = outcome "grid(1..2, 1..2)." in
  Alcotest.(check int) "2x2 grid" 4 (List.length (Asp.Solve.atoms_of o "grid"));
  (* intervals outside facts are rejected *)
  match Asp.Grounder.ground (Asp.Parser.parse "p(X) :- q(X..3). q(1).") with
  | exception Asp.Solver_error.Error (Asp.Solver_error.Ground _) -> ()
  | _ -> Alcotest.fail "interval in body accepted"

let test_const_directive () =
  check_answer "#const substitution"
    {|#const n = 3. #const who = "world". size(n). hello(who). big :- size(X), X >= n.|}
    [ "size(3)"; "hello(world)"; "big" ]

let test_show_directive () =
  let o = outcome {|p(1). q(2). r(1, 2). #show q/1. #show r/2.|} in
  let preds =
    List.sort_uniq compare (List.map (fun (a : Asp.Gatom.t) -> a.Asp.Gatom.pred) o.Asp.Solve.answer)
  in
  Alcotest.(check (list string)) "only shown predicates" [ "q"; "r" ] preds;
  (* #show. alone hides everything *)
  let o = outcome {|p(1). #show.|} in
  Alcotest.(check int) "all hidden" 0 (List.length o.Asp.Solve.answer)

let test_function_terms () =
  (* compound terms unify structurally, like Spack's node(ID, Package) *)
  let src =
    {|pkg(node(1, "hdf5")). pkg(node(2, "zlib")).
      id(I) :- pkg(node(I, N)).
      named(N) :- pkg(node(I, N)), I > 1.
      wrapped(pair(N, I)) :- pkg(node(I, N)).|}
  in
  let o = outcome src in
  Alcotest.(check int) "ids projected" 2 (List.length (Asp.Solve.atoms_of o "id"));
  Alcotest.(check bool) "guarded projection" true
    (Asp.Solve.holds o "named" [ Asp.Term.str "zlib" ]);
  Alcotest.(check bool) "terms rebuilt in heads" true
    (Asp.Solve.holds o "wrapped"
       [ Asp.Term.fun_ "pair" [ Asp.Term.str "hdf5"; Asp.Term.int 1 ] ]);
  (* nested terms *)
  let o = outcome {|deep(f(g(1), h(x, 2))). got(A) :- deep(f(A, B)).|} in
  Alcotest.(check bool) "nested unification" true
    (Asp.Solve.holds o "got" [ Asp.Term.fun_ "g" [ Asp.Term.int 1 ] ])

let test_function_term_mismatch () =
  (* different functors or arities never unify *)
  check_answer "no cross-functor match"
    {|p(f(1)). p(g(1)). p(f(1, 2)). q(X) :- p(f(X)).|}
    [ "p(f(1))"; "p(g(1))"; "p(f(1,2))"; "q(1)" ]

let test_enumerate_limit () =
  let prog = Asp.Parser.parse "{ a; b; c }." in
  Alcotest.(check int) "eight models" 8 (List.length (Asp.Solve.enumerate prog));
  Alcotest.(check int) "limit respected" 3 (List.length (Asp.Solve.enumerate ~limit:3 prog))

(* ------------------------------------------------------------------ *)
(* Cross-validation against the naive reference solver                 *)
(* ------------------------------------------------------------------ *)

let gen_small_program =
  let open QCheck in
  (* random programs over atoms a..e with normal rules, negation, and a
     choice; guaranteed <= 22 candidate atoms *)
  let atom = Gen.oneofl [ "a"; "b"; "c"; "d"; "e" ] in
  let lit =
    Gen.map2
      (fun neg a -> if neg then Asp.Ast.Neg (Asp.Ast.atom a []) else Asp.Ast.Pos (Asp.Ast.atom a []))
      Gen.bool atom
  in
  let rule =
    Gen.map2
      (fun h body ->
        Asp.Ast.Rule { head = Asp.Ast.Head_atom (Asp.Ast.atom h []); body; line = 0 })
      atom
      (Gen.list_size (Gen.int_range 0 3) lit)
  in
  let constraint_ =
    Gen.map
      (fun body -> Asp.Ast.Rule { head = Asp.Ast.Head_none; body; line = 0 })
      (Gen.list_size (Gen.int_range 1 3) lit)
  in
  let choice =
    Gen.map3
      (fun elems lb ub ->
        let n = List.length elems in
        Asp.Ast.Rule
          {
            head =
              Asp.Ast.Head_choice
                {
                  (* bounds are sometimes absent, sometimes within range,
                     occasionally infeasible *)
                  lb = Option.map Asp.Ast.cst_int lb;
                  ub =
                    Option.map (fun u -> Asp.Ast.cst_int (min (n + 1) u)) ub;
                  elems =
                    List.map (fun a -> { Asp.Ast.elem = Asp.Ast.atom a []; guard = [] }) elems;
                };
            body = [];
            line = 0;
          })
      (Gen.list_size (Gen.int_range 1 3) atom)
      (Gen.opt (Gen.int_range 0 3))
      (Gen.opt (Gen.int_range 0 3))
  in
  let stmt = Gen.frequency [ (5, rule); (2, constraint_); (2, choice) ] in
  make
    ~print:(fun p -> Format.asprintf "%a" Asp.Ast.pp_program p)
    (Gen.list_size (Gen.int_range 1 8) stmt)

let cdcl_model_of prog =
  match Asp.Solve.solve_program prog with
  | Asp.Solve.Unsat _ | Asp.Solve.Interrupted _ -> None
  | Asp.Solve.Sat o -> Some (List.sort Asp.Gatom.compare o.Asp.Solve.answer)

let prop_agrees_with_naive =
  QCheck.Test.make ~count:300 ~name:"CDCL solver agrees with naive enumeration"
    gen_small_program (fun prog ->
      let naive = Asp.Naive.stable_models prog in
      match cdcl_model_of prog with
      | None -> naive = []
      | Some m -> List.exists (fun m' -> List.compare Asp.Gatom.compare m m' = 0) naive)

let gen_opt_program =
  let open QCheck in
  (* random optimization problems: choices over a..d plus random weights *)
  let atom = Gen.oneofl [ "a"; "b"; "c"; "d" ] in
  let lit =
    Gen.map2
      (fun neg a -> if neg then Asp.Ast.Neg (Asp.Ast.atom a []) else Asp.Ast.Pos (Asp.Ast.atom a []))
      Gen.bool atom
  in
  let choice =
    Gen.return
      (Asp.Ast.Rule
         {
           head =
             Asp.Ast.Head_choice
               {
                 lb = None;
                 ub = None;
                 elems =
                   List.map
                     (fun a -> { Asp.Ast.elem = Asp.Ast.atom a []; guard = [] })
                     [ "a"; "b"; "c"; "d" ];
               };
           body = [];
           line = 0;
         })
  in
  let rule =
    Gen.map2
      (fun h body -> Asp.Ast.Rule { head = Asp.Ast.Head_atom (Asp.Ast.atom h []); body; line = 0 })
      atom
      (Gen.list_size (Gen.int_range 1 2) lit)
  in
  let minimize =
    Gen.map3
      (fun a w p ->
        Asp.Ast.Minimize
          [
            {
              Asp.Ast.weight = Asp.Ast.cst_int w;
              priority = Asp.Ast.cst_int p;
              tuple = [ Asp.Ast.cst_str a ];
              guard = [ Asp.Ast.Pos (Asp.Ast.atom a []) ];
            };
          ])
      atom (Gen.int_range 1 4) (Gen.int_range 1 2)
  in
  let stmt = Gen.frequency [ (3, rule); (3, minimize) ] in
  make
    ~print:(fun p -> Format.asprintf "%a" Asp.Ast.pp_program p)
    (Gen.map2 (fun c rest -> c :: rest) choice (Gen.list_size (Gen.int_range 2 6) stmt))

let prop_optimal_cost_matches_naive =
  QCheck.Test.make ~count:300 ~name:"optimal cost vector matches naive enumeration"
    gen_opt_program (fun prog ->
      let naive = Asp.Naive.optimal_models prog in
      match Asp.Solve.solve_program prog with
      | Asp.Solve.Interrupted _ -> false
      | Asp.Solve.Unsat _ -> naive = []
      | Asp.Solve.Sat o -> (
        match naive with
        | [] -> false
        | (_, best_costs) :: _ ->
          let nonzero = List.filter (fun (_, v) -> v <> 0) in
          nonzero o.Asp.Solve.costs = nonzero best_costs))

let prop_enumerate_matches_naive =
  QCheck.Test.make ~count:200 ~name:"model enumeration matches naive (no optimization)"
    gen_small_program (fun prog ->
      (* only compare on programs without minimize statements *)
      let naive = Asp.Naive.stable_models prog in
      let enumerated =
        Asp.Solve.enumerate prog
        |> List.map (List.sort Asp.Gatom.compare)
        |> List.sort (List.compare Asp.Gatom.compare)
      in
      List.compare (List.compare Asp.Gatom.compare) naive enumerated = 0)

let prop_usc_matches_bb =
  QCheck.Test.make ~count:200 ~name:"usc and bb strategies find the same optimum"
    gen_opt_program (fun prog ->
      let solve strategy =
        let config = Asp.Config.make ~strategy () in
        match Asp.Solve.solve_program ~config prog with
        | Asp.Solve.Unsat _ | Asp.Solve.Interrupted _ -> None
        | Asp.Solve.Sat o ->
          Some (List.filter (fun (_, v) -> v <> 0) o.Asp.Solve.costs)
      in
      solve Asp.Config.Bb = solve Asp.Config.Usc)

let () =
  let qsuite =
    List.map QCheck_alcotest.to_alcotest
      [
        prop_agrees_with_naive;
        prop_optimal_cost_matches_naive;
        prop_usc_matches_bb;
        prop_enumerate_matches_naive;
      ]
  in
  Alcotest.run "asp"
    [
      ( "parser",
        [
          Alcotest.test_case "roundtrip" `Quick test_parse_roundtrip;
          Alcotest.test_case "conditional literals" `Quick test_parse_conditional;
          Alcotest.test_case "syntax errors" `Quick test_parse_errors;
          Alcotest.test_case "parse error position" `Quick test_parse_error_position;
          Alcotest.test_case "lexer error position" `Quick test_lexer_error_position;
          Alcotest.test_case "arithmetic precedence" `Quick test_parse_arith;
        ] );
      ( "solving",
        [
          Alcotest.test_case "facts only" `Quick test_facts_only;
          Alcotest.test_case "dependency closure" `Quick test_closure;
          Alcotest.test_case "integrity constraint" `Quick test_integrity_constraint;
          Alcotest.test_case "figure 3" `Quick test_fig3;
          Alcotest.test_case "negation" `Quick test_negation;
          Alcotest.test_case "negation cycle" `Quick test_negation_cycle_two_models;
          Alcotest.test_case "unfounded loop rejected" `Quick test_unfounded_rejected;
          Alcotest.test_case "loop external support" `Quick
            test_loop_external_support_via_other_atom;
          Alcotest.test_case "choice-founded loop" `Quick test_unfounded_with_choice;
          Alcotest.test_case "choice cardinality" `Quick test_choice_cardinality;
          Alcotest.test_case "choice bound unsat" `Quick test_choice_bound_unsat;
          Alcotest.test_case "acyclicity constraint" `Quick test_cycle_detection_path;
          Alcotest.test_case "arithmetic" `Quick test_arith_in_rules;
          Alcotest.test_case "comparisons" `Quick test_comparisons;
        ] );
      ( "optimization",
        [
          Alcotest.test_case "paper version choice" `Quick test_paper_version_choice;
          Alcotest.test_case "forced cost" `Quick test_optimization_forced_cost;
          Alcotest.test_case "multi level" `Quick test_multi_level_optimization;
          Alcotest.test_case "maximize" `Quick test_maximize;
        ] );
      ( "grounder",
        [
          Alcotest.test_case "error reporting" `Quick test_grounder_errors;
          Alcotest.test_case "arithmetic operators" `Quick test_arith_operators;
          Alcotest.test_case "choice guard generators" `Quick test_choice_guard_generates;
          Alcotest.test_case "minimize with negation guard" `Quick
            test_minimize_with_negation_guard;
          Alcotest.test_case "strings and comments" `Quick test_lexer_strings_and_comments;
          Alcotest.test_case "degenerate programs" `Quick test_empty_and_weird_programs;
          Alcotest.test_case "intervals" `Quick test_intervals;
          Alcotest.test_case "#const" `Quick test_const_directive;
          Alcotest.test_case "#show" `Quick test_show_directive;
          Alcotest.test_case "function terms" `Quick test_function_terms;
          Alcotest.test_case "functor mismatch" `Quick test_function_term_mismatch;
          Alcotest.test_case "enumeration limit" `Quick test_enumerate_limit;
        ] );
      ( "conditions",
        [
          Alcotest.test_case "generalized conditions" `Quick test_generalized_conditions;
          Alcotest.test_case "unmet requirement" `Quick test_generalized_conditions_unmet;
          Alcotest.test_case "condition triggers choice" `Quick
            test_condition_triggers_choice;
        ] );
      ("properties", qsuite);
    ]
