(* Fault-injection sweeps for the budget layer.

   The harness arms a deterministic fault at each interruption point of the
   pipeline (grounding instances, search conflicts, optimization steps) and
   fires it after exactly N events, for every N up to the unbudgeted event
   count.  Every run must either complete identically to the unbudgeted
   solve or return a well-formed degraded/interrupted outcome whose cost
   vector is lexicographically >= the optimum — the anytime-optimality
   contract of DESIGN.md. *)

module B = Asp.Budget

(* a weighted vertex cover with two optimization levels: small enough for
   Asp.Naive to enumerate, hard enough to generate conflicts and several
   descent steps *)
let src =
  {|node(1..5).
    edge(1,2). edge(2,3). edge(3,4). edge(4,5). edge(5,1). edge(1,3).
    { in(X) : node(X) }.
    :- edge(X,Y), not in(X), not in(Y).
    w(1,3). w(2,1). w(3,4). w(4,1). w(5,5).
    #minimize { W@2,X : in(X), w(X,W) }.
    #minimize { 1@1,X : in(X) }.|}

let prog = Asp.Parser.parse src

(* ground truth from the brute-force reference solver *)
let naive_models =
  List.map (List.sort Asp.Gatom.compare) (Asp.Naive.stable_models prog)

let is_stable_model answer =
  List.mem (List.sort Asp.Gatom.compare answer) naive_models

(* first differing level decides; equal vectors are also >= *)
let rec lex_ge a b =
  match (a, b) with
  | [], [] -> true
  | (pa, va) :: ta, (pb, vb) :: tb when pa = pb ->
    va > vb || (va = vb && lex_ge ta tb)
  | _ -> false

let config strategy = Asp.Config.make ~strategy ()

let unbudgeted strategy =
  match Asp.Solve.solve_program ~config:(config strategy) prog with
  | Asp.Solve.Sat o ->
    Alcotest.(check bool) "baseline quality optimal" true
      (o.Asp.Solve.quality = `Optimal);
    o
  | _ -> Alcotest.fail "baseline solve did not return SAT"

(* count the events an unbudgeted run generates, to size the sweep *)
let event_counts strategy =
  let b = B.start B.no_limits in
  match Asp.Solve.solve_program ~config:(config strategy) ~budget:b prog with
  | Asp.Solve.Sat _ -> B.progress b
  | _ -> Alcotest.fail "counting solve did not return SAT"

let check_run ~baseline ~what = function
  | Asp.Solve.Unsat _ -> Alcotest.failf "%s: faulted run reported UNSAT" what
  | Asp.Solve.Interrupted { info; _ } ->
    Alcotest.(check bool) (what ^ ": interruption reason is the fault") true
      (info.B.reason = B.Injected);
    Alcotest.(check bool) (what ^ ": progress counters are sane") true
      (info.B.progress.B.conflicts >= 0
      && info.B.progress.B.instances >= 0
      && info.B.progress.B.opt_steps >= 0)
  | Asp.Solve.Sat o -> (
    Alcotest.(check bool) (what ^ ": answer is a stable model") true
      (is_stable_model o.Asp.Solve.answer);
    Alcotest.(check bool) (what ^ ": costs lexicographically >= optimum") true
      (lex_ge o.Asp.Solve.costs baseline.Asp.Solve.costs);
    match o.Asp.Solve.quality with
    | `Optimal ->
      Alcotest.(check (list (pair int int)))
        (what ^ ": complete run matches the unbudgeted optimum")
        baseline.Asp.Solve.costs o.Asp.Solve.costs
    | `Degraded bounds ->
      (* each proved lower bound must not exceed the reported model value *)
      List.iter
        (fun (prio, bound) ->
          match List.assoc_opt prio o.Asp.Solve.costs with
          | None -> Alcotest.failf "%s: bound for unknown priority %d" what prio
          | Some v ->
            Alcotest.(check bool)
              (Printf.sprintf "%s: bound %d@%d <= value %d" what bound prio v)
              true (bound <= v))
        bounds)

let sweep strategy point count =
  let baseline = unbudgeted strategy in
  for n = 1 to count do
    let b = B.start B.no_limits in
    Asp.Fault.arm b point n;
    let what =
      Printf.sprintf "%s after %d %s"
        (match strategy with Asp.Config.Bb -> "bb" | Asp.Config.Usc -> "usc")
        n
        (match point with
        | Asp.Fault.Conflicts -> "conflicts"
        | Asp.Fault.Instances -> "instances"
        | Asp.Fault.Opt_steps -> "opt steps"
        | Asp.Fault.Verify_steps -> "verify steps")
    in
    check_run ~baseline ~what
      (Asp.Solve.solve_program ~config:(config strategy) ~budget:b prog)
  done

let test_sweep_conflicts strategy () =
  let c = (event_counts strategy).B.conflicts in
  (* usc's conflicts surface as assumption cores, which conclude the solve
     rather than tick the budget — only bb is guaranteed to tick here *)
  if strategy = Asp.Config.Bb then
    Alcotest.(check bool) "program generates conflicts" true (c > 0);
  sweep strategy Asp.Fault.Conflicts (min c 50)

let test_sweep_instances strategy () =
  let c = (event_counts strategy).B.instances in
  Alcotest.(check bool) "program generates instances" true (c > 0);
  (* instances number in the hundreds; probe a spread, not every value *)
  let baseline = unbudgeted strategy in
  List.iter
    (fun n ->
      if n <= c then begin
        let b = B.start B.no_limits in
        Asp.Fault.arm b Asp.Fault.Instances n;
        check_run ~baseline
          ~what:(Printf.sprintf "after %d instances" n)
          (Asp.Solve.solve_program ~config:(config strategy) ~budget:b prog)
      end)
    [ 1; 2; 3; 5; 10; 20; 50; 100; c / 2; c - 1; c ]

let test_sweep_opt_steps strategy () =
  let c = (event_counts strategy).B.opt_steps in
  Alcotest.(check bool) "descent takes optimization steps" true (c > 0);
  sweep strategy Asp.Fault.Opt_steps c

(* an injected fault during grounding interrupts in the Ground phase *)
let test_ground_phase_attribution () =
  let b = B.start B.no_limits in
  Asp.Fault.arm b Asp.Fault.Instances 1;
  match Asp.Solve.solve_program ~budget:b prog with
  | Asp.Solve.Interrupted { info; _ } ->
    Alcotest.(check bool) "phase is grounding" true (info.B.phase = B.Ground)
  | _ -> Alcotest.fail "fault at the first instance did not interrupt"

(* once tripped, the same budget keeps re-raising the original info *)
let test_budget_stays_tripped () =
  let b = B.start B.no_limits in
  Asp.Fault.arm b Asp.Fault.Instances 1;
  (match Asp.Solve.solve_program ~budget:b prog with
  | Asp.Solve.Interrupted _ -> ()
  | _ -> Alcotest.fail "expected interruption");
  match Asp.Solve.solve_program ~budget:b prog with
  | Asp.Solve.Interrupted { info; _ } ->
    Alcotest.(check bool) "same reason on reuse" true (info.B.reason = B.Injected)
  | _ -> Alcotest.fail "tripped budget allowed another solve"

(* ------------------------------------------------------------------ *)
(* Concretizer-level faults                                            *)
(* ------------------------------------------------------------------ *)

let repo = Pkg.Repo_core.repo

let concretizer_fault point n =
  let b = B.start B.no_limits in
  Asp.Fault.arm b point n;
  Concretize.Concretizer.solve ~budget:b ~repo
    [ Specs.Spec_parser.parse "hdf5" ]

let test_concretizer_sweep () =
  List.iter
    (fun (point, n) ->
      match concretizer_fault point n with
      | Concretize.Concretizer.Unsatisfiable _ ->
        Alcotest.fail "faulted concretization reported UNSAT"
      | Concretize.Concretizer.Interrupted { info; _ } ->
        Alcotest.(check bool) "reason is the fault" true
          (info.B.reason = B.Injected)
      | Concretize.Concretizer.Concrete s ->
        (* degraded or not, the spec must pass the validity audit *)
        Alcotest.(check (list string)) "degraded spec still validates" []
          (List.map
             (Format.asprintf "%a" Concretize.Validate.pp_violation)
             (Concretize.Validate.check ~repo s.Concretize.Concretizer.spec)))
    [
      (Asp.Fault.Instances, 1);
      (Asp.Fault.Instances, 100);
      (Asp.Fault.Instances, 10_000);
      (Asp.Fault.Conflicts, 1);
      (Asp.Fault.Conflicts, 5);
      (Asp.Fault.Opt_steps, 1);
      (Asp.Fault.Opt_steps, 3);
      (Asp.Fault.Opt_steps, 8);
    ]

(* a tight wall-clock deadline on a large synthetic problem must come back
   quickly with a degraded or interrupted outcome, never hang or raise *)
let test_wall_deadline_large_solve () =
  let sr = Pkg.Repo_synth.repo (Pkg.Repo_synth.scaled 800) in
  let roots =
    List.filter
      (fun p -> String.length p > 3 && String.sub p 0 3 = "app")
      (Pkg.Repo.package_names sr)
    |> List.map Specs.Spec_parser.parse
  in
  let limits = { B.no_limits with B.wall = Some 0.05 } in
  let t0 = Unix.gettimeofday () in
  let result =
    Concretize.Concretizer.solve ~budget:(B.start limits) ~repo:sr roots
  in
  let elapsed = Unix.gettimeofday () -. t0 in
  (* generous overshoot allowance: the deadline is only probed at ticks *)
  Alcotest.(check bool) "returns promptly" true (elapsed < 10.);
  match result with
  | Concretize.Concretizer.Interrupted { info; _ } ->
    Alcotest.(check bool) "reason is the deadline" true
      (info.B.reason = B.Deadline)
  | Concretize.Concretizer.Concrete _ ->
    (* a fast machine may finish; any completed result is acceptable *)
    ()
  | Concretize.Concretizer.Unsatisfiable _ ->
    Alcotest.fail "satisfiable stack reported UNSAT"

(* ------------------------------------------------------------------ *)
(* Escalation                                                          *)
(* ------------------------------------------------------------------ *)

let test_escalation_recovers () =
  (* inject a fault on the first two attempts; the third runs clean *)
  let seen = ref [] in
  let fault k b =
    seen := k :: !seen;
    if k < 2 then Asp.Fault.arm b Asp.Fault.Instances 1
  in
  match
    Concretize.Concretizer.solve_escalating ~attempts:3 ~fault ~repo
      [ Specs.Spec_parser.parse "zlib" ]
  with
  | Concretize.Concretizer.Concrete _ ->
    Alcotest.(check (list int)) "three attempts, in order" [ 0; 1; 2 ]
      (List.rev !seen)
  | _ -> Alcotest.fail "escalation did not recover from injected faults"

let test_escalation_gives_up () =
  (* an instance limit of 1 still trips after doubling: both attempts fail *)
  let config =
    Asp.Config.make
      ~limits:{ B.no_limits with B.instances = Some 1 }
      ()
  in
  let seen = ref 0 in
  let fault _ _ = incr seen in
  match
    Concretize.Concretizer.solve_escalating ~attempts:2 ~config ~fault ~repo
      [ Specs.Spec_parser.parse "zlib" ]
  with
  | Concretize.Concretizer.Interrupted { info; _ } ->
    Alcotest.(check int) "both attempts consumed" 2 !seen;
    Alcotest.(check bool) "reason is the instance limit" true
      (info.B.reason = B.Instance_limit)
  | _ -> Alcotest.fail "expected the escalation to give up"

let test_escalation_honours_cancel () =
  let cancel = B.token () in
  B.cancel cancel;
  let seen = ref 0 in
  let fault _ _ = incr seen in
  match
    Concretize.Concretizer.solve_escalating ~attempts:3 ~cancel ~fault ~repo
      [ Specs.Spec_parser.parse "zlib" ]
  with
  | Concretize.Concretizer.Interrupted { info; _ } ->
    Alcotest.(check int) "cancellation is never retried" 1 !seen;
    Alcotest.(check bool) "reason is cancellation" true
      (info.B.reason = B.Cancelled)
  | _ -> Alcotest.fail "cancelled escalation did not report Interrupted"

(* ------------------------------------------------------------------ *)
(* Verification and core-shrinking under faults                        *)
(* ------------------------------------------------------------------ *)

(* sweep a countdown fault through the independent verifier: every run
   either completes (fault landed beyond the last verify event) or raises
   the typed injection in the Verify phase — never a wrong verdict *)
let test_verify_fault_sweep () =
  let g, _ = Asp.Grounder.ground prog in
  let _, models = Asp.Naive.stable_models_ground g in
  let truth = List.hd models in
  let injected = ref 0 and completed = ref 0 in
  for n = 1 to 120 do
    let b = B.start B.no_limits in
    Asp.Fault.arm b Asp.Fault.Verify_steps n;
    match Asp.Verify.check ~budget:b g ~is_true:(fun id -> truth.(id)) with
    | exception B.Exhausted info ->
      incr injected;
      Alcotest.(check bool)
        (Printf.sprintf "verify fault %d: reason is the injection" n)
        true
        (info.B.reason = B.Injected);
      Alcotest.(check bool)
        (Printf.sprintf "verify fault %d: phase is verification" n)
        true
        (info.B.phase = B.Verify)
    | Ok () -> incr completed
    | Error _ ->
      Alcotest.failf "verify fault %d: stable model rejected" n
  done;
  Alcotest.(check bool) "sweep hit the checker" true (!injected > 0);
  Alcotest.(check bool) "sweep outlived the checker" true (!completed > 0)

(* sweep a countdown fault through core shrinking (which ticks the
   optimization counter): the core stays sound — at worst non-minimal —
   and a fault before unsatisfiability is even established surfaces as a
   typed Exhausted result, never an exception *)
let unsat_core_src = "{ a }.\n{ b }.\n{ e }.\n:- not a.\n:- a, not b.\n:- b.\n:- e.\n"

let test_shrink_fault_sweep () =
  let parse_ground () =
    fst (Asp.Grounder.ground (Asp.Parser.parse unsat_core_src))
  in
  let lines_of causes =
    List.sort_uniq compare
      (List.map
         (fun (c : Asp.Explain.cause) -> c.Asp.Explain.origin.Asp.Ground.o_line)
         causes)
  in
  let non_minimal = ref 0 and minimal = ref 0 in
  for n = 1 to 20 do
    let b = B.start B.no_limits in
    Asp.Fault.arm b Asp.Fault.Opt_steps n;
    match Asp.Explain.explain ~budget:b (parse_ground ()) with
    | Asp.Explain.Satisfiable ->
      Alcotest.failf "shrink fault %d: UNSAT program reported satisfiable" n
    | Asp.Explain.Exhausted info ->
      Alcotest.(check bool)
        (Printf.sprintf "shrink fault %d: typed injection" n)
        true
        (info.B.reason = B.Injected)
    | Asp.Explain.Unsat_core { causes; minimal = m } ->
      if m then incr minimal else incr non_minimal;
      Alcotest.(check bool)
        (Printf.sprintf "shrink fault %d: causes are constraints of the program" n)
        true
        (causes <> []
        && List.for_all (fun l -> l >= 4 && l <= 7) (lines_of causes));
      if m then
        Alcotest.(check (list int))
          (Printf.sprintf "shrink fault %d: completed shrink is the true MUS" n)
          [ 4; 5; 6 ] (lines_of causes)
  done;
  Alcotest.(check bool) "sweep interrupted shrinking at least once" true
    (!non_minimal > 0);
  Alcotest.(check bool) "sweep let shrinking finish at least once" true
    (!minimal > 0)

(* a faulted solve budget must not veto verification: the degraded model is
   still independently checked (verification runs on its own budget) *)
let test_degraded_models_still_verified () =
  let c = (event_counts Asp.Config.Bb).B.opt_steps in
  for n = 1 to c do
    let b = B.start B.no_limits in
    Asp.Fault.arm b Asp.Fault.Opt_steps n;
    match Asp.Solve.solve_program ~config:(config Asp.Config.Bb) ~budget:b prog with
    | Asp.Solve.Sat o ->
      Alcotest.(check bool)
        (Printf.sprintf "opt fault %d: degraded model verified" n)
        true o.Asp.Solve.verified
    | Asp.Solve.Interrupted _ -> ()
    | Asp.Solve.Unsat _ ->
      Alcotest.failf "opt fault %d: SAT program reported UNSAT" n
  done

let test_double_limits () =
  let l = { B.wall = Some 0.5; conflicts = Some 10; instances = None } in
  let d = B.double l in
  Alcotest.(check (option int)) "conflicts doubled" (Some 20) d.B.conflicts;
  Alcotest.(check bool) "wall doubled" true (d.B.wall = Some 1.0);
  Alcotest.(check (option int)) "unbounded stays unbounded" None d.B.instances

let () =
  let case = Alcotest.test_case in
  Alcotest.run "budget"
    [
      ( "fault sweeps (usc)",
        [
          case "conflicts" `Quick (test_sweep_conflicts Asp.Config.Usc);
          case "instances" `Quick (test_sweep_instances Asp.Config.Usc);
          case "opt steps" `Quick (test_sweep_opt_steps Asp.Config.Usc);
        ] );
      ( "fault sweeps (bb)",
        [
          case "conflicts" `Quick (test_sweep_conflicts Asp.Config.Bb);
          case "instances" `Quick (test_sweep_instances Asp.Config.Bb);
          case "opt steps" `Quick (test_sweep_opt_steps Asp.Config.Bb);
        ] );
      ( "budget mechanics",
        [
          case "ground phase attribution" `Quick test_ground_phase_attribution;
          case "stays tripped" `Quick test_budget_stays_tripped;
          case "double limits" `Quick test_double_limits;
        ] );
      ( "concretizer",
        [
          case "fault sweep" `Quick test_concretizer_sweep;
          case "wall deadline, large solve" `Slow test_wall_deadline_large_solve;
        ] );
      ( "escalation",
        [
          case "recovers" `Quick test_escalation_recovers;
          case "gives up" `Quick test_escalation_gives_up;
          case "honours cancel" `Quick test_escalation_honours_cancel;
        ] );
      ( "self-checking",
        [
          case "verify fault sweep" `Quick test_verify_fault_sweep;
          case "shrink fault sweep" `Quick test_shrink_fault_sweep;
          case "degraded models still verified" `Quick
            test_degraded_models_still_verified;
        ] );
    ]
