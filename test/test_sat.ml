(* Direct tests of the CDCL core: clauses, pseudo-Boolean constraints,
   assumptions and unsatisfiable cores, model hooks. *)

module S = Asp.Sat

let mk n =
  let s = S.create () in
  let vars = Array.init n (fun _ -> S.new_var s) in
  (s, vars)

let pos = S.Lit.pos
let neg = S.Lit.neg

(* ------------------------------------------------------------------ *)

let test_trivial () =
  let s, v = mk 2 in
  S.add_clause s [ pos v.(0) ];
  S.add_clause s [ neg v.(0); pos v.(1) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v0" true (S.value s (pos v.(0)));
  Alcotest.(check bool) "v1" true (S.value s (pos v.(1)))

let test_unsat () =
  let s, v = mk 1 in
  S.add_clause s [ pos v.(0) ];
  S.add_clause s [ neg v.(0) ];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat);
  (* unsat is sticky *)
  Alcotest.(check bool) "still unsat" true (S.solve s = S.Unsat)

let test_empty_clause () =
  let s, _ = mk 1 in
  S.add_clause s [];
  Alcotest.(check bool) "unsat" true (S.solve s = S.Unsat)

let test_tautology_ignored () =
  let s, v = mk 2 in
  S.add_clause s [ pos v.(0); neg v.(0) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat)

let test_pigeonhole_unsat () =
  (* 4 pigeons, 3 holes: classic small UNSAT requiring real search *)
  let np = 4 and nh = 3 in
  let s = S.create () in
  let x = Array.init np (fun _ -> Array.init nh (fun _ -> S.new_var s)) in
  for p = 0 to np - 1 do
    S.add_clause s (List.init nh (fun h -> pos x.(p).(h)))
  done;
  for h = 0 to nh - 1 do
    for p1 = 0 to np - 1 do
      for p2 = p1 + 1 to np - 1 do
        S.add_clause s [ neg x.(p1).(h); neg x.(p2).(h) ]
      done
    done
  done;
  Alcotest.(check bool) "php(4,3) unsat" true (S.solve s = S.Unsat)

(* ------------------------------------------------------------------ *)
(* Pseudo-Boolean constraints                                          *)
(* ------------------------------------------------------------------ *)

let test_pb_at_most () =
  let s, v = mk 4 in
  S.add_pb_le s (List.init 4 (fun i -> (1, pos v.(i)))) 2;
  S.add_clause s [ pos v.(0) ];
  S.add_clause s [ pos v.(1) ];
  Alcotest.(check bool) "sat at bound" true (S.solve s = S.Sat);
  (* the two remaining must have been forced false *)
  Alcotest.(check bool) "v2 false" false (S.value s (pos v.(2)));
  Alcotest.(check bool) "v3 false" false (S.value s (pos v.(3)));
  S.add_clause s [ pos v.(2) ];
  Alcotest.(check bool) "over bound unsat" true (S.solve s = S.Unsat)

let test_pb_weighted () =
  let s, v = mk 3 in
  (* 3a + 2b + 1c <= 3 *)
  S.add_pb_le s [ (3, pos v.(0)); (2, pos v.(1)); (1, pos v.(2)) ] 3;
  S.add_clause s [ pos v.(0) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "b forced false" false (S.value s (pos v.(1)));
  Alcotest.(check bool) "c forced false" false (S.value s (pos v.(2)))

let test_pb_duplicate_lits () =
  let s, v = mk 1 in
  (* x + x <= 1 means x must be false *)
  S.add_pb_le s [ (1, pos v.(0)); (1, pos v.(0)) ] 1;
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "x false" false (S.value s (pos v.(0)))

let test_pb_complementary_lits () =
  let s, v = mk 2 in
  (* x + (not x) + y <= 1: the pair always contributes 1, so y false *)
  S.add_pb_le s [ (1, pos v.(0)); (1, neg v.(0)); (1, pos v.(1)) ] 1;
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "y forced false" false (S.value s (pos v.(1)))

let test_pb_at_least_via_negation () =
  let s, v = mk 3 in
  (* at least 2 of 3: sum(not x) <= 1 *)
  S.add_pb_le s (List.init 3 (fun i -> (1, neg v.(i)))) 1;
  S.add_clause s [ neg v.(0) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  Alcotest.(check bool) "v1 forced" true (S.value s (pos v.(1)));
  Alcotest.(check bool) "v2 forced" true (S.value s (pos v.(2)))

(* ------------------------------------------------------------------ *)
(* Assumptions and cores                                               *)
(* ------------------------------------------------------------------ *)

let test_assumptions () =
  let s, v = mk 2 in
  S.add_clause s [ neg v.(0); neg v.(1) ];
  Alcotest.(check bool) "sat (a)" true (S.solve ~assumptions:[ pos v.(0) ] s = S.Sat);
  Alcotest.(check bool) "a true" true (S.value s (pos v.(0)));
  Alcotest.(check bool) "b forced false" false (S.value s (pos v.(1)));
  Alcotest.(check bool) "a,b unsat" true
    (S.solve ~assumptions:[ pos v.(0); pos v.(1) ] s = S.Unsat);
  (* the instance itself is still satisfiable afterwards *)
  Alcotest.(check bool) "recoverable" true (S.solve s = S.Sat)

let test_core_subset () =
  let s, v = mk 4 in
  (* only v0 and v1 conflict; v2, v3 are irrelevant *)
  S.add_clause s [ neg v.(0); neg v.(1) ];
  let assumptions = [ pos v.(2); pos v.(0); pos v.(3); pos v.(1) ] in
  Alcotest.(check bool) "unsat" true (S.solve ~assumptions s = S.Unsat);
  let core = S.last_core s in
  Alcotest.(check bool) "core subset of assumptions" true
    (List.for_all (fun l -> List.mem l assumptions) core);
  Alcotest.(check bool) "core mentions v0 or v1" true
    (List.exists (fun l -> l = pos v.(0) || l = pos v.(1)) core);
  Alcotest.(check bool) "core excludes irrelevant v2" false (List.mem (pos v.(2)) core);
  (* the core alone must be unsatisfiable *)
  Alcotest.(check bool) "core refutes" true (S.solve ~assumptions:core s = S.Unsat)

let test_core_propagated_assumption () =
  let s, v = mk 2 in
  S.add_clause s [ neg v.(0); neg v.(1) ];
  (* assuming v0 propagates not v1; then assuming v1 fails immediately *)
  Alcotest.(check bool) "unsat" true
    (S.solve ~assumptions:[ pos v.(0); pos v.(1) ] s = S.Unsat);
  let core = S.last_core s in
  Alcotest.(check bool) "nonempty core" true (core <> []);
  Alcotest.(check bool) "core refutes" true (S.solve ~assumptions:core s = S.Unsat)

let test_core_minimal_pair () =
  let s, v = mk 4 in
  (* only the {v0, v1} pair conflicts: the core must not mention v2/v3, and
     dropping either core member makes the assumptions satisfiable *)
  S.add_clause s [ neg v.(0); neg v.(1) ];
  let assumptions = [ pos v.(0); pos v.(1); pos v.(2); pos v.(3) ] in
  Alcotest.(check bool) "unsat" true (S.solve ~assumptions s = S.Unsat);
  let core = S.last_core s in
  Alcotest.(check bool) "core within {v0,v1}" true
    (List.for_all (fun l -> l = pos v.(0) || l = pos v.(1)) core);
  List.iter
    (fun dropped ->
      let weakened = List.filter (fun l -> l <> dropped) core in
      Alcotest.(check bool) "core minus one member is satisfiable" true
        (S.solve ~assumptions:weakened s = S.Sat))
    core

(* ------------------------------------------------------------------ *)
(* Typed errors and budgets                                            *)
(* ------------------------------------------------------------------ *)

let is_no_model f =
  match f () with
  | exception Asp.Solver_error.Error Asp.Solver_error.No_model -> true
  | _ -> false

let test_no_model_before_solve () =
  let s, v = mk 2 in
  S.add_clause s [ pos v.(0) ];
  Alcotest.(check bool) "value before solve raises" true
    (is_no_model (fun () -> S.value s (pos v.(0))));
  Alcotest.(check bool) "model_true_vars before solve raises" true
    (is_no_model (fun () -> S.model_true_vars s))

let test_no_model_fresh_var () =
  let s, v = mk 1 in
  S.add_clause s [ pos v.(0) ];
  Alcotest.(check bool) "sat" true (S.solve s = S.Sat);
  (* a variable created after the stored model has no value in it *)
  let fresh = S.new_var s in
  Alcotest.(check bool) "fresh var raises" true
    (is_no_model (fun () -> S.value s (pos fresh)));
  (* the stored model itself remains readable *)
  Alcotest.(check bool) "old var readable" true (S.value s (pos v.(0)))

let test_conflict_budget_then_reuse () =
  (* php(5,4) needs far more than 3 conflicts: a tiny conflict budget must
     interrupt the solve, and the solver must stay usable afterwards *)
  let np = 5 and nh = 4 in
  let s = S.create () in
  let x = Array.init np (fun _ -> Array.init nh (fun _ -> S.new_var s)) in
  for p = 0 to np - 1 do
    S.add_clause s (List.init nh (fun h -> pos x.(p).(h)))
  done;
  for h = 0 to nh - 1 do
    for p1 = 0 to np - 1 do
      for p2 = p1 + 1 to np - 1 do
        S.add_clause s [ neg x.(p1).(h); neg x.(p2).(h) ]
      done
    done
  done;
  let budget =
    Asp.Budget.start
      { Asp.Budget.no_limits with Asp.Budget.conflicts = Some 3 }
  in
  (match S.solve ~budget s with
  | exception Asp.Budget.Exhausted i ->
    Alcotest.(check bool) "reason is the conflict limit" true
      (i.Asp.Budget.reason = Asp.Budget.Conflict_limit)
  | _ -> Alcotest.fail "php(5,4) finished within 3 conflicts");
  (* the interrupted solver concludes correctly without a budget *)
  Alcotest.(check bool) "unsat after interruption" true (S.solve s = S.Unsat)

let test_cancelled_budget () =
  let s, v = mk 2 in
  S.add_clause s [ pos v.(0); pos v.(1) ];
  let tok = Asp.Budget.token () in
  Asp.Budget.cancel tok;
  let budget = Asp.Budget.start ~cancel:tok Asp.Budget.no_limits in
  match S.solve ~budget s with
  | exception Asp.Budget.Exhausted i ->
    Alcotest.(check bool) "reason cancelled" true
      (i.Asp.Budget.reason = Asp.Budget.Cancelled)
  | _ -> Alcotest.fail "pre-cancelled budget did not interrupt"

(* ------------------------------------------------------------------ *)
(* Model hook (the stable-semantics driver)                            *)
(* ------------------------------------------------------------------ *)

let test_on_model_refine () =
  let s, v = mk 2 in
  (* enumerate: reject models until only one remains *)
  let rejected = ref 0 in
  let hook s' =
    if S.current_lit_value s' (pos v.(0)) = 1 then begin
      incr rejected;
      `Refine [ [ neg v.(0) ] ]
    end
    else `Accept
  in
  Alcotest.(check bool) "sat" true (S.solve ~on_model:hook s = S.Sat);
  Alcotest.(check bool) "v0 excluded" false (S.value s (pos v.(0)));
  Alcotest.(check bool) "at most one rejection" true (!rejected <= 1)

let test_on_model_refine_to_unsat () =
  let s, v = mk 1 in
  let hook _ = `Refine [ [ pos v.(0) ]; [ neg v.(0) ] ] in
  Alcotest.(check bool) "refined to unsat" true (S.solve ~on_model:hook s = S.Unsat)

(* ------------------------------------------------------------------ *)
(* Properties: random 3-SAT cross-checked with brute force             *)
(* ------------------------------------------------------------------ *)

let gen_cnf =
  let open QCheck in
  let lit = Gen.map2 (fun v s -> if s then pos v else neg v) (Gen.int_range 0 7) Gen.bool in
  let clause = Gen.list_size (Gen.int_range 1 3) lit in
  make
    ~print:(fun cnf ->
      String.concat " & "
        (List.map
           (fun c -> "(" ^ String.concat "|" (List.map string_of_int c) ^ ")")
           cnf))
    (Gen.list_size (Gen.int_range 1 20) clause)

let brute_force_sat cnf =
  let nvars = 8 in
  let rec try_mask mask =
    if mask >= 1 lsl nvars then false
    else
      let value l =
        let v = S.Lit.var l in
        let bit = mask land (1 lsl v) <> 0 in
        if S.Lit.sign l then not bit else bit
      in
      if List.for_all (fun c -> List.exists value c) cnf then true
      else try_mask (mask + 1)
  in
  try_mask 0

let prop_cdcl_matches_brute_force =
  QCheck.Test.make ~count:500 ~name:"CDCL agrees with brute force on random CNF" gen_cnf
    (fun cnf ->
      let s, _ = mk 8 in
      List.iter (S.add_clause s) cnf;
      let sat = S.solve s = S.Sat in
      let expected = brute_force_sat cnf in
      (* when SAT, the model must satisfy every clause *)
      (not sat)
      || List.for_all (fun c -> List.exists (fun l -> S.value s l) c) cnf
         && sat = expected)

let prop_pb_bound_respected =
  let open QCheck in
  let gen =
    make
      ~print:(fun (ws, k) ->
        Printf.sprintf "weights=[%s] k=%d" (String.concat ";" (List.map string_of_int ws)) k)
      Gen.(pair (list_size (int_range 1 6) (int_range 1 5)) (int_range 0 10))
  in
  Test.make ~count:300 ~name:"PB <= bound holds in every model" gen (fun (ws, k) ->
      let s = S.create () in
      let vars = List.map (fun _ -> S.new_var s) ws in
      let entries = List.map2 (fun w v -> (w, pos v)) ws vars in
      S.add_pb_le s entries k;
      (* maximize the number of true vars via hook-free solve with phases *)
      List.iter (fun v -> S.suggest_phase s (pos v)) vars;
      match S.solve s with
      | S.Unsat -> k < 0
      | S.Sat ->
        let total =
          List.fold_left (fun acc (w, l) -> if S.value s l then acc + w else acc) 0 entries
        in
        total <= k)

let () =
  let props =
    List.map QCheck_alcotest.to_alcotest
      [ prop_cdcl_matches_brute_force; prop_pb_bound_respected ]
  in
  Alcotest.run "sat"
    [
      ( "clauses",
        [
          Alcotest.test_case "trivial" `Quick test_trivial;
          Alcotest.test_case "unsat" `Quick test_unsat;
          Alcotest.test_case "empty clause" `Quick test_empty_clause;
          Alcotest.test_case "tautology" `Quick test_tautology_ignored;
          Alcotest.test_case "pigeonhole" `Quick test_pigeonhole_unsat;
        ] );
      ( "pseudo-boolean",
        [
          Alcotest.test_case "at-most-k" `Quick test_pb_at_most;
          Alcotest.test_case "weighted" `Quick test_pb_weighted;
          Alcotest.test_case "duplicate lits" `Quick test_pb_duplicate_lits;
          Alcotest.test_case "complementary lits" `Quick test_pb_complementary_lits;
          Alcotest.test_case "at-least via negation" `Quick test_pb_at_least_via_negation;
        ] );
      ( "assumptions",
        [
          Alcotest.test_case "basic" `Quick test_assumptions;
          Alcotest.test_case "core subset" `Quick test_core_subset;
          Alcotest.test_case "propagated assumption core" `Quick
            test_core_propagated_assumption;
          Alcotest.test_case "minimal pair core" `Quick test_core_minimal_pair;
        ] );
      ( "errors and budgets",
        [
          Alcotest.test_case "no model before solve" `Quick test_no_model_before_solve;
          Alcotest.test_case "no model for fresh var" `Quick test_no_model_fresh_var;
          Alcotest.test_case "conflict budget then reuse" `Quick
            test_conflict_budget_then_reuse;
          Alcotest.test_case "cancelled budget" `Quick test_cancelled_budget;
        ] );
      ( "hooks",
        [
          Alcotest.test_case "refine" `Quick test_on_model_refine;
          Alcotest.test_case "refine to unsat" `Quick test_on_model_refine_to_unsat;
        ] );
      ("properties", props);
    ]
